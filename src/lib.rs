//! Umbrella crate for the HyperTEE reproduction workspace.
//!
//! This crate exists so that workspace-level integration tests (`tests/`) and
//! examples (`examples/`) can depend on every member crate at once. The public
//! API lives in the member crates; the most important entry point is
//! [`hypertee`], the core crate implementing the paper's primary contribution.

pub use hypertee;
pub use hypertee_chaos as chaos;
pub use hypertee_cpu;
pub use hypertee_crypto as crypto;
pub use hypertee_emcall as emcall;
pub use hypertee_ems as ems;
pub use hypertee_fabric as fabric;
pub use hypertee_faults as faults;
pub use hypertee_mem as mem;
pub use hypertee_model as model;
pub use hypertee_service as service;
pub use hypertee_sim as sim;
pub use hypertee_workloads as workloads;
