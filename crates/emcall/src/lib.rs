//! EMCall — the trusted call gate (§III-B/C).
//!
//! EMCall is the machine-mode firmware on the CS side: the only software
//! allowed to talk to the mailbox. It enforces the paper's four gate
//! mechanisms:
//!
//! 1. **Cross-privilege blocking** — each primitive may only be invoked from
//!    the privilege level Table II assigns; EMCall reads the privilege
//!    register (not a caller-supplied value) and blocks mismatches.
//! 2. **Identity stamping** — the current enclaveID is encapsulated into
//!    every request, so requests cannot be forged on behalf of another
//!    enclave.
//! 3. **Sanity checking** — performed on the EMS side on receipt.
//! 4. **Atomic context switches** — EENTER/ERESUME/EEXIT update the CS
//!    registers (satp, IS_ENCLAVE) and flush the TLB in one uninterruptible
//!    step.
//!
//! It also owns response polling (with timing obfuscation, §III-C) and
//! exception routing (§III-B: memory-management exceptions go to EMS,
//! others to the CS OS).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hypertee_fabric::ihub::IHub;
use hypertee_fabric::mailbox::RequestTicket;
use hypertee_fabric::message::{CallerIdentity, Primitive, Privilege, Request, Response};
use hypertee_mem::addr::Ppn;
use hypertee_mem::ownership::EnclaveId;
use hypertee_mem::pagetable::PageTable;
use hypertee_mem::system::CoreMmu;

/// Architectural state of one CS hart that EMCall manages.
#[derive(Debug)]
pub struct HartState {
    /// Hart index.
    pub hart_id: u32,
    /// Current privilege level of the software running on this hart.
    pub privilege: Privilege,
    /// The enclave currently executing here, if any (feeds the IS_ENCLAVE
    /// register and identity stamping).
    pub current_enclave: Option<EnclaveId>,
    /// The MMU (TLB + satp + IS_ENCLAVE).
    pub mmu: CoreMmu,
    /// Saved host address space across enclave execution.
    saved_host_table: Option<PageTable>,
    /// Enclave context (PC + registers) saved by EMCall at EEXIT and
    /// restored at ERESUME (§III-B ④ atomic register updates).
    saved_enclave_ctx: Option<(u64, [u64; 32])>,
    /// Program counter (used by exception recording).
    pub pc: u64,
    /// Saved architectural integer registers. §III-B ④: EMCall performs the
    /// CS register updates of a context switch atomically; the interpreter
    /// loads from and stores to this bank across EENTER/EEXIT/ERESUME.
    pub regs: [u64; 32],
}

impl HartState {
    /// Creates a hart running host user code with a TLB of `tlb_entries`.
    pub fn new(hart_id: u32, tlb_entries: usize) -> HartState {
        HartState {
            hart_id,
            privilege: Privilege::User,
            current_enclave: None,
            mmu: CoreMmu::new(tlb_entries),
            saved_host_table: None,
            saved_enclave_ctx: None,
            pc: 0,
            regs: [0; 32],
        }
    }
}

/// Why EMCall refused to forward a primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmCallError {
    /// The current privilege level does not match Table II for this
    /// primitive (§III-B ①).
    CrossPrivilege {
        /// What the primitive requires.
        required: Privilege,
        /// What the hart was running at.
        actual: Privilege,
    },
}

impl core::fmt::Display for EmCallError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EmCallError::CrossPrivilege { required, actual } => {
                write!(
                    f,
                    "cross-privilege request blocked: needs {required:?}, got {actual:?}"
                )
            }
        }
    }
}

impl std::error::Error for EmCallError {}

/// Exceptions and interrupts EMCall sees first (§III-B, "Secure handling of
/// exception/interrupt in enclaves").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exception {
    /// Demand-paging fault at a virtual address.
    PageFault {
        /// Faulting address.
        va: u64,
    },
    /// Misaligned access.
    Misaligned {
        /// Faulting address.
        va: u64,
    },
    /// Timer interrupt.
    Timer,
    /// Illegal instruction.
    IllegalInstruction,
    /// External device interrupt.
    External,
}

/// Where EMCall routes an exception.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExceptionRoute {
    /// Memory-management exceptions are handled by EMS.
    Ems,
    /// Everything else is responded to by the CS OS.
    CsOs,
}

/// Record EMCall keeps about an in-flight exception (cause, PC, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExceptionRecord {
    /// The exception.
    pub cause: Exception,
    /// PC at the time.
    pub pc: u64,
    /// Chosen route.
    pub route: ExceptionRoute,
}

/// EMCall event counters (timing-model and test observability).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmCallStats {
    /// Requests forwarded to the mailbox.
    pub forwarded: u64,
    /// Cross-privilege invocations blocked.
    pub blocked: u64,
    /// Poll iterations performed (including obfuscation re-polls).
    pub polls: u64,
    /// Context switches applied atomically.
    pub context_switches: u64,
    /// TLB flushes issued (context switches + bitmap changes).
    pub tlb_flushes: u64,
    /// Requests resubmitted under an existing ticket after a lost or
    /// aborted round trip.
    pub resubmissions: u64,
    /// Exceptions routed to EMS.
    pub to_ems: u64,
    /// Exceptions routed to the CS OS.
    pub to_cs: u64,
}

/// Verdict of the interrupt-frequency monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptVerdict {
    /// Interrupt rate within the normal envelope; resume the enclave.
    Continue,
    /// Abnormal interrupt frequency detected — terminate the enclave, the
    /// Varys-style response the paper endorses as orthogonal hardening
    /// (§IX: "terminate enclave execution upon detecting abnormal
    /// interrupt frequency").
    Terminate,
}

/// Sliding-window interrupt-frequency monitor (per hart).
///
/// Single-stepping attacks (SGX-Step-class) need interrupt rates orders of
/// magnitude above a 100 Hz scheduler tick; the monitor counts enclave
/// interrupts per window of cycles and flags outliers.
#[derive(Debug, Clone, Copy)]
pub struct InterruptMonitor {
    /// Window length in cycles.
    pub window_cycles: u64,
    /// Maximum enclave interrupts tolerated per window.
    pub max_per_window: u32,
    window_start: u64,
    count: u32,
}

impl InterruptMonitor {
    /// A monitor tuned for a 2.5 GHz CS core: a 25M-cycle (10 ms) window
    /// tolerating 4 interrupts — ~4× the standard 100 Hz tick, far below
    /// stepping rates.
    pub fn standard() -> InterruptMonitor {
        InterruptMonitor {
            window_cycles: 25_000_000,
            max_per_window: 4,
            window_start: 0,
            count: 0,
        }
    }

    /// Records one enclave interrupt at `now` (cycles) and returns the
    /// verdict.
    pub fn record(&mut self, now: u64) -> InterruptVerdict {
        if now.saturating_sub(self.window_start) >= self.window_cycles {
            self.window_start = now;
            self.count = 0;
        }
        self.count += 1;
        if self.count > self.max_per_window {
            InterruptVerdict::Terminate
        } else {
            InterruptVerdict::Continue
        }
    }
}

/// The trusted call gate.
#[derive(Debug, Default)]
pub struct EmCall {
    /// Counters.
    pub stats: EmCallStats,
    /// Obfuscation state: a deterministic counter that staggers poll timing
    /// so response-latency observation is noisy (§III-C).
    obf_state: u64,
    /// Per-hart table of outstanding request tickets, keyed by
    /// `(hart_id, req_id)`. [`RequestTicket`] is deliberately non-clonable
    /// (one request, one collector); parking tickets here lets every hart
    /// hold several requests in flight at once while the exclusive-binding
    /// property survives — a ticket is only ever handed back to the mailbox
    /// on behalf of the hart that submitted it.
    tickets: std::collections::BTreeMap<(u32, u64), RequestTicket>,
}

impl EmCall {
    /// Creates the call gate (loaded and verified during secure boot).
    pub fn new() -> EmCall {
        EmCall::default()
    }

    /// Assembles and submits a primitive request on behalf of the software
    /// running on `hart`. The caller identity is taken from the hart's
    /// privilege register and current-enclave state — never from arguments.
    ///
    /// # Errors
    ///
    /// [`EmCallError::CrossPrivilege`] when Table II forbids this primitive
    /// at the hart's privilege level.
    pub fn submit(
        &mut self,
        hart: &HartState,
        hub: &mut IHub,
        primitive: Primitive,
        args: Vec<u64>,
        payload: Vec<u8>,
    ) -> Result<RequestTicket, EmCallError> {
        let required = primitive.required_privilege();
        if hart.privilege != required {
            self.stats.blocked += 1;
            return Err(EmCallError::CrossPrivilege {
                required,
                actual: hart.privilege,
            });
        }
        let caller = CallerIdentity {
            privilege: hart.privilege,
            enclave: hart.current_enclave,
        };
        let request = Request {
            req_id: 0,
            primitive,
            caller,
            args,
            payload,
        };
        self.stats.forwarded += 1;
        Ok(hub.mailbox.submit(request))
    }

    /// Resubmits a primitive under the `req_id` of an existing ticket after
    /// the original round trip was lost (dropped packet, corrupt response)
    /// or aborted mid-primitive. The same gate checks apply as on first
    /// submission; reusing the `req_id` lets the EMS-side response cache
    /// make the retry idempotent.
    ///
    /// # Errors
    ///
    /// [`EmCallError::CrossPrivilege`] when Table II forbids this primitive
    /// at the hart's privilege level.
    pub fn resubmit(
        &mut self,
        hart: &HartState,
        hub: &mut IHub,
        ticket: &RequestTicket,
        primitive: Primitive,
        args: Vec<u64>,
        payload: Vec<u8>,
    ) -> Result<(), EmCallError> {
        let required = primitive.required_privilege();
        if hart.privilege != required {
            self.stats.blocked += 1;
            return Err(EmCallError::CrossPrivilege {
                required,
                actual: hart.privilege,
            });
        }
        let caller = CallerIdentity {
            privilege: hart.privilege,
            enclave: hart.current_enclave,
        };
        let request = Request {
            req_id: 0,
            primitive,
            caller,
            args,
            payload,
        };
        self.stats.forwarded += 1;
        self.stats.resubmissions += 1;
        hub.mailbox.resubmit(ticket, request);
        Ok(())
    }

    /// Polls for the response bound to `ticket`, using the obfuscated
    /// polling loop instead of CS interrupt handlers. Returns the response
    /// once present, or the ticket for a later retry.
    pub fn poll(
        &mut self,
        hub: &mut IHub,
        ticket: RequestTicket,
    ) -> Result<Response, RequestTicket> {
        // Timing obfuscation: consume a pseudo-random number of extra poll
        // slots so completion time does not directly expose EMS latency.
        self.obf_state = self
            .obf_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        let extra = (self.obf_state >> 60) & 0x7;
        self.stats.polls += 1 + extra;
        hub.mailbox.poll(ticket)
    }

    /// Like [`EmCall::submit`], but parks the ticket in the per-hart table
    /// and returns the bound `req_id` instead, so the hart can keep issuing
    /// further primitives while this one is in flight. Poll with
    /// [`EmCall::poll_tracked`].
    ///
    /// # Errors
    ///
    /// [`EmCallError::CrossPrivilege`] when Table II forbids this primitive
    /// at the hart's privilege level.
    pub fn submit_tracked(
        &mut self,
        hart: &HartState,
        hub: &mut IHub,
        primitive: Primitive,
        args: Vec<u64>,
        payload: Vec<u8>,
    ) -> Result<u64, EmCallError> {
        let ticket = self.submit(hart, hub, primitive, args, payload)?;
        let req_id = ticket.req_id();
        self.tickets.insert((hart.hart_id, req_id), ticket);
        Ok(req_id)
    }

    /// Polls for the response to a tracked request. On a miss the ticket
    /// stays parked for the next poll; on a hit it is consumed and the
    /// response returned. `None` also covers an unknown `(hart, req_id)`
    /// pair — a foreign hart presenting someone else's `req_id` sees
    /// exactly what it would see for a request that never existed.
    pub fn poll_tracked(&mut self, hub: &mut IHub, hart_id: u32, req_id: u64) -> Option<Response> {
        let ticket = self.tickets.remove(&(hart_id, req_id))?;
        self.obf_state = self
            .obf_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        let extra = (self.obf_state >> 60) & 0x7;
        self.stats.polls += 1 + extra;
        match hub.mailbox.poll(ticket) {
            Ok(resp) => Some(resp),
            Err(t) => {
                self.tickets.insert((hart_id, req_id), t);
                None
            }
        }
    }

    /// Resubmits a tracked request under its existing `req_id` after the
    /// round trip was declared lost. No-op if the ticket is not (or no
    /// longer) parked for this hart. The gate checks apply as on first
    /// submission.
    ///
    /// # Errors
    ///
    /// [`EmCallError::CrossPrivilege`] when Table II forbids this primitive
    /// at the hart's privilege level.
    pub fn resubmit_tracked(
        &mut self,
        hart: &HartState,
        hub: &mut IHub,
        req_id: u64,
        primitive: Primitive,
        args: Vec<u64>,
        payload: Vec<u8>,
    ) -> Result<(), EmCallError> {
        let required = primitive.required_privilege();
        if hart.privilege != required {
            self.stats.blocked += 1;
            return Err(EmCallError::CrossPrivilege {
                required,
                actual: hart.privilege,
            });
        }
        let caller = CallerIdentity {
            privilege: hart.privilege,
            enclave: hart.current_enclave,
        };
        let request = Request {
            req_id: 0,
            primitive,
            caller,
            args,
            payload,
        };
        match self.tickets.get(&(hart.hart_id, req_id)) {
            Some(ticket) => hub.mailbox.resubmit(ticket, request),
            None => return Ok(()),
        }
        self.stats.forwarded += 1;
        self.stats.resubmissions += 1;
        Ok(())
    }

    /// Drops a tracked ticket (timed-out request, or an abort replaced by a
    /// fresh submission). Returns whether a ticket was actually parked.
    pub fn retire_tracked(&mut self, hart_id: u32, req_id: u64) -> bool {
        self.tickets.remove(&(hart_id, req_id)).is_some()
    }

    /// Number of requests this hart currently has in flight.
    pub fn outstanding_for(&self, hart_id: u32) -> usize {
        self.tickets
            .range((hart_id, 0)..=(hart_id, u64::MAX))
            .count()
    }

    /// Total tracked requests in flight across all harts.
    pub fn outstanding(&self) -> usize {
        self.tickets.len()
    }

    /// The request ids a hart currently has in flight, in submission-id
    /// order (observability for harnesses asserting no ticket leaks).
    pub fn tracked_requests(&self, hart_id: u32) -> Vec<u64> {
        self.tickets
            .range((hart_id, 0)..=(hart_id, u64::MAX))
            .map(|((_, req_id), _)| *req_id)
            .collect()
    }

    /// Atomically switches a hart into a *fresh* enclave context: saves the
    /// host table, loads the enclave satp + IS_ENCLAVE, zeroes the register
    /// bank, sets PC to the entry point, and flushes the TLB. The response
    /// values come from EENTER.
    pub fn enter_enclave(
        &mut self,
        hart: &mut HartState,
        enclave: EnclaveId,
        table_root: Ppn,
        entry: u64,
    ) {
        if hart.saved_host_table.is_none() {
            hart.saved_host_table = hart.mmu.table;
        }
        hart.mmu
            .switch_table(Some(PageTable { root: table_root }), true);
        hart.current_enclave = Some(enclave);
        hart.privilege = Privilege::User;
        hart.pc = entry;
        hart.regs = [0; 32];
        hart.saved_enclave_ctx = None;
        self.stats.context_switches += 1;
        self.stats.tlb_flushes += 1;
    }

    /// Atomically resumes an enclave context: like [`EmCall::enter_enclave`]
    /// but restores the PC and register bank saved at the last EEXIT —
    /// §III-B ④: "EMCall performs CS register updates atomically".
    pub fn resume_enclave(
        &mut self,
        hart: &mut HartState,
        enclave: EnclaveId,
        table_root: Ppn,
        entry: u64,
    ) {
        if hart.saved_host_table.is_none() {
            hart.saved_host_table = hart.mmu.table;
        }
        hart.mmu
            .switch_table(Some(PageTable { root: table_root }), true);
        hart.current_enclave = Some(enclave);
        hart.privilege = Privilege::User;
        match hart.saved_enclave_ctx.take() {
            Some((pc, regs)) => {
                hart.pc = pc;
                hart.regs = regs;
            }
            None => {
                // Nothing saved (e.g. resume after suspension on another
                // hart): start at the entry point like a fresh entry.
                hart.pc = entry;
                hart.regs = [0; 32];
            }
        }
        self.stats.context_switches += 1;
        self.stats.tlb_flushes += 1;
    }

    /// Atomically switches a hart back to the host context after EEXIT,
    /// saving the enclave PC + registers for a later ERESUME.
    pub fn exit_enclave(&mut self, hart: &mut HartState) {
        hart.saved_enclave_ctx = Some((hart.pc, hart.regs));
        let host = hart.saved_host_table.take();
        hart.mmu.switch_table(host, false);
        hart.current_enclave = None;
        self.stats.context_switches += 1;
        self.stats.tlb_flushes += 1;
    }

    /// Flushes TLB entries referencing a frame whose bitmap bit changed
    /// (§IV-B: prevents stale-TLB bitmap-check bypass).
    pub fn flush_for_bitmap_change(&mut self, harts: &mut [HartState], ppn: Ppn) {
        for hart in harts {
            hart.mmu.tlb.flush_ppn(ppn);
        }
        self.stats.tlb_flushes += 1;
    }

    /// Records and routes an exception taken during enclave execution
    /// (§III-B): memory-management exceptions to EMS, the rest to the CS OS.
    pub fn route_exception(&mut self, hart: &HartState, cause: Exception) -> ExceptionRecord {
        let route = match cause {
            Exception::PageFault { .. } | Exception::Misaligned { .. } => ExceptionRoute::Ems,
            Exception::Timer | Exception::IllegalInstruction | Exception::External => {
                ExceptionRoute::CsOs
            }
        };
        match route {
            ExceptionRoute::Ems => self.stats.to_ems += 1,
            ExceptionRoute::CsOs => self.stats.to_cs += 1,
        }
        ExceptionRecord {
            cause,
            pc: hart.pc,
            route,
        }
    }
}

/// Compile-time `Send` pins for the sharded-execution refactor
/// (`hypertee::shard`): each shard domain owns a whole gate — including
/// its per-hart ticket table — and carries it across the worker-pool
/// boundary, so a regression to non-`Send` state (an `Rc`, a raw
/// pointer) must fail the build here, not a test run.
fn assert_send<T: Send>() {}
const _: fn() = assert_send::<EmCall>;
const _: fn() = assert_send::<HartState>;
const _: fn() = assert_send::<RequestTicket>;

#[cfg(test)]
mod tests {
    use super::*;
    use hypertee_fabric::message::Status;

    fn hart(priv_: Privilege, enclave: Option<u64>) -> HartState {
        let mut h = HartState::new(0, 32);
        h.privilege = priv_;
        h.current_enclave = enclave.map(EnclaveId);
        h
    }

    #[test]
    fn cross_privilege_blocked() {
        let mut emcall = EmCall::new();
        let (mut hub, _cap) = IHub::new();
        // ECREATE needs OS privilege; user-mode invocation is blocked at the
        // gate (never reaches the mailbox).
        let h = hart(Privilege::User, None);
        let err = emcall
            .submit(&h, &mut hub, Primitive::Ecreate, vec![0, 0, 0, 0], vec![])
            .unwrap_err();
        assert_eq!(
            err,
            EmCallError::CrossPrivilege {
                required: Privilege::Os,
                actual: Privilege::User
            }
        );
        assert_eq!(hub.mailbox.pending_requests(), 0);
        assert_eq!(emcall.stats.blocked, 1);
    }

    #[test]
    fn identity_is_stamped_from_hart_state() {
        let mut emcall = EmCall::new();
        let (mut hub, cap) = IHub::new();
        let h = hart(Privilege::User, Some(7));
        emcall
            .submit(&h, &mut hub, Primitive::Ealloc, vec![7, 4096], vec![])
            .unwrap();
        let req = hub.ems_fetch_request(&cap).unwrap();
        assert_eq!(req.caller.enclave, Some(EnclaveId(7)));
        assert_eq!(req.caller.privilege, Privilege::User);
    }

    #[test]
    fn poll_returns_bound_response() {
        let mut emcall = EmCall::new();
        let (mut hub, cap) = IHub::new();
        let h = hart(Privilege::User, Some(1));
        let ticket = emcall
            .submit(&h, &mut hub, Primitive::Ealloc, vec![1, 4096], vec![])
            .unwrap();
        let ticket = emcall.poll(&mut hub, ticket).unwrap_err();
        let req = hub.ems_fetch_request(&cap).unwrap();
        hub.ems_push_response(&cap, Response::ok(req.req_id, vec![0x2000_0000, 1]));
        let resp = emcall.poll(&mut hub, ticket).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert!(emcall.stats.polls >= 2);
    }

    #[test]
    fn resubmit_reuses_ticket_req_id() {
        let mut emcall = EmCall::new();
        let (mut hub, cap) = IHub::new();
        let h = hart(Privilege::User, Some(1));
        let ticket = emcall
            .submit(&h, &mut hub, Primitive::Ealloc, vec![1, 4096], vec![])
            .unwrap();
        let first = hub.ems_fetch_request(&cap).unwrap();
        // Pretend the response was lost; resubmit under the same ticket.
        emcall
            .resubmit(
                &h,
                &mut hub,
                &ticket,
                Primitive::Ealloc,
                vec![1, 4096],
                vec![],
            )
            .unwrap();
        let second = hub.ems_fetch_request(&cap).unwrap();
        assert_eq!(first.req_id, second.req_id);
        assert_eq!(second.caller.enclave, Some(EnclaveId(1)));
        assert_eq!(emcall.stats.resubmissions, 1);
        // The gate still applies on the retry path.
        let os = hart(Privilege::Os, None);
        assert!(emcall
            .resubmit(
                &os,
                &mut hub,
                &ticket,
                Primitive::Ealloc,
                vec![1, 4096],
                vec![]
            )
            .is_err());
    }

    #[test]
    fn tracked_tickets_let_distinct_harts_overlap() {
        let mut emcall = EmCall::new();
        let (mut hub, cap) = IHub::new();
        let mut harts = Vec::new();
        for i in 0..4u32 {
            let mut h = HartState::new(i, 32);
            h.privilege = Privilege::User;
            h.current_enclave = Some(EnclaveId(u64::from(i) + 1));
            harts.push(h);
        }
        // All four harts submit before anyone polls.
        let ids: Vec<u64> = harts
            .iter()
            .map(|h| {
                emcall
                    .submit_tracked(h, &mut hub, Primitive::Ealloc, vec![1, 4096], vec![])
                    .unwrap()
            })
            .collect();
        assert_eq!(emcall.outstanding(), 4);
        for h in &harts {
            assert_eq!(emcall.outstanding_for(h.hart_id), 1);
        }
        // EMS answers in reverse order, tagging each response with the
        // caller's enclave so delivery can be checked.
        let mut fetched = Vec::new();
        while let Some(req) = hub.ems_fetch_request(&cap) {
            fetched.push(req);
        }
        for req in fetched.iter().rev() {
            let tag = req.caller.enclave.unwrap().0;
            hub.ems_push_response(&cap, Response::ok(req.req_id, vec![tag, 1]));
        }
        // A foreign hart polling someone else's req_id sees nothing and
        // does not disturb the parked ticket.
        assert!(emcall.poll_tracked(&mut hub, 3, ids[0]).is_none());
        assert_eq!(emcall.outstanding(), 4);
        // Each hart collects exactly its own response.
        for (i, h) in harts.iter().enumerate() {
            let resp = emcall.poll_tracked(&mut hub, h.hart_id, ids[i]).unwrap();
            assert_eq!(resp.vals[0], u64::from(h.hart_id) + 1);
        }
        assert_eq!(emcall.outstanding(), 0);
    }

    #[test]
    fn tracked_resubmit_and_retire() {
        let mut emcall = EmCall::new();
        let (mut hub, cap) = IHub::new();
        let h = hart(Privilege::User, Some(1));
        let req_id = emcall
            .submit_tracked(&h, &mut hub, Primitive::Ealloc, vec![1, 4096], vec![])
            .unwrap();
        let first = hub.ems_fetch_request(&cap).unwrap();
        // Lost round trip: resubmit under the same req_id.
        emcall
            .resubmit_tracked(
                &h,
                &mut hub,
                req_id,
                Primitive::Ealloc,
                vec![1, 4096],
                vec![],
            )
            .unwrap();
        let second = hub.ems_fetch_request(&cap).unwrap();
        assert_eq!(first.req_id, second.req_id);
        assert_eq!(emcall.stats.resubmissions, 1);
        // Resubmitting an unknown req_id is a silent no-op.
        emcall
            .resubmit_tracked(&h, &mut hub, 9999, Primitive::Ealloc, vec![1, 4096], vec![])
            .unwrap();
        assert_eq!(emcall.stats.resubmissions, 1);
        assert!(emcall.retire_tracked(0, req_id));
        assert!(!emcall.retire_tracked(0, req_id));
        assert_eq!(emcall.outstanding(), 0);
    }

    #[test]
    fn polling_count_is_obfuscated() {
        let mut emcall = EmCall::new();
        let (mut hub, _cap) = IHub::new();
        let h = hart(Privilege::User, Some(1));
        let mut counts = std::collections::BTreeSet::new();
        for _ in 0..16 {
            let before = emcall.stats.polls;
            let t = emcall
                .submit(&h, &mut hub, Primitive::Ealloc, vec![1, 4096], vec![])
                .unwrap();
            let _ = emcall.poll(&mut hub, t);
            counts.insert(emcall.stats.polls - before);
        }
        assert!(counts.len() > 1, "poll costs must vary: {counts:?}");
    }

    #[test]
    fn context_switch_roundtrip_flushes_tlb() {
        let mut emcall = EmCall::new();
        let mut h = hart(Privilege::Os, None);
        let host_table = PageTable { root: Ppn(500) };
        h.mmu.table = Some(host_table);
        emcall.enter_enclave(&mut h, EnclaveId(3), Ppn(900), 0x1000_0000);
        assert!(h.mmu.enclave_mode);
        assert_eq!(h.current_enclave, Some(EnclaveId(3)));
        assert_eq!(h.mmu.table, Some(PageTable { root: Ppn(900) }));
        assert_eq!(h.mmu.tlb.stats.flushes, 1);
        emcall.exit_enclave(&mut h);
        assert!(!h.mmu.enclave_mode);
        assert_eq!(h.mmu.table, Some(host_table), "host context restored");
        assert_eq!(h.current_enclave, None);
        assert_eq!(emcall.stats.tlb_flushes, 2);
    }

    #[test]
    fn nested_enter_preserves_original_host_table() {
        let mut emcall = EmCall::new();
        let mut h = hart(Privilege::Os, None);
        let host_table = PageTable { root: Ppn(500) };
        h.mmu.table = Some(host_table);
        emcall.enter_enclave(&mut h, EnclaveId(1), Ppn(901), 0);
        // A second enter (e.g. nested resume path) must not clobber the
        // saved host table with the enclave table.
        emcall.enter_enclave(&mut h, EnclaveId(1), Ppn(901), 0);
        emcall.exit_enclave(&mut h);
        assert_eq!(h.mmu.table, Some(host_table));
    }

    #[test]
    fn exception_routing_matches_paper() {
        let mut emcall = EmCall::new();
        let mut h = hart(Privilege::User, Some(1));
        h.pc = 0xabc;
        let r = emcall.route_exception(&h, Exception::PageFault { va: 0x2000_0000 });
        assert_eq!(r.route, ExceptionRoute::Ems);
        assert_eq!(r.pc, 0xabc);
        assert_eq!(
            emcall
                .route_exception(&h, Exception::Misaligned { va: 4 })
                .route,
            ExceptionRoute::Ems
        );
        assert_eq!(
            emcall.route_exception(&h, Exception::Timer).route,
            ExceptionRoute::CsOs
        );
        assert_eq!(
            emcall
                .route_exception(&h, Exception::IllegalInstruction)
                .route,
            ExceptionRoute::CsOs
        );
        assert_eq!(emcall.stats.to_ems, 2);
        assert_eq!(emcall.stats.to_cs, 2);
    }

    #[test]
    fn interrupt_monitor_tolerates_scheduler_ticks() {
        let mut mon = InterruptMonitor::standard();
        // 100 Hz ticks at 2.5 GHz: one interrupt every 25M cycles — each
        // lands in its own window.
        let mut now = 0u64;
        for _ in 0..100 {
            now += 25_000_000;
            assert_eq!(mon.record(now), InterruptVerdict::Continue);
        }
    }

    #[test]
    fn interrupt_monitor_flags_single_stepping() {
        let mut mon = InterruptMonitor::standard();
        // SGX-Step-style: an interrupt every few thousand cycles.
        let mut now = 0u64;
        let mut verdict = InterruptVerdict::Continue;
        for _ in 0..10 {
            now += 5_000;
            verdict = mon.record(now);
            if verdict == InterruptVerdict::Terminate {
                break;
            }
        }
        assert_eq!(verdict, InterruptVerdict::Terminate);
    }

    #[test]
    fn interrupt_monitor_resets_per_window() {
        let mut mon = InterruptMonitor::standard();
        // A short burst below the limit, then quiet, then another burst:
        // neither trips the monitor.
        for base in [0u64, 100_000_000] {
            for i in 0..4 {
                assert_eq!(mon.record(base + i * 1000), InterruptVerdict::Continue);
            }
        }
    }

    #[test]
    fn bitmap_change_flush_hits_all_harts() {
        use hypertee_mem::addr::{KeyId, Vpn};
        use hypertee_mem::pagetable::Perms;
        use hypertee_mem::tlb::TlbEntry;
        let mut emcall = EmCall::new();
        let mut harts = vec![hart(Privilege::User, None), hart(Privilege::User, None)];
        for h in harts.iter_mut() {
            h.mmu.tlb.insert(TlbEntry {
                vpn: Vpn(1),
                ppn: Ppn(42),
                perms: Perms::RW,
                key: KeyId::HOST,
                checked: true,
            });
        }
        emcall.flush_for_bitmap_change(&mut harts, Ppn(42));
        for h in harts.iter_mut() {
            assert!(h.mmu.tlb.lookup(Vpn(1)).is_none());
        }
    }
}
