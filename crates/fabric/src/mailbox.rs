//! The dedicated mailbox in iHub (§III-C, Fig. 3).
//!
//! "CS can send enclave primitive requests to EMS through a dedicated
//! mailbox in iHub… Each primitive request is bound with its response
//! exclusively through a unique identification, and a request cannot access
//! the other response packets."
//!
//! The mailbox hands out [`RequestTicket`]s on submission; collecting a
//! response requires presenting the ticket, so reading someone else's
//! response is unrepresentable. Only EMCall can submit (enforced by the
//! EMCall layer owning the CS port), and only EMS can fetch/respond
//! (enforced by [`crate::ihub::EmsCapability`]).

use crate::message::{Request, Response};
use std::collections::{HashMap, VecDeque};

/// Proof that a specific request was submitted; required to poll its
/// response. Not cloneable — one request, one collector.
#[derive(Debug, PartialEq, Eq)]
pub struct RequestTicket {
    req_id: u64,
}

impl RequestTicket {
    /// The bound request identification.
    pub fn req_id(&self) -> u64 {
        self.req_id
    }
}

/// Mailbox traffic counters (timing-model input).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MailboxStats {
    /// Requests submitted by EMCall.
    pub requests: u64,
    /// Responses pushed by EMS.
    pub responses: u64,
    /// Poll attempts that found no response yet (EMCall polls, §III-C).
    pub empty_polls: u64,
}

/// The request/response mailbox.
#[derive(Debug, Default)]
pub struct Mailbox {
    next_req_id: u64,
    requests: VecDeque<Request>,
    responses: HashMap<u64, Response>,
    /// Counters.
    pub stats: MailboxStats,
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Submits a request (EMCall side). The mailbox assigns the unique
    /// request identification and returns the binding ticket.
    pub fn submit(&mut self, mut request: Request) -> RequestTicket {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        request.req_id = req_id;
        self.requests.push_back(request);
        self.stats.requests += 1;
        RequestTicket { req_id }
    }

    /// Fetches the oldest pending request (EMS side; gated by the iHub).
    pub(crate) fn fetch_request(&mut self) -> Option<Request> {
        self.requests.pop_front()
    }

    /// Pushes a response (EMS side; gated by the iHub).
    pub(crate) fn push_response(&mut self, response: Response) {
        self.stats.responses += 1;
        self.responses.insert(response.req_id, response);
    }

    /// Polls for the response bound to `ticket`. Returns the ticket back on
    /// a miss so the caller can poll again — the polling loop EMCall uses
    /// instead of trusting CS interrupt handlers.
    pub fn poll(&mut self, ticket: RequestTicket) -> Result<Response, RequestTicket> {
        match self.responses.remove(&ticket.req_id) {
            Some(r) => Ok(r),
            None => {
                self.stats.empty_polls += 1;
                Err(ticket)
            }
        }
    }

    /// Number of requests waiting for EMS.
    pub fn pending_requests(&self) -> usize {
        self.requests.len()
    }

    /// Number of responses waiting for collection.
    pub fn pending_responses(&self) -> usize {
        self.responses.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{CallerIdentity, Primitive, Privilege, Status};

    fn request() -> Request {
        Request {
            req_id: 0,
            primitive: Primitive::Ealloc,
            caller: CallerIdentity { privilege: Privilege::User, enclave: None },
            args: vec![4096],
            payload: Vec::new(),
        }
    }

    #[test]
    fn submit_fetch_respond_poll() {
        let mut mb = Mailbox::new();
        let ticket = mb.submit(request());
        let req = mb.fetch_request().unwrap();
        assert_eq!(req.req_id, ticket.req_id());
        mb.push_response(Response::ok(req.req_id, vec![42]));
        let resp = mb.poll(ticket).unwrap();
        assert_eq!(resp.vals, vec![42]);
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn poll_before_response_misses() {
        let mut mb = Mailbox::new();
        let ticket = mb.submit(request());
        let ticket = mb.poll(ticket).unwrap_err();
        assert_eq!(mb.stats.empty_polls, 1);
        let req = mb.fetch_request().unwrap();
        mb.push_response(Response::ok(req.req_id, vec![]));
        assert!(mb.poll(ticket).is_ok());
    }

    #[test]
    fn responses_bound_exclusively() {
        // Two in-flight requests: each ticket only ever sees its own
        // response, regardless of completion order.
        let mut mb = Mailbox::new();
        let t1 = mb.submit(request());
        let t2 = mb.submit(request());
        let r1 = mb.fetch_request().unwrap();
        let r2 = mb.fetch_request().unwrap();
        // EMS completes the *second* request first.
        mb.push_response(Response::ok(r2.req_id, vec![2]));
        mb.push_response(Response::ok(r1.req_id, vec![1]));
        assert_eq!(mb.poll(t1).unwrap().vals, vec![1]);
        assert_eq!(mb.poll(t2).unwrap().vals, vec![2]);
    }

    #[test]
    fn request_ids_are_unique() {
        let mut mb = Mailbox::new();
        let t1 = mb.submit(request());
        let t2 = mb.submit(request());
        let t3 = mb.submit(request());
        assert_ne!(t1.req_id(), t2.req_id());
        assert_ne!(t2.req_id(), t3.req_id());
    }

    #[test]
    fn fifo_request_delivery() {
        let mut mb = Mailbox::new();
        let mut ids = Vec::new();
        for _ in 0..5 {
            ids.push(mb.submit(request()).req_id());
        }
        for expected in ids {
            assert_eq!(mb.fetch_request().unwrap().req_id, expected);
        }
    }
}
