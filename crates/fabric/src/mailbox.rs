//! The dedicated mailbox in iHub (§III-C, Fig. 3).
//!
//! "CS can send enclave primitive requests to EMS through a dedicated
//! mailbox in iHub… Each primitive request is bound with its response
//! exclusively through a unique identification, and a request cannot access
//! the other response packets."
//!
//! The mailbox hands out [`RequestTicket`]s on submission; collecting a
//! response requires presenting the ticket, so reading someone else's
//! response is unrepresentable. Only EMCall can submit (enforced by the
//! EMCall layer owning the CS port), and only EMS can fetch/respond
//! (enforced by [`crate::ihub::EmsCapability`]).
//!
//! # Fault injection
//!
//! The mailbox is the fabric's primary injection point: an armed
//! [`FaultInjector`] can drop a request before it queues, and drop,
//! duplicate, delay, or corrupt a response in flight. Corrupted packets are
//! caught by the [`Response`] checksum at poll time and discarded like a
//! miss; EMCall's bounded retry plus EMS's idempotent response cache
//! recover every such loss.

use crate::message::{Request, Response};
use hypertee_faults::{FaultInjector, FaultKind, FaultStats};
use std::collections::{HashMap, VecDeque};

/// Proof that a specific request was submitted; required to poll its
/// response. Not cloneable — one request, one collector.
#[derive(Debug, PartialEq, Eq)]
pub struct RequestTicket {
    req_id: u64,
}

impl RequestTicket {
    /// The bound request identification.
    pub fn req_id(&self) -> u64 {
        self.req_id
    }
}

/// Mailbox traffic counters (timing-model input and fault observability).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MailboxStats {
    /// Requests submitted by EMCall (including resubmissions).
    pub requests: u64,
    /// Responses pushed by EMS.
    pub responses: u64,
    /// Poll attempts that found no response yet (EMCall polls, §III-C).
    pub empty_polls: u64,
    /// Requests lost on the fabric (injected).
    pub dropped_requests: u64,
    /// Responses lost on the fabric (injected).
    pub dropped_responses: u64,
    /// Responses duplicated on the fabric (injected); the stale copy is
    /// quarantined and never delivered to any ticket.
    pub duplicated_responses: u64,
    /// Responses held back for a number of polls (injected).
    pub delayed_responses: u64,
    /// Responses discarded at poll time because their checksum failed.
    pub corrupt_dropped: u64,
}

/// The request/response mailbox.
#[derive(Debug, Default)]
pub struct Mailbox {
    next_req_id: u64,
    requests: VecDeque<Request>,
    responses: HashMap<u64, Response>,
    /// Responses held in flight for `u32` more polls (injected delay).
    delayed: Vec<(u32, Response)>,
    /// Stale duplicate copies: observable for tests, never deliverable.
    stale: Vec<Response>,
    injector: FaultInjector,
    /// Counters.
    pub stats: MailboxStats,
}

impl Mailbox {
    /// Creates an empty mailbox with fault injection disarmed.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Installs an armed fault injector (replay a campaign from its seed).
    pub fn arm_faults(&mut self, injector: FaultInjector) {
        self.injector = injector;
    }

    /// Faults injected at this site so far.
    pub fn fault_stats(&self) -> &FaultStats {
        self.injector.stats()
    }

    /// Submits a request (EMCall side). The mailbox assigns the unique
    /// request identification and returns the binding ticket. An injected
    /// fabric fault may lose the packet after the identification is
    /// assigned — exactly like real hardware, the sender still holds a
    /// valid ticket and recovers by resubmission after a poll timeout.
    pub fn submit(&mut self, mut request: Request) -> RequestTicket {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        request.req_id = req_id;
        self.stats.requests += 1;
        if self.injector.roll(FaultKind::MailboxDropRequest) {
            self.stats.dropped_requests += 1;
        } else {
            self.requests.push_back(request);
        }
        RequestTicket { req_id }
    }

    /// Re-submits a request under an existing ticket's identification
    /// (EMCall's idempotent retry after a poll timeout). The packet crosses
    /// the same fabric, so it rolls the same drop fault.
    pub fn resubmit(&mut self, ticket: &RequestTicket, mut request: Request) {
        request.req_id = ticket.req_id;
        self.stats.requests += 1;
        if self.injector.roll(FaultKind::MailboxDropRequest) {
            self.stats.dropped_requests += 1;
        } else {
            self.requests.push_back(request);
        }
    }

    /// Fetches the oldest pending request (EMS side; gated by the iHub).
    pub(crate) fn fetch_request(&mut self) -> Option<Request> {
        self.requests.pop_front()
    }

    /// Pushes a response (EMS side; gated by the iHub). Injected faults may
    /// drop, corrupt, duplicate, or delay the packet here.
    pub(crate) fn push_response(&mut self, mut response: Response) {
        self.stats.responses += 1;
        if self.injector.roll(FaultKind::MailboxDropResponse) {
            self.stats.dropped_responses += 1;
            return;
        }
        if self.injector.roll(FaultKind::MailboxCorruptResponse) {
            // A fabric bit-flip: any field past the header; the sealed
            // checksum no longer matches and poll will discard the packet.
            if let Some(v) = response.vals.first_mut() {
                *v ^= 1;
            } else {
                response.crc ^= 1 << 17;
            }
        }
        if self.injector.roll(FaultKind::MailboxDuplicateResponse) {
            self.stats.duplicated_responses += 1;
            self.stale.push(response.clone());
        }
        if self.injector.roll(FaultKind::MailboxDelayResponse) {
            self.stats.delayed_responses += 1;
            let polls = self.injector.delay_polls();
            self.delayed.push((polls, response));
            return;
        }
        self.responses.insert(response.req_id, response);
    }

    /// Advances the mailbox's notion of time by one scheduler round,
    /// releasing delayed responses whose hold-down expired. Returns the
    /// request identifications that just became pollable so an event-driven
    /// scheduler can wake exactly those callers (release order is the
    /// injection order, which is deterministic under a seeded plan).
    pub fn advance_round(&mut self) -> Vec<u64> {
        let mut ready = Vec::new();
        self.delayed.retain_mut(|(polls, resp)| {
            if *polls <= 1 {
                ready.push(std::mem::replace(
                    resp,
                    Response::err(0, crate::message::Status::Ok),
                ));
                false
            } else {
                *polls -= 1;
                true
            }
        });
        let mut released = Vec::with_capacity(ready.len());
        for resp in ready {
            released.push(resp.req_id);
            self.responses.insert(resp.req_id, resp);
        }
        released
    }

    /// Whether a response for `req_id` is sitting in the delivery slot
    /// (delayed packets don't count until [`Mailbox::advance_round`]
    /// releases them). Lets a poller skip guaranteed-empty polls without
    /// consuming or even inspecting the packet.
    pub fn has_response(&self, req_id: u64) -> bool {
        self.responses.contains_key(&req_id)
    }

    /// Polls for the response bound to `ticket`. Returns the ticket back on
    /// a miss so the caller can poll again — the polling loop EMCall uses
    /// instead of trusting CS interrupt handlers. A response that fails its
    /// integrity check is discarded and reported as a miss: the caller's
    /// retry path treats it exactly like a lost packet.
    pub fn poll(&mut self, ticket: RequestTicket) -> Result<Response, RequestTicket> {
        match self.responses.remove(&ticket.req_id) {
            Some(r) if r.intact() => {
                // Quarantined duplicates of a collected response can never
                // be delivered again; drop them.
                self.stale.retain(|s| s.req_id != ticket.req_id);
                Ok(r)
            }
            Some(_) => {
                self.stats.corrupt_dropped += 1;
                self.stats.empty_polls += 1;
                Err(ticket)
            }
            None => {
                self.stats.empty_polls += 1;
                Err(ticket)
            }
        }
    }

    /// Number of requests waiting for EMS.
    pub fn pending_requests(&self) -> usize {
        self.requests.len()
    }

    /// Number of responses waiting for collection (delivered or delayed).
    pub fn pending_responses(&self) -> usize {
        self.responses.len() + self.delayed.len()
    }

    /// Number of quarantined stale duplicates (test observability).
    pub fn stale_duplicates(&self) -> usize {
        self.stale.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{CallerIdentity, Primitive, Privilege, Status};
    use hypertee_faults::{FaultConfig, FaultPlan};

    fn request() -> Request {
        Request {
            req_id: 0,
            primitive: Primitive::Ealloc,
            caller: CallerIdentity {
                privilege: Privilege::User,
                enclave: None,
            },
            args: vec![4096],
            payload: Vec::new(),
        }
    }

    #[test]
    fn submit_fetch_respond_poll() {
        let mut mb = Mailbox::new();
        let ticket = mb.submit(request());
        let req = mb.fetch_request().unwrap();
        assert_eq!(req.req_id, ticket.req_id());
        mb.push_response(Response::ok(req.req_id, vec![42]));
        let resp = mb.poll(ticket).unwrap();
        assert_eq!(resp.vals, vec![42]);
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn poll_before_response_misses() {
        let mut mb = Mailbox::new();
        let ticket = mb.submit(request());
        let ticket = mb.poll(ticket).unwrap_err();
        assert_eq!(mb.stats.empty_polls, 1);
        let req = mb.fetch_request().unwrap();
        mb.push_response(Response::ok(req.req_id, vec![]));
        assert!(mb.poll(ticket).is_ok());
    }

    #[test]
    fn responses_bound_exclusively() {
        // Two in-flight requests: each ticket only ever sees its own
        // response, regardless of completion order.
        let mut mb = Mailbox::new();
        let t1 = mb.submit(request());
        let t2 = mb.submit(request());
        let r1 = mb.fetch_request().unwrap();
        let r2 = mb.fetch_request().unwrap();
        // EMS completes the *second* request first.
        mb.push_response(Response::ok(r2.req_id, vec![2]));
        mb.push_response(Response::ok(r1.req_id, vec![1]));
        assert_eq!(mb.poll(t1).unwrap().vals, vec![1]);
        assert_eq!(mb.poll(t2).unwrap().vals, vec![2]);
    }

    #[test]
    fn request_ids_are_unique() {
        let mut mb = Mailbox::new();
        let t1 = mb.submit(request());
        let t2 = mb.submit(request());
        let t3 = mb.submit(request());
        assert_ne!(t1.req_id(), t2.req_id());
        assert_ne!(t2.req_id(), t3.req_id());
    }

    #[test]
    fn fifo_request_delivery() {
        let mut mb = Mailbox::new();
        let mut ids = Vec::new();
        for _ in 0..5 {
            ids.push(mb.submit(request()).req_id());
        }
        for expected in ids {
            assert_eq!(mb.fetch_request().unwrap().req_id, expected);
        }
    }

    #[test]
    fn resubmission_reuses_the_ticket_id() {
        let mut mb = Mailbox::new();
        let ticket = mb.submit(request());
        let first = mb.fetch_request().unwrap();
        mb.resubmit(&ticket, request());
        let second = mb.fetch_request().unwrap();
        assert_eq!(first.req_id, second.req_id);
        assert_eq!(second.req_id, ticket.req_id());
    }

    #[test]
    fn corrupt_response_is_discarded_not_delivered() {
        let mut mb = Mailbox::new();
        let ticket = mb.submit(request());
        let req = mb.fetch_request().unwrap();
        let mut resp = Response::ok(req.req_id, vec![42]);
        resp.vals[0] ^= 1; // corrupted in flight, checksum now stale
        mb.push_response(resp);
        let ticket = mb.poll(ticket).unwrap_err();
        assert_eq!(mb.stats.corrupt_dropped, 1);
        // Recovery: resubmit and answer cleanly.
        mb.resubmit(&ticket, request());
        let req = mb.fetch_request().unwrap();
        mb.push_response(Response::ok(req.req_id, vec![42]));
        assert_eq!(mb.poll(ticket).unwrap().vals, vec![42]);
    }

    #[test]
    fn delayed_responses_arrive_after_enough_polls() {
        let plan = FaultPlan::new(
            11,
            FaultConfig {
                delay_response_pm: 1000,
                delay_polls_max: 3,
                ..FaultConfig::disabled()
            },
        );
        let mut mb = Mailbox::new();
        mb.arm_faults(plan.injector("mailbox"));
        let mut ticket = mb.submit(request());
        let req = mb.fetch_request().unwrap();
        mb.push_response(Response::ok(req.req_id, vec![7]));
        assert_eq!(mb.pending_responses(), 1, "response must be held, not lost");
        assert!(
            !mb.has_response(req.req_id),
            "delayed packet is not pollable"
        );
        let mut rounds = 0;
        loop {
            match mb.poll(ticket) {
                Ok(resp) => {
                    assert_eq!(resp.vals, vec![7]);
                    break;
                }
                Err(t) => {
                    ticket = t;
                    rounds += 1;
                    assert!(rounds <= 4, "delay must expire within delay_polls_max + 1");
                    let released = mb.advance_round();
                    if !released.is_empty() {
                        assert_eq!(released, vec![req.req_id]);
                        assert!(mb.has_response(req.req_id));
                    }
                }
            }
        }
        assert!(rounds >= 1, "a delayed response cannot arrive instantly");
    }

    #[test]
    fn duplicates_are_quarantined_and_purged() {
        let plan = FaultPlan::new(
            5,
            FaultConfig {
                duplicate_response_pm: 1000,
                ..FaultConfig::disabled()
            },
        );
        let mut mb = Mailbox::new();
        mb.arm_faults(plan.injector("mailbox"));
        let ticket = mb.submit(request());
        let req = mb.fetch_request().unwrap();
        mb.push_response(Response::ok(req.req_id, vec![9]));
        assert_eq!(mb.stale_duplicates(), 1);
        assert_eq!(mb.poll(ticket).unwrap().vals, vec![9]);
        // Collecting the real copy purges the quarantined duplicate.
        assert_eq!(mb.stale_duplicates(), 0);
    }
}
