//! EMS-managed IOMMU (§V-B, §IX).
//!
//! "For peripherals relying on IOMMU, it is EMS to manage the IOMMU page
//! tables to enhance security." §IX adds for GPUs: "IOMMU being managed by
//! EMS for security, including register configuration, IOTLB cache
//! invalidation, and address translation table maintenance. The address
//! translation table records memory regions accessible to GPU DMA and
//! protects enclave memory from unauthorized DMA accesses."
//!
//! Devices issue I/O virtual addresses (IOVAs); the IOMMU translates through
//! per-device tables that only EMS can edit (the [`crate::ihub`] capability
//! gates the mutating calls). The IOTLB caches translations and is
//! invalidated by EMS on unmap — the same stale-entry discipline as the CS
//! TLB and the bitmap.

use hypertee_mem::addr::{PhysAddr, Ppn, PAGE_SIZE};
use std::collections::{HashMap, VecDeque};

use crate::dma::{DeviceId, DmaPerm};

/// An I/O virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IoVpn(pub u64);

/// One IOMMU mapping entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IommuEntry {
    /// Target physical frame.
    pub ppn: Ppn,
    /// Allowed direction.
    pub perm: DmaPerm,
}

/// IOMMU event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IommuStats {
    /// IOTLB hits.
    pub iotlb_hits: u64,
    /// IOTLB misses (table walks).
    pub iotlb_misses: u64,
    /// Translation faults (unmapped IOVA or permission).
    pub faults: u64,
    /// IOTLB invalidations issued by EMS.
    pub invalidations: u64,
}

/// The IOMMU: per-device translation tables plus a shared IOTLB.
#[derive(Debug, Default)]
pub struct Iommu {
    tables: HashMap<DeviceId, HashMap<IoVpn, IommuEntry>>,
    iotlb: VecDeque<(DeviceId, IoVpn, IommuEntry)>,
    iotlb_capacity: usize,
    /// Counters.
    pub stats: IommuStats,
}

impl Iommu {
    /// Creates an IOMMU with an IOTLB of `iotlb_capacity` entries.
    pub fn new(iotlb_capacity: usize) -> Iommu {
        Iommu {
            iotlb_capacity: iotlb_capacity.max(1),
            ..Iommu::default()
        }
    }

    /// Installs one mapping for a device (EMS-only; called through the iHub
    /// gate). Replaces any existing mapping for the IOVA.
    pub(crate) fn map(&mut self, dev: DeviceId, iova: IoVpn, entry: IommuEntry) {
        self.tables.entry(dev).or_default().insert(iova, entry);
        // A remap must not leave a stale cached translation.
        self.invalidate(dev, iova);
    }

    /// Removes one mapping and invalidates the IOTLB (EMS-only).
    pub(crate) fn unmap(&mut self, dev: DeviceId, iova: IoVpn) -> bool {
        let removed = self
            .tables
            .get_mut(&dev)
            .map(|t| t.remove(&iova).is_some())
            .unwrap_or(false);
        self.invalidate(dev, iova);
        removed
    }

    /// Removes every mapping of a device (EMS-only; device teardown).
    pub(crate) fn detach(&mut self, dev: DeviceId) {
        self.tables.remove(&dev);
        self.iotlb.retain(|(d, _, _)| *d != dev);
        self.stats.invalidations += 1;
    }

    fn invalidate(&mut self, dev: DeviceId, iova: IoVpn) {
        let before = self.iotlb.len();
        self.iotlb.retain(|(d, v, _)| !(*d == dev && *v == iova));
        if self.iotlb.len() != before {
            self.stats.invalidations += 1;
        }
    }

    /// Translates a device access of `len` bytes at byte address
    /// `iova_addr`. Returns the physical address on success.
    ///
    /// Accesses may not cross an I/O page boundary (devices issue
    /// page-granular bursts; larger transfers are split by the DMA engine).
    pub fn translate(
        &mut self,
        dev: DeviceId,
        iova_addr: u64,
        len: u64,
        write: bool,
    ) -> Option<PhysAddr> {
        let iova = IoVpn(iova_addr / PAGE_SIZE);
        let offset = iova_addr % PAGE_SIZE;
        if len == 0 || offset + len > PAGE_SIZE {
            self.stats.faults += 1;
            return None;
        }
        let entry = match self
            .iotlb
            .iter()
            .find(|(d, v, _)| *d == dev && *v == iova)
            .map(|(_, _, e)| *e)
        {
            Some(e) => {
                self.stats.iotlb_hits += 1;
                e
            }
            None => {
                self.stats.iotlb_misses += 1;
                let looked_up = self.tables.get(&dev).and_then(|t| t.get(&iova)).copied();
                let Some(e) = looked_up else {
                    self.stats.faults += 1;
                    return None;
                };
                if self.iotlb.len() == self.iotlb_capacity {
                    self.iotlb.pop_front();
                }
                self.iotlb.push_back((dev, iova, e));
                e
            }
        };
        let perm_ok = match entry.perm {
            DmaPerm::ReadWrite => true,
            DmaPerm::ReadOnly => !write,
        };
        if !perm_ok {
            self.stats.faults += 1;
            return None;
        }
        Some(PhysAddr(entry.ppn.base().0 + offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceId {
        DeviceId(7)
    }

    #[test]
    fn translation_roundtrip() {
        let mut iommu = Iommu::new(8);
        iommu.map(
            dev(),
            IoVpn(5),
            IommuEntry {
                ppn: Ppn(100),
                perm: DmaPerm::ReadWrite,
            },
        );
        let pa = iommu
            .translate(dev(), 5 * PAGE_SIZE + 0x30, 64, true)
            .unwrap();
        assert_eq!(pa, PhysAddr(100 * PAGE_SIZE + 0x30));
    }

    #[test]
    fn unmapped_iova_faults() {
        let mut iommu = Iommu::new(8);
        assert!(iommu.translate(dev(), 0x1000, 8, false).is_none());
        assert!(iommu.stats.iotlb_misses >= 1);
    }

    #[test]
    fn tables_are_per_device() {
        let mut iommu = Iommu::new(8);
        iommu.map(
            DeviceId(1),
            IoVpn(0),
            IommuEntry {
                ppn: Ppn(10),
                perm: DmaPerm::ReadWrite,
            },
        );
        assert!(iommu.translate(DeviceId(2), 0, 8, false).is_none());
        assert!(iommu.translate(DeviceId(1), 0, 8, false).is_some());
    }

    #[test]
    fn readonly_mapping_blocks_writes() {
        let mut iommu = Iommu::new(8);
        iommu.map(
            dev(),
            IoVpn(1),
            IommuEntry {
                ppn: Ppn(20),
                perm: DmaPerm::ReadOnly,
            },
        );
        assert!(iommu.translate(dev(), PAGE_SIZE, 8, false).is_some());
        assert!(iommu.translate(dev(), PAGE_SIZE, 8, true).is_none());
    }

    #[test]
    fn iotlb_caches_and_invalidation_works() {
        let mut iommu = Iommu::new(8);
        iommu.map(
            dev(),
            IoVpn(3),
            IommuEntry {
                ppn: Ppn(30),
                perm: DmaPerm::ReadWrite,
            },
        );
        iommu.translate(dev(), 3 * PAGE_SIZE, 8, false).unwrap();
        iommu.translate(dev(), 3 * PAGE_SIZE + 8, 8, false).unwrap();
        assert_eq!(iommu.stats.iotlb_hits, 1);
        // EMS unmaps: the cached translation must die with the mapping —
        // the stale-IOTLB attack the paper's invalidation discipline stops.
        assert!(iommu.unmap(dev(), IoVpn(3)));
        assert!(iommu.translate(dev(), 3 * PAGE_SIZE, 8, false).is_none());
    }

    #[test]
    fn remap_replaces_cached_entry() {
        let mut iommu = Iommu::new(8);
        iommu.map(
            dev(),
            IoVpn(4),
            IommuEntry {
                ppn: Ppn(40),
                perm: DmaPerm::ReadWrite,
            },
        );
        iommu.translate(dev(), 4 * PAGE_SIZE, 8, false).unwrap();
        iommu.map(
            dev(),
            IoVpn(4),
            IommuEntry {
                ppn: Ppn(41),
                perm: DmaPerm::ReadWrite,
            },
        );
        let pa = iommu.translate(dev(), 4 * PAGE_SIZE, 8, false).unwrap();
        assert_eq!(
            pa.ppn(),
            Ppn(41),
            "stale IOTLB entry must not survive a remap"
        );
    }

    #[test]
    fn page_crossing_access_faults() {
        let mut iommu = Iommu::new(8);
        iommu.map(
            dev(),
            IoVpn(0),
            IommuEntry {
                ppn: Ppn(10),
                perm: DmaPerm::ReadWrite,
            },
        );
        iommu.map(
            dev(),
            IoVpn(1),
            IommuEntry {
                ppn: Ppn(11),
                perm: DmaPerm::ReadWrite,
            },
        );
        assert!(iommu.translate(dev(), PAGE_SIZE - 8, 16, false).is_none());
    }

    #[test]
    fn detach_clears_everything() {
        let mut iommu = Iommu::new(8);
        iommu.map(
            dev(),
            IoVpn(0),
            IommuEntry {
                ppn: Ppn(10),
                perm: DmaPerm::ReadWrite,
            },
        );
        iommu.translate(dev(), 0, 8, false).unwrap();
        iommu.detach(dev());
        assert!(iommu.translate(dev(), 0, 8, false).is_none());
    }

    #[test]
    fn iotlb_capacity_evicts_fifo() {
        let mut iommu = Iommu::new(2);
        for i in 0..3u64 {
            iommu.map(
                dev(),
                IoVpn(i),
                IommuEntry {
                    ppn: Ppn(50 + i),
                    perm: DmaPerm::ReadWrite,
                },
            );
            iommu.translate(dev(), i * PAGE_SIZE, 8, false).unwrap();
        }
        // Entry 0 was evicted: next access misses but still translates.
        let misses = iommu.stats.iotlb_misses;
        iommu.translate(dev(), 0, 8, false).unwrap();
        assert_eq!(iommu.stats.iotlb_misses, misses + 1);
    }
}
