//! Fixed-capacity ring task queues (§III-C, Fig. 3).
//!
//! "When a CS application initiates an enclave primitive request, EMCall
//! generates request packets and stores them in a ring task queue for
//! transmission (Tx)… EMS fetches the requests to its own task queue for
//! receiving (Rx)." Both queues are invisible to CS software; in the
//! reproduction they are private fields of the EMCall/EMS structures.

/// A bounded FIFO ring buffer.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    slots: Vec<Option<T>>,
    head: usize,
    tail: usize,
    len: usize,
}

impl<T> Ring<T> {
    /// Creates a ring with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(None);
        }
        Ring { slots, head: 0, tail: 0, len: 0 }
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the ring is full.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    /// Enqueues an item; returns it back if the ring is full (the caller —
    /// the transmitter module — retries later).
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            return Err(item);
        }
        self.slots[self.tail] = Some(item);
        self.tail = (self.tail + 1) % self.capacity();
        self.len += 1;
        Ok(())
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        if self.is_empty() {
            return None;
        }
        let item = self.slots[self.head].take();
        self.head = (self.head + 1) % self.capacity();
        self.len -= 1;
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = Ring::new(4);
        for i in 0..4 {
            r.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn full_ring_rejects() {
        let mut r = Ring::new(2);
        r.push('a').unwrap();
        r.push('b').unwrap();
        assert_eq!(r.push('c'), Err('c'));
        assert!(r.is_full());
    }

    #[test]
    fn wraparound_preserves_order() {
        let mut r = Ring::new(3);
        r.push(1).unwrap();
        r.push(2).unwrap();
        assert_eq!(r.pop(), Some(1));
        r.push(3).unwrap();
        r.push(4).unwrap();
        assert!(r.is_full());
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(4));
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        Ring::<u8>::new(0);
    }
}
