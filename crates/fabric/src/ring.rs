//! Fixed-capacity ring task queues (§III-C, Fig. 3).
//!
//! "When a CS application initiates an enclave primitive request, EMCall
//! generates request packets and stores them in a ring task queue for
//! transmission (Tx)… EMS fetches the requests to its own task queue for
//! receiving (Rx)." Both queues are invisible to CS software; in the
//! reproduction they are private fields of the EMCall/EMS structures.

/// A bounded FIFO ring buffer.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    slots: Vec<Option<T>>,
    head: usize,
    tail: usize,
    len: usize,
    /// Remaining pops the queue will refuse (injected hardware stall).
    stalled: u32,
}

impl<T> Ring<T> {
    /// Creates a ring with `capacity` slots. A zero capacity is a
    /// configuration error, not a crash: it is clamped to one slot so the
    /// request path can never panic on a malformed ring size.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(None);
        }
        Ring {
            slots,
            head: 0,
            tail: 0,
            len: 0,
            stalled: 0,
        }
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the ring is full.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    /// Enqueues an item; returns it back if the ring is full (the caller —
    /// the transmitter module — retries later).
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            return Err(item);
        }
        self.slots[self.tail] = Some(item);
        self.tail = (self.tail + 1) % self.capacity();
        self.len += 1;
        Ok(())
    }

    /// Dequeues the oldest item. A stalled ring refuses to deliver until
    /// the stall drains (one unit per pop attempt), modelling a queue whose
    /// read port is transiently wedged; items are retained, never lost.
    pub fn pop(&mut self) -> Option<T> {
        if self.stalled > 0 {
            self.stalled -= 1;
            return None;
        }
        if self.is_empty() {
            return None;
        }
        let item = self.slots[self.head].take();
        self.head = (self.head + 1) % self.capacity();
        self.len -= 1;
        item
    }

    /// Injects a stall: the next `pops` pop attempts return `None` even if
    /// items are queued.
    pub fn stall(&mut self, pops: u32) {
        self.stalled = self.stalled.saturating_add(pops);
    }

    /// Whether the ring is currently refusing pops.
    pub fn is_stalled(&self) -> bool {
        self.stalled > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = Ring::new(4);
        for i in 0..4 {
            r.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn full_ring_rejects() {
        let mut r = Ring::new(2);
        r.push('a').unwrap();
        r.push('b').unwrap();
        assert_eq!(r.push('c'), Err('c'));
        assert!(r.is_full());
    }

    #[test]
    fn wraparound_preserves_order() {
        let mut r = Ring::new(3);
        r.push(1).unwrap();
        r.push(2).unwrap();
        assert_eq!(r.pop(), Some(1));
        r.push(3).unwrap();
        r.push(4).unwrap();
        assert!(r.is_full());
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(4));
        assert!(r.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped_not_a_panic() {
        let mut r = Ring::<u8>::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(9).unwrap();
        assert_eq!(r.push(10), Err(10));
        assert_eq!(r.pop(), Some(9));
    }

    #[test]
    fn stall_withholds_then_delivers() {
        let mut r = Ring::new(4);
        r.push(1).unwrap();
        r.push(2).unwrap();
        r.stall(2);
        assert!(r.is_stalled());
        assert_eq!(r.pop(), None);
        assert_eq!(r.pop(), None);
        assert!(!r.is_stalled());
        // Nothing was lost.
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), Some(2));
    }
}
