//! On-chip fabric of the HyperTEE SoC: iHub, mailbox, and DMA whitelist.
//!
//! §III of the paper: "CS cores and HyperTEE IP are connected through an
//! on-chip fabric, mediated by *iHub*… iHub allows uni-directional access to
//! the entire CS memory space and I/O devices by EMS. Conversely, EMS private
//! memory and its I/O devices remain invisible to CS."
//!
//! The unidirectional isolation is enforced *structurally*: operations that
//! only EMS may perform (fetching requests, pushing responses, programming
//! encryption keys, configuring the DMA whitelist) require an
//! [`ihub::EmsCapability`], a token minted exactly once when the iHub is
//! built and handed to the EMS runtime. CS-side code holds no such token, so
//! the forbidden calls are unrepresentable rather than merely rejected.
//!
//! * [`message`] — primitive requests/responses and Table II's privilege map.
//! * [`ring`] — the Tx/Rx ring task queues inside EMCall (§III-C, Fig. 3).
//! * [`mailbox`] — the request/response queues in iHub with exclusive
//!   request↔response binding.
//! * [`dma`] — the DMA whitelist register file (§V-C).
//! * [`ihub`] — the hub tying them together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dma;
pub mod ihub;
pub mod iommu;
pub mod mailbox;
pub mod message;
pub mod ring;
