//! The DMA whitelist (§V-C).
//!
//! "HyperTEE employs the DMA whitelist in CS hardware. This whitelist
//! consists of a set of register pairs and each register pair concludes the
//! address, size, and permission to restrict the legal region for each DMA.
//! Any DMA access beyond the legal region will be discarded. The whitelist
//! is implemented as control registers within the on-chip fabric and is
//! exclusively configurable by EMS."

use hypertee_faults::{FaultInjector, FaultKind, FaultStats};
use hypertee_mem::addr::PhysAddr;

/// Identifier of a DMA-capable device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

/// Permission of a whitelist window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaPerm {
    /// The device may only read the window.
    ReadOnly,
    /// The device may read and write the window.
    ReadWrite,
}

/// One whitelist register pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaWindow {
    /// Base physical address.
    pub base: PhysAddr,
    /// Window size in bytes.
    pub size: u64,
    /// Allowed direction.
    pub perm: DmaPerm,
}

impl DmaWindow {
    fn covers(&self, addr: PhysAddr, len: u64, write: bool) -> bool {
        let in_range =
            addr.0 >= self.base.0 && len <= self.size && addr.0 - self.base.0 <= self.size - len;
        let perm_ok = match self.perm {
            DmaPerm::ReadWrite => true,
            DmaPerm::ReadOnly => !write,
        };
        in_range && perm_ok
    }
}

/// The whitelist register file.
#[derive(Debug, Default)]
pub struct DmaWhitelist {
    windows: Vec<(DeviceId, DmaWindow)>,
    /// Accesses discarded because no window covered them.
    pub discarded: u64,
    /// Legitimate accesses spuriously denied by an injected register flap.
    pub flapped: u64,
    injector: FaultInjector,
}

impl DmaWhitelist {
    /// Creates an empty whitelist: by default every DMA access is discarded.
    pub fn new() -> Self {
        DmaWhitelist::default()
    }

    /// Installs a window for a device. Called through the iHub EMS port
    /// only — CS software has no path to this register file.
    pub fn grant(&mut self, dev: DeviceId, window: DmaWindow) {
        self.windows.push((dev, window));
    }

    /// Removes all windows of a device (driver-enclave teardown).
    pub fn revoke_all(&mut self, dev: DeviceId) {
        self.windows.retain(|(d, _)| *d != dev);
    }

    /// Installs an armed fault injector: the whitelist can spuriously deny
    /// a legitimate access (a register "flap"), which devices handle by
    /// retrying the transfer.
    pub fn arm_faults(&mut self, injector: FaultInjector) {
        self.injector = injector;
    }

    /// Faults injected at this site so far.
    pub fn fault_stats(&self) -> &FaultStats {
        self.injector.stats()
    }

    /// Checks one DMA access; counts and reports discards. An injected
    /// whitelist flap denies (and counts) an access the windows would have
    /// allowed — fail-closed, never fail-open.
    pub fn check(&mut self, dev: DeviceId, addr: PhysAddr, len: u64, write: bool) -> bool {
        let mut ok = self
            .windows
            .iter()
            .any(|(d, w)| *d == dev && w.covers(addr, len, write));
        if ok && self.injector.roll(FaultKind::DmaFlap) {
            self.flapped += 1;
            ok = false;
        }
        if !ok {
            self.discarded += 1;
        }
        ok
    }

    /// Number of installed windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no windows are installed.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_deny() {
        let mut wl = DmaWhitelist::new();
        assert!(!wl.check(DeviceId(0), PhysAddr(0x1000), 64, false));
        assert_eq!(wl.discarded, 1);
    }

    #[test]
    fn granted_window_allows() {
        let mut wl = DmaWhitelist::new();
        wl.grant(
            DeviceId(1),
            DmaWindow {
                base: PhysAddr(0x10_000),
                size: 0x1000,
                perm: DmaPerm::ReadWrite,
            },
        );
        assert!(wl.check(DeviceId(1), PhysAddr(0x10_000), 64, true));
        assert!(wl.check(DeviceId(1), PhysAddr(0x10_fc0), 64, false));
        // One byte past the end is discarded.
        assert!(!wl.check(DeviceId(1), PhysAddr(0x10_fc1), 64, false));
    }

    #[test]
    fn window_is_per_device() {
        let mut wl = DmaWhitelist::new();
        wl.grant(
            DeviceId(1),
            DmaWindow {
                base: PhysAddr(0),
                size: 0x1000,
                perm: DmaPerm::ReadWrite,
            },
        );
        assert!(
            !wl.check(DeviceId(2), PhysAddr(0), 64, false),
            "other devices stay denied"
        );
    }

    #[test]
    fn readonly_window_blocks_writes() {
        let mut wl = DmaWhitelist::new();
        wl.grant(
            DeviceId(3),
            DmaWindow {
                base: PhysAddr(0x2000),
                size: 0x1000,
                perm: DmaPerm::ReadOnly,
            },
        );
        assert!(wl.check(DeviceId(3), PhysAddr(0x2000), 16, false));
        assert!(!wl.check(DeviceId(3), PhysAddr(0x2000), 16, true));
    }

    #[test]
    fn revoke_restores_default_deny() {
        let mut wl = DmaWhitelist::new();
        wl.grant(
            DeviceId(1),
            DmaWindow {
                base: PhysAddr(0),
                size: 0x1000,
                perm: DmaPerm::ReadWrite,
            },
        );
        wl.revoke_all(DeviceId(1));
        assert!(!wl.check(DeviceId(1), PhysAddr(0), 64, false));
        assert!(wl.is_empty());
    }

    #[test]
    fn flap_denies_then_retry_succeeds() {
        use hypertee_faults::{FaultConfig, FaultPlan};
        let plan = FaultPlan::new(
            21,
            FaultConfig {
                dma_flap_pm: 200,
                ..FaultConfig::disabled()
            },
        );
        let mut wl = DmaWhitelist::new();
        wl.arm_faults(plan.injector("dma"));
        wl.grant(
            DeviceId(1),
            DmaWindow {
                base: PhysAddr(0x10_000),
                size: 0x1000,
                perm: DmaPerm::ReadWrite,
            },
        );
        // Drive enough accesses that the flap fires at least once; every
        // denial is recoverable by simply retrying (bounded here at 12).
        let mut flaps_seen = 0;
        for _ in 0..200 {
            let mut tries = 0;
            while !wl.check(DeviceId(1), PhysAddr(0x10_000), 64, true) {
                tries += 1;
                assert!(tries < 12, "a legitimate access must eventually pass");
            }
            flaps_seen = wl.flapped;
        }
        assert!(flaps_seen > 0, "flap should have fired under a 20% rate");
        assert_eq!(wl.flapped, wl.discarded, "only injected denials occurred");
    }

    #[test]
    fn overflow_safe_bounds() {
        let mut wl = DmaWhitelist::new();
        wl.grant(
            DeviceId(1),
            DmaWindow {
                base: PhysAddr(u64::MAX - 0x100),
                size: 0x100,
                perm: DmaPerm::ReadWrite,
            },
        );
        // A length larger than the window cannot wrap around.
        assert!(!wl.check(DeviceId(1), PhysAddr(u64::MAX - 0x100), 0x200, false));
        assert!(wl.check(DeviceId(1), PhysAddr(u64::MAX - 0x100), 0x100, false));
    }
}
