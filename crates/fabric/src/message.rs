//! Primitive requests and responses, and Table II's privilege map.

use hypertee_mem::ownership::EnclaveId;

/// CS privilege level of a primitive caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Privilege {
    /// User mode (applications, enclaves).
    User,
    /// Supervisor mode (the CS operating system).
    Os,
    /// Machine mode (EMCall firmware itself).
    Machine,
}

/// The sixteen enclave primitives of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// Create an enclave.
    Ecreate,
    /// Load codes and data into an enclave.
    Eadd,
    /// Start executing an enclave.
    Eenter,
    /// Resume enclave execution.
    Eresume,
    /// Exit enclave execution.
    Eexit,
    /// Destroy an enclave.
    Edestroy,
    /// Allocate enclave memory.
    Ealloc,
    /// Release enclave memory.
    Efree,
    /// Swap enclave memory.
    Ewb,
    /// Apply shared memory from EMS.
    Eshmget,
    /// Attach shared memory to enclaves.
    Eshmat,
    /// Detach enclave shared memory.
    Eshmdt,
    /// Share memory with an enclave.
    Eshmshr,
    /// Destroy enclave shared memory.
    Eshmdes,
    /// Measure code and data of an enclave.
    Emeas,
    /// Sign enclave and platform.
    Eattest,
}

impl Primitive {
    /// The privilege level Table II requires for this primitive. EMCall
    /// "checks the current privilege register during primitive invocation
    /// and blocks any cross-privilege request" (§III-B).
    ///
    /// (Table II's Priv column in the paper text is garbled for the
    /// lifecycle rows; the assignment below follows the obvious semantics:
    /// only EEXIT originates from the enclave itself.)
    pub fn required_privilege(&self) -> Privilege {
        match self {
            Primitive::Ecreate
            | Primitive::Eadd
            | Primitive::Eenter
            | Primitive::Eresume
            | Primitive::Edestroy
            | Primitive::Ewb
            | Primitive::Emeas => Privilege::Os,
            Primitive::Eexit
            | Primitive::Ealloc
            | Primitive::Efree
            | Primitive::Eshmget
            | Primitive::Eshmat
            | Primitive::Eshmdt
            | Primitive::Eshmshr
            | Primitive::Eshmdes
            | Primitive::Eattest => Privilege::User,
        }
    }

    /// All sixteen primitives (handy for exhaustive tests).
    pub fn all() -> [Primitive; 16] {
        [
            Primitive::Ecreate,
            Primitive::Eadd,
            Primitive::Eenter,
            Primitive::Eresume,
            Primitive::Eexit,
            Primitive::Edestroy,
            Primitive::Ealloc,
            Primitive::Efree,
            Primitive::Ewb,
            Primitive::Eshmget,
            Primitive::Eshmat,
            Primitive::Eshmdt,
            Primitive::Eshmshr,
            Primitive::Eshmdes,
            Primitive::Emeas,
            Primitive::Eattest,
        ]
    }
}

/// Identity EMCall stamps into every request (§III-B: "EMCall encapsulates
/// the current enclave identification (enclaveID) as an argument. In this
/// way, attackers cannot impersonate other enclaves").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallerIdentity {
    /// Privilege level EMCall read from the privilege register.
    pub privilege: Privilege,
    /// The enclave currently executing on the calling hart, if any.
    pub enclave: Option<EnclaveId>,
}

/// A primitive request packet as transmitted through the mailbox.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Unique identification binding this request to its response.
    pub req_id: u64,
    /// Requested primitive.
    pub primitive: Primitive,
    /// Caller identity stamped by EMCall.
    pub caller: CallerIdentity,
    /// Scalar arguments (sizes, addresses, IDs — sanity-checked by EMS).
    pub args: Vec<u64>,
    /// Bulk payload (e.g. EADD image chunk descriptors). Enclave private
    /// data is never carried here (§III-C).
    pub payload: Vec<u8>,
}

/// Response status codes from EMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The primitive succeeded.
    Ok,
    /// Arguments failed the EMS sanity check.
    InvalidArgument,
    /// The caller's privilege did not match Table II.
    PrivilegeMismatch,
    /// The caller does not own / may not touch the target object.
    AccessDenied,
    /// Out of resources (frames, KeyIDs, pool).
    Exhausted,
    /// The referenced object does not exist.
    NotFound,
    /// The object is in the wrong life-cycle state for this primitive
    /// (e.g. entering an unmeasured enclave, or any primitive other than
    /// EDESTROY on a poisoned enclave).
    BadState,
    /// A memory-subsystem fault surfaced while executing the primitive
    /// (page fault, bitmap violation, integrity violation, bus error).
    MemFault,
    /// The primitive was aborted mid-flight and its partial effects were
    /// rolled back; the caller may retry the identical request.
    Aborted,
}

impl Status {
    /// Stable numeric code (wire encoding; feeds the response checksum).
    pub fn code(self) -> u64 {
        match self {
            Status::Ok => 0,
            Status::InvalidArgument => 1,
            Status::PrivilegeMismatch => 2,
            Status::AccessDenied => 3,
            Status::Exhausted => 4,
            Status::NotFound => 5,
            Status::BadState => 6,
            Status::MemFault => 7,
            Status::Aborted => 8,
        }
    }
}

/// A primitive response packet.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Matches [`Request::req_id`].
    pub req_id: u64,
    /// Outcome.
    pub status: Status,
    /// Scalar return values.
    pub vals: Vec<u64>,
    /// Bulk return data (e.g. attestation quotes, sealed blobs).
    pub payload: Vec<u8>,
    /// Integrity checksum over the other fields, sealed at construction.
    /// A packet corrupted on the fabric fails [`Response::intact`] and is
    /// discarded by the mailbox like a lost response (the retry path
    /// recovers it).
    pub crc: u64,
}

impl Response {
    /// Convenience constructor for success.
    pub fn ok(req_id: u64, vals: Vec<u64>) -> Response {
        Response {
            req_id,
            status: Status::Ok,
            vals,
            payload: Vec::new(),
            crc: 0,
        }
        .seal()
    }

    /// Success with bulk data attached.
    pub fn ok_with_payload(req_id: u64, vals: Vec<u64>, payload: Vec<u8>) -> Response {
        Response {
            req_id,
            status: Status::Ok,
            vals,
            payload,
            crc: 0,
        }
        .seal()
    }

    /// Convenience constructor for failure.
    pub fn err(req_id: u64, status: Status) -> Response {
        Response {
            req_id,
            status,
            vals: Vec::new(),
            payload: Vec::new(),
            crc: 0,
        }
        .seal()
    }

    fn checksum(&self) -> u64 {
        // FNV-1a over the wire image: req_id, status code, vals, payload.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for b in self.req_id.to_le_bytes() {
            eat(b);
        }
        for b in self.status.code().to_le_bytes() {
            eat(b);
        }
        for v in &self.vals {
            for b in v.to_le_bytes() {
                eat(b);
            }
        }
        for b in &self.payload {
            eat(*b);
        }
        h
    }

    /// Recomputes and installs the checksum; returns the sealed packet.
    pub fn seal(mut self) -> Response {
        self.crc = self.checksum();
        self
    }

    /// Whether the packet matches its checksum (i.e. was not corrupted in
    /// flight).
    pub fn intact(&self) -> bool {
        self.crc == self.checksum()
    }

    // Named views over `vals`. The scalar layout is a per-primitive wire
    // contract between the EMS dispatcher and the CS side; callers must go
    // through these instead of indexing `vals` so a layout change breaks
    // loudly here rather than silently mispricing or misparsing a reply.

    /// ECREATE: the EMS-assigned id of the new enclave.
    pub fn new_enclave_id(&self) -> Option<u64> {
        self.vals.first().copied()
    }

    /// EALLOC / ESHMAT: enclave VA the new region was mapped at.
    pub fn mapped_va(&self) -> Option<u64> {
        self.vals.first().copied()
    }

    /// EALLOC / ESHMAT: number of pages actually mapped.
    pub fn pages_mapped(&self) -> Option<u64> {
        self.vals.get(1).copied()
    }

    /// EWB: number of pages written back (encrypted + evicted).
    pub fn pages_written_back(&self) -> Option<u64> {
        self.vals.first().copied()
    }

    /// EWB: physical bases of the evicted frames, following the count.
    pub fn written_back_frames(&self) -> &[u64] {
        let count = self.pages_written_back().unwrap_or(0) as usize;
        self.vals.get(1..1 + count).unwrap_or(&[])
    }

    /// ESHMGET: the id of the new shared-memory segment.
    pub fn shm_id(&self) -> Option<u64> {
        self.vals.first().copied()
    }

    /// EENTER / ERESUME: (page-table root, entry PC, KeyID) to install on
    /// the entering hart.
    pub fn entry_context(&self) -> Option<(u64, u64, u64)> {
        match self.vals.as_slice() {
            [root, entry, key, ..] => Some((*root, *entry, *key)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privilege_table_matches_paper() {
        use Primitive::*;
        assert_eq!(Ecreate.required_privilege(), Privilege::Os);
        assert_eq!(Eadd.required_privilege(), Privilege::Os);
        assert_eq!(Ewb.required_privilege(), Privilege::Os);
        assert_eq!(Emeas.required_privilege(), Privilege::Os);
        assert_eq!(Ealloc.required_privilege(), Privilege::User);
        assert_eq!(Eattest.required_privilege(), Privilege::User);
        assert_eq!(Eshmget.required_privilege(), Privilege::User);
        assert_eq!(Eexit.required_privilege(), Privilege::User);
    }

    #[test]
    fn all_returns_each_primitive_once() {
        let all = Primitive::all();
        assert_eq!(all.len(), 16);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn response_constructors() {
        let ok = Response::ok(7, vec![1, 2]);
        assert_eq!(ok.status, Status::Ok);
        assert_eq!(ok.req_id, 7);
        let err = Response::err(8, Status::AccessDenied);
        assert!(err.vals.is_empty());
    }

    #[test]
    fn checksum_catches_any_field_tamper() {
        let sealed = Response::ok_with_payload(9, vec![3, 4], vec![0xaa, 0xbb]);
        assert!(sealed.intact());
        let mut t = sealed.clone();
        t.vals[0] ^= 1;
        assert!(!t.intact());
        let mut t = sealed.clone();
        t.payload[1] ^= 0x80;
        assert!(!t.intact());
        let mut t = sealed.clone();
        t.status = Status::Aborted;
        assert!(!t.intact());
        let mut t = sealed;
        t.req_id += 1;
        assert!(!t.intact());
    }

    #[test]
    fn named_accessors_follow_the_wire_layout() {
        let ealloc = Response::ok(1, vec![0x4000_0000, 512]);
        assert_eq!(ealloc.mapped_va(), Some(0x4000_0000));
        assert_eq!(ealloc.pages_mapped(), Some(512));

        let ewb = Response::ok(2, vec![2, 0x1000, 0x2000]);
        assert_eq!(ewb.pages_written_back(), Some(2));
        assert_eq!(ewb.written_back_frames(), &[0x1000, 0x2000]);

        let enter = Response::ok(3, vec![0x8000, 0x10_0000, 5]);
        assert_eq!(enter.entry_context(), Some((0x8000, 0x10_0000, 5)));

        let empty = Response::ok(4, vec![]);
        assert_eq!(empty.pages_mapped(), None);
        assert_eq!(empty.entry_context(), None);
        assert!(empty.written_back_frames().is_empty());
    }

    #[test]
    fn status_codes_are_distinct() {
        let all = [
            Status::Ok,
            Status::InvalidArgument,
            Status::PrivilegeMismatch,
            Status::AccessDenied,
            Status::Exhausted,
            Status::NotFound,
            Status::BadState,
            Status::MemFault,
            Status::Aborted,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.code(), b.code());
            }
        }
    }
}
