//! iHub: the fabric hub mediating CS ↔ EMS interaction (§III-A, Fig. 1).
//!
//! The hub owns the mailbox and the DMA whitelist, and gates the operations
//! that only EMS may perform behind [`EmsCapability`], a token minted exactly
//! once. This makes the paper's unidirectional isolation structural: CS-side
//! code cannot even *name* the EMS-only operations.

use crate::dma::{DeviceId, DmaWhitelist, DmaWindow};
use crate::iommu::{IoVpn, Iommu, IommuEntry};
use crate::mailbox::Mailbox;
use crate::message::{Request, Response};
use hypertee_faults::{FaultPlan, FaultStats};
use hypertee_mem::addr::KeyId;
use hypertee_mem::mktme::MktmeEngine;
use hypertee_mem::phys::PhysMemory;

/// The EMS-side authority token. Created once by [`IHub::new`]; the EMS
/// runtime keeps it and nothing else ever sees one.
#[derive(Debug)]
pub struct EmsCapability {
    _private: (),
}

/// The fabric hub.
#[derive(Debug)]
pub struct IHub {
    /// The primitive mailbox (CS submits/polls; EMS fetches/responds).
    pub mailbox: Mailbox,
    dma: DmaWhitelist,
    /// The EMS-managed IOMMU for translating devices (§V-B, §IX).
    pub iommu: Iommu,
}

impl IHub {
    /// Builds the hub and mints the single EMS capability.
    pub fn new() -> (IHub, EmsCapability) {
        (
            IHub {
                mailbox: Mailbox::new(),
                dma: DmaWhitelist::new(),
                iommu: Iommu::new(64),
            },
            EmsCapability { _private: () },
        )
    }

    /// Arms fault injection on the fabric-resident sites (mailbox and DMA
    /// whitelist) from one replayable plan. The EMS-side sites derive their
    /// own injectors from the same plan.
    pub fn arm_faults(&mut self, plan: &FaultPlan) {
        self.mailbox.arm_faults(plan.injector("mailbox"));
        self.dma.arm_faults(plan.injector("dma"));
    }

    /// Aggregated faults injected at the fabric sites so far.
    pub fn fault_stats(&self) -> FaultStats {
        let mut stats = self.mailbox.fault_stats().clone();
        stats.merge(self.dma.fault_stats());
        stats
    }

    // ---- EMS-only operations (require the capability) ----------------------

    /// EMS fetches the next pending primitive request.
    pub fn ems_fetch_request(&mut self, _cap: &EmsCapability) -> Option<Request> {
        self.mailbox.fetch_request()
    }

    /// EMS pushes a completed response.
    pub fn ems_push_response(&mut self, _cap: &EmsCapability, response: Response) {
        self.mailbox.push_response(response);
    }

    /// EMS programs a memory-encryption key slot (§IV-C: "configured only by
    /// EMS via iHub").
    pub fn ems_program_key(
        &mut self,
        _cap: &EmsCapability,
        engine: &mut MktmeEngine,
        key: KeyId,
        aes_key: &[u8; 16],
        mac_key: &[u8; 32],
    ) {
        engine.program_key(key, aes_key, mac_key);
    }

    /// EMS revokes a key slot (KeyID exhaustion, §IV-C).
    pub fn ems_revoke_key(&mut self, _cap: &EmsCapability, engine: &mut MktmeEngine, key: KeyId) {
        engine.revoke_key(key);
    }

    /// EMS installs a DMA whitelist window (§V-C).
    pub fn ems_grant_dma(&mut self, _cap: &EmsCapability, dev: DeviceId, window: DmaWindow) {
        self.dma.grant(dev, window);
    }

    /// EMS revokes all DMA windows of a device.
    pub fn ems_revoke_dma(&mut self, _cap: &EmsCapability, dev: DeviceId) {
        self.dma.revoke_all(dev);
    }

    /// EMS installs one IOMMU mapping for a translating device (§IX:
    /// "address translation table maintenance").
    pub fn ems_iommu_map(
        &mut self,
        _cap: &EmsCapability,
        dev: DeviceId,
        iova: IoVpn,
        entry: IommuEntry,
    ) {
        self.iommu.map(dev, iova, entry);
    }

    /// EMS removes one IOMMU mapping (with IOTLB invalidation).
    pub fn ems_iommu_unmap(&mut self, _cap: &EmsCapability, dev: DeviceId, iova: IoVpn) -> bool {
        self.iommu.unmap(dev, iova)
    }

    /// EMS detaches a translating device entirely.
    pub fn ems_iommu_detach(&mut self, _cap: &EmsCapability, dev: DeviceId) {
        self.iommu.detach(dev);
    }

    // ---- Hardware-path operations ------------------------------------------

    /// A DMA engine attempts an access; the whitelist decides. On success
    /// the access is performed against CS physical memory (devices sit below
    /// address translation but above the whitelist registers).
    ///
    /// Returns `false` (access discarded) when no window covers the request.
    pub fn dma_access(
        &mut self,
        dev: DeviceId,
        mem: &mut PhysMemory,
        addr: hypertee_mem::addr::PhysAddr,
        data: DmaOp<'_>,
    ) -> bool {
        let (len, write) = match &data {
            DmaOp::Read(buf) => (buf.len() as u64, false),
            DmaOp::Write(buf) => (buf.len() as u64, true),
        };
        if !self.dma.check(dev, addr, len, write) {
            return false;
        }
        match data {
            DmaOp::Read(buf) => mem.read(addr, buf).is_ok(),
            DmaOp::Write(buf) => mem.write(addr, buf).is_ok(),
        }
    }

    /// DMA accesses discarded so far (observability for tests/benches).
    pub fn dma_discarded(&self) -> u64 {
        self.dma.discarded
    }

    /// A *translating* device (IOMMU-attached GPU etc.) attempts an access
    /// at an I/O virtual address. Translation faults discard the access.
    pub fn dma_access_iommu(
        &mut self,
        dev: DeviceId,
        mem: &mut PhysMemory,
        iova: u64,
        data: DmaOp<'_>,
    ) -> bool {
        let (len, write) = match &data {
            DmaOp::Read(buf) => (buf.len() as u64, false),
            DmaOp::Write(buf) => (buf.len() as u64, true),
        };
        let Some(pa) = self.iommu.translate(dev, iova, len, write) else {
            return false;
        };
        match data {
            DmaOp::Read(buf) => mem.read(pa, buf).is_ok(),
            DmaOp::Write(buf) => mem.write(pa, buf).is_ok(),
        }
    }
}

/// Direction and buffer of one DMA transfer.
#[derive(Debug)]
pub enum DmaOp<'a> {
    /// Device reads CS memory into its own buffer.
    Read(&'a mut [u8]),
    /// Device writes its buffer into CS memory.
    Write(&'a [u8]),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::DmaPerm;
    use crate::message::{CallerIdentity, Primitive, Privilege};
    use hypertee_mem::addr::PhysAddr;

    fn request() -> Request {
        Request {
            req_id: 0,
            primitive: Primitive::Ecreate,
            caller: CallerIdentity {
                privilege: Privilege::Os,
                enclave: None,
            },
            args: vec![],
            payload: vec![],
        }
    }

    #[test]
    fn ems_round_trip_through_hub() {
        let (mut hub, cap) = IHub::new();
        let ticket = hub.mailbox.submit(request());
        let req = hub.ems_fetch_request(&cap).unwrap();
        hub.ems_push_response(&cap, Response::ok(req.req_id, vec![9]));
        assert_eq!(hub.mailbox.poll(ticket).unwrap().vals, vec![9]);
    }

    #[test]
    fn key_programming_goes_through_hub() {
        let (mut hub, cap) = IHub::new();
        let mut engine = MktmeEngine::new(true);
        hub.ems_program_key(&cap, &mut engine, KeyId(4), &[1; 16], &[2; 32]);
        assert!(engine.key_programmed(KeyId(4)));
        hub.ems_revoke_key(&cap, &mut engine, KeyId(4));
        assert!(!engine.key_programmed(KeyId(4)));
    }

    #[test]
    fn dma_denied_without_window() {
        let (mut hub, _cap) = IHub::new();
        let mut mem = PhysMemory::new(1 << 20);
        let mut buf = [0u8; 16];
        assert!(!hub.dma_access(
            DeviceId(0),
            &mut mem,
            PhysAddr(0x1000),
            DmaOp::Read(&mut buf)
        ));
        assert_eq!(hub.dma_discarded(), 1);
    }

    #[test]
    fn dma_window_enables_transfer() {
        let (mut hub, cap) = IHub::new();
        let mut mem = PhysMemory::new(1 << 20);
        mem.write(PhysAddr(0x2000), b"device-visible payload!!")
            .unwrap();
        hub.ems_grant_dma(
            &cap,
            DeviceId(1),
            DmaWindow {
                base: PhysAddr(0x2000),
                size: 0x1000,
                perm: DmaPerm::ReadWrite,
            },
        );
        let mut buf = [0u8; 24];
        assert!(hub.dma_access(
            DeviceId(1),
            &mut mem,
            PhysAddr(0x2000),
            DmaOp::Read(&mut buf)
        ));
        assert_eq!(&buf, b"device-visible payload!!");
        // Outside the window the access is discarded and memory untouched.
        assert!(!hub.dma_access(
            DeviceId(1),
            &mut mem,
            PhysAddr(0x8000),
            DmaOp::Write(b"evil")
        ));
        let mut probe = [0u8; 4];
        mem.read(PhysAddr(0x8000), &mut probe).unwrap();
        assert_eq!(probe, [0u8; 4]);
    }

    #[test]
    fn revoked_device_loses_access() {
        let (mut hub, cap) = IHub::new();
        let mut mem = PhysMemory::new(1 << 20);
        hub.ems_grant_dma(
            &cap,
            DeviceId(2),
            DmaWindow {
                base: PhysAddr(0),
                size: 0x1000,
                perm: DmaPerm::ReadWrite,
            },
        );
        hub.ems_revoke_dma(&cap, DeviceId(2));
        let mut buf = [0u8; 4];
        assert!(!hub.dma_access(DeviceId(2), &mut mem, PhysAddr(0), DmaOp::Read(&mut buf)));
    }
}
