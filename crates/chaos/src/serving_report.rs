//! `BENCH_serving.json`: schema-stable serialization of an attestation-storm
//! campaign, plus the validator `scripts/verify.sh` gates on.
//!
//! The report is the artifact form of the fail-closed proof: every
//! `*_accepted` attack counter is emitted **and pinned to zero by the
//! validator**, alongside handshake latency percentiles, breaker
//! transitions, and the storm SLO CDF. Emitter and validator share the
//! hand-rolled JSON helpers in `hypertee_bench::report`.

use hypertee_bench::report::{
    parse_json, push_json_str, push_kv_u64, req_bool, req_counter, req_hex_u64, Json,
};

use crate::campaign::ChaosOutcome;

/// Version of the emitted JSON schema.
pub const SCHEMA_VERSION: u64 = 1;

/// Suite identifier baked into every report.
pub const SUITE: &str = "hypertee-serving";

/// Counter keys every report must carry (finite non-negative numbers).
const REQUIRED_COUNTERS: [&str; 30] = [
    "clients",
    "handshakes_attempted",
    "handshakes_completed",
    "handshake_retries",
    "calls_attempted",
    "calls_ok",
    "reattestations",
    "pre_ready_attempts",
    "pre_ready_accepted",
    "stale_quote_attempts",
    "stale_quote_accepted",
    "replay_attempts",
    "replay_accepted",
    "duplicate_attempts",
    "duplicate_accepted",
    "forged_token_attempts",
    "forged_token_accepted",
    "breaker_to_open",
    "breaker_to_half_open",
    "breaker_to_closed",
    "breaker_shed",
    "reprobes",
    "sessions_revoked",
    "not_ready_rejects",
    "stale_challenge_rejects",
    "service_faults_injected",
    "handshake_p50_ticks",
    "handshake_p99_ticks",
    "crash_restarts",
    "fleet_requests",
];

/// Accepted-attack counters the validator pins to zero: any non-zero value
/// means the facade served an attack and the artifact is rejected.
const MUST_BE_ZERO: [&str; 5] = [
    "pre_ready_accepted",
    "stale_quote_accepted",
    "replay_accepted",
    "duplicate_accepted",
    "forged_token_accepted",
];

/// Serializes a storm campaign outcome as `BENCH_serving.json`.
///
/// # Panics
///
/// Panics when the outcome carries no storm (the campaign was run without
/// `ChaosConfig::storm`) — a serving report without a storm is meaningless.
pub fn render_serving_report(out: &ChaosOutcome) -> String {
    let storm = out
        .storm
        .as_ref()
        .expect("serving report requires a storm campaign outcome");
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    s.push_str(&format!("  \"suite\": \"{SUITE}\",\n"));
    s.push_str("  \"mode\": ");
    push_json_str(&mut s, out.label);
    s.push_str(",\n");
    s.push_str(&format!("  \"seed\": \"0x{:016x}\",\n", out.seed));
    s.push_str(&format!(
        "  \"trace_hash\": \"0x{:016x}\",\n",
        out.trace_hash
    ));
    push_kv_u64(&mut s, "clients", storm.clients as u64);
    push_kv_u64(&mut s, "handshakes_attempted", storm.handshakes_attempted);
    push_kv_u64(&mut s, "handshakes_completed", storm.handshakes_completed);
    push_kv_u64(&mut s, "handshake_retries", storm.handshake_retries);
    push_kv_u64(&mut s, "calls_attempted", storm.calls_attempted);
    push_kv_u64(&mut s, "calls_ok", storm.calls_ok);
    push_kv_u64(&mut s, "reattestations", storm.reattestations);
    push_kv_u64(&mut s, "pre_ready_attempts", storm.pre_ready_attempts);
    push_kv_u64(&mut s, "pre_ready_accepted", storm.pre_ready_accepted);
    push_kv_u64(&mut s, "stale_quote_attempts", storm.stale_quote_attempts);
    push_kv_u64(&mut s, "stale_quote_accepted", storm.stale_quote_accepted);
    push_kv_u64(&mut s, "replay_attempts", storm.replay_attempts);
    push_kv_u64(&mut s, "replay_accepted", storm.replay_accepted);
    push_kv_u64(&mut s, "duplicate_attempts", storm.duplicate_attempts);
    push_kv_u64(&mut s, "duplicate_accepted", storm.duplicate_accepted);
    push_kv_u64(&mut s, "forged_token_attempts", storm.forged_token_attempts);
    push_kv_u64(&mut s, "forged_token_accepted", storm.forged_token_accepted);
    push_kv_u64(&mut s, "breaker_to_open", storm.breaker_to_open);
    push_kv_u64(&mut s, "breaker_to_half_open", storm.breaker_to_half_open);
    push_kv_u64(&mut s, "breaker_to_closed", storm.breaker_to_closed);
    push_kv_u64(&mut s, "breaker_shed", storm.breaker_shed);
    push_kv_u64(&mut s, "reprobes", storm.reprobes);
    push_kv_u64(&mut s, "sessions_revoked", storm.sessions_revoked);
    push_kv_u64(&mut s, "not_ready_rejects", storm.not_ready_rejects);
    push_kv_u64(
        &mut s,
        "stale_challenge_rejects",
        storm.stale_challenge_rejects,
    );
    push_kv_u64(&mut s, "epoch_rejects", storm.epoch_rejects);
    push_kv_u64(&mut s, "expired_token_rejects", storm.expired_token_rejects);
    push_kv_u64(
        &mut s,
        "service_faults_injected",
        storm.service_faults_injected,
    );
    push_kv_u64(&mut s, "handshake_p50_ticks", storm.handshake_p50_ticks);
    push_kv_u64(&mut s, "handshake_p99_ticks", storm.handshake_p99_ticks);
    // Campaign context the storm rode through.
    push_kv_u64(&mut s, "crash_restarts", out.crash_restarts);
    push_kv_u64(
        &mut s,
        "migrations_completed",
        u64::from(out.migrations_completed),
    );
    push_kv_u64(&mut s, "fleet_requests", out.requests);
    push_kv_u64(&mut s, "reclaimed_enclaves", out.reclaimed_enclaves);
    s.push_str(&format!("  \"audit_ok\": {},\n", out.audit_ok));
    s.push_str(&format!("  \"lockstep_ok\": {},\n", out.lockstep_ok));
    s.push_str(&format!("  \"stalled\": {},\n", out.stalled));
    s.push_str("  \"slo_cdf\": [\n");
    for (i, (bound, frac)) in storm.slo_cdf.iter().enumerate() {
        assert!(frac.is_finite(), "refusing to emit non-finite fraction");
        s.push_str(&format!(
            "    {{ \"tick_bound\": {bound}, \"fraction\": {frac:.6} }}"
        ));
        if i + 1 < storm.slo_cdf.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

use req_bool as boolean;
use req_counter as counter;

/// Validates a `BENCH_serving.json` document: schema and suite, every
/// counter present, **every accepted-attack counter exactly zero**, green
/// audit/lockstep verdicts, a drained campaign, consistent handshake
/// accounting, ordered percentiles, and a sane SLO CDF.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate_serving(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    match doc.get("schema_version").and_then(Json::as_num) {
        Some(v) if v == SCHEMA_VERSION as f64 => {}
        Some(v) => return Err(format!("unsupported schema_version {v}")),
        None => return Err("missing schema_version".to_string()),
    }
    match doc.get("suite").and_then(Json::as_str) {
        Some(SUITE) => {}
        Some(other) => return Err(format!("wrong suite '{other}'")),
        None => return Err("missing suite".to_string()),
    }
    if doc.get("mode").and_then(Json::as_str).is_none() {
        return Err("missing mode".to_string());
    }
    for key in ["seed", "trace_hash"] {
        req_hex_u64(&doc, key)?;
    }
    for key in REQUIRED_COUNTERS {
        counter(&doc, key)?;
    }
    // The fail-closed verdict: the facade must not have served a single
    // attack — before readiness, stale, replayed, duplicated, or forged.
    for key in MUST_BE_ZERO {
        let v = counter(&doc, key)?;
        if v != 0.0 {
            return Err(format!(
                "{key} = {v}: the facade served an attack (fail-closed violated)"
            ));
        }
    }
    if !boolean(&doc, "audit_ok")? {
        return Err("audit_ok is false: a consistency audit failed".to_string());
    }
    if !boolean(&doc, "lockstep_ok")? {
        return Err("lockstep_ok is false: the reference model diverged".to_string());
    }
    if boolean(&doc, "stalled")? {
        return Err("stalled is true: the campaign did not drain".to_string());
    }
    // Handshake accounting: completions never exceed attempts, and the
    // storm must actually have attested something.
    let attempted = counter(&doc, "handshakes_attempted")?;
    let completed = counter(&doc, "handshakes_completed")?;
    if completed > attempted {
        return Err(format!(
            "handshakes_completed {completed} > handshakes_attempted {attempted}"
        ));
    }
    if completed == 0.0 {
        return Err("handshakes_completed is zero: the storm never attested".to_string());
    }
    if counter(&doc, "pre_ready_attempts")? == 0.0 {
        return Err("pre_ready_attempts is zero: fail-closed startup untested".to_string());
    }
    if counter(&doc, "handshake_p99_ticks")? < counter(&doc, "handshake_p50_ticks")? {
        return Err("handshake p99 < p50".to_string());
    }
    let Some(Json::Arr(cdf)) = doc.get("slo_cdf") else {
        return Err("missing or non-array slo_cdf".to_string());
    };
    if cdf.is_empty() {
        return Err("slo_cdf is empty".to_string());
    }
    let mut prev_bound = 0.0f64;
    let mut prev_frac = -1.0f64;
    for row in cdf {
        let bound = counter(row, "tick_bound")?;
        let frac = counter(row, "fraction")?;
        if bound <= prev_bound {
            return Err("slo_cdf tick bounds must be strictly increasing".to_string());
        }
        if !(0.0..=1.0).contains(&frac) {
            return Err(format!("slo_cdf fraction {frac} out of [0, 1]"));
        }
        if frac < prev_frac {
            return Err("slo_cdf fractions must be non-decreasing".to_string());
        }
        prev_bound = bound;
        prev_frac = frac;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run, ChaosConfig};
    use crate::storm::StormConfig;

    fn tiny_serving_outcome() -> ChaosOutcome {
        let mut cfg = ChaosConfig::serving_smoke(0x5e71);
        cfg.traffic.sessions = 24;
        cfg.scripted_crashes = 1;
        cfg.migrations = 0;
        cfg.lockstep_rounds = 0;
        cfg.storm = Some(StormConfig {
            clients: 4,
            handshakes_per_client: 2,
            calls_per_handshake: 2,
            ..StormConfig::smoke()
        });
        run(&cfg)
    }

    #[test]
    fn serving_report_round_trips_the_validator() {
        let out = tiny_serving_outcome();
        let text = render_serving_report(&out);
        validate_serving(&text).expect("fresh serving report must validate");
    }

    #[test]
    fn serving_validator_rejects_accepted_attacks() {
        let out = tiny_serving_outcome();
        let text = render_serving_report(&out);
        for key in MUST_BE_ZERO {
            let broken = text.replace(&format!("\"{key}\": 0,"), &format!("\"{key}\": 1,"));
            let err = validate_serving(&broken).unwrap_err();
            assert!(err.contains(key), "want {key} in error, got: {err}");
            assert!(err.contains("fail-closed"), "got: {err}");
        }
    }

    #[test]
    fn serving_validator_rejects_wrong_suite_and_missing_counter() {
        let out = tiny_serving_outcome();
        let text = render_serving_report(&out);
        let broken = text.replace("\"suite\": \"hypertee-serving\"", "\"suite\": \"nope\"");
        assert!(validate_serving(&broken).unwrap_err().contains("suite"));
        let broken = text.replace("  \"reattestations\":", "  \"reattestations_zzz\":");
        assert!(validate_serving(&broken)
            .unwrap_err()
            .contains("reattestations"));
    }
}
