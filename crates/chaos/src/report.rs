//! `BENCH_chaos.json`: schema-stable serialization of a campaign outcome,
//! plus the validator `scripts/verify.sh` gates on.
//!
//! The emitter is hand-rolled (the workspace takes no external
//! dependencies) in the exact style of `hypertee_bench::report`, and the
//! validator reuses that crate's JSON parser. Renaming or removing a key,
//! or bumping [`SCHEMA_VERSION`], is a breaking change and must be called
//! out in the PR description.

use hypertee_bench::report::{
    parse_json, push_json_str, push_kv_u64, req_bool, req_counter, req_hex_u64, Json,
};

use crate::campaign::ChaosOutcome;
use crate::sharded::ShardedChaosOutcome;

/// Version of the emitted JSON schema.
pub const SCHEMA_VERSION: u64 = 1;

/// Suite identifier baked into every report.
pub const SUITE: &str = "hypertee-chaos";

/// Counter keys every report must carry (all finite non-negative numbers).
const REQUIRED_COUNTERS: [&str; 23] = [
    "ticks",
    "requests",
    "completions",
    "ok_responses",
    "recovered",
    "rejections",
    "timeouts",
    "shed",
    "expired",
    "retries",
    "sessions",
    "sessions_done",
    "sessions_failed",
    "enclaves_created",
    "enclaves_destroyed",
    "leaked_enclaves",
    "reclaimed_enclaves",
    "faults_injected",
    "crash_restarts",
    "crash_dropped_requests",
    "audits",
    "migrations_completed",
    "migrations_failed",
];

/// Serializes a campaign outcome as `BENCH_chaos.json`.
pub fn render_report(out: &ChaosOutcome) -> String {
    render(out, None)
}

/// Serializes a *sharded* campaign outcome: the merged counters plus a
/// `sharding` section of per-shard seeds and trace hashes. Every emitted
/// field is deterministic in `(seed, shards)` — the worker-thread count and
/// wall-clock time are deliberately excluded, so reports produced at
/// different `--threads` widths are byte-identical (the parallel-determinism
/// smoke in `scripts/verify.sh` compares them with `cmp`).
pub fn render_sharded_report(out: &ShardedChaosOutcome) -> String {
    render(&out.merged, Some(out))
}

fn render(out: &ChaosOutcome, sharding: Option<&ShardedChaosOutcome>) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    s.push_str(&format!("  \"suite\": \"{SUITE}\",\n"));
    s.push_str("  \"mode\": ");
    push_json_str(&mut s, out.label);
    s.push_str(",\n");
    // Seed and trace hash are hex strings: full u64 range, no f64 loss.
    s.push_str(&format!("  \"seed\": \"0x{:016x}\",\n", out.seed));
    s.push_str(&format!(
        "  \"trace_hash\": \"0x{:016x}\",\n",
        out.trace_hash
    ));
    push_kv_u64(&mut s, "ticks", out.ticks);
    push_kv_u64(&mut s, "requests", out.requests);
    push_kv_u64(&mut s, "completions", out.completions);
    push_kv_u64(&mut s, "ok_responses", out.ok_responses);
    push_kv_u64(&mut s, "recovered", out.recovered);
    push_kv_u64(&mut s, "rejections", out.rejections);
    push_kv_u64(&mut s, "timeouts", out.timeouts);
    push_kv_u64(&mut s, "shed", out.shed);
    push_kv_u64(&mut s, "expired", out.expired);
    push_kv_u64(&mut s, "retries", out.retries);
    push_kv_u64(&mut s, "sessions", out.sessions as u64);
    push_kv_u64(&mut s, "sessions_done", out.sessions_done as u64);
    push_kv_u64(&mut s, "sessions_failed", out.sessions_failed as u64);
    push_kv_u64(&mut s, "enclaves_created", out.enclaves_created);
    push_kv_u64(&mut s, "enclaves_destroyed", out.enclaves_destroyed);
    push_kv_u64(&mut s, "leaked_enclaves", out.leaked_enclaves);
    push_kv_u64(&mut s, "reclaimed_enclaves", out.reclaimed_enclaves);
    push_kv_u64(&mut s, "faults_injected", out.faults_injected);
    push_kv_u64(&mut s, "crash_restarts", out.crash_restarts);
    push_kv_u64(&mut s, "crash_dropped_requests", out.crash_dropped_requests);
    push_kv_u64(&mut s, "queue_depth_hwm", out.queue_depth_hwm as u64);
    push_kv_u64(&mut s, "in_flight_hwm", out.in_flight_hwm as u64);
    push_kv_u64(&mut s, "audits", out.audits);
    s.push_str(&format!("  \"audit_ok\": {},\n", out.audit_ok));
    push_kv_u64(&mut s, "lockstep_rounds", u64::from(out.lockstep_rounds));
    s.push_str(&format!("  \"lockstep_ok\": {},\n", out.lockstep_ok));
    push_kv_u64(
        &mut s,
        "migrations_completed",
        u64::from(out.migrations_completed),
    );
    push_kv_u64(
        &mut s,
        "migrations_failed",
        u64::from(out.migrations_failed),
    );
    push_kv_u64(&mut s, "blackout_p50_cycles", out.blackout_percentile(50));
    push_kv_u64(&mut s, "blackout_p99_cycles", out.blackout_percentile(99));
    push_kv_u64(&mut s, "clock_cycles", out.clock_cycles);
    s.push_str(&format!("  \"stalled\": {},\n", out.stalled));
    if let Some(sh) = sharding {
        s.push_str("  \"sharding\": {\n");
        s.push_str(&format!("    \"shards\": {},\n", sh.shards));
        s.push_str(&format!(
            "    \"simulated_speedup\": {:.4},\n",
            sh.simulated_speedup()
        ));
        s.push_str("    \"per_shard\": [\n");
        for (i, p) in sh.per_shard.iter().enumerate() {
            s.push_str(&format!(
                "      {{ \"shard\": {i}, \"seed\": \"0x{:016x}\", \
                 \"trace_hash\": \"0x{:016x}\", \"requests\": {}, \
                 \"clock_cycles\": {} }}",
                p.seed, p.trace_hash, p.requests, p.clock_cycles
            ));
            if i + 1 < sh.per_shard.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("    ]\n  },\n");
    }
    s.push_str("  \"slo_cdf\": [\n");
    for (i, (mult, frac)) in out.slo_cdf.iter().enumerate() {
        assert!(frac.is_finite(), "refusing to emit non-finite fraction");
        s.push_str(&format!(
            "    {{ \"round_trip_multiple\": {mult}, \"fraction\": {frac:.6} }}"
        ));
        if i + 1 < out.slo_cdf.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

use req_bool as boolean;
use req_counter as counter;

/// Validates a `BENCH_chaos.json` document: schema version and suite,
/// every counter present and finite, the audit and lockstep verdicts
/// green, the campaign drained, and a sane (monotone, `[0, 1]`-bounded)
/// SLO CDF. This is the gate `scripts/verify.sh` runs against the smoke
/// report.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    match doc.get("schema_version").and_then(Json::as_num) {
        Some(v) if v == SCHEMA_VERSION as f64 => {}
        Some(v) => return Err(format!("unsupported schema_version {v}")),
        None => return Err("missing schema_version".to_string()),
    }
    match doc.get("suite").and_then(Json::as_str) {
        Some(SUITE) => {}
        Some(other) => return Err(format!("wrong suite '{other}'")),
        None => return Err("missing suite".to_string()),
    }
    if doc.get("mode").and_then(Json::as_str).is_none() {
        return Err("missing mode".to_string());
    }
    for key in ["seed", "trace_hash"] {
        req_hex_u64(&doc, key)?;
    }
    for key in REQUIRED_COUNTERS {
        counter(&doc, key)?;
    }
    for key in [
        "queue_depth_hwm",
        "in_flight_hwm",
        "blackout_p50_cycles",
        "blackout_p99_cycles",
        "clock_cycles",
    ] {
        counter(&doc, key)?;
    }
    if !boolean(&doc, "audit_ok")? {
        return Err("audit_ok is false: a consistency audit failed".to_string());
    }
    if !boolean(&doc, "lockstep_ok")? {
        return Err("lockstep_ok is false: the reference model diverged".to_string());
    }
    if boolean(&doc, "stalled")? {
        return Err("stalled is true: the campaign did not drain".to_string());
    }
    // Conservation: every offered session must have terminated.
    let sessions = counter(&doc, "sessions")?;
    let done = counter(&doc, "sessions_done")?;
    let failed = counter(&doc, "sessions_failed")?;
    if done + failed != sessions {
        return Err(format!(
            "session conservation violated: {done} done + {failed} failed != {sessions}"
        ));
    }
    if counter(&doc, "blackout_p99_cycles")? < counter(&doc, "blackout_p50_cycles")? {
        return Err("blackout p99 < p50".to_string());
    }
    // Optional sharded-campaign section: shard count must match the
    // per-shard rows, every row well-formed, and the shard requests must
    // sum to the merged counter (the merge is a plain sum).
    if let Some(sharding) = doc.get("sharding") {
        let shards = counter(sharding, "shards")?;
        counter(sharding, "simulated_speedup")?;
        let Some(Json::Arr(rows)) = sharding.get("per_shard") else {
            return Err("sharding.per_shard missing or not an array".to_string());
        };
        if rows.len() as f64 != shards {
            return Err(format!(
                "sharding.shards = {shards} but {} per_shard rows",
                rows.len()
            ));
        }
        let mut shard_requests = 0.0f64;
        for (i, row) in rows.iter().enumerate() {
            if counter(row, "shard")? != i as f64 {
                return Err(format!("per_shard row {i} out of shard order"));
            }
            for key in ["seed", "trace_hash"] {
                req_hex_u64(row, key).map_err(|e| format!("per_shard row {i}: {e}"))?;
            }
            counter(row, "clock_cycles")?;
            shard_requests += counter(row, "requests")?;
        }
        if shard_requests != counter(&doc, "requests")? {
            return Err(format!(
                "shard requests sum to {shard_requests}, merged counter says {}",
                counter(&doc, "requests")?
            ));
        }
    }
    let Some(Json::Arr(cdf)) = doc.get("slo_cdf") else {
        return Err("missing or non-array slo_cdf".to_string());
    };
    if cdf.is_empty() {
        return Err("slo_cdf is empty".to_string());
    }
    let mut prev_mult = 0.0f64;
    let mut prev_frac = -1.0f64;
    for row in cdf {
        let mult = counter(row, "round_trip_multiple")?;
        let frac = counter(row, "fraction")?;
        if mult <= prev_mult {
            return Err("slo_cdf multiples must be strictly increasing".to_string());
        }
        if !(0.0..=1.0).contains(&frac) {
            return Err(format!("slo_cdf fraction {frac} out of [0, 1]"));
        }
        if frac < prev_frac {
            return Err("slo_cdf fractions must be non-decreasing".to_string());
        }
        prev_mult = mult;
        prev_frac = frac;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run, ChaosConfig};
    use crate::traffic::TrafficConfig;

    fn tiny_outcome() -> ChaosOutcome {
        run(&ChaosConfig {
            seed: 0x7e57,
            label: "tiny",
            traffic: TrafficConfig {
                sessions: 10,
                mean_interarrival_ticks: 4.0,
                burst_pm: 100,
                burst_size_max: 2,
                max_live: 8,
                tenants: TrafficConfig::default_tenants(),
            },
            faults: Some(ChaosConfig::chaos_faults()),
            deadline_cycles: Some(20_000_000),
            shed_backlog_limit: Some(10),
            scripted_crashes: 1,
            migrations: 1,
            audit_every_ticks: 64,
            ewb_every_ticks: 0,
            lockstep_rounds: 0,
            lockstep_commands: 0,
            max_ticks: 60_000,
            storm: None,
            ref_pump: false,
        })
    }

    #[test]
    fn report_round_trips_the_validator() {
        let out = tiny_outcome();
        let text = render_report(&out);
        validate(&text).expect("fresh report must validate");
    }

    #[test]
    fn validator_rejects_red_verdicts() {
        let out = tiny_outcome();
        let text = render_report(&out);
        let broken = text.replace("\"audit_ok\": true", "\"audit_ok\": false");
        assert!(validate(&broken).unwrap_err().contains("audit_ok"));
        let broken = text.replace("\"lockstep_ok\": true", "\"lockstep_ok\": false");
        assert!(validate(&broken).unwrap_err().contains("lockstep_ok"));
        let broken = text.replace("\"suite\": \"hypertee-chaos\"", "\"suite\": \"nope\"");
        assert!(validate(&broken).unwrap_err().contains("suite"));
    }

    #[test]
    fn validator_rejects_missing_counter() {
        let out = tiny_outcome();
        let text = render_report(&out);
        let broken = text.replace("  \"recovered\":", "  \"recovered_zzz\":");
        assert!(validate(&broken).unwrap_err().contains("recovered"));
    }
}
