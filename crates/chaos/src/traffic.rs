//! Seeded open-loop traffic generation: arrival schedules for enclave
//! sessions.
//!
//! The generator produces the *offered load* ahead of time — a sorted list
//! of [`Arrival`]s on a virtual tick axis — from a seed and a
//! [`TrafficConfig`]. Arrivals are open-loop: they fire whether or not the
//! fleet is keeping up, which is exactly what makes backpressure shedding
//! and deadline expiry observable. Interarrival gaps are exponential
//! (Poisson process) with occasional multi-session bursts, and each
//! arrival draws a tenant profile from a weighted mix, so the fleet serves
//! heterogeneous enclave shapes concurrently.

use hypertee_crypto::chacha::ChaChaRng;

/// One class of tenant in the mix: the enclave shape its sessions deploy.
#[derive(Debug, Clone)]
pub struct TenantProfile {
    /// Stable tenant-class name (lands in logs and the report).
    pub name: &'static str,
    /// Relative draw weight within the mix.
    pub weight: u32,
    /// Enclave heap ceiling in bytes.
    pub heap_bytes: u64,
    /// Enclave stack in bytes.
    pub stack_bytes: u64,
    /// HostApp shared-window size in bytes.
    pub window_bytes: u64,
    /// Image payload length in bytes.
    pub image_len: u64,
    /// EALLOC/EFREE rounds the session performs while entered.
    pub entered_ops: u32,
}

/// Shape of the offered load.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Total sessions to schedule.
    pub sessions: usize,
    /// Mean exponential interarrival gap, in pump ticks.
    pub mean_interarrival_ticks: f64,
    /// Per-mille chance an arrival turns into a burst.
    pub burst_pm: u32,
    /// Upper bound (inclusive) on extra same-tick sessions in a burst.
    pub burst_size_max: u64,
    /// Admission cap: sessions concurrently live in the fleet. Arrivals
    /// beyond it queue outside the machine (their queue wait still counts
    /// against any deadline-to-first-byte SLO, but nothing enters the
    /// pipeline).
    pub max_live: usize,
    /// The tenant mix (must be non-empty; weights need not be normalized).
    pub tenants: Vec<TenantProfile>,
}

impl TrafficConfig {
    /// The default tenant mix: small/medium/large enclave shapes roughly
    /// mirroring a multi-tenant serving fleet.
    pub fn default_tenants() -> Vec<TenantProfile> {
        vec![
            TenantProfile {
                name: "micro",
                weight: 5,
                heap_bytes: 1 << 20,
                stack_bytes: 16 * 1024,
                window_bytes: 8 * 1024,
                image_len: 1800,
                entered_ops: 1,
            },
            TenantProfile {
                name: "web",
                weight: 3,
                heap_bytes: 4 << 20,
                stack_bytes: 32 * 1024,
                window_bytes: 16 * 1024,
                image_len: 5200,
                entered_ops: 2,
            },
            TenantProfile {
                name: "batch",
                weight: 1,
                heap_bytes: 16 << 20,
                stack_bytes: 32 * 1024,
                window_bytes: 16 * 1024,
                image_len: 12_000,
                entered_ops: 3,
            },
        ]
    }

    /// The full fleet campaign: enough sessions that the driven request
    /// count clears 10,000 across well over 1,000 enclaves.
    pub fn fleet(sessions: usize) -> TrafficConfig {
        TrafficConfig {
            sessions,
            mean_interarrival_ticks: 14.0,
            burst_pm: 120,
            burst_size_max: 6,
            max_live: 192,
            tenants: TrafficConfig::default_tenants(),
        }
    }

    /// A seconds-scale smoke slice of the fleet shape for CI.
    pub fn smoke(sessions: usize) -> TrafficConfig {
        TrafficConfig {
            sessions,
            mean_interarrival_ticks: 8.0,
            burst_pm: 150,
            burst_size_max: 4,
            max_live: 48,
            tenants: TrafficConfig::default_tenants(),
        }
    }
}

/// One scheduled session arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Pump tick the session arrives at.
    pub tick: u64,
    /// Index into [`TrafficConfig::tenants`].
    pub tenant: usize,
    /// Session index (dense, `0..sessions`).
    pub session: usize,
}

/// A uniform draw in `[0, 1)` from the top 53 bits of one `u64`.
fn unit(rng: &mut ChaChaRng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Draws a tenant index by cumulative weight.
fn draw_tenant(rng: &mut ChaChaRng, tenants: &[TenantProfile]) -> usize {
    let total: u64 = tenants.iter().map(|t| u64::from(t.weight)).sum();
    let mut pick = rng.gen_range(total.max(1));
    for (i, t) in tenants.iter().enumerate() {
        let w = u64::from(t.weight);
        if pick < w {
            return i;
        }
        pick -= w;
    }
    tenants.len() - 1
}

/// Builds the full arrival schedule for `cfg` from `seed`. Deterministic:
/// the same `(seed, cfg)` always yields the same schedule.
///
/// # Panics
///
/// Panics when the tenant mix is empty.
pub fn schedule(seed: u64, cfg: &TrafficConfig) -> Vec<Arrival> {
    assert!(!cfg.tenants.is_empty(), "tenant mix must be non-empty");
    let mut rng = ChaChaRng::from_u64(seed ^ 0x7472_6166_6669_6330);
    let mut arrivals = Vec::with_capacity(cfg.sessions);
    let mut tick = 0u64;
    let mut session = 0usize;
    while session < cfg.sessions {
        // Exponential gap; `1 - unit` keeps ln away from zero.
        let gap = -cfg.mean_interarrival_ticks * (1.0 - unit(&mut rng)).ln();
        tick += gap.round().max(0.0) as u64;
        let burst = if rng.gen_range(1000) < u64::from(cfg.burst_pm) {
            1 + rng.gen_range(cfg.burst_size_max.max(1))
        } else {
            1
        };
        for _ in 0..burst {
            if session >= cfg.sessions {
                break;
            }
            arrivals.push(Arrival {
                tick,
                tenant: draw_tenant(&mut rng, &cfg.tenants),
                session,
            });
            session += 1;
        }
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let cfg = TrafficConfig::smoke(200);
        assert_eq!(schedule(7, &cfg), schedule(7, &cfg));
        assert_ne!(schedule(7, &cfg), schedule(8, &cfg));
    }

    #[test]
    fn schedule_covers_every_session_in_order() {
        let cfg = TrafficConfig::fleet(500);
        let arr = schedule(3, &cfg);
        assert_eq!(arr.len(), 500);
        for (i, a) in arr.iter().enumerate() {
            assert_eq!(a.session, i);
            assert!(a.tenant < cfg.tenants.len());
            if i > 0 {
                assert!(a.tick >= arr[i - 1].tick, "arrivals must be sorted");
            }
        }
    }

    #[test]
    fn bursts_actually_happen() {
        let cfg = TrafficConfig::smoke(400);
        let arr = schedule(11, &cfg);
        let same_tick_pairs = arr.windows(2).filter(|w| w[0].tick == w[1].tick).count();
        assert!(
            same_tick_pairs > 5,
            "expected bursts, got {same_tick_pairs}"
        );
    }

    #[test]
    fn tenant_mix_is_weighted() {
        let cfg = TrafficConfig::fleet(2000);
        let arr = schedule(5, &cfg);
        let micro = arr.iter().filter(|a| a.tenant == 0).count();
        let batch = arr.iter().filter(|a| a.tenant == 2).count();
        assert!(
            micro > batch * 2,
            "weight-5 tenant ({micro}) should dominate weight-1 ({batch})"
        );
    }
}
