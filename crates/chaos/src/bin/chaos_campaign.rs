//! Chaos campaign runner: seeded fault campaigns under live open-loop
//! traffic, emitting the schema-stable `BENCH_chaos.json` (see
//! `hypertee_chaos::report`).
//!
//! The full campaign drives ≥ 10,000 requests across ≥ 1,000 enclaves
//! with live faults, scripted EMS crash-restarts, and mid-traffic CVM
//! migrations, then re-runs the same seed and insists on a bit-identical
//! trace hash. `--smoke` is the seconds-scale CI slice with the same
//! structure and the same determinism check.
//!
//! ```text
//! chaos_campaign [--smoke] [--seed N] [--out PATH]  # run + emit
//! chaos_campaign --check PATH                       # validate a report
//! ```

use std::process::ExitCode;

use hypertee_chaos::campaign::{run, ChaosConfig};
use hypertee_chaos::report::{render_report, validate};

struct Cli {
    smoke: bool,
    seed: u64,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        smoke: false,
        seed: 0xC4A0_5EED,
        out: String::new(),
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cli.smoke = true,
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                cli.seed = v.parse().map_err(|_| format!("bad --seed value '{v}'"))?;
            }
            "--out" => cli.out = args.next().ok_or("--out needs a path")?,
            "--check" => cli.check = Some(args.next().ok_or("--check needs a path")?),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if cli.out.is_empty() {
        cli.out = "BENCH_chaos.json".to_string();
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("chaos_campaign: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &cli.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("chaos_campaign: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate(&text) {
            Ok(()) => {
                println!("{path}: OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let cfg = if cli.smoke {
        ChaosConfig::smoke(cli.seed)
    } else {
        ChaosConfig::fleet(cli.seed)
    };
    eprintln!(
        "chaos_campaign: mode={} seed={:#x} sessions={} (faults, {} crashes, {} migrations)",
        cfg.label, cfg.seed, cfg.traffic.sessions, cfg.scripted_crashes, cfg.migrations
    );
    let out = run(&cfg);
    eprintln!(
        "chaos_campaign: {} requests, {} ok ({} recovered), shed={} expired={} timeouts={}, \
         {} enclaves created, {} crash-restarts, audits={} ({}), lockstep={}",
        out.requests,
        out.ok_responses,
        out.recovered,
        out.shed,
        out.expired,
        out.timeouts,
        out.enclaves_created,
        out.crash_restarts,
        out.audits,
        if out.audit_ok { "green" } else { "RED" },
        if out.lockstep_ok { "green" } else { "DIVERGED" },
    );

    // Determinism gate: the identical seed must reproduce the identical
    // event stream, bit for bit.
    let replay = run(&cfg);
    if replay.trace_hash != out.trace_hash {
        eprintln!(
            "chaos_campaign: NON-DETERMINISTIC: trace {:#x} != replay {:#x}",
            out.trace_hash, replay.trace_hash
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "chaos_campaign: replay reproduced trace {:#018x}",
        out.trace_hash
    );

    let mut failed = false;
    if !out.audit_ok {
        eprintln!(
            "chaos_campaign: consistency audit failed: {:?}",
            out.first_audit_error
        );
        failed = true;
    }
    if !out.lockstep_ok {
        eprintln!(
            "chaos_campaign: lockstep divergence: {:?}",
            out.first_divergence
        );
        failed = true;
    }
    if out.stalled {
        eprintln!("chaos_campaign: campaign stalled before draining");
        failed = true;
    }
    if !cli.smoke {
        // Acceptance floor for the committed fleet campaign.
        if out.requests < 10_000 {
            eprintln!(
                "chaos_campaign: only {} requests (< 10,000 floor)",
                out.requests
            );
            failed = true;
        }
        if out.enclaves_created < 1_000 {
            eprintln!(
                "chaos_campaign: only {} enclaves (< 1,000 floor)",
                out.enclaves_created
            );
            failed = true;
        }
    }

    let text = render_report(&out);
    if let Err(e) = validate(&text) {
        eprintln!("chaos_campaign: emitted report fails validation: {e}");
        failed = true;
    }
    if let Err(e) = std::fs::write(&cli.out, &text) {
        eprintln!("chaos_campaign: cannot write {}: {e}", cli.out);
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} mode, blackout p50/p99 = {}/{} cycles)",
        cli.out,
        out.label,
        out.blackout_percentile(50),
        out.blackout_percentile(99),
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
