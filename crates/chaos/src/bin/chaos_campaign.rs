//! Chaos campaign runner: seeded fault campaigns under live open-loop
//! traffic, emitting the schema-stable `BENCH_chaos.json` (see
//! `hypertee_chaos::report`).
//!
//! The full campaign drives ≥ 10,000 requests across ≥ 1,000 enclaves
//! with live faults, scripted EMS crash-restarts, and mid-traffic CVM
//! migrations, then re-runs the same seed and insists on a bit-identical
//! trace hash. `--smoke` is the seconds-scale CI slice with the same
//! structure and the same determinism check.
//!
//! ```text
//! chaos_campaign [--smoke] [--seed N] [--out PATH]   # run + emit
//! chaos_campaign --ref-pump [...]                    # scan-scheduler oracle
//! chaos_campaign --shards 4 --threads 4 [...]        # sharded campaign
//! chaos_campaign --check PATH                        # validate a report
//! ```
//!
//! `--shards` fixes the logical split (part of the seeded configuration);
//! `--threads` only sizes the worker pool, so the emitted report is
//! byte-identical at any thread count. Wall-clock timing goes to stderr
//! and never into the report.

use std::process::ExitCode;
use std::time::Instant;

use hypertee_chaos::campaign::{run, ChaosConfig, ChaosOutcome};
use hypertee_chaos::report::{render_report, render_sharded_report, validate};
use hypertee_chaos::sharded::{run_sharded, ShardedChaosConfig};

struct Cli {
    smoke: bool,
    seed: u64,
    out: String,
    check: Option<String>,
    shards: usize,
    threads: usize,
    ref_pump: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        smoke: false,
        seed: 0xC4A0_5EED,
        out: String::new(),
        check: None,
        shards: 1,
        threads: 1,
        ref_pump: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cli.smoke = true,
            "--ref-pump" => cli.ref_pump = true,
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                cli.seed = v.parse().map_err(|_| format!("bad --seed value '{v}'"))?;
            }
            "--out" => cli.out = args.next().ok_or("--out needs a path")?,
            "--check" => cli.check = Some(args.next().ok_or("--check needs a path")?),
            "--shards" => {
                let v = args.next().ok_or("--shards needs a value")?;
                cli.shards = v.parse().map_err(|_| format!("bad --shards value '{v}'"))?;
                if cli.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                cli.threads = v
                    .parse()
                    .map_err(|_| format!("bad --threads value '{v}'"))?;
                if cli.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if cli.out.is_empty() {
        cli.out = "BENCH_chaos.json".to_string();
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("chaos_campaign: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &cli.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("chaos_campaign: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate(&text) {
            Ok(()) => {
                println!("{path}: OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut cfg = if cli.smoke {
        ChaosConfig::smoke(cli.seed)
    } else {
        ChaosConfig::fleet(cli.seed)
    };
    cfg.ref_pump = cli.ref_pump;
    eprintln!(
        "chaos_campaign: mode={} seed={:#x} sessions={} shards={} threads={} \
         (faults, {} crashes, {} migrations)",
        cfg.label,
        cfg.seed,
        cfg.traffic.sessions,
        cli.shards,
        cli.threads,
        cfg.scripted_crashes,
        cfg.migrations
    );
    // Wall-clock timing is observability only: it goes to stderr, never
    // into the report, which stays byte-identical at any --threads width.
    let started = Instant::now();
    let (out, text): (ChaosOutcome, String) = if cli.shards > 1 {
        let scfg = ShardedChaosConfig {
            base: cfg.clone(),
            shards: cli.shards,
            threads: cli.threads,
        };
        let sharded = run_sharded(&scfg);
        eprintln!(
            "chaos_campaign: {} shards on {} threads in {:.2}s wall, \
             simulated speedup {:.2}x (sum {} / max {} cycles)",
            sharded.shards,
            sharded.threads,
            started.elapsed().as_secs_f64(),
            sharded.simulated_speedup(),
            sharded.sequential_clock_cycles(),
            sharded.merged.clock_cycles,
        );
        // Determinism gate: the identical seed must reproduce the
        // identical merged event stream at any worker width — replay on
        // one inline thread and insist on a bit-identical hash.
        let mut replay_cfg = scfg.clone();
        replay_cfg.threads = 1;
        let replay = run_sharded(&replay_cfg);
        if replay.merged.trace_hash != sharded.merged.trace_hash {
            eprintln!(
                "chaos_campaign: NON-DETERMINISTIC across widths: trace {:#x} != replay {:#x}",
                sharded.merged.trace_hash, replay.merged.trace_hash
            );
            return ExitCode::FAILURE;
        }
        let text = render_sharded_report(&sharded);
        (sharded.merged, text)
    } else {
        let out = run(&cfg);
        // Determinism gate: the identical seed must reproduce the
        // identical event stream, bit for bit.
        let replay = run(&cfg);
        if replay.trace_hash != out.trace_hash {
            eprintln!(
                "chaos_campaign: NON-DETERMINISTIC: trace {:#x} != replay {:#x}",
                out.trace_hash, replay.trace_hash
            );
            return ExitCode::FAILURE;
        }
        let text = render_report(&out);
        (out, text)
    };
    eprintln!(
        "chaos_campaign: {} requests, {} ok ({} recovered), shed={} expired={} timeouts={}, \
         {} enclaves created, {} crash-restarts, audits={} ({}), lockstep={}",
        out.requests,
        out.ok_responses,
        out.recovered,
        out.shed,
        out.expired,
        out.timeouts,
        out.enclaves_created,
        out.crash_restarts,
        out.audits,
        if out.audit_ok { "green" } else { "RED" },
        if out.lockstep_ok { "green" } else { "DIVERGED" },
    );
    eprintln!(
        "chaos_campaign: replay reproduced trace {:#018x}",
        out.trace_hash
    );

    let mut failed = false;
    if !out.audit_ok {
        eprintln!(
            "chaos_campaign: consistency audit failed: {:?}",
            out.first_audit_error
        );
        failed = true;
    }
    if !out.lockstep_ok {
        eprintln!(
            "chaos_campaign: lockstep divergence: {:?}",
            out.first_divergence
        );
        failed = true;
    }
    if out.stalled {
        eprintln!("chaos_campaign: campaign stalled before draining");
        failed = true;
    }
    if !cli.smoke {
        // Acceptance floor for the committed fleet campaign.
        if out.requests < 10_000 {
            eprintln!(
                "chaos_campaign: only {} requests (< 10,000 floor)",
                out.requests
            );
            failed = true;
        }
        if out.enclaves_created < 1_000 {
            eprintln!(
                "chaos_campaign: only {} enclaves (< 1,000 floor)",
                out.enclaves_created
            );
            failed = true;
        }
    }

    if let Err(e) = validate(&text) {
        eprintln!("chaos_campaign: emitted report fails validation: {e}");
        failed = true;
    }
    if let Err(e) = std::fs::write(&cli.out, &text) {
        eprintln!("chaos_campaign: cannot write {}: {e}", cli.out);
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} mode, blackout p50/p99 = {}/{} cycles)",
        cli.out,
        out.label,
        out.blackout_percentile(50),
        out.blackout_percentile(99),
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
