//! Serving benchmark runner: the attestation-storm campaign, emitting the
//! schema-stable `BENCH_serving.json` (see `hypertee_chaos::serving_report`).
//!
//! The full campaign layers thousands of challenge-response handshakes and
//! authenticated calls — with seeded service-transport faults (dropped /
//! duplicated / delayed / replayed frames, stale-quote substitution, token
//! forgery) — on top of the fleet chaos campaign, through scripted EMS
//! crash-restarts and live migrations. The run fails unless the facade
//! refused **every** attack, the consistency audit and lockstep verdicts
//! stayed green, and the identical seed reproduces a bit-identical trace.
//!
//! ```text
//! serving_bench [--smoke] [--seed N] [--out PATH]   # run + emit
//! serving_bench --ref-pump [...]                    # scan-scheduler oracle
//! serving_bench --check PATH                        # validate a report
//! ```

use std::process::ExitCode;
use std::time::Instant;

use hypertee_chaos::campaign::{run, ChaosConfig};
use hypertee_chaos::serving_report::{render_serving_report, validate_serving};

struct Cli {
    smoke: bool,
    ref_pump: bool,
    seed: u64,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        smoke: false,
        ref_pump: false,
        seed: 0x5E11_F00D,
        out: String::new(),
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cli.smoke = true,
            "--ref-pump" => cli.ref_pump = true,
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                cli.seed = v.parse().map_err(|_| format!("bad --seed value '{v}'"))?;
            }
            "--out" => cli.out = args.next().ok_or("--out needs a path")?,
            "--check" => cli.check = Some(args.next().ok_or("--check needs a path")?),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if cli.out.is_empty() {
        cli.out = "BENCH_serving.json".to_string();
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serving_bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &cli.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("serving_bench: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_serving(&text) {
            Ok(()) => {
                println!("{path}: OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut cfg = if cli.smoke {
        ChaosConfig::serving_smoke(cli.seed)
    } else {
        ChaosConfig::serving_fleet(cli.seed)
    };
    cfg.ref_pump = cli.ref_pump;
    let storm_cfg = cfg.storm.clone().expect("serving presets carry a storm");
    eprintln!(
        "serving_bench: mode={} seed={:#x} clients={} target {} handshakes \
         over {} sessions ({} crashes, {} migrations)",
        cfg.label,
        cfg.seed,
        storm_cfg.clients,
        storm_cfg.clients * storm_cfg.handshakes_per_client as usize,
        cfg.traffic.sessions,
        cfg.scripted_crashes,
        cfg.migrations
    );
    // Wall-clock timing is observability only: stderr, never the report.
    let started = Instant::now();
    let out = run(&cfg);
    // Determinism gate: the identical seed must reproduce the identical
    // event stream — storm, faults, and attacks included — bit for bit.
    let replay = run(&cfg);
    if replay.trace_hash != out.trace_hash {
        eprintln!(
            "serving_bench: NON-DETERMINISTIC: trace {:#x} != replay {:#x}",
            out.trace_hash, replay.trace_hash
        );
        return ExitCode::FAILURE;
    }
    let storm = out.storm.as_ref().expect("storm campaign yields a storm");
    eprintln!(
        "serving_bench: {} handshakes attempted, {} completed, {} calls ok, \
         {} re-attestations, {} service faults, {} attacks accepted, \
         breaker open/half/closed = {}/{}/{}, p50/p99 = {}/{} ticks ({:.2}s wall)",
        storm.handshakes_attempted,
        storm.handshakes_completed,
        storm.calls_ok,
        storm.reattestations,
        storm.service_faults_injected,
        storm.accepted_attacks(),
        storm.breaker_to_open,
        storm.breaker_to_half_open,
        storm.breaker_to_closed,
        storm.handshake_p50_ticks,
        storm.handshake_p99_ticks,
        started.elapsed().as_secs_f64(),
    );
    eprintln!(
        "serving_bench: replay reproduced trace {:#018x}",
        out.trace_hash
    );

    let mut failed = false;
    if storm.accepted_attacks() > 0 {
        eprintln!(
            "serving_bench: FAIL-CLOSED VIOLATED: {} attacks served",
            storm.accepted_attacks()
        );
        failed = true;
    }
    if !out.audit_ok {
        eprintln!(
            "serving_bench: consistency audit failed: {:?}",
            out.first_audit_error
        );
        failed = true;
    }
    if !out.lockstep_ok {
        eprintln!(
            "serving_bench: lockstep divergence: {:?}",
            out.first_divergence
        );
        failed = true;
    }
    if out.stalled {
        eprintln!("serving_bench: campaign stalled before draining");
        failed = true;
    }
    if !cli.smoke {
        // Acceptance floors for the committed serving campaign: a real
        // storm (1,000+ handshakes) under a real fault campaign (1,000+
        // service-transport injections).
        if storm.handshakes_attempted < 1_000 {
            eprintln!(
                "serving_bench: only {} handshakes (< 1,000 floor)",
                storm.handshakes_attempted
            );
            failed = true;
        }
        if storm.service_faults_injected < 1_000 {
            eprintln!(
                "serving_bench: only {} service faults (< 1,000 floor)",
                storm.service_faults_injected
            );
            failed = true;
        }
    }

    let text = render_serving_report(&out);
    if let Err(e) = validate_serving(&text) {
        eprintln!("serving_bench: emitted report fails validation: {e}");
        failed = true;
    }
    if let Err(e) = std::fs::write(&cli.out, &text) {
        eprintln!("serving_bench: cannot write {}: {e}", cli.out);
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} mode, {} handshakes, 0 attacks accepted required)",
        cli.out, out.label, storm.handshakes_completed,
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
