//! The chaos campaign driver: open-loop sessions against the live machine.
//!
//! A campaign boots one [`Machine`], arms a seeded fault plan, and replays
//! a pre-generated arrival schedule. Each arrived session walks the full
//! enclave lifecycle through the *asynchronous* pipeline — ECREATE, EADD,
//! EMEAS, EENTER, EALLOC/EFREE rounds, EEXIT, EDESTROY — with at most one
//! primitive in flight per session, exactly like a HostApp thread. The
//! driver never blocks: every tick it admits arrivals, submits whatever is
//! ready, pumps the SoC once, and collects completions. Faults, scripted
//! EMS crash-restarts, and live CVM migrations happen *to* that traffic,
//! and the driver's only obligations are the ones the paper's availability
//! story implies: keep the consistency audit green, degrade by shedding and
//! expiring instead of hanging, and recover everything the fault plan
//! merely delayed.
//!
//! Determinism: the machine, fault plan, arrival schedule, and every
//! driver-side choice derive from [`ChaosConfig::seed`]. Two runs with the
//! same config produce bit-identical [`ChaosOutcome::trace_hash`]es.

use std::collections::{BTreeMap, VecDeque};

use hypertee::machine::{DegradePolicy, Machine, MachineError};
use hypertee::pipeline::Completion;
use hypertee_crypto::chacha::ChaChaRng;
use hypertee_ems::control::layout;
use hypertee_fabric::message::{Primitive, Privilege, Response, Status};
use hypertee_faults::{FaultConfig, FaultPlan};
use hypertee_mem::addr::{Ppn, PAGE_SIZE};
use hypertee_mem::ownership::EnclaveId;
use hypertee_model::harness::{run_campaign, Campaign};
use hypertee_model::ops::generate;
use hypertee_sim::clock::Cycles;
use hypertee_sim::config::{CoreConfig, EmsCluster, SocConfig};

use crate::migration::MigrationEngine;
use crate::storm::{StormConfig, StormDriver, StormOutcome};
use crate::traffic::{schedule, TenantProfile, TrafficConfig};

/// Bytes each entered session allocates (and frees) per EALLOC round.
const ALLOC_BYTES: u64 = 64 * 1024;
/// Ticks a shed submission backs off before retrying.
const SHED_BACKOFF_TICKS: u64 = 25;
/// Shed retries before the session gives up (it never entered the machine).
const SHED_GIVE_UP: u32 = 60;
/// Transient (`Exhausted`) rejections tolerated per step.
const STEP_RETRY_MAX: u32 = 4;
/// EDESTROY attempts before declaring the enclave leaked.
const DESTROY_TRY_MAX: u32 = 12;
/// Host-frame allocation retries before the session gives up.
const ALLOC_RETRY_MAX: u32 = 25;
/// CS harts the campaign machine boots with.
const HARTS: usize = 8;
/// SLO CDF abscissae, in multiples of the clean mailbox round trip.
const SLO_MULTIPLES: [u32; 8] = [1, 4, 16, 64, 256, 1024, 4096, 16384];

/// Everything one chaos campaign needs, derived from one seed.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed: machine boot, fault plan, schedule, scripted events.
    pub seed: u64,
    /// Mode label that lands in the report (`"fleet"` / `"smoke"` / ...).
    pub label: &'static str,
    /// The offered load.
    pub traffic: TrafficConfig,
    /// Live fault campaign armed on the machine (`None` = clean run).
    pub faults: Option<FaultConfig>,
    /// Per-request lifetime budget ([`DegradePolicy::deadline`]).
    pub deadline_cycles: Option<u64>,
    /// Backlog shed limit ([`DegradePolicy::shed_backlog_limit`]).
    pub shed_backlog_limit: Option<usize>,
    /// Scripted EMS crash-restarts spread across the campaign.
    pub scripted_crashes: u32,
    /// Live CVM migrations executed mid-campaign.
    pub migrations: u32,
    /// Consistency-audit cadence in ticks (`0` = only at the end).
    pub audit_every_ticks: u64,
    /// Background EWB cadence in ticks (`0` = none).
    pub ewb_every_ticks: u64,
    /// Lockstep reference-model rounds appended to the campaign.
    pub lockstep_rounds: u32,
    /// Commands per lockstep round.
    pub lockstep_commands: usize,
    /// Hard tick ceiling (a stuck campaign reports `stalled` instead of
    /// spinning forever).
    pub max_ticks: u64,
    /// Attestation storm riding on top of the session traffic (`None` =
    /// no service facade in the campaign).
    pub storm: Option<StormConfig>,
    /// Drive every scheduling round through the retained O(n) scan
    /// scheduler (`Machine::pump_ref`) instead of the event-driven core.
    /// The trace is bit-identical either way — this is the campaign-scale
    /// differential oracle behind the verify.sh replay gate.
    pub ref_pump: bool,
}

impl ChaosConfig {
    /// The fault mix for live chaos: every site armed at sub-percent rates
    /// plus organic EMS crashes, tuned so the fleet stays saturated with
    /// recoveries rather than collapsing.
    pub fn chaos_faults() -> FaultConfig {
        FaultConfig {
            drop_request_pm: 8,
            drop_response_pm: 8,
            duplicate_response_pm: 10,
            delay_response_pm: 15,
            corrupt_response_pm: 8,
            ring_stall_pm: 10,
            dma_flap_pm: 10,
            abort_pm: 15,
            abort_step_max: 6,
            exhausted_pm: 10,
            ems_stall_pm: 10,
            crash_pm: 1,
            delay_polls_max: 6,
            ..FaultConfig::disabled()
        }
    }

    /// [`ChaosConfig::chaos_faults`] with the service-transport sites armed
    /// at [`FaultConfig::service_storm`] rates on top.
    pub fn serving_faults() -> FaultConfig {
        let service = FaultConfig::service_storm();
        FaultConfig {
            rpc_drop_pm: service.rpc_drop_pm,
            rpc_duplicate_pm: service.rpc_duplicate_pm,
            rpc_delay_pm: service.rpc_delay_pm,
            rpc_replay_pm: service.rpc_replay_pm,
            stale_quote_pm: service.stale_quote_pm,
            token_forge_pm: service.token_forge_pm,
            ..ChaosConfig::chaos_faults()
        }
    }

    /// The full acceptance campaign: ≥ 10,000 requests across ≥ 1,000
    /// enclaves with live faults, scripted crashes, and migrations.
    pub fn fleet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            label: "fleet",
            traffic: TrafficConfig::fleet(1400),
            faults: Some(ChaosConfig::chaos_faults()),
            deadline_cycles: Some(8_000_000),
            shed_backlog_limit: Some(10),
            scripted_crashes: 4,
            migrations: 6,
            audit_every_ticks: 800,
            ewb_every_ticks: 160,
            lockstep_rounds: 2,
            lockstep_commands: 96,
            max_ticks: 600_000,
            storm: None,
            ref_pump: false,
        }
    }

    /// A seconds-scale slice of the fleet campaign for CI smoke.
    pub fn smoke(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            label: "smoke",
            traffic: TrafficConfig::smoke(120),
            faults: Some(ChaosConfig::chaos_faults()),
            deadline_cycles: Some(8_000_000),
            shed_backlog_limit: Some(6),
            scripted_crashes: 2,
            migrations: 1,
            audit_every_ticks: 200,
            ewb_every_ticks: 120,
            lockstep_rounds: 1,
            lockstep_commands: 48,
            max_ticks: 200_000,
            storm: None,
            ref_pump: false,
        }
    }

    /// The serving acceptance campaign: the fleet campaign with the
    /// service-transport fault sites armed and an attestation storm
    /// hammering the facade for the whole run — through every scripted
    /// crash-restart and migration.
    pub fn serving_fleet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            label: "serving-fleet",
            faults: Some(ChaosConfig::serving_faults()),
            storm: Some(StormConfig::fleet()),
            ..ChaosConfig::fleet(seed)
        }
    }

    /// A seconds-scale serving campaign for CI smoke.
    pub fn serving_smoke(seed: u64) -> ChaosConfig {
        ChaosConfig {
            label: "serving-smoke",
            faults: Some(ChaosConfig::serving_faults()),
            storm: Some(StormConfig::smoke()),
            ..ChaosConfig::smoke(seed)
        }
    }
}

/// What a finished campaign measured. Every field is deterministic in the
/// config; [`ChaosOutcome::trace_hash`] folds the full event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// Campaign seed (replays the run).
    pub seed: u64,
    /// Mode label from the config.
    pub label: &'static str,
    /// Driver ticks the campaign ran for.
    pub ticks: u64,
    /// Pipeline submissions accepted.
    pub requests: u64,
    /// Pipeline completions collected.
    pub completions: u64,
    /// Session completions that answered `Ok`.
    pub ok_responses: u64,
    /// `Ok` completions that needed at least one retry — requests the
    /// fault plan hit but the pipeline recovered.
    pub recovered: u64,
    /// Clean primitive rejections (non-`Ok` status).
    pub rejections: u64,
    /// Calls that exhausted the retry budget.
    pub timeouts: u64,
    /// Submissions shed at the gate by backpressure.
    pub shed: u64,
    /// Calls expired by the deadline watchdog.
    pub expired: u64,
    /// Pipeline-driven resubmissions / abort restarts.
    pub retries: u64,
    /// Sessions offered by the schedule.
    pub sessions: usize,
    /// Sessions that finished their whole lifecycle.
    pub sessions_done: usize,
    /// Sessions that gave up (shed out, timed out, or rejected).
    pub sessions_failed: usize,
    /// ECREATEs acknowledged `Ok`.
    pub enclaves_created: u64,
    /// EDESTROYs acknowledged `Ok`.
    pub enclaves_destroyed: u64,
    /// Enclaves (or suspected orphans) the driver had to abandon.
    pub leaked_enclaves: u64,
    /// Leaked enclaves the post-drain reaper recovered with resumable
    /// EDESTROY retries. Leaks with a known enclave id must all come back;
    /// only deliberate taints (id never learned) stay unreclaimed.
    pub reclaimed_enclaves: u64,
    /// Faults the armed plan actually injected.
    pub faults_injected: u64,
    /// EMS crash-restarts (scripted + organic).
    pub crash_restarts: u64,
    /// Rx-staged requests dropped by scripted crashes (each recovered by
    /// the pipeline's loss-detection resubmit).
    pub crash_dropped_requests: u64,
    /// Backlog high-water mark observed at pump time.
    pub queue_depth_hwm: usize,
    /// In-flight high-water mark.
    pub in_flight_hwm: usize,
    /// Consistency audits executed.
    pub audits: u64,
    /// Whether every audit passed.
    pub audit_ok: bool,
    /// First audit violation, if any.
    pub first_audit_error: Option<String>,
    /// Lockstep rounds executed against the reference model.
    pub lockstep_rounds: u32,
    /// Whether every lockstep round matched the reference model.
    pub lockstep_ok: bool,
    /// First lockstep divergence, if any.
    pub first_divergence: Option<String>,
    /// CVM migrations that completed with state verified intact.
    pub migrations_completed: u32,
    /// CVM migrations that failed.
    pub migrations_failed: u32,
    /// Migration blackout windows in CS cycles (source-clock advance from
    /// `migrate_out` to the destination's verified `migrate_in`).
    pub blackouts: Vec<u64>,
    /// SLO CDF under faults: `(multiple of the clean mailbox round trip,
    /// fraction of Ok completions at or under it)`.
    pub slo_cdf: Vec<(u32, f64)>,
    /// What the attestation storm measured (when the config armed one).
    pub storm: Option<StormOutcome>,
    /// Final machine clock in cycles.
    pub clock_cycles: u64,
    /// FNV-1a fold over the full campaign event stream.
    pub trace_hash: u64,
    /// The campaign hit `max_ticks` before draining (should never happen).
    pub stalled: bool,
}

impl ChaosOutcome {
    /// Percentile over the blackout windows (0 when none ran).
    pub fn blackout_percentile(&self, pct: u32) -> u64 {
        if self.blackouts.is_empty() {
            return 0;
        }
        let mut v = self.blackouts.clone();
        v.sort_unstable();
        let idx = (v.len() - 1) * pct as usize / 100;
        v[idx]
    }
}

/// Lifecycle step a session is at (the primitive it submits next).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Create,
    Add,
    Meas,
    Enter,
    Alloc,
    Free,
    Exit,
    Destroy,
}

impl Step {
    fn code(self) -> u64 {
        match self {
            Step::Create => 1,
            Step::Add => 2,
            Step::Meas => 3,
            Step::Enter => 4,
            Step::Alloc => 5,
            Step::Free => 6,
            Step::Exit => 7,
            Step::Destroy => 8,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionState {
    /// Scheduled but not yet admitted (outside the machine).
    Waiting,
    /// Admitted; submits `step` once `wait_until` passes.
    Ready,
    /// One primitive in flight.
    InFlight,
    Done,
    Failed,
}

#[derive(Debug)]
struct Session {
    tenant: usize,
    hart: usize,
    state: SessionState,
    step: Step,
    wait_until: u64,
    shed_tries: u32,
    step_retries: u32,
    destroy_tries: u32,
    alloc_fails: u32,
    eid: u64,
    entered: bool,
    ops_left: u32,
    alloc_va: u64,
    window: Option<(Ppn, u64)>,
    stage: Option<(Ppn, u64)>,
}

/// FNV-1a fold of one event tuple into the running trace hash.
fn fold(hash: &mut u64, vals: &[u64]) {
    for v in vals {
        *hash ^= *v;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Stable numeric code for a completion outcome (feeds the trace hash).
fn outcome_code(result: &Result<Response, MachineError>) -> u64 {
    match result {
        Ok(_) => 0,
        Err(MachineError::Primitive(s)) => 10 + s.code(),
        Err(MachineError::Timeout) => 90,
        Err(MachineError::DeadlineExpired) => 91,
        Err(MachineError::Backpressure) => 92,
        Err(_) => 99,
    }
}

/// Deterministic image byte for session `s`, offset `i`.
fn image_byte(s: usize, i: usize) -> u8 {
    (s.wrapping_mul(31) ^ i.wrapping_mul(7) ^ 0x5a) as u8
}

/// Spreads `count` scripted events across `span` ticks with seeded jitter.
fn scripted_ticks(seed: u64, count: u32, span: u64, salt: u64) -> Vec<u64> {
    let mut rng = ChaChaRng::from_u64(seed ^ salt);
    let n = u64::from(count);
    let mut ticks: Vec<u64> = (0..n)
        .map(|i| {
            let base = span * (i + 1) / (n + 1);
            base + rng.gen_range(span / (4 * (n + 1)) + 1)
        })
        .collect();
    ticks.sort_unstable();
    ticks.dedup();
    ticks
}

/// Route target for a completed call.
#[derive(Debug, Clone, Copy)]
enum Route {
    Session(usize),
    /// Fire-and-forget background EWB.
    Background,
}

struct Driver {
    m: Machine,
    tenants: Vec<TenantProfile>,
    sessions: Vec<Session>,
    /// Entered-hart lock: the session currently occupying each hart's
    /// enclave context. EMCall stamps caller identity at submission time,
    /// so EALLOC/EFREE/EEXIT must only be submitted from a hart whose
    /// enclave context belongs to the submitting session.
    hart_owner: Vec<Option<usize>>,
    route: BTreeMap<u64, Route>,
    live: usize,
    hash: u64,
    latencies: Vec<u64>,
    sessions_done: usize,
    sessions_failed: usize,
    enclaves_created: u64,
    enclaves_destroyed: u64,
    leaked_enclaves: u64,
    /// Leaks whose enclave id is known: candidates for the post-drain
    /// reaper. Deliberate taints (id never learned) are not recorded.
    leaked_eids: Vec<u64>,
    reclaimed_enclaves: u64,
    ok_responses: u64,
    recovered: u64,
    rejections: u64,
    completions: u64,
    crash_dropped: u64,
    audits: u64,
    audit_ok: bool,
    first_audit_error: Option<String>,
}

impl Driver {
    fn free_frames(&mut self, range: Option<(Ppn, u64)>) {
        if let Some((base, pages)) = range {
            for i in 0..pages {
                let _ = self.m.sys.phys.zero_frame(Ppn(base.0 + i));
                self.m.os.free(Ppn(base.0 + i));
            }
        }
    }

    /// Releases the hart's enclave context if this session holds it.
    fn release_hart(&mut self, s: usize) {
        let hart = self.sessions[s].hart;
        if self.sessions[s].entered {
            self.m.emcall.exit_enclave(&mut self.m.harts[hart]);
            self.m.harts[hart].mmu.tlb.flush_all();
            self.sessions[s].entered = false;
        }
        if self.hart_owner[hart] == Some(s) {
            self.hart_owner[hart] = None;
        }
    }

    /// Abandons a session after a failure. `clean` means the EMS answered
    /// with a definite rejection (its state is known); a tainted failure
    /// (timeout, deadline expiry) leaves the EMS-side outcome unknown, so
    /// host frames that might be registered there are leaked rather than
    /// recycled.
    fn fail_session(&mut self, s: usize, tick: u64, clean: bool) {
        self.release_hart(s);
        let stage = self.sessions[s].stage.take();
        self.free_frames(stage);
        {
            let sess = &mut self.sessions[s];
            if sess.eid != 0 && sess.step != Step::Destroy {
                // Best-effort teardown: route the session into the destroy
                // path instead of abandoning the enclave outright.
                sess.step = Step::Destroy;
                sess.state = SessionState::Ready;
                sess.wait_until = tick + 2;
                sess.step_retries = 0;
                return;
            }
        }
        if self.sessions[s].eid != 0 || !clean {
            // A known enclave we could not destroy, or a tainted early step
            // (the EMS may have registered the window): leak, don't free.
            self.leaked_enclaves += 1;
            if self.sessions[s].eid != 0 {
                self.leaked_eids.push(self.sessions[s].eid);
            }
            self.sessions[s].window = None;
        }
        let window = self.sessions[s].window.take();
        self.free_frames(window);
        self.sessions[s].state = SessionState::Failed;
        self.sessions_failed += 1;
        self.live -= 1;
    }

    fn finish_session(&mut self, s: usize) {
        let window = self.sessions[s].window.take();
        self.free_frames(window);
        self.sessions[s].state = SessionState::Done;
        self.sessions_done += 1;
        self.live -= 1;
    }

    fn defer_alloc(&mut self, s: usize, tick: u64) {
        let sess = &mut self.sessions[s];
        sess.alloc_fails += 1;
        sess.wait_until = tick + 40;
        if sess.alloc_fails > ALLOC_RETRY_MAX {
            self.fail_session(s, tick, true);
        }
    }

    /// Drops the Eenter hart reservation (submission failed or rejected).
    fn unreserve_enter(&mut self, s: usize, step: Step) {
        if step == Step::Enter {
            let hart = self.sessions[s].hart;
            if self.hart_owner[hart] == Some(s) {
                self.hart_owner[hart] = None;
            }
        }
    }

    /// Submits the session's current step, or defers it.
    fn try_submit(&mut self, s: usize, tick: u64) {
        let (step, hart, tenant) = {
            let sess = &self.sessions[s];
            (sess.step, sess.hart, sess.tenant)
        };
        let profile = self.tenants[tenant].clone();
        let submission = match step {
            Step::Create => {
                if self.sessions[s].window.is_none() {
                    let pages = profile.window_bytes.div_ceil(PAGE_SIZE).max(1);
                    match self.m.os.alloc_contiguous(pages) {
                        Some(base) => self.sessions[s].window = Some((base, pages)),
                        None => {
                            self.defer_alloc(s, tick);
                            return;
                        }
                    }
                }
                if self.sessions[s].stage.is_none() {
                    let image: Vec<u8> = (0..profile.image_len as usize)
                        .map(|i| image_byte(s, i))
                        .collect();
                    let pages = (image.len() as u64).div_ceil(PAGE_SIZE).max(1);
                    match self.m.os.alloc_contiguous(pages) {
                        Some(base) => {
                            if self.m.sys.phys.write(base.base(), &image).is_err() {
                                self.free_frames(Some((base, pages)));
                                self.fail_session(s, tick, true);
                                return;
                            }
                            self.sessions[s].stage = Some((base, pages));
                        }
                        None => {
                            self.defer_alloc(s, tick);
                            return;
                        }
                    }
                }
                let window = self.sessions[s].window.expect("window staged");
                (
                    Privilege::Os,
                    Primitive::Ecreate,
                    vec![
                        profile.heap_bytes,
                        profile.stack_bytes,
                        profile.window_bytes,
                        window.0.base().0,
                    ],
                )
            }
            Step::Add => {
                let stage = self.sessions[s].stage.expect("stage survives to EADD");
                (
                    Privilege::Os,
                    Primitive::Eadd,
                    vec![
                        self.sessions[s].eid,
                        layout::CODE_BASE.0,
                        stage.0.base().0,
                        profile.image_len,
                        0b111,
                    ],
                )
            }
            Step::Meas => (Privilege::Os, Primitive::Emeas, vec![self.sessions[s].eid]),
            Step::Enter => {
                if self.hart_owner[hart].is_some() {
                    // Another session occupies this hart's enclave context.
                    self.sessions[s].wait_until = tick + 2;
                    return;
                }
                // Reserve at submission: the context switch applies on
                // completion, but nothing else may claim the hart between.
                self.hart_owner[hart] = Some(s);
                (Privilege::Os, Primitive::Eenter, vec![self.sessions[s].eid])
            }
            Step::Alloc => (
                Privilege::User,
                Primitive::Ealloc,
                vec![self.sessions[s].eid, ALLOC_BYTES],
            ),
            Step::Free => (
                Privilege::User,
                Primitive::Efree,
                vec![self.sessions[s].eid, self.sessions[s].alloc_va, ALLOC_BYTES],
            ),
            Step::Exit => (
                Privilege::User,
                Primitive::Eexit,
                vec![self.sessions[s].eid],
            ),
            Step::Destroy => (
                Privilege::Os,
                Primitive::Edestroy,
                vec![self.sessions[s].eid],
            ),
        };
        let (privilege, primitive, args) = submission;
        match self.m.submit_as(hart, privilege, primitive, args, vec![]) {
            Ok(call) => {
                self.route.insert(call.id, Route::Session(s));
                self.sessions[s].state = SessionState::InFlight;
                fold(&mut self.hash, &[1, tick, s as u64, step.code()]);
            }
            Err(MachineError::Backpressure) => {
                // Graceful degradation: back off and retry; give up after a
                // budget (the request never entered the machine).
                self.unreserve_enter(s, step);
                fold(&mut self.hash, &[3, tick, s as u64, step.code()]);
                let sess = &mut self.sessions[s];
                sess.shed_tries += 1;
                sess.wait_until = tick + SHED_BACKOFF_TICKS;
                if sess.shed_tries > SHED_GIVE_UP {
                    self.fail_session(s, tick, true);
                }
            }
            Err(_) => {
                self.unreserve_enter(s, step);
                self.fail_session(s, tick, true);
            }
        }
    }

    /// Applies one completion to its session's state machine.
    fn handle_completion(&mut self, s: usize, c: &Completion, tick: u64) {
        let step = self.sessions[s].step;
        self.sessions[s].state = SessionState::Ready;
        self.sessions[s].wait_until = tick;
        match &c.result {
            Ok(resp) => {
                self.ok_responses += 1;
                if c.attempts > 0 {
                    self.recovered += 1;
                }
                self.latencies.push(c.latency.0);
                self.sessions[s].step_retries = 0;
                self.apply_ok(s, step, resp, tick);
            }
            Err(MachineError::Primitive(Status::Exhausted)) => {
                // Transient resource rejection: bounded same-step retry.
                self.rejections += 1;
                self.unreserve_enter(s, step);
                let sess = &mut self.sessions[s];
                sess.step_retries += 1;
                sess.wait_until = tick + 4;
                if sess.step_retries > STEP_RETRY_MAX {
                    self.fail_session(s, tick, true);
                }
            }
            Err(MachineError::Primitive(status)) => {
                self.rejections += 1;
                if step == Step::Destroy {
                    if *status == Status::NotFound {
                        // Already gone (an earlier destroy's lost response
                        // was nevertheless executed): destroyed enough.
                        self.finish_session(s);
                        return;
                    }
                    self.retry_destroy(s, tick);
                    return;
                }
                self.unreserve_enter(s, step);
                self.fail_session(s, tick, true);
            }
            Err(MachineError::Timeout) | Err(MachineError::DeadlineExpired) => {
                // Tainted: the EMS-side outcome is unknown. EDESTROY is
                // resumable, so the destroy path just tries again; every
                // other step routes to teardown.
                if step == Step::Destroy {
                    self.retry_destroy(s, tick);
                    return;
                }
                self.unreserve_enter(s, step);
                self.fail_session(s, tick, false);
            }
            Err(_) => {
                self.unreserve_enter(s, step);
                self.fail_session(s, tick, false);
            }
        }
    }

    fn apply_ok(&mut self, s: usize, step: Step, resp: &Response, tick: u64) {
        match step {
            Step::Create => {
                self.sessions[s].eid = resp.vals.first().copied().unwrap_or(0);
                if self.sessions[s].eid == 0 {
                    self.fail_session(s, tick, true);
                    return;
                }
                self.enclaves_created += 1;
                self.sessions[s].step = Step::Add;
            }
            Step::Add => {
                let stage = self.sessions[s].stage.take();
                self.free_frames(stage);
                self.sessions[s].step = Step::Meas;
            }
            Step::Meas => self.sessions[s].step = Step::Enter,
            Step::Enter => {
                let Some((root, entry, _key)) = resp.entry_context() else {
                    self.fail_session(s, tick, true);
                    return;
                };
                let hart = self.sessions[s].hart;
                let eid = self.sessions[s].eid;
                let stack = self.tenants[self.sessions[s].tenant].stack_bytes;
                self.m.emcall.enter_enclave(
                    &mut self.m.harts[hart],
                    EnclaveId(eid),
                    Ppn(root),
                    entry,
                );
                // Fresh-entry ABI: SP at the top of the static stack.
                self.m.harts[hart].regs[2] = layout::STACK_BASE.0 + stack - 16;
                self.sessions[s].entered = true;
                self.sessions[s].ops_left = self.tenants[self.sessions[s].tenant].entered_ops;
                self.sessions[s].step = Step::Alloc;
            }
            Step::Alloc => {
                self.sessions[s].alloc_va = resp.mapped_va().unwrap_or(layout::HEAP_BASE.0);
                let hart = self.sessions[s].hart;
                self.m.harts[hart].mmu.tlb.flush_all();
                self.sessions[s].step = Step::Free;
            }
            Step::Free => {
                let hart = self.sessions[s].hart;
                self.m.harts[hart].mmu.tlb.flush_all();
                self.sessions[s].ops_left -= 1;
                self.sessions[s].step = if self.sessions[s].ops_left > 0 {
                    Step::Alloc
                } else {
                    Step::Exit
                };
            }
            Step::Exit => {
                let hart = self.sessions[s].hart;
                self.m.emcall.exit_enclave(&mut self.m.harts[hart]);
                self.sessions[s].entered = false;
                self.hart_owner[hart] = None;
                self.sessions[s].step = Step::Destroy;
            }
            Step::Destroy => {
                self.enclaves_destroyed += 1;
                self.finish_session(s);
            }
        }
    }

    fn retry_destroy(&mut self, s: usize, tick: u64) {
        let sess = &mut self.sessions[s];
        sess.destroy_tries += 1;
        sess.wait_until = tick + 8;
        if sess.destroy_tries > DESTROY_TRY_MAX {
            // EMS may still reference the window: leaked, not freed.
            sess.window = None;
            sess.state = SessionState::Failed;
            let eid = sess.eid;
            self.leaked_enclaves += 1;
            if eid != 0 {
                self.leaked_eids.push(eid);
            }
            self.sessions_failed += 1;
            self.live -= 1;
        }
    }

    /// Post-drain reaper: with the traffic gone and the pipeline quiet,
    /// every leak with a known enclave id gets a bounded second chance.
    /// EDESTROY is resumable and idempotent (`NotFound` means an earlier
    /// attempt's lost response was nevertheless executed), so synchronous
    /// retries here recover everything the fault plan merely delayed.
    fn reap_leaks(&mut self, tick: u64) {
        let eids = std::mem::take(&mut self.leaked_eids);
        for eid in eids {
            let mut reclaimed = false;
            for _ in 0..DESTROY_TRY_MAX {
                match self.destroy_once(eid) {
                    Ok(_) => {
                        self.enclaves_destroyed += 1;
                        reclaimed = true;
                    }
                    Err(MachineError::Primitive(Status::NotFound)) => reclaimed = true,
                    Err(MachineError::Primitive(Status::Exhausted))
                    | Err(MachineError::Timeout)
                    | Err(MachineError::DeadlineExpired)
                    | Err(MachineError::Backpressure) => continue,
                    Err(_) => {}
                }
                break;
            }
            if reclaimed {
                self.reclaimed_enclaves += 1;
            }
            fold(&mut self.hash, &[9, tick, eid, u64::from(reclaimed)]);
        }
    }

    /// One synchronous OS-privileged EDESTROY through the pipeline (EMCall
    /// gates the primitive to OS callers; [`Machine::invoke`] would submit
    /// at the hart's resting privilege and be refused at the gate).
    fn destroy_once(&mut self, eid: u64) -> Result<Response, MachineError> {
        let call = self
            .m
            .submit_as(0, Privilege::Os, Primitive::Edestroy, vec![eid], vec![])?;
        loop {
            self.m.pump();
            if let Some(done) = self.m.take_completion(call) {
                return done.result;
            }
        }
    }

    fn run_audit(&mut self, tick: u64) {
        self.audits += 1;
        match self.m.audit() {
            Ok(_) => fold(&mut self.hash, &[6, tick, 1]),
            Err(e) => {
                fold(&mut self.hash, &[6, tick, 0]);
                if self.audit_ok {
                    self.audit_ok = false;
                    self.first_audit_error = Some(format!("tick {tick}: {e:?}"));
                }
            }
        }
    }
}

/// Runs one chaos campaign to completion and returns what it measured.
///
/// # Panics
///
/// Panics only on machine boot failure (unreachable with pristine
/// firmware) or internal driver invariant violations.
pub fn run(cfg: &ChaosConfig) -> ChaosOutcome {
    let soc = SocConfig {
        cs_cores: HARTS as u32,
        ems: EmsCluster {
            cores: 4,
            core: CoreConfig::ems_medium(),
        },
        crypto_engine: true,
        phys_mem_bytes: 256 << 20,
    };
    let mut d = Driver {
        m: Machine::boot(soc, cfg.seed).expect("pristine firmware boots"),
        tenants: cfg.traffic.tenants.clone(),
        sessions: Vec::new(),
        hart_owner: vec![None; HARTS],
        route: BTreeMap::new(),
        live: 0,
        hash: 0xcbf2_9ce4_8422_2325 ^ cfg.seed,
        latencies: Vec::new(),
        sessions_done: 0,
        sessions_failed: 0,
        enclaves_created: 0,
        enclaves_destroyed: 0,
        leaked_enclaves: 0,
        leaked_eids: Vec::new(),
        reclaimed_enclaves: 0,
        ok_responses: 0,
        recovered: 0,
        rejections: 0,
        completions: 0,
        crash_dropped: 0,
        audits: 0,
        audit_ok: true,
        first_audit_error: None,
    };
    d.m.set_scan_scheduler(cfg.ref_pump);
    d.m.degrade = DegradePolicy {
        shed_backlog_limit: cfg.shed_backlog_limit,
        deadline: cfg.deadline_cycles.map(Cycles),
    };
    if let Some(fc) = &cfg.faults {
        d.m.arm_faults(&FaultPlan::new(cfg.seed, fc.clone()));
    }

    // The attestation storm rides the same seed and fault plan; its
    // injector draws from a fresh site stream ("service"), so arming it
    // never perturbs the mailbox/DMA fault schedules of plain campaigns.
    let mut storm = cfg.storm.clone().map(|sc| {
        let plan = FaultPlan::new(
            cfg.seed,
            cfg.faults.clone().unwrap_or_else(FaultConfig::disabled),
        );
        let mut s = StormDriver::new(sc, cfg.seed, plan.injector("service"));
        s.boot(&mut d.m);
        s
    });

    let arrivals = schedule(cfg.seed, &cfg.traffic);
    let span = arrivals.last().map(|a| a.tick).unwrap_or(0).max(1);
    let crash_ticks = scripted_ticks(cfg.seed, cfg.scripted_crashes, span, 0x6372_6173_6863);
    let migration_ticks = scripted_ticks(cfg.seed, cfg.migrations, span, 0x6d69_6772_6174);
    d.sessions = arrivals
        .iter()
        .map(|a| Session {
            tenant: a.tenant,
            hart: a.session % HARTS,
            state: SessionState::Waiting,
            step: Step::Create,
            wait_until: 0,
            shed_tries: 0,
            step_retries: 0,
            destroy_tries: 0,
            alloc_fails: 0,
            eid: 0,
            entered: false,
            ops_left: 0,
            alloc_va: 0,
            window: None,
            stage: None,
        })
        .collect();
    let mut migration = MigrationEngine::new(cfg.seed ^ 0x6465_7374_6e6f_6465);

    let mut tick: u64 = 0;
    let mut next_arrival = 0usize;
    let mut admit_queue: VecDeque<usize> = VecDeque::new();
    let mut active: Vec<usize> = Vec::new();
    let mut next_crash = 0usize;
    let mut next_migration = 0usize;
    // (in-flight bundle, finish tick, source clock at migrate_out)
    let mut live_migration = None;
    let mut stalled = false;

    loop {
        let drained = next_arrival == arrivals.len() && admit_queue.is_empty() && d.live == 0;
        let events_pending = next_crash < crash_ticks.len()
            || next_migration < migration_ticks.len()
            || live_migration.is_some();
        let storm_pending = storm.as_ref().is_some_and(|s| !s.done());
        if drained && !events_pending && !storm_pending && d.m.pipeline_stats().in_flight == 0 {
            break;
        }
        if tick >= cfg.max_ticks {
            stalled = true;
            break;
        }

        // Open-loop arrivals, admitted up to the live cap.
        while next_arrival < arrivals.len() && arrivals[next_arrival].tick <= tick {
            admit_queue.push_back(arrivals[next_arrival].session);
            next_arrival += 1;
        }
        while d.live < cfg.traffic.max_live {
            let Some(s) = admit_queue.pop_front() else {
                break;
            };
            d.sessions[s].state = SessionState::Ready;
            d.sessions[s].wait_until = tick;
            d.live += 1;
            active.push(s);
        }

        // Scripted EMS crash-restart, audited immediately: the warm restart
        // must reconstruct a consistent management plane.
        if next_crash < crash_ticks.len() && tick >= crash_ticks[next_crash] {
            let dropped = d.m.crash_restart_ems() as u64;
            d.crash_dropped += dropped;
            fold(&mut d.hash, &[4, tick, dropped]);
            d.run_audit(tick);
            // Supervised recovery: the facade notices the epoch bump,
            // revokes every session, and re-probes before serving again.
            if let Some(st) = storm.as_mut() {
                st.on_crash(&mut d.m, tick);
            }
            next_crash += 1;
        }

        // Live CVM migration: export at the scheduled tick, install on the
        // destination after a transfer dwell while traffic keeps flowing.
        if live_migration.is_none()
            && next_migration < migration_ticks.len()
            && tick >= migration_ticks[next_migration]
        {
            next_migration += 1;
            let tag = next_migration as u64;
            match migration.start(&mut d.m, tag) {
                Some(p) => {
                    fold(&mut d.hash, &[5, tick, tag]);
                    live_migration = Some((p, tick + 24 + 2 * tag, d.m.clock.0));
                }
                None => fold(&mut d.hash, &[5, tick, 0]),
            }
        }
        if let Some((_, finish_tick, _)) = &live_migration {
            if tick >= *finish_tick {
                let (p, _, t0) = live_migration.take().expect("checked above");
                let blackout = d.m.clock.0.saturating_sub(t0);
                migration.finish(p, blackout);
                fold(&mut d.hash, &[5, tick, blackout]);
            }
        }

        // Background EWB sweeps ride along with the session traffic.
        if cfg.ewb_every_ticks > 0 && tick > 0 && tick.is_multiple_of(cfg.ewb_every_ticks) {
            let hart = ((tick / cfg.ewb_every_ticks) as usize) % HARTS;
            if let Ok(call) =
                d.m.submit_as(hart, Privilege::Os, Primitive::Ewb, vec![4], vec![])
            {
                d.route.insert(call.id, Route::Background);
                fold(&mut d.hash, &[1, tick, u64::MAX, 9]);
            }
        }

        // The storm interleaves its handshakes and authenticated calls
        // with the session traffic (deterministic point in the tick).
        if let Some(st) = storm.as_mut() {
            st.step(&mut d.m, tick, drained && !events_pending);
        }

        // Session submissions (deterministic order: ascending session id).
        active.retain(|&s| {
            !matches!(
                d.sessions[s].state,
                SessionState::Done | SessionState::Failed
            )
        });
        let ready: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&s| {
                d.sessions[s].state == SessionState::Ready && d.sessions[s].wait_until <= tick
            })
            .collect();
        for s in ready {
            d.try_submit(s, tick);
        }

        // One SoC scheduling round.
        d.m.pump();

        // Collect and apply completions.
        for c in d.m.drain_completions() {
            d.completions += 1;
            let code = outcome_code(&c.result);
            match d.route.remove(&c.call.id) {
                Some(Route::Session(s)) => {
                    fold(
                        &mut d.hash,
                        &[
                            2,
                            tick,
                            s as u64,
                            d.sessions[s].step.code(),
                            code,
                            u64::from(c.attempts),
                        ],
                    );
                    d.handle_completion(s, &c, tick);
                }
                Some(Route::Background) | None => {
                    fold(
                        &mut d.hash,
                        &[2, tick, u64::MAX, 9, code, u64::from(c.attempts)],
                    );
                }
            }
        }

        // Periodic cross-structure consistency audit.
        if cfg.audit_every_ticks > 0 && tick > 0 && tick.is_multiple_of(cfg.audit_every_ticks) {
            d.run_audit(tick);
        }

        tick += 1;
    }
    // Leaked-enclave reaper, then the final audit over the drained machine
    // (the audit thereby also covers the reaper's destroys).
    if !stalled {
        d.reap_leaks(tick);
    }
    d.run_audit(tick);

    // Fold the storm's verdict into the trace before the final fold.
    let storm_outcome = storm.map(StormDriver::finish);
    if let Some(so) = &storm_outcome {
        fold(
            &mut d.hash,
            &[
                10,
                so.handshakes_attempted,
                so.handshakes_completed,
                so.calls_ok,
                so.accepted_attacks(),
                so.breaker_to_open,
                so.reprobes,
                so.service_faults_injected,
            ],
        );
    }

    // Lockstep rounds: replay seeded traces against the PR 3 reference
    // model under the model-checking fault campaign; any divergence is a
    // correctness failure of the whole chaos campaign.
    let mut lockstep_ok = true;
    let mut first_divergence = None;
    for round in 0..cfg.lockstep_rounds {
        let rseed = cfg.seed ^ 0x6c6f_636b_7374_6570 ^ (u64::from(round) << 17);
        let commands = generate(rseed, cfg.lockstep_commands, 4);
        let mut campaign = Campaign::new(rseed);
        campaign.harts = 4;
        campaign.faults = Some(FaultConfig::model_campaign());
        campaign.checkpoint_every = 24;
        let outcome = run_campaign(&campaign, &commands);
        fold(
            &mut d.hash,
            &[
                7,
                u64::from(round),
                outcome.executed as u64,
                outcome.completions as u64,
                outcome.ok_responses as u64,
                outcome.timeouts as u64,
            ],
        );
        if let Some(div) = &outcome.divergence {
            lockstep_ok = false;
            if first_divergence.is_none() {
                first_divergence = Some(format!("round {round}: {div:?}"));
            }
        }
    }

    // SLO CDF of Ok-completion latency under faults.
    let rt = d.m.book.mailbox_round_trip();
    let slo_cdf: Vec<(u32, f64)> = SLO_MULTIPLES
        .iter()
        .map(|&mult| {
            let bound = rt * f64::from(mult);
            let frac = if d.latencies.is_empty() {
                0.0
            } else {
                d.latencies.iter().filter(|&&l| (l as f64) <= bound).count() as f64
                    / d.latencies.len() as f64
            };
            (mult, frac)
        })
        .collect();

    let stats = d.m.pipeline_stats();
    let crash_restarts = d.m.ems.stats.crash_restarts;
    fold(
        &mut d.hash,
        &[
            8,
            stats.submitted,
            d.ok_responses,
            d.recovered,
            stats.shed,
            stats.expired,
            stats.timeouts,
            crash_restarts,
            d.m.clock.0,
        ],
    );

    ChaosOutcome {
        seed: cfg.seed,
        label: cfg.label,
        ticks: tick,
        requests: stats.submitted,
        completions: d.completions,
        ok_responses: d.ok_responses,
        recovered: d.recovered,
        rejections: d.rejections,
        timeouts: stats.timeouts,
        shed: stats.shed,
        expired: stats.expired,
        retries: stats.retries,
        sessions: d.sessions.len(),
        sessions_done: d.sessions_done,
        sessions_failed: d.sessions_failed,
        enclaves_created: d.enclaves_created,
        enclaves_destroyed: d.enclaves_destroyed,
        leaked_enclaves: d.leaked_enclaves,
        reclaimed_enclaves: d.reclaimed_enclaves,
        faults_injected: d.m.fault_stats().total()
            + storm_outcome
                .as_ref()
                .map_or(0, |s| s.service_faults_injected),
        crash_restarts,
        crash_dropped_requests: d.crash_dropped,
        queue_depth_hwm: stats.queue_depth_hwm,
        in_flight_hwm: stats.in_flight_hwm,
        audits: d.audits,
        audit_ok: d.audit_ok,
        first_audit_error: d.first_audit_error,
        lockstep_rounds: cfg.lockstep_rounds,
        lockstep_ok,
        first_divergence,
        migrations_completed: migration.completed,
        migrations_failed: migration.failed,
        blackouts: migration.blackouts,
        slo_cdf,
        storm: storm_outcome,
        clock_cycles: d.m.clock.0,
        trace_hash: d.hash,
        stalled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny campaign that still exercises faults, a crash, and lockstep.
    fn tiny(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            label: "tiny",
            traffic: TrafficConfig {
                sessions: 16,
                mean_interarrival_ticks: 4.0,
                burst_pm: 120,
                burst_size_max: 3,
                max_live: 12,
                tenants: TrafficConfig::default_tenants(),
            },
            faults: Some(ChaosConfig::chaos_faults()),
            deadline_cycles: Some(20_000_000),
            shed_backlog_limit: Some(10),
            scripted_crashes: 1,
            migrations: 0,
            audit_every_ticks: 64,
            ewb_every_ticks: 48,
            lockstep_rounds: 0,
            lockstep_commands: 0,
            max_ticks: 60_000,
            storm: None,
            ref_pump: false,
        }
    }

    #[test]
    fn identical_seeds_identical_traces() {
        let a = run(&tiny(0xC0FFEE));
        let b = run(&tiny(0xC0FFEE));
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a, b);
        let c = run(&tiny(0xC0FFED));
        assert_ne!(a.trace_hash, c.trace_hash, "different seed, same trace");
    }

    #[test]
    fn clean_campaign_completes_every_session() {
        let mut cfg = tiny(0x11);
        cfg.faults = None;
        cfg.scripted_crashes = 0;
        let out = run(&cfg);
        assert!(!out.stalled, "clean campaign must drain");
        assert_eq!(out.sessions_done, out.sessions);
        assert_eq!(out.sessions_failed, 0);
        assert_eq!(out.enclaves_created as usize, out.sessions);
        assert_eq!(out.enclaves_destroyed, out.enclaves_created);
        assert!(out.audit_ok, "audit: {:?}", out.first_audit_error);
        assert_eq!(out.recovered, 0);
    }

    #[test]
    fn scripted_crash_is_survivable_and_audited() {
        let mut cfg = tiny(0x22);
        cfg.faults = None; // crash is the only disturbance
        cfg.scripted_crashes = 2;
        let out = run(&cfg);
        assert!(!out.stalled);
        assert!(out.crash_restarts >= 2);
        assert!(out.audit_ok, "audit: {:?}", out.first_audit_error);
        // Loss-detection resubmit recovers every dropped request: no
        // session may be lost to a crash alone.
        assert_eq!(out.sessions_done, out.sessions);
        assert!(
            out.crash_dropped_requests == 0 || out.recovered > 0,
            "dropped {} but recovered {}",
            out.crash_dropped_requests,
            out.recovered
        );
    }

    #[test]
    fn chaos_campaign_stays_consistent() {
        let out = run(&tiny(0x33));
        assert!(!out.stalled);
        assert!(out.audit_ok, "audit: {:?}", out.first_audit_error);
        assert!(out.requests > 100);
        // Under faults, every offered session terminates one way or the
        // other — nothing hangs.
        assert_eq!(out.sessions_done + out.sessions_failed, out.sessions);
    }

    #[test]
    fn storm_rides_the_campaign_and_stays_fail_closed() {
        let mut cfg = tiny(0x44);
        cfg.faults = Some(ChaosConfig::serving_faults());
        cfg.storm = Some(StormConfig {
            clients: 4,
            handshakes_per_client: 3,
            calls_per_handshake: 2,
            ..StormConfig::smoke()
        });
        let out = run(&cfg);
        assert!(!out.stalled);
        assert!(out.audit_ok, "audit: {:?}", out.first_audit_error);
        let storm = out.storm.as_ref().expect("storm configured");
        assert!(storm.handshakes_completed >= 12, "storm: {storm:?}");
        assert!(storm.calls_ok > 0);
        assert_eq!(storm.accepted_attacks(), 0, "fail-closed: {storm:?}");
        assert!(storm.pre_ready_attempts > 0);
        // The scripted crash revokes sessions and forces re-attestation.
        assert!(storm.reprobes >= 1, "storm: {storm:?}");
        // Bit-identical replay, storm included.
        let again = run(&cfg);
        assert_eq!(out.trace_hash, again.trace_hash);
        assert_eq!(out, again);
    }

    #[test]
    fn reaper_reclaims_every_leak_with_a_known_eid() {
        // A high transient-exhaustion rate drives sessions out of the
        // destroy path with live enclave ids (five consecutive `Exhausted`
        // rejections exhaust `STEP_RETRY_MAX`), and — because `Exhausted`
        // failures are clean — every leak this config produces carries a
        // known eid. The post-drain reaper must win back all of them.
        let mut reclaimed_seen = false;
        for seed in [0x51u64, 0x52, 0x53, 0x54] {
            let mut cfg = tiny(seed);
            cfg.faults = Some(FaultConfig {
                exhausted_pm: 650,
                ..FaultConfig::disabled()
            });
            cfg.deadline_cycles = None;
            cfg.scripted_crashes = 0;
            cfg.lockstep_rounds = 0;
            let out = run(&cfg);
            assert!(!out.stalled);
            assert!(out.audit_ok, "audit: {:?}", out.first_audit_error);
            assert_eq!(
                out.reclaimed_enclaves, out.leaked_enclaves,
                "seed {seed:#x}: reclaimed {} of {} known-eid leaks",
                out.reclaimed_enclaves, out.leaked_enclaves
            );
            reclaimed_seen |= out.reclaimed_enclaves > 0;
        }
        // At least one of the seeds must actually exercise the reaper, or
        // this test is vacuous.
        assert!(
            reclaimed_seen,
            "no seed produced a reclaim; retune the test"
        );
    }
}
