//! Fleet chaos engine: seeded fault campaigns under live open-loop traffic.
//!
//! This crate drives the real [`hypertee::Machine`] — the full
//! submit/pump/collect pipeline, EMCall gate, iHub mailbox, and multi-core
//! EMS — with an *open-loop* arrival process of enclave sessions while a
//! seeded [`hypertee_faults::FaultPlan`] injects mailbox, ring, DMA, and
//! EMS faults live, including full EMS firmware crash-restarts. It measures
//! what the paper's availability story actually requires:
//!
//! * **graceful degradation** — backpressure shedding and deadline expiry
//!   under overload, surfaced as terminal statuses instead of hangs;
//! * **recovery** — requests that needed retries but still completed `Ok`,
//!   and requests that survived an EMS crash-restart via the pipeline's
//!   loss-detection resubmit;
//! * **consistency** — the cross-structure [`ConsistencyAudit`] stays green
//!   at every checkpoint of every campaign, and lockstep rounds against the
//!   PR 3 reference model report zero divergence;
//! * **mobility under fire** — CVM migrations executed mid-campaign with
//!   measured blackout windows (p50/p99).
//!
//! Everything is deterministic: the same seed yields the same trace hash,
//! so any failing campaign is replayable from one `u64`.
//!
//! [`ConsistencyAudit`]: hypertee_mem::audit::ConsistencyAudit

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod migration;
pub mod report;
pub mod serving_report;
pub mod sharded;
pub mod storm;
pub mod traffic;

pub use campaign::{run, ChaosConfig, ChaosOutcome};
pub use report::{render_report, render_sharded_report, validate};
pub use serving_report::{render_serving_report, validate_serving};
pub use sharded::{run_sharded, ShardedChaosConfig, ShardedChaosOutcome};
pub use storm::{StormConfig, StormDriver, StormOutcome};
pub use traffic::{schedule, Arrival, TenantProfile, TrafficConfig};
