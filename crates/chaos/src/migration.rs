//! Live CVM migration under load, with measured blackout windows.
//!
//! The campaign machine doubles as the *source* node: a CVM is deployed on
//! its EMS (taking frames from the same pool the enclave fleet competes
//! for), loaded with recognizable state, and exported with
//! [`Ems::migrate_out`] while the open-loop traffic keeps pumping. After a
//! transfer dwell the bundle is installed on a separate *destination* node
//! with [`Ems::migrate_in`] and the state is read back and verified. The
//! blackout window is the source machine's clock advance between export
//! and verified install — i.e. how much fleet time passed while the CVM
//! was in neither place — which the campaign reports as p50/p99.
//!
//! [`Ems::migrate_out`]: hypertee_ems::runtime::Ems
//! [`Ems::migrate_in`]: hypertee_ems::runtime::Ems

use hypertee::machine::Machine;
use hypertee_crypto::aes::{ctr_iv, Aes128};
use hypertee_crypto::chacha::ChaChaRng;
use hypertee_ems::cvm::{MigrationBundle, MigrationOfferPriv};
use hypertee_ems::keys::EFuse;
use hypertee_ems::runtime::{Ems, EmsContext};
use hypertee_fabric::ihub::IHub;
use hypertee_mem::addr::{PhysAddr, Ppn, PAGE_SIZE};
use hypertee_mem::phys::FrameAllocator;
use hypertee_mem::system::MemorySystem;

/// Guest pages per migrated CVM.
const GUEST_PAGES: u64 = 8;
/// Offset of the verification state inside guest memory.
const STATE_OFFSET: u64 = 2 * PAGE_SIZE;
/// The image key the VM owner negotiated with the EMS out of band.
const IMAGE_KEY: [u8; 16] = *b"chaos-vm-img-key";

/// A standalone destination node (EMS + memory), standing in for a second
/// HyperTEE server.
struct DestNode {
    sys: MemorySystem,
    hub: IHub,
    os: FrameAllocator,
    ems: Ems,
}

impl DestNode {
    fn boot(seed: u64) -> DestNode {
        let sys = MemorySystem::new(64 << 20, PhysAddr(0x10_000));
        let (hub, cap) = IHub::new();
        let os = FrameAllocator::new(Ppn(256), Ppn(15_000));
        let mut rng = ChaChaRng::from_u64(seed);
        let efuse = EFuse::burn(&mut rng);
        DestNode {
            sys,
            hub,
            os,
            ems: Ems::new(cap, efuse, [0xDD; 32], seed),
        }
    }

    fn with<R>(&mut self, f: impl FnOnce(&mut Ems, &mut EmsContext<'_>) -> R) -> R {
        let mut ctx = EmsContext {
            sys: &mut self.sys,
            hub: &mut self.hub,
            os_frames: &mut self.os,
        };
        f(&mut self.ems, &mut ctx)
    }
}

/// A CVM exported from the source and awaiting install: the wire bundle,
/// the destination's channel secret, and the state bytes that must be
/// intact after the move.
pub struct PendingMigration {
    bundle: MigrationBundle,
    offer_priv: MigrationOfferPriv,
    expect: Vec<u8>,
}

/// Runs the campaign's migrations and accumulates their measurements.
pub struct MigrationEngine {
    dest: DestNode,
    /// Blackout windows (source-clock cycles) of completed migrations.
    pub blackouts: Vec<u64>,
    /// Migrations whose state arrived verified and intact.
    pub completed: u32,
    /// Migrations that failed at any step.
    pub failed: u32,
}

impl MigrationEngine {
    /// Boots the destination node from `seed`.
    pub fn new(seed: u64) -> MigrationEngine {
        MigrationEngine {
            dest: DestNode::boot(seed),
            blackouts: Vec::new(),
            completed: 0,
            failed: 0,
        }
    }

    /// Source-side half: deploy a CVM on the (busy) campaign machine,
    /// write recognizable state, attest the destination, and export the
    /// bundle. Returns `None` (and counts a failure) if any step refuses —
    /// e.g. pool pressure from the enclave fleet.
    pub fn start(&mut self, m: &mut Machine, tag: u64) -> Option<PendingMigration> {
        let plain: Vec<u8> = (0..1024u64)
            .map(|i| (i.wrapping_mul(13) ^ tag.wrapping_mul(101) ^ 0x3c) as u8)
            .collect();
        let mut encrypted = plain;
        Aes128::new(&IMAGE_KEY).ctr_apply(&ctr_iv(0x4356_4d49, 0), &mut encrypted);
        let state = format!("chaos migration #{tag:04}: fleet state intact").into_bytes();

        let mut ctx = EmsContext {
            sys: &mut m.sys,
            hub: &mut m.hub,
            os_frames: &mut m.os,
        };
        let cvm = match m
            .ems
            .cvm_create(&mut ctx, &encrypted, &IMAGE_KEY, GUEST_PAGES)
        {
            Ok(id) => id,
            Err(_) => {
                self.failed += 1;
                return None;
            }
        };
        if m.ems
            .cvm_write(&mut ctx, cvm, STATE_OFFSET, &state)
            .is_err()
        {
            let _ = m.ems.cvm_destroy(&mut ctx, cvm);
            self.failed += 1;
            return None;
        }
        let (offer, offer_priv) = self.dest.ems.migration_offer();
        let dest_ek = self.dest.ems.ek_public();
        let bundle = match m.ems.migrate_out(&mut ctx, cvm, &offer, &dest_ek) {
            Ok(b) => b,
            Err(_) => {
                let _ = m.ems.cvm_destroy(&mut ctx, cvm);
                self.failed += 1;
                return None;
            }
        };
        // The local control structure is a migrated-out husk (its frames
        // and KeyID were already released by the snapshot): drop it so the
        // fleet gets the id space back.
        let _ = m.ems.cvm_destroy(&mut ctx, cvm);
        Some(PendingMigration {
            bundle,
            offer_priv,
            expect: state,
        })
    }

    /// Destination-side half: install the bundle, read the state back, and
    /// record the blackout window measured by the campaign.
    pub fn finish(&mut self, p: PendingMigration, blackout: u64) {
        let installed = self
            .dest
            .with(|ems, ctx| ems.migrate_in(ctx, &p.bundle, &p.offer_priv));
        let id = match installed {
            Ok(id) => id,
            Err(_) => {
                self.failed += 1;
                return;
            }
        };
        let mut got = vec![0u8; p.expect.len()];
        let read = self
            .dest
            .with(|ems, ctx| ems.cvm_read(ctx, id, STATE_OFFSET, &mut got));
        if read.is_ok() && got == p.expect {
            self.completed += 1;
            self.blackouts.push(blackout);
        } else {
            self.failed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_round_trip_preserves_state() {
        let mut m = Machine::boot_default();
        let mut engine = MigrationEngine::new(0x9999);
        let p = engine.start(&mut m, 1).expect("export succeeds");
        engine.finish(p, 1234);
        assert_eq!(engine.completed, 1);
        assert_eq!(engine.failed, 0);
        assert_eq!(engine.blackouts, vec![1234]);
    }

    #[test]
    fn migrations_are_deterministic_per_seed() {
        let run = |seed| {
            let mut m = Machine::boot(hypertee_sim::config::SocConfig::default(), seed).unwrap();
            let mut engine = MigrationEngine::new(seed ^ 1);
            let p = engine.start(&mut m, 7).expect("export succeeds");
            engine.finish(p, 0);
            (engine.completed, engine.failed)
        };
        assert_eq!(run(5), run(5));
    }
}
