//! The attestation storm: a fleet of clients hammering the service facade
//! with challenge-response handshakes and authenticated calls while the
//! chaos campaign crashes, migrates, and faults the machine underneath.
//!
//! Every client is a tick-driven state machine with its own
//! [`CircuitBreaker`] and [`BackoffPolicy`]; the storm injects
//! service-transport faults (dropped / duplicated / delayed / replayed
//! frames, stale-quote substitution, token forgery) *between* the two
//! halves of each exchange, from the campaign's own seeded
//! [`hypertee_faults::FaultPlan`] site stream. The facade must reject every attack — the storm counts
//! attempts and acceptances separately, and the `BENCH_serving.json`
//! validator pins all `*_accepted` counters to zero.
//!
//! Determinism: the storm draws from one `ChaChaRng` and one
//! [`hypertee_faults::FaultInjector`], and clients step in ascending index
//! order, so the whole storm folds into the campaign trace hash.

use hypertee::machine::Machine;
use hypertee_crypto::chacha::ChaChaRng;
use hypertee_crypto::sig::PublicKey;
use hypertee_ems::attest::{SigmaInitiator, SigmaMsg1, SigmaMsg2};
use hypertee_faults::{FaultInjector, FaultKind};
use hypertee_service::{
    request_mac, BackoffPolicy, CircuitBreaker, ServiceConfig, ServiceError, ServiceFacade,
    ServiceOp, SessionToken,
};

/// Storm shape, all deterministic in the campaign seed.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Concurrent storm clients.
    pub clients: usize,
    /// Completed handshake cycles each client must finish.
    pub handshakes_per_client: u32,
    /// Authenticated calls per completed handshake.
    pub calls_per_handshake: u32,
    /// Tick gap between consecutive client activations at storm start.
    pub spawn_every_ticks: u64,
    /// Idle ticks between a client's handshake cycles (paces the storm
    /// across the campaign so it overlaps crashes and migrations).
    pub idle_between_ticks: u64,
    /// Unauthenticated probe calls fired before the facade's startup
    /// probes pass — every one must be refused.
    pub pre_ready_attempts: u32,
    /// Facade challenge freshness window (small, so organic client
    /// latency under delay faults exercises the stale path).
    pub freshness_window_ticks: u64,
    /// Facade token TTL (small enough that long-lived clients re-attest).
    pub token_ttl_ticks: u64,
}

impl StormConfig {
    /// The acceptance storm: thousands of handshakes across the campaign.
    pub fn fleet() -> StormConfig {
        StormConfig {
            clients: 64,
            handshakes_per_client: 24,
            calls_per_handshake: 6,
            spawn_every_ticks: 3,
            idle_between_ticks: 120,
            pre_ready_attempts: 64,
            freshness_window_ticks: 12,
            token_ttl_ticks: 900,
        }
    }

    /// A seconds-scale storm for CI smoke.
    pub fn smoke() -> StormConfig {
        StormConfig {
            clients: 8,
            handshakes_per_client: 4,
            calls_per_handshake: 2,
            spawn_every_ticks: 2,
            idle_between_ticks: 40,
            pre_ready_attempts: 8,
            freshness_window_ticks: 12,
            token_ttl_ticks: 400,
        }
    }
}

/// What the storm measured. Attempt/accept pairs separate "the attack was
/// launched" from "the facade fell for it" — the latter must stay zero.
#[derive(Debug, Clone, PartialEq)]
pub struct StormOutcome {
    /// Clients the storm ran.
    pub clients: usize,
    /// Handshake cycles started (challenges successfully issued).
    pub handshakes_attempted: u64,
    /// Handshake cycles that ended with a verified session key.
    pub handshakes_completed: u64,
    /// Handshake cycles restarted after a rejection or lost frame.
    pub handshake_retries: u64,
    /// Authenticated calls sent.
    pub calls_attempted: u64,
    /// Authenticated calls served with a verifying reply MAC.
    pub calls_ok: u64,
    /// Fresh handshakes forced by session revocation (epoch bump, TTL).
    pub reattestations: u64,
    /// Unauthenticated requests fired before the facade was ready.
    pub pre_ready_attempts: u64,
    /// Pre-readiness requests that were *served* (must be 0).
    pub pre_ready_accepted: u64,
    /// Stale-quote substitutions delivered to clients.
    pub stale_quote_attempts: u64,
    /// Substituted quotes a client accepted (must be 0).
    pub stale_quote_accepted: u64,
    /// Replayed frames (captured msg1 / captured call) re-delivered.
    pub replay_attempts: u64,
    /// Replays the facade served (must be 0).
    pub replay_accepted: u64,
    /// Same-frame duplicate deliveries after a served call.
    pub duplicate_attempts: u64,
    /// Duplicates the facade served twice (must be 0).
    pub duplicate_accepted: u64,
    /// Bit-flipped session tokens presented.
    pub forged_token_attempts: u64,
    /// Forged tokens the facade honoured (must be 0).
    pub forged_token_accepted: u64,
    /// Breaker trips across all clients.
    pub breaker_to_open: u64,
    /// Breaker cooldown expiries into half-open.
    pub breaker_to_half_open: u64,
    /// Breaker recoveries into closed.
    pub breaker_to_closed: u64,
    /// Requests shed locally by open breakers.
    pub breaker_shed: u64,
    /// Facade re-probes forced by crash-restarts.
    pub reprobes: u64,
    /// Sessions revoked by epoch bumps.
    pub sessions_revoked: u64,
    /// Facade-side not-ready rejections.
    pub not_ready_rejects: u64,
    /// Facade-side stale-challenge rejections.
    pub stale_challenge_rejects: u64,
    /// Facade-side revoked-epoch rejections.
    pub epoch_rejects: u64,
    /// Facade-side expired-token rejections.
    pub expired_token_rejects: u64,
    /// Service-transport faults the injector actually fired.
    pub service_faults_injected: u64,
    /// Median completed-handshake latency in ticks (challenge to key).
    pub handshake_p50_ticks: u64,
    /// 99th-percentile handshake latency in ticks.
    pub handshake_p99_ticks: u64,
    /// Handshake SLO CDF: `(tick bound, fraction of completed handshakes
    /// at or under it)`.
    pub slo_cdf: Vec<(u32, f64)>,
}

impl StormOutcome {
    /// Sum of every accepted-attack counter: the fail-closed verdict in
    /// one number. Anything above zero is a security failure.
    pub fn accepted_attacks(&self) -> u64 {
        self.pre_ready_accepted
            + self.stale_quote_accepted
            + self.replay_accepted
            + self.duplicate_accepted
            + self.forged_token_accepted
    }
}

/// Handshake SLO CDF abscissae, in ticks.
const SLO_TICK_BOUNDS: [u32; 8] = [1, 4, 16, 64, 256, 1024, 4096, 16384];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Not yet activated (staggered spawn).
    Spawning,
    /// Next action: request a challenge.
    Challenge,
    /// Next action: answer the held challenge with `SigmaMsg1`.
    Attest,
    /// Next action: an authenticated call.
    Call,
    /// Target met and the campaign is winding down.
    Done,
}

struct Client {
    tenant: u64,
    phase: Phase,
    wait_until: u64,
    breaker: CircuitBreaker,
    backoff_attempt: u32,
    handshakes_done: u32,
    calls_left: u32,
    /// Tick the current handshake cycle started at (challenge request).
    started_at: u64,
    challenge: Option<(u64, [u8; 32])>,
    token: Option<SessionToken>,
    key: Option<[u8; 32]>,
    seq: u64,
}

/// The storm driver. Owns the facade; the campaign steps it once per tick.
pub struct StormDriver {
    cfg: StormConfig,
    facade: ServiceFacade,
    injector: FaultInjector,
    rng: ChaChaRng,
    backoff: BackoffPolicy,
    clients: Vec<Client>,
    /// Pinned verifier inputs, learned at boot/probe time.
    trusted_ek: Option<PublicKey>,
    expected_measurement: [u8; 32],
    /// Captured frames for replay / stale-quote substitution attacks.
    captured_msg1: Option<(u64, SigmaMsg1)>,
    captured_msg2: Option<SigmaMsg2>,
    captured_call: Option<(SessionToken, u64, ServiceOp, [u8; 32])>,
    latencies: Vec<u64>,
    out: StormOutcome,
    booted: bool,
    winding_down: bool,
}

impl StormDriver {
    /// A storm over a fresh (unprobed) facade. Call [`StormDriver::boot`]
    /// before the first tick.
    pub fn new(cfg: StormConfig, seed: u64, injector: FaultInjector) -> StormDriver {
        let facade_config = ServiceConfig {
            freshness_window_ticks: cfg.freshness_window_ticks,
            token_ttl_ticks: cfg.token_ttl_ticks,
            ..ServiceConfig::production(seed ^ 0x7374_6f72_6d00_0001)
        };
        let facade = ServiceFacade::new(facade_config).expect("production mode constructs");
        let clients = (0..cfg.clients)
            .map(|i| Client {
                tenant: 0x5000 + i as u64,
                phase: Phase::Spawning,
                wait_until: i as u64 * cfg.spawn_every_ticks,
                breaker: CircuitBreaker::default(),
                backoff_attempt: 0,
                handshakes_done: 0,
                calls_left: 0,
                started_at: 0,
                challenge: None,
                token: None,
                key: None,
                seq: 0,
            })
            .collect();
        let out = StormOutcome {
            clients: cfg.clients,
            handshakes_attempted: 0,
            handshakes_completed: 0,
            handshake_retries: 0,
            calls_attempted: 0,
            calls_ok: 0,
            reattestations: 0,
            pre_ready_attempts: 0,
            pre_ready_accepted: 0,
            stale_quote_attempts: 0,
            stale_quote_accepted: 0,
            replay_attempts: 0,
            replay_accepted: 0,
            duplicate_attempts: 0,
            duplicate_accepted: 0,
            forged_token_attempts: 0,
            forged_token_accepted: 0,
            breaker_to_open: 0,
            breaker_to_half_open: 0,
            breaker_to_closed: 0,
            breaker_shed: 0,
            reprobes: 0,
            sessions_revoked: 0,
            not_ready_rejects: 0,
            stale_challenge_rejects: 0,
            epoch_rejects: 0,
            expired_token_rejects: 0,
            service_faults_injected: 0,
            handshake_p50_ticks: 0,
            handshake_p99_ticks: 0,
            slo_cdf: Vec::new(),
        };
        StormDriver {
            rng: ChaChaRng::from_u64(seed ^ 0x7374_6f72_6d5f_7267),
            cfg,
            facade,
            injector,
            backoff: BackoffPolicy::default(),
            clients,
            trusted_ek: None,
            expected_measurement: [0; 32],
            captured_msg1: None,
            captured_msg2: None,
            captured_call: None,
            latencies: Vec::new(),
            out,
            booted: false,
            winding_down: false,
        }
    }

    /// Fail-closed startup: hammers the unprobed facade (every request
    /// must be refused), then runs the startup probes and pins the
    /// verifier inputs the clients will use.
    pub fn boot(&mut self, m: &mut Machine) {
        let dead_token = SessionToken {
            id: 0,
            tenant: 0,
            epoch: 0,
            expires_at: u64::MAX,
            mac: [0; 32],
        };
        for i in 0..self.cfg.pre_ready_attempts {
            self.out.pre_ready_attempts += 1;
            let served = if i % 2 == 0 {
                self.facade.issue_challenge(u64::from(i), 0).is_ok()
            } else {
                let op = ServiceOp::Ping(vec![i as u8]);
                self.facade
                    .call(m, &dead_token, 0, &op, &[0; 32], 0)
                    .is_ok()
            };
            if served {
                self.out.pre_ready_accepted += 1;
            }
        }
        self.facade
            .probe(m, 0)
            .expect("startup probes pass on the campaign machine");
        self.trusted_ek = Some(m.ek_public());
        self.expected_measurement = self.facade.service_measurement().expect("probed");
        self.booted = true;
    }

    /// Supervised recovery after an EMS crash-restart: the facade revokes
    /// every session and re-probes before serving again.
    pub fn on_crash(&mut self, m: &mut Machine, tick: u64) {
        self.facade
            .supervise(m, tick)
            .expect("facade re-probes after crash-restart");
    }

    /// Whether every client has met its target (and the campaign told the
    /// storm to wind down).
    pub fn done(&self) -> bool {
        self.booted && self.clients.iter().all(|c| c.phase == Phase::Done)
    }

    /// One storm tick: each client advances by at most one exchange, in
    /// ascending index order. `winding_down` is the campaign's signal that
    /// the background traffic has drained — clients at target stop instead
    /// of idling for more.
    pub fn step(&mut self, m: &mut Machine, tick: u64, winding_down: bool) {
        self.winding_down |= winding_down;
        for i in 0..self.clients.len() {
            if self.clients[i].wait_until > tick || self.clients[i].phase == Phase::Done {
                continue;
            }
            match self.clients[i].phase {
                Phase::Spawning => {
                    self.clients[i].phase = Phase::Challenge;
                    self.clients[i].started_at = tick;
                    self.step_challenge(i, tick);
                }
                Phase::Challenge => self.step_challenge(i, tick),
                Phase::Attest => self.step_attest(m, i, tick),
                Phase::Call => self.step_call(m, i, tick),
                Phase::Done => {}
            }
        }
    }

    /// Exponential backoff with seeded jitter for client `i`.
    fn back_off(&mut self, i: usize, tick: u64) {
        self.clients[i].backoff_attempt += 1;
        let attempt = self.clients[i].backoff_attempt;
        let delay = self.backoff.delay(attempt, &mut self.rng);
        self.clients[i].wait_until = tick + delay;
    }

    /// Starts (or retries) a handshake cycle after a failure.
    fn restart_handshake(&mut self, i: usize) {
        self.out.handshake_retries += 1;
        self.clients[i].challenge = None;
        self.clients[i].phase = Phase::Challenge;
    }

    /// Client `i` met its per-cycle goal; park it, queue the next cycle,
    /// or finish.
    fn cycle_done(&mut self, i: usize, tick: u64) {
        let c = &mut self.clients[i];
        c.handshakes_done += 1;
        c.backoff_attempt = 0;
        if c.handshakes_done >= self.cfg.handshakes_per_client && self.winding_down {
            c.phase = Phase::Done;
            return;
        }
        c.phase = Phase::Challenge;
        c.challenge = None;
        let jitter = self.rng.gen_range(self.cfg.idle_between_ticks / 2 + 1);
        c.wait_until = tick + 1 + self.cfg.idle_between_ticks + jitter;
        c.started_at = c.wait_until;
    }

    fn step_challenge(&mut self, i: usize, tick: u64) {
        if !self.clients[i].breaker.allow(tick) {
            self.clients[i].wait_until = tick + 2;
            return;
        }
        // Frame lost in transit: the facade never sees the request.
        if self.injector.roll(FaultKind::RpcDropFrame) {
            self.clients[i].breaker.on_failure(tick);
            self.back_off(i, tick);
            return;
        }
        let delay = if self.injector.roll(FaultKind::RpcDelayFrame) {
            u64::from(self.injector.delay_polls())
        } else {
            0
        };
        let tenant = self.clients[i].tenant;
        match self.facade.issue_challenge(tenant, tick) {
            Ok((cid, nonce)) => {
                self.out.handshakes_attempted += 1;
                self.clients[i].challenge = Some((cid, nonce));
                self.clients[i].phase = Phase::Attest;
                // A delayed response frame postpones the client's answer —
                // under a tight freshness window this is how organic
                // stale-challenge rejections happen.
                self.clients[i].wait_until = tick + 1 + delay;
            }
            Err(_) => {
                self.clients[i].breaker.on_failure(tick);
                self.back_off(i, tick);
            }
        }
    }

    fn step_attest(&mut self, m: &mut Machine, i: usize, tick: u64) {
        if !self.clients[i].breaker.allow(tick) {
            self.clients[i].wait_until = tick + 2;
            return;
        }
        // Replay attack: re-deliver a captured (already consumed) msg1
        // before the genuine frame. The facade must refuse it.
        if self.injector.roll(FaultKind::RpcReplayFrame) {
            if let Some((cap_cid, cap_msg1)) = self.captured_msg1.clone() {
                self.out.replay_attempts += 1;
                if self.facade.attest(m, cap_cid, &cap_msg1, tick).is_ok() {
                    self.out.replay_accepted += 1;
                }
            }
        }
        // Frame lost in transit: the challenge stays pending client-side.
        if self.injector.roll(FaultKind::RpcDropFrame) {
            self.clients[i].breaker.on_failure(tick);
            self.back_off(i, tick);
            return;
        }
        let (cid, nonce) = self.clients[i].challenge.expect("attest holds a challenge");
        let (init, msg1) = SigmaInitiator::start_with_nonce(&mut self.rng, nonce);
        self.captured_msg1 = Some((cid, msg1.clone()));
        match self.facade.attest(m, cid, &msg1, tick) {
            Ok((msg2, token)) => {
                // Stale-quote substitution: deliver a captured msg2 from an
                // earlier handshake instead. The transcript hash cannot
                // match, so the client must refuse the session.
                let (deliver, substituted) = match self.captured_msg2.clone() {
                    Some(old) if self.injector.roll(FaultKind::StaleQuoteReplay) => {
                        self.out.stale_quote_attempts += 1;
                        (old, true)
                    }
                    _ => {
                        self.captured_msg2 = Some(msg2.clone());
                        (msg2, false)
                    }
                };
                let ek = self.trusted_ek.as_ref().expect("booted");
                match init.finish(&deliver, ek, &self.expected_measurement) {
                    Ok(key) => {
                        if substituted {
                            // Security failure: a stale quote verified.
                            self.out.stale_quote_accepted += 1;
                        }
                        self.out.handshakes_completed += 1;
                        self.latencies
                            .push(tick.saturating_sub(self.clients[i].started_at));
                        let c = &mut self.clients[i];
                        c.token = Some(token);
                        c.key = Some(key);
                        c.seq = 0;
                        c.calls_left = self.cfg.calls_per_handshake;
                        c.phase = Phase::Call;
                        c.wait_until = tick + 1;
                        c.backoff_attempt = 0;
                        c.breaker.on_success();
                    }
                    Err(_) => {
                        // Unverifiable platform reply: drop the session
                        // material and start the cycle over.
                        self.clients[i].breaker.on_failure(tick);
                        self.restart_handshake(i);
                        self.back_off(i, tick);
                    }
                }
            }
            Err(_) => {
                // Stale, consumed, or refused: re-challenge.
                self.clients[i].breaker.on_failure(tick);
                self.restart_handshake(i);
                self.back_off(i, tick);
            }
        }
    }

    fn step_call(&mut self, m: &mut Machine, i: usize, tick: u64) {
        if !self.clients[i].breaker.allow(tick) {
            self.clients[i].wait_until = tick + 2;
            return;
        }
        let token = self.clients[i].token.clone().expect("call holds a token");
        let key = self.clients[i].key.expect("call holds a key");
        let seq = self.clients[i].seq;
        // Token forgery: a bit-flipped MAC presented alongside a valid
        // request. The facade must refuse it without touching the session.
        if self.injector.roll(FaultKind::TokenForge) {
            self.out.forged_token_attempts += 1;
            let mut forged = token.clone();
            forged.mac[(tick % 32) as usize] ^= 0x40;
            let op = ServiceOp::Ping(vec![0x51]);
            let mac = request_mac(&key, seq, &op);
            if self.facade.call(m, &forged, seq, &op, &mac, tick).is_ok() {
                self.out.forged_token_accepted += 1;
            }
        }
        // Cross-session replay: re-deliver a captured old call frame.
        if self.injector.roll(FaultKind::RpcReplayFrame) {
            if let Some((ct, cs, cop, cmac)) = self.captured_call.clone() {
                self.out.replay_attempts += 1;
                if self.facade.call(m, &ct, cs, &cop, &cmac, tick).is_ok() {
                    self.out.replay_accepted += 1;
                }
            }
        }
        // Request frame lost: the sequence number was not consumed
        // server-side, so the client retries the same frame later.
        if self.injector.roll(FaultKind::RpcDropFrame) {
            self.clients[i].breaker.on_failure(tick);
            self.back_off(i, tick);
            return;
        }
        let delay = if self.injector.roll(FaultKind::RpcDelayFrame) {
            u64::from(self.injector.delay_polls())
        } else {
            0
        };
        self.out.calls_attempted += 1;
        let op = if seq.is_multiple_of(2) {
            ServiceOp::Ping(vec![i as u8, seq as u8])
        } else {
            ServiceOp::Seal(vec![i as u8, seq as u8, 0x77])
        };
        let mac = request_mac(&key, seq, &op);
        match self.facade.call(m, &token, seq, &op, &mac, tick) {
            Ok(reply) => {
                if !reply.verify(&key) {
                    // A reply that fails its MAC is treated as a dead
                    // session — never trusted.
                    self.clients[i].breaker.on_failure(tick);
                    self.drop_session_and_rehandshake(i, tick);
                    return;
                }
                self.out.calls_ok += 1;
                // Duplicate delivery: the exact same frame arrives twice.
                // The per-session sequence must reject the second copy.
                if self.injector.roll(FaultKind::RpcDuplicateFrame) {
                    self.out.duplicate_attempts += 1;
                    if self.facade.call(m, &token, seq, &op, &mac, tick).is_ok() {
                        self.out.duplicate_accepted += 1;
                    }
                }
                self.captured_call = Some((token, seq, op, mac));
                let c = &mut self.clients[i];
                c.breaker.on_success();
                c.backoff_attempt = 0;
                c.seq += 1;
                c.calls_left -= 1;
                c.wait_until = tick + 1 + delay;
                if c.calls_left == 0 {
                    self.cycle_done(i, tick);
                }
            }
            Err(
                ServiceError::EpochRevoked
                | ServiceError::UnknownSession
                | ServiceError::TokenExpired
                | ServiceError::BadSequence,
            ) => {
                // The session is dead (crash-restart epoch bump or TTL):
                // re-attest from scratch.
                self.out.reattestations += 1;
                self.clients[i].breaker.on_failure(tick);
                self.drop_session_and_rehandshake(i, tick);
            }
            Err(_) => {
                self.clients[i].breaker.on_failure(tick);
                self.back_off(i, tick);
            }
        }
    }

    fn drop_session_and_rehandshake(&mut self, i: usize, tick: u64) {
        self.clients[i].token = None;
        self.clients[i].key = None;
        self.restart_handshake(i);
        self.clients[i].started_at = tick + 1;
        self.clients[i].wait_until = tick + 1;
    }

    /// Consumes the storm and returns what it measured.
    pub fn finish(mut self) -> StormOutcome {
        for c in &self.clients {
            let t = c.breaker.transitions();
            self.out.breaker_to_open += t.to_open;
            self.out.breaker_to_half_open += t.to_half_open;
            self.out.breaker_to_closed += t.to_closed;
            self.out.breaker_shed += t.shed;
        }
        let fs = &self.facade.stats;
        self.out.reprobes = fs.reprobes;
        self.out.sessions_revoked = fs.sessions_revoked;
        self.out.not_ready_rejects = fs.not_ready_rejects;
        self.out.stale_challenge_rejects = fs.stale_challenges;
        self.out.epoch_rejects = fs.epoch_rejects;
        self.out.expired_token_rejects = fs.expired_tokens;
        self.out.service_faults_injected = self.injector.stats().total();
        self.latencies.sort_unstable();
        let pct = |p: usize| -> u64 {
            if self.latencies.is_empty() {
                0
            } else {
                self.latencies[(self.latencies.len() - 1) * p / 100]
            }
        };
        self.out.handshake_p50_ticks = pct(50);
        self.out.handshake_p99_ticks = pct(99);
        self.out.slo_cdf = SLO_TICK_BOUNDS
            .iter()
            .map(|&bound| {
                let frac = if self.latencies.is_empty() {
                    0.0
                } else {
                    self.latencies
                        .iter()
                        .filter(|&&l| l <= u64::from(bound))
                        .count() as f64
                        / self.latencies.len() as f64
                };
                (bound, frac)
            })
            .collect();
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertee_faults::{FaultConfig, FaultPlan};

    fn storm_on_machine(faults: FaultConfig) -> (Machine, StormDriver) {
        let m = Machine::boot_default();
        let plan = FaultPlan::new(7, faults);
        let driver = StormDriver::new(StormConfig::smoke(), 7, plan.injector("service"));
        (m, driver)
    }

    #[test]
    fn clean_storm_completes_every_handshake() {
        let (mut m, mut s) = storm_on_machine(FaultConfig::disabled());
        s.boot(&mut m);
        assert_eq!(s.out.pre_ready_accepted, 0, "fail-closed before probe");
        assert!(s.out.pre_ready_attempts > 0);
        let mut tick = 0;
        while !s.done() {
            s.step(&mut m, tick, true);
            tick += 1;
            assert!(tick < 50_000, "clean storm must terminate");
        }
        let out = s.finish();
        let want = u64::from(StormConfig::smoke().handshakes_per_client) * out.clients as u64;
        assert_eq!(out.handshakes_completed, want);
        assert_eq!(
            out.calls_ok,
            want * u64::from(StormConfig::smoke().calls_per_handshake)
        );
        assert_eq!(out.accepted_attacks(), 0);
        assert_eq!(out.handshake_retries, 0);
        assert!(out.handshake_p99_ticks >= out.handshake_p50_ticks);
    }

    #[test]
    fn faulted_storm_rejects_every_attack() {
        let (mut m, mut s) = storm_on_machine(FaultConfig::service_storm());
        s.boot(&mut m);
        let mut tick = 0;
        while !s.done() {
            s.step(&mut m, tick, true);
            tick += 1;
            assert!(tick < 200_000, "faulted storm must terminate");
        }
        let out = s.finish();
        assert!(out.service_faults_injected > 0, "storm must inject faults");
        assert!(
            out.replay_attempts + out.duplicate_attempts + out.forged_token_attempts > 0,
            "attack paths must fire: {out:?}"
        );
        assert_eq!(out.accepted_attacks(), 0, "fail-closed: {out:?}");
        assert!(out.handshakes_completed >= out.clients as u64);
    }

    #[test]
    fn crash_restart_forces_reattestation_under_storm() {
        // Long call streams keep clients mid-session when the crash hits.
        let cfg = StormConfig {
            clients: 4,
            handshakes_per_client: 2,
            calls_per_handshake: 60,
            idle_between_ticks: 4,
            ..StormConfig::smoke()
        };
        let mut m = Machine::boot_default();
        let plan = FaultPlan::new(7, FaultConfig::disabled());
        let mut s = StormDriver::new(cfg, 7, plan.injector("service"));
        s.boot(&mut m);
        for tick in 0..40 {
            s.step(&mut m, tick, false);
        }
        m.crash_restart_ems();
        s.on_crash(&mut m, 40);
        let mut tick = 41;
        while !s.done() {
            s.step(&mut m, tick, true);
            tick += 1;
            assert!(tick < 50_000, "storm must recover after crash");
        }
        let out = s.finish();
        assert_eq!(out.reprobes, 1);
        assert!(out.sessions_revoked > 0, "live sessions were revoked");
        assert!(out.reattestations > 0, "clients re-attested: {out:?}");
        assert_eq!(out.accepted_attacks(), 0);
    }
}
