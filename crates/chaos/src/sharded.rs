//! Sharded chaos campaigns: the fleet split across `ShardDomain`s and
//! serviced by a worker pool, with a deterministic merge.
//!
//! A [`ShardedChaosConfig`] fixes a *shard count* (part of the seeded
//! configuration) and a *thread count* (a free execution parameter). Each
//! shard runs a full, self-contained chaos campaign — its own machine, its
//! own fault plan, its own traffic slice — from a splitmix-derived seed
//! `derive_stream(campaign_seed, shard_id)`. Shards never share mutable
//! state, workers pull whole shards off a queue, and the merge walks the
//! results in stable shard-id order, so the merged [`ChaosOutcome`]
//! (counters, SLO CDF, and the folded trace hash alike) is bit-identical
//! at 1, 2, 4, or 8 worker threads. `threads == 1` runs every shard inline
//! on the calling thread and is the reference behavior.
//!
//! The merged outcome keeps the single-campaign semantics wherever a sum
//! is honest (requests, sessions, enclaves, faults) and documents the rest:
//! `ticks`/`clock_cycles` are the *max* over shards (the wall time of the
//! parallel composition, exactly as one machine max-merges its per-hart
//! clocks), the high-water marks are summed upper bounds, and the SLO CDF
//! is the ok-weighted average of the per-shard CDFs.

use hypertee::shard::par_run;
use hypertee_sim::rng::derive_stream;

use crate::campaign::{run, ChaosConfig, ChaosOutcome};
use crate::traffic::TrafficConfig;

/// A sharded campaign: `shards` independent sub-campaigns over one master
/// seed, serviced by `threads` workers.
#[derive(Debug, Clone)]
pub struct ShardedChaosConfig {
    /// The campaign template. Its `seed` is the master seed; its traffic
    /// and scripted-event counts are split across the shards.
    pub base: ChaosConfig,
    /// Shard count (fixed; changing it changes the merged trace).
    pub shards: usize,
    /// Worker threads (free; any value yields the same merged trace).
    pub threads: usize,
}

/// Canonical shard count for the committed fleet/smoke presets.
pub const DEFAULT_SHARDS: usize = 4;

impl ShardedChaosConfig {
    /// The full fleet campaign split across [`DEFAULT_SHARDS`] shards.
    pub fn fleet(seed: u64, threads: usize) -> ShardedChaosConfig {
        ShardedChaosConfig {
            base: ChaosConfig::fleet(seed),
            shards: DEFAULT_SHARDS,
            threads,
        }
    }

    /// The CI smoke campaign split across [`DEFAULT_SHARDS`] shards.
    pub fn smoke(seed: u64, threads: usize) -> ShardedChaosConfig {
        ShardedChaosConfig {
            base: ChaosConfig::smoke(seed),
            shards: DEFAULT_SHARDS,
            threads,
        }
    }
}

/// `shard`'s share of `total` (remainder to the low shards).
fn split_count(total: usize, shards: usize, shard: usize) -> usize {
    total / shards + usize::from(shard < total % shards)
}

/// The sub-campaign config of shard `shard` of `shards`: seed derived from
/// the per-shard splitmix stream, traffic and scripted events split with
/// the remainder on the low shards, cadences and policies unchanged.
///
/// # Panics
///
/// Panics when `shard >= shards` or `shards == 0`.
pub fn shard_config(base: &ChaosConfig, shards: usize, shard: usize) -> ChaosConfig {
    assert!(shards > 0 && shard < shards, "shard {shard} of {shards}");
    let u32_split = |total: u32| -> u32 {
        let t = total as usize;
        split_count(t, shards, shard) as u32
    };
    ChaosConfig {
        seed: derive_stream(base.seed, shard as u64),
        label: base.label,
        traffic: TrafficConfig {
            sessions: split_count(base.traffic.sessions, shards, shard),
            mean_interarrival_ticks: base.traffic.mean_interarrival_ticks,
            burst_pm: base.traffic.burst_pm,
            burst_size_max: base.traffic.burst_size_max,
            max_live: split_count(base.traffic.max_live, shards, shard).max(1),
            tenants: base.traffic.tenants.clone(),
        },
        faults: base.faults.clone(),
        deadline_cycles: base.deadline_cycles,
        shed_backlog_limit: base.shed_backlog_limit,
        scripted_crashes: u32_split(base.scripted_crashes),
        migrations: u32_split(base.migrations),
        audit_every_ticks: base.audit_every_ticks,
        ewb_every_ticks: base.ewb_every_ticks,
        lockstep_rounds: u32_split(base.lockstep_rounds),
        lockstep_commands: base.lockstep_commands,
        max_ticks: base.max_ticks,
        // The attestation storm is a single-facade workload: it does not
        // shard. Storm campaigns run unsharded (`serving_bench`).
        storm: None,
        ref_pump: base.ref_pump,
    }
}

/// Result of a sharded campaign: the deterministic merge plus every
/// shard's own outcome (in shard-id order) for inspection.
#[derive(Debug, Clone)]
pub struct ShardedChaosOutcome {
    /// The merged campaign outcome (see module docs for merge semantics).
    pub merged: ChaosOutcome,
    /// Per-shard outcomes, indexed by shard id.
    pub per_shard: Vec<ChaosOutcome>,
    /// Shard count the campaign ran with.
    pub shards: usize,
    /// Worker threads the campaign ran with (execution detail: never part
    /// of the merged trace or the report).
    pub threads: usize,
}

/// Runs a sharded campaign: every shard's sub-campaign on the worker pool,
/// then the stable-order merge.
///
/// # Panics
///
/// Panics on a zero shard count or on machine boot failure.
pub fn run_sharded(cfg: &ShardedChaosConfig) -> ShardedChaosOutcome {
    assert!(cfg.shards > 0, "need at least one shard");
    let configs: Vec<ChaosConfig> = (0..cfg.shards)
        .map(|s| shard_config(&cfg.base, cfg.shards, s))
        .collect();
    let per_shard = par_run(configs, cfg.threads, |_, shard_cfg| run(&shard_cfg));
    let merged = merge(&cfg.base, &per_shard);
    ShardedChaosOutcome {
        merged,
        per_shard,
        shards: cfg.shards,
        threads: cfg.threads,
    }
}

/// FNV-1a fold (same constants as the campaign's event-stream fold).
fn fold(hash: &mut u64, vals: &[u64]) {
    for v in vals {
        *hash ^= *v;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Merges per-shard outcomes in stable shard-id order.
fn merge(base: &ChaosConfig, shards: &[ChaosOutcome]) -> ChaosOutcome {
    // The merged hash folds (shard id, shard trace hash) from the master
    // seed's basis: each shard hash already folds that shard's full event
    // stream, so the merged hash commits to every event of every shard.
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ base.seed;
    for (i, s) in shards.iter().enumerate() {
        fold(&mut hash, &[i as u64, s.trace_hash]);
    }

    let first_audit_error = shards.iter().find_map(|s| s.first_audit_error.clone());
    let first_divergence = shards.iter().find_map(|s| s.first_divergence.clone());

    // Ok-weighted SLO CDF merge at fixed abscissae, in shard order (f64
    // summation order is part of the determinism contract).
    let multiples: Vec<u32> = shards
        .first()
        .map(|s| s.slo_cdf.iter().map(|&(m, _)| m).collect())
        .unwrap_or_default();
    let total_ok: u64 = shards.iter().map(|s| s.ok_responses).sum();
    let slo_cdf: Vec<(u32, f64)> = multiples
        .iter()
        .enumerate()
        .map(|(row, &mult)| {
            let frac = if total_ok == 0 {
                0.0
            } else {
                shards
                    .iter()
                    .map(|s| s.slo_cdf[row].1 * s.ok_responses as f64)
                    .sum::<f64>()
                    / total_ok as f64
            };
            (mult, frac)
        })
        .collect();

    let mut blackouts = Vec::new();
    for s in shards {
        blackouts.extend_from_slice(&s.blackouts);
    }

    ChaosOutcome {
        seed: base.seed,
        label: base.label,
        // Parallel composition: wall time is the slowest shard.
        ticks: shards.iter().map(|s| s.ticks).max().unwrap_or(0),
        requests: shards.iter().map(|s| s.requests).sum(),
        completions: shards.iter().map(|s| s.completions).sum(),
        ok_responses: total_ok,
        recovered: shards.iter().map(|s| s.recovered).sum(),
        rejections: shards.iter().map(|s| s.rejections).sum(),
        timeouts: shards.iter().map(|s| s.timeouts).sum(),
        shed: shards.iter().map(|s| s.shed).sum(),
        expired: shards.iter().map(|s| s.expired).sum(),
        retries: shards.iter().map(|s| s.retries).sum(),
        sessions: shards.iter().map(|s| s.sessions).sum(),
        sessions_done: shards.iter().map(|s| s.sessions_done).sum(),
        sessions_failed: shards.iter().map(|s| s.sessions_failed).sum(),
        enclaves_created: shards.iter().map(|s| s.enclaves_created).sum(),
        enclaves_destroyed: shards.iter().map(|s| s.enclaves_destroyed).sum(),
        leaked_enclaves: shards.iter().map(|s| s.leaked_enclaves).sum(),
        reclaimed_enclaves: shards.iter().map(|s| s.reclaimed_enclaves).sum(),
        faults_injected: shards.iter().map(|s| s.faults_injected).sum(),
        crash_restarts: shards.iter().map(|s| s.crash_restarts).sum(),
        crash_dropped_requests: shards.iter().map(|s| s.crash_dropped_requests).sum(),
        // Summed HWMs: the upper bound of the concurrent composition (each
        // shard reached its own HWM on its own timeline).
        queue_depth_hwm: shards.iter().map(|s| s.queue_depth_hwm).sum(),
        in_flight_hwm: shards.iter().map(|s| s.in_flight_hwm).sum(),
        audits: shards.iter().map(|s| s.audits).sum(),
        audit_ok: shards.iter().all(|s| s.audit_ok),
        first_audit_error,
        lockstep_rounds: shards.iter().map(|s| s.lockstep_rounds).sum(),
        lockstep_ok: shards.iter().all(|s| s.lockstep_ok),
        first_divergence,
        migrations_completed: shards.iter().map(|s| s.migrations_completed).sum(),
        migrations_failed: shards.iter().map(|s| s.migrations_failed).sum(),
        blackouts,
        slo_cdf,
        // Shards never carry a storm (see `shard_config`).
        storm: None,
        clock_cycles: shards.iter().map(|s| s.clock_cycles).max().unwrap_or(0),
        trace_hash: hash,
        stalled: shards.iter().any(|s| s.stalled),
    }
}

impl ShardedChaosOutcome {
    /// Sum of the per-shard clocks: the simulated cost of running the same
    /// shards *sequentially* on one timeline. The ratio against the merged
    /// (max) clock is the deterministic simulated-time speedup of the
    /// parallel composition — independent of the host's core count.
    pub fn sequential_clock_cycles(&self) -> u64 {
        self.per_shard.iter().map(|s| s.clock_cycles).sum()
    }

    /// Deterministic simulated-time speedup of the parallel composition:
    /// `sum(shard clocks) / max(shard clocks)`. 1.0 for a single shard.
    pub fn simulated_speedup(&self) -> f64 {
        let max = self.merged.clock_cycles.max(1);
        self.sequential_clock_cycles() as f64 / max as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::ChaosConfig;

    /// A small sharded campaign that still exercises faults, crashes, and
    /// a lockstep round.
    fn tiny(seed: u64, threads: usize) -> ShardedChaosConfig {
        let mut base = ChaosConfig::smoke(seed);
        base.traffic = TrafficConfig {
            sessions: 24,
            mean_interarrival_ticks: 4.0,
            burst_pm: 120,
            burst_size_max: 3,
            max_live: 12,
            tenants: TrafficConfig::default_tenants(),
        };
        base.scripted_crashes = 2;
        base.migrations = 0;
        base.lockstep_rounds = 1;
        base.lockstep_commands = 24;
        ShardedChaosConfig {
            base,
            shards: 4,
            threads,
        }
    }

    #[test]
    fn shard_configs_split_the_load_exactly() {
        let base = ChaosConfig::fleet(9);
        let parts: Vec<ChaosConfig> = (0..4).map(|s| shard_config(&base, 4, s)).collect();
        let sessions: usize = parts.iter().map(|p| p.traffic.sessions).sum();
        assert_eq!(sessions, base.traffic.sessions);
        let crashes: u32 = parts.iter().map(|p| p.scripted_crashes).sum();
        assert_eq!(crashes, base.scripted_crashes);
        let migrations: u32 = parts.iter().map(|p| p.migrations).sum();
        assert_eq!(migrations, base.migrations);
        let seeds: std::collections::BTreeSet<u64> = parts.iter().map(|p| p.seed).collect();
        assert_eq!(seeds.len(), 4, "per-shard seeds must be distinct");
    }

    #[test]
    fn merged_outcome_is_identical_at_any_thread_width() {
        let reference = run_sharded(&tiny(0xC0FFEE, 1));
        assert!(!reference.merged.stalled);
        assert!(reference.merged.audit_ok);
        for threads in [2usize, 4] {
            let out = run_sharded(&tiny(0xC0FFEE, threads));
            assert_eq!(
                out.merged.trace_hash, reference.merged.trace_hash,
                "threads={threads}"
            );
            assert_eq!(out.merged, reference.merged, "threads={threads}");
            assert_eq!(out.per_shard, reference.per_shard, "threads={threads}");
        }
    }

    #[test]
    fn merged_counters_conserve_sessions() {
        let out = run_sharded(&tiny(0x33, 2));
        let m = &out.merged;
        assert_eq!(m.sessions_done + m.sessions_failed, m.sessions);
        assert_eq!(m.sessions, 24);
        assert!(out.simulated_speedup() > 1.0, "4 shards overlap in time");
    }
}
