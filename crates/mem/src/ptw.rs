//! The page-table walker with integrated bitmap checking (Fig. 5).
//!
//! "When a non-enclave memory access misses in TLB, PTW loads its PTE. Then,
//! the translated physical page number is used to retrieve the bitmap. If
//! the bitmap indicates it is not an enclave page, this access can be
//! performed correctly. Otherwise, an access exception is thrown."
//!
//! Enclave-mode accesses walk the EMS-maintained enclave page table and skip
//! the bitmap check (the enclave table is trusted by construction, and the
//! paper notes bitmap checking only affects non-enclave applications).

use crate::addr::VirtAddr;
use crate::bitmap::EnclaveBitmap;
use crate::pagetable::{AccessKind, PageTable};
use crate::phys::PhysMemory;
use crate::tlb::TlbEntry;
use crate::walkcache::WalkCache;
use crate::MemFault;

/// Walker event counters (timing-model input: each walk costs
/// `LatencyBook::ptw_walk`, each bitmap check `bitmap_check_extra`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PtwStats {
    /// Completed walks.
    pub walks: u64,
    /// Bitmap retrievals performed.
    pub bitmap_checks: u64,
    /// Bitmap violations raised.
    pub bitmap_faults: u64,
    /// Page faults raised.
    pub page_faults: u64,
}

/// Walks `pt` for `va` and applies the Fig. 5 bitmap check when
/// `enclave_mode` is false. On success returns a TLB entry ready for
/// insertion, with `checked` set according to the performed check.
///
/// The walk goes through `cache` (the per-core page-walk cache); a hit is
/// functionally and charge-wise identical to a full walk — see
/// [`crate::walkcache`].
///
/// # Errors
///
/// * [`MemFault::PageFault`] — no valid mapping.
/// * [`MemFault::BitmapViolation`] — non-enclave access to an enclave page.
/// * [`MemFault::BusError`] — walk left installed memory.
// The signature mirrors the hardware walker's inputs (table root, request,
// mode bit, bitmap, memory, counters, walk cache); bundling them into a
// struct would just move the argument list.
#[allow(clippy::too_many_arguments)]
pub fn translate(
    pt: &PageTable,
    va: VirtAddr,
    kind: AccessKind,
    enclave_mode: bool,
    bitmap: &EnclaveBitmap,
    mem: &mut PhysMemory,
    stats: &mut PtwStats,
    cache: &mut WalkCache,
) -> Result<TlbEntry, MemFault> {
    let tr = match pt.walk_cached(va, kind == AccessKind::Write, mem, cache) {
        Ok(tr) => tr,
        Err(e @ MemFault::PageFault { .. }) => {
            stats.page_faults += 1;
            return Err(e);
        }
        Err(e) => return Err(e),
    };
    stats.walks += 1;
    if !enclave_mode {
        stats.bitmap_checks += 1;
        if bitmap.is_enclave(tr.ppn, mem)? {
            stats.bitmap_faults += 1;
            return Err(MemFault::BitmapViolation { ppn: tr.ppn.0 });
        }
    }
    Ok(TlbEntry {
        vpn: va.vpn(),
        ppn: tr.ppn,
        perms: tr.perms,
        key: tr.key,
        checked: !enclave_mode,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{KeyId, PhysAddr, Ppn};
    use crate::pagetable::Perms;
    use crate::phys::FrameAllocator;

    fn setup() -> (PhysMemory, FrameAllocator, PageTable, EnclaveBitmap) {
        let mut mem = PhysMemory::new(64 << 20);
        let bitmap = EnclaveBitmap::install(PhysAddr(0x4000), 16384, &mut mem).unwrap();
        let mut alloc = FrameAllocator::new(Ppn(16), Ppn(16000));
        let pt = PageTable::new(&mut alloc, &mut mem);
        (mem, alloc, pt, bitmap)
    }

    #[test]
    fn normal_page_passes_check() {
        let (mut mem, mut alloc, pt, bitmap) = setup();
        let va = VirtAddr(0x7000);
        pt.map(va, Ppn(2000), Perms::RW, KeyId::HOST, &mut alloc, &mut mem)
            .unwrap();
        let mut stats = PtwStats::default();
        let mut cache = WalkCache::new(8);
        let entry = translate(
            &pt,
            va,
            AccessKind::Read,
            false,
            &bitmap,
            &mut mem,
            &mut stats,
            &mut cache,
        )
        .unwrap();
        assert_eq!(entry.ppn, Ppn(2000));
        assert!(entry.checked);
        assert_eq!(stats.bitmap_checks, 1);
        assert_eq!(stats.bitmap_faults, 0);
    }

    #[test]
    fn enclave_page_faults_for_host() {
        // The core isolation property: a host mapping aimed at an enclave
        // frame is stopped by the bitmap check even though the PTE is valid.
        let (mut mem, mut alloc, pt, bitmap) = setup();
        let va = VirtAddr(0x8000);
        pt.map(va, Ppn(3000), Perms::RW, KeyId::HOST, &mut alloc, &mut mem)
            .unwrap();
        bitmap.set(Ppn(3000), true, &mut mem).unwrap();
        let mut stats = PtwStats::default();
        let mut cache = WalkCache::new(8);
        let err = translate(
            &pt,
            va,
            AccessKind::Read,
            false,
            &bitmap,
            &mut mem,
            &mut stats,
            &mut cache,
        )
        .unwrap_err();
        assert_eq!(err, MemFault::BitmapViolation { ppn: 3000 });
        assert_eq!(stats.bitmap_faults, 1);
    }

    #[test]
    fn enclave_mode_skips_check() {
        let (mut mem, mut alloc, pt, bitmap) = setup();
        let va = VirtAddr(0x9000);
        pt.map(va, Ppn(3001), Perms::RW, KeyId(5), &mut alloc, &mut mem)
            .unwrap();
        bitmap.set(Ppn(3001), true, &mut mem).unwrap();
        let mut stats = PtwStats::default();
        let mut cache = WalkCache::new(8);
        let entry = translate(
            &pt,
            va,
            AccessKind::Read,
            true,
            &bitmap,
            &mut mem,
            &mut stats,
            &mut cache,
        )
        .unwrap();
        assert_eq!(entry.key, KeyId(5));
        assert!(!entry.checked);
        assert_eq!(stats.bitmap_checks, 0);
    }

    #[test]
    fn unmapped_counts_page_fault() {
        let (mut mem, _alloc, pt, bitmap) = setup();
        let mut stats = PtwStats::default();
        let mut cache = WalkCache::new(8);
        let err = translate(
            &pt,
            VirtAddr(0x0dea_d000),
            AccessKind::Read,
            false,
            &bitmap,
            &mut mem,
            &mut stats,
            &mut cache,
        )
        .unwrap_err();
        assert!(matches!(err, MemFault::PageFault { .. }));
        assert_eq!(stats.page_faults, 1);
        assert_eq!(stats.walks, 0);
    }

    #[test]
    fn write_walk_sets_dirty() {
        let (mut mem, mut alloc, pt, bitmap) = setup();
        let va = VirtAddr(0xa000);
        pt.map(va, Ppn(2001), Perms::RW, KeyId::HOST, &mut alloc, &mut mem)
            .unwrap();
        let mut stats = PtwStats::default();
        let mut cache = WalkCache::new(8);
        translate(
            &pt,
            va,
            AccessKind::Write,
            false,
            &bitmap,
            &mut mem,
            &mut stats,
            &mut cache,
        )
        .unwrap();
        assert!(pt.inspect(va, &mut mem).unwrap().dirty());
    }
}
