//! Ownership-partitioned physical memory for sharded simulation.
//!
//! A sharded machine (see `hypertee::shard`) gives each shard domain a
//! disjoint slice of the global physical frame space. This module is the
//! *contract* for that split:
//!
//! * [`MemPartition`] — one shard's slice: `[base, base + frames)`.
//! * [`PartitionMap`] — the validated set of slices. Construction rejects
//!   empty or overlapping slices outright, so a machine can never be built
//!   on an ambiguous ownership map (the overlap-rejection regression test
//!   rides on this).
//! * [`PartitionMap::reconcile`] — the audit-visible half: after a barrier,
//!   every frame a shard reports as allocated is checked against the
//!   shard's own slice. A frame outside it is a [`PartitionError::
//!   ForeignFrame`], surfaced through the machine's `ConsistencyAudit`
//!   path rather than silently merged.
//!
//! Frames are named by *global* [`Ppn`]s throughout; a shard's local
//! allocator covers exactly its slice, so local→global translation is just
//! "is it inside my partition".

use crate::addr::Ppn;
use std::fmt;

/// One shard's slice of the global physical frame space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemPartition {
    /// Owning shard (dense, `0..shards`).
    pub shard_id: usize,
    /// First frame of the slice (global PPN).
    pub base: Ppn,
    /// Slice length in frames (must be non-zero).
    pub frames: u64,
}

impl MemPartition {
    /// One-past-the-end frame of the slice.
    #[must_use]
    pub fn end(&self) -> Ppn {
        Ppn(self.base.0 + self.frames)
    }

    /// Whether `ppn` falls inside this slice.
    #[must_use]
    pub fn contains(&self, ppn: Ppn) -> bool {
        ppn >= self.base && ppn < self.end()
    }
}

/// Why a partition map or reconciliation was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionError {
    /// No partitions were supplied.
    Empty,
    /// A partition has zero frames (shard id attached).
    EmptyPartition(usize),
    /// Two partitions overlap (the two shard ids).
    Overlap(usize, usize),
    /// Shard ids are not dense `0..shards` (the offending id).
    BadShardId(usize),
    /// A partition's frame count does not match the shard's machine.
    SizeMismatch {
        /// The shard whose slice is mis-sized.
        shard: usize,
        /// Frames the shard's machine actually manages.
        expected: u64,
        /// Frames the supplied partition covers.
        got: u64,
    },
    /// Reconciliation found shard `shard` holding global frame `ppn`
    /// outside its own slice.
    ForeignFrame {
        /// The shard that reported the frame.
        shard: usize,
        /// The out-of-slice frame.
        ppn: Ppn,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Empty => write!(f, "no memory partitions supplied"),
            PartitionError::EmptyPartition(s) => {
                write!(f, "shard {s} has an empty memory partition")
            }
            PartitionError::Overlap(a, b) => {
                write!(f, "memory partitions of shards {a} and {b} overlap")
            }
            PartitionError::BadShardId(s) => {
                write!(f, "shard ids are not dense 0..n (saw {s})")
            }
            PartitionError::SizeMismatch {
                shard,
                expected,
                got,
            } => write!(
                f,
                "shard {shard} partition covers {got} frames, machine manages {expected}"
            ),
            PartitionError::ForeignFrame { shard, ppn } => write!(
                f,
                "shard {shard} holds frame {:#x} outside its partition",
                ppn.0
            ),
        }
    }
}

/// Outcome of an audit-time reconciliation pass over every shard's
/// allocated-frame report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PartitionReconciliation {
    /// Frames checked across all shards.
    pub frames_checked: u64,
    /// Shards reconciled.
    pub shards: usize,
}

/// A validated, non-overlapping set of shard memory partitions.
#[derive(Debug, Clone)]
pub struct PartitionMap {
    parts: Vec<MemPartition>,
}

impl PartitionMap {
    /// Validates `parts` into a map. Shard ids must be dense `0..n` (in any
    /// order), every slice non-empty, and no two slices may overlap.
    pub fn new(mut parts: Vec<MemPartition>) -> Result<PartitionMap, PartitionError> {
        if parts.is_empty() {
            return Err(PartitionError::Empty);
        }
        let n = parts.len();
        let mut seen = vec![false; n];
        for p in &parts {
            if p.frames == 0 {
                return Err(PartitionError::EmptyPartition(p.shard_id));
            }
            if p.shard_id >= n || seen[p.shard_id] {
                return Err(PartitionError::BadShardId(p.shard_id));
            }
            seen[p.shard_id] = true;
        }
        // Sort by base; any overlap is then between neighbours.
        parts.sort_by_key(|p| p.base);
        for w in parts.windows(2) {
            if w[1].base < w[0].end() {
                return Err(PartitionError::Overlap(w[0].shard_id, w[1].shard_id));
            }
        }
        // Store in shard-id order: the stable merge order of the sharded
        // machine must never depend on where the slices sit in memory.
        parts.sort_by_key(|p| p.shard_id);
        Ok(PartitionMap { parts })
    }

    /// An even split of `[base, base + total_frames)` into `shards` slices
    /// (remainder frames go to the low shards). The canonical layout the
    /// sharded machine boots with.
    pub fn split_even(
        base: Ppn,
        total_frames: u64,
        shards: usize,
    ) -> Result<PartitionMap, PartitionError> {
        if shards == 0 {
            return Err(PartitionError::Empty);
        }
        let n = shards as u64;
        if total_frames < n {
            return Err(PartitionError::EmptyPartition(shards - 1));
        }
        let per = total_frames / n;
        let rem = total_frames % n;
        let mut parts = Vec::with_capacity(shards);
        let mut cursor = base.0;
        for shard_id in 0..shards {
            let frames = per + u64::from((shard_id as u64) < rem);
            parts.push(MemPartition {
                shard_id,
                base: Ppn(cursor),
                frames,
            });
            cursor += frames;
        }
        PartitionMap::new(parts)
    }

    /// The partitions, in stable shard-id order.
    #[must_use]
    pub fn partitions(&self) -> &[MemPartition] {
        &self.parts
    }

    /// Shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.parts.len()
    }

    /// The slice owned by `shard_id`.
    ///
    /// # Panics
    ///
    /// Panics when `shard_id` is out of range (construction guarantees
    /// dense ids, so in-range lookups cannot fail).
    #[must_use]
    pub fn partition(&self, shard_id: usize) -> MemPartition {
        self.parts[shard_id]
    }

    /// Which shard owns global frame `ppn`, if any.
    #[must_use]
    pub fn owner_of(&self, ppn: Ppn) -> Option<usize> {
        self.parts
            .iter()
            .find(|p| p.contains(ppn))
            .map(|p| p.shard_id)
    }

    /// Audit-visible reconciliation: `held[s]` is the list of global frames
    /// shard `s` currently holds allocated. Every frame must fall inside
    /// shard `s`'s own slice; the first violation (in shard-id order, so
    /// the verdict is deterministic) is returned as
    /// [`PartitionError::ForeignFrame`].
    pub fn reconcile(&self, held: &[Vec<Ppn>]) -> Result<PartitionReconciliation, PartitionError> {
        let mut checked = 0u64;
        for (shard, frames) in held.iter().enumerate() {
            let part = self
                .parts
                .get(shard)
                .copied()
                .ok_or(PartitionError::BadShardId(shard))?;
            for &ppn in frames {
                if !part.contains(ppn) {
                    return Err(PartitionError::ForeignFrame { shard, ppn });
                }
                checked += 1;
            }
        }
        Ok(PartitionReconciliation {
            frames_checked: checked,
            shards: held.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(shard_id: usize, base: u64, frames: u64) -> MemPartition {
        MemPartition {
            shard_id,
            base: Ppn(base),
            frames,
        }
    }

    #[test]
    fn split_even_covers_exactly_and_in_order() {
        let map = PartitionMap::split_even(Ppn(64), 1003, 4).unwrap();
        assert_eq!(map.shards(), 4);
        let total: u64 = map.partitions().iter().map(|p| p.frames).sum();
        assert_eq!(total, 1003);
        let mut cursor = 64;
        for (i, p) in map.partitions().iter().enumerate() {
            assert_eq!(p.shard_id, i);
            assert_eq!(p.base.0, cursor);
            cursor = p.end().0;
        }
        assert_eq!(map.owner_of(Ppn(64)), Some(0));
        assert_eq!(map.owner_of(Ppn(64 + 1002)), Some(3));
        assert_eq!(map.owner_of(Ppn(63)), None);
        assert_eq!(map.owner_of(Ppn(64 + 1003)), None);
    }

    #[test]
    fn overlap_is_rejected() {
        let err = PartitionMap::new(vec![part(0, 0, 100), part(1, 99, 100)]).unwrap_err();
        assert_eq!(err, PartitionError::Overlap(0, 1));
        // Adjacent (touching) slices are fine.
        assert!(PartitionMap::new(vec![part(0, 0, 100), part(1, 100, 100)]).is_ok());
    }

    #[test]
    fn degenerate_maps_are_rejected() {
        assert_eq!(
            PartitionMap::new(vec![]).unwrap_err(),
            PartitionError::Empty
        );
        assert_eq!(
            PartitionMap::new(vec![part(0, 0, 0)]).unwrap_err(),
            PartitionError::EmptyPartition(0)
        );
        assert_eq!(
            PartitionMap::new(vec![part(0, 0, 10), part(0, 20, 10)]).unwrap_err(),
            PartitionError::BadShardId(0)
        );
        assert_eq!(
            PartitionMap::new(vec![part(2, 0, 10)]).unwrap_err(),
            PartitionError::BadShardId(2)
        );
        assert_eq!(
            PartitionMap::split_even(Ppn(0), 3, 4).unwrap_err(),
            PartitionError::EmptyPartition(3)
        );
    }

    #[test]
    fn reconcile_accepts_owned_and_flags_foreign() {
        let map = PartitionMap::new(vec![part(0, 0, 100), part(1, 100, 100)]).unwrap();
        let ok = map
            .reconcile(&[vec![Ppn(0), Ppn(99)], vec![Ppn(100), Ppn(199)]])
            .unwrap();
        assert_eq!(ok.frames_checked, 4);
        assert_eq!(ok.shards, 2);
        let err = map.reconcile(&[vec![Ppn(0)], vec![Ppn(99)]]).unwrap_err();
        assert_eq!(
            err,
            PartitionError::ForeignFrame {
                shard: 1,
                ppn: Ppn(99)
            }
        );
    }
}
