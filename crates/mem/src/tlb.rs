//! TLB model with the "checked" bit of Fig. 5.
//!
//! "Once verified, the TLB is updated to indicate that this page has been
//! checked. Subsequent memory accesses hit in the TLB can thus proceed. To
//! prevent circumvention of bitmap checking via stale TLB entries, EMCall
//! flushes related TLB entries while encountering enclave context switches
//! and bitmap changes."

use crate::addr::{KeyId, Ppn, Vpn};
use crate::pagetable::Perms;
use std::collections::VecDeque;

/// One TLB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page.
    pub vpn: Vpn,
    /// Physical page.
    pub ppn: Ppn,
    /// Mapping permissions.
    pub perms: Perms,
    /// KeyID travelling with the translation.
    pub key: KeyId,
    /// Whether the bitmap check has been performed for this entry (Fig. 5).
    pub checked: bool,
}

/// Event counters the timing model prices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Full flushes.
    pub flushes: u64,
    /// Single-entry invalidations.
    pub single_invalidations: u64,
}

/// A finite-capacity TLB with FIFO replacement.
#[derive(Debug)]
pub struct Tlb {
    entries: VecDeque<TlbEntry>,
    capacity: usize,
    /// Counters.
    pub stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with the given entry capacity.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        Tlb {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            stats: TlbStats::default(),
        }
    }

    /// Looks up a virtual page, counting hit/miss.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<TlbEntry> {
        match self.entries.iter().find(|e| e.vpn == vpn) {
            Some(&e) => {
                self.stats.hits += 1;
                Some(e)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts an entry after a walk (evicting FIFO if full). An existing
    /// entry for the same vpn is replaced.
    pub fn insert(&mut self, entry: TlbEntry) {
        self.entries.retain(|e| e.vpn != entry.vpn);
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    /// Flushes the whole TLB (enclave context switch).
    pub fn flush_all(&mut self) {
        self.entries.clear();
        self.stats.flushes += 1;
    }

    /// Invalidates the entry for one virtual page (bitmap change).
    pub fn flush_vpn(&mut self, vpn: Vpn) {
        let before = self.entries.len();
        self.entries.retain(|e| e.vpn != vpn);
        if self.entries.len() != before {
            self.stats.single_invalidations += 1;
        }
    }

    /// Invalidates every entry translating to a physical page (bitmap-bit
    /// change is keyed by frame, not VA).
    pub fn flush_ppn(&mut self, ppn: Ppn) {
        let before = self.entries.len();
        self.entries.retain(|e| e.ppn != ppn);
        if self.entries.len() != before {
            self.stats.single_invalidations += 1;
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the resident entries without disturbing hit/miss stats
    /// (observability for external coherence checkers; [`Tlb::lookup`]
    /// counts every probe as a hit or miss).
    pub fn entries(&self) -> impl Iterator<Item = &TlbEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vpn: u64, ppn: u64) -> TlbEntry {
        TlbEntry {
            vpn: Vpn(vpn),
            ppn: Ppn(ppn),
            perms: Perms::RW,
            key: KeyId::HOST,
            checked: true,
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut tlb = Tlb::new(4);
        assert!(tlb.lookup(Vpn(1)).is_none());
        tlb.insert(entry(1, 100));
        let e = tlb.lookup(Vpn(1)).unwrap();
        assert_eq!(e.ppn, Ppn(100));
        assert_eq!(tlb.stats.hits, 1);
        assert_eq!(tlb.stats.misses, 1);
    }

    #[test]
    fn fifo_eviction() {
        let mut tlb = Tlb::new(2);
        tlb.insert(entry(1, 1));
        tlb.insert(entry(2, 2));
        tlb.insert(entry(3, 3));
        assert!(tlb.lookup(Vpn(1)).is_none(), "oldest entry evicted");
        assert!(tlb.lookup(Vpn(2)).is_some());
        assert!(tlb.lookup(Vpn(3)).is_some());
    }

    #[test]
    fn reinsert_replaces() {
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(1, 100));
        tlb.insert(entry(1, 200));
        assert_eq!(tlb.len(), 1);
        assert_eq!(tlb.lookup(Vpn(1)).unwrap().ppn, Ppn(200));
    }

    #[test]
    fn flush_all_counts() {
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(1, 1));
        tlb.insert(entry(2, 2));
        tlb.flush_all();
        assert!(tlb.is_empty());
        assert_eq!(tlb.stats.flushes, 1);
        assert!(tlb.lookup(Vpn(1)).is_none());
    }

    #[test]
    fn selective_flush_by_ppn() {
        // Bitmap changes are per physical frame; all aliases must go.
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(1, 50));
        tlb.insert(entry(2, 50));
        tlb.insert(entry(3, 60));
        tlb.flush_ppn(Ppn(50));
        assert!(tlb.lookup(Vpn(1)).is_none());
        assert!(tlb.lookup(Vpn(2)).is_none());
        assert!(tlb.lookup(Vpn(3)).is_some());
    }

    #[test]
    fn flush_vpn_only_target() {
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(1, 1));
        tlb.insert(entry(2, 2));
        tlb.flush_vpn(Vpn(1));
        assert!(tlb.lookup(Vpn(1)).is_none());
        assert!(tlb.lookup(Vpn(2)).is_some());
        assert_eq!(tlb.stats.single_invalidations, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        Tlb::new(0);
    }
}
