//! A small page-walk cache: intermediate-level PTE cache for the PTW.
//!
//! Real walkers cache the upper levels of the radix walk so repeated
//! translations in the same region only read the leaf level. This models
//! that structure for the functional path: the cache maps
//! `(page-table root, VPN[2..1])` to the physical frame of the *leaf* page
//! table, skipping the two intermediate PTE reads on a hit.
//!
//! Security discipline mirrors the TLB's (the stale-TLB argument of §IV-B
//! applies unchanged): the cache is flushed on every address-space switch
//! and whenever enclave memory is torn down (EFREE/EDESTROY), because a
//! freed page-table frame may be reused for data and a stale intermediate
//! pointer would then treat attacker bytes as PTEs.
//!
//! Charge invariance: a hit changes *host* wall-clock only. The walk still
//! reports `levels_touched = 3` and the raw physical-access counter is kept
//! on the uncached trajectory, so the timing model prices cached and
//! uncached walks identically.

use crate::addr::Ppn;

/// Hit/miss counters (observability only — not a timing-model input).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalkCacheStats {
    /// Lookups that found a cached leaf-table pointer.
    pub hits: u64,
    /// Lookups that fell through to a full walk.
    pub misses: u64,
    /// Explicit flushes (context switches + enclave teardown).
    pub flushes: u64,
}

/// One cached upper-level walk: root frame + upper 18 VPN bits → leaf-table
/// frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WalkCacheEntry {
    root: Ppn,
    /// `vpn >> 9`: the two upper Sv39 indices, which select the leaf table.
    region: u64,
    leaf_table: Ppn,
}

/// FIFO walk cache, deliberately small like its silicon counterpart.
#[derive(Debug)]
pub struct WalkCache {
    entries: Vec<WalkCacheEntry>,
    capacity: usize,
    next_victim: usize,
    /// Counters.
    pub stats: WalkCacheStats,
    /// Bench instrumentation: when set, every lookup misses and nothing is
    /// inserted, restoring the pre-walk-cache trajectory (all three levels
    /// read on every walk) so `bench_report` can measure the cache's real
    /// wall-clock contribution instead of comparing two warm paths.
    pub bypass: bool,
}

impl WalkCache {
    /// Creates a cache with room for `capacity` leaf-table pointers.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "walk cache needs at least one entry");
        WalkCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            next_victim: 0,
            stats: WalkCacheStats::default(),
            bypass: false,
        }
    }

    /// Looks up the leaf-table frame for `(root, vpn >> 9)`, counting the
    /// hit or miss.
    pub fn lookup(&mut self, root: Ppn, region: u64) -> Option<Ppn> {
        if self.bypass {
            self.stats.misses += 1;
            return None;
        }
        match self
            .entries
            .iter()
            .find(|e| e.root == root && e.region == region)
        {
            Some(e) => {
                self.stats.hits += 1;
                Some(e.leaf_table)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records the leaf-table frame discovered by a full walk, evicting
    /// FIFO when full.
    pub fn insert(&mut self, root: Ppn, region: u64, leaf_table: Ppn) {
        if self.bypass {
            return;
        }
        let entry = WalkCacheEntry {
            root,
            region,
            leaf_table,
        };
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.root == root && e.region == region)
        {
            *existing = entry;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            self.entries[self.next_victim] = entry;
            self.next_victim = (self.next_victim + 1) % self.capacity;
        }
    }

    /// Drops every cached pointer (context switch / enclave teardown).
    pub fn flush_all(&mut self) {
        self.entries.clear();
        self.next_victim = 0;
        self.stats.flushes += 1;
    }

    /// Number of live entries (tests/observability).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut wc = WalkCache::new(4);
        assert_eq!(wc.lookup(Ppn(1), 7), None);
        wc.insert(Ppn(1), 7, Ppn(42));
        assert_eq!(wc.lookup(Ppn(1), 7), Some(Ppn(42)));
        assert_eq!(wc.stats.hits, 1);
        assert_eq!(wc.stats.misses, 1);
    }

    #[test]
    fn keyed_by_root_and_region() {
        let mut wc = WalkCache::new(4);
        wc.insert(Ppn(1), 7, Ppn(42));
        assert_eq!(wc.lookup(Ppn(2), 7), None, "different root must miss");
        assert_eq!(wc.lookup(Ppn(1), 8), None, "different region must miss");
    }

    #[test]
    fn fifo_eviction() {
        let mut wc = WalkCache::new(2);
        wc.insert(Ppn(1), 0, Ppn(10));
        wc.insert(Ppn(1), 1, Ppn(11));
        wc.insert(Ppn(1), 2, Ppn(12)); // evicts region 0
        assert_eq!(wc.lookup(Ppn(1), 0), None);
        assert_eq!(wc.lookup(Ppn(1), 1), Some(Ppn(11)));
        assert_eq!(wc.lookup(Ppn(1), 2), Some(Ppn(12)));
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut wc = WalkCache::new(2);
        wc.insert(Ppn(1), 0, Ppn(10));
        wc.insert(Ppn(1), 0, Ppn(20));
        assert_eq!(wc.len(), 1);
        assert_eq!(wc.lookup(Ppn(1), 0), Some(Ppn(20)));
    }

    #[test]
    fn flush_empties_and_counts() {
        let mut wc = WalkCache::new(4);
        wc.insert(Ppn(1), 0, Ppn(10));
        wc.flush_all();
        assert!(wc.is_empty());
        assert_eq!(wc.stats.flushes, 1);
        assert_eq!(wc.lookup(Ppn(1), 0), None);
    }
}
