//! The memory-system façade: TLB → PTW (+bitmap) → encryption engine.
//!
//! [`MemorySystem`] owns the SoC-global pieces (physical memory, MKTME
//! engine, bitmap); each core owns a [`CoreMmu`] (its TLB, page-table base
//! register, and IS_ENCLAVE mode bit — the two registers of Fig. 5 that only
//! the highest privilege level may update, which the EMCall layer enforces).

use crate::addr::{PhysAddr, VirtAddr};
use crate::bitmap::EnclaveBitmap;
use crate::mktme::MktmeEngine;
use crate::pagetable::{AccessKind, PageTable};
use crate::phys::PhysMemory;
use crate::ptw::{self, PtwStats};
use crate::tlb::Tlb;
use crate::walkcache::WalkCache;
use crate::MemFault;

/// SoC-global memory state.
#[derive(Debug)]
pub struct MemorySystem {
    /// Raw physical memory (below the encryption engine).
    pub phys: PhysMemory,
    /// Multi-key encryption + integrity engine.
    pub engine: MktmeEngine,
    /// The enclave-memory bitmap.
    pub bitmap: EnclaveBitmap,
    /// Walker counters.
    pub ptw_stats: PtwStats,
}

impl MemorySystem {
    /// Creates a memory system with `bytes` installed and a bitmap at
    /// `bm_base` covering all of it. Integrity protection is always on, as
    /// in the paper's prototype.
    ///
    /// # Panics
    ///
    /// Panics if the bitmap cannot be installed.
    pub fn new(bytes: u64, bm_base: PhysAddr) -> Self {
        let mut phys = PhysMemory::new(bytes);
        let frames = phys.total_frames();
        let bitmap = EnclaveBitmap::install(bm_base, frames, &mut phys)
            .expect("bitmap region must fit in installed memory");
        MemorySystem {
            phys,
            engine: MktmeEngine::new(true),
            bitmap,
            ptw_stats: PtwStats::default(),
        }
    }
}

/// Entries in each core's page-walk cache (small, like silicon walkers).
pub const WALK_CACHE_ENTRIES: usize = 8;

/// Per-core MMU state.
#[derive(Debug)]
pub struct CoreMmu {
    /// The TLB.
    pub tlb: Tlb,
    /// The page-walk cache (intermediate-level PTE cache).
    pub walk_cache: WalkCache,
    /// Current page-table root (satp); `None` means bare/physical mode.
    pub table: Option<PageTable>,
    /// IS_ENCLAVE register: whether the core currently runs an enclave.
    pub enclave_mode: bool,
    /// Bench instrumentation: route loads and stores through the MKTME
    /// engine's byte-for-byte reference data plane
    /// ([`crate::mktme::MktmeEngine::read_ref`]/`write_ref`) instead of the
    /// optimized kernels. Bit-identical data either way; `bench_report`
    /// flips this to price the optimized data path against its spec
    /// baseline.
    pub data_path_ref: bool,
    /// Monotone counter bumped on every translation flush (address-space
    /// switch, EALLOC/EFREE/shm attach-detach) and on mapping teardown
    /// ([`CoreMmu::note_mapping_teardown`], the EDESTROY site). Consumers
    /// that cache anything derived from this core's translations — e.g. the
    /// decoded-instruction cache keyed by physical line — compare their
    /// epoch against this and drop everything on mismatch, inheriting the
    /// TLB/walk-cache flush discipline without new flush call sites.
    pub flush_epoch: u64,
}

impl CoreMmu {
    /// Creates a core MMU with a TLB of `tlb_entries`.
    pub fn new(tlb_entries: usize) -> Self {
        CoreMmu {
            tlb: Tlb::new(tlb_entries),
            walk_cache: WalkCache::new(WALK_CACHE_ENTRIES),
            table: None,
            enclave_mode: false,
            data_path_ref: false,
            flush_epoch: 0,
        }
    }

    /// Switches the address space (satp write) — flushes the TLB and the
    /// walk cache, as EMCall does on every enclave context switch (§IV-B).
    pub fn switch_table(&mut self, table: Option<PageTable>, enclave_mode: bool) {
        self.table = table;
        self.enclave_mode = enclave_mode;
        self.flush_translations();
    }

    /// Drops all cached translation state — TLB entries *and* walk-cache
    /// pointers. Mapping teardown (EFREE/EDESTROY, shm detach) must call
    /// this rather than flushing the TLB alone: a freed page-table frame
    /// can be reused for data, and a stale walk-cache pointer would then
    /// interpret attacker-controlled bytes as PTEs.
    pub fn flush_translations(&mut self) {
        self.tlb.flush_all();
        self.walk_cache.flush_all();
        self.flush_epoch += 1;
    }

    /// Mapping teardown that deliberately leaves the TLB alone: EDESTROY
    /// tears down an address space no hart has entered (the last exit
    /// already switched tables and flushed), so only the walk-cache
    /// pointers — which could interpret reused page-table frames as PTEs —
    /// must go. The flush epoch still advances so epoch-synced derived
    /// caches (decoded instructions) drop their lines too.
    pub fn note_mapping_teardown(&mut self) {
        self.walk_cache.flush_all();
        self.flush_epoch += 1;
    }

    fn translate(
        &mut self,
        sys: &mut MemorySystem,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<crate::tlb::TlbEntry, MemFault> {
        let table = self.table.ok_or(MemFault::PageFault { va: va.0 })?;
        if let Some(entry) = self.tlb.lookup(va.vpn()) {
            if !entry.perms.allows(kind) {
                return Err(MemFault::PermissionDenied { va: va.0 });
            }
            return Ok(entry);
        }
        let entry = ptw::translate(
            &table,
            va,
            kind,
            self.enclave_mode,
            &sys.bitmap,
            &mut sys.phys,
            &mut sys.ptw_stats,
            &mut self.walk_cache,
        )?;
        if !entry.perms.allows(kind) {
            return Err(MemFault::PermissionDenied { va: va.0 });
        }
        self.tlb.insert(entry);
        Ok(entry)
    }

    /// Loads `buf.len()` bytes from virtual address `va`.
    ///
    /// The access may not cross a page boundary (split it at a higher layer,
    /// as real ISAs require for translated accesses).
    ///
    /// # Errors
    ///
    /// Translation faults ([`MemFault::PageFault`],
    /// [`MemFault::BitmapViolation`], [`MemFault::PermissionDenied`]) and
    /// data-path faults ([`MemFault::IntegrityViolation`],
    /// [`MemFault::BusError`]).
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a page boundary.
    pub fn load(
        &mut self,
        sys: &mut MemorySystem,
        va: VirtAddr,
        buf: &mut [u8],
    ) -> Result<(), MemFault> {
        assert_page_bounded(va, buf.len());
        let entry = self.translate(sys, va, AccessKind::Read)?;
        let pa = PhysAddr(entry.ppn.base().0 + va.offset());
        if self.data_path_ref {
            return sys.engine.read_ref(&mut sys.phys, pa, entry.key, buf);
        }
        sys.engine.read(&mut sys.phys, pa, entry.key, buf)
    }

    /// Stores `buf` to virtual address `va`.
    ///
    /// # Errors
    ///
    /// Same as [`CoreMmu::load`].
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a page boundary.
    pub fn store(
        &mut self,
        sys: &mut MemorySystem,
        va: VirtAddr,
        buf: &[u8],
    ) -> Result<(), MemFault> {
        self.store_traced(sys, va, buf).map(|_| ())
    }

    /// [`CoreMmu::store`] that also reports the physical address written —
    /// the hook store-side invalidation needs: a store into a line whose
    /// decoded form is cached must drop that line, and the cache is keyed
    /// physically.
    ///
    /// # Errors
    ///
    /// Same as [`CoreMmu::load`].
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a page boundary.
    pub fn store_traced(
        &mut self,
        sys: &mut MemorySystem,
        va: VirtAddr,
        buf: &[u8],
    ) -> Result<PhysAddr, MemFault> {
        assert_page_bounded(va, buf.len());
        let entry = self.translate(sys, va, AccessKind::Write)?;
        let pa = PhysAddr(entry.ppn.base().0 + va.offset());
        if self.data_path_ref {
            sys.engine.write_ref(&mut sys.phys, pa, entry.key, buf)?;
        } else {
            sys.engine.write(&mut sys.phys, pa, entry.key, buf)?;
        }
        Ok(pa)
    }

    /// Translates `va` for an instruction fetch and returns the physical
    /// address, without touching data. Fetches check [`AccessKind::Read`],
    /// exactly like the 4-byte fetch load in the seed interpreter, so the
    /// fault surface (page fault, bitmap violation, permission denial, and
    /// the reported faulting VA) is identical.
    ///
    /// # Errors
    ///
    /// Translation faults, as for [`CoreMmu::load`].
    pub fn translate_fetch(
        &mut self,
        sys: &mut MemorySystem,
        va: VirtAddr,
    ) -> Result<PhysAddr, MemFault> {
        let entry = self.translate(sys, va, AccessKind::Read)?;
        Ok(PhysAddr(entry.ppn.base().0 + va.offset()))
    }

    /// Loads a little-endian u64.
    ///
    /// # Errors
    ///
    /// Same as [`CoreMmu::load`].
    pub fn load_u64(&mut self, sys: &mut MemorySystem, va: VirtAddr) -> Result<u64, MemFault> {
        let mut b = [0u8; 8];
        self.load(sys, va, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Stores a little-endian u64.
    ///
    /// # Errors
    ///
    /// Same as [`CoreMmu::store`].
    pub fn store_u64(
        &mut self,
        sys: &mut MemorySystem,
        va: VirtAddr,
        v: u64,
    ) -> Result<(), MemFault> {
        self.store(sys, va, &v.to_le_bytes())
    }
}

fn assert_page_bounded(va: VirtAddr, len: usize) {
    let end = va.offset() + len as u64;
    assert!(
        end <= crate::addr::PAGE_SIZE,
        "access at {va:?} + {len} crosses a page boundary; split it"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{KeyId, Ppn};
    use crate::pagetable::Perms;
    use crate::phys::FrameAllocator;

    fn setup() -> (MemorySystem, FrameAllocator, CoreMmu, PageTable) {
        let mut sys = MemorySystem::new(64 << 20, PhysAddr(0x4000));
        let mut alloc = FrameAllocator::new(Ppn(64), Ppn(16000));
        let pt = PageTable::new(&mut alloc, &mut sys.phys);
        let mut mmu = CoreMmu::new(32);
        mmu.switch_table(Some(pt), false);
        (sys, alloc, mmu, pt)
    }

    #[test]
    fn load_store_through_translation() {
        let (mut sys, mut alloc, mut mmu, pt) = setup();
        let frame = alloc.alloc().unwrap();
        pt.map(
            VirtAddr(0x40_000),
            frame,
            Perms::RW,
            KeyId::HOST,
            &mut alloc,
            &mut sys.phys,
        )
        .unwrap();
        mmu.store(&mut sys, VirtAddr(0x40_010), b"data").unwrap();
        let mut buf = [0u8; 4];
        mmu.load(&mut sys, VirtAddr(0x40_010), &mut buf).unwrap();
        assert_eq!(&buf, b"data");
    }

    #[test]
    fn tlb_caches_translation() {
        let (mut sys, mut alloc, mut mmu, pt) = setup();
        let frame = alloc.alloc().unwrap();
        pt.map(
            VirtAddr(0x40_000),
            frame,
            Perms::RW,
            KeyId::HOST,
            &mut alloc,
            &mut sys.phys,
        )
        .unwrap();
        mmu.store_u64(&mut sys, VirtAddr(0x40_000), 1).unwrap();
        let walks_after_first = sys.ptw_stats.walks;
        mmu.load_u64(&mut sys, VirtAddr(0x40_000)).unwrap();
        mmu.load_u64(&mut sys, VirtAddr(0x40_100)).unwrap();
        assert_eq!(
            sys.ptw_stats.walks, walks_after_first,
            "TLB hits avoid walks"
        );
        assert!(mmu.tlb.stats.hits >= 2);
    }

    #[test]
    fn write_to_readonly_denied() {
        let (mut sys, mut alloc, mut mmu, pt) = setup();
        let frame = alloc.alloc().unwrap();
        pt.map(
            VirtAddr(0x50_000),
            frame,
            Perms::RO,
            KeyId::HOST,
            &mut alloc,
            &mut sys.phys,
        )
        .unwrap();
        assert!(matches!(
            mmu.store(&mut sys, VirtAddr(0x50_000), &[1]),
            Err(MemFault::PermissionDenied { .. })
        ));
        // Read still works.
        let mut b = [0u8; 1];
        mmu.load(&mut sys, VirtAddr(0x50_000), &mut b).unwrap();
    }

    #[test]
    fn host_cannot_touch_enclave_frame() {
        let (mut sys, mut alloc, mut mmu, pt) = setup();
        let frame = alloc.alloc().unwrap();
        sys.bitmap.set(frame, true, &mut sys.phys).unwrap();
        pt.map(
            VirtAddr(0x60_000),
            frame,
            Perms::RW,
            KeyId::HOST,
            &mut alloc,
            &mut sys.phys,
        )
        .unwrap();
        let mut b = [0u8; 1];
        assert!(matches!(
            mmu.load(&mut sys, VirtAddr(0x60_000), &mut b),
            Err(MemFault::BitmapViolation { .. })
        ));
    }

    #[test]
    fn stale_tlb_cannot_bypass_bitmap_after_flush() {
        // Map + access a normal frame, then mark it enclave and flush the
        // TLB (as EMCall does on bitmap changes): the next access must fault.
        let (mut sys, mut alloc, mut mmu, pt) = setup();
        let frame = alloc.alloc().unwrap();
        pt.map(
            VirtAddr(0x70_000),
            frame,
            Perms::RW,
            KeyId::HOST,
            &mut alloc,
            &mut sys.phys,
        )
        .unwrap();
        let mut b = [0u8; 1];
        mmu.load(&mut sys, VirtAddr(0x70_000), &mut b).unwrap();
        sys.bitmap.set(frame, true, &mut sys.phys).unwrap();
        // Without a flush the stale entry would still hit — the exact attack
        // the paper closes by flushing on bitmap changes.
        mmu.tlb.flush_ppn(frame);
        assert!(matches!(
            mmu.load(&mut sys, VirtAddr(0x70_000), &mut b),
            Err(MemFault::BitmapViolation { .. })
        ));
    }

    #[test]
    fn enclave_mode_reads_encrypted_data() {
        let (mut sys, mut alloc, mut mmu, pt) = setup();
        sys.engine.program_key(KeyId(3), &[1; 16], &[2; 32]);
        let frame = alloc.alloc().unwrap();
        sys.bitmap.set(frame, true, &mut sys.phys).unwrap();
        pt.map(
            VirtAddr(0x80_000),
            frame,
            Perms::RW,
            KeyId(3),
            &mut alloc,
            &mut sys.phys,
        )
        .unwrap();
        mmu.switch_table(Some(pt), true);
        mmu.store(&mut sys, VirtAddr(0x80_000), b"secret!!")
            .unwrap();
        let mut b = [0u8; 8];
        mmu.load(&mut sys, VirtAddr(0x80_000), &mut b).unwrap();
        assert_eq!(&b, b"secret!!");
        // Underlying physical bytes are ciphertext.
        let mut raw = [0u8; 8];
        sys.phys.read(frame.base(), &mut raw).unwrap();
        assert_ne!(&raw, b"secret!!");
    }

    #[test]
    fn bare_mode_faults() {
        let (mut sys, _alloc, mut mmu, _pt) = setup();
        mmu.switch_table(None, false);
        let mut b = [0u8; 1];
        assert!(matches!(
            mmu.load(&mut sys, VirtAddr(0x1000), &mut b),
            Err(MemFault::PageFault { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "crosses a page boundary")]
    fn page_crossing_panics() {
        let (mut sys, _alloc, mut mmu, _pt) = setup();
        let mut b = [0u8; 16];
        let _ = mmu.load(&mut sys, VirtAddr(0xff8), &mut b);
    }

    #[test]
    fn store_traced_reports_physical_address() {
        let (mut sys, mut alloc, mut mmu, pt) = setup();
        let frame = alloc.alloc().unwrap();
        pt.map(
            VirtAddr(0x40_000),
            frame,
            Perms::RW,
            KeyId::HOST,
            &mut alloc,
            &mut sys.phys,
        )
        .unwrap();
        let pa = mmu
            .store_traced(&mut sys, VirtAddr(0x40_120), b"traced")
            .unwrap();
        assert_eq!(pa, PhysAddr(frame.base().0 + 0x120));
        // translate_fetch agrees with the data path on the same mapping.
        let fetch_pa = mmu.translate_fetch(&mut sys, VirtAddr(0x40_120)).unwrap();
        assert_eq!(fetch_pa, pa);
    }

    #[test]
    fn flush_epoch_advances_on_every_teardown_path() {
        let (mut sys, mut alloc, mut mmu, pt) = setup();
        let e0 = mmu.flush_epoch;
        mmu.flush_translations();
        assert_eq!(mmu.flush_epoch, e0 + 1);
        mmu.switch_table(Some(pt), false);
        assert_eq!(mmu.flush_epoch, e0 + 2);
        // Teardown flushes the walk cache (and bumps the epoch) but leaves
        // TLB entries alone — the EDESTROY discipline.
        let frame = alloc.alloc().unwrap();
        pt.map(
            VirtAddr(0x40_000),
            frame,
            Perms::RW,
            KeyId::HOST,
            &mut alloc,
            &mut sys.phys,
        )
        .unwrap();
        mmu.store_u64(&mut sys, VirtAddr(0x40_000), 7).unwrap();
        let tlb_flushes = mmu.tlb.stats.flushes;
        let wc_flushes = mmu.walk_cache.stats.flushes;
        mmu.note_mapping_teardown();
        assert_eq!(mmu.flush_epoch, e0 + 3);
        assert_eq!(mmu.tlb.stats.flushes, tlb_flushes, "TLB untouched");
        assert_eq!(mmu.walk_cache.stats.flushes, wc_flushes + 1);
    }
}
