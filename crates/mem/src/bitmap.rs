//! The enclave-memory bitmap (§IV-B, Fig. 5).
//!
//! "HyperTEE adopts a bitmap to record the state of every memory page, with
//! each bit indicating whether a page belongs to enclave memory. The memory
//! region of bitmap itself is marked as enclave memory for security."
//!
//! The bitmap lives at `BM_BASE` inside simulated physical memory, exactly
//! where the hardware checking logic of Fig. 5 would fetch it from, so the
//! PTW really issues an extra physical access per check.

use crate::addr::{PhysAddr, Ppn, PAGE_SIZE};
use crate::phys::PhysMemory;
use crate::MemFault;

/// The enclave bitmap and its in-memory region.
#[derive(Debug, Clone, Copy)]
pub struct EnclaveBitmap {
    /// Physical base address of the bitmap region (the BM_BASE register).
    pub bm_base: PhysAddr,
    /// Number of page frames the bitmap covers.
    pub covered_frames: u64,
}

impl EnclaveBitmap {
    /// Creates a bitmap at `bm_base` covering `covered_frames` frames and
    /// marks the bitmap's own pages as enclave memory (self-protection).
    ///
    /// # Errors
    ///
    /// Propagates bus errors when the region does not fit in memory.
    pub fn install(
        bm_base: PhysAddr,
        covered_frames: u64,
        mem: &mut PhysMemory,
    ) -> Result<EnclaveBitmap, MemFault> {
        assert_eq!(bm_base.offset(), 0, "BM_BASE must be page aligned");
        let bm = EnclaveBitmap {
            bm_base,
            covered_frames,
        };
        // Zero the whole region first.
        let bytes = bm.region_bytes();
        for off in (0..bytes).step_by(PAGE_SIZE as usize) {
            mem.zero_frame(PhysAddr(bm_base.0 + off).ppn())?;
        }
        // Self-protect: every frame of the bitmap region is enclave memory.
        for off in (0..bytes).step_by(PAGE_SIZE as usize) {
            bm.set(PhysAddr(bm_base.0 + off).ppn(), true, mem)?;
        }
        Ok(bm)
    }

    /// Whether `ppn` backs the bitmap region itself (these frames are
    /// enclave-marked by `install`'s self-protection, not by the pool).
    pub fn is_self_frame(&self, ppn: Ppn) -> bool {
        let base = self.bm_base.ppn().0;
        let frames = self.region_bytes() / PAGE_SIZE;
        ppn.0 >= base && ppn.0 < base + frames
    }

    /// Size of the bitmap region in bytes, rounded up to whole pages.
    pub fn region_bytes(&self) -> u64 {
        let bits = self.covered_frames;
        let bytes = bits.div_ceil(8);
        bytes.div_ceil(PAGE_SIZE) * PAGE_SIZE
    }

    fn bit_location(&self, ppn: Ppn) -> (PhysAddr, u8) {
        let byte = ppn.0 / 8;
        let bit = (ppn.0 % 8) as u8;
        (PhysAddr(self.bm_base.0 + byte), bit)
    }

    /// Marks (or unmarks) a frame as enclave memory.
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] if the frame is outside the covered range.
    pub fn set(&self, ppn: Ppn, enclave: bool, mem: &mut PhysMemory) -> Result<(), MemFault> {
        if ppn.0 >= self.covered_frames {
            return Err(MemFault::BusError { pa: ppn.base().0 });
        }
        let (addr, bit) = self.bit_location(ppn);
        let mut byte = [0u8];
        mem.read(addr, &mut byte)?;
        if enclave {
            byte[0] |= 1 << bit;
        } else {
            byte[0] &= !(1 << bit);
        }
        mem.write(addr, &byte)
    }

    /// Tests whether a frame is enclave memory (the Fig. 5 retrieval).
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] if the frame is outside the covered range.
    pub fn is_enclave(&self, ppn: Ppn, mem: &mut PhysMemory) -> Result<bool, MemFault> {
        if ppn.0 >= self.covered_frames {
            return Err(MemFault::BusError { pa: ppn.base().0 });
        }
        let (addr, bit) = self.bit_location(ppn);
        let mut byte = [0u8];
        mem.read(addr, &mut byte)?;
        Ok(byte[0] & (1 << bit) != 0)
    }

    /// Number of frames currently marked as enclave memory.
    ///
    /// # Errors
    ///
    /// Propagates bus errors.
    pub fn count_enclave(&self, mem: &mut PhysMemory) -> Result<u64, MemFault> {
        let mut count = 0u64;
        for ppn in 0..self.covered_frames {
            if self.is_enclave(Ppn(ppn), mem)? {
                count += 1;
            }
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMemory, EnclaveBitmap) {
        let mut mem = PhysMemory::new(16 << 20);
        let bm = EnclaveBitmap::install(PhysAddr(0x10_000), 4096, &mut mem).unwrap();
        (mem, bm)
    }

    #[test]
    fn set_and_test() {
        let (mut mem, bm) = setup();
        assert!(!bm.is_enclave(Ppn(100), &mut mem).unwrap());
        bm.set(Ppn(100), true, &mut mem).unwrap();
        assert!(bm.is_enclave(Ppn(100), &mut mem).unwrap());
        bm.set(Ppn(100), false, &mut mem).unwrap();
        assert!(!bm.is_enclave(Ppn(100), &mut mem).unwrap());
    }

    #[test]
    fn bitmap_protects_itself() {
        let (mut mem, bm) = setup();
        // The bitmap's own frames must read as enclave memory.
        let own = bm.bm_base.ppn();
        assert!(bm.is_enclave(own, &mut mem).unwrap());
    }

    #[test]
    fn neighbouring_bits_independent() {
        let (mut mem, bm) = setup();
        bm.set(Ppn(8), true, &mut mem).unwrap();
        assert!(!bm.is_enclave(Ppn(7), &mut mem).unwrap());
        assert!(!bm.is_enclave(Ppn(9), &mut mem).unwrap());
        assert!(bm.is_enclave(Ppn(8), &mut mem).unwrap());
    }

    #[test]
    fn out_of_range_frame_rejected() {
        let (mut mem, bm) = setup();
        assert!(bm.is_enclave(Ppn(4096), &mut mem).is_err());
        assert!(bm.set(Ppn(9999), true, &mut mem).is_err());
    }

    #[test]
    fn count_tracks_sets() {
        let (mut mem, bm) = setup();
        let base = bm.count_enclave(&mut mem).unwrap();
        for p in 200..210 {
            bm.set(Ppn(p), true, &mut mem).unwrap();
        }
        assert_eq!(bm.count_enclave(&mut mem).unwrap(), base + 10);
    }

    #[test]
    fn region_size_rounds_to_pages() {
        let bm = EnclaveBitmap {
            bm_base: PhysAddr(0),
            covered_frames: 1,
        };
        assert_eq!(bm.region_bytes(), PAGE_SIZE);
        let bm2 = EnclaveBitmap {
            bm_base: PhysAddr(0),
            covered_frames: PAGE_SIZE * 8 + 1,
        };
        assert_eq!(bm2.region_bytes(), 2 * PAGE_SIZE);
    }
}
