//! Address types and the front-side bus layout.
//!
//! §IV-C: "the width of CS core front-side memory bus is 56 bits, among which
//! the lowest 40 bits are used for the physical address, and the highest 16
//! bits are used for the KeyID."

/// Page size in bytes (RISC-V Sv39 base pages).
pub const PAGE_SIZE: u64 = 4096;

/// Bits in a page offset.
pub const PAGE_SHIFT: u32 = 12;

/// Width of the physical-address portion of the bus.
pub const PA_BITS: u32 = 40;

/// Width of the KeyID portion of the bus.
pub const KEYID_BITS: u32 = 16;

/// A physical byte address (must fit in [`PA_BITS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

/// A virtual byte address (Sv39: 39 significant bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

/// A physical page (frame) number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ppn(pub u64);

/// A virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

/// A memory-encryption key identifier carried in the high bus bits.
/// KeyID 0 means "no encryption" (ordinary host memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KeyId(pub u16);

impl KeyId {
    /// The host (unencrypted) KeyID.
    pub const HOST: KeyId = KeyId(0);

    /// Whether this KeyID selects an encryption key.
    pub fn is_encrypted(&self) -> bool {
        self.0 != 0
    }
}

impl PhysAddr {
    /// The page containing this address.
    pub fn ppn(&self) -> Ppn {
        Ppn(self.0 >> PAGE_SHIFT)
    }

    /// Offset within the page.
    pub fn offset(&self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Packs this address and a KeyID into the 56-bit bus representation.
    ///
    /// # Panics
    ///
    /// Panics if the address exceeds 40 bits.
    pub fn to_bus(&self, key: KeyId) -> u64 {
        assert!(self.0 < (1 << PA_BITS), "physical address exceeds 40 bits");
        ((key.0 as u64) << PA_BITS) | self.0
    }

    /// Unpacks a 56-bit bus word into address + KeyID.
    pub fn from_bus(bus: u64) -> (PhysAddr, KeyId) {
        let pa = bus & ((1 << PA_BITS) - 1);
        let key = (bus >> PA_BITS) as u16;
        (PhysAddr(pa), KeyId(key))
    }
}

impl VirtAddr {
    /// The virtual page containing this address.
    pub fn vpn(&self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Offset within the page.
    pub fn offset(&self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Sv39 page-table indices (level 2, 1, 0), 9 bits each.
    pub fn sv39_indices(&self) -> [usize; 3] {
        let vpn = self.0 >> PAGE_SHIFT;
        [
            ((vpn >> 18) & 0x1ff) as usize,
            ((vpn >> 9) & 0x1ff) as usize,
            (vpn & 0x1ff) as usize,
        ]
    }
}

impl Ppn {
    /// Base physical address of this frame.
    pub fn base(&self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }
}

impl Vpn {
    /// Base virtual address of this page.
    pub fn base(&self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_roundtrip() {
        let pa = PhysAddr(0x12_3456_7000);
        let key = KeyId(0xbeef);
        let bus = pa.to_bus(key);
        assert_eq!(PhysAddr::from_bus(bus), (pa, key));
    }

    #[test]
    fn bus_layout_is_40_16() {
        let pa = PhysAddr(0xff_ffff_ffff); // max 40-bit value
        let bus = pa.to_bus(KeyId(1));
        assert_eq!(bus >> PA_BITS, 1);
        assert_eq!(bus & ((1 << PA_BITS) - 1), 0xff_ffff_ffff);
    }

    #[test]
    #[should_panic(expected = "exceeds 40 bits")]
    fn oversized_pa_panics() {
        PhysAddr(1 << PA_BITS).to_bus(KeyId::HOST);
    }

    #[test]
    fn sv39_indices_decompose() {
        // vpn = (1 << 18) | (2 << 9) | 3 → indices [1, 2, 3].
        let va = VirtAddr(((1u64 << 18 | 2 << 9 | 3) << PAGE_SHIFT) | 0x123);
        assert_eq!(va.sv39_indices(), [1, 2, 3]);
        assert_eq!(va.offset(), 0x123);
    }

    #[test]
    fn page_math() {
        let pa = PhysAddr(0x5432);
        assert_eq!(pa.ppn(), Ppn(5));
        assert_eq!(pa.offset(), 0x432);
        assert_eq!(Ppn(5).base(), PhysAddr(0x5000));
        assert_eq!(Vpn(7).base().vpn(), Vpn(7));
    }

    #[test]
    fn host_keyid_is_plaintext() {
        assert!(!KeyId::HOST.is_encrypted());
        assert!(KeyId(3).is_encrypted());
    }
}
