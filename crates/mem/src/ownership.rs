//! The page ownership table (§IV-B, §V-B).
//!
//! "EMS maintains a page ownership table in private memory. Each entry
//! records the unique enclaveID that owns a specific physical page. Before
//! mapping a physical page to an enclave, EMS looks up and verifies the page
//! ownership… EMS extends page ownership to allow pages to be shared between
//! enclaves or between an enclave and a peripheral."
//!
//! This table lives in EMS private memory, invisible to the CS — in the
//! reproduction it is simply a structure the CS-side API has no handle to.

use std::collections::BTreeMap;

use crate::addr::Ppn;

/// Identifier of an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EnclaveId(pub u64);

/// Identifier of a shared-memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShmId(pub u64);

/// Who owns a physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageOwner {
    /// Private page of one enclave.
    Enclave(EnclaveId),
    /// Page of a shared-memory region.
    Shared(ShmId),
    /// Page used by EMS itself (enclave page tables, control structures).
    EmsPrivate,
}

/// Errors raised by ownership bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OwnershipError {
    /// The page is already owned and cannot be claimed again.
    AlreadyOwned {
        /// The page in question.
        ppn: Ppn,
        /// Its current owner.
        owner: PageOwner,
    },
    /// The page has no owner record.
    NotOwned {
        /// The page in question.
        ppn: Ppn,
    },
    /// The caller is not the recorded owner.
    WrongOwner {
        /// The page in question.
        ppn: Ppn,
    },
}

impl core::fmt::Display for OwnershipError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OwnershipError::AlreadyOwned { ppn, owner } => {
                write!(f, "page {:#x} already owned by {owner:?}", ppn.0)
            }
            OwnershipError::NotOwned { ppn } => write!(f, "page {:#x} has no owner", ppn.0),
            OwnershipError::WrongOwner { ppn } => {
                write!(f, "caller does not own page {:#x}", ppn.0)
            }
        }
    }
}

impl std::error::Error for OwnershipError {}

/// The ownership table.
#[derive(Debug, Default)]
pub struct OwnershipTable {
    entries: BTreeMap<u64, PageOwner>,
}

impl OwnershipTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        OwnershipTable::default()
    }

    /// Claims an unowned page for `owner`.
    ///
    /// # Errors
    ///
    /// [`OwnershipError::AlreadyOwned`] if the page has an owner — the check
    /// that stops one enclave's page from being mapped into another (§IV-B).
    pub fn claim(&mut self, ppn: Ppn, owner: PageOwner) -> Result<(), OwnershipError> {
        if let Some(&existing) = self.entries.get(&ppn.0) {
            return Err(OwnershipError::AlreadyOwned {
                ppn,
                owner: existing,
            });
        }
        self.entries.insert(ppn.0, owner);
        Ok(())
    }

    /// Releases a page owned by `owner`.
    ///
    /// # Errors
    ///
    /// [`OwnershipError::NotOwned`] / [`OwnershipError::WrongOwner`] when the
    /// record does not match.
    pub fn release(&mut self, ppn: Ppn, owner: PageOwner) -> Result<(), OwnershipError> {
        match self.entries.get(&ppn.0) {
            None => Err(OwnershipError::NotOwned { ppn }),
            Some(&o) if o != owner => Err(OwnershipError::WrongOwner { ppn }),
            Some(_) => {
                self.entries.remove(&ppn.0);
                Ok(())
            }
        }
    }

    /// Looks up the owner of a page.
    pub fn owner(&self, ppn: Ppn) -> Option<PageOwner> {
        self.entries.get(&ppn.0).copied()
    }

    /// Verifies that a page may be mapped into `enclave`: it must be that
    /// enclave's private page or a shared page.
    pub fn may_map(&self, ppn: Ppn, enclave: EnclaveId) -> bool {
        match self.entries.get(&ppn.0) {
            Some(PageOwner::Enclave(e)) => *e == enclave,
            Some(PageOwner::Shared(_)) => true,
            Some(PageOwner::EmsPrivate) | None => false,
        }
    }

    /// All pages owned by a given enclave (used by EDESTROY reclamation).
    pub fn pages_of(&self, enclave: EnclaveId) -> Vec<Ppn> {
        self.entries
            .iter()
            .filter(|(_, o)| matches!(o, PageOwner::Enclave(e) if *e == enclave))
            .map(|(&p, _)| Ppn(p))
            .collect()
    }

    /// All pages of a shared region.
    pub fn pages_of_shm(&self, shm: ShmId) -> Vec<Ppn> {
        self.entries
            .iter()
            .filter(|(_, o)| matches!(o, PageOwner::Shared(s) if *s == shm))
            .map(|(&p, _)| Ppn(p))
            .collect()
    }

    /// Iterates all `(frame, owner)` entries (feeds the consistency audit).
    pub fn iter(&self) -> impl Iterator<Item = (Ppn, PageOwner)> + '_ {
        self.entries.iter().map(|(&p, &o)| (Ppn(p), o))
    }

    /// Number of owned pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_release_cycle() {
        let mut table = OwnershipTable::new();
        let e = EnclaveId(1);
        table.claim(Ppn(5), PageOwner::Enclave(e)).unwrap();
        assert_eq!(table.owner(Ppn(5)), Some(PageOwner::Enclave(e)));
        table.release(Ppn(5), PageOwner::Enclave(e)).unwrap();
        assert_eq!(table.owner(Ppn(5)), None);
    }

    #[test]
    fn double_claim_rejected() {
        let mut table = OwnershipTable::new();
        table
            .claim(Ppn(5), PageOwner::Enclave(EnclaveId(1)))
            .unwrap();
        let err = table
            .claim(Ppn(5), PageOwner::Enclave(EnclaveId(2)))
            .unwrap_err();
        assert!(matches!(err, OwnershipError::AlreadyOwned { .. }));
    }

    #[test]
    fn cross_enclave_mapping_denied() {
        // The §IV-B check: a page owned by enclave 1 cannot be mapped by
        // enclave 2, but a shared page can be mapped by anyone (subject to
        // the connection list enforced at a higher layer).
        let mut table = OwnershipTable::new();
        table
            .claim(Ppn(1), PageOwner::Enclave(EnclaveId(1)))
            .unwrap();
        table.claim(Ppn(2), PageOwner::Shared(ShmId(9))).unwrap();
        assert!(table.may_map(Ppn(1), EnclaveId(1)));
        assert!(!table.may_map(Ppn(1), EnclaveId(2)));
        assert!(table.may_map(Ppn(2), EnclaveId(2)));
        assert!(
            !table.may_map(Ppn(3), EnclaveId(1)),
            "unowned pages unmappable"
        );
    }

    #[test]
    fn wrong_owner_release_rejected() {
        let mut table = OwnershipTable::new();
        table
            .claim(Ppn(7), PageOwner::Enclave(EnclaveId(1)))
            .unwrap();
        assert!(matches!(
            table.release(Ppn(7), PageOwner::Enclave(EnclaveId(2))),
            Err(OwnershipError::WrongOwner { .. })
        ));
        assert!(matches!(
            table.release(Ppn(8), PageOwner::Enclave(EnclaveId(1))),
            Err(OwnershipError::NotOwned { .. })
        ));
    }

    #[test]
    fn enumeration_by_owner() {
        let mut table = OwnershipTable::new();
        for p in 0..5 {
            table
                .claim(Ppn(p), PageOwner::Enclave(EnclaveId(1)))
                .unwrap();
        }
        for p in 5..8 {
            table.claim(Ppn(p), PageOwner::Shared(ShmId(2))).unwrap();
        }
        assert_eq!(table.pages_of(EnclaveId(1)).len(), 5);
        assert_eq!(table.pages_of_shm(ShmId(2)).len(), 3);
        assert_eq!(table.len(), 8);
    }

    #[test]
    fn ems_private_pages_never_mappable() {
        let mut table = OwnershipTable::new();
        table.claim(Ppn(4), PageOwner::EmsPrivate).unwrap();
        assert!(!table.may_map(Ppn(4), EnclaveId(1)));
    }
}
