//! Sparse physical memory and the CS OS frame allocator.
//!
//! Frames are materialised lazily, so simulating a multi-gigabyte SoC costs
//! only what is actually touched. Raw byte access here is *below* the
//! encryption engine: [`crate::mktme`] layers AES-CTR on top.

use crate::addr::{PhysAddr, Ppn, PAGE_SIZE};
use crate::MemFault;
use std::collections::BTreeMap;

/// Sparse physical memory of a fixed installed size.
#[derive(Debug)]
pub struct PhysMemory {
    frames: BTreeMap<u64, Box<[u8]>>,
    total_frames: u64,
    /// Number of raw physical accesses performed (timing-model input).
    pub access_count: u64,
}

impl PhysMemory {
    /// Creates memory with `bytes` of installed capacity (rounded down to
    /// whole frames).
    pub fn new(bytes: u64) -> Self {
        PhysMemory {
            frames: BTreeMap::new(),
            total_frames: bytes / PAGE_SIZE,
            access_count: 0,
        }
    }

    /// Installed capacity in frames.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    fn check(&self, pa: PhysAddr, len: u64) -> Result<(), MemFault> {
        if pa.0 + len > self.total_frames * PAGE_SIZE {
            return Err(MemFault::BusError { pa: pa.0 });
        }
        Ok(())
    }

    fn frame_mut(&mut self, ppn: u64) -> &mut [u8] {
        self.frames
            .entry(ppn)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Reads `buf.len()` bytes starting at `pa`. Crossing frame boundaries is
    /// allowed; untouched frames read as zero.
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] when the range exceeds installed memory.
    pub fn read(&mut self, pa: PhysAddr, buf: &mut [u8]) -> Result<(), MemFault> {
        self.check(pa, buf.len() as u64)?;
        self.access_count += 1;
        let mut addr = pa.0;
        let mut done = 0usize;
        while done < buf.len() {
            let ppn = addr / PAGE_SIZE;
            let off = (addr % PAGE_SIZE) as usize;
            let take = (PAGE_SIZE as usize - off).min(buf.len() - done);
            match self.frames.get(&ppn) {
                Some(frame) => buf[done..done + take].copy_from_slice(&frame[off..off + take]),
                None => buf[done..done + take].fill(0),
            }
            addr += take as u64;
            done += take;
        }
        Ok(())
    }

    /// Writes `buf` starting at `pa`.
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] when the range exceeds installed memory.
    pub fn write(&mut self, pa: PhysAddr, buf: &[u8]) -> Result<(), MemFault> {
        self.check(pa, buf.len() as u64)?;
        self.access_count += 1;
        let mut addr = pa.0;
        let mut done = 0usize;
        while done < buf.len() {
            let ppn = addr / PAGE_SIZE;
            let off = (addr % PAGE_SIZE) as usize;
            let take = (PAGE_SIZE as usize - off).min(buf.len() - done);
            let frame = self.frame_mut(ppn);
            frame[off..off + take].copy_from_slice(&buf[done..done + take]);
            addr += take as u64;
            done += take;
        }
        Ok(())
    }

    /// Reads a u64 (little endian).
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] when out of range.
    pub fn read_u64(&mut self, pa: PhysAddr) -> Result<u64, MemFault> {
        let mut b = [0u8; 8];
        self.read(pa, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a u64 (little endian).
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] when out of range.
    pub fn write_u64(&mut self, pa: PhysAddr, v: u64) -> Result<(), MemFault> {
        self.write(pa, &v.to_le_bytes())
    }

    /// Fills a whole frame with zeros (EMS zeroes pages before reuse, §IV-A).
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] when the frame is out of range.
    pub fn zero_frame(&mut self, ppn: Ppn) -> Result<(), MemFault> {
        self.check(ppn.base(), PAGE_SIZE)?;
        self.access_count += 1;
        self.frames.remove(&ppn.0);
        Ok(())
    }
}

/// The CS operating system's frame allocator: hands out free physical frames.
/// EMS requests frames from here to feed the enclave memory pool (§IV-A).
#[derive(Debug)]
pub struct FrameAllocator {
    next: u64,
    limit: u64,
    free: Vec<Ppn>,
    /// Frames currently handed out.
    pub allocated: u64,
}

impl FrameAllocator {
    /// Manages frames `[first, limit)`.
    pub fn new(first: Ppn, limit: Ppn) -> Self {
        assert!(first.0 < limit.0, "empty allocator range");
        FrameAllocator {
            next: first.0,
            limit: limit.0,
            free: Vec::new(),
            allocated: 0,
        }
    }

    /// Allocates one frame, or `None` when physical memory is exhausted.
    pub fn alloc(&mut self) -> Option<Ppn> {
        if let Some(f) = self.free.pop() {
            self.allocated += 1;
            return Some(f);
        }
        if self.next < self.limit {
            let f = Ppn(self.next);
            self.next += 1;
            self.allocated += 1;
            Some(f)
        } else {
            None
        }
    }

    /// Allocates `n` physically contiguous frames (host windows, image
    /// staging). Draws from the untouched tail of the range, never from the
    /// free list.
    pub fn alloc_contiguous(&mut self, n: u64) -> Option<Ppn> {
        if self.next + n <= self.limit {
            let base = Ppn(self.next);
            self.next += n;
            self.allocated += n;
            Some(base)
        } else {
            None
        }
    }

    /// Returns a frame to the free list.
    pub fn free(&mut self, ppn: Ppn) {
        debug_assert!(ppn.0 < self.limit, "freeing frame outside range");
        self.allocated = self.allocated.saturating_sub(1);
        self.free.push(ppn);
    }

    /// Frames still available.
    pub fn available(&self) -> u64 {
        (self.limit - self.next) + self.free.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut mem = PhysMemory::new(1 << 20);
        let pa = PhysAddr(0x1234);
        mem.write(pa, b"hello world").unwrap();
        let mut buf = [0u8; 11];
        mem.read(pa, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn cross_frame_access() {
        let mut mem = PhysMemory::new(1 << 20);
        let pa = PhysAddr(PAGE_SIZE - 3);
        mem.write(pa, &[1, 2, 3, 4, 5, 6]).unwrap();
        let mut buf = [0u8; 6];
        mem.read(pa, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let mut mem = PhysMemory::new(1 << 20);
        let mut buf = [0xffu8; 16];
        mem.read(PhysAddr(0x8000), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn bus_error_beyond_installed() {
        let mut mem = PhysMemory::new(2 * PAGE_SIZE);
        let mut buf = [0u8; 4];
        assert!(matches!(
            mem.read(PhysAddr(2 * PAGE_SIZE), &mut buf),
            Err(MemFault::BusError { .. })
        ));
        // A straddling access is also rejected.
        assert!(mem.write(PhysAddr(2 * PAGE_SIZE - 2), &[0; 4]).is_err());
    }

    #[test]
    fn zero_frame_clears() {
        let mut mem = PhysMemory::new(1 << 20);
        mem.write(PhysAddr(0x2000), &[0xaa; 64]).unwrap();
        mem.zero_frame(Ppn(2)).unwrap();
        let mut buf = [0xffu8; 64];
        mem.read(PhysAddr(0x2000), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn u64_helpers() {
        let mut mem = PhysMemory::new(1 << 20);
        mem.write_u64(PhysAddr(0x100), 0xdead_beef_cafe_f00d)
            .unwrap();
        assert_eq!(
            mem.read_u64(PhysAddr(0x100)).unwrap(),
            0xdead_beef_cafe_f00d
        );
    }

    #[test]
    fn allocator_reuses_freed_frames() {
        let mut alloc = FrameAllocator::new(Ppn(10), Ppn(13));
        let a = alloc.alloc().unwrap();
        let b = alloc.alloc().unwrap();
        let c = alloc.alloc().unwrap();
        assert_eq!(alloc.alloc(), None, "range exhausted");
        alloc.free(b);
        assert_eq!(alloc.alloc(), Some(b));
        assert_eq!(alloc.allocated, 3);
        let _ = (a, c);
    }

    #[test]
    fn allocator_available_counts() {
        let mut alloc = FrameAllocator::new(Ppn(0), Ppn(5));
        assert_eq!(alloc.available(), 5);
        let f = alloc.alloc().unwrap();
        assert_eq!(alloc.available(), 4);
        alloc.free(f);
        assert_eq!(alloc.available(), 5);
    }
}
