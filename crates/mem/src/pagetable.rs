//! Sv39 page tables, stored inside simulated physical memory.
//!
//! §IV-A: "For each enclave, EMS maintains a dedicated enclave page table
//! separate from the original page table… The page table is stored in enclave
//! memory and inaccessible to both the enclave itself and any untrusted
//! software." §IV-C: "The KeyID is stored to the high bits of PTE by EMS."
//!
//! PTE layout used here (64-bit, little-endian):
//!
//! ```text
//! bit  0      V (valid)
//! bits 1..=3  R / W / X
//! bit  4      U (user accessible)
//! bit  6      A (accessed)    — the state controlled-channel attacks watch
//! bit  7      D (dirty)
//! bits 10..38 PPN (28 bits; the bus carries 40-bit physical addresses)
//! bits 48..64 KeyID (16 bits; paper §IV-C)
//! ```

use crate::addr::{KeyId, PhysAddr, Ppn, VirtAddr, PAGE_SIZE};
use crate::phys::PhysMemory;
use crate::walkcache::WalkCache;
use crate::MemFault;

/// Access permissions of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
    /// User-mode accessible.
    pub u: bool,
}

impl Perms {
    /// Read-only user mapping.
    pub const RO: Perms = Perms {
        r: true,
        w: false,
        x: false,
        u: true,
    };
    /// Read-write user mapping.
    pub const RW: Perms = Perms {
        r: true,
        w: true,
        x: false,
        u: true,
    };
    /// Read-execute user mapping.
    pub const RX: Perms = Perms {
        r: true,
        w: false,
        x: true,
        u: true,
    };
    /// Read-write-execute (loader convenience).
    pub const RWX: Perms = Perms {
        r: true,
        w: true,
        x: true,
        u: true,
    };

    /// Whether these permissions allow the given access kind.
    pub fn allows(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.r,
            AccessKind::Write => self.w,
            AccessKind::Execute => self.x,
        }
    }
}

/// The kind of memory access being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data load.
    Read,
    /// Data store.
    Write,
    /// Instruction fetch.
    Execute,
}

/// A decoded page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte(pub u64);

impl Pte {
    const V: u64 = 1 << 0;
    const R: u64 = 1 << 1;
    const W: u64 = 1 << 2;
    const X: u64 = 1 << 3;
    const U: u64 = 1 << 4;
    const A: u64 = 1 << 6;
    const D: u64 = 1 << 7;

    /// Builds a leaf PTE.
    pub fn leaf(ppn: Ppn, perms: Perms, key: KeyId) -> Pte {
        let mut v = Pte::V;
        if perms.r {
            v |= Pte::R;
        }
        if perms.w {
            v |= Pte::W;
        }
        if perms.x {
            v |= Pte::X;
        }
        if perms.u {
            v |= Pte::U;
        }
        v |= (ppn.0 & ((1 << 28) - 1)) << 10;
        v |= (key.0 as u64) << 48;
        Pte(v)
    }

    /// Builds a non-leaf (pointer) PTE.
    pub fn branch(ppn: Ppn) -> Pte {
        Pte(Pte::V | ((ppn.0 & ((1 << 28) - 1)) << 10))
    }

    /// Valid bit.
    pub fn valid(&self) -> bool {
        self.0 & Pte::V != 0
    }

    /// Whether this is a leaf (any of R/W/X set).
    pub fn is_leaf(&self) -> bool {
        self.0 & (Pte::R | Pte::W | Pte::X) != 0
    }

    /// Physical page number.
    pub fn ppn(&self) -> Ppn {
        Ppn((self.0 >> 10) & ((1 << 28) - 1))
    }

    /// KeyID from the high bits.
    pub fn key(&self) -> KeyId {
        KeyId((self.0 >> 48) as u16)
    }

    /// Permission bits.
    pub fn perms(&self) -> Perms {
        Perms {
            r: self.0 & Pte::R != 0,
            w: self.0 & Pte::W != 0,
            x: self.0 & Pte::X != 0,
            u: self.0 & Pte::U != 0,
        }
    }

    /// Accessed bit (the state watched by page-table controlled channels).
    pub fn accessed(&self) -> bool {
        self.0 & Pte::A != 0
    }

    /// Dirty bit.
    pub fn dirty(&self) -> bool {
        self.0 & Pte::D != 0
    }

    /// Returns a copy with A (and optionally D) set.
    pub fn touch(&self, write: bool) -> Pte {
        let mut v = self.0 | Pte::A;
        if write {
            v |= Pte::D;
        }
        Pte(v)
    }
}

/// A source of physical frames for page-table pages.
pub trait FrameSource {
    /// Allocates one frame, or `None` when exhausted.
    fn alloc_frame(&mut self) -> Option<Ppn>;
}

impl FrameSource for crate::phys::FrameAllocator {
    fn alloc_frame(&mut self) -> Option<Ppn> {
        self.alloc()
    }
}

/// An Sv39 page table rooted at a physical frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTable {
    /// Root page-table frame (the satp PPN).
    pub root: Ppn,
}

/// Result of a successful table walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Target physical page.
    pub ppn: Ppn,
    /// Leaf permissions.
    pub perms: Perms,
    /// KeyID from the leaf PTE.
    pub key: KeyId,
    /// Number of memory accesses the walk performed (for timing).
    pub levels_touched: u32,
}

impl PageTable {
    /// Creates an empty table, allocating the root frame.
    ///
    /// # Panics
    ///
    /// Panics when the frame source is exhausted.
    pub fn new(frames: &mut dyn FrameSource, mem: &mut PhysMemory) -> PageTable {
        PageTable::try_new(frames, mem).expect("no frame for page-table root")
    }

    /// Fallible sibling of [`PageTable::new`] for request-path callers that
    /// must never panic: allocation failure surfaces as a fault instead.
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] when the frame source is exhausted, or the
    /// fault from zeroing an out-of-range root frame.
    pub fn try_new(
        frames: &mut dyn FrameSource,
        mem: &mut PhysMemory,
    ) -> Result<PageTable, MemFault> {
        let root = frames.alloc_frame().ok_or(MemFault::BusError { pa: 0 })?;
        mem.zero_frame(root)?;
        Ok(PageTable { root })
    }

    fn pte_addr(table: Ppn, index: usize) -> PhysAddr {
        PhysAddr(table.base().0 + (index as u64) * 8)
    }

    /// Maps one page. Intermediate tables are allocated on demand from
    /// `frames` and zeroed.
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] if a frame cannot be allocated or addressed;
    /// [`MemFault::PermissionDenied`] if the VA is already mapped.
    pub fn map(
        &self,
        va: VirtAddr,
        ppn: Ppn,
        perms: Perms,
        key: KeyId,
        frames: &mut dyn FrameSource,
        mem: &mut PhysMemory,
    ) -> Result<(), MemFault> {
        let idx = va.sv39_indices();
        let mut table = self.root;
        for &index in idx.iter().take(2) {
            let addr = Self::pte_addr(table, index);
            let pte = Pte(mem.read_u64(addr)?);
            if pte.valid() {
                if pte.is_leaf() {
                    return Err(MemFault::PermissionDenied { va: va.0 });
                }
                table = pte.ppn();
            } else {
                let frame = frames
                    .alloc_frame()
                    .ok_or(MemFault::BusError { pa: addr.0 })?;
                mem.zero_frame(frame)?;
                mem.write_u64(addr, Pte::branch(frame).0)?;
                table = frame;
            }
        }
        let addr = Self::pte_addr(table, idx[2]);
        let existing = Pte(mem.read_u64(addr)?);
        if existing.valid() {
            return Err(MemFault::PermissionDenied { va: va.0 });
        }
        mem.write_u64(addr, Pte::leaf(ppn, perms, key).0)
    }

    /// Maps one page using only already-present intermediate tables (the
    /// KeyID-rewrite path of enclave resume, where the walk structure is
    /// known to exist).
    ///
    /// # Errors
    ///
    /// [`MemFault::PageFault`] when an intermediate level is missing;
    /// [`MemFault::PermissionDenied`] when the VA is already mapped.
    pub fn map_raw(
        &self,
        va: VirtAddr,
        ppn: Ppn,
        perms: Perms,
        key: KeyId,
        mem: &mut PhysMemory,
    ) -> Result<(), MemFault> {
        let idx = va.sv39_indices();
        let mut table = self.root;
        for &index in idx.iter().take(2) {
            let pte = Pte(mem.read_u64(Self::pte_addr(table, index))?);
            if !pte.valid() || pte.is_leaf() {
                return Err(MemFault::PageFault { va: va.0 });
            }
            table = pte.ppn();
        }
        let addr = Self::pte_addr(table, idx[2]);
        if Pte(mem.read_u64(addr)?).valid() {
            return Err(MemFault::PermissionDenied { va: va.0 });
        }
        mem.write_u64(addr, Pte::leaf(ppn, perms, key).0)
    }

    /// Removes the mapping for `va`, returning the old leaf PTE.
    ///
    /// # Errors
    ///
    /// [`MemFault::PageFault`] when `va` is not mapped.
    pub fn unmap(&self, va: VirtAddr, mem: &mut PhysMemory) -> Result<Pte, MemFault> {
        let (addr, pte) = self.leaf_slot(va, mem)?;
        mem.write_u64(addr, 0)?;
        Ok(pte)
    }

    /// Updates the permissions of an existing mapping.
    ///
    /// # Errors
    ///
    /// [`MemFault::PageFault`] when `va` is not mapped.
    pub fn protect(
        &self,
        va: VirtAddr,
        perms: Perms,
        mem: &mut PhysMemory,
    ) -> Result<(), MemFault> {
        let (addr, pte) = self.leaf_slot(va, mem)?;
        mem.write_u64(addr, Pte::leaf(pte.ppn(), perms, pte.key()).0)
    }

    /// Walks the two upper levels, returning the leaf-table frame.
    fn leaf_table(&self, va: VirtAddr, mem: &mut PhysMemory) -> Result<Ppn, MemFault> {
        let idx = va.sv39_indices();
        let mut table = self.root;
        for &index in idx.iter().take(2) {
            let pte = Pte(mem.read_u64(Self::pte_addr(table, index))?);
            if !pte.valid() || pte.is_leaf() {
                return Err(MemFault::PageFault { va: va.0 });
            }
            table = pte.ppn();
        }
        Ok(table)
    }

    /// Finds the leaf-slot address and current PTE for `va`.
    fn leaf_slot(&self, va: VirtAddr, mem: &mut PhysMemory) -> Result<(PhysAddr, Pte), MemFault> {
        let table = self.leaf_table(va, mem)?;
        let addr = Self::pte_addr(table, va.sv39_indices()[2]);
        let pte = Pte(mem.read_u64(addr)?);
        if !pte.valid() {
            return Err(MemFault::PageFault { va: va.0 });
        }
        Ok((addr, pte))
    }

    /// Walks the table for `va`, setting A/D bits like hardware does.
    ///
    /// # Errors
    ///
    /// [`MemFault::PageFault`] when no valid leaf exists.
    pub fn walk(
        &self,
        va: VirtAddr,
        set_dirty: bool,
        mem: &mut PhysMemory,
    ) -> Result<Translation, MemFault> {
        let (addr, pte) = self.leaf_slot(va, mem)?;
        // Hardware A/D update.
        mem.write_u64(addr, pte.touch(set_dirty).0)?;
        Ok(Translation {
            ppn: pte.ppn(),
            perms: pte.perms(),
            key: pte.key(),
            levels_touched: 3,
        })
    }

    /// [`PageTable::walk`] through a page-walk cache: a cached leaf-table
    /// pointer skips the two intermediate PTE reads.
    ///
    /// The result, the A/D side effects, the reported `levels_touched`, and
    /// the raw physical-access trajectory are all identical to an uncached
    /// walk — only host wall-clock differs (charge invariance).
    ///
    /// # Errors
    ///
    /// [`MemFault::PageFault`] when no valid leaf exists.
    pub fn walk_cached(
        &self,
        va: VirtAddr,
        set_dirty: bool,
        mem: &mut PhysMemory,
        cache: &mut WalkCache,
    ) -> Result<Translation, MemFault> {
        let region = va.vpn().0 >> 9;
        let table = match cache.lookup(self.root, region) {
            Some(table) => {
                // Keep the raw-access counter on the uncached trajectory
                // (the two intermediate PTE reads the hit skipped).
                mem.access_count += 2;
                table
            }
            None => {
                let table = self.leaf_table(va, mem)?;
                cache.insert(self.root, region, table);
                table
            }
        };
        let addr = Self::pte_addr(table, va.sv39_indices()[2]);
        let pte = Pte(mem.read_u64(addr)?);
        if !pte.valid() {
            return Err(MemFault::PageFault { va: va.0 });
        }
        mem.write_u64(addr, pte.touch(set_dirty).0)?;
        Ok(Translation {
            ppn: pte.ppn(),
            perms: pte.perms(),
            key: pte.key(),
            levels_touched: 3,
        })
    }

    /// Reads the leaf PTE without side effects (used by management code and
    /// by attackers inspecting A/D bits in *their own* tables).
    ///
    /// # Errors
    ///
    /// [`MemFault::PageFault`] when no valid leaf exists.
    pub fn inspect(&self, va: VirtAddr, mem: &mut PhysMemory) -> Result<Pte, MemFault> {
        Ok(self.leaf_slot(va, mem)?.1)
    }

    /// Clears the accessed/dirty bits of a mapping (the attacker move in
    /// page-table controlled channels).
    ///
    /// # Errors
    ///
    /// [`MemFault::PageFault`] when `va` is not mapped.
    pub fn clear_ad(&self, va: VirtAddr, mem: &mut PhysMemory) -> Result<(), MemFault> {
        let (addr, pte) = self.leaf_slot(va, mem)?;
        mem.write_u64(addr, pte.0 & !(Pte::A | Pte::D))
    }

    /// Enumerates all mapped leaf pages (va page base → PTE).
    ///
    /// # Errors
    ///
    /// Propagates bus errors while scanning.
    pub fn mappings(&self, mem: &mut PhysMemory) -> Result<Vec<(VirtAddr, Pte)>, MemFault> {
        let mut out = Vec::new();
        for i2 in 0..512usize {
            let pte2 = Pte(mem.read_u64(Self::pte_addr(self.root, i2))?);
            if !pte2.valid() {
                continue;
            }
            for i1 in 0..512usize {
                let pte1 = Pte(mem.read_u64(Self::pte_addr(pte2.ppn(), i1))?);
                if !pte1.valid() {
                    continue;
                }
                for i0 in 0..512usize {
                    let pte0 = Pte(mem.read_u64(Self::pte_addr(pte1.ppn(), i0))?);
                    if pte0.valid() {
                        let vpn = ((i2 as u64) << 18) | ((i1 as u64) << 9) | i0 as u64;
                        out.push((VirtAddr(vpn * PAGE_SIZE), pte0));
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phys::FrameAllocator;

    fn setup() -> (PhysMemory, FrameAllocator, PageTable) {
        let mut mem = PhysMemory::new(32 << 20);
        let mut alloc = FrameAllocator::new(Ppn(16), Ppn(8000));
        let pt = PageTable::new(&mut alloc, &mut mem);
        (mem, alloc, pt)
    }

    #[test]
    fn map_walk_roundtrip() {
        let (mut mem, mut alloc, pt) = setup();
        let va = VirtAddr(0x4000_0000);
        pt.map(va, Ppn(0x123), Perms::RW, KeyId(7), &mut alloc, &mut mem)
            .unwrap();
        let tr = pt.walk(va, false, &mut mem).unwrap();
        assert_eq!(tr.ppn, Ppn(0x123));
        assert_eq!(tr.key, KeyId(7));
        assert!(tr.perms.r && tr.perms.w && !tr.perms.x);
    }

    #[test]
    fn unmapped_va_faults() {
        let (mut mem, _alloc, pt) = setup();
        assert!(matches!(
            pt.walk(VirtAddr(0x1000), false, &mut mem),
            Err(MemFault::PageFault { va: 0x1000 })
        ));
    }

    #[test]
    fn double_map_rejected() {
        let (mut mem, mut alloc, pt) = setup();
        let va = VirtAddr(0x1000);
        pt.map(va, Ppn(1), Perms::RO, KeyId::HOST, &mut alloc, &mut mem)
            .unwrap();
        assert!(pt
            .map(va, Ppn(2), Perms::RO, KeyId::HOST, &mut alloc, &mut mem)
            .is_err());
    }

    #[test]
    fn unmap_then_fault() {
        let (mut mem, mut alloc, pt) = setup();
        let va = VirtAddr(0x20_0000);
        pt.map(va, Ppn(9), Perms::RW, KeyId::HOST, &mut alloc, &mut mem)
            .unwrap();
        let old = pt.unmap(va, &mut mem).unwrap();
        assert_eq!(old.ppn(), Ppn(9));
        assert!(pt.walk(va, false, &mut mem).is_err());
    }

    #[test]
    fn accessed_dirty_bits_behave_like_hardware() {
        let (mut mem, mut alloc, pt) = setup();
        let va = VirtAddr(0x5000);
        pt.map(va, Ppn(3), Perms::RW, KeyId::HOST, &mut alloc, &mut mem)
            .unwrap();
        assert!(!pt.inspect(va, &mut mem).unwrap().accessed());
        pt.walk(va, false, &mut mem).unwrap();
        let pte = pt.inspect(va, &mut mem).unwrap();
        assert!(pte.accessed() && !pte.dirty());
        pt.walk(va, true, &mut mem).unwrap();
        assert!(pt.inspect(va, &mut mem).unwrap().dirty());
        pt.clear_ad(va, &mut mem).unwrap();
        let pte = pt.inspect(va, &mut mem).unwrap();
        assert!(!pte.accessed() && !pte.dirty());
    }

    #[test]
    fn distinct_vas_share_intermediate_tables() {
        let (mut mem, mut alloc, pt) = setup();
        let before = alloc.allocated;
        pt.map(
            VirtAddr(0x1000),
            Ppn(1),
            Perms::RO,
            KeyId::HOST,
            &mut alloc,
            &mut mem,
        )
        .unwrap();
        let after_first = alloc.allocated;
        pt.map(
            VirtAddr(0x2000),
            Ppn(2),
            Perms::RO,
            KeyId::HOST,
            &mut alloc,
            &mut mem,
        )
        .unwrap();
        let after_second = alloc.allocated;
        // First map allocates two intermediate levels; second reuses them.
        assert_eq!(after_first - before, 2);
        assert_eq!(after_second, after_first);
    }

    #[test]
    fn protect_changes_perms() {
        let (mut mem, mut alloc, pt) = setup();
        let va = VirtAddr(0x9000);
        pt.map(va, Ppn(4), Perms::RW, KeyId(1), &mut alloc, &mut mem)
            .unwrap();
        pt.protect(va, Perms::RO, &mut mem).unwrap();
        let tr = pt.walk(va, false, &mut mem).unwrap();
        assert!(tr.perms.r && !tr.perms.w);
        assert_eq!(tr.key, KeyId(1), "protect must preserve the KeyID");
    }

    #[test]
    fn mappings_enumeration() {
        let (mut mem, mut alloc, pt) = setup();
        for i in 0..5u64 {
            pt.map(
                VirtAddr(0x100_0000 + i * PAGE_SIZE),
                Ppn(100 + i),
                Perms::RO,
                KeyId::HOST,
                &mut alloc,
                &mut mem,
            )
            .unwrap();
        }
        let maps = pt.mappings(&mut mem).unwrap();
        assert_eq!(maps.len(), 5);
        assert!(maps.iter().all(|(_, pte)| pte.valid()));
    }

    #[test]
    fn pte_encoding_roundtrip() {
        let pte = Pte::leaf(Ppn(0xabcde), Perms::RX, KeyId(0x1234));
        assert!(pte.valid() && pte.is_leaf());
        assert_eq!(pte.ppn(), Ppn(0xabcde));
        assert_eq!(pte.key(), KeyId(0x1234));
        assert!(pte.perms().x && !pte.perms().w);
    }
}
