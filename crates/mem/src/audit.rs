//! Cross-structure consistency audit.
//!
//! The management plane keeps four views of who owns physical memory: the
//! enclave bitmap (hardware access control), the ownership table (EMS
//! bookkeeping), the per-enclave page tables (what software can actually
//! reach), and the pool accounting (free/used counters). A fault injected
//! between two mutations could make them disagree — this module checks the
//! containment chain after every injection:
//!
//! 1. bitmap-marked frames = owned frames ∪ pool-free frames (both ways);
//! 2. no frame is simultaneously owned and pool-free;
//! 3. pool `used` equals the ownership-table population (every pool take is
//!    paired with a claim);
//! 4. every enclave leaf PTE points at a frame the enclave may reach: the
//!    host window (KeyID 0) at non-enclave frames, everything else at
//!    frames owned by that enclave or by a shared region.

use crate::addr::{KeyId, Ppn, VirtAddr};
use crate::ownership::{EnclaveId, OwnershipTable, PageOwner};
use crate::pagetable::PageTable;
use crate::system::MemorySystem;
use crate::MemFault;
use std::collections::BTreeSet;

/// A violated invariant, pinpointing the first offending frame or PTE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditError {
    /// A frame is bitmap-marked enclave but neither owned nor pool-free.
    UntrackedEnclaveFrame {
        /// The offending frame.
        ppn: Ppn,
    },
    /// An owned or pool-free frame is missing its bitmap bit.
    MissingBitmapBit {
        /// The offending frame.
        ppn: Ppn,
    },
    /// A frame appears both in the ownership table and the pool free list.
    FreeButOwned {
        /// The offending frame.
        ppn: Ppn,
    },
    /// Pool `used` disagrees with the ownership-table population.
    PoolAccountingMismatch {
        /// The pool's used-frame counter.
        used: u64,
        /// The ownership table's entry count.
        owned: u64,
    },
    /// An enclave leaf PTE points at a frame the enclave does not own.
    DanglingPte {
        /// The enclave whose table holds the PTE.
        eid: EnclaveId,
        /// The mapped virtual address.
        va: VirtAddr,
    },
    /// A host-window (KeyID 0) PTE points at enclave-marked memory.
    HostWindowEnclaveFrame {
        /// The enclave whose table holds the PTE.
        eid: EnclaveId,
        /// The mapped virtual address.
        va: VirtAddr,
    },
    /// The audit itself could not read a structure.
    Fault(MemFault),
}

impl From<MemFault> for AuditError {
    fn from(f: MemFault) -> AuditError {
        AuditError::Fault(f)
    }
}

impl core::fmt::Display for AuditError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AuditError::UntrackedEnclaveFrame { ppn } => {
                write!(f, "frame {ppn:?} bitmap-marked but untracked")
            }
            AuditError::MissingBitmapBit { ppn } => {
                write!(f, "frame {ppn:?} tracked but bitmap-unmarked")
            }
            AuditError::FreeButOwned { ppn } => {
                write!(f, "frame {ppn:?} both owned and pool-free")
            }
            AuditError::PoolAccountingMismatch { used, owned } => {
                write!(f, "pool used={used} but ownership holds {owned}")
            }
            AuditError::DanglingPte { eid, va } => {
                write!(f, "enclave {eid:?} maps {va:?} to a frame it does not own")
            }
            AuditError::HostWindowEnclaveFrame { eid, va } => {
                write!(
                    f,
                    "enclave {eid:?} host window {va:?} points at enclave memory"
                )
            }
            AuditError::Fault(m) => write!(f, "audit read fault: {m}"),
        }
    }
}

impl std::error::Error for AuditError {}

/// What a passing audit covered (observability for tests and reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsistencyAudit {
    /// Frames scanned in the bitmap sweep.
    pub frames_scanned: u64,
    /// Frames currently bitmap-marked as enclave memory.
    pub enclave_marked: u64,
    /// Entries in the ownership table.
    pub owned: u64,
    /// Frames on the pool free list.
    pub pool_free: u64,
    /// Leaf PTEs walked across all audited enclave tables.
    pub leaves_checked: u64,
}

impl ConsistencyAudit {
    /// Runs the full audit. `tables` carries the page tables of enclaves
    /// whose structures are supposed to be consistent (the EMS side excludes
    /// poisoned enclaves — their only legal future is EDESTROY).
    ///
    /// # Errors
    ///
    /// The first violated invariant, or [`AuditError::Fault`] when a
    /// structure could not be read.
    pub fn run(
        sys: &mut MemorySystem,
        ownership: &OwnershipTable,
        pool_free: &[Ppn],
        pool_used: u64,
        tables: &[(EnclaveId, PageTable)],
    ) -> Result<ConsistencyAudit, AuditError> {
        let mut audit = ConsistencyAudit::default();

        let owned: BTreeSet<u64> = ownership.iter().map(|(p, _)| p.0).collect();
        let free: BTreeSet<u64> = pool_free.iter().map(|p| p.0).collect();
        audit.owned = owned.len() as u64;
        audit.pool_free = free.len() as u64;

        // ② Disjointness first (cheap, and ① below assumes it).
        if let Some(&both) = owned.intersection(&free).next() {
            return Err(AuditError::FreeButOwned { ppn: Ppn(both) });
        }

        // ③ Every pool take pairs with an ownership claim.
        if pool_used != audit.owned {
            return Err(AuditError::PoolAccountingMismatch {
                used: pool_used,
                owned: audit.owned,
            });
        }

        // ① Bitmap sweep: marked ⇔ (owned ∪ pool-free).
        audit.frames_scanned = sys.bitmap.covered_frames;
        for ppn in 0..sys.bitmap.covered_frames {
            // The bitmap's own backing frames are enclave-marked by its
            // install-time self-protection; no table tracks them.
            if sys.bitmap.is_self_frame(Ppn(ppn)) {
                continue;
            }
            let marked = sys.bitmap.is_enclave(Ppn(ppn), &mut sys.phys)?;
            let tracked = owned.contains(&ppn) || free.contains(&ppn);
            if marked {
                audit.enclave_marked += 1;
                if !tracked {
                    return Err(AuditError::UntrackedEnclaveFrame { ppn: Ppn(ppn) });
                }
            } else if tracked {
                return Err(AuditError::MissingBitmapBit { ppn: Ppn(ppn) });
            }
        }

        // ④ Leaf PTEs reach only frames their enclave may reach.
        for (eid, table) in tables {
            for (va, pte) in table.mappings(&mut sys.phys)? {
                audit.leaves_checked += 1;
                let frame = pte.ppn();
                if pte.key() == KeyId::HOST {
                    // Host window / plaintext shared view: must NOT alias
                    // enclave-marked memory.
                    if sys.bitmap.is_enclave(frame, &mut sys.phys)? {
                        return Err(AuditError::HostWindowEnclaveFrame { eid: *eid, va });
                    }
                } else {
                    match ownership.owner(frame) {
                        Some(PageOwner::Enclave(e)) if e == *eid => {}
                        Some(PageOwner::Shared(_)) => {}
                        _ => return Err(AuditError::DanglingPte { eid: *eid, va }),
                    }
                }
            }
        }
        Ok(audit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::ownership::OwnershipTable;

    fn setup() -> (MemorySystem, OwnershipTable) {
        (
            MemorySystem::new(16 << 20, PhysAddr(0x4000)),
            OwnershipTable::new(),
        )
    }

    #[test]
    fn empty_state_passes() {
        let (mut sys, own) = setup();
        let audit = ConsistencyAudit::run(&mut sys, &own, &[], 0, &[]).unwrap();
        assert_eq!(audit.enclave_marked, 0);
        assert!(audit.frames_scanned > 0);
    }

    #[test]
    fn tracked_marked_frames_pass() {
        let (mut sys, mut own) = setup();
        sys.bitmap.set(Ppn(100), true, &mut sys.phys).unwrap();
        sys.bitmap.set(Ppn(101), true, &mut sys.phys).unwrap();
        own.claim(Ppn(100), PageOwner::EmsPrivate).unwrap();
        let audit = ConsistencyAudit::run(&mut sys, &own, &[Ppn(101)], 1, &[]).unwrap();
        assert_eq!(audit.enclave_marked, 2);
        assert_eq!(audit.owned, 1);
        assert_eq!(audit.pool_free, 1);
    }

    #[test]
    fn untracked_marked_frame_caught() {
        let (mut sys, own) = setup();
        sys.bitmap.set(Ppn(50), true, &mut sys.phys).unwrap();
        let err = ConsistencyAudit::run(&mut sys, &own, &[], 0, &[]).unwrap_err();
        assert_eq!(err, AuditError::UntrackedEnclaveFrame { ppn: Ppn(50) });
    }

    #[test]
    fn missing_bitmap_bit_caught() {
        let (mut sys, mut own) = setup();
        own.claim(Ppn(60), PageOwner::EmsPrivate).unwrap();
        let err = ConsistencyAudit::run(&mut sys, &own, &[], 1, &[]).unwrap_err();
        assert_eq!(err, AuditError::MissingBitmapBit { ppn: Ppn(60) });
    }

    #[test]
    fn owned_and_free_caught() {
        let (mut sys, mut own) = setup();
        sys.bitmap.set(Ppn(70), true, &mut sys.phys).unwrap();
        own.claim(Ppn(70), PageOwner::EmsPrivate).unwrap();
        let err = ConsistencyAudit::run(&mut sys, &own, &[Ppn(70)], 1, &[]).unwrap_err();
        assert_eq!(err, AuditError::FreeButOwned { ppn: Ppn(70) });
    }

    #[test]
    fn pool_accounting_mismatch_caught() {
        let (mut sys, own) = setup();
        let err = ConsistencyAudit::run(&mut sys, &own, &[], 3, &[]).unwrap_err();
        assert_eq!(
            err,
            AuditError::PoolAccountingMismatch { used: 3, owned: 0 }
        );
    }

    #[test]
    fn dangling_pte_caught() {
        use crate::pagetable::{FrameSource, Perms};
        struct Seq(u64);
        impl FrameSource for Seq {
            fn alloc_frame(&mut self) -> Option<Ppn> {
                self.0 += 1;
                Some(Ppn(self.0))
            }
        }
        let (mut sys, mut own) = setup();
        let mut frames = Seq(200);
        let table = PageTable::new(&mut frames, &mut sys.phys);
        // Map an encrypted page at a frame nobody owns.
        table
            .map(
                VirtAddr(0x2000_0000),
                Ppn(300),
                Perms::RW,
                KeyId(5),
                &mut frames,
                &mut sys.phys,
            )
            .unwrap();
        let eid = EnclaveId(9);
        let err = ConsistencyAudit::run(&mut sys, &own, &[], 0, &[(eid, table)]).unwrap_err();
        assert_eq!(
            err,
            AuditError::DanglingPte {
                eid,
                va: VirtAddr(0x2000_0000)
            }
        );
        // Claiming the frame for the right enclave fixes it (bitmap too).
        own.claim(Ppn(300), PageOwner::Enclave(eid)).unwrap();
        sys.bitmap.set(Ppn(300), true, &mut sys.phys).unwrap();
        let audit = ConsistencyAudit::run(&mut sys, &own, &[], 1, &[(eid, table)]).unwrap();
        assert_eq!(audit.leaves_checked, 1);
    }

    #[test]
    fn host_window_alias_caught() {
        use crate::pagetable::{FrameSource, Perms};
        struct Seq(u64);
        impl FrameSource for Seq {
            fn alloc_frame(&mut self) -> Option<Ppn> {
                self.0 += 1;
                Some(Ppn(self.0))
            }
        }
        let (mut sys, own) = setup();
        let mut frames = Seq(400);
        let table = PageTable::new(&mut frames, &mut sys.phys);
        table
            .map(
                VirtAddr(0x3000_0000),
                Ppn(500),
                Perms::RW,
                KeyId::HOST,
                &mut frames,
                &mut sys.phys,
            )
            .unwrap();
        // Plain host frame: fine.
        ConsistencyAudit::run(&mut sys, &own, &[], 0, &[(EnclaveId(1), table)]).unwrap();
        // Mark it enclave without tracking → host-window aliasing caught
        // before the bitmap sweep reaches it? No: sweep runs first, so track
        // it as pool-free to isolate invariant ④.
        sys.bitmap.set(Ppn(500), true, &mut sys.phys).unwrap();
        let err = ConsistencyAudit::run(&mut sys, &own, &[Ppn(500)], 0, &[(EnclaveId(1), table)])
            .unwrap_err();
        assert_eq!(
            err,
            AuditError::HostWindowEnclaveFrame {
                eid: EnclaveId(1),
                va: VirtAddr(0x3000_0000)
            }
        );
    }
}
