//! Model-facing snapshots of the memory-plane structures.
//!
//! The lockstep reference model (`hypertee-model`) diffs abstract sets and
//! maps against the real machine after every pipeline completion. This
//! module provides the read-only capture side: a [`MemSnapshot`] of the
//! bitmap/ownership/pool views, and the TLB-coherence predicate
//! [`stale_tlb_entries`] that checks every resident TLB entry against the
//! page table it is supposed to cache (the paper's stale-TLB prevention
//! argument, §IV-A).

use crate::addr::{KeyId, Ppn, VirtAddr};
use crate::ownership::{OwnershipTable, PageOwner};
use crate::pagetable::{PageTable, Perms};
use crate::phys::PhysMemory;
use crate::system::MemorySystem;
use crate::tlb::{Tlb, TlbEntry};
use crate::MemFault;
use std::collections::{BTreeMap, BTreeSet};

/// A point-in-time capture of who-owns-what across the three memory-plane
/// structures an external checker cares about.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Frames bitmap-marked as enclave memory (the bitmap's own backing
    /// frames are excluded — they are self-protected, not tracked).
    pub enclave_marked: BTreeSet<u64>,
    /// The ownership table: frame → owner.
    pub owned: BTreeMap<u64, PageOwner>,
    /// Frames currently on the pool free list.
    pub pool_free: BTreeSet<u64>,
}

impl MemSnapshot {
    /// Captures the bitmap, ownership table, and pool free list.
    ///
    /// # Errors
    ///
    /// Propagates faults from reading the bitmap's backing memory.
    pub fn capture(
        sys: &mut MemorySystem,
        ownership: &OwnershipTable,
        pool_free: &[Ppn],
    ) -> Result<MemSnapshot, MemFault> {
        let mut snap = MemSnapshot {
            enclave_marked: BTreeSet::new(),
            owned: ownership.iter().map(|(p, o)| (p.0, o)).collect(),
            pool_free: pool_free.iter().map(|p| p.0).collect(),
        };
        for ppn in 0..sys.bitmap.covered_frames {
            if sys.bitmap.is_self_frame(Ppn(ppn)) {
                continue;
            }
            if sys.bitmap.is_enclave(Ppn(ppn), &mut sys.phys)? {
                snap.enclave_marked.insert(ppn);
            }
        }
        Ok(snap)
    }

    /// Frames owned by the given enclave id (raw `u64` form).
    pub fn owned_by_enclave(&self, eid: u64) -> Vec<Ppn> {
        self.owned
            .iter()
            .filter(|(_, o)| matches!(o, PageOwner::Enclave(e) if e.0 == eid))
            .map(|(&p, _)| Ppn(p))
            .collect()
    }
}

/// Why a TLB entry disagrees with the page table it caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaleReason {
    /// The page table no longer maps this virtual page at all.
    Unmapped,
    /// The page table maps the page at a different frame.
    FrameMismatch {
        /// The frame the table currently maps.
        mapped: Ppn,
    },
    /// Permissions differ between entry and PTE.
    PermsMismatch {
        /// The permissions the table currently grants.
        mapped: Perms,
    },
    /// The KeyID differs between entry and PTE.
    KeyMismatch {
        /// The KeyID the table currently carries.
        mapped: KeyId,
    },
}

/// A TLB entry that no longer agrees with the page table — evidence of a
/// missed shootdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleTlbEntry {
    /// The stale cached translation.
    pub entry: TlbEntry,
    /// The virtual address the entry translates.
    pub va: VirtAddr,
    /// How it disagrees with the table.
    pub reason: StaleReason,
}

/// The TLB-coherence predicate: every resident entry must agree with a
/// side-effect-free walk of `table`. Returns all disagreements (empty means
/// coherent). Uses [`Tlb::entries`] so hit/miss statistics are untouched.
///
/// # Errors
///
/// Propagates bus faults from reading page-table memory; a mere missing
/// translation is reported as [`StaleReason::Unmapped`], not an error.
pub fn stale_tlb_entries(
    tlb: &Tlb,
    table: &PageTable,
    mem: &mut PhysMemory,
) -> Result<Vec<StaleTlbEntry>, MemFault> {
    let mut stale = Vec::new();
    for entry in tlb.entries() {
        let va = entry.vpn.base();
        let reason = match table.inspect(va, mem) {
            Ok(pte) if !pte.valid() || !pte.is_leaf() => Some(StaleReason::Unmapped),
            Ok(pte) if pte.ppn() != entry.ppn => {
                Some(StaleReason::FrameMismatch { mapped: pte.ppn() })
            }
            Ok(pte) if pte.key() != entry.key => {
                Some(StaleReason::KeyMismatch { mapped: pte.key() })
            }
            Ok(pte) if pte.perms() != entry.perms => Some(StaleReason::PermsMismatch {
                mapped: pte.perms(),
            }),
            Ok(_) => None,
            Err(MemFault::PageFault { .. }) => Some(StaleReason::Unmapped),
            Err(e) => return Err(e),
        };
        if let Some(reason) = reason {
            stale.push(StaleTlbEntry {
                entry: *entry,
                va,
                reason,
            });
        }
    }
    Ok(stale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::pagetable::FrameSource;

    struct Seq(u64);
    impl FrameSource for Seq {
        fn alloc_frame(&mut self) -> Option<Ppn> {
            self.0 += 1;
            Some(Ppn(self.0))
        }
    }

    #[test]
    fn capture_reflects_bitmap_and_tables() {
        let mut sys = MemorySystem::new(16 << 20, PhysAddr(0x4000));
        let mut own = OwnershipTable::new();
        sys.bitmap.set(Ppn(100), true, &mut sys.phys).unwrap();
        own.claim(Ppn(100), PageOwner::EmsPrivate).unwrap();
        let snap = MemSnapshot::capture(&mut sys, &own, &[Ppn(101)]).unwrap();
        assert!(snap.enclave_marked.contains(&100));
        assert!(snap.owned.contains_key(&100));
        assert!(snap.pool_free.contains(&101));
        assert!(snap.owned_by_enclave(7).is_empty());
    }

    #[test]
    fn coherent_tlb_has_no_stale_entries() {
        let mut sys = MemorySystem::new(16 << 20, PhysAddr(0x4000));
        let mut frames = Seq(200);
        let table = PageTable::new(&mut frames, &mut sys.phys);
        let va = VirtAddr(0x2000_0000);
        table
            .map(
                va,
                Ppn(300),
                Perms::RW,
                KeyId(3),
                &mut frames,
                &mut sys.phys,
            )
            .unwrap();
        let mut tlb = Tlb::new(8);
        tlb.insert(TlbEntry {
            vpn: va.vpn(),
            ppn: Ppn(300),
            perms: Perms::RW,
            key: KeyId(3),
            checked: true,
        });
        assert!(stale_tlb_entries(&tlb, &table, &mut sys.phys)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unmapped_entry_is_reported_stale() {
        let mut sys = MemorySystem::new(16 << 20, PhysAddr(0x4000));
        let mut frames = Seq(200);
        let table = PageTable::new(&mut frames, &mut sys.phys);
        let va = VirtAddr(0x2000_0000);
        table
            .map(
                va,
                Ppn(300),
                Perms::RW,
                KeyId(3),
                &mut frames,
                &mut sys.phys,
            )
            .unwrap();
        let mut tlb = Tlb::new(8);
        tlb.insert(TlbEntry {
            vpn: va.vpn(),
            ppn: Ppn(300),
            perms: Perms::RW,
            key: KeyId(3),
            checked: true,
        });
        // Unmap behind the TLB's back: the entry is now stale.
        table.unmap(va, &mut sys.phys).unwrap();
        let stale = stale_tlb_entries(&tlb, &table, &mut sys.phys).unwrap();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].reason, StaleReason::Unmapped);
        assert_eq!(stale[0].va, va);
    }

    #[test]
    fn remapped_frame_is_reported_stale() {
        let mut sys = MemorySystem::new(16 << 20, PhysAddr(0x4000));
        let mut frames = Seq(200);
        let table = PageTable::new(&mut frames, &mut sys.phys);
        let va = VirtAddr(0x2000_0000);
        table
            .map(
                va,
                Ppn(300),
                Perms::RW,
                KeyId(3),
                &mut frames,
                &mut sys.phys,
            )
            .unwrap();
        let mut tlb = Tlb::new(8);
        tlb.insert(TlbEntry {
            vpn: va.vpn(),
            ppn: Ppn(301),
            perms: Perms::RW,
            key: KeyId(3),
            checked: true,
        });
        let stale = stale_tlb_entries(&tlb, &table, &mut sys.phys).unwrap();
        assert_eq!(stale.len(), 1);
        assert_eq!(
            stale[0].reason,
            StaleReason::FrameMismatch { mapped: Ppn(300) }
        );
    }
}
