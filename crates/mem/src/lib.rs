//! Functional memory subsystem of the HyperTEE reproduction.
//!
//! Everything §IV of the paper describes in hardware is implemented here as
//! *functional* state machines operating on real bytes:
//!
//! * [`addr`] — physical/virtual address newtypes, the 56-bit front-side bus
//!   layout (low 40 bits physical address, high 16 bits KeyID).
//! * [`phys`] — sparse physical memory with a frame allocator.
//! * [`bitmap`] — the enclave-memory bitmap (one bit per physical page) used
//!   for hardware isolation checks (§IV-B, Fig. 5).
//! * [`ownership`] — the page ownership table EMS keeps in private memory,
//!   extended with shared-memory ownership (§IV-B, §V-B).
//! * [`pagetable`] — Sv39 three-level page tables, stored **inside** the
//!   simulated physical memory exactly like the real MMU sees them.
//! * [`tlb`] — a TLB with the "checked" bit of Fig. 5 and selective flush.
//! * [`ptw`] — the page-table walker with integrated bitmap checking.
//! * [`snapshot`] — model-facing captures of bitmap/ownership/pool state and
//!   the TLB-coherence predicate used by the lockstep reference model.
//! * [`mktme`] — the multi-key memory encryption engine with per-KeyID
//!   AES-CTR encryption and the 28-bit SHA-3 integrity MAC.
//! * [`system`] — [`system::MemorySystem`], the façade combining TLB, PTW,
//!   bitmap and encryption into load/store operations with event counters
//!   that the timing model prices.
//!
//! Security behaviour is real, not asserted: reading enclave memory through
//! the wrong KeyID really yields ciphertext and an integrity fault; accessing
//! an enclave page from non-enclave mode really takes the bitmap exception.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod audit;
pub mod bitmap;
pub mod mktme;
pub mod ownership;
pub mod pagetable;
pub mod partition;
pub mod phys;
pub mod ptw;
pub mod snapshot;
pub mod system;
pub mod tlb;
pub mod walkcache;

/// Faults the memory system can raise, mirroring the hardware exceptions in
/// the paper (§IV-B access exception, §IV-C integrity violation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// No valid translation for the virtual address (demand paging entry).
    PageFault {
        /// Faulting virtual address.
        va: u64,
    },
    /// Bitmap check failed: non-enclave access touched an enclave page.
    BitmapViolation {
        /// Offending physical page number.
        ppn: u64,
    },
    /// PTE permissions deny this access (write to read-only, etc.).
    PermissionDenied {
        /// Faulting virtual address.
        va: u64,
    },
    /// The 28-bit memory-integrity MAC did not verify.
    IntegrityViolation {
        /// Offending physical address (line base).
        pa: u64,
    },
    /// A physical access fell outside installed memory.
    BusError {
        /// Offending physical address.
        pa: u64,
    },
}

impl core::fmt::Display for MemFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemFault::PageFault { va } => write!(f, "page fault at va {va:#x}"),
            MemFault::BitmapViolation { ppn } => {
                write!(f, "bitmap violation: enclave page ppn {ppn:#x}")
            }
            MemFault::PermissionDenied { va } => write!(f, "permission denied at va {va:#x}"),
            MemFault::IntegrityViolation { pa } => {
                write!(f, "memory integrity violation at pa {pa:#x}")
            }
            MemFault::BusError { pa } => write!(f, "bus error at pa {pa:#x}"),
        }
    }
}

impl std::error::Error for MemFault {}
