//! Multi-key memory encryption engine with integrity (§IV-C).
//!
//! "HyperTEE leverages a commercial multi-key memory encryption engine,
//! similar to Intel MK-TME and AMD SME. Each enclave is assigned a unique
//! encryption key and identification (KeyID), configured only by EMS via
//! iHub… HyperTEE employs SHA-3 based MAC (28-bit)… In case of an integrity
//! violation, an exception is triggered."
//!
//! The engine sits between the cores and [`crate::phys::PhysMemory`]:
//! physical memory holds *ciphertext* for encrypted KeyIDs. Reads through
//! the wrong KeyID therefore really return garbage and (when integrity is
//! on) really fault — the behaviour the paper's attack-surface analysis
//! (§VIII-C, "PTW cannot decrypt enclave data correctly") relies on.

use crate::addr::{KeyId, PhysAddr};
use crate::phys::PhysMemory;
use crate::MemFault;
use hypertee_crypto::aes::{ctr_iv, Aes128};
use hypertee_crypto::mac::{mac28, mac28_lines, mac28_ref, MacTag, MAC_BATCH_LINES};
use std::collections::HashMap;

/// Memory-line granularity of encryption and MAC (bytes).
pub const LINE_SIZE: u64 = 64;

#[derive(Clone)]
struct KeySlot {
    cipher: Aes128,
    mac_key: [u8; 32],
}

impl core::fmt::Debug for KeySlot {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "KeySlot {{ <redacted> }}")
    }
}

/// Engine event counters (timing-model input), plus host-speed fast-path
/// hit counters (observability only — they price nothing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MktmeStats {
    /// Bytes encrypted on writes.
    pub bytes_encrypted: u64,
    /// Bytes decrypted on reads.
    pub bytes_decrypted: u64,
    /// MAC verifications performed.
    pub mac_checks: u64,
    /// MAC failures raised.
    pub mac_failures: u64,
    /// Writes that covered a whole aligned line and skipped the
    /// read-decrypt-splice RMW (fast path).
    pub full_line_writes: u64,
    /// 16-byte keystream blocks processed through the multi-line span fast
    /// path (one physical-memory round trip for the whole request).
    pub keystream_blocks_batched: u64,
}

/// Lines of MAC tags per [`MacTable`] page (each page covers 32 KiB of
/// protected memory; a tag page costs 2 KiB).
const MAC_PAGE_LINES: u64 = 512;

/// Sentinel for "no tag recorded": real tags are 28-bit, so `u32::MAX`
/// can never collide with one.
const MAC_EMPTY: u32 = u32::MAX;

/// Paged flat MAC store indexed by line number — replaces the previous
/// per-line `HashMap<u64, MacTag>`: one hash probe per 512-line page plus
/// an array index, instead of one probe per line.
#[derive(Debug, Default)]
pub struct MacTable {
    pages: HashMap<u64, Box<[u32]>>,
}

impl MacTable {
    /// Looks up the tag recorded for a line number (`pa / LINE_SIZE`).
    pub fn get(&self, line: u64) -> Option<MacTag> {
        let tag = *self
            .pages
            .get(&(line / MAC_PAGE_LINES))?
            .get((line % MAC_PAGE_LINES) as usize)?;
        (tag != MAC_EMPTY).then_some(MacTag(tag))
    }

    /// Records the tag for a line number.
    pub fn insert(&mut self, line: u64, tag: MacTag) {
        let page = self
            .pages
            .entry(line / MAC_PAGE_LINES)
            .or_insert_with(|| vec![MAC_EMPTY; MAC_PAGE_LINES as usize].into_boxed_slice());
        page[(line % MAC_PAGE_LINES) as usize] = tag.0;
    }

    /// Number of lines with a recorded tag (observability/audits).
    pub fn len(&self) -> usize {
        self.pages
            .values()
            .map(|p| p.iter().filter(|&&t| t != MAC_EMPTY).count())
            .sum()
    }

    /// Whether no line has a recorded tag.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The multi-key engine.
#[derive(Debug)]
pub struct MktmeEngine {
    keys: HashMap<u16, KeySlot>,
    /// Per-line MACs: line number → tag (keyed by the writing key's
    /// MAC key, so re-programming the same key under a new KeyID — the
    /// suspension/resume path of §IV-C — keeps lines verifiable).
    macs: MacTable,
    integrity: bool,
    /// Counters.
    pub stats: MktmeStats,
}

impl MktmeEngine {
    /// Creates an engine; `integrity` enables the 28-bit MAC path.
    pub fn new(integrity: bool) -> Self {
        MktmeEngine {
            keys: HashMap::new(),
            macs: MacTable::default(),
            integrity,
            stats: MktmeStats::default(),
        }
    }

    /// Whether integrity protection is enabled.
    pub fn integrity_enabled(&self) -> bool {
        self.integrity
    }

    /// Programs a key slot. In the real SoC only EMS can reach this register
    /// interface (via iHub); the fabric layer enforces that restriction.
    ///
    /// # Panics
    ///
    /// Panics when programming KeyID 0, which is architecturally plaintext.
    pub fn program_key(&mut self, key: KeyId, aes_key: &[u8; 16], mac_key: &[u8; 32]) {
        assert!(key.is_encrypted(), "KeyID 0 is the plaintext domain");
        self.keys.insert(
            key.0,
            KeySlot {
                cipher: Aes128::new(aes_key),
                mac_key: *mac_key,
            },
        );
    }

    /// Revokes a key slot (KeyID exhaustion handling, §IV-C). Lines written
    /// under the key keep their MACs, so stale reuse is detectable.
    pub fn revoke_key(&mut self, key: KeyId) {
        self.keys.remove(&key.0);
    }

    /// Whether a KeyID currently has a programmed key.
    pub fn key_programmed(&self, key: KeyId) -> bool {
        self.keys.contains_key(&key.0)
    }

    /// Number of programmed keys.
    pub fn keys_in_use(&self) -> usize {
        self.keys.len()
    }

    fn keystream(slot: &KeySlot, line_base: u64, line: &mut [u8]) {
        let iv = ctr_iv(line_base, 0x4d4b_544d_4531_0001); // "MKTME1" domain tag
        slot.cipher.ctr_apply(&iv, line);
    }

    /// [`MktmeEngine::keystream`] over the pre-optimization scalar AES
    /// (reference data plane).
    fn keystream_ref(slot: &KeySlot, line_base: u64, line: &mut [u8]) {
        let iv = ctr_iv(line_base, 0x4d4b_544d_4531_0001);
        slot.cipher.ctr_apply_ref(&iv, line);
    }

    /// Tags for every line of a plaintext span, in line order. Aligned
    /// groups of eight consecutive lines go through the lane-sliced
    /// [`mac28_lines`] batch; the remainder falls back to [`mac28`]. MAC
    /// computation touches neither physical memory nor the engine counters,
    /// so batching is invisible to the timing model.
    fn span_tags(slot: &KeySlot, span_base: u64, span: &[u8]) -> Vec<MacTag> {
        let nlines = span.len() / LINE_SIZE as usize;
        let mut tags = Vec::with_capacity(nlines);
        let mut i = 0usize;
        while i + MAC_BATCH_LINES <= nlines {
            let chunk: &[u8; MAC_BATCH_LINES * LINE_SIZE as usize] = span
                [i * LINE_SIZE as usize..(i + MAC_BATCH_LINES) * LINE_SIZE as usize]
                .try_into()
                .expect("eight lines");
            tags.extend(mac28_lines(
                &slot.mac_key,
                span_base + i as u64 * LINE_SIZE,
                chunk,
            ));
            i += MAC_BATCH_LINES;
        }
        while i < nlines {
            let line_base = span_base + i as u64 * LINE_SIZE;
            tags.push(mac28(
                &slot.mac_key,
                line_base,
                &span[i * LINE_SIZE as usize..(i + 1) * LINE_SIZE as usize],
            ));
            i += 1;
        }
        tags
    }

    /// Writes `data` at `pa` through `key`.
    ///
    /// For encrypted KeyIDs this stores ciphertext at line granularity and
    /// refreshes each line's MAC. Fast paths (host wall-clock only — the
    /// modelled byte/MAC charges are identical to the scalar data plane):
    ///
    /// * a write covering a whole aligned line skips the
    ///   read-decrypt-splice RMW entirely;
    /// * a request spanning several contiguous lines makes one physical
    ///   round trip for the whole span and streams the keystream across it.
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] for unprogrammed encrypted KeyIDs or
    /// out-of-range addresses.
    pub fn write(
        &mut self,
        mem: &mut PhysMemory,
        pa: PhysAddr,
        key: KeyId,
        data: &[u8],
    ) -> Result<(), MemFault> {
        if !key.is_encrypted() {
            return mem.write(pa, data);
        }
        let slot = self
            .keys
            .get(&key.0)
            .ok_or(MemFault::BusError { pa: pa.0 })?;
        self.stats.bytes_encrypted += data.len() as u64;
        let span_base = pa.0 & !(LINE_SIZE - 1);
        let span_end = (pa.0 + data.len() as u64).div_ceil(LINE_SIZE) * LINE_SIZE;
        let nlines = ((span_end - span_base) / LINE_SIZE).max(1);
        if nlines > 1 {
            let mut span = vec![0u8; (span_end - span_base) as usize];
            if mem.read(PhysAddr(span_base), &mut span).is_ok() {
                // The raw-access counter stays on the per-line trajectory
                // (one read + one write per line) even though the span makes
                // a single round trip each way.
                mem.access_count += 2 * (nlines - 1);
                self.stats.keystream_blocks_batched += span.len() as u64 / 16;
                // Pass 1: assemble the plaintext span — decrypt-splice the
                // partial edge lines, copy full lines straight from `data`.
                let mut written = 0usize;
                for (i, line) in span.chunks_mut(LINE_SIZE as usize).enumerate() {
                    let line_base = span_base + i as u64 * LINE_SIZE;
                    let off = (pa.0.max(line_base) - line_base) as usize;
                    let take = (LINE_SIZE as usize - off).min(data.len() - written);
                    if off == 0 && take == LINE_SIZE as usize {
                        // Full line: the fetched ciphertext is irrelevant.
                        line.copy_from_slice(&data[written..written + take]);
                        self.stats.full_line_writes += 1;
                    } else {
                        Self::keystream(slot, line_base, line);
                        line[off..off + take].copy_from_slice(&data[written..written + take]);
                    }
                    written += take;
                }
                // MAC the plaintext span eight lines at a time, then
                // re-encrypt it in place.
                if self.integrity {
                    for (i, tag) in Self::span_tags(slot, span_base, &span)
                        .into_iter()
                        .enumerate()
                    {
                        self.macs.insert(span_base / LINE_SIZE + i as u64, tag);
                    }
                }
                for (i, line) in span.chunks_mut(LINE_SIZE as usize).enumerate() {
                    Self::keystream(slot, span_base + i as u64 * LINE_SIZE, line);
                }
                return mem.write(PhysAddr(span_base), &span);
            }
            // Span read refused (range straddles the end of installed
            // memory): fall through to the per-line path, which faults at
            // exactly the line the scalar data plane would.
        }
        let mut written = 0usize;
        let mut addr = pa.0;
        while written < data.len() {
            let line_base = addr & !(LINE_SIZE - 1);
            let off = (addr - line_base) as usize;
            let take = (LINE_SIZE as usize - off).min(data.len() - written);
            let mut line = [0u8; LINE_SIZE as usize];
            if off == 0 && take == LINE_SIZE as usize {
                // Full aligned line: skip the fetch-decrypt-splice RMW. The
                // raw read still happens so the access trajectory (and any
                // fault it would raise) is unchanged.
                mem.read(PhysAddr(line_base), &mut line)?;
                line.copy_from_slice(&data[written..written + take]);
                self.stats.full_line_writes += 1;
            } else {
                // Fetch the current line ciphertext and decrypt it.
                mem.read(PhysAddr(line_base), &mut line)?;
                Self::keystream(slot, line_base, &mut line);
                // Splice in the new plaintext bytes.
                line[off..off + take].copy_from_slice(&data[written..written + take]);
            }
            // Refresh the MAC over the plaintext line.
            if self.integrity {
                let tag = mac28(&slot.mac_key, line_base, &line);
                self.macs.insert(line_base / LINE_SIZE, tag);
            }
            // Re-encrypt and store.
            Self::keystream(slot, line_base, &mut line);
            mem.write(PhysAddr(line_base), &line)?;
            written += take;
            addr += take as u64;
        }
        Ok(())
    }

    /// Reads through `key` into `buf`.
    ///
    /// Requests spanning several contiguous lines make one physical round
    /// trip for the whole span; per-line MAC verification, fill order, and
    /// every fault are identical to the scalar data plane.
    ///
    /// # Errors
    ///
    /// [`MemFault::IntegrityViolation`] when a MAC check fails (tampering,
    /// wrong KeyID, or unauthenticated data); [`MemFault::BusError`] for
    /// unprogrammed encrypted KeyIDs or out-of-range addresses.
    pub fn read(
        &mut self,
        mem: &mut PhysMemory,
        pa: PhysAddr,
        key: KeyId,
        buf: &mut [u8],
    ) -> Result<(), MemFault> {
        if !key.is_encrypted() {
            return mem.read(pa, buf);
        }
        let slot = self
            .keys
            .get(&key.0)
            .ok_or(MemFault::BusError { pa: pa.0 })?;
        self.stats.bytes_decrypted += buf.len() as u64;
        let span_base = pa.0 & !(LINE_SIZE - 1);
        let span_end = (pa.0 + buf.len() as u64).div_ceil(LINE_SIZE) * LINE_SIZE;
        let nlines = ((span_end - span_base) / LINE_SIZE).max(1);
        if nlines > 1 {
            let mut span = vec![0u8; (span_end - span_base) as usize];
            if mem.read(PhysAddr(span_base), &mut span).is_ok() {
                self.stats.keystream_blocks_batched += span.len() as u64 / 16;
                // Decrypt the whole span and batch-compute the expected tags
                // up front (neither touches memory or counters); comparisons
                // below stay strictly per-line so counter trajectories and
                // the first-failing-line fault are identical to the scalar
                // data plane.
                for (i, line) in span.chunks_mut(LINE_SIZE as usize).enumerate() {
                    Self::keystream(slot, span_base + i as u64 * LINE_SIZE, line);
                }
                let tags = if self.integrity {
                    Self::span_tags(slot, span_base, &span)
                } else {
                    Vec::new()
                };
                let mut done = 0usize;
                for (i, line) in span.chunks(LINE_SIZE as usize).enumerate() {
                    let line_base = span_base + i as u64 * LINE_SIZE;
                    if i > 0 {
                        // Keep the raw-access counter on the per-line
                        // trajectory, including after an early MAC-failure
                        // return (k+1 line reads for a failure at line k).
                        mem.access_count += 1;
                    }
                    let off = (pa.0.max(line_base) - line_base) as usize;
                    let take = (LINE_SIZE as usize - off).min(buf.len() - done);
                    if self.integrity {
                        self.stats.mac_checks += 1;
                        let valid = match self.macs.get(line_base / LINE_SIZE) {
                            Some(tag) => tags[i] == tag,
                            None => false,
                        };
                        if !valid {
                            self.stats.mac_failures += 1;
                            return Err(MemFault::IntegrityViolation { pa: line_base });
                        }
                    }
                    buf[done..done + take].copy_from_slice(&line[off..off + take]);
                    done += take;
                }
                return Ok(());
            }
            // Fall through: fault at exactly the line the scalar path would.
        }
        let mut done = 0usize;
        let mut addr = pa.0;
        while done < buf.len() {
            let line_base = addr & !(LINE_SIZE - 1);
            let off = (addr - line_base) as usize;
            let take = (LINE_SIZE as usize - off).min(buf.len() - done);
            let mut line = [0u8; LINE_SIZE as usize];
            mem.read(PhysAddr(line_base), &mut line)?;
            Self::keystream(slot, line_base, &mut line);
            if self.integrity {
                self.stats.mac_checks += 1;
                let valid = match self.macs.get(line_base / LINE_SIZE) {
                    Some(tag) => mac28(&slot.mac_key, line_base, &line) == tag,
                    None => false,
                };
                if !valid {
                    self.stats.mac_failures += 1;
                    return Err(MemFault::IntegrityViolation { pa: line_base });
                }
            }
            buf[done..done + take].copy_from_slice(&line[off..off + take]);
            done += take;
            addr += take as u64;
        }
        Ok(())
    }

    /// The seed's scalar write path (per-line RMW, cloned key slot, scalar
    /// AES/Keccak), kept verbatim as the differential oracle and the
    /// "before" measurement of the tracked benchmark pipeline. Shares the
    /// key and MAC state with the optimized path, so the two can be
    /// interleaved freely.
    ///
    /// # Errors
    ///
    /// As [`MktmeEngine::write`].
    pub fn write_ref(
        &mut self,
        mem: &mut PhysMemory,
        pa: PhysAddr,
        key: KeyId,
        data: &[u8],
    ) -> Result<(), MemFault> {
        if !key.is_encrypted() {
            return mem.write(pa, data);
        }
        let slot = self
            .keys
            .get(&key.0)
            .cloned()
            .ok_or(MemFault::BusError { pa: pa.0 })?;
        self.stats.bytes_encrypted += data.len() as u64;
        let mut written = 0usize;
        let mut addr = pa.0;
        while written < data.len() {
            let line_base = addr & !(LINE_SIZE - 1);
            let off = (addr - line_base) as usize;
            let take = (LINE_SIZE as usize - off).min(data.len() - written);
            let mut line = [0u8; LINE_SIZE as usize];
            mem.read(PhysAddr(line_base), &mut line)?;
            Self::keystream_ref(&slot, line_base, &mut line);
            line[off..off + take].copy_from_slice(&data[written..written + take]);
            if self.integrity {
                let tag = mac28_ref(&slot.mac_key, line_base, &line);
                self.macs.insert(line_base / LINE_SIZE, tag);
            }
            Self::keystream_ref(&slot, line_base, &mut line);
            mem.write(PhysAddr(line_base), &line)?;
            written += take;
            addr += take as u64;
        }
        Ok(())
    }

    /// The seed's scalar read path — differential oracle and benchmark
    /// baseline for [`MktmeEngine::read`].
    ///
    /// # Errors
    ///
    /// As [`MktmeEngine::read`].
    pub fn read_ref(
        &mut self,
        mem: &mut PhysMemory,
        pa: PhysAddr,
        key: KeyId,
        buf: &mut [u8],
    ) -> Result<(), MemFault> {
        if !key.is_encrypted() {
            return mem.read(pa, buf);
        }
        let slot = self
            .keys
            .get(&key.0)
            .cloned()
            .ok_or(MemFault::BusError { pa: pa.0 })?;
        self.stats.bytes_decrypted += buf.len() as u64;
        let mut done = 0usize;
        let mut addr = pa.0;
        while done < buf.len() {
            let line_base = addr & !(LINE_SIZE - 1);
            let off = (addr - line_base) as usize;
            let take = (LINE_SIZE as usize - off).min(buf.len() - done);
            let mut line = [0u8; LINE_SIZE as usize];
            mem.read(PhysAddr(line_base), &mut line)?;
            Self::keystream_ref(&slot, line_base, &mut line);
            if self.integrity {
                self.stats.mac_checks += 1;
                let valid = match self.macs.get(line_base / LINE_SIZE) {
                    Some(tag) => mac28_ref(&slot.mac_key, line_base, &line) == tag,
                    None => false,
                };
                if !valid {
                    self.stats.mac_failures += 1;
                    return Err(MemFault::IntegrityViolation { pa: line_base });
                }
            }
            buf[done..done + take].copy_from_slice(&line[off..off + take]);
            done += take;
            addr += take as u64;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMemory, MktmeEngine) {
        let mem = PhysMemory::new(4 << 20);
        let mut engine = MktmeEngine::new(true);
        engine.program_key(KeyId(1), &[0x11; 16], &[0xa1; 32]);
        engine.program_key(KeyId(2), &[0x22; 16], &[0xa2; 32]);
        (mem, engine)
    }

    #[test]
    fn encrypted_roundtrip() {
        let (mut mem, mut engine) = setup();
        let pa = PhysAddr(0x10_000);
        engine
            .write(&mut mem, pa, KeyId(1), b"enclave secret data")
            .unwrap();
        let mut buf = [0u8; 19];
        engine.read(&mut mem, pa, KeyId(1), &mut buf).unwrap();
        assert_eq!(&buf, b"enclave secret data");
    }

    #[test]
    fn memory_holds_ciphertext() {
        let (mut mem, mut engine) = setup();
        let pa = PhysAddr(0x10_000);
        engine
            .write(&mut mem, pa, KeyId(1), b"enclave secret data")
            .unwrap();
        // A raw (host KeyID 0) read sees ciphertext, not the plaintext.
        let mut raw = [0u8; 19];
        mem.read(pa, &mut raw).unwrap();
        assert_ne!(&raw, b"enclave secret data");
    }

    #[test]
    fn wrong_keyid_read_faults() {
        let (mut mem, mut engine) = setup();
        let pa = PhysAddr(0x20_000);
        engine.write(&mut mem, pa, KeyId(1), &[0x5a; 64]).unwrap();
        let mut buf = [0u8; 64];
        assert!(matches!(
            engine.read(&mut mem, pa, KeyId(2), &mut buf),
            Err(MemFault::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn physical_tampering_detected() {
        let (mut mem, mut engine) = setup();
        let pa = PhysAddr(0x30_000);
        engine.write(&mut mem, pa, KeyId(1), &[7u8; 64]).unwrap();
        // Attacker flips a ciphertext bit through the plaintext domain.
        let mut raw = [0u8; 1];
        mem.read(pa, &mut raw).unwrap();
        raw[0] ^= 0x80;
        mem.write(pa, &raw).unwrap();
        let mut buf = [0u8; 64];
        assert!(matches!(
            engine.read(&mut mem, pa, KeyId(1), &mut buf),
            Err(MemFault::IntegrityViolation { .. })
        ));
        assert_eq!(engine.stats.mac_failures, 1);
    }

    #[test]
    fn unauthenticated_lines_rejected() {
        let (mut mem, mut engine) = setup();
        // Nothing was ever written with KeyID 1 at this line.
        let mut buf = [0u8; 16];
        assert!(matches!(
            engine.read(&mut mem, PhysAddr(0x40_000), KeyId(1), &mut buf),
            Err(MemFault::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn unprogrammed_key_is_bus_error() {
        let (mut mem, mut engine) = setup();
        let mut buf = [0u8; 8];
        assert!(matches!(
            engine.read(&mut mem, PhysAddr(0x1000), KeyId(9), &mut buf),
            Err(MemFault::BusError { .. })
        ));
        assert!(engine
            .write(&mut mem, PhysAddr(0x1000), KeyId(9), &[0; 8])
            .is_err());
    }

    #[test]
    fn partial_line_write_preserves_rest() {
        let (mut mem, mut engine) = setup();
        let pa = PhysAddr(0x50_000);
        engine.write(&mut mem, pa, KeyId(1), &[0xaa; 64]).unwrap();
        // Overwrite 8 bytes in the middle of the line.
        engine
            .write(&mut mem, PhysAddr(pa.0 + 20), KeyId(1), &[0xbb; 8])
            .unwrap();
        let mut buf = [0u8; 64];
        engine.read(&mut mem, pa, KeyId(1), &mut buf).unwrap();
        assert_eq!(&buf[..20], &[0xaa; 20]);
        assert_eq!(&buf[20..28], &[0xbb; 8]);
        assert_eq!(&buf[28..], &[0xaa; 36]);
    }

    #[test]
    fn key_revocation() {
        let (mut mem, mut engine) = setup();
        let pa = PhysAddr(0x60_000);
        engine.write(&mut mem, pa, KeyId(1), &[1u8; 64]).unwrap();
        engine.revoke_key(KeyId(1));
        assert!(!engine.key_programmed(KeyId(1)));
        let mut buf = [0u8; 64];
        assert!(engine.read(&mut mem, pa, KeyId(1), &mut buf).is_err());
        // Reprogramming with a different key does not resurrect plaintext.
        engine.program_key(KeyId(1), &[0x99; 16], &[0x88; 32]);
        assert!(matches!(
            engine.read(&mut mem, pa, KeyId(1), &mut buf),
            Err(MemFault::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn host_keyid_bypasses_engine() {
        let (mut mem, mut engine) = setup();
        engine
            .write(&mut mem, PhysAddr(0x100), KeyId::HOST, b"plain")
            .unwrap();
        let mut raw = [0u8; 5];
        mem.read(PhysAddr(0x100), &mut raw).unwrap();
        assert_eq!(&raw, b"plain");
        assert_eq!(engine.stats.bytes_encrypted, 0);
    }

    #[test]
    fn distinct_keys_produce_distinct_ciphertexts() {
        let (mut mem, mut engine) = setup();
        engine
            .write(&mut mem, PhysAddr(0x1000), KeyId(1), &[0u8; 64])
            .unwrap();
        engine
            .write(&mut mem, PhysAddr(0x2000), KeyId(2), &[0u8; 64])
            .unwrap();
        let mut c1 = [0u8; 64];
        let mut c2 = [0u8; 64];
        mem.read(PhysAddr(0x1000), &mut c1).unwrap();
        mem.read(PhysAddr(0x2000), &mut c2).unwrap();
        assert_ne!(c1, c2);
        assert_ne!(c1, [0u8; 64]);
    }
}
