//! Multi-key memory encryption engine with integrity (§IV-C).
//!
//! "HyperTEE leverages a commercial multi-key memory encryption engine,
//! similar to Intel MK-TME and AMD SME. Each enclave is assigned a unique
//! encryption key and identification (KeyID), configured only by EMS via
//! iHub… HyperTEE employs SHA-3 based MAC (28-bit)… In case of an integrity
//! violation, an exception is triggered."
//!
//! The engine sits between the cores and [`crate::phys::PhysMemory`]:
//! physical memory holds *ciphertext* for encrypted KeyIDs. Reads through
//! the wrong KeyID therefore really return garbage and (when integrity is
//! on) really fault — the behaviour the paper's attack-surface analysis
//! (§VIII-C, "PTW cannot decrypt enclave data correctly") relies on.

use crate::addr::{KeyId, PhysAddr};
use crate::phys::PhysMemory;
use crate::MemFault;
use hypertee_crypto::aes::{ctr_iv, Aes128};
use hypertee_crypto::mac::{mac28, MacTag};
use std::collections::HashMap;

/// Memory-line granularity of encryption and MAC (bytes).
pub const LINE_SIZE: u64 = 64;

#[derive(Clone)]
struct KeySlot {
    cipher: Aes128,
    mac_key: [u8; 32],
}

impl core::fmt::Debug for KeySlot {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "KeySlot {{ <redacted> }}")
    }
}

/// Engine event counters (timing-model input).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MktmeStats {
    /// Bytes encrypted on writes.
    pub bytes_encrypted: u64,
    /// Bytes decrypted on reads.
    pub bytes_decrypted: u64,
    /// MAC verifications performed.
    pub mac_checks: u64,
    /// MAC failures raised.
    pub mac_failures: u64,
}

/// The multi-key engine.
#[derive(Debug)]
pub struct MktmeEngine {
    keys: HashMap<u16, KeySlot>,
    /// Per-line MACs: line base address → tag (keyed by the writing key's
    /// MAC key, so re-programming the same key under a new KeyID — the
    /// suspension/resume path of §IV-C — keeps lines verifiable).
    macs: HashMap<u64, MacTag>,
    integrity: bool,
    /// Counters.
    pub stats: MktmeStats,
}

impl MktmeEngine {
    /// Creates an engine; `integrity` enables the 28-bit MAC path.
    pub fn new(integrity: bool) -> Self {
        MktmeEngine {
            keys: HashMap::new(),
            macs: HashMap::new(),
            integrity,
            stats: MktmeStats::default(),
        }
    }

    /// Whether integrity protection is enabled.
    pub fn integrity_enabled(&self) -> bool {
        self.integrity
    }

    /// Programs a key slot. In the real SoC only EMS can reach this register
    /// interface (via iHub); the fabric layer enforces that restriction.
    ///
    /// # Panics
    ///
    /// Panics when programming KeyID 0, which is architecturally plaintext.
    pub fn program_key(&mut self, key: KeyId, aes_key: &[u8; 16], mac_key: &[u8; 32]) {
        assert!(key.is_encrypted(), "KeyID 0 is the plaintext domain");
        self.keys.insert(
            key.0,
            KeySlot {
                cipher: Aes128::new(aes_key),
                mac_key: *mac_key,
            },
        );
    }

    /// Revokes a key slot (KeyID exhaustion handling, §IV-C). Lines written
    /// under the key keep their MACs, so stale reuse is detectable.
    pub fn revoke_key(&mut self, key: KeyId) {
        self.keys.remove(&key.0);
    }

    /// Whether a KeyID currently has a programmed key.
    pub fn key_programmed(&self, key: KeyId) -> bool {
        self.keys.contains_key(&key.0)
    }

    /// Number of programmed keys.
    pub fn keys_in_use(&self) -> usize {
        self.keys.len()
    }

    fn keystream(slot: &KeySlot, line_base: u64, line: &mut [u8]) {
        let iv = ctr_iv(line_base, 0x4d4b_544d_4531_0001); // "MKTME1" domain tag
        slot.cipher.ctr_apply(&iv, line);
    }

    /// Writes `data` at `pa` through `key`.
    ///
    /// For encrypted KeyIDs this performs read-modify-write at line
    /// granularity, stores ciphertext, and refreshes each line's MAC.
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] for unprogrammed encrypted KeyIDs or
    /// out-of-range addresses.
    pub fn write(
        &mut self,
        mem: &mut PhysMemory,
        pa: PhysAddr,
        key: KeyId,
        data: &[u8],
    ) -> Result<(), MemFault> {
        if !key.is_encrypted() {
            return mem.write(pa, data);
        }
        let slot = self
            .keys
            .get(&key.0)
            .cloned()
            .ok_or(MemFault::BusError { pa: pa.0 })?;
        self.stats.bytes_encrypted += data.len() as u64;
        let mut written = 0usize;
        let mut addr = pa.0;
        while written < data.len() {
            let line_base = addr & !(LINE_SIZE - 1);
            let off = (addr - line_base) as usize;
            let take = (LINE_SIZE as usize - off).min(data.len() - written);
            // Fetch the current line ciphertext and decrypt it.
            let mut line = [0u8; LINE_SIZE as usize];
            mem.read(PhysAddr(line_base), &mut line)?;
            Self::keystream(&slot, line_base, &mut line);
            // Splice in the new plaintext bytes.
            line[off..off + take].copy_from_slice(&data[written..written + take]);
            // Refresh the MAC over the plaintext line.
            if self.integrity {
                let tag = mac28(&slot.mac_key, line_base, &line);
                self.macs.insert(line_base, tag);
            }
            // Re-encrypt and store.
            Self::keystream(&slot, line_base, &mut line);
            mem.write(PhysAddr(line_base), &line)?;
            written += take;
            addr += take as u64;
        }
        Ok(())
    }

    /// Reads through `key` into `buf`.
    ///
    /// # Errors
    ///
    /// [`MemFault::IntegrityViolation`] when a MAC check fails (tampering,
    /// wrong KeyID, or unauthenticated data); [`MemFault::BusError`] for
    /// unprogrammed encrypted KeyIDs or out-of-range addresses.
    pub fn read(
        &mut self,
        mem: &mut PhysMemory,
        pa: PhysAddr,
        key: KeyId,
        buf: &mut [u8],
    ) -> Result<(), MemFault> {
        if !key.is_encrypted() {
            return mem.read(pa, buf);
        }
        let slot = self
            .keys
            .get(&key.0)
            .cloned()
            .ok_or(MemFault::BusError { pa: pa.0 })?;
        self.stats.bytes_decrypted += buf.len() as u64;
        let mut done = 0usize;
        let mut addr = pa.0;
        while done < buf.len() {
            let line_base = addr & !(LINE_SIZE - 1);
            let off = (addr - line_base) as usize;
            let take = (LINE_SIZE as usize - off).min(buf.len() - done);
            let mut line = [0u8; LINE_SIZE as usize];
            mem.read(PhysAddr(line_base), &mut line)?;
            Self::keystream(&slot, line_base, &mut line);
            if self.integrity {
                self.stats.mac_checks += 1;
                let valid = match self.macs.get(&line_base) {
                    Some(&tag) => mac28(&slot.mac_key, line_base, &line) == tag,
                    None => false,
                };
                if !valid {
                    self.stats.mac_failures += 1;
                    return Err(MemFault::IntegrityViolation { pa: line_base });
                }
            }
            buf[done..done + take].copy_from_slice(&line[off..off + take]);
            done += take;
            addr += take as u64;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMemory, MktmeEngine) {
        let mem = PhysMemory::new(4 << 20);
        let mut engine = MktmeEngine::new(true);
        engine.program_key(KeyId(1), &[0x11; 16], &[0xa1; 32]);
        engine.program_key(KeyId(2), &[0x22; 16], &[0xa2; 32]);
        (mem, engine)
    }

    #[test]
    fn encrypted_roundtrip() {
        let (mut mem, mut engine) = setup();
        let pa = PhysAddr(0x10_000);
        engine
            .write(&mut mem, pa, KeyId(1), b"enclave secret data")
            .unwrap();
        let mut buf = [0u8; 19];
        engine.read(&mut mem, pa, KeyId(1), &mut buf).unwrap();
        assert_eq!(&buf, b"enclave secret data");
    }

    #[test]
    fn memory_holds_ciphertext() {
        let (mut mem, mut engine) = setup();
        let pa = PhysAddr(0x10_000);
        engine
            .write(&mut mem, pa, KeyId(1), b"enclave secret data")
            .unwrap();
        // A raw (host KeyID 0) read sees ciphertext, not the plaintext.
        let mut raw = [0u8; 19];
        mem.read(pa, &mut raw).unwrap();
        assert_ne!(&raw, b"enclave secret data");
    }

    #[test]
    fn wrong_keyid_read_faults() {
        let (mut mem, mut engine) = setup();
        let pa = PhysAddr(0x20_000);
        engine.write(&mut mem, pa, KeyId(1), &[0x5a; 64]).unwrap();
        let mut buf = [0u8; 64];
        assert!(matches!(
            engine.read(&mut mem, pa, KeyId(2), &mut buf),
            Err(MemFault::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn physical_tampering_detected() {
        let (mut mem, mut engine) = setup();
        let pa = PhysAddr(0x30_000);
        engine.write(&mut mem, pa, KeyId(1), &[7u8; 64]).unwrap();
        // Attacker flips a ciphertext bit through the plaintext domain.
        let mut raw = [0u8; 1];
        mem.read(pa, &mut raw).unwrap();
        raw[0] ^= 0x80;
        mem.write(pa, &raw).unwrap();
        let mut buf = [0u8; 64];
        assert!(matches!(
            engine.read(&mut mem, pa, KeyId(1), &mut buf),
            Err(MemFault::IntegrityViolation { .. })
        ));
        assert_eq!(engine.stats.mac_failures, 1);
    }

    #[test]
    fn unauthenticated_lines_rejected() {
        let (mut mem, mut engine) = setup();
        // Nothing was ever written with KeyID 1 at this line.
        let mut buf = [0u8; 16];
        assert!(matches!(
            engine.read(&mut mem, PhysAddr(0x40_000), KeyId(1), &mut buf),
            Err(MemFault::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn unprogrammed_key_is_bus_error() {
        let (mut mem, mut engine) = setup();
        let mut buf = [0u8; 8];
        assert!(matches!(
            engine.read(&mut mem, PhysAddr(0x1000), KeyId(9), &mut buf),
            Err(MemFault::BusError { .. })
        ));
        assert!(engine
            .write(&mut mem, PhysAddr(0x1000), KeyId(9), &[0; 8])
            .is_err());
    }

    #[test]
    fn partial_line_write_preserves_rest() {
        let (mut mem, mut engine) = setup();
        let pa = PhysAddr(0x50_000);
        engine.write(&mut mem, pa, KeyId(1), &[0xaa; 64]).unwrap();
        // Overwrite 8 bytes in the middle of the line.
        engine
            .write(&mut mem, PhysAddr(pa.0 + 20), KeyId(1), &[0xbb; 8])
            .unwrap();
        let mut buf = [0u8; 64];
        engine.read(&mut mem, pa, KeyId(1), &mut buf).unwrap();
        assert_eq!(&buf[..20], &[0xaa; 20]);
        assert_eq!(&buf[20..28], &[0xbb; 8]);
        assert_eq!(&buf[28..], &[0xaa; 36]);
    }

    #[test]
    fn key_revocation() {
        let (mut mem, mut engine) = setup();
        let pa = PhysAddr(0x60_000);
        engine.write(&mut mem, pa, KeyId(1), &[1u8; 64]).unwrap();
        engine.revoke_key(KeyId(1));
        assert!(!engine.key_programmed(KeyId(1)));
        let mut buf = [0u8; 64];
        assert!(engine.read(&mut mem, pa, KeyId(1), &mut buf).is_err());
        // Reprogramming with a different key does not resurrect plaintext.
        engine.program_key(KeyId(1), &[0x99; 16], &[0x88; 32]);
        assert!(matches!(
            engine.read(&mut mem, pa, KeyId(1), &mut buf),
            Err(MemFault::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn host_keyid_bypasses_engine() {
        let (mut mem, mut engine) = setup();
        engine
            .write(&mut mem, PhysAddr(0x100), KeyId::HOST, b"plain")
            .unwrap();
        let mut raw = [0u8; 5];
        mem.read(PhysAddr(0x100), &mut raw).unwrap();
        assert_eq!(&raw, b"plain");
        assert_eq!(engine.stats.bytes_encrypted, 0);
    }

    #[test]
    fn distinct_keys_produce_distinct_ciphertexts() {
        let (mut mem, mut engine) = setup();
        engine
            .write(&mut mem, PhysAddr(0x1000), KeyId(1), &[0u8; 64])
            .unwrap();
        engine
            .write(&mut mem, PhysAddr(0x2000), KeyId(2), &[0u8; 64])
            .unwrap();
        let mut c1 = [0u8; 64];
        let mut c2 = [0u8; 64];
        mem.read(PhysAddr(0x1000), &mut c1).unwrap();
        mem.read(PhysAddr(0x2000), &mut c2).unwrap();
        assert_ne!(c1, c2);
        assert_ne!(c1, [0u8; 64]);
    }
}
