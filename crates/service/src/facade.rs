//! The fail-closed service facade: readiness gating, challenge-response
//! attestation, and MAC-authenticated calls over the machine.
//!
//! The facade is a thin trusted layer *inside* the platform boundary: it
//! borrows the [`Machine`] per call (it never owns it) and it is
//! clock-agnostic — every entry point takes the caller's `now` tick, so the
//! chaos harness can drive it from simulated time and replay it
//! bit-identically from a seed.
//!
//! The lifecycle is fail-closed end to end:
//!
//! 1. **Booting** — liveness only. Every RPC is refused with
//!    [`ServiceError::NotReady`] until [`ServiceFacade::probe`] has verified
//!    the boot measurement chain *and* a fresh EMS self-attestation.
//! 2. **Ready** — traffic is admitted, but only through nonce-bound
//!    challenges (freshness window, single use) and MAC-bound session
//!    tokens (expiry, per-session sequence numbers, epoch pinning).
//! 3. **Failed** — any probe failure latches the facade shut; it never
//!    silently degrades into serving unattested traffic.
//!
//! An EMS crash-restart bumps the platform epoch: [`ServiceFacade::supervise`]
//! revokes every outstanding session and re-runs the probe, forcing every
//! client back through attestation.

use std::collections::{BTreeMap, VecDeque};

use hypertee::machine::{firmware, Machine};
use hypertee::manifest::EnclaveManifest;
use hypertee_crypto::chacha::ChaChaRng;
use hypertee_crypto::hmac::hmac_sha256;
use hypertee_crypto::sha256::sha256;
use hypertee_crypto::util::ct_eq;
use hypertee_ems::attest::{SigmaMsg1, SigmaMsg2};
use hypertee_ems::boot::BootStage;

/// The canonical service-enclave image measured at probe time. Clients pin
/// the resulting enclave measurement (exposed by
/// [`ServiceFacade::service_measurement`]) for their SIGMA verification.
pub const SERVICE_IMAGE: &[u8] = b"hypertee-service enclave v1: seal/unseal/quote worker";

/// Deployment mode of a facade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceMode {
    /// Full verification: boot chain, self-attestation, token MACs.
    Production,
    /// A development shim that would skip attestation. Deliberately
    /// unconstructible through [`ServiceFacade::new`] — the guardrail that a
    /// dev build can never serve production traffic.
    DevShim,
}

/// Facade configuration. All windows are in caller ticks (the facade has no
/// clock of its own).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Deployment mode ([`ServiceMode::DevShim`] is refused at construction).
    pub mode: ServiceMode,
    /// The pinned platform measurement the boot report must match.
    pub expected_platform_measurement: [u8; 32],
    /// How many ticks a challenge stays answerable after issue.
    pub freshness_window_ticks: u64,
    /// Session-token lifetime in ticks.
    pub token_ttl_ticks: u64,
    /// Bound on outstanding challenges (oldest are evicted).
    pub max_pending_challenges: usize,
    /// Seed for the facade's nonce generator.
    pub seed: u64,
}

impl ServiceConfig {
    /// A production config pinning the canonical firmware of this
    /// reproduction (see [`pinned_platform_measurement`]).
    pub fn production(seed: u64) -> ServiceConfig {
        ServiceConfig {
            mode: ServiceMode::Production,
            expected_platform_measurement: pinned_platform_measurement(),
            freshness_window_ticks: 64,
            token_ttl_ticks: 4096,
            max_pending_challenges: 1024,
            seed,
        }
    }
}

/// The platform measurement a verifier expects from the canonical firmware:
/// `H(H(runtime) ‖ H(emcall))`, exactly as `secure_boot` computes it. This
/// is the "manufacturer-published" reference value services pin.
pub fn pinned_platform_measurement() -> [u8; 32] {
    let runtime_hash = sha256(firmware::EMS_RUNTIME);
    let emcall_hash = sha256(firmware::EMCALL);
    let mut m = Vec::with_capacity(64);
    m.extend_from_slice(&runtime_hash);
    m.extend_from_slice(&emcall_hash);
    sha256(&m)
}

/// Lifecycle state of the facade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceState {
    /// Probes have not passed yet; all RPCs are refused.
    Booting,
    /// Probes verified; attested traffic is admitted.
    Ready,
    /// A probe failed; the facade is latched shut.
    Failed,
}

/// Why the facade refused (or could not serve) a request. Every variant is
/// a *closed* outcome — there is no partial service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The facade is not in [`ServiceState::Ready`].
    NotReady,
    /// A startup probe failed the stated check; the facade is latched.
    ProbeFailed(&'static str),
    /// [`ServiceMode::DevShim`] was refused at construction.
    DevShimRefused,
    /// The challenge id was never issued (or already evicted).
    UnknownChallenge,
    /// The challenge was answered once already (replay).
    ChallengeConsumed,
    /// `SigmaMsg1` carried a nonce that does not match the challenge.
    NonceMismatch,
    /// The challenge outlived the freshness window.
    StaleChallenge,
    /// The EMS rejected the handshake (bad key, replayed nonce, …).
    AttestFailed,
    /// No session under that token id.
    UnknownSession,
    /// The token MAC did not verify (forged or bit-flipped token).
    BadToken,
    /// The token was minted in an earlier platform epoch (pre-crash).
    EpochRevoked,
    /// The token outlived its TTL.
    TokenExpired,
    /// The request sequence number was not the next expected one
    /// (duplicate or replayed frame).
    BadSequence,
    /// The request MAC did not verify under the session key.
    BadRequestMac,
    /// The EMS backend refused the operation itself.
    Backend,
}

impl core::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServiceError::NotReady => write!(f, "service not ready: traffic refused"),
            ServiceError::ProbeFailed(why) => write!(f, "startup probe failed: {why}"),
            ServiceError::DevShimRefused => {
                write!(f, "dev-shim mode refused: attestation cannot be skipped")
            }
            ServiceError::UnknownChallenge => write!(f, "unknown challenge id"),
            ServiceError::ChallengeConsumed => write!(f, "challenge already consumed"),
            ServiceError::NonceMismatch => write!(f, "challenge nonce mismatch"),
            ServiceError::StaleChallenge => write!(f, "challenge outside freshness window"),
            ServiceError::AttestFailed => write!(f, "attestation handshake rejected"),
            ServiceError::UnknownSession => write!(f, "unknown session token"),
            ServiceError::BadToken => write!(f, "session token MAC invalid"),
            ServiceError::EpochRevoked => write!(f, "token epoch revoked by crash-restart"),
            ServiceError::TokenExpired => write!(f, "session token expired"),
            ServiceError::BadSequence => write!(f, "bad request sequence (replay/duplicate)"),
            ServiceError::BadRequestMac => write!(f, "request MAC invalid"),
            ServiceError::Backend => write!(f, "backend operation failed"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Shorthand result.
pub type ServiceResult<T> = Result<T, ServiceError>;

/// An authenticated operation a session may request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceOp {
    /// Echo (connectivity check inside an authenticated session).
    Ping(Vec<u8>),
    /// Seal data under the service enclave's identity.
    Seal(Vec<u8>),
    /// Unseal a previously sealed blob.
    Unseal(Vec<u8>),
    /// Produce a quote over caller report data.
    Quote([u8; 32]),
}

impl ServiceOp {
    /// Canonical wire encoding the request MAC covers.
    pub fn encode(&self) -> Vec<u8> {
        let (tag, body): (u8, &[u8]) = match self {
            ServiceOp::Ping(d) => (1, d),
            ServiceOp::Seal(d) => (2, d),
            ServiceOp::Unseal(d) => (3, d),
            ServiceOp::Quote(d) => (4, d),
        };
        let mut out = Vec::with_capacity(1 + 8 + body.len());
        out.push(tag);
        out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        out.extend_from_slice(body);
        out
    }
}

/// A MAC-bound session token. The MAC covers every field under the session
/// key, which never leaves the platform — a forged or bit-flipped token
/// cannot verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionToken {
    /// Session id (facade-assigned).
    pub id: u64,
    /// Tenant the session was attested for.
    pub tenant: u64,
    /// Platform epoch (EMS crash-restart count) at mint time.
    pub epoch: u64,
    /// Tick after which the token is dead.
    pub expires_at: u64,
    /// `HMAC(session_key, fields)`.
    pub mac: [u8; 32],
}

fn token_mac(key: &[u8; 32], id: u64, tenant: u64, epoch: u64, expires_at: u64) -> [u8; 32] {
    let mut m = Vec::with_capacity(16 + 32);
    m.extend_from_slice(b"hypertee-service token v1");
    m.extend_from_slice(&id.to_le_bytes());
    m.extend_from_slice(&tenant.to_le_bytes());
    m.extend_from_slice(&epoch.to_le_bytes());
    m.extend_from_slice(&expires_at.to_le_bytes());
    hmac_sha256(key, &m)
}

/// Computes the MAC a client must attach to a request.
pub fn request_mac(session_key: &[u8; 32], seq: u64, op: &ServiceOp) -> [u8; 32] {
    let mut m = Vec::with_capacity(16);
    m.extend_from_slice(b"req");
    m.extend_from_slice(&seq.to_le_bytes());
    m.extend_from_slice(&op.encode());
    hmac_sha256(session_key, &m)
}

fn reply_mac(session_key: &[u8; 32], seq: u64, payload: &[u8]) -> [u8; 32] {
    let mut m = Vec::with_capacity(16 + payload.len());
    m.extend_from_slice(b"rep");
    m.extend_from_slice(&seq.to_le_bytes());
    m.extend_from_slice(payload);
    hmac_sha256(session_key, &m)
}

/// An authenticated reply: the payload MAC'd under the session key, bound
/// to the request's sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceReply {
    /// Sequence number of the request this answers.
    pub seq: u64,
    /// Operation result bytes.
    pub payload: Vec<u8>,
    /// `HMAC(session_key, "rep" ‖ seq ‖ payload)`.
    pub mac: [u8; 32],
}

impl ServiceReply {
    /// Client-side check that the reply is genuine and bound to `seq`.
    pub fn verify(&self, session_key: &[u8; 32]) -> bool {
        ct_eq(&reply_mac(session_key, self.seq, &self.payload), &self.mac)
    }
}

#[derive(Debug, Clone)]
struct Challenge {
    id: u64,
    tenant: u64,
    nonce: [u8; 32],
    issued_at: u64,
    consumed: bool,
}

#[derive(Debug, Clone)]
struct Session {
    key: [u8; 32],
    tenant: u64,
    epoch: u64,
    expires_at: u64,
    next_seq: u64,
}

/// Named counters for every admission and rejection path. The chaos storm
/// folds these into its trace hash; the `BENCH_serving.json` validator
/// pins the accepted-attack counters to zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FacadeStats {
    /// Probes that passed.
    pub probes_ok: u64,
    /// Probes that failed (facade latched).
    pub probes_failed: u64,
    /// RPCs refused because the facade was not ready.
    pub not_ready_rejects: u64,
    /// Challenges issued.
    pub challenges_issued: u64,
    /// Handshakes completed (tokens minted).
    pub handshakes_ok: u64,
    /// Handshakes the EMS rejected.
    pub attest_failures: u64,
    /// Challenge replays rejected (already consumed).
    pub replayed_challenges: u64,
    /// Challenges rejected for missing the freshness window.
    pub stale_challenges: u64,
    /// `SigmaMsg1` nonces that did not match their challenge.
    pub nonce_mismatches: u64,
    /// Unknown challenge ids presented.
    pub unknown_challenges: u64,
    /// Authenticated calls served.
    pub calls_ok: u64,
    /// Calls under unknown session ids.
    pub unknown_sessions: u64,
    /// Forged / bit-flipped tokens rejected.
    pub forged_tokens_rejected: u64,
    /// Tokens from a revoked (pre-crash) epoch rejected.
    pub epoch_rejects: u64,
    /// Expired tokens rejected.
    pub expired_tokens: u64,
    /// Out-of-sequence (duplicate / replayed) requests rejected.
    pub bad_sequence_rejects: u64,
    /// Requests with an invalid MAC rejected.
    pub bad_request_macs: u64,
    /// Backend (EMS) operation failures surfaced to callers.
    pub backend_errors: u64,
    /// Re-probes forced by supervision after a crash-restart.
    pub reprobes: u64,
    /// Sessions revoked by epoch bumps.
    pub sessions_revoked: u64,
}

/// The facade itself. See the module docs for the lifecycle.
#[derive(Debug)]
pub struct ServiceFacade {
    config: ServiceConfig,
    state: ServiceState,
    rng: ChaChaRng,
    service_eid: Option<u64>,
    service_measurement: Option<[u8; 32]>,
    epoch: u64,
    next_challenge_id: u64,
    next_session_id: u64,
    challenges: VecDeque<Challenge>,
    sessions: BTreeMap<u64, Session>,
    /// Admission/rejection counters.
    pub stats: FacadeStats,
}

impl ServiceFacade {
    /// Builds a facade in [`ServiceState::Booting`] — it serves nothing
    /// until [`ServiceFacade::probe`] passes.
    ///
    /// # Errors
    ///
    /// [`ServiceError::DevShimRefused`] for [`ServiceMode::DevShim`]: the
    /// shim would skip attestation, so it cannot be constructed at all.
    pub fn new(config: ServiceConfig) -> ServiceResult<ServiceFacade> {
        if config.mode == ServiceMode::DevShim {
            return Err(ServiceError::DevShimRefused);
        }
        let seed = config.seed;
        Ok(ServiceFacade {
            config,
            state: ServiceState::Booting,
            rng: ChaChaRng::from_u64(seed ^ 0x5e72_76c3_0000_0001),
            service_eid: None,
            service_measurement: None,
            epoch: 0,
            next_challenge_id: 1,
            next_session_id: 1,
            challenges: VecDeque::new(),
            sessions: BTreeMap::new(),
            stats: FacadeStats::default(),
        })
    }

    /// Liveness: the facade object exists and can answer. Deliberately
    /// trivial — liveness says "don't restart me", nothing more.
    pub fn healthz(&self) -> bool {
        true
    }

    /// Readiness: probes verified and traffic admitted. Load balancers key
    /// on this, never on [`ServiceFacade::healthz`].
    pub fn readyz(&self) -> bool {
        self.state == ServiceState::Ready
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ServiceState {
        self.state
    }

    /// The platform epoch tokens are currently pinned to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The service enclave's measurement, once probed. Clients pin this for
    /// the SIGMA `expected_enclave_measurement` check.
    pub fn service_measurement(&self) -> Option<[u8; 32]> {
        self.service_measurement
    }

    fn fail_probe(&mut self, why: &'static str) -> ServiceError {
        self.state = ServiceState::Failed;
        self.stats.probes_failed += 1;
        ServiceError::ProbeFailed(why)
    }

    /// The startup (and post-crash) readiness probe. Verifies, in order:
    /// the boot chain completed every stage, the boot report's platform
    /// measurement matches the pinned value, the service enclave exists
    /// (created on first probe), and a *fresh* EMS self-attestation bound
    /// to `now` verifies against the machine's EK. Only then does the
    /// facade admit traffic.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ProbeFailed`] naming the first failed check; the
    /// facade latches [`ServiceState::Failed`].
    pub fn probe(&mut self, m: &mut Machine, now: u64) -> ServiceResult<()> {
        use BootStage::{ChipInit, CsFirmware, CsOs, EmsRuntime};
        if m.boot_report.stages != [ChipInit, EmsRuntime, CsFirmware, CsOs] {
            return Err(self.fail_probe("boot chain incomplete"));
        }
        if !ct_eq(
            &m.boot_report.platform_measurement,
            &self.config.expected_platform_measurement,
        ) {
            return Err(self.fail_probe("platform measurement mismatch"));
        }
        let eid = match self.service_eid {
            Some(eid) => eid,
            None => {
                let manifest = EnclaveManifest::parse("heap = 4M\nstack = 64K\nhost_shared = 64K")
                    .expect("static manifest parses");
                let handle = m
                    .create_enclave(0, &manifest, SERVICE_IMAGE)
                    .map_err(|_| self.fail_probe("service enclave creation failed"))?;
                self.service_eid = Some(handle.0);
                handle.0
            }
        };
        // Fresh self-attestation bound to the probe instant: a cached or
        // replayed quote cannot answer this.
        let mut challenge = Vec::with_capacity(40);
        challenge.extend_from_slice(b"hypertee-service probe v1");
        challenge.extend_from_slice(&now.to_le_bytes());
        challenge.extend_from_slice(&m.ems.stats.crash_restarts.to_le_bytes());
        let quote = match m.ems.eattest(eid, &challenge) {
            Ok(q) => q,
            Err(_) => return Err(self.fail_probe("self-attestation quote unavailable")),
        };
        if !quote.verify(&m.ek_public()) {
            return Err(self.fail_probe("self-attestation quote invalid"));
        }
        if !ct_eq(
            &quote.platform_measurement,
            &self.config.expected_platform_measurement,
        ) {
            return Err(self.fail_probe("quoted platform measurement mismatch"));
        }
        if !ct_eq(&quote.report_data, &sha256(&challenge)) {
            return Err(self.fail_probe("self-attestation not bound to probe"));
        }
        self.service_measurement = Some(quote.enclave_measurement);
        self.epoch = m.ems.stats.crash_restarts;
        self.state = ServiceState::Ready;
        self.stats.probes_ok += 1;
        Ok(())
    }

    fn gate(&mut self) -> ServiceResult<()> {
        if self.state != ServiceState::Ready {
            self.stats.not_ready_rejects += 1;
            return Err(ServiceError::NotReady);
        }
        Ok(())
    }

    /// Issues a single-use challenge nonce for `tenant`. The client must
    /// open SIGMA with exactly this nonce within the freshness window.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NotReady`] outside [`ServiceState::Ready`].
    pub fn issue_challenge(&mut self, tenant: u64, now: u64) -> ServiceResult<(u64, [u8; 32])> {
        self.gate()?;
        let id = self.next_challenge_id;
        self.next_challenge_id += 1;
        let nonce = self.rng.gen_bytes32();
        if self.challenges.len() >= self.config.max_pending_challenges {
            self.challenges.pop_front();
        }
        self.challenges.push_back(Challenge {
            id,
            tenant,
            nonce,
            issued_at: now,
            consumed: false,
        });
        self.stats.challenges_issued += 1;
        Ok((id, nonce))
    }

    /// Answers a SIGMA opening bound to a previously issued challenge and,
    /// on success, mints a session token for the challenge's tenant.
    ///
    /// Fail-closed checks, in order: readiness, challenge known, not yet
    /// consumed, nonce matches, freshness window. A stale or replayed
    /// challenge is consumed *and* rejected — it can never succeed later.
    ///
    /// # Errors
    ///
    /// The first failed check as a [`ServiceError`].
    pub fn attest(
        &mut self,
        m: &mut Machine,
        challenge_id: u64,
        msg1: &SigmaMsg1,
        now: u64,
    ) -> ServiceResult<(SigmaMsg2, SessionToken)> {
        self.gate()?;
        let window = self.config.freshness_window_ticks;
        let Some(ch) = self.challenges.iter_mut().find(|c| c.id == challenge_id) else {
            self.stats.unknown_challenges += 1;
            return Err(ServiceError::UnknownChallenge);
        };
        if ch.consumed {
            self.stats.replayed_challenges += 1;
            return Err(ServiceError::ChallengeConsumed);
        }
        ch.consumed = true;
        if !ct_eq(&msg1.nonce, &ch.nonce) {
            self.stats.nonce_mismatches += 1;
            return Err(ServiceError::NonceMismatch);
        }
        if now.saturating_sub(ch.issued_at) > window {
            self.stats.stale_challenges += 1;
            return Err(ServiceError::StaleChallenge);
        }
        let tenant = ch.tenant;
        let eid = self.service_eid.expect("ready implies service enclave");
        let (msg2, key) = match m.ems.sigma_respond_keyed(eid, msg1) {
            Ok(ok) => ok,
            Err(_) => {
                self.stats.attest_failures += 1;
                return Err(ServiceError::AttestFailed);
            }
        };
        let id = self.next_session_id;
        self.next_session_id += 1;
        let expires_at = now + self.config.token_ttl_ticks;
        let token = SessionToken {
            id,
            tenant,
            epoch: self.epoch,
            expires_at,
            mac: token_mac(&key, id, tenant, self.epoch, expires_at),
        };
        self.sessions.insert(
            id,
            Session {
                key,
                tenant,
                epoch: self.epoch,
                expires_at,
                next_seq: 0,
            },
        );
        self.stats.handshakes_ok += 1;
        Ok((msg2, token))
    }

    /// Serves one authenticated call. Fail-closed checks, in order:
    /// readiness, session known, token MAC, epoch, expiry, sequence number
    /// (strictly `next_seq` — duplicates and replays miss), request MAC.
    /// Only then does the operation execute against the EMS.
    ///
    /// # Errors
    ///
    /// The first failed check as a [`ServiceError`].
    pub fn call(
        &mut self,
        m: &mut Machine,
        token: &SessionToken,
        seq: u64,
        op: &ServiceOp,
        mac: &[u8; 32],
        now: u64,
    ) -> ServiceResult<ServiceReply> {
        self.gate()?;
        let epoch = self.epoch;
        let Some(sess) = self.sessions.get_mut(&token.id) else {
            self.stats.unknown_sessions += 1;
            return Err(ServiceError::UnknownSession);
        };
        let expect = token_mac(
            &sess.key,
            token.id,
            token.tenant,
            token.epoch,
            token.expires_at,
        );
        if !ct_eq(&expect, &token.mac) || token.tenant != sess.tenant {
            self.stats.forged_tokens_rejected += 1;
            return Err(ServiceError::BadToken);
        }
        if token.epoch != epoch || sess.epoch != epoch {
            self.stats.epoch_rejects += 1;
            return Err(ServiceError::EpochRevoked);
        }
        if now > sess.expires_at {
            self.sessions.remove(&token.id);
            self.stats.expired_tokens += 1;
            return Err(ServiceError::TokenExpired);
        }
        if seq != sess.next_seq {
            self.stats.bad_sequence_rejects += 1;
            return Err(ServiceError::BadSequence);
        }
        if !ct_eq(&request_mac(&sess.key, seq, op), mac) {
            self.stats.bad_request_macs += 1;
            return Err(ServiceError::BadRequestMac);
        }
        sess.next_seq += 1;
        let key = sess.key;
        let eid = self.service_eid.expect("ready implies service enclave");
        let payload = match op {
            ServiceOp::Ping(data) => Ok(data.clone()),
            ServiceOp::Seal(data) => m.ems.seal(eid, data),
            ServiceOp::Unseal(blob) => m.ems.unseal(eid, blob),
            ServiceOp::Quote(report) => m.ems.eattest(eid, report).map(|q| q.to_bytes()),
        };
        let payload = match payload {
            Ok(p) => p,
            Err(_) => {
                self.stats.backend_errors += 1;
                return Err(ServiceError::Backend);
            }
        };
        self.stats.calls_ok += 1;
        Ok(ServiceReply {
            seq,
            mac: reply_mac(&key, seq, &payload),
            payload,
        })
    }

    /// Supervision hook: call after (or periodically around) EMS
    /// crash-restarts. When the platform epoch moved, every outstanding
    /// session and challenge is revoked and the probe re-runs — clients
    /// must re-attest before the facade serves them again. Returns `true`
    /// when a re-probe happened.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ProbeFailed`] when the re-probe fails (the facade
    /// stays latched shut).
    pub fn supervise(&mut self, m: &mut Machine, now: u64) -> ServiceResult<bool> {
        let current = m.ems.stats.crash_restarts;
        if current == self.epoch && self.state == ServiceState::Ready {
            return Ok(false);
        }
        if self.state == ServiceState::Failed {
            // A latched facade stays latched: supervision never un-fails
            // a probe the operator has not looked at.
            return Err(ServiceError::NotReady);
        }
        self.stats.sessions_revoked += self.sessions.len() as u64;
        self.sessions.clear();
        self.challenges.clear();
        self.state = ServiceState::Booting;
        self.stats.reprobes += 1;
        self.probe(m, now)?;
        Ok(true)
    }

    /// Number of live (unexpired, unrevoked) session records.
    pub fn live_sessions(&self) -> usize {
        self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertee_ems::attest::SigmaInitiator;

    fn ready_facade() -> (Machine, ServiceFacade) {
        let mut m = Machine::boot_default();
        let mut f = ServiceFacade::new(ServiceConfig::production(7)).unwrap();
        f.probe(&mut m, 0).unwrap();
        (m, f)
    }

    fn handshake(
        m: &mut Machine,
        f: &mut ServiceFacade,
        tenant: u64,
        now: u64,
        rng: &mut ChaChaRng,
    ) -> (SessionToken, [u8; 32]) {
        let (cid, nonce) = f.issue_challenge(tenant, now).unwrap();
        let (init, msg1) = SigmaInitiator::start_with_nonce(rng, nonce);
        let (msg2, token) = f.attest(m, cid, &msg1, now).unwrap();
        let key = init
            .finish(
                &msg2,
                &m.ek_public(),
                &f.service_measurement().expect("probed"),
            )
            .expect("facade quote verifies");
        (token, key)
    }

    #[test]
    fn dev_shim_is_unconstructible() {
        let mut cfg = ServiceConfig::production(1);
        cfg.mode = ServiceMode::DevShim;
        assert_eq!(
            ServiceFacade::new(cfg).unwrap_err(),
            ServiceError::DevShimRefused
        );
    }

    #[test]
    fn traffic_is_refused_before_probe() {
        let mut f = ServiceFacade::new(ServiceConfig::production(2)).unwrap();
        assert!(f.healthz(), "liveness holds even while booting");
        assert!(!f.readyz());
        assert_eq!(f.issue_challenge(1, 0).unwrap_err(), ServiceError::NotReady);
        assert_eq!(f.stats.not_ready_rejects, 1);
    }

    #[test]
    fn probe_latches_on_wrong_pin() {
        let mut m = Machine::boot_default();
        let mut cfg = ServiceConfig::production(3);
        cfg.expected_platform_measurement = [0xab; 32];
        let mut f = ServiceFacade::new(cfg).unwrap();
        assert!(matches!(
            f.probe(&mut m, 0),
            Err(ServiceError::ProbeFailed("platform measurement mismatch"))
        ));
        assert_eq!(f.state(), ServiceState::Failed);
        // Latched: supervision refuses to resurrect it.
        assert!(f.supervise(&mut m, 1).is_err());
        assert!(!f.readyz());
    }

    #[test]
    fn full_handshake_and_authenticated_call() {
        let (mut m, mut f) = ready_facade();
        let mut rng = ChaChaRng::from_u64(99);
        let (token, key) = handshake(&mut m, &mut f, 5, 10, &mut rng);
        let op = ServiceOp::Seal(b"precious".to_vec());
        let mac = request_mac(&key, 0, &op);
        let reply = f.call(&mut m, &token, 0, &op, &mac, 11).unwrap();
        assert!(reply.verify(&key));
        let op = ServiceOp::Unseal(reply.payload.clone());
        let mac = request_mac(&key, 1, &op);
        let reply = f.call(&mut m, &token, 1, &op, &mac, 12).unwrap();
        assert!(reply.verify(&key));
        assert_eq!(reply.payload, b"precious");
        assert_eq!(f.stats.calls_ok, 2);
    }

    #[test]
    fn challenge_single_use_and_freshness() {
        let (mut m, mut f) = ready_facade();
        let mut rng = ChaChaRng::from_u64(4);
        // Stale: answered one tick past the window.
        let (cid, nonce) = f.issue_challenge(1, 100).unwrap();
        let (_init, msg1) = SigmaInitiator::start_with_nonce(&mut rng, nonce);
        let late = 100 + f.config.freshness_window_ticks + 1;
        assert_eq!(
            f.attest(&mut m, cid, &msg1, late).unwrap_err(),
            ServiceError::StaleChallenge
        );
        // And consumed by the stale attempt: a retry inside the window is
        // still refused.
        assert_eq!(
            f.attest(&mut m, cid, &msg1, 101).unwrap_err(),
            ServiceError::ChallengeConsumed
        );
        // Wrong nonce on a fresh challenge.
        let (cid2, _nonce2) = f.issue_challenge(1, 200).unwrap();
        let (_i, bad_msg1) = SigmaInitiator::start(&mut rng);
        assert_eq!(
            f.attest(&mut m, cid2, &bad_msg1, 200).unwrap_err(),
            ServiceError::NonceMismatch
        );
        assert_eq!(f.stats.handshakes_ok, 0);
    }

    #[test]
    fn forged_and_replayed_requests_are_rejected() {
        let (mut m, mut f) = ready_facade();
        let mut rng = ChaChaRng::from_u64(5);
        let (token, key) = handshake(&mut m, &mut f, 2, 0, &mut rng);
        let op = ServiceOp::Ping(b"x".to_vec());
        let mac = request_mac(&key, 0, &op);
        // Forged token MAC.
        let mut forged = token.clone();
        forged.mac[0] ^= 1;
        assert_eq!(
            f.call(&mut m, &forged, 0, &op, &mac, 1).unwrap_err(),
            ServiceError::BadToken
        );
        // Tampered token fields fail the MAC too.
        let mut uplifted = token.clone();
        uplifted.expires_at += 1_000_000;
        assert_eq!(
            f.call(&mut m, &uplifted, 0, &op, &mac, 1).unwrap_err(),
            ServiceError::BadToken
        );
        // Genuine call succeeds once…
        f.call(&mut m, &token, 0, &op, &mac, 1).unwrap();
        // …and its exact replay (same seq) is refused.
        assert_eq!(
            f.call(&mut m, &token, 0, &op, &mac, 1).unwrap_err(),
            ServiceError::BadSequence
        );
        // A request MAC for the wrong sequence number is refused.
        assert_eq!(
            f.call(&mut m, &token, 1, &op, &mac, 1).unwrap_err(),
            ServiceError::BadRequestMac
        );
        assert_eq!(f.stats.forged_tokens_rejected, 2);
        assert_eq!(f.stats.bad_sequence_rejects, 1);
        assert_eq!(f.stats.bad_request_macs, 1);
    }

    #[test]
    fn token_expiry_is_enforced() {
        let (mut m, mut f) = ready_facade();
        let mut rng = ChaChaRng::from_u64(6);
        let (token, key) = handshake(&mut m, &mut f, 3, 0, &mut rng);
        let op = ServiceOp::Ping(vec![]);
        let mac = request_mac(&key, 0, &op);
        let after = token.expires_at + 1;
        assert_eq!(
            f.call(&mut m, &token, 0, &op, &mac, after).unwrap_err(),
            ServiceError::TokenExpired
        );
        assert_eq!(f.live_sessions(), 0, "expired session is reaped");
    }

    #[test]
    fn crash_restart_revokes_and_forces_reattestation() {
        let (mut m, mut f) = ready_facade();
        let mut rng = ChaChaRng::from_u64(8);
        let (token, key) = handshake(&mut m, &mut f, 4, 0, &mut rng);
        m.crash_restart_ems();
        assert!(f.supervise(&mut m, 50).unwrap(), "epoch bump re-probes");
        assert!(f.readyz(), "facade recovered through a fresh probe");
        let op = ServiceOp::Ping(vec![]);
        let mac = request_mac(&key, 0, &op);
        assert_eq!(
            f.call(&mut m, &token, 0, &op, &mac, 51).unwrap_err(),
            ServiceError::UnknownSession,
            "pre-crash sessions are revoked outright"
        );
        assert_eq!(f.stats.sessions_revoked, 1);
        assert_eq!(f.stats.reprobes, 1);
        // Re-attestation works and the new token serves.
        let (token2, key2) = handshake(&mut m, &mut f, 4, 60, &mut rng);
        let mac2 = request_mac(&key2, 0, &op);
        assert!(f.call(&mut m, &token2, 0, &op, &mac2, 61).is_ok());
    }

    #[test]
    fn epoch_pinning_rejects_cross_epoch_tokens() {
        let (mut m, mut f) = ready_facade();
        let mut rng = ChaChaRng::from_u64(9);
        let (token, key) = handshake(&mut m, &mut f, 1, 0, &mut rng);
        // Simulate a stale token surviving revocation by re-inserting its
        // session record with the old epoch after the bump.
        m.crash_restart_ems();
        f.supervise(&mut m, 10).unwrap();
        f.sessions.insert(
            token.id,
            Session {
                key,
                tenant: token.tenant,
                epoch: token.epoch,
                expires_at: token.expires_at,
                next_seq: 0,
            },
        );
        let op = ServiceOp::Ping(vec![]);
        let mac = request_mac(&key, 0, &op);
        assert_eq!(
            f.call(&mut m, &token, 0, &op, &mac, 11).unwrap_err(),
            ServiceError::EpochRevoked
        );
        assert_eq!(f.stats.epoch_rejects, 1);
    }

    #[test]
    fn pinned_measurement_matches_boot() {
        let m = Machine::boot_default();
        assert_eq!(
            m.boot_report.platform_measurement,
            pinned_platform_measurement()
        );
    }
}
