//! `hypertee-service`: the production service contract over the simulated
//! machine — an in-process RPC facade with a **fail-closed** lifecycle.
//!
//! Real enclave-backed services do not hand out responses because a server
//! process happens to be running; they hand them out because the platform
//! *proved* itself first. This crate reproduces that contract on top of the
//! HyperTEE machine:
//!
//! * [`facade`] — [`facade::ServiceFacade`]: startup probes that refuse all
//!   traffic until the boot measurement chain and an EMS self-attestation
//!   verify (readiness is distinct from liveness), nonce-bound
//!   challenge-response attestation with freshness windows and replay
//!   rejection, per-tenant session tokens with expiry, and forced
//!   re-attestation after an EMS crash-restart (epoch revocation).
//! * [`breaker`] — [`breaker::CircuitBreaker`]: the explicit
//!   Closed → Open → HalfOpen client-side state machine, so a faulted
//!   facade sheds load instead of queueing it.
//! * [`client`] — [`client::ServiceClient`]: a reference client that drives
//!   the full protocol (challenge → SIGMA handshake → authenticated calls)
//!   with retry, exponential backoff, and the breaker wired in.
//!
//! Every rejection path increments a named counter in
//! [`facade::FacadeStats`]; the chaos attestation-storm harness folds those
//! counters into its trace hash and the `BENCH_serving.json` validator
//! asserts the *accepted*-attack counters are zero.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod client;
pub mod facade;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use client::{BackoffPolicy, ClientOutcome, ServiceClient};
pub use facade::{
    pinned_platform_measurement, request_mac, FacadeStats, ServiceConfig, ServiceError,
    ServiceFacade, ServiceMode, ServiceOp, ServiceReply, ServiceState, SessionToken,
};
