//! A reference client for the facade: challenge → SIGMA handshake →
//! authenticated calls, with retry, exponential backoff, and the circuit
//! breaker wired in.
//!
//! The client pins two values out of band, like a real tenant would: the
//! platform EK (manufacturer-published) and the service enclave measurement
//! (from the service operator). Everything else — session keys, tokens,
//! sequence numbers — is established through the attested handshake.
//!
//! [`ServiceClient`] is the synchronous convenience wrapper used by the
//! examples and integration tests; the chaos storm drives the same
//! [`CircuitBreaker`] / [`BackoffPolicy`] pieces from its own tick loop so
//! transport faults can be injected between the two halves of each
//! exchange.

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::facade::{
    request_mac, ServiceError, ServiceFacade, ServiceOp, ServiceReply, SessionToken,
};
use hypertee::machine::Machine;
use hypertee_crypto::chacha::ChaChaRng;
use hypertee_crypto::sig::PublicKey;
use hypertee_ems::attest::SigmaInitiator;

/// Exponential backoff with deterministic jitter, in ticks.
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    /// First-retry delay.
    pub base_ticks: u64,
    /// Cap on any single delay.
    pub max_ticks: u64,
    /// Attempts (including the first) before the operation is abandoned.
    pub max_attempts: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ticks: 2,
            max_ticks: 64,
            max_attempts: 5,
        }
    }
}

impl BackoffPolicy {
    /// Delay before retry number `attempt` (1-based): `base * 2^(attempt-1)`
    /// capped at `max_ticks`, plus up to 50% seeded jitter so a fleet of
    /// clients does not retry in lockstep.
    pub fn delay(&self, attempt: u32, rng: &mut ChaChaRng) -> u64 {
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self
            .base_ticks
            .saturating_mul(1u64 << exp)
            .min(self.max_ticks.max(1));
        raw + rng.gen_range(raw / 2 + 1)
    }
}

/// What one client operation amounted to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientOutcome {
    /// The call was served and its reply MAC verified.
    Ok(ServiceReply),
    /// The breaker was open: shed locally, transport untouched.
    Shed,
    /// The facade (or verification) rejected the operation.
    Rejected(ServiceError),
}

/// Client-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Successful handshakes.
    pub handshakes: u64,
    /// Handshakes re-run because a session was revoked or expired.
    pub reattestations: u64,
    /// Calls served and verified.
    pub calls_ok: u64,
    /// Calls that ended in rejection.
    pub failures: u64,
    /// Calls shed by the breaker.
    pub shed: u64,
}

/// The synchronous reference client.
#[derive(Debug)]
pub struct ServiceClient {
    /// Tenant identity presented at challenge time.
    pub tenant: u64,
    trusted_ek: PublicKey,
    expected_measurement: [u8; 32],
    rng: ChaChaRng,
    /// The client's breaker (public so harnesses can inspect transitions).
    pub breaker: CircuitBreaker,
    /// Retry/backoff policy for harness-driven loops.
    pub backoff: BackoffPolicy,
    token: Option<SessionToken>,
    key: Option<[u8; 32]>,
    seq: u64,
    /// Operation counters.
    pub stats: ClientStats,
}

impl ServiceClient {
    /// A client for `tenant` pinning the platform EK and the service
    /// enclave measurement.
    pub fn new(
        tenant: u64,
        seed: u64,
        trusted_ek: PublicKey,
        expected_measurement: [u8; 32],
    ) -> ServiceClient {
        ServiceClient {
            tenant,
            trusted_ek,
            expected_measurement,
            rng: ChaChaRng::from_u64(seed ^ 0xc11e_0000_0000_0001 ^ tenant.rotate_left(17)),
            breaker: CircuitBreaker::default(),
            backoff: BackoffPolicy::default(),
            token: None,
            key: None,
            seq: 0,
            stats: ClientStats::default(),
        }
    }

    /// Whether the client currently holds a session.
    pub fn attested(&self) -> bool {
        self.token.is_some()
    }

    /// Runs the full challenge-response handshake and stores the session.
    ///
    /// # Errors
    ///
    /// Any facade rejection, or [`ServiceError::AttestFailed`] when the
    /// returned quote does not verify against the pinned EK/measurement.
    pub fn handshake(
        &mut self,
        f: &mut ServiceFacade,
        m: &mut Machine,
        now: u64,
    ) -> Result<(), ServiceError> {
        self.token = None;
        self.key = None;
        let (cid, nonce) = f.issue_challenge(self.tenant, now)?;
        let (init, msg1) = SigmaInitiator::start_with_nonce(&mut self.rng, nonce);
        let (msg2, token) = f.attest(m, cid, &msg1, now)?;
        let key = init
            .finish(&msg2, &self.trusted_ek, &self.expected_measurement)
            .map_err(|_| ServiceError::AttestFailed)?;
        self.token = Some(token);
        self.key = Some(key);
        self.seq = 0;
        self.stats.handshakes += 1;
        Ok(())
    }

    /// Issues one authenticated call, handshaking first when no session is
    /// held and re-attesting once when the session turns out revoked or
    /// expired (epoch bump, TTL). Breaker accounting wraps the whole
    /// operation: a shed call never touches the facade.
    pub fn call(
        &mut self,
        f: &mut ServiceFacade,
        m: &mut Machine,
        op: &ServiceOp,
        now: u64,
    ) -> ClientOutcome {
        if !self.breaker.allow(now) {
            self.stats.shed += 1;
            return ClientOutcome::Shed;
        }
        match self.try_call(f, m, op, now) {
            Ok(reply) => {
                self.breaker.on_success();
                self.stats.calls_ok += 1;
                ClientOutcome::Ok(reply)
            }
            Err(e) if session_is_dead(e) => {
                // One re-attestation attempt, then the call again.
                self.stats.reattestations += 1;
                let retried = self
                    .handshake(f, m, now)
                    .and_then(|()| self.try_call(f, m, op, now));
                match retried {
                    Ok(reply) => {
                        self.breaker.on_success();
                        self.stats.calls_ok += 1;
                        ClientOutcome::Ok(reply)
                    }
                    Err(e) => {
                        self.breaker.on_failure(now);
                        self.stats.failures += 1;
                        ClientOutcome::Rejected(e)
                    }
                }
            }
            Err(e) => {
                self.breaker.on_failure(now);
                self.stats.failures += 1;
                ClientOutcome::Rejected(e)
            }
        }
    }

    fn try_call(
        &mut self,
        f: &mut ServiceFacade,
        m: &mut Machine,
        op: &ServiceOp,
        now: u64,
    ) -> Result<ServiceReply, ServiceError> {
        if self.token.is_none() {
            self.handshake(f, m, now)?;
        }
        let token = self.token.clone().expect("handshake stored a session");
        let key = self.key.expect("handshake stored a key");
        let seq = self.seq;
        let mac = request_mac(&key, seq, op);
        let reply = f.call(m, &token, seq, op, &mac, now)?;
        if !reply.verify(&key) {
            return Err(ServiceError::BadRequestMac);
        }
        self.seq += 1;
        Ok(reply)
    }

    /// Breaker state (for harness assertions).
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }
}

/// Rejections that mean "this session will never work again — re-attest".
fn session_is_dead(e: ServiceError) -> bool {
    matches!(
        e,
        ServiceError::EpochRevoked
            | ServiceError::UnknownSession
            | ServiceError::TokenExpired
            | ServiceError::BadSequence
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facade::ServiceConfig;

    fn setup() -> (Machine, ServiceFacade, ServiceClient) {
        let mut m = Machine::boot_default();
        let mut f = ServiceFacade::new(ServiceConfig::production(11)).unwrap();
        f.probe(&mut m, 0).unwrap();
        let c = ServiceClient::new(
            1,
            42,
            m.ek_public(),
            f.service_measurement().expect("probed"),
        );
        (m, f, c)
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = BackoffPolicy {
            base_ticks: 2,
            max_ticks: 16,
            max_attempts: 6,
        };
        let mut rng = ChaChaRng::from_u64(1);
        let d1 = p.delay(1, &mut rng);
        assert!((2..=3).contains(&d1));
        let d4 = p.delay(4, &mut rng);
        assert!((16..=24).contains(&d4), "capped at max plus jitter: {d4}");
        // Deterministic under the same rng stream.
        let mut a = ChaChaRng::from_u64(9);
        let mut b = ChaChaRng::from_u64(9);
        assert_eq!(p.delay(3, &mut a), p.delay(3, &mut b));
    }

    #[test]
    fn client_round_trip_verifies_replies() {
        let (mut m, mut f, mut c) = setup();
        let out = c.call(&mut f, &mut m, &ServiceOp::Ping(b"hi".to_vec()), 1);
        let ClientOutcome::Ok(reply) = out else {
            panic!("expected success, got {out:?}");
        };
        assert_eq!(reply.payload, b"hi");
        assert_eq!(c.stats.handshakes, 1);
        assert_eq!(c.stats.calls_ok, 1);
    }

    #[test]
    fn client_reattests_after_crash_restart() {
        let (mut m, mut f, mut c) = setup();
        assert!(matches!(
            c.call(&mut f, &mut m, &ServiceOp::Ping(vec![]), 1),
            ClientOutcome::Ok(_)
        ));
        m.crash_restart_ems();
        f.supervise(&mut m, 10).unwrap();
        // The stored session is gone server-side; the client transparently
        // re-attests and the call still lands.
        assert!(matches!(
            c.call(&mut f, &mut m, &ServiceOp::Ping(vec![]), 11),
            ClientOutcome::Ok(_)
        ));
        assert_eq!(c.stats.reattestations, 1);
        assert_eq!(c.stats.handshakes, 2);
    }

    #[test]
    fn breaker_sheds_against_an_unready_facade() {
        let mut m = Machine::boot_default();
        // Facade never probed: everything is refused, breaker must trip.
        let mut f = ServiceFacade::new(ServiceConfig::production(12)).unwrap();
        let mut c = ServiceClient::new(1, 7, m.ek_public(), [0u8; 32]);
        let op = ServiceOp::Ping(vec![]);
        let mut shed = 0;
        for t in 0..12 {
            match c.call(&mut f, &mut m, &op, t) {
                ClientOutcome::Shed => shed += 1,
                ClientOutcome::Rejected(ServiceError::NotReady) => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(shed > 0, "breaker must shed once open");
        assert!(c.breaker.transitions().to_open >= 1);
        assert_eq!(
            f.stats.not_ready_rejects + c.stats.shed,
            12,
            "every attempt either hit the closed gate or was shed locally"
        );
    }
}
