//! The client-side circuit breaker: an explicit Closed → Open → HalfOpen
//! state machine, so a faulted facade sheds load instead of queueing it.
//!
//! The breaker is tick-driven and allocation-free; the chaos storm folds
//! its transition counters into the trace hash, so breaker behaviour is
//! part of the deterministic replay contract.

/// Breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every request is admitted.
    Closed,
    /// Tripped: requests are shed locally until the cooldown elapses.
    Open,
    /// Probing: a bounded number of trial requests decide recovery.
    HalfOpen,
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures in `Closed` that trip the breaker.
    pub failure_threshold: u32,
    /// Ticks the breaker stays `Open` before probing.
    pub open_cooldown_ticks: u64,
    /// Successful probes in `HalfOpen` required to close again.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 4,
            open_cooldown_ticks: 32,
            half_open_probes: 2,
        }
    }
}

/// Counts of state transitions (for reports and trace folding).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerTransitions {
    /// Trips into `Open` (from `Closed` or a failed `HalfOpen` probe).
    pub to_open: u64,
    /// Cooldown expiries into `HalfOpen`.
    pub to_half_open: u64,
    /// Recoveries into `Closed`.
    pub to_closed: u64,
    /// Requests shed locally while `Open` (or beyond the probe budget).
    pub shed: u64,
}

/// The circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: u64,
    probes_in_flight: u32,
    probe_successes: u32,
    transitions: BreakerTransitions,
}

impl CircuitBreaker {
    /// A closed (healthy) breaker.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: 0,
            probes_in_flight: 0,
            probe_successes: 0,
            transitions: BreakerTransitions::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Transition counters so far.
    pub fn transitions(&self) -> BreakerTransitions {
        self.transitions
    }

    /// Admission check at `now`. `false` means shed the request locally —
    /// do not touch the transport. `Open` flips to `HalfOpen` once the
    /// cooldown has elapsed; `HalfOpen` admits at most the configured
    /// number of outstanding probes.
    pub fn allow(&mut self, now: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now.saturating_sub(self.opened_at) >= self.config.open_cooldown_ticks {
                    self.state = BreakerState::HalfOpen;
                    self.transitions.to_half_open += 1;
                    self.probes_in_flight = 1;
                    self.probe_successes = 0;
                    true
                } else {
                    self.transitions.shed += 1;
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_in_flight < self.config.half_open_probes {
                    self.probes_in_flight += 1;
                    true
                } else {
                    self.transitions.shed += 1;
                    false
                }
            }
        }
    }

    /// Reports a successful request.
    pub fn on_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                self.probe_successes += 1;
                if self.probe_successes >= self.config.half_open_probes {
                    self.state = BreakerState::Closed;
                    self.transitions.to_closed += 1;
                    self.consecutive_failures = 0;
                }
            }
            // A success while Open (late response) does not reopen traffic.
            BreakerState::Open => {}
        }
    }

    /// Reports a failed request at `now`.
    pub fn on_failure(&mut self, now: u64) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now);
                }
            }
            // One failed probe re-trips immediately.
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: u64) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.transitions.to_open += 1;
        self.consecutive_failures = 0;
        self.probes_in_flight = 0;
        self.probe_successes = 0;
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_cooldown_ticks: 10,
            half_open_probes: 2,
        }
    }

    #[test]
    fn trips_after_threshold_and_sheds() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            assert!(b.allow(t));
            b.on_failure(t);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(5), "open breaker sheds before cooldown");
        assert_eq!(b.transitions().to_open, 1);
        assert_eq!(b.transitions().shed, 1);
    }

    #[test]
    fn half_open_recovers_after_enough_probes() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.allow(t);
            b.on_failure(t);
        }
        // Cooldown elapses at tick 12: first allow becomes a probe.
        assert!(b.allow(12));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow(12), "second probe fits the budget");
        assert!(!b.allow(12), "third concurrent probe is shed");
        b.on_success();
        assert_eq!(b.state(), BreakerState::HalfOpen, "one probe is not enough");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.transitions().to_closed, 1);
    }

    #[test]
    fn failed_probe_retrips() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.allow(t);
            b.on_failure(t);
        }
        assert!(b.allow(12));
        b.on_failure(12);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions().to_open, 2);
        // And the cooldown restarts from the re-trip instant.
        assert!(!b.allow(20));
        assert!(b.allow(22));
    }
}
