//! Known-answer tests pinning the hand-rolled primitives against published
//! vectors: FIPS 180-4 (SHA-256), FIPS 202 (SHA3-256), RFC 4231
//! (HMAC-SHA256), NIST SP 800-38A (AES-128-CTR), and RFC 8032 (Ed25519
//! curve arithmetic).
//!
//! The signature scheme itself is SHA-256 Schnorr over the Edwards curve,
//! not wire-format Ed25519 (the crate has no SHA-512), so the RFC 8032
//! vectors pin the *curve layer*: the clamped TEST-vector scalars times the
//! base point must land on the decompressed TEST-vector public keys. The
//! scalars and affine coordinates below were derived from the RFC seeds
//! with SHA-512 clamping and standard point decompression.

use hypertee_crypto::aes::{ctr_iv, Aes128};
use hypertee_crypto::ed::Point;
use hypertee_crypto::fe::Fe;
use hypertee_crypto::hmac::hmac_sha256;
use hypertee_crypto::scalar::Scalar;
use hypertee_crypto::sha256::sha256;
use hypertee_crypto::sha3::sha3_256;

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

fn unhex32(s: &str) -> [u8; 32] {
    unhex(s).try_into().unwrap()
}

#[test]
fn sha256_fips180_vectors() {
    assert_eq!(
        sha256(b""),
        unhex32("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
    );
    assert_eq!(
        sha256(b"abc"),
        unhex32("ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
    );
    // Two-block message exercising the padding boundary.
    assert_eq!(
        sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
        unhex32("248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1")
    );
    // One million 'a's, streamed (FIPS 180-4 long-message vector).
    let mut h = hypertee_crypto::sha256::Sha256::new();
    let chunk = [b'a'; 1000];
    for _ in 0..1000 {
        h.update(&chunk);
    }
    assert_eq!(
        h.finalize(),
        unhex32("cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")
    );
}

#[test]
fn sha3_256_fips202_vectors() {
    assert_eq!(
        sha3_256(b""),
        unhex32("a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a")
    );
    assert_eq!(
        sha3_256(b"abc"),
        unhex32("3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532")
    );
    // 200 bytes of 0xa3 (the classic NIST SHA3-256 msg vector).
    assert_eq!(
        sha3_256(&[0xa3u8; 200]),
        unhex32("79f38adec5c20307a98ef76e8324afbfd46cfd81b22e3973c65fa1bd9de31787")
    );
}

#[test]
fn hmac_sha256_rfc4231_vectors() {
    // Test case 1.
    assert_eq!(
        hmac_sha256(&[0x0b; 20], b"Hi There"),
        unhex32("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")
    );
    // Test case 2: short textual key.
    assert_eq!(
        hmac_sha256(b"Jefe", b"what do ya want for nothing?"),
        unhex32("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")
    );
    // Test case 3: 50 bytes of 0xdd.
    assert_eq!(
        hmac_sha256(&[0xaa; 20], &[0xdd; 50]),
        unhex32("773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe")
    );
    // Test case 6: key longer than one block (hashed down first).
    assert_eq!(
        hmac_sha256(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First"
        ),
        unhex32("60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54")
    );
}

#[test]
fn aes128_ctr_sp800_38a_f5_vectors() {
    // NIST SP 800-38A F.5.1 (CTR-AES128.Encrypt): the four-block message
    // under the standard test key and the f0f1f2.. initial counter.
    let key: [u8; 16] = unhex("2b7e151628aed2a6abf7158809cf4f3c")
        .try_into()
        .unwrap();
    let iv: [u8; 16] = unhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
        .try_into()
        .unwrap();
    let mut data = unhex(concat!(
        "6bc1bee22e409f96e93d7e117393172a",
        "ae2d8a571e03ac9c9eb76fac45af8e51",
        "30c81c46a35ce411e5fbc1191a0a52ef",
        "f69f2445df4f9b17ad2b417be66c3710",
    ));
    let expected = unhex(concat!(
        "874d6191b620e3261bef6864990db6ce",
        "9806f66b7970fdff8617187bb9fffdff",
        "5ae4df3edbd5d35e5b4f09020db03eab",
        "1e031dda2fbe03d1792170a0f3009cee",
    ));
    let aes = Aes128::new(&key);
    aes.ctr_apply(&iv, &mut data);
    assert_eq!(data, expected);
    // F.5.2 direction: decryption is the same keystream.
    aes.ctr_apply(&iv, &mut data);
    assert_eq!(
        data,
        unhex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710",
        ))
    );
}

#[test]
fn aes128_fips197_block_vector() {
    let key: [u8; 16] = unhex("000102030405060708090a0b0c0d0e0f")
        .try_into()
        .unwrap();
    let pt: [u8; 16] = unhex("00112233445566778899aabbccddeeff")
        .try_into()
        .unwrap();
    let aes = Aes128::new(&key);
    let ct = aes.encrypt_block(&pt);
    assert_eq!(ct.to_vec(), unhex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    assert_eq!(aes.decrypt_block(&ct), pt);
}

#[test]
fn ctr_iv_is_deterministic_per_tweak() {
    let a = ctr_iv(7, 99);
    let b = ctr_iv(7, 99);
    let c = ctr_iv(8, 99);
    assert_eq!(a, b);
    assert_ne!(a, c);
}

/// RFC 8032 TEST 1 and TEST 2, restated as curve facts: clamped(SHA-512(seed))
/// times the base point equals the decompressed public key.
#[test]
fn ed25519_rfc8032_base_point_multiples() {
    // TEST 1: seed 9d61b19d..; public key d75a9801..511a.
    let s1 = Scalar::from_le_bytes(&unhex32(
        "307c83864f2833cb427a2ef1c00a013cfdff2768d980c0a3a520f006904de94f",
    ));
    let a1 = Point::from_affine(
        Fe::from_le_bytes(&unhex32(
            "ce457677bd8627b1247c185372d413c520f6d0608de0972229349d2b9ae0d055",
        )),
        Fe::from_le_bytes(&unhex32(
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
        )),
    )
    .expect("RFC 8032 TEST 1 public key is on the curve");
    assert!(Point::base().mul(&s1).equals(&a1));

    // TEST 2: seed 4ccd089b..; public key 3d4017c3..660c.
    let s2 = Scalar::from_le_bytes(&unhex32(
        "68bd9ed75882d52815a97585caf4790a7f6c6b3b7f821c5e259a24b02e502e51",
    ));
    let a2 = Point::from_affine(
        Fe::from_le_bytes(&unhex32(
            "ae43de571ee04a246f09a5b61ff98580524e8685653e81c04b384f5b2028ad74",
        )),
        Fe::from_le_bytes(&unhex32(
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
        )),
    )
    .expect("RFC 8032 TEST 2 public key is on the curve");
    assert!(Point::base().mul(&s2).equals(&a2));

    // The two multiples are distinct points (sanity against degenerate
    // mul implementations).
    assert!(!a1.equals(&a2));
}
