//! Small helpers shared across the crate: hex encoding and constant-time
//! comparison.

/// Encodes bytes as a lowercase hex string.
///
/// # Example
///
/// ```
/// assert_eq!(hypertee_crypto::util::to_hex(&[0xde, 0xad]), "dead");
/// ```
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    s
}

/// Decodes a hex string into bytes. Returns `None` on odd length or invalid
/// digits.
///
/// # Example
///
/// ```
/// assert_eq!(hypertee_crypto::util::from_hex("dead"), Some(vec![0xde, 0xad]));
/// assert_eq!(hypertee_crypto::util::from_hex("xyz"), None);
/// ```
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let chars: Vec<char> = s.chars().collect();
    for pair in chars.chunks(2) {
        let hi = pair[0].to_digit(16)?;
        let lo = pair[1].to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

/// Compares two byte slices without early exit, so that comparison time does
/// not depend on where they first differ. Returns `true` when equal.
///
/// Note: in a real firmware this matters against timing attackers; in the
/// simulator it is kept for fidelity with the EMS runtime it models.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let data = vec![0u8, 1, 2, 0xff, 0x80, 0x7f];
        assert_eq!(from_hex(&to_hex(&data)), Some(data));
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert_eq!(from_hex("abc"), None);
        assert_eq!(from_hex("zz"), None);
    }

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"sane"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }
}
