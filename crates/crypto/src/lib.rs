//! Cryptographic primitives for the HyperTEE reproduction.
//!
//! The paper's Enclave Management Subsystem (EMS) performs measurement,
//! attestation, sealing, and memory encryption. Its runtime is described as
//! "3843 lines of code written in memory-safe Rust" (§VIII-A), so this crate
//! mirrors that spirit: every primitive is implemented in-tree, in safe Rust,
//! with no external cryptography dependencies. The single exception is the
//! pair of runtime-dispatched hardware backends (AVX-512 Keccak, AES-NI),
//! whose intrinsics require `unsafe`; they sit behind the same safe APIs,
//! fall back to the portable paths on other hosts, and are pinned against
//! the safe reference implementations by KATs and differential tests.
//!
//! Provided primitives:
//!
//! * [`aes`] — AES-128 block cipher with ECB and CTR modes (models the
//!   multi-key memory encryption engine of §IV-C and the crypto engine of
//!   Table III).
//! * [`sha256`] — SHA-256 (crypto-engine digest, SIGMA transcripts).
//! * [`sha3`] — SHA3-256 / Keccak-f\[1600\] (memory-integrity MAC base, §IV-C).
//! * [`mac`] — the 28-bit truncated SHA-3 MAC used for enclave memory
//!   integrity, as employed by commercial TEEs (paper cites \[61\]).
//! * [`hmac`] — HMAC-SHA256 and an HKDF-style key-derivation function used by
//!   EMS key management (§VI).
//! * [`chacha`] — ChaCha20 block function and a deterministic random bit
//!   generator used wherever EMS needs randomness (pool thresholds, swap
//!   selection, salts).
//! * [`ed`], [`ecdh`], [`sig`] — Curve25519 in twisted-Edwards form, an ECDH
//!   exchange for local attestation (§VI), and Schnorr signatures for remote
//!   attestation certificates (EK/AK signing, §VI).
//!
//! # Example
//!
//! ```
//! use hypertee_crypto::{sig::Keypair, chacha::ChaChaRng};
//!
//! let mut rng = ChaChaRng::from_seed([7u8; 32]);
//! let kp = Keypair::generate(&mut rng);
//! let sig = kp.sign(b"enclave measurement");
//! assert!(kp.public.verify(b"enclave measurement", &sig));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod chacha;
pub mod ecdh;
pub mod ed;
pub mod fe;
pub mod hmac;
#[cfg(target_arch = "x86_64")]
pub(crate) mod keccak_avx512;
pub mod mac;
pub mod merkle;
pub mod scalar;
pub mod sha256;
pub mod sha3;
pub mod sig;
pub mod u256;
pub mod util;

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// An encoded point was not on the curve or malformed.
    InvalidPoint,
    /// An encoded scalar was out of range.
    InvalidScalar,
    /// A signature failed verification.
    BadSignature,
    /// A MAC check failed (memory-integrity violation).
    BadMac,
    /// Input had an invalid length for the operation.
    BadLength,
}

impl core::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CryptoError::InvalidPoint => write!(f, "encoded point is invalid"),
            CryptoError::InvalidScalar => write!(f, "encoded scalar is invalid"),
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::BadMac => write!(f, "mac verification failed"),
            CryptoError::BadLength => write!(f, "input length is invalid"),
        }
    }
}

impl std::error::Error for CryptoError {}
