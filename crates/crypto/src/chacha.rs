//! ChaCha20 block function and a deterministic random bit generator.
//!
//! EMS needs unpredictable-but-reproducible randomness in several places the
//! paper calls out: randomized pool-growth thresholds (§IV-A), random
//! selection of pages for swap-out (§IV-A), attestation salts (§VI), and key
//! erasure with random values (§VI). [`ChaChaRng`] provides all of it,
//! seeded from the platform root of trust in the real system and from a test
//! seed in the simulator.

/// The ChaCha20 quarter round.
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block.
///
/// `key` is 32 bytes, `nonce` is 12 bytes, `counter` is the 32-bit block
/// counter — the RFC 7539 layout.
pub fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().unwrap());
    }
    let initial = state;
    for _ in 0..10 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = state[i].wrapping_add(initial[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// A deterministic random bit generator built on the ChaCha20 block function.
///
/// # Example
///
/// ```
/// use hypertee_crypto::chacha::ChaChaRng;
/// let mut a = ChaChaRng::from_seed([1u8; 32]);
/// let mut b = ChaChaRng::from_seed([1u8; 32]);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone)]
pub struct ChaChaRng {
    key: [u8; 32],
    counter: u32,
    nonce: [u8; 12],
    buffer: [u8; 64],
    offset: usize,
}

impl core::fmt::Debug for ChaChaRng {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ChaChaRng {{ counter: {}, offset: {} }}",
            self.counter, self.offset
        )
    }
}

impl ChaChaRng {
    /// Creates a generator from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        ChaChaRng {
            key: seed,
            counter: 0,
            nonce: [0; 12],
            buffer: [0; 64],
            offset: 64,
        }
    }

    /// Creates a generator from a 64-bit seed by expanding it with SHA-256,
    /// convenient for tests and simulator configuration.
    pub fn from_u64(seed: u64) -> Self {
        let digest = crate::sha256::sha256(&seed.to_le_bytes());
        Self::from_seed(digest)
    }

    fn refill(&mut self) {
        self.buffer = chacha20_block(&self.key, self.counter, &self.nonce);
        self.counter = self.counter.wrapping_add(1);
        self.offset = 0;
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for b in dest.iter_mut() {
            if self.offset == 64 {
                self.refill();
            }
            *b = self.buffer[self.offset];
            self.offset += 1;
        }
    }

    /// Returns a uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.fill_bytes(&mut bytes);
        u64::from_le_bytes(bytes)
    }

    /// Returns a uniformly random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut bytes = [0u8; 4];
        self.fill_bytes(&mut bytes);
        u32::from_le_bytes(bytes)
    }

    /// Returns a uniformly random value in `[0, bound)` using rejection
    /// sampling (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a random 32-byte array (key/salt material).
    pub fn gen_bytes32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.fill_bytes(&mut out);
        out
    }

    /// Shuffles a slice in place (Fisher–Yates), used for randomized page
    /// selection during EWB swap-out.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.is_empty() {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::to_hex;

    #[test]
    fn rfc7539_block_test_vector() {
        // RFC 7539 §2.3.2.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, 1, &nonce);
        assert_eq!(to_hex(&block[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
        assert_eq!(to_hex(&block[48..64]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    #[test]
    fn determinism() {
        let mut a = ChaChaRng::from_u64(42);
        let mut b = ChaChaRng::from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaChaRng::from_u64(1);
        let mut b = ChaChaRng::from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = ChaChaRng::from_u64(7);
        for bound in [1u64, 2, 3, 10, 100, 1 << 40, u64::MAX] {
            for _ in 0..50 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = ChaChaRng::from_u64(3);
        let mut items: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "gen_range bound must be positive")]
    fn gen_range_zero_panics() {
        ChaChaRng::from_u64(0).gen_range(0);
    }
}
