//! Curve25519 in twisted-Edwards form: −x² + y² = 1 + d·x²·y².
//!
//! Points use extended homogeneous coordinates (X : Y : Z : T) with
//! T = XY/Z (Hisil–Wong–Carter–Dawson). This is the group used for local
//! attestation ECDH and Schnorr attestation signatures (§VI).
//!
//! Encoding note: points serialize as 64 bytes (affine x ‖ y) rather than the
//! 32-byte compressed Ed25519 wire format; decompression would require a
//! field square root that nothing in the simulated protocol needs, and the
//! uncompressed form is validated on decode.

use crate::fe::Fe;
use crate::scalar::Scalar;
use crate::u256::U256;
use crate::CryptoError;

/// The curve constant d.
pub const D: Fe = Fe(U256([
    0x75eb_4dca_1359_78a3,
    0x0070_0a4d_4141_d8ab,
    0x8cc7_4079_7779_e898,
    0x5203_6cee_2b6f_fe73,
]));

/// Base point affine x coordinate.
const BASE_X: Fe = Fe(U256([
    0xc956_2d60_8f25_d51a,
    0x692c_c760_9525_a7b2,
    0xc0a4_e231_fdd6_dc5c,
    0x2169_36d3_cd6e_53fe,
]));

/// Base point affine y coordinate (4/5 mod p).
const BASE_Y: Fe = Fe(U256([
    0x6666_6666_6666_6658,
    0x6666_6666_6666_6666,
    0x6666_6666_6666_6666,
    0x6666_6666_6666_6666,
]));

/// A point on the twisted Edwards curve, in extended coordinates.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

impl Point {
    /// The group identity (0, 1).
    pub fn identity() -> Point {
        Point {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// The standard base point B.
    pub fn base() -> Point {
        Point {
            x: BASE_X,
            y: BASE_Y,
            z: Fe::ONE,
            t: BASE_X.mul(&BASE_Y),
        }
    }

    /// Builds a point from affine coordinates, verifying the curve equation.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidPoint`] when (x, y) is not on the curve.
    pub fn from_affine(x: Fe, y: Fe) -> Result<Point, CryptoError> {
        // −x² + y² = 1 + d·x²·y².
        let xx = x.square();
        let yy = y.square();
        let lhs = yy.sub(&xx);
        let rhs = Fe::ONE.add(&D.mul(&xx).mul(&yy));
        if lhs == rhs {
            Ok(Point {
                x,
                y,
                z: Fe::ONE,
                t: x.mul(&y),
            })
        } else {
            Err(CryptoError::InvalidPoint)
        }
    }

    /// Returns the affine (x, y) coordinates.
    pub fn to_affine(&self) -> (Fe, Fe) {
        let zinv = self.z.invert();
        (self.x.mul(&zinv), self.y.mul(&zinv))
    }

    /// Point addition (add-2008-hwcd-3 formulas for a = −1 curves).
    pub fn add(&self, other: &Point) -> Point {
        let a = self.y.sub(&self.x).mul(&other.y.sub(&other.x));
        let b = self.y.add(&self.x).mul(&other.y.add(&other.x));
        let d2 = D.add(&D);
        let c = self.t.mul(&d2).mul(&other.t);
        let d = self.z.add(&self.z).mul(&other.z);
        let e = b.sub(&a);
        let f = d.sub(&c);
        let g = d.add(&c);
        let h = b.add(&a);
        Point {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Point doubling (dbl-2008-hwcd, a = −1).
    pub fn double(&self) -> Point {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().add(&self.z.square());
        let d = a.neg();
        let e = self.x.add(&self.y).square().sub(&a).sub(&b);
        let g = d.add(&b);
        let f = g.sub(&c);
        let h = d.sub(&b);
        Point {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Scalar multiplication (double-and-add, MSB first).
    pub fn mul(&self, k: &Scalar) -> Point {
        let mut acc = Point::identity();
        let top = match k.highest_bit() {
            None => return Point::identity(),
            Some(t) => t,
        };
        for i in (0..=top).rev() {
            acc = acc.double();
            if k.bit(i) {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Projective equality: X1·Z2 == X2·Z1 and Y1·Z2 == Y2·Z1.
    pub fn equals(&self, other: &Point) -> bool {
        self.x.mul(&other.z) == other.x.mul(&self.z) && self.y.mul(&other.z) == other.y.mul(&self.z)
    }

    /// Returns `true` for the identity point.
    pub fn is_identity(&self) -> bool {
        self.equals(&Point::identity())
    }

    /// Serializes as 64 bytes: affine x (32 LE) ‖ affine y (32 LE).
    pub fn encode(&self) -> [u8; 64] {
        let (x, y) = self.to_affine();
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&x.to_le_bytes());
        out[32..].copy_from_slice(&y.to_le_bytes());
        out
    }

    /// Deserializes a 64-byte encoding, verifying the curve equation.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidPoint`] for off-curve encodings.
    pub fn decode(bytes: &[u8; 64]) -> Result<Point, CryptoError> {
        let x = Fe::from_le_bytes(&bytes[..32].try_into().expect("32 bytes"));
        let y = Fe::from_le_bytes(&bytes[32..].try_into().expect("32 bytes"));
        Point::from_affine(x, y)
    }
}

impl PartialEq for Point {
    fn eq(&self, other: &Self) -> bool {
        self.equals(other)
    }
}

impl Eq for Point {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_point_is_on_curve() {
        let (x, y) = Point::base().to_affine();
        assert!(Point::from_affine(x, y).is_ok());
    }

    #[test]
    fn identity_is_neutral() {
        let b = Point::base();
        assert_eq!(b.add(&Point::identity()), b);
        assert_eq!(Point::identity().add(&b), b);
    }

    #[test]
    fn double_matches_add() {
        let b = Point::base();
        assert_eq!(b.double(), b.add(&b));
        let b2 = b.double();
        assert_eq!(b2.double(), b2.add(&b2));
    }

    #[test]
    fn scalar_mul_small_values() {
        let b = Point::base();
        assert_eq!(b.mul(&Scalar::from_u64(1)), b);
        assert_eq!(b.mul(&Scalar::from_u64(2)), b.double());
        assert_eq!(b.mul(&Scalar::from_u64(5)), b.double().double().add(&b));
        assert!(b.mul(&Scalar::ZERO).is_identity());
    }

    #[test]
    fn order_annihilates_base() {
        // L·B = identity confirms both the order constant and the group law.
        let l_bytes = crate::scalar::L.to_le_bytes();
        // Scalar::from_le_bytes would reduce L to 0; multiply by L via
        // (L−1)·B + B instead.
        let (lm1, _) = crate::scalar::L.sbb(&U256::ONE);
        let s = Scalar::from_le_bytes(&lm1.to_le_bytes());
        let almost = Point::base().mul(&s);
        assert!(almost.add(&Point::base()).is_identity());
        let _ = l_bytes;
    }

    #[test]
    fn scalar_mul_distributes() {
        let b = Point::base();
        let a = Scalar::from_u64(123456);
        let c = Scalar::from_u64(654321);
        assert_eq!(b.mul(&a).add(&b.mul(&c)), b.mul(&a.add(&c)));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = Point::base().mul(&Scalar::from_u64(777));
        let decoded = Point::decode(&p.encode()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn decode_rejects_off_curve() {
        let mut bytes = Point::base().encode();
        bytes[0] ^= 1; // Perturb x.
        assert_eq!(Point::decode(&bytes), Err(CryptoError::InvalidPoint));
    }
}
