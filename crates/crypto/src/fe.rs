//! Arithmetic in the field GF(2^255 − 19) underlying Curve25519.

use crate::u256::{U256, U512};

/// The field prime p = 2^255 − 19, little-endian limbs.
pub const P: U256 = U256([
    0xffff_ffff_ffff_ffed,
    0xffff_ffff_ffff_ffff,
    0xffff_ffff_ffff_ffff,
    0x7fff_ffff_ffff_ffff,
]);

/// An element of GF(2^255 − 19), kept in canonical form (`< p`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fe(pub(crate) U256);

/// Multiplies a 512-bit value by a small constant, asserting no overflow out
/// of 512 bits (true for the reduction path where the top limbs are sparse).
fn mul_small(x: &U512, k: u64) -> U512 {
    let mut out = [0u64; 8];
    let mut carry = 0u128;
    for (o, &limb) in out.iter_mut().zip(x.0.iter()) {
        let acc = (limb as u128) * (k as u128) + carry;
        *o = acc as u64;
        carry = acc >> 64;
    }
    debug_assert_eq!(carry, 0, "mul_small overflow");
    U512(out)
}

fn add512(a: &U512, b: &U512) -> U512 {
    let mut out = [0u64; 8];
    let mut carry = 0u64;
    for (o, (&ai, &bi)) in out.iter_mut().zip(a.0.iter().zip(b.0.iter())) {
        let (s1, c1) = ai.overflowing_add(bi);
        let (s2, c2) = s1.overflowing_add(carry);
        *o = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    debug_assert_eq!(carry, 0, "add512 overflow");
    U512(out)
}

/// `x >> 255`.
fn shr255(x: &U512) -> U512 {
    // Shift right by 255 = shift right 192 bits (3 limbs) then 63 bits.
    let mut limbs = [0u64; 8];
    for (i, limb) in limbs.iter_mut().enumerate().take(5) {
        let lo = x.0[i + 3] >> 63;
        let hi = if i + 4 < 8 { x.0[i + 4] << 1 } else { 0 };
        *limb = lo | hi;
    }
    U512(limbs)
}

/// Low 255 bits of `x` as a 512-bit value.
fn mask255(x: &U512) -> U512 {
    let mut limbs = [0u64; 8];
    limbs[..4].copy_from_slice(&x.0[..4]);
    limbs[3] &= 0x7fff_ffff_ffff_ffff;
    U512(limbs)
}

/// Reduces a 512-bit product modulo p using 2^255 ≡ 19 (mod p).
fn reduce_p(mut x: U512) -> U256 {
    loop {
        let hi = shr255(&x);
        if hi.is_zero() {
            break;
        }
        x = add512(&mask255(&x), &mul_small(&hi, 19));
    }
    let mut r = U256([x.0[0], x.0[1], x.0[2], x.0[3]]);
    // r < 2^255 < 2p, so at most one subtraction normalises it.
    if r.cmp_u256(&P) != core::cmp::Ordering::Less {
        let (sub, _) = r.sbb(&P);
        r = sub;
    }
    r
}

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe(U256([0, 0, 0, 0]));
    /// The multiplicative identity.
    pub const ONE: Fe = Fe(U256([1, 0, 0, 0]));

    /// Builds a field element from a small integer.
    pub fn from_u64(v: u64) -> Fe {
        Fe(U256::from_u64(v))
    }

    /// Parses 32 little-endian bytes, reducing modulo p.
    pub fn from_le_bytes(bytes: &[u8; 32]) -> Fe {
        let raw = U256::from_le_bytes(bytes);
        Fe(U512::from_u256(&raw).reduce_mod(&P))
    }

    /// Serializes to 32 little-endian bytes (canonical form).
    pub fn to_le_bytes(self) -> [u8; 32] {
        self.0.to_le_bytes()
    }

    /// Returns `true` when this element is zero.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// Field addition.
    pub fn add(&self, other: &Fe) -> Fe {
        Fe(crate::u256::add_mod(&self.0, &other.0, &P))
    }

    /// Field subtraction.
    pub fn sub(&self, other: &Fe) -> Fe {
        Fe(crate::u256::sub_mod(&self.0, &other.0, &P))
    }

    /// Field negation.
    pub fn neg(&self) -> Fe {
        Fe::ZERO.sub(self)
    }

    /// Field multiplication with the fast 2^255 ≡ 19 reduction.
    pub fn mul(&self, other: &Fe) -> Fe {
        Fe(reduce_p(self.0.widening_mul(&other.0)))
    }

    /// Field squaring.
    pub fn square(&self) -> Fe {
        self.mul(self)
    }

    /// Raises to the power `exp` (square-and-multiply).
    pub fn pow(&self, exp: &U256) -> Fe {
        let mut acc = Fe::ONE;
        let mut base = *self;
        let top = exp.highest_bit().unwrap_or(0);
        for i in 0..=top {
            if exp.bit(i) {
                acc = acc.mul(&base);
            }
            base = base.square();
        }
        if exp.is_zero() {
            Fe::ONE
        } else {
            acc
        }
    }

    /// Multiplicative inverse via Fermat: `self^(p−2)`.
    ///
    /// # Panics
    ///
    /// Panics when called on zero.
    pub fn invert(&self) -> Fe {
        assert!(!self.is_zero(), "zero has no inverse");
        let (p_minus_2, _) = P.sbb(&U256::from_u64(2));
        self.pow(&p_minus_2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_is_identity() {
        let x = Fe::from_u64(123456789);
        assert_eq!(x.mul(&Fe::ONE), x);
        assert_eq!(x.add(&Fe::ZERO), x);
    }

    #[test]
    fn sub_neg_consistency() {
        let a = Fe::from_u64(5);
        let b = Fe::from_u64(9);
        assert_eq!(a.sub(&b), a.add(&b.neg()));
    }

    #[test]
    fn two_to_255_is_19_plus_zero() {
        // 2^255 mod p = 19.
        let two = Fe::from_u64(2);
        let v = two.pow(&U256::from_u64(255));
        assert_eq!(v, Fe::from_u64(19));
    }

    #[test]
    fn invert_roundtrip() {
        for v in [1u64, 2, 19, 123456789, u64::MAX] {
            let x = Fe::from_u64(v);
            assert_eq!(x.mul(&x.invert()), Fe::ONE, "v={v}");
        }
    }

    #[test]
    fn p_reduces_to_zero() {
        let bytes = P.to_le_bytes();
        assert!(Fe::from_le_bytes(&bytes).is_zero());
    }

    #[test]
    fn mul_commutative_associative() {
        let a = Fe::from_le_bytes(&[0xaa; 32]);
        let b = Fe::from_le_bytes(&[0x37; 32]);
        let c = Fe::from_le_bytes(&[0x91; 32]);
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn distributive_law() {
        let a = Fe::from_u64(7777);
        let b = Fe::from_le_bytes(&[0x55; 32]);
        let c = Fe::from_le_bytes(&[0x13; 32]);
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn invert_zero_panics() {
        Fe::ZERO.invert();
    }
}
