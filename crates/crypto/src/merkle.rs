//! Merkle hash trees over fixed-size pages.
//!
//! §IX of the paper: "To support CVM snapshot, save, and restore, EMS
//! ensures the confidentiality and integrity of CVM memory by encrypting it
//! using AES algorithm and creating a Merkle tree. The encryption key and
//! the root hash value are stored in the private memory of EMS."
//!
//! (For *enclave* memory the paper deliberately prefers the flat 28-bit MAC
//! of [`crate::mac`] — "more suitable for large-size enclave memory than
//! Merkle Trees" — so this tree is used only on the CVM snapshot path.)

use crate::sha256::Sha256;

/// A Merkle tree over equally sized leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// levels[0] = leaf hashes, last level = [root].
    levels: Vec<Vec<[u8; 32]>>,
}

/// An inclusion proof for one leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling hashes from leaf level upward, with the side flag
    /// (`true` = sibling is on the right).
    pub siblings: Vec<([u8; 32], bool)>,
}

fn hash_leaf(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"leaf");
    h.update(data);
    h.finalize()
}

fn hash_node(left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"node");
    h.update(left);
    h.update(right);
    h.finalize()
}

impl MerkleTree {
    /// Builds a tree over `leaves` (page contents). Odd nodes are paired
    /// with themselves.
    ///
    /// # Panics
    ///
    /// Panics on an empty leaf set.
    pub fn build<D: AsRef<[u8]>>(leaves: &[D]) -> MerkleTree {
        assert!(!leaves.is_empty(), "merkle tree needs at least one leaf");
        let mut levels = vec![leaves
            .iter()
            .map(|d| hash_leaf(d.as_ref()))
            .collect::<Vec<_>>()];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let right = pair.get(1).unwrap_or(&pair[0]);
                next.push(hash_node(&pair[0], right));
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root hash.
    pub fn root(&self) -> [u8; 32] {
        self.levels.last().expect("nonempty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Produces an inclusion proof for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn prove(&self, index: usize) -> MerkleProof {
        assert!(index < self.leaf_count(), "leaf index out of range");
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            let sibling = *level.get(sibling_idx).unwrap_or(&level[idx]);
            siblings.push((sibling, sibling_idx > idx));
            idx /= 2;
        }
        MerkleProof { index, siblings }
    }

    /// Verifies that `data` is the leaf at `proof.index` under `root`.
    pub fn verify(root: &[u8; 32], data: &[u8], proof: &MerkleProof) -> bool {
        let mut acc = hash_leaf(data);
        for (sibling, on_right) in &proof.siblings {
            acc = if *on_right {
                hash_node(&acc, sibling)
            } else {
                hash_node(sibling, &acc)
            };
        }
        &acc == root
    }

    /// Updates one leaf and recomputes the path to the root (incremental
    /// re-hash for dirty-page tracking during snapshots).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn update(&mut self, index: usize, data: &[u8]) {
        assert!(index < self.leaf_count(), "leaf index out of range");
        self.levels[0][index] = hash_leaf(data);
        let mut idx = index;
        for l in 1..self.levels.len() {
            idx /= 2;
            let below = &self.levels[l - 1];
            let left = below[2 * idx];
            let right = *below.get(2 * idx + 1).unwrap_or(&left);
            self.levels[l][idx] = hash_node(&left, &right);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i as u8; 64]).collect()
    }

    #[test]
    fn proofs_verify_for_all_leaves() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            let leaves = pages(n);
            let tree = MerkleTree::build(&leaves);
            for (i, leaf) in leaves.iter().enumerate() {
                let proof = tree.prove(i);
                assert!(
                    MerkleTree::verify(&tree.root(), leaf, &proof),
                    "n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn wrong_data_rejected() {
        let leaves = pages(8);
        let tree = MerkleTree::build(&leaves);
        let proof = tree.prove(3);
        assert!(!MerkleTree::verify(&tree.root(), b"tampered page", &proof));
        // A valid leaf under the wrong index also fails.
        let wrong_index = tree.prove(4);
        assert!(!MerkleTree::verify(&tree.root(), &leaves[3], &wrong_index));
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let leaves = pages(6);
        let base = MerkleTree::build(&leaves).root();
        for i in 0..6 {
            let mut modified = leaves.clone();
            modified[i][0] ^= 1;
            assert_ne!(MerkleTree::build(&modified).root(), base, "leaf {i}");
        }
    }

    #[test]
    fn incremental_update_matches_rebuild() {
        let mut leaves = pages(7);
        let mut tree = MerkleTree::build(&leaves);
        leaves[2] = vec![0xee; 64];
        tree.update(2, &leaves[2]);
        assert_eq!(tree.root(), MerkleTree::build(&leaves).root());
        // Proofs still verify after the update.
        assert!(MerkleTree::verify(&tree.root(), &leaves[2], &tree.prove(2)));
    }

    #[test]
    fn single_leaf_tree() {
        let tree = MerkleTree::build(&[b"only page"]);
        assert_eq!(tree.leaf_count(), 1);
        assert!(MerkleTree::verify(
            &tree.root(),
            b"only page",
            &tree.prove(0)
        ));
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_tree_panics() {
        MerkleTree::build::<&[u8]>(&[]);
    }
}
