//! AVX-512F backend for the Keccak-f\[1600\] permutation.
//!
//! The scalar permutation is throughput-bound at roughly a thousand host
//! cycles: ~76 ALU ops per round over a 25-lane working set that cannot fit
//! the 16 general-purpose registers, so every round pays spill traffic.
//! AVX-512 removes both limits at once:
//!
//! * the whole state lives in five zmm registers (one 5-lane *plane* per
//!   register, qword positions 5..7 unused),
//! * theta's column parity is two `vpternlogq` (3-way XOR) instructions,
//! * rho is one `vprolvq` per-lane variable rotate per plane,
//! * chi's `a ^ (!b & c)` is a single `vpternlogq` (imm 0xD2) per plane.
//!
//! Pi is the awkward part: each output plane gathers one lane from every
//! input plane, which costs two `vpermi2q` two-source shuffles, a blend and
//! a masked `vpermq` per plane.
//!
//! This module is the only `unsafe` code in the crate (together with the
//! AES-NI backend); it is reachable solely through the runtime-dispatched
//! wrappers in [`crate::sha3`], which fall back to the safe scalar path when
//! AVX-512F is absent. Equivalence with the scalar implementation is pinned
//! by the crate's NIST KATs and the `*_matches_reference` differential tests,
//! which exercise this backend on any AVX-512 host.
#![allow(unsafe_code)]

use core::arch::x86_64::*;

use crate::sha3::{RATE, RC};

/// Lane-position rotation amounts (rho), one vector per plane `y`,
/// position `x` holding the offset of lane `(x, y)`.
const RHO_BY_PLANE: [[i64; 8]; 5] = [
    [0, 1, 62, 28, 27, 0, 0, 0],
    [36, 44, 6, 55, 20, 0, 0, 0],
    [3, 10, 43, 25, 39, 0, 0, 0],
    [41, 45, 15, 21, 8, 0, 0, 0],
    [18, 2, 61, 56, 14, 0, 0, 0],
];

/// Pi source-lane index per output plane: output plane `y'` takes its
/// position `x'` from input plane `x'` at qword `(x' + 3*y') % 5`.
const PI_Q: [[i64; 5]; 5] = [
    [0, 1, 2, 3, 4],
    [3, 4, 0, 1, 2],
    [1, 2, 3, 4, 0],
    [4, 0, 1, 2, 3],
    [2, 3, 4, 0, 1],
];

/// The full 24-round permutation over five plane registers.
///
/// Positions 5..7 of each register carry garbage after the first round; the
/// index vectors for positions 0..4 only ever reference positions 0..4 (or
/// the matching garbage positions of another register), so the junk never
/// contaminates the live lanes, and the callers store with a 5-lane mask.
///
/// # Safety
///
/// Requires AVX-512F; callers must verify with `is_x86_feature_detected!`.
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn permute(r: &mut [__m512i; 5]) {
    // SAFETY: every intrinsic below is AVX-512F, guaranteed available by the
    // caller contract; no memory is touched outside `r`.
    unsafe {
        let left = _mm512_setr_epi64(4, 0, 1, 2, 3, 5, 6, 7); // C[x-1] at x
        let right = _mm512_setr_epi64(1, 2, 3, 4, 0, 5, 6, 7); // C[x+1] at x
        let plus2 = _mm512_setr_epi64(2, 3, 4, 0, 1, 5, 6, 7); // B[x+2] at x
        let mut rho = [_mm512_setzero_si512(); 5];
        for (v, amounts) in rho.iter_mut().zip(RHO_BY_PLANE.iter()) {
            *v = _mm512_loadu_si512(amounts.as_ptr().cast());
        }
        // Two-source gather indices for pi: positions 0/1 from planes 0 and
        // 1, positions 2/3 from planes 2 and 3, position 4 from plane 4.
        let mut pi01 = [_mm512_setzero_si512(); 5];
        let mut pi23 = [_mm512_setzero_si512(); 5];
        let mut pi4 = [_mm512_setzero_si512(); 5];
        for y in 0..5 {
            let q = &PI_Q[y];
            pi01[y] = _mm512_setr_epi64(q[0], 8 + q[1], 0, 0, 0, 0, 0, 0);
            pi23[y] = _mm512_setr_epi64(0, 0, q[2], 8 + q[3], 0, 0, 0, 0);
            pi4[y] = _mm512_setr_epi64(0, 0, 0, 0, q[4], 0, 0, 0);
        }
        for &rc in RC.iter() {
            // Theta: column parity in two 3-way XORs, then D = C[x-1] ^
            // rol(C[x+1], 1) broadcast to every plane.
            let c = _mm512_ternarylogic_epi64(
                _mm512_ternarylogic_epi64(r[0], r[1], r[2], 0x96),
                r[3],
                r[4],
                0x96,
            );
            let d = _mm512_xor_si512(
                _mm512_permutexvar_epi64(left, c),
                _mm512_rol_epi64(_mm512_permutexvar_epi64(right, c), 1),
            );
            // Theta apply + rho: one XOR and one variable rotate per plane.
            let t = [
                _mm512_rolv_epi64(_mm512_xor_si512(r[0], d), rho[0]),
                _mm512_rolv_epi64(_mm512_xor_si512(r[1], d), rho[1]),
                _mm512_rolv_epi64(_mm512_xor_si512(r[2], d), rho[2]),
                _mm512_rolv_epi64(_mm512_xor_si512(r[3], d), rho[3]),
                _mm512_rolv_epi64(_mm512_xor_si512(r[4], d), rho[4]),
            ];
            // Pi: rebuild each plane from one lane of every input plane.
            let mut b = [_mm512_setzero_si512(); 5];
            for y in 0..5 {
                let p01 = _mm512_permutex2var_epi64(t[0], pi01[y], t[1]);
                let p23 = _mm512_permutex2var_epi64(t[2], pi23[y], t[3]);
                let merged = _mm512_mask_blend_epi64(0b0000_1100, p01, p23);
                b[y] = _mm512_mask_permutexvar_epi64(merged, 0b0001_0000, pi4[y], t[4]);
            }
            // Chi: a ^ (!b & c) is ternary function 0xD2.
            for y in 0..5 {
                let s1 = _mm512_permutexvar_epi64(right, b[y]);
                let s2 = _mm512_permutexvar_epi64(plus2, b[y]);
                r[y] = _mm512_ternarylogic_epi64(b[y], s1, s2, 0xd2);
            }
            // Iota.
            r[0] = _mm512_xor_si512(r[0], _mm512_maskz_set1_epi64(0b0000_0001, rc as i64));
        }
    }
}

/// Applies the permutation to a 25-lane state in memory.
///
/// # Safety
///
/// Requires AVX-512F; callers must verify with `is_x86_feature_detected!`.
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn keccakf(state: &mut [u64; 25]) {
    // SAFETY: masked loads/stores touch exactly lanes 0..4 of each plane
    // (fault-suppressed beyond the mask), all within the 25-lane array.
    unsafe {
        let p = state.as_mut_ptr().cast::<i64>();
        let mut r = [
            _mm512_maskz_loadu_epi64(0x1f, p),
            _mm512_maskz_loadu_epi64(0x1f, p.add(5)),
            _mm512_maskz_loadu_epi64(0x1f, p.add(10)),
            _mm512_maskz_loadu_epi64(0x1f, p.add(15)),
            _mm512_maskz_loadu_epi64(0x1f, p.add(20)),
        ];
        permute(&mut r);
        for (y, v) in r.iter().enumerate() {
            _mm512_mask_storeu_epi64(p.add(5 * y), 0x1f, *v);
        }
    }
}

/// Rotates every qword left by a compile-time amount, tolerating 0.
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn rolc<const N: i32>(v: __m512i) -> __m512i {
    if N == 0 {
        v
    } else {
        _mm512_rol_epi64::<N>(v)
    }
}

/// 3-way XOR in one `vpternlogq`.
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn xor3(a: __m512i, b: __m512i, c: __m512i) -> __m512i {
    _mm512_ternarylogic_epi64(a, b, c, 0x96)
}

/// Chi's `a ^ (!b & c)` in one `vpternlogq`.
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn chi(a: __m512i, b: __m512i, c: __m512i) -> __m512i {
    _mm512_ternarylogic_epi64(a, b, c, 0xd2)
}

/// Eight *independent* Keccak-f\[1600\] permutations, one per qword slot.
///
/// Unlike the single-state path above, the lane-sliced layout (register `i`
/// holds state lane `i` of all eight instances) makes every Keccak step
/// elementwise: theta and chi are `vpternlogq` trees, rho is an immediate
/// rotate per register, and pi is pure register renaming — zero shuffles.
/// The ~76 ops per round are shared by eight instances, which is where the
/// batched line-MAC gets its near-order-of-magnitude over one-at-a-time
/// hashing.
///
/// # Safety
///
/// Requires AVX-512F; callers must verify with `is_x86_feature_detected!`.
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn permute_x8(s: &mut [__m512i; 25]) {
    // SAFETY: elementwise register arithmetic only.
    unsafe {
        for &rc in RC.iter() {
            // Theta.
            let c0 = xor3(xor3(s[0], s[5], s[10]), s[15], s[20]);
            let c1 = xor3(xor3(s[1], s[6], s[11]), s[16], s[21]);
            let c2 = xor3(xor3(s[2], s[7], s[12]), s[17], s[22]);
            let c3 = xor3(xor3(s[3], s[8], s[13]), s[18], s[23]);
            let c4 = xor3(xor3(s[4], s[9], s[14]), s[19], s[24]);
            let d0 = _mm512_xor_si512(c4, rolc::<1>(c1));
            let d1 = _mm512_xor_si512(c0, rolc::<1>(c2));
            let d2 = _mm512_xor_si512(c1, rolc::<1>(c3));
            let d3 = _mm512_xor_si512(c2, rolc::<1>(c4));
            let d4 = _mm512_xor_si512(c3, rolc::<1>(c0));
            for x in 0..5 {
                let d = [d0, d1, d2, d3, d4][x];
                s[x] = _mm512_xor_si512(s[x], d);
                s[x + 5] = _mm512_xor_si512(s[x + 5], d);
                s[x + 10] = _mm512_xor_si512(s[x + 10], d);
                s[x + 15] = _mm512_xor_si512(s[x + 15], d);
                s[x + 20] = _mm512_xor_si512(s[x + 20], d);
            }
            // Rho + Pi: same lane moves as the scalar `keccak_round!`.
            let b0 = s[0];
            let b10 = rolc::<1>(s[1]);
            let b7 = rolc::<3>(s[10]);
            let b11 = rolc::<6>(s[7]);
            let b17 = rolc::<10>(s[11]);
            let b18 = rolc::<15>(s[17]);
            let b3 = rolc::<21>(s[18]);
            let b5 = rolc::<28>(s[3]);
            let b16 = rolc::<36>(s[5]);
            let b8 = rolc::<45>(s[16]);
            let b21 = rolc::<55>(s[8]);
            let b24 = rolc::<2>(s[21]);
            let b4 = rolc::<14>(s[24]);
            let b15 = rolc::<27>(s[4]);
            let b23 = rolc::<41>(s[15]);
            let b19 = rolc::<56>(s[23]);
            let b13 = rolc::<8>(s[19]);
            let b12 = rolc::<25>(s[13]);
            let b2 = rolc::<43>(s[12]);
            let b20 = rolc::<62>(s[2]);
            let b14 = rolc::<18>(s[20]);
            let b22 = rolc::<39>(s[14]);
            let b9 = rolc::<61>(s[22]);
            let b6 = rolc::<20>(s[9]);
            let b1 = rolc::<44>(s[6]);
            // Chi + Iota.
            s[0] = _mm512_xor_si512(chi(b0, b1, b2), _mm512_set1_epi64(rc as i64));
            s[1] = chi(b1, b2, b3);
            s[2] = chi(b2, b3, b4);
            s[3] = chi(b3, b4, b0);
            s[4] = chi(b4, b0, b1);
            s[5] = chi(b5, b6, b7);
            s[6] = chi(b6, b7, b8);
            s[7] = chi(b7, b8, b9);
            s[8] = chi(b8, b9, b5);
            s[9] = chi(b9, b5, b6);
            s[10] = chi(b10, b11, b12);
            s[11] = chi(b11, b12, b13);
            s[12] = chi(b12, b13, b14);
            s[13] = chi(b13, b14, b10);
            s[14] = chi(b14, b10, b11);
            s[15] = chi(b15, b16, b17);
            s[16] = chi(b16, b17, b18);
            s[17] = chi(b17, b18, b19);
            s[18] = chi(b18, b19, b15);
            s[19] = chi(b19, b15, b16);
            s[20] = chi(b20, b21, b22);
            s[21] = chi(b21, b22, b23);
            s[22] = chi(b22, b23, b24);
            s[23] = chi(b23, b24, b20);
            s[24] = chi(b24, b20, b21);
        }
    }
}

/// Transposes eight 8-qword rows (one per instance) into eight lane-sliced
/// registers, via the classic unpack / 128-bit-shuffle butterfly.
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn transpose_8x8(r: [__m512i; 8]) -> [__m512i; 8] {
    {
        let t0 = _mm512_unpacklo_epi64(r[0], r[1]);
        let t1 = _mm512_unpackhi_epi64(r[0], r[1]);
        let t2 = _mm512_unpacklo_epi64(r[2], r[3]);
        let t3 = _mm512_unpackhi_epi64(r[2], r[3]);
        let t4 = _mm512_unpacklo_epi64(r[4], r[5]);
        let t5 = _mm512_unpackhi_epi64(r[4], r[5]);
        let t6 = _mm512_unpacklo_epi64(r[6], r[7]);
        let t7 = _mm512_unpackhi_epi64(r[6], r[7]);
        let u0 = _mm512_shuffle_i64x2(t0, t2, 0x88);
        let u1 = _mm512_shuffle_i64x2(t1, t3, 0x88);
        let u2 = _mm512_shuffle_i64x2(t0, t2, 0xdd);
        let u3 = _mm512_shuffle_i64x2(t1, t3, 0xdd);
        let u4 = _mm512_shuffle_i64x2(t4, t6, 0x88);
        let u5 = _mm512_shuffle_i64x2(t5, t7, 0x88);
        let u6 = _mm512_shuffle_i64x2(t4, t6, 0xdd);
        let u7 = _mm512_shuffle_i64x2(t5, t7, 0xdd);
        [
            _mm512_shuffle_i64x2(u0, u4, 0x88),
            _mm512_shuffle_i64x2(u1, u5, 0x88),
            _mm512_shuffle_i64x2(u2, u6, 0x88),
            _mm512_shuffle_i64x2(u3, u7, 0x88),
            _mm512_shuffle_i64x2(u0, u4, 0xdd),
            _mm512_shuffle_i64x2(u1, u5, 0xdd),
            _mm512_shuffle_i64x2(u2, u6, 0xdd),
            _mm512_shuffle_i64x2(u3, u7, 0xdd),
        ]
    }
}

/// Eight single-block line-MAC sponges at once: instance `i` absorbs the
/// padded block `key ‖ (first_addr + 64·i) ‖ 64 ‖ data[64·i..64·i+64]` and
/// the returned qword `i` carries its first 8 digest bytes. The key and the
/// constant lanes are broadcast; only the 8×8 block of data lanes needs a
/// real transpose.
///
/// # Safety
///
/// Requires AVX-512F; callers must verify with `is_x86_feature_detected!`.
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn mac28_lines8(
    key_lanes: &[u64; 4],
    first_addr: u64,
    data: &[u8; 512],
) -> [u64; 8] {
    // SAFETY: loads read exactly the 512 data bytes; the store writes the
    // 8-qword result buffer.
    unsafe {
        let rows = core::array::from_fn(|i| _mm512_loadu_si512(data.as_ptr().add(64 * i).cast()));
        let lanes = transpose_8x8(rows);
        let zero = _mm512_setzero_si512();
        let mut s = [zero; 25];
        s[0] = _mm512_set1_epi64(key_lanes[0] as i64);
        s[1] = _mm512_set1_epi64(key_lanes[1] as i64);
        s[2] = _mm512_set1_epi64(key_lanes[2] as i64);
        s[3] = _mm512_set1_epi64(key_lanes[3] as i64);
        s[4] = _mm512_add_epi64(
            _mm512_set1_epi64(first_addr as i64),
            _mm512_setr_epi64(0, 64, 128, 192, 256, 320, 384, 448),
        );
        s[5] = _mm512_set1_epi64(64);
        s[6..14].copy_from_slice(&lanes);
        s[14] = _mm512_set1_epi64(0x06); // padding start at message byte 112
        s[16] = _mm512_set1_epi64((0x80u64 << 56) as i64); // 0x80 at rate byte 135
        permute_x8(&mut s);
        let mut out = [0u64; 8];
        _mm512_storeu_si512(out.as_mut_ptr().cast(), s[0]);
        out
    }
}

/// Fused single-block sponge: absorbs one padded rate block into an all-zero
/// state, permutes, and returns lane 0 (the first 8 digest bytes) — the
/// entire SHA3-256 computation for the per-line memory MAC.
///
/// # Safety
///
/// Requires AVX-512F; callers must verify with `is_x86_feature_detected!`.
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn keccakf_single_block(lanes: &[u64; RATE / 8]) -> u64 {
    // SAFETY: masked loads read exactly lanes 0..16 of the 17-lane block;
    // the capacity lanes start zero as the sponge requires.
    unsafe {
        let p = lanes.as_ptr().cast::<i64>();
        let mut r = [
            _mm512_maskz_loadu_epi64(0x1f, p),
            _mm512_maskz_loadu_epi64(0x1f, p.add(5)),
            _mm512_maskz_loadu_epi64(0x1f, p.add(10)),
            _mm512_maskz_loadu_epi64(0x03, p.add(15)),
            _mm512_setzero_si512(),
        ];
        permute(&mut r);
        _mm_cvtsi128_si64(_mm512_castsi512_si128(r[0])) as u64
    }
}
