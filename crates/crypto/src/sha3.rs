//! SHA3-256 over the Keccak-f\[1600\] permutation.
//!
//! The paper protects enclave memory integrity with a "SHA-3 based MAC
//! (28-bit)" (§IV-C). This module provides the underlying hash; the truncated
//! MAC itself lives in [`crate::mac`].

const ROUNDS: usize = 24;

const RC: [u64; ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

const RHO: [u32; 24] = [
    1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 2, 14, 27, 41, 56, 8, 25, 43, 62, 18, 39, 61, 20, 44,
];

const PI: [usize; 24] = [
    10, 7, 11, 17, 18, 3, 5, 16, 8, 21, 24, 4, 15, 23, 19, 13, 12, 2, 20, 14, 22, 9, 6, 1,
];

/// Applies the Keccak-f\[1600\] permutation to the 25-lane state.
pub fn keccakf(state: &mut [u64; 25]) {
    for &rc in RC.iter() {
        // Theta.
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }
        // Rho and Pi.
        let mut last = state[1];
        for i in 0..24 {
            let j = PI[i];
            let tmp = state[j];
            state[j] = last.rotate_left(RHO[i]);
            last = tmp;
        }
        // Chi.
        for y in 0..5 {
            let row = [
                state[5 * y],
                state[5 * y + 1],
                state[5 * y + 2],
                state[5 * y + 3],
                state[5 * y + 4],
            ];
            for x in 0..5 {
                state[5 * y + x] = row[x] ^ ((!row[(x + 1) % 5]) & row[(x + 2) % 5]);
            }
        }
        // Iota.
        state[0] ^= rc;
    }
}

/// Rate in bytes for SHA3-256 (1088 bits).
const RATE: usize = 136;

/// Incremental SHA3-256 hasher.
#[derive(Clone, Debug)]
pub struct Sha3_256 {
    state: [u64; 25],
    buffer: [u8; RATE],
    buffer_len: usize,
}

impl Default for Sha3_256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha3_256 {
    /// Creates a fresh hasher.
    ///
    /// # Example
    ///
    /// ```
    /// use hypertee_crypto::sha3::Sha3_256;
    /// let mut h = Sha3_256::new();
    /// h.update(b"abc");
    /// let digest = h.finalize();
    /// assert_eq!(digest[0], 0x3a);
    /// ```
    pub fn new() -> Self {
        Sha3_256 {
            state: [0; 25],
            buffer: [0; RATE],
            buffer_len: 0,
        }
    }

    fn absorb_block(&mut self) {
        for i in 0..RATE / 8 {
            let lane = u64::from_le_bytes(self.buffer[8 * i..8 * i + 8].try_into().unwrap());
            self.state[i] ^= lane;
        }
        keccakf(&mut self.state);
        self.buffer_len = 0;
    }

    /// Absorbs more input.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffer_len] = b;
            self.buffer_len += 1;
            if self.buffer_len == RATE {
                self.absorb_block();
            }
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        // SHA-3 domain-separation padding: 0x06 ... 0x80.
        for b in self.buffer[self.buffer_len..].iter_mut() {
            *b = 0;
        }
        self.buffer[self.buffer_len] ^= 0x06;
        self.buffer[RATE - 1] ^= 0x80;
        self.buffer_len = RATE;
        // absorb_block resets buffer_len, fine.
        let mut this = self;
        for i in 0..RATE / 8 {
            let lane = u64::from_le_bytes(this.buffer[8 * i..8 * i + 8].try_into().unwrap());
            this.state[i] ^= lane;
        }
        keccakf(&mut this.state);
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * i..8 * i + 8].copy_from_slice(&this.state[i].to_le_bytes());
        }
        out
    }
}

/// One-shot SHA3-256.
pub fn sha3_256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha3_256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::to_hex;

    #[test]
    fn empty_string() {
        assert_eq!(
            to_hex(&sha3_256(b"")),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            to_hex(&sha3_256(b"abc")),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..2000u32).map(|i| (i * 7 % 253) as u8).collect();
        let oneshot = sha3_256(&data);
        for split in [0usize, 1, 135, 136, 137, 1000, 2000] {
            let mut h = Sha3_256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn rate_boundary_message() {
        // Exactly one rate block of input exercises the padding-only block.
        let data = vec![0xa3u8; RATE];
        let d1 = sha3_256(&data);
        let mut h = Sha3_256::new();
        for &b in &data {
            h.update(&[b]);
        }
        assert_eq!(h.finalize(), d1);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha3_256(b"enclave-a"), sha3_256(b"enclave-b"));
    }
}
