//! SHA3-256 over the Keccak-f\[1600\] permutation.
//!
//! The paper protects enclave memory integrity with a "SHA-3 based MAC
//! (28-bit)" (§IV-C). This module provides the underlying hash; the truncated
//! MAC itself lives in [`crate::mac`].

const ROUNDS: usize = 24;

pub(crate) const RC: [u64; ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

const RHO: [u32; 24] = [
    1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 2, 14, 27, 41, 56, 8, 25, 43, 62, 18, 39, 61, 20, 44,
];

const PI: [usize; 24] = [
    10, 7, 11, 17, 18, 3, 5, 16, 8, 21, 24, 4, 15, 23, 19, 13, 12, 2, 20, 14, 22, 9, 6, 1,
];

/// One Keccak round from 25 named input lanes to 25 named output lanes.
///
/// Theta's column parities are folded straight into the rho rotations
/// (`b = (in ^ d).rotate_left(r)`), so a round never writes its inputs —
/// every value is a fresh SSA name the compiler can schedule freely across
/// rounds; the caller's mutable lanes are only re-assigned once per
/// unrolled chain (a register-to-register move LLVM elides). Lane `aXY` is
/// flat index `X + 5*Y` of the reference state; pinned against the
/// loop-based [`keccakf_ref`] by the crate's differential tests.
macro_rules! keccak_round_io {
    ($rc:expr,
     $i0:ident $i1:ident $i2:ident $i3:ident $i4:ident
     $i5:ident $i6:ident $i7:ident $i8:ident $i9:ident
     $i10:ident $i11:ident $i12:ident $i13:ident $i14:ident
     $i15:ident $i16:ident $i17:ident $i18:ident $i19:ident
     $i20:ident $i21:ident $i22:ident $i23:ident $i24:ident =>
     $o0:ident $o1:ident $o2:ident $o3:ident $o4:ident
     $o5:ident $o6:ident $o7:ident $o8:ident $o9:ident
     $o10:ident $o11:ident $o12:ident $o13:ident $o14:ident
     $o15:ident $o16:ident $o17:ident $o18:ident $o19:ident
     $o20:ident $o21:ident $o22:ident $o23:ident $o24:ident) => {
        let rc: u64 = $rc;
        // Theta.
        let c0 = $i0 ^ $i5 ^ $i10 ^ $i15 ^ $i20;
        let c1 = $i1 ^ $i6 ^ $i11 ^ $i16 ^ $i21;
        let c2 = $i2 ^ $i7 ^ $i12 ^ $i17 ^ $i22;
        let c3 = $i3 ^ $i8 ^ $i13 ^ $i18 ^ $i23;
        let c4 = $i4 ^ $i9 ^ $i14 ^ $i19 ^ $i24;
        let d0 = c4 ^ c1.rotate_left(1);
        let d1 = c0 ^ c2.rotate_left(1);
        let d2 = c1 ^ c3.rotate_left(1);
        let d3 = c2 ^ c4.rotate_left(1);
        let d4 = c3 ^ c0.rotate_left(1);
        // Rho + Pi, theta fused into the rotated reads (d index = lane % 5).
        let b0 = $i0 ^ d0;
        let b10 = ($i1 ^ d1).rotate_left(1);
        let b7 = ($i10 ^ d0).rotate_left(3);
        let b11 = ($i7 ^ d2).rotate_left(6);
        let b17 = ($i11 ^ d1).rotate_left(10);
        let b18 = ($i17 ^ d2).rotate_left(15);
        let b3 = ($i18 ^ d3).rotate_left(21);
        let b5 = ($i3 ^ d3).rotate_left(28);
        let b16 = ($i5 ^ d0).rotate_left(36);
        let b8 = ($i16 ^ d1).rotate_left(45);
        let b21 = ($i8 ^ d3).rotate_left(55);
        let b24 = ($i21 ^ d1).rotate_left(2);
        let b4 = ($i24 ^ d4).rotate_left(14);
        let b15 = ($i4 ^ d4).rotate_left(27);
        let b23 = ($i15 ^ d0).rotate_left(41);
        let b19 = ($i23 ^ d3).rotate_left(56);
        let b13 = ($i19 ^ d4).rotate_left(8);
        let b12 = ($i13 ^ d3).rotate_left(25);
        let b2 = ($i12 ^ d2).rotate_left(43);
        let b20 = ($i2 ^ d2).rotate_left(62);
        let b14 = ($i20 ^ d0).rotate_left(18);
        let b22 = ($i14 ^ d4).rotate_left(39);
        let b9 = ($i22 ^ d2).rotate_left(61);
        let b6 = ($i9 ^ d4).rotate_left(20);
        let b1 = ($i6 ^ d1).rotate_left(44);
        // Chi + Iota.
        let $o0 = b0 ^ ((!b1) & b2) ^ rc;
        let $o1 = b1 ^ ((!b2) & b3);
        let $o2 = b2 ^ ((!b3) & b4);
        let $o3 = b3 ^ ((!b4) & b0);
        let $o4 = b4 ^ ((!b0) & b1);
        let $o5 = b5 ^ ((!b6) & b7);
        let $o6 = b6 ^ ((!b7) & b8);
        let $o7 = b7 ^ ((!b8) & b9);
        let $o8 = b8 ^ ((!b9) & b5);
        let $o9 = b9 ^ ((!b5) & b6);
        let $o10 = b10 ^ ((!b11) & b12);
        let $o11 = b11 ^ ((!b12) & b13);
        let $o12 = b12 ^ ((!b13) & b14);
        let $o13 = b13 ^ ((!b14) & b10);
        let $o14 = b14 ^ ((!b10) & b11);
        let $o15 = b15 ^ ((!b16) & b17);
        let $o16 = b16 ^ ((!b17) & b18);
        let $o17 = b17 ^ ((!b18) & b19);
        let $o18 = b18 ^ ((!b19) & b15);
        let $o19 = b19 ^ ((!b15) & b16);
        let $o20 = b20 ^ ((!b21) & b22);
        let $o21 = b21 ^ ((!b22) & b23);
        let $o22 = b22 ^ ((!b23) & b24);
        let $o23 = b23 ^ ((!b24) & b20);
        let $o24 = b24 ^ ((!b20) & b21);
    };
}

/// All 24 rounds, unrolled four at a time: one loop iteration chains four
/// [`keccak_round_io!`] bodies through fresh lane sets (`a → t → u → v → a`),
/// so only the fourth round writes memory-backed names and the chain stays
/// pure SSA. The earlier pairwise unroll still round-tripped all 25 lanes
/// through their mutable locals every round; dropping those write-backs is
/// worth more than the extra decode pressure, while the quad body stays
/// well under the fully-unrolled ~1800-op blowup that regressed on non-AVX
/// hosts. `RC.len()` is 24, so `chunks_exact(4)` covers every round
/// constant.
macro_rules! keccak_rounds {
    ($a0:ident $a1:ident $a2:ident $a3:ident $a4:ident
     $a5:ident $a6:ident $a7:ident $a8:ident $a9:ident
     $a10:ident $a11:ident $a12:ident $a13:ident $a14:ident
     $a15:ident $a16:ident $a17:ident $a18:ident $a19:ident
     $a20:ident $a21:ident $a22:ident $a23:ident $a24:ident) => {
        for quad in RC.chunks_exact(4) {
            keccak_round_io!(quad[0],
                $a0 $a1 $a2 $a3 $a4 $a5 $a6 $a7 $a8 $a9 $a10 $a11 $a12 $a13 $a14 $a15 $a16 $a17 $a18 $a19 $a20 $a21 $a22 $a23 $a24 =>
                t0 t1 t2 t3 t4 t5 t6 t7 t8 t9 t10 t11 t12 t13 t14 t15 t16 t17 t18 t19 t20 t21 t22 t23 t24);
            keccak_round_io!(quad[1],
                t0 t1 t2 t3 t4 t5 t6 t7 t8 t9 t10 t11 t12 t13 t14 t15 t16 t17 t18 t19 t20 t21 t22 t23 t24 =>
                u0 u1 u2 u3 u4 u5 u6 u7 u8 u9 u10 u11 u12 u13 u14 u15 u16 u17 u18 u19 u20 u21 u22 u23 u24);
            keccak_round_io!(quad[2],
                u0 u1 u2 u3 u4 u5 u6 u7 u8 u9 u10 u11 u12 u13 u14 u15 u16 u17 u18 u19 u20 u21 u22 u23 u24 =>
                v0 v1 v2 v3 v4 v5 v6 v7 v8 v9 v10 v11 v12 v13 v14 v15 v16 v17 v18 v19 v20 v21 v22 v23 v24);
            keccak_round_io!(quad[3],
                v0 v1 v2 v3 v4 v5 v6 v7 v8 v9 v10 v11 v12 v13 v14 v15 v16 v17 v18 v19 v20 v21 v22 v23 v24 =>
                w0 w1 w2 w3 w4 w5 w6 w7 w8 w9 w10 w11 w12 w13 w14 w15 w16 w17 w18 w19 w20 w21 w22 w23 w24);
            $a0 = w0;
            $a1 = w1;
            $a2 = w2;
            $a3 = w3;
            $a4 = w4;
            $a5 = w5;
            $a6 = w6;
            $a7 = w7;
            $a8 = w8;
            $a9 = w9;
            $a10 = w10;
            $a11 = w11;
            $a12 = w12;
            $a13 = w13;
            $a14 = w14;
            $a15 = w15;
            $a16 = w16;
            $a17 = w17;
            $a18 = w18;
            $a19 = w19;
            $a20 = w20;
            $a21 = w21;
            $a22 = w22;
            $a23 = w23;
            $a24 = w24;
        }
    };
}

/// [`keccakf_portable`] recompiled with BMI1/BMI2 available: chi's
/// `(!b) & c` terms become single `andn` instructions (25 per round) and
/// the rho rotations can use flag-free `rorx`/shift forms. Safety contract:
/// callers must have verified both features via CPUID.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi1,bmi2")]
#[allow(unsafe_code)]
unsafe fn keccakf_bmi(state: &mut [u64; 25]) {
    keccakf_portable(state);
}

/// Applies the Keccak-f\[1600\] permutation to the 25-lane state.
///
/// Dispatches once per call on a cached CPUID probe: BMI-capable x86-64
/// hosts take the `andn`-scheduled scalar kernel, everything else the plain
/// scalar lane-local path. Both are pinned against [`keccakf_ref`] by the
/// crate's differential tests.
pub fn keccakf(state: &mut [u64; 25]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("bmi2") && std::arch::is_x86_feature_detected!("bmi1") {
        #[allow(unsafe_code)]
        unsafe {
            return keccakf_bmi(state);
        }
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f") {
        // Reachable only on AVX-512 hardware without BMI (none exists; kept
        // for completeness). Single-state AVX-512 measured *slower* than
        // the BMI scalar kernel here — the vector backend earns its keep in
        // the 8-way batched line MAC (`mac28_lines8`), not in one-shot
        // permutations.
        // SAFETY: the required CPU feature was verified just above.
        #[allow(unsafe_code)]
        unsafe {
            crate::keccak_avx512::keccakf(state)
        };
        return;
    }
    keccakf_portable(state);
}

/// The scalar permutation (see [`keccak_round_io!`] for the formulation).
#[inline(always)]
fn keccakf_portable(state: &mut [u64; 25]) {
    let [mut a0, mut a1, mut a2, mut a3, mut a4, mut a5, mut a6, mut a7, mut a8, mut a9, mut a10, mut a11, mut a12, mut a13, mut a14, mut a15, mut a16, mut a17, mut a18, mut a19, mut a20, mut a21, mut a22, mut a23, mut a24] =
        *state;
    keccak_rounds!(a0 a1 a2 a3 a4 a5 a6 a7 a8 a9 a10 a11 a12 a13 a14
        a15 a16 a17 a18 a19 a20 a21 a22 a23 a24);
    *state = [
        a0, a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11, a12, a13, a14, a15, a16, a17, a18, a19,
        a20, a21, a22, a23, a24,
    ];
}

/// Sponge for a message that fits one already-padded rate block: absorbs
/// the 17 lanes into an all-zero state (a plain assignment — the XOR is
/// free), permutes, and returns lane 0, which carries the first 8 digest
/// bytes. This is the whole SHA3-256 computation for the per-line memory
/// MAC, with no state array materialized at all.
pub(crate) fn keccakf_single_block(lanes: &[u64; RATE / 8]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("bmi2") && std::arch::is_x86_feature_detected!("bmi1") {
        // SAFETY: both required CPU features were verified just above.
        #[allow(unsafe_code)]
        unsafe {
            return keccakf_single_block_bmi(lanes);
        }
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f") {
        // SAFETY: the required CPU feature was verified just above.
        #[allow(unsafe_code)]
        unsafe {
            return crate::keccak_avx512::keccakf_single_block(lanes);
        }
    }
    keccakf_single_block_portable(lanes)
}

/// [`keccakf_single_block_portable`] under BMI1/BMI2 codegen (see
/// [`keccakf_bmi`]). Safety contract: callers must have verified both
/// features via CPUID.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi1,bmi2")]
#[allow(unsafe_code)]
unsafe fn keccakf_single_block_bmi(lanes: &[u64; RATE / 8]) -> u64 {
    keccakf_single_block_portable(lanes)
}

/// Scalar single-block sponge shared by all dispatch tiers.
#[inline(always)]
fn keccakf_single_block_portable(lanes: &[u64; RATE / 8]) -> u64 {
    let [mut a0, mut a1, mut a2, mut a3, mut a4, mut a5, mut a6, mut a7, mut a8, mut a9, mut a10, mut a11, mut a12, mut a13, mut a14, mut a15, mut a16] =
        *lanes;
    let (mut a17, mut a18, mut a19, mut a20, mut a21, mut a22, mut a23, mut a24) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    keccak_rounds!(a0 a1 a2 a3 a4 a5 a6 a7 a8 a9 a10 a11 a12 a13 a14
        a15 a16 a17 a18 a19 a20 a21 a22 a23 a24);
    let _ = (
        a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11, a12, a13, a14, a15, a16, a17, a18, a19, a20,
        a21, a22, a23, a24,
    );
    a0
}

/// The pre-optimization loop-based permutation, kept as the differential
/// oracle for [`keccakf`] and as the "before" measurement of the tracked
/// benchmark pipeline.
pub fn keccakf_ref(state: &mut [u64; 25]) {
    for &rc in RC.iter() {
        // Theta.
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }
        // Rho and Pi.
        let mut last = state[1];
        for i in 0..24 {
            let j = PI[i];
            let tmp = state[j];
            state[j] = last.rotate_left(RHO[i]);
            last = tmp;
        }
        // Chi.
        for y in 0..5 {
            let row = [
                state[5 * y],
                state[5 * y + 1],
                state[5 * y + 2],
                state[5 * y + 3],
                state[5 * y + 4],
            ];
            for x in 0..5 {
                state[5 * y + x] = row[x] ^ ((!row[(x + 1) % 5]) & row[(x + 2) % 5]);
            }
        }
        // Iota.
        state[0] ^= rc;
    }
}

/// Rate in bytes for SHA3-256 (1088 bits).
pub(crate) const RATE: usize = 136;

/// Incremental SHA3-256 hasher.
#[derive(Clone, Debug)]
pub struct Sha3_256 {
    state: [u64; 25],
    buffer: [u8; RATE],
    buffer_len: usize,
}

impl Default for Sha3_256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha3_256 {
    /// Creates a fresh hasher.
    ///
    /// # Example
    ///
    /// ```
    /// use hypertee_crypto::sha3::Sha3_256;
    /// let mut h = Sha3_256::new();
    /// h.update(b"abc");
    /// let digest = h.finalize();
    /// assert_eq!(digest[0], 0x3a);
    /// ```
    pub fn new() -> Self {
        Sha3_256 {
            state: [0; 25],
            buffer: [0; RATE],
            buffer_len: 0,
        }
    }

    fn absorb_block(&mut self) {
        for i in 0..RATE / 8 {
            let lane = u64::from_le_bytes(self.buffer[8 * i..8 * i + 8].try_into().unwrap());
            self.state[i] ^= lane;
        }
        keccakf(&mut self.state);
        self.buffer_len = 0;
    }

    /// Absorbs more input. Whole rate blocks are XORed straight into the
    /// state and the remainder is buffered with slice copies (the previous
    /// byte-at-a-time loop dominated short-message hashing such as the
    /// per-line `mac28`).
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buffer_len > 0 {
            let take = (RATE - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len < RATE {
                return;
            }
            self.absorb_block();
        }
        while data.len() >= RATE {
            for i in 0..RATE / 8 {
                self.state[i] ^= u64::from_le_bytes(data[8 * i..8 * i + 8].try_into().unwrap());
            }
            keccakf(&mut self.state);
            data = &data[RATE..];
        }
        self.buffer[..data.len()].copy_from_slice(data);
        self.buffer_len = data.len();
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        // SHA-3 domain-separation padding: 0x06 ... 0x80.
        for b in self.buffer[self.buffer_len..].iter_mut() {
            *b = 0;
        }
        self.buffer[self.buffer_len] ^= 0x06;
        self.buffer[RATE - 1] ^= 0x80;
        self.buffer_len = RATE;
        // absorb_block resets buffer_len, fine.
        let mut this = self;
        for i in 0..RATE / 8 {
            let lane = u64::from_le_bytes(this.buffer[8 * i..8 * i + 8].try_into().unwrap());
            this.state[i] ^= lane;
        }
        keccakf(&mut this.state);
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * i..8 * i + 8].copy_from_slice(&this.state[i].to_le_bytes());
        }
        out
    }
}

/// One-shot SHA3-256.
pub fn sha3_256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha3_256::new();
    h.update(data);
    h.finalize()
}

/// The pre-optimization hasher, reproduced verbatim: byte-at-a-time
/// absorption over [`keccakf_ref`]. Differential oracle and the honest
/// "before" measurement for [`Sha3_256`] (the benchmark baseline must
/// reflect what the code actually did before this optimization pass, not a
/// partially improved hybrid).
#[derive(Clone, Debug)]
pub struct Sha3_256Ref {
    state: [u64; 25],
    buffer: [u8; RATE],
    buffer_len: usize,
}

impl Default for Sha3_256Ref {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha3_256Ref {
    /// Creates a fresh reference hasher.
    pub fn new() -> Self {
        Sha3_256Ref {
            state: [0; 25],
            buffer: [0; RATE],
            buffer_len: 0,
        }
    }

    fn absorb_block(&mut self) {
        for i in 0..RATE / 8 {
            let lane = u64::from_le_bytes(self.buffer[8 * i..8 * i + 8].try_into().unwrap());
            self.state[i] ^= lane;
        }
        keccakf_ref(&mut self.state);
        self.buffer_len = 0;
    }

    /// Absorbs more input, one byte at a time (the seed behaviour).
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffer_len] = b;
            self.buffer_len += 1;
            if self.buffer_len == RATE {
                self.absorb_block();
            }
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        for b in self.buffer[self.buffer_len..].iter_mut() {
            *b = 0;
        }
        self.buffer[self.buffer_len] ^= 0x06;
        self.buffer[RATE - 1] ^= 0x80;
        self.absorb_block();
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * i..8 * i + 8].copy_from_slice(&self.state[i].to_le_bytes());
        }
        out
    }
}

/// One-shot SHA3-256 over the pre-optimization path ([`Sha3_256Ref`]):
/// the differential/benchmark baseline for [`sha3_256`].
pub fn sha3_256_ref(data: &[u8]) -> [u8; 32] {
    let mut h = Sha3_256Ref::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::to_hex;

    #[test]
    fn empty_string() {
        assert_eq!(
            to_hex(&sha3_256(b"")),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            to_hex(&sha3_256(b"abc")),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..2000u32).map(|i| (i * 7 % 253) as u8).collect();
        let oneshot = sha3_256(&data);
        for split in [0usize, 1, 135, 136, 137, 1000, 2000] {
            let mut h = Sha3_256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn rate_boundary_message() {
        // Exactly one rate block of input exercises the padding-only block.
        let data = vec![0xa3u8; RATE];
        let d1 = sha3_256(&data);
        let mut h = Sha3_256::new();
        for &b in &data {
            h.update(&[b]);
        }
        assert_eq!(h.finalize(), d1);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha3_256(b"enclave-a"), sha3_256(b"enclave-b"));
    }

    #[test]
    fn unrolled_permutation_matches_reference() {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..32 {
            let mut a = [0u64; 25];
            for lane in a.iter_mut() {
                *lane = next();
            }
            let mut b = a;
            keccakf(&mut a);
            keccakf_ref(&mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn pairwise_unrolled_scalar_path_matches_reference() {
        // Pins the 2-round-unrolled scalar permutation itself (the
        // `unrolled_permutation_matches_reference` test above goes through
        // the dispatcher, which may take the AVX-512 backend instead).
        let mut x = 0x0123_4567_89ab_cdefu64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..64 {
            let mut a = [0u64; 25];
            for lane in a.iter_mut() {
                *lane = next();
            }
            let mut b = a;
            keccakf_portable(&mut a);
            keccakf_ref(&mut b);
            assert_eq!(a, b);
        }
        // And the single-block sponge variant against a full-state run.
        for _ in 0..64 {
            let mut lanes = [0u64; RATE / 8];
            for lane in lanes.iter_mut() {
                *lane = next();
            }
            let mut full = [0u64; 25];
            full[..RATE / 8].copy_from_slice(&lanes);
            keccakf_ref(&mut full);
            assert_eq!(keccakf_single_block_portable(&lanes), full[0]);
        }
    }

    #[test]
    fn oneshot_matches_reference_hasher() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 255) as u8).collect();
        for len in [0usize, 1, 63, 135, 136, 137, 272, 1000] {
            assert_eq!(sha3_256(&data[..len]), sha3_256_ref(&data[..len]), "{len}");
        }
    }
}
