//! Deterministic Schnorr signatures over the Curve25519 Edwards group.
//!
//! These back the paper's attestation certificates (§VI): the Endorsement
//! Key (EK) signs platform measurements and the Attestation Key (AK) signs
//! enclave measurements. The scheme is textbook Schnorr with a deterministic
//! nonce (hash of a per-key seed and the message), giving EdDSA-style
//! robustness against nonce reuse without needing an entropy source at
//! signing time.

use crate::chacha::ChaChaRng;
use crate::ed::Point;
use crate::scalar::Scalar;
use crate::sha256::Sha256;
use crate::CryptoError;

/// A public verification key (a curve point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublicKey(pub Point);

/// A Schnorr signature: commitment point R and response scalar s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// Commitment R = r·B.
    pub r: Point,
    /// Response s = r + e·a (mod L).
    pub s: Scalar,
}

impl Signature {
    /// Serializes to 96 bytes: enc(R) ‖ s.
    pub fn to_bytes(&self) -> [u8; 96] {
        let mut out = [0u8; 96];
        out[..64].copy_from_slice(&self.r.encode());
        out[64..].copy_from_slice(&self.s.to_le_bytes());
        out
    }

    /// Parses a 96-byte signature.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidPoint`] when R is off-curve.
    pub fn from_bytes(bytes: &[u8; 96]) -> Result<Signature, CryptoError> {
        let r = Point::decode(&bytes[..64].try_into().expect("64 bytes"))?;
        let s = Scalar::from_le_bytes(&bytes[64..].try_into().expect("32 bytes"));
        Ok(Signature { r, s })
    }
}

/// A signing keypair.
#[derive(Clone)]
pub struct Keypair {
    /// Secret scalar.
    secret: Scalar,
    /// Deterministic-nonce seed.
    seed: [u8; 32],
    /// The public key a·B.
    pub public: PublicKey,
}

impl core::fmt::Debug for Keypair {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Keypair {{ public: {:?}, secret: <redacted> }}",
            self.public
        )
    }
}

fn challenge(r: &Point, a: &Point, msg: &[u8]) -> Scalar {
    let mut h = Sha256::new();
    h.update(b"hypertee-schnorr-v1");
    h.update(&r.encode());
    h.update(&a.encode());
    h.update(msg);
    let d1 = h.finalize();
    // Widen to 64 bytes with a second domain-separated digest so the scalar
    // reduction is statistically uniform.
    let mut h2 = Sha256::new();
    h2.update(b"hypertee-schnorr-v1-wide");
    h2.update(&d1);
    let d2 = h2.finalize();
    let mut wide = [0u8; 64];
    wide[..32].copy_from_slice(&d1);
    wide[32..].copy_from_slice(&d2);
    Scalar::from_le_bytes_wide(&wide)
}

impl Keypair {
    /// Generates a fresh keypair from the given RNG.
    pub fn generate(rng: &mut ChaChaRng) -> Keypair {
        let secret = Scalar::random(rng);
        let seed = rng.gen_bytes32();
        let public = PublicKey(Point::base().mul(&secret));
        Keypair {
            secret,
            seed,
            public,
        }
    }

    /// Derives a keypair deterministically from 32 bytes of key material —
    /// how EMS turns `kdf(SK, "attestation", salt)` output into an AK (§VI).
    pub fn from_key_material(material: &[u8; 32]) -> Keypair {
        let mut h = Sha256::new();
        h.update(b"hypertee-keygen-scalar");
        h.update(material);
        let d1 = h.finalize();
        let mut h2 = Sha256::new();
        h2.update(b"hypertee-keygen-wide");
        h2.update(material);
        let d2 = h2.finalize();
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&d1);
        wide[32..].copy_from_slice(&d2);
        let mut secret = Scalar::from_le_bytes_wide(&wide);
        if secret.is_zero() {
            secret = Scalar::ONE; // Unreachable in practice; keeps the API total.
        }
        let mut h3 = Sha256::new();
        h3.update(b"hypertee-keygen-seed");
        h3.update(material);
        let seed = h3.finalize();
        let public = PublicKey(Point::base().mul(&secret));
        Keypair {
            secret,
            seed,
            public,
        }
    }

    /// Signs a message.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        // Deterministic nonce r = H(seed ‖ msg) widened mod L.
        let mut h = Sha256::new();
        h.update(b"hypertee-schnorr-nonce");
        h.update(&self.seed);
        h.update(msg);
        let d1 = h.finalize();
        let mut h2 = Sha256::new();
        h2.update(b"hypertee-schnorr-nonce-wide");
        h2.update(&d1);
        let d2 = h2.finalize();
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&d1);
        wide[32..].copy_from_slice(&d2);
        let mut r = Scalar::from_le_bytes_wide(&wide);
        if r.is_zero() {
            r = Scalar::ONE;
        }
        let big_r = Point::base().mul(&r);
        let e = challenge(&big_r, &self.public.0, msg);
        let s = r.add(&e.mul(&self.secret));
        Signature { r: big_r, s }
    }
}

impl PublicKey {
    /// Verifies a signature over `msg`. Returns `true` on success.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        let e = challenge(&sig.r, &self.0, msg);
        // s·B == R + e·A.
        let lhs = Point::base().mul(&sig.s);
        let rhs = sig.r.add(&self.0.mul(&e));
        lhs == rhs
    }

    /// Serializes to 64 bytes.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.0.encode()
    }

    /// Parses a 64-byte public key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidPoint`] for off-curve encodings.
    pub fn from_bytes(bytes: &[u8; 64]) -> Result<PublicKey, CryptoError> {
        Ok(PublicKey(Point::decode(bytes)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = ChaChaRng::from_u64(1);
        let kp = Keypair::generate(&mut rng);
        let sig = kp.sign(b"enclave measurement");
        assert!(kp.public.verify(b"enclave measurement", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut rng = ChaChaRng::from_u64(2);
        let kp = Keypair::generate(&mut rng);
        let sig = kp.sign(b"original");
        assert!(!kp.public.verify(b"tampered", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = ChaChaRng::from_u64(3);
        let kp1 = Keypair::generate(&mut rng);
        let kp2 = Keypair::generate(&mut rng);
        let sig = kp1.sign(b"msg");
        assert!(!kp2.public.verify(b"msg", &sig));
    }

    #[test]
    fn signature_serialization_roundtrip() {
        let mut rng = ChaChaRng::from_u64(4);
        let kp = Keypair::generate(&mut rng);
        let sig = kp.sign(b"serialize me");
        let restored = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert!(kp.public.verify(b"serialize me", &restored));
    }

    #[test]
    fn deterministic_signing() {
        let kp = Keypair::from_key_material(&[0x17; 32]);
        let s1 = kp.sign(b"same message");
        let s2 = kp.sign(b"same message");
        assert_eq!(s1, s2, "deterministic nonce must give identical signatures");
    }

    #[test]
    fn tampered_s_rejected() {
        let mut rng = ChaChaRng::from_u64(5);
        let kp = Keypair::generate(&mut rng);
        let mut sig = kp.sign(b"msg");
        sig.s = sig.s.add(&Scalar::ONE);
        assert!(!kp.public.verify(b"msg", &sig));
    }

    #[test]
    fn key_material_derivation_is_stable() {
        let a = Keypair::from_key_material(&[9; 32]);
        let b = Keypair::from_key_material(&[9; 32]);
        assert_eq!(a.public, b.public);
        let c = Keypair::from_key_material(&[10; 32]);
        assert_ne!(a.public, c.public);
    }
}
