//! HMAC-SHA256 and the key-derivation function used by EMS key management.
//!
//! §VI of the paper: "HyperTEE derives all keys from the root keys", e.g.
//! memory encryption keys from SK + enclave measurement, the attestation key
//! from SK + a random salt, sealing keys from SK + measurement. We model every
//! such derivation as `kdf(root, label, context)`.

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Computes HMAC-SHA256 over `data` with `key`.
///
/// # Example
///
/// ```
/// let tag = hypertee_crypto::hmac::hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let digest = crate::sha256::sha256(key);
        key_block[..32].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Derives a 32-byte key from a root key, a domain-separation label, and a
/// context string (HKDF-style extract-then-expand collapsed to one step,
/// sufficient for the fixed-size keys EMS uses).
///
/// # Example
///
/// ```
/// use hypertee_crypto::hmac::kdf;
/// let sealed = kdf(&[0u8; 32], b"sealing", b"enclave-measurement");
/// let attest = kdf(&[0u8; 32], b"attestation", b"enclave-measurement");
/// assert_ne!(sealed, attest);
/// ```
pub fn kdf(root: &[u8], label: &[u8], context: &[u8]) -> [u8; 32] {
    let mut msg = Vec::with_capacity(label.len() + 1 + context.len() + 1);
    msg.extend_from_slice(label);
    msg.push(0x00);
    msg.extend_from_slice(context);
    msg.push(0x01);
    hmac_sha256(root, &msg)
}

/// Derives a 16-byte AES key (for the memory encryption engine) from a root
/// key, label, and context.
pub fn kdf_aes128(root: &[u8], label: &[u8], context: &[u8]) -> [u8; 16] {
    let full = kdf(root, label, context);
    full[..16].try_into().expect("slice is 16 bytes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::to_hex;

    #[test]
    fn rfc4231_test_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        // Key "Jefe", data "what do ya want for nothing?".
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        let key = vec![0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn kdf_separates_labels_and_contexts() {
        let root = [7u8; 32];
        let a = kdf(&root, b"label-a", b"ctx");
        let b = kdf(&root, b"label-b", b"ctx");
        let c = kdf(&root, b"label-a", b"ctx2");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn kdf_no_label_context_ambiguity() {
        // ("ab", "c") must differ from ("a", "bc") thanks to the separator.
        let root = [9u8; 32];
        assert_ne!(kdf(&root, b"ab", b"c"), kdf(&root, b"a", b"bc"));
    }

    #[test]
    fn kdf_aes128_is_prefix() {
        let root = [1u8; 32];
        let full = kdf(&root, b"mem", b"e1");
        let short = kdf_aes128(&root, b"mem", b"e1");
        assert_eq!(&full[..16], &short);
    }
}
