//! Minimal fixed-width big integers (256/512-bit) backing the Curve25519
//! field and scalar arithmetic. Little-endian `u64` limbs throughout.
//!
//! Performance note: EMS invokes attestation-grade arithmetic at primitive
//! granularity (a handful of times per enclave lifetime), so these routines
//! favour obvious correctness over speed.

/// A 256-bit unsigned integer, little-endian limbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

/// A 512-bit unsigned integer, little-endian limbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct U512(pub [u64; 8]);

impl U256 {
    /// The value zero.
    pub const ZERO: U256 = U256([0; 4]);
    /// The value one.
    pub const ONE: U256 = U256([1, 0, 0, 0]);

    /// Constructs from a small integer.
    pub fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Parses 32 little-endian bytes.
    pub fn from_le_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[i] = u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().unwrap());
        }
        U256(limbs)
    }

    /// Serializes to 32 little-endian bytes.
    pub fn to_le_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * i..8 * i + 8].copy_from_slice(&self.0[i].to_le_bytes());
        }
        out
    }

    /// Returns `true` when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&l| l == 0)
    }

    /// Compares two values.
    pub fn cmp_u256(&self, other: &U256) -> core::cmp::Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                core::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        core::cmp::Ordering::Equal
    }

    /// Adds with carry out.
    pub fn adc(&self, other: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for (o, (&a, &b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            *o = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        (U256(out), carry != 0)
    }

    /// Subtracts with borrow out.
    pub fn sbb(&self, other: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for (o, (&a, &b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *o = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (U256(out), borrow != 0)
    }

    /// Full 256×256 → 512-bit multiplication.
    pub fn widening_mul(&self, other: &U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let acc = out[i + j] as u128 + (self.0[i] as u128) * (other.0[j] as u128) + carry;
                out[i + j] = acc as u64;
                carry = acc >> 64;
            }
            let mut k = i + 4;
            while carry != 0 {
                let acc = out[k] as u128 + carry;
                out[k] = acc as u64;
                carry = acc >> 64;
                k += 1;
            }
        }
        U512(out)
    }

    /// Returns the bit at `index` (0 = least significant).
    pub fn bit(&self, index: usize) -> bool {
        (self.0[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Index of the highest set bit, or `None` for zero.
    pub fn highest_bit(&self) -> Option<usize> {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return Some(64 * i + 63 - self.0[i].leading_zeros() as usize);
            }
        }
        None
    }
}

impl U512 {
    /// Constructs from a [`U256`] in the low half.
    pub fn from_u256(v: &U256) -> Self {
        let mut limbs = [0u64; 8];
        limbs[..4].copy_from_slice(&v.0);
        U512(limbs)
    }

    /// Parses 64 little-endian bytes.
    pub fn from_le_bytes(bytes: &[u8; 64]) -> Self {
        let mut limbs = [0u64; 8];
        for i in 0..8 {
            limbs[i] = u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().unwrap());
        }
        U512(limbs)
    }

    /// Returns `true` when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&l| l == 0)
    }

    /// Index of the highest set bit, or `None` for zero.
    pub fn highest_bit(&self) -> Option<usize> {
        for i in (0..8).rev() {
            if self.0[i] != 0 {
                return Some(64 * i + 63 - self.0[i].leading_zeros() as usize);
            }
        }
        None
    }

    /// Shifts left by `n` bits (n < 512). Bits shifted past the top are lost.
    pub fn shl(&self, n: usize) -> U512 {
        let mut out = [0u64; 8];
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        for i in (limb_shift..8).rev() {
            let mut v = self.0[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                v |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
            }
            out[i] = v;
        }
        U512(out)
    }

    /// Compares two values.
    pub fn cmp_u512(&self, other: &U512) -> core::cmp::Ordering {
        for i in (0..8).rev() {
            match self.0[i].cmp(&other.0[i]) {
                core::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        core::cmp::Ordering::Equal
    }

    /// Subtraction; caller guarantees `self >= other`.
    pub fn checked_sub(&self, other: &U512) -> U512 {
        let mut out = [0u64; 8];
        let mut borrow = 0u64;
        for (o, (&a, &b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *o = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0, "checked_sub underflow");
        U512(out)
    }

    /// Reduces a 512-bit value modulo a 256-bit modulus via binary long
    /// division. O(512) limb subtractions — fine at EMS call rates.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn reduce_mod(&self, modulus: &U256) -> U256 {
        assert!(!modulus.is_zero(), "modulus must be nonzero");
        let mut rem = *self;
        let m512 = U512::from_u256(modulus);
        let m_high = modulus.highest_bit().expect("nonzero modulus");
        loop {
            let r_high = match rem.highest_bit() {
                None => return U256::ZERO,
                Some(h) => h,
            };
            if r_high < m_high {
                break;
            }
            let mut shift = r_high - m_high;
            let mut shifted = m512.shl(shift);
            if shifted.cmp_u512(&rem) == core::cmp::Ordering::Greater {
                if shift == 0 {
                    break;
                }
                shift -= 1;
                shifted = m512.shl(shift);
            }
            rem = rem.checked_sub(&shifted);
        }
        U256([rem.0[0], rem.0[1], rem.0[2], rem.0[3]])
    }
}

/// Modular addition of 256-bit values: `(a + b) mod m`, assuming `a, b < m`.
pub fn add_mod(a: &U256, b: &U256, m: &U256) -> U256 {
    let (sum, carry) = a.adc(b);
    if carry || sum.cmp_u256(m) != core::cmp::Ordering::Less {
        let (reduced, _) = sum.sbb(m);
        reduced
    } else {
        sum
    }
}

/// Modular subtraction: `(a - b) mod m`, assuming `a, b < m`.
pub fn sub_mod(a: &U256, b: &U256, m: &U256) -> U256 {
    let (diff, borrow) = a.sbb(b);
    if borrow {
        let (wrapped, _) = diff.adc(m);
        wrapped
    } else {
        diff
    }
}

/// Modular multiplication: `(a * b) mod m`.
pub fn mul_mod(a: &U256, b: &U256, m: &U256) -> U256 {
    a.widening_mul(b).reduce_mod(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = U256([u64::MAX, 5, 0, 1]);
        let b = U256([3, u64::MAX, 7, 0]);
        let (sum, _) = a.adc(&b);
        let (diff, borrow) = sum.sbb(&b);
        assert!(!borrow);
        assert_eq!(diff, a);
    }

    #[test]
    fn mul_small_values() {
        let a = U256::from_u64(1 << 40);
        let b = U256::from_u64(1 << 30);
        let prod = a.widening_mul(&b);
        assert_eq!(prod.0[1], 1 << 6); // 2^70 = limb1 bit 6.
        assert!(prod.0[2..].iter().all(|&l| l == 0));
    }

    #[test]
    fn reduce_mod_matches_u128_arithmetic() {
        // Cross-check against native arithmetic on values that fit in u128.
        let cases = [
            (12345678901234567890u128, 97u128),
            (u128::MAX, 1_000_000_007u128),
            (0u128, 13u128),
            (99u128, 100u128),
        ];
        for (x, m) in cases {
            let mut limbs = [0u64; 8];
            limbs[0] = x as u64;
            limbs[1] = (x >> 64) as u64;
            let big = U512(limbs);
            let modulus = U256([m as u64, (m >> 64) as u64, 0, 0]);
            let r = big.reduce_mod(&modulus);
            let expected = x % m;
            assert_eq!(r.0[0] as u128 | ((r.0[1] as u128) << 64), expected);
        }
    }

    #[test]
    fn mul_mod_agrees_with_fermat() {
        // p = 2^61 - 1 (Mersenne prime): a^(p-1) mod p == 1 for a != 0.
        let p = (1u64 << 61) - 1;
        let m = U256::from_u64(p);
        let mut acc = U256::ONE;
        let base = U256::from_u64(7);
        // Compute 7^(p-1) via square-and-multiply over the exponent bits.
        let exp = p - 1;
        let mut cur = base;
        for i in 0..63 {
            if (exp >> i) & 1 == 1 {
                acc = mul_mod(&acc, &cur, &m);
            }
            cur = mul_mod(&cur, &cur, &m);
        }
        assert_eq!(acc, U256::ONE);
    }

    #[test]
    fn shl_across_limbs() {
        let one = U512::from_u256(&U256::ONE);
        let shifted = one.shl(200);
        assert_eq!(shifted.0[3], 1 << 8);
        assert_eq!(shifted.highest_bit(), Some(200));
    }

    #[test]
    fn le_bytes_roundtrip() {
        let v = U256([1, 2, 3, 4]);
        assert_eq!(U256::from_le_bytes(&v.to_le_bytes()), v);
    }

    #[test]
    fn add_mod_wraps() {
        let m = U256::from_u64(100);
        let a = U256::from_u64(70);
        let b = U256::from_u64(50);
        assert_eq!(add_mod(&a, &b, &m), U256::from_u64(20));
        assert_eq!(sub_mod(&a, &b, &m), U256::from_u64(20));
        assert_eq!(sub_mod(&b, &a, &m), U256::from_u64(80));
    }
}
