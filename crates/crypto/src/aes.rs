//! AES-128 block cipher with ECB-style single-block and CTR-mode helpers.
//!
//! This is the functional model of both the EMS crypto engine's AES unit
//! (Table III: 1.24 Gbps) and of the multi-key memory encryption engine
//! (§IV-C, MKTME/SME-like). The memory engine in `hypertee-mem` encrypts each
//! physical line with AES-CTR keyed by the enclave's KeyID and tweaked by the
//! physical address, so that reads through the wrong KeyID really return
//! ciphertext — the property the paper's PTW attack-surface analysis relies
//! on (§VIII-C).

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// AES inverse S-box, precomputed from [`SBOX`] at compile time (the decrypt
/// path previously rebuilt this 256-entry table on every block).
const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// Round constants for AES-128 key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

const fn xtime(b: u8) -> u8 {
    let hi = b & 0x80;
    let r = b << 1;
    if hi != 0 {
        r ^ 0x1b
    } else {
        r
    }
}

/// Encryption T-table `TE0[x] = (2·S[x], S[x], S[x], 3·S[x])` packed as a
/// big-endian word: one lookup fuses SubBytes with the column's MixColumns
/// contribution. `TE1..TE3` are byte rotations of `TE0`, derived on the fly
/// with `rotate_right`, which keeps the cache footprint at 1 KiB.
const TE0: [u32; 256] = {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        t[i] = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        i += 1;
    }
    t
};

#[inline(always)]
fn te0(b: u32) -> u32 {
    TE0[(b & 0xff) as usize]
}
#[inline(always)]
fn te1(b: u32) -> u32 {
    TE0[(b & 0xff) as usize].rotate_right(8)
}
#[inline(always)]
fn te2(b: u32) -> u32 {
    TE0[(b & 0xff) as usize].rotate_right(16)
}
#[inline(always)]
fn te3(b: u32) -> u32 {
    TE0[(b & 0xff) as usize].rotate_right(24)
}

/// Multiplies two elements of GF(2^8) with the AES polynomial.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An expanded AES-128 key schedule (11 round keys).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    /// The same schedule as big-endian column words, the shape the T-table
    /// encrypt path consumes.
    ek: [[u32; 4]; 11],
}

impl core::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never leak key material through Debug.
        write!(f, "Aes128 {{ round_keys: <redacted> }}")
    }
}

impl Aes128 {
    /// Expands a 16-byte key into the full round-key schedule.
    ///
    /// # Example
    ///
    /// ```
    /// let cipher = hypertee_crypto::aes::Aes128::new(&[0u8; 16]);
    /// let ct = cipher.encrypt_block(&[0u8; 16]);
    /// assert_eq!(cipher.decrypt_block(&ct), [0u8; 16]);
    /// ```
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp = [
                    SBOX[temp[1] as usize] ^ RCON[i / 4 - 1],
                    SBOX[temp[2] as usize],
                    SBOX[temp[3] as usize],
                    SBOX[temp[0] as usize],
                ];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        let mut ek = [[0u32; 4]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                ek[r][c] = u32::from_be_bytes(w[4 * r + c]);
            }
        }
        Aes128 { round_keys, ek }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        // State is column-major: state[4*c + r].
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = s[4 * ((c + r) % 4) + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
            state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
        }
    }

    /// Encrypts one 16-byte block.
    ///
    /// Dispatches on a cached CPUID probe: hosts with AES-NI run the
    /// hardware round instructions, everything else the T-table path. Both
    /// are pinned against [`Aes128::encrypt_block_ref`] and the FIPS-197
    /// known-answer tests.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("aes") {
            // SAFETY: the required CPU feature was verified just above.
            #[allow(unsafe_code)]
            unsafe {
                return aesni::encrypt_block(&self.round_keys, block);
            }
        }
        self.encrypt_block_ttable(block)
    }

    /// Encrypts one 16-byte block via the precomputed T-tables.
    fn encrypt_block_ttable(&self, block: &[u8; 16]) -> [u8; 16] {
        let ek = &self.ek;
        let mut t0 = u32::from_be_bytes([block[0], block[1], block[2], block[3]]) ^ ek[0][0];
        let mut t1 = u32::from_be_bytes([block[4], block[5], block[6], block[7]]) ^ ek[0][1];
        let mut t2 = u32::from_be_bytes([block[8], block[9], block[10], block[11]]) ^ ek[0][2];
        let mut t3 = u32::from_be_bytes([block[12], block[13], block[14], block[15]]) ^ ek[0][3];
        for rk in &ek[1..10] {
            let n0 = te0(t0 >> 24) ^ te1(t1 >> 16) ^ te2(t2 >> 8) ^ te3(t3) ^ rk[0];
            let n1 = te0(t1 >> 24) ^ te1(t2 >> 16) ^ te2(t3 >> 8) ^ te3(t0) ^ rk[1];
            let n2 = te0(t2 >> 24) ^ te1(t3 >> 16) ^ te2(t0 >> 8) ^ te3(t1) ^ rk[2];
            let n3 = te0(t3 >> 24) ^ te1(t0 >> 16) ^ te2(t1 >> 8) ^ te3(t2) ^ rk[3];
            t0 = n0;
            t1 = n1;
            t2 = n2;
            t3 = n3;
        }
        let sb = |b: u32| SBOX[(b & 0xff) as usize] as u32;
        let o0 = (sb(t0 >> 24) << 24) | (sb(t1 >> 16) << 16) | (sb(t2 >> 8) << 8) | sb(t3);
        let o1 = (sb(t1 >> 24) << 24) | (sb(t2 >> 16) << 16) | (sb(t3 >> 8) << 8) | sb(t0);
        let o2 = (sb(t2 >> 24) << 24) | (sb(t3 >> 16) << 16) | (sb(t0 >> 8) << 8) | sb(t1);
        let o3 = (sb(t3 >> 24) << 24) | (sb(t0 >> 16) << 16) | (sb(t1 >> 8) << 8) | sb(t2);
        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&(o0 ^ ek[10][0]).to_be_bytes());
        out[4..8].copy_from_slice(&(o1 ^ ek[10][1]).to_be_bytes());
        out[8..12].copy_from_slice(&(o2 ^ ek[10][2]).to_be_bytes());
        out[12..16].copy_from_slice(&(o3 ^ ek[10][3]).to_be_bytes());
        out
    }

    /// The pre-optimization scalar round-function encryption, kept as the
    /// differential oracle the T-table path is pinned against (and as the
    /// "before" measurement of the tracked benchmark pipeline).
    pub fn encrypt_block_ref(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..10 {
            Self::sub_bytes(&mut state);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
        }
        Self::sub_bytes(&mut state);
        Self::shift_rows(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[10]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let inv = &INV_SBOX;
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[10]);
        for round in (1..10).rev() {
            // Inverse shift rows.
            let s = state;
            for r in 1..4 {
                for c in 0..4 {
                    state[4 * ((c + r) % 4) + r] = s[4 * c + r];
                }
            }
            // Inverse sub bytes.
            for b in state.iter_mut() {
                *b = inv[*b as usize];
            }
            Self::add_round_key(&mut state, &self.round_keys[round]);
            // Inverse mix columns.
            for c in 0..4 {
                let col = [
                    state[4 * c],
                    state[4 * c + 1],
                    state[4 * c + 2],
                    state[4 * c + 3],
                ];
                state[4 * c] =
                    gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
                state[4 * c + 1] =
                    gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
                state[4 * c + 2] =
                    gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
                state[4 * c + 3] =
                    gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
            }
        }
        // Final (first) round.
        let s = state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * ((c + r) % 4) + r] = s[4 * c + r];
            }
        }
        for b in state.iter_mut() {
            *b = inv[*b as usize];
        }
        Self::add_round_key(&mut state, &self.round_keys[0]);
        state
    }

    /// Applies CTR-mode keystream to `data` in place, starting from the
    /// 16-byte `iv` interpreted as a big-endian counter block.
    ///
    /// CTR is an involution: applying it twice with the same parameters
    /// restores the plaintext.
    pub fn ctr_apply(&self, iv: &[u8; 16], data: &mut [u8]) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("aes") {
            // SAFETY: the required CPU feature was verified just above.
            #[allow(unsafe_code)]
            unsafe {
                return aesni::ctr_apply(&self.round_keys, iv, data);
            }
        }
        self.ctr_apply_ttable(iv, data);
    }

    /// Portable CTR path over the T-table block function.
    fn ctr_apply_ttable(&self, iv: &[u8; 16], data: &mut [u8]) {
        let mut counter = *iv;
        for chunk in data.chunks_mut(16) {
            let ks = self.encrypt_block_ttable(&counter);
            if chunk.len() == 16 {
                // Full block: XOR as two u64 words instead of byte-wise.
                let lo = u64::from_ne_bytes(chunk[0..8].try_into().expect("8 bytes"))
                    ^ u64::from_ne_bytes(ks[0..8].try_into().expect("8 bytes"));
                let hi = u64::from_ne_bytes(chunk[8..16].try_into().expect("8 bytes"))
                    ^ u64::from_ne_bytes(ks[8..16].try_into().expect("8 bytes"));
                chunk[0..8].copy_from_slice(&lo.to_ne_bytes());
                chunk[8..16].copy_from_slice(&hi.to_ne_bytes());
            } else {
                for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                    *b ^= k;
                }
            }
            Self::increment_counter(&mut counter);
        }
    }

    /// The pre-optimization CTR path (scalar block function, byte-wise XOR),
    /// kept as the differential/benchmark baseline for [`Aes128::ctr_apply`].
    pub fn ctr_apply_ref(&self, iv: &[u8; 16], data: &mut [u8]) {
        let mut counter = *iv;
        for chunk in data.chunks_mut(16) {
            let ks = self.encrypt_block_ref(&counter);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            Self::increment_counter(&mut counter);
        }
    }

    /// Increments the 16-byte big-endian counter block in place.
    #[inline]
    fn increment_counter(counter: &mut [u8; 16]) {
        for i in (0..16).rev() {
            counter[i] = counter[i].wrapping_add(1);
            if counter[i] != 0 {
                break;
            }
        }
    }
}

/// AES-NI backend: the hardware round instruction does SubBytes, ShiftRows,
/// MixColumns and AddRoundKey in one `aesenc`, and the CTR path keeps four
/// counter blocks in flight to cover the instruction's latency. This module
/// and the AVX-512 Keccak backend are the crate's only `unsafe` code; both
/// are reachable solely through runtime-dispatched safe wrappers with
/// portable fallbacks, and are pinned by KATs and differential tests.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod aesni {
    use core::arch::x86_64::*;

    /// Loads the precomputed round-key schedule into vector registers.
    ///
    /// # Safety
    ///
    /// Requires AES-NI/SSE2; callers verify with `is_x86_feature_detected!`.
    #[target_feature(enable = "aes")]
    #[inline]
    unsafe fn load_schedule(round_keys: &[[u8; 16]; 11]) -> [__m128i; 11] {
        // SAFETY: each round key is exactly 16 readable bytes.
        unsafe {
            let mut ek = [_mm_setzero_si128(); 11];
            for (v, rk) in ek.iter_mut().zip(round_keys.iter()) {
                *v = _mm_loadu_si128(rk.as_ptr().cast());
            }
            ek
        }
    }

    /// One-block ECB encryption via the hardware rounds.
    ///
    /// # Safety
    ///
    /// Requires AES-NI; callers verify with `is_x86_feature_detected!`.
    #[target_feature(enable = "aes")]
    pub(super) unsafe fn encrypt_block(round_keys: &[[u8; 16]; 11], block: &[u8; 16]) -> [u8; 16] {
        // SAFETY: loads/stores touch exactly the 16-byte block and keys.
        unsafe {
            let ek = load_schedule(round_keys);
            let mut b = _mm_xor_si128(_mm_loadu_si128(block.as_ptr().cast()), ek[0]);
            for rk in &ek[1..10] {
                b = _mm_aesenc_si128(b, *rk);
            }
            b = _mm_aesenclast_si128(b, ek[10]);
            let mut out = [0u8; 16];
            _mm_storeu_si128(out.as_mut_ptr().cast(), b);
            out
        }
    }

    /// CTR keystream application with four blocks in flight.
    ///
    /// # Safety
    ///
    /// Requires AES-NI; callers verify with `is_x86_feature_detected!`.
    #[target_feature(enable = "aes")]
    pub(super) unsafe fn ctr_apply(round_keys: &[[u8; 16]; 11], iv: &[u8; 16], data: &mut [u8]) {
        // SAFETY: all loads/stores stay within `data`, the counter block and
        // the key schedule; the 64-byte chunks_exact bound guards the quads.
        unsafe {
            let ek = load_schedule(round_keys);
            let mut counter = *iv;
            let mut quads = data.chunks_exact_mut(64);
            for quad in &mut quads {
                let mut c = [_mm_setzero_si128(); 4];
                for slot in c.iter_mut() {
                    *slot = _mm_xor_si128(_mm_loadu_si128(counter.as_ptr().cast()), ek[0]);
                    super::Aes128::increment_counter(&mut counter);
                }
                for rk in &ek[1..10] {
                    for slot in c.iter_mut() {
                        *slot = _mm_aesenc_si128(*slot, *rk);
                    }
                }
                for (i, slot) in c.iter().enumerate() {
                    let ks = _mm_aesenclast_si128(*slot, ek[10]);
                    let p = quad.as_mut_ptr().add(16 * i).cast::<__m128i>();
                    _mm_storeu_si128(p, _mm_xor_si128(_mm_loadu_si128(p), ks));
                }
            }
            for chunk in quads.into_remainder().chunks_mut(16) {
                let mut b = _mm_xor_si128(_mm_loadu_si128(counter.as_ptr().cast()), ek[0]);
                for rk in &ek[1..10] {
                    b = _mm_aesenc_si128(b, *rk);
                }
                let mut ks = [0u8; 16];
                _mm_storeu_si128(ks.as_mut_ptr().cast(), _mm_aesenclast_si128(b, ek[10]));
                for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
                    *byte ^= k;
                }
                super::Aes128::increment_counter(&mut counter);
            }
        }
    }
}

/// Builds a CTR IV from a 64-bit tweak (e.g. a physical address) and a
/// 64-bit stream nonce, as used by the memory encryption engine.
pub fn ctr_iv(tweak: u64, nonce: u64) -> [u8; 16] {
    let mut iv = [0u8; 16];
    iv[..8].copy_from_slice(&tweak.to_be_bytes());
    iv[8..].copy_from_slice(&nonce.to_be_bytes());
    iv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{from_hex, to_hex};

    #[test]
    fn fips197_appendix_c1() {
        // FIPS-197 Appendix C.1 known-answer test.
        let key: [u8; 16] = from_hex("000102030405060708090a0b0c0d0e0f")
            .unwrap()
            .try_into()
            .unwrap();
        let pt: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .unwrap()
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        let ct = cipher.encrypt_block(&pt);
        assert_eq!(to_hex(&ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
        assert_eq!(cipher.decrypt_block(&ct), pt);
    }

    #[test]
    fn ctr_is_involution() {
        let cipher = Aes128::new(&[0x42; 16]);
        let iv = ctr_iv(0xdead_beef, 7);
        let mut data: Vec<u8> = (0..100u8).collect();
        let orig = data.clone();
        cipher.ctr_apply(&iv, &mut data);
        assert_ne!(data, orig, "ciphertext must differ from plaintext");
        cipher.ctr_apply(&iv, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn ctr_differs_per_tweak() {
        let cipher = Aes128::new(&[0x42; 16]);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        cipher.ctr_apply(&ctr_iv(1, 0), &mut a);
        cipher.ctr_apply(&ctr_iv(2, 0), &mut b);
        assert_ne!(
            a, b,
            "different address tweaks must yield different keystreams"
        );
    }

    #[test]
    fn counter_increment_carries() {
        let cipher = Aes128::new(&[0x01; 16]);
        // IV ending in 0xff...ff forces a carry across bytes.
        let iv = [0xffu8; 16];
        let mut data = vec![0u8; 48];
        cipher.ctr_apply(&iv, &mut data);
        let mut again = data.clone();
        cipher.ctr_apply(&iv, &mut again);
        assert!(again.iter().all(|&b| b == 0));
    }

    #[test]
    fn ttable_matches_scalar_reference() {
        // The T-table path must agree with the scalar round function for
        // every key/plaintext pair we throw at it.
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            // xorshift64 keeps this test dependency-free.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..64 {
            let mut key = [0u8; 16];
            let mut pt = [0u8; 16];
            key[..8].copy_from_slice(&next().to_le_bytes());
            key[8..].copy_from_slice(&next().to_le_bytes());
            pt[..8].copy_from_slice(&next().to_le_bytes());
            pt[8..].copy_from_slice(&next().to_le_bytes());
            let cipher = Aes128::new(&key);
            let ct = cipher.encrypt_block(&pt);
            assert_eq!(ct, cipher.encrypt_block_ref(&pt));
            assert_eq!(cipher.decrypt_block(&ct), pt);
        }
    }

    #[test]
    fn ctr_fast_path_matches_reference() {
        let cipher = Aes128::new(&[0x5a; 16]);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 64, 100, 256] {
            let mut fast: Vec<u8> = (0..len as u32).map(|i| (i * 13 % 251) as u8).collect();
            let mut slow = fast.clone();
            let iv = ctr_iv(0xfeed_f00d, 42);
            cipher.ctr_apply(&iv, &mut fast);
            cipher.ctr_apply_ref(&iv, &mut slow);
            assert_eq!(fast, slow, "len {len}");
        }
    }

    #[test]
    fn gmul_matches_xtime() {
        for b in 0..=255u8 {
            assert_eq!(gmul(b, 2), xtime(b));
            assert_eq!(gmul(b, 1), b);
            assert_eq!(gmul(b, 3), xtime(b) ^ b);
        }
    }
}
