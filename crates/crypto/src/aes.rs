//! AES-128 block cipher with ECB-style single-block and CTR-mode helpers.
//!
//! This is the functional model of both the EMS crypto engine's AES unit
//! (Table III: 1.24 Gbps) and of the multi-key memory encryption engine
//! (§IV-C, MKTME/SME-like). The memory engine in `hypertee-mem` encrypts each
//! physical line with AES-CTR keyed by the enclave's KeyID and tweaked by the
//! physical address, so that reads through the wrong KeyID really return
//! ciphertext — the property the paper's PTW attack-surface analysis relies
//! on (§VIII-C).

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// AES inverse S-box, derived from [`SBOX`] at first use.
fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &v) in SBOX.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

/// Round constants for AES-128 key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn xtime(b: u8) -> u8 {
    let hi = b & 0x80;
    let mut r = b << 1;
    if hi != 0 {
        r ^= 0x1b;
    }
    r
}

/// Multiplies two elements of GF(2^8) with the AES polynomial.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An expanded AES-128 key schedule (11 round keys).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl core::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never leak key material through Debug.
        write!(f, "Aes128 {{ round_keys: <redacted> }}")
    }
}

impl Aes128 {
    /// Expands a 16-byte key into the full round-key schedule.
    ///
    /// # Example
    ///
    /// ```
    /// let cipher = hypertee_crypto::aes::Aes128::new(&[0u8; 16]);
    /// let ct = cipher.encrypt_block(&[0u8; 16]);
    /// assert_eq!(cipher.decrypt_block(&ct), [0u8; 16]);
    /// ```
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp = [
                    SBOX[temp[1] as usize] ^ RCON[i / 4 - 1],
                    SBOX[temp[2] as usize],
                    SBOX[temp[3] as usize],
                    SBOX[temp[0] as usize],
                ];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        // State is column-major: state[4*c + r].
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = s[4 * ((c + r) % 4) + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
            state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
        }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..10 {
            Self::sub_bytes(&mut state);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
        }
        Self::sub_bytes(&mut state);
        Self::shift_rows(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[10]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let inv = inv_sbox();
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[10]);
        for round in (1..10).rev() {
            // Inverse shift rows.
            let s = state;
            for r in 1..4 {
                for c in 0..4 {
                    state[4 * ((c + r) % 4) + r] = s[4 * c + r];
                }
            }
            // Inverse sub bytes.
            for b in state.iter_mut() {
                *b = inv[*b as usize];
            }
            Self::add_round_key(&mut state, &self.round_keys[round]);
            // Inverse mix columns.
            for c in 0..4 {
                let col = [
                    state[4 * c],
                    state[4 * c + 1],
                    state[4 * c + 2],
                    state[4 * c + 3],
                ];
                state[4 * c] =
                    gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
                state[4 * c + 1] =
                    gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
                state[4 * c + 2] =
                    gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
                state[4 * c + 3] =
                    gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
            }
        }
        // Final (first) round.
        let s = state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * ((c + r) % 4) + r] = s[4 * c + r];
            }
        }
        for b in state.iter_mut() {
            *b = inv[*b as usize];
        }
        Self::add_round_key(&mut state, &self.round_keys[0]);
        state
    }

    /// Applies CTR-mode keystream to `data` in place, starting from the
    /// 16-byte `iv` interpreted as a big-endian counter block.
    ///
    /// CTR is an involution: applying it twice with the same parameters
    /// restores the plaintext.
    pub fn ctr_apply(&self, iv: &[u8; 16], data: &mut [u8]) {
        let mut counter = *iv;
        for chunk in data.chunks_mut(16) {
            let ks = self.encrypt_block(&counter);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            // Increment the big-endian counter.
            for i in (0..16).rev() {
                counter[i] = counter[i].wrapping_add(1);
                if counter[i] != 0 {
                    break;
                }
            }
        }
    }
}

/// Builds a CTR IV from a 64-bit tweak (e.g. a physical address) and a
/// 64-bit stream nonce, as used by the memory encryption engine.
pub fn ctr_iv(tweak: u64, nonce: u64) -> [u8; 16] {
    let mut iv = [0u8; 16];
    iv[..8].copy_from_slice(&tweak.to_be_bytes());
    iv[8..].copy_from_slice(&nonce.to_be_bytes());
    iv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{from_hex, to_hex};

    #[test]
    fn fips197_appendix_c1() {
        // FIPS-197 Appendix C.1 known-answer test.
        let key: [u8; 16] = from_hex("000102030405060708090a0b0c0d0e0f")
            .unwrap()
            .try_into()
            .unwrap();
        let pt: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .unwrap()
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        let ct = cipher.encrypt_block(&pt);
        assert_eq!(to_hex(&ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
        assert_eq!(cipher.decrypt_block(&ct), pt);
    }

    #[test]
    fn ctr_is_involution() {
        let cipher = Aes128::new(&[0x42; 16]);
        let iv = ctr_iv(0xdead_beef, 7);
        let mut data: Vec<u8> = (0..100u8).collect();
        let orig = data.clone();
        cipher.ctr_apply(&iv, &mut data);
        assert_ne!(data, orig, "ciphertext must differ from plaintext");
        cipher.ctr_apply(&iv, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn ctr_differs_per_tweak() {
        let cipher = Aes128::new(&[0x42; 16]);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        cipher.ctr_apply(&ctr_iv(1, 0), &mut a);
        cipher.ctr_apply(&ctr_iv(2, 0), &mut b);
        assert_ne!(
            a, b,
            "different address tweaks must yield different keystreams"
        );
    }

    #[test]
    fn counter_increment_carries() {
        let cipher = Aes128::new(&[0x01; 16]);
        // IV ending in 0xff...ff forces a carry across bytes.
        let iv = [0xffu8; 16];
        let mut data = vec![0u8; 48];
        cipher.ctr_apply(&iv, &mut data);
        let mut again = data.clone();
        cipher.ctr_apply(&iv, &mut again);
        assert!(again.iter().all(|&b| b == 0));
    }

    #[test]
    fn gmul_matches_xtime() {
        for b in 0..=255u8 {
            assert_eq!(gmul(b, 2), xtime(b));
            assert_eq!(gmul(b, 1), b);
            assert_eq!(gmul(b, 3), xtime(b) ^ b);
        }
    }
}
