//! Arithmetic modulo the Curve25519 group order
//! L = 2^252 + 27742317777372353535851937790883648493.

use crate::chacha::ChaChaRng;
use crate::u256::{U256, U512};

/// The group order L, little-endian limbs.
pub const L: U256 = U256([
    0x5812_631a_5cf5_d3ed,
    0x14de_f9de_a2f7_9cd6,
    0x0000_0000_0000_0000,
    0x1000_0000_0000_0000,
]);

/// A scalar modulo L, kept in canonical form (`< L`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Scalar(pub(crate) U256);

impl Scalar {
    /// The zero scalar.
    pub const ZERO: Scalar = Scalar(U256([0, 0, 0, 0]));
    /// The scalar one.
    pub const ONE: Scalar = Scalar(U256([1, 0, 0, 0]));

    /// Builds a scalar from a small integer.
    pub fn from_u64(v: u64) -> Scalar {
        Scalar(U512::from_u256(&U256::from_u64(v)).reduce_mod(&L))
    }

    /// Reduces 32 little-endian bytes modulo L.
    pub fn from_le_bytes(bytes: &[u8; 32]) -> Scalar {
        let raw = U256::from_le_bytes(bytes);
        Scalar(U512::from_u256(&raw).reduce_mod(&L))
    }

    /// Reduces 64 little-endian bytes (e.g. a hash widened to 512 bits)
    /// modulo L — the standard way to map digests to scalars.
    pub fn from_le_bytes_wide(bytes: &[u8; 64]) -> Scalar {
        Scalar(U512::from_le_bytes(bytes).reduce_mod(&L))
    }

    /// Serializes to 32 little-endian bytes.
    pub fn to_le_bytes(self) -> [u8; 32] {
        self.0.to_le_bytes()
    }

    /// Returns `true` when the scalar is zero.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// Samples a uniformly random nonzero scalar.
    pub fn random(rng: &mut ChaChaRng) -> Scalar {
        loop {
            let mut wide = [0u8; 64];
            rng.fill_bytes(&mut wide);
            let s = Scalar::from_le_bytes_wide(&wide);
            if !s.is_zero() {
                return s;
            }
        }
    }

    /// Scalar addition mod L.
    pub fn add(&self, other: &Scalar) -> Scalar {
        Scalar(crate::u256::add_mod(&self.0, &other.0, &L))
    }

    /// Scalar subtraction mod L.
    pub fn sub(&self, other: &Scalar) -> Scalar {
        Scalar(crate::u256::sub_mod(&self.0, &other.0, &L))
    }

    /// Scalar multiplication mod L.
    pub fn mul(&self, other: &Scalar) -> Scalar {
        Scalar(crate::u256::mul_mod(&self.0, &other.0, &L))
    }

    /// Returns the bit at `index` of the canonical representation.
    pub fn bit(&self, index: usize) -> bool {
        self.0.bit(index)
    }

    /// Index of the highest set bit, or `None` for zero.
    pub fn highest_bit(&self) -> Option<usize> {
        self.0.highest_bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l_reduces_to_zero() {
        let bytes = L.to_le_bytes();
        assert!(Scalar::from_le_bytes(&bytes).is_zero());
    }

    #[test]
    fn l_minus_one_plus_one_wraps() {
        let (lm1, _) = L.sbb(&U256::ONE);
        let s = Scalar::from_le_bytes(&lm1.to_le_bytes());
        assert!(s.add(&Scalar::ONE).is_zero());
    }

    #[test]
    fn mul_distributes_over_add() {
        let a = Scalar::from_le_bytes(&[0x61; 32]);
        let b = Scalar::from_le_bytes(&[0x29; 32]);
        let c = Scalar::from_le_bytes(&[0x77; 32]);
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn wide_reduction_is_uniform_on_known_value() {
        // 2^256 mod L, computed independently: 2^256 = 16·2^252; with
        // 2^252 ≡ -c (mod L) where c = L - 2^252, 2^256 ≡ -16c ≡ L·16 - 16c… we
        // simply check consistency: from_le_bytes_wide(2^256) ==
        // from(2)^256 via repeated doubling.
        let mut wide = [0u8; 64];
        wide[32] = 1; // 2^256.
        let direct = Scalar::from_le_bytes_wide(&wide);
        let mut doubled = Scalar::ONE;
        for _ in 0..256 {
            doubled = doubled.add(&doubled);
        }
        assert_eq!(direct, doubled);
    }

    #[test]
    fn random_scalars_differ() {
        let mut rng = ChaChaRng::from_u64(99);
        let a = Scalar::random(&mut rng);
        let b = Scalar::random(&mut rng);
        assert_ne!(a, b);
        assert!(!a.is_zero());
    }
}
