//! Elliptic-curve Diffie–Hellman key exchange over the Curve25519 Edwards
//! group, used by the paper's local-attestation flow (§VI: "HyperTEE
//! leverages the Elliptic-Curve Diffie-Hellman (ECDH) key exchange
//! protocol") and by SIGMA remote attestation's key negotiation.

use crate::chacha::ChaChaRng;
use crate::ed::Point;
use crate::hmac::kdf;
use crate::scalar::Scalar;
use crate::CryptoError;

/// An ECDH private key (a secret scalar).
#[derive(Clone)]
pub struct EcdhPrivate {
    secret: Scalar,
    /// The corresponding public point a·B.
    pub public: EcdhPublic,
}

impl core::fmt::Debug for EcdhPrivate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "EcdhPrivate {{ public: {:?}, secret: <redacted> }}",
            self.public
        )
    }
}

/// An ECDH public key (a curve point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcdhPublic(pub Point);

impl EcdhPrivate {
    /// Generates a fresh ephemeral key.
    pub fn generate(rng: &mut ChaChaRng) -> EcdhPrivate {
        let secret = Scalar::random(rng);
        let public = EcdhPublic(Point::base().mul(&secret));
        EcdhPrivate { secret, public }
    }

    /// Computes the shared secret with a peer's public key and derives a
    /// 32-byte symmetric key from it.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidPoint`] when the peer point is the
    /// identity (a degenerate/small-order contribution).
    pub fn shared_key(&self, peer: &EcdhPublic) -> Result<[u8; 32], CryptoError> {
        if peer.0.is_identity() {
            return Err(CryptoError::InvalidPoint);
        }
        let shared_point = peer.0.mul(&self.secret);
        if shared_point.is_identity() {
            return Err(CryptoError::InvalidPoint);
        }
        Ok(kdf(&shared_point.encode(), b"hypertee-ecdh-v1", b""))
    }
}

impl EcdhPublic {
    /// Serializes to 64 bytes.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.0.encode()
    }

    /// Parses a 64-byte public key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidPoint`] for off-curve encodings.
    pub fn from_bytes(bytes: &[u8; 64]) -> Result<EcdhPublic, CryptoError> {
        Ok(EcdhPublic(Point::decode(bytes)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sides_agree() {
        let mut rng = ChaChaRng::from_u64(11);
        let alice = EcdhPrivate::generate(&mut rng);
        let bob = EcdhPrivate::generate(&mut rng);
        let k_ab = alice.shared_key(&bob.public).unwrap();
        let k_ba = bob.shared_key(&alice.public).unwrap();
        assert_eq!(k_ab, k_ba);
    }

    #[test]
    fn third_party_disagrees() {
        let mut rng = ChaChaRng::from_u64(12);
        let alice = EcdhPrivate::generate(&mut rng);
        let bob = EcdhPrivate::generate(&mut rng);
        let eve = EcdhPrivate::generate(&mut rng);
        let k_ab = alice.shared_key(&bob.public).unwrap();
        let k_eb = eve.shared_key(&bob.public).unwrap();
        assert_ne!(k_ab, k_eb);
    }

    #[test]
    fn identity_peer_rejected() {
        let mut rng = ChaChaRng::from_u64(13);
        let alice = EcdhPrivate::generate(&mut rng);
        let degenerate = EcdhPublic(crate::ed::Point::identity());
        assert_eq!(
            alice.shared_key(&degenerate),
            Err(CryptoError::InvalidPoint)
        );
    }

    #[test]
    fn public_key_roundtrip() {
        let mut rng = ChaChaRng::from_u64(14);
        let alice = EcdhPrivate::generate(&mut rng);
        let restored = EcdhPublic::from_bytes(&alice.public.to_bytes()).unwrap();
        assert_eq!(restored, alice.public);
    }
}
