//! The 28-bit truncated SHA-3 MAC used for enclave memory integrity.
//!
//! §IV-C: "HyperTEE employs SHA-3 based MAC (28-bit) employed by commercial
//! TEEs, which is more suitable for large-size enclave memory than Merkle
//! Trees. In case of an integrity violation, an exception is triggered."
//!
//! Each protected memory line stores a [`MacTag`] computed over
//! `key ‖ address ‖ data`; a mismatch on read models the hardware integrity
//! exception.

use crate::sha3::{keccakf_single_block, Sha3_256, Sha3_256Ref, RATE};

/// A 28-bit MAC tag, stored in the low bits of a `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacTag(pub u32);

/// Width of the tag in bits, matching the paper.
pub const TAG_BITS: u32 = 28;

const TAG_MASK: u32 = (1 << TAG_BITS) - 1;

/// Computes the 28-bit integrity tag for a memory line.
///
/// # Example
///
/// ```
/// use hypertee_crypto::mac::{mac28, verify28};
/// let tag = mac28(&[1u8; 32], 0x8000_0000, b"line data");
/// assert!(verify28(&[1u8; 32], 0x8000_0000, b"line data", tag));
/// assert!(!verify28(&[1u8; 32], 0x8000_0000, b"line dat!", tag));
/// ```
pub fn mac28(key: &[u8; 32], address: u64, data: &[u8]) -> MacTag {
    // Fast path for the hot case: the whole `key ‖ addr ‖ len ‖ data`
    // message plus SHA-3 padding fits a single rate block, so the tag is
    // one padded block of 17 lanes and one permutation — no state array,
    // no incremental-hasher machinery. The 64-byte memory line (the only
    // caller on the data plane) assembles its lanes directly without even
    // a byte buffer.
    let msg_len = 48 + data.len();
    if data.len() == 64 {
        let lane = |bytes: &[u8]| u64::from_le_bytes(bytes.try_into().expect("8 bytes"));
        let lanes: [u64; RATE / 8] = [
            lane(&key[..8]),
            lane(&key[8..16]),
            lane(&key[16..24]),
            lane(&key[24..32]),
            address,
            64, // the length lane
            lane(&data[..8]),
            lane(&data[8..16]),
            lane(&data[16..24]),
            lane(&data[24..32]),
            lane(&data[32..40]),
            lane(&data[40..48]),
            lane(&data[48..56]),
            lane(&data[56..64]),
            0x06, // padding start at byte 112 = lane 14 byte 0
            0,
            0x80u64 << 56, // padding end at byte 135 = lane 16 byte 7
        ];
        return MacTag((keccakf_single_block(&lanes) as u32) & TAG_MASK);
    }
    if msg_len < RATE {
        let mut block = [0u8; RATE];
        block[..32].copy_from_slice(key);
        block[32..40].copy_from_slice(&address.to_le_bytes());
        block[40..48].copy_from_slice(&(data.len() as u64).to_le_bytes());
        block[48..msg_len].copy_from_slice(data);
        block[msg_len] ^= 0x06;
        block[RATE - 1] ^= 0x80;
        let mut lanes = [0u64; RATE / 8];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = u64::from_le_bytes(block[8 * i..8 * i + 8].try_into().expect("8 bytes"));
        }
        return MacTag((keccakf_single_block(&lanes) as u32) & TAG_MASK);
    }
    let mut h = Sha3_256::new();
    h.update(key);
    h.update(&address.to_le_bytes());
    h.update(&(data.len() as u64).to_le_bytes());
    h.update(data);
    let digest = h.finalize();
    let word = u32::from_le_bytes(digest[..4].try_into().expect("4 bytes"));
    MacTag(word & TAG_MASK)
}

/// Verifies a tag previously produced by [`mac28`]. Returns `true` when the
/// line is intact.
pub fn verify28(key: &[u8; 32], address: u64, data: &[u8], tag: MacTag) -> bool {
    mac28(key, address, data) == tag
}

/// Number of consecutive memory lines a [`mac28_lines`] batch covers.
pub const MAC_BATCH_LINES: usize = 8;

/// Computes [`mac28`] for eight consecutive 64-byte lines at once: line `i`
/// starts at `data[64*i]` with address `first_addr + 64*i`. Returns exactly
/// what eight [`mac28`] calls would.
///
/// Line MACs are independent, so on AVX-512 hosts the batch runs eight
/// lane-sliced Keccak sponges in one pass — the permutation's ops are shared
/// eight ways, which a one-line-at-a-time MAC can never approach. This is
/// the shape the memory engine's span paths feed: a 4 KiB page is eight
/// such batches.
///
/// # Example
///
/// ```
/// use hypertee_crypto::mac::{mac28, mac28_lines};
/// let key = [9u8; 32];
/// let data = [0x5au8; 512];
/// let tags = mac28_lines(&key, 0x8000, &data);
/// for i in 0..8 {
///     assert_eq!(tags[i], mac28(&key, 0x8000 + 64 * i as u64, &data[64 * i..64 * i + 64]));
/// }
/// ```
pub fn mac28_lines(key: &[u8; 32], first_addr: u64, data: &[u8; 512]) -> [MacTag; MAC_BATCH_LINES] {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f") {
        let lane = |bytes: &[u8]| u64::from_le_bytes(bytes.try_into().expect("8 bytes"));
        let key_lanes = [
            lane(&key[..8]),
            lane(&key[8..16]),
            lane(&key[16..24]),
            lane(&key[24..32]),
        ];
        // SAFETY: the required CPU feature was verified just above.
        #[allow(unsafe_code)]
        let words = unsafe { crate::keccak_avx512::mac28_lines8(&key_lanes, first_addr, data) };
        return words.map(|w| MacTag((w as u32) & TAG_MASK));
    }
    core::array::from_fn(|i| {
        let line: &[u8; 64] = data[64 * i..64 * i + 64].try_into().expect("64 bytes");
        mac28(key, first_addr + 64 * i as u64, line)
    })
}

/// The pre-optimization tag path, reproduced verbatim over the reference
/// hasher ([`Sha3_256Ref`]: byte-at-a-time absorption, loop-based
/// permutation): the differential oracle and the honest "before"
/// measurement for [`mac28`]. Always equal to [`mac28`].
pub fn mac28_ref(key: &[u8; 32], address: u64, data: &[u8]) -> MacTag {
    let mut h = Sha3_256Ref::new();
    h.update(key);
    h.update(&address.to_le_bytes());
    h.update(&(data.len() as u64).to_le_bytes());
    h.update(data);
    let digest = h.finalize();
    let word = u32::from_le_bytes(digest[..4].try_into().expect("4 bytes"));
    MacTag(word & TAG_MASK)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_fits_in_28_bits() {
        for i in 0..64u64 {
            let tag = mac28(&[3u8; 32], i, &[i as u8; 64]);
            assert!(tag.0 <= TAG_MASK);
        }
    }

    #[test]
    fn tag_depends_on_address() {
        let key = [5u8; 32];
        let t1 = mac28(&key, 0x1000, b"data");
        let t2 = mac28(&key, 0x2000, b"data");
        assert_ne!(t1, t2, "address must be bound into the tag");
    }

    #[test]
    fn tag_depends_on_key() {
        let t1 = mac28(&[1u8; 32], 0x1000, b"data");
        let t2 = mac28(&[2u8; 32], 0x1000, b"data");
        assert_ne!(t1, t2);
    }

    #[test]
    fn tamper_detection() {
        let key = [9u8; 32];
        let data = vec![0x5au8; 64];
        let tag = mac28(&key, 0x4000, &data);
        let mut tampered = data.clone();
        tampered[17] ^= 0x01;
        assert!(verify28(&key, 0x4000, &data, tag));
        assert!(!verify28(&key, 0x4000, &tampered, tag));
    }

    #[test]
    fn reference_mac_matches_optimized() {
        for i in 0..32u64 {
            let key = [i as u8; 32];
            let data = vec![(i * 7) as u8; 64];
            assert_eq!(mac28(&key, i * 64, &data), mac28_ref(&key, i * 64, &data));
        }
        // Non-line-sized payloads, straddling the single-block fast-path
        // boundary (48-byte header + data vs the 136-byte rate): 87 is the
        // last single-block length, 88 the first two-block one.
        for len in [0usize, 1, 3, 86, 87, 88, 100, 200] {
            let data = vec![0x5au8; len];
            assert_eq!(
                mac28(&[1; 32], 0x9000, &data),
                mac28_ref(&[1; 32], 0x9000, &data),
                "len {len}"
            );
        }
    }

    #[test]
    fn batched_lines_match_single_line_macs() {
        // Pins the lane-sliced batch (AVX-512 when present, scalar loop
        // otherwise) against both the single-line path and the seed
        // reference, across varied data and addresses.
        for seed in 0..8u64 {
            let key = [(seed as u8).wrapping_mul(29); 32];
            let mut data = [0u8; 512];
            for (i, b) in data.iter_mut().enumerate() {
                *b = (i as u64).wrapping_mul(seed | 1).wrapping_add(seed) as u8;
            }
            let first = 0x4000 + seed * 512;
            let tags = mac28_lines(&key, first, &data);
            for (i, &tag) in tags.iter().enumerate() {
                let line = &data[64 * i..64 * i + 64];
                let addr = first + 64 * i as u64;
                assert_eq!(tag, mac28(&key, addr, line), "seed {seed} line {i}");
                assert_eq!(tag, mac28_ref(&key, addr, line), "seed {seed} line {i} ref");
            }
        }
    }

    #[test]
    fn replay_to_other_address_detected() {
        // Moving a valid (data, tag) pair to a different address must fail,
        // modelling relocation attacks.
        let key = [11u8; 32];
        let tag = mac28(&key, 0x1000, b"secret line");
        assert!(!verify28(&key, 0x3000, b"secret line", tag));
    }
}
