//! The 28-bit truncated SHA-3 MAC used for enclave memory integrity.
//!
//! §IV-C: "HyperTEE employs SHA-3 based MAC (28-bit) employed by commercial
//! TEEs, which is more suitable for large-size enclave memory than Merkle
//! Trees. In case of an integrity violation, an exception is triggered."
//!
//! Each protected memory line stores a [`MacTag`] computed over
//! `key ‖ address ‖ data`; a mismatch on read models the hardware integrity
//! exception.

use crate::sha3::Sha3_256;

/// A 28-bit MAC tag, stored in the low bits of a `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacTag(pub u32);

/// Width of the tag in bits, matching the paper.
pub const TAG_BITS: u32 = 28;

const TAG_MASK: u32 = (1 << TAG_BITS) - 1;

/// Computes the 28-bit integrity tag for a memory line.
///
/// # Example
///
/// ```
/// use hypertee_crypto::mac::{mac28, verify28};
/// let tag = mac28(&[1u8; 32], 0x8000_0000, b"line data");
/// assert!(verify28(&[1u8; 32], 0x8000_0000, b"line data", tag));
/// assert!(!verify28(&[1u8; 32], 0x8000_0000, b"line dat!", tag));
/// ```
pub fn mac28(key: &[u8; 32], address: u64, data: &[u8]) -> MacTag {
    let mut h = Sha3_256::new();
    h.update(key);
    h.update(&address.to_le_bytes());
    h.update(&(data.len() as u64).to_le_bytes());
    h.update(data);
    let digest = h.finalize();
    let word = u32::from_le_bytes(digest[..4].try_into().expect("4 bytes"));
    MacTag(word & TAG_MASK)
}

/// Verifies a tag previously produced by [`mac28`]. Returns `true` when the
/// line is intact.
pub fn verify28(key: &[u8; 32], address: u64, data: &[u8], tag: MacTag) -> bool {
    mac28(key, address, data) == tag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_fits_in_28_bits() {
        for i in 0..64u64 {
            let tag = mac28(&[3u8; 32], i, &[i as u8; 64]);
            assert!(tag.0 <= TAG_MASK);
        }
    }

    #[test]
    fn tag_depends_on_address() {
        let key = [5u8; 32];
        let t1 = mac28(&key, 0x1000, b"data");
        let t2 = mac28(&key, 0x2000, b"data");
        assert_ne!(t1, t2, "address must be bound into the tag");
    }

    #[test]
    fn tag_depends_on_key() {
        let t1 = mac28(&[1u8; 32], 0x1000, b"data");
        let t2 = mac28(&[2u8; 32], 0x1000, b"data");
        assert_ne!(t1, t2);
    }

    #[test]
    fn tamper_detection() {
        let key = [9u8; 32];
        let data = vec![0x5au8; 64];
        let tag = mac28(&key, 0x4000, &data);
        let mut tampered = data.clone();
        tampered[17] ^= 0x01;
        assert!(verify28(&key, 0x4000, &data, tag));
        assert!(!verify28(&key, 0x4000, &tampered, tag));
    }

    #[test]
    fn replay_to_other_address_detected() {
        // Moving a valid (data, tag) pair to a different address must fail,
        // modelling relocation attacks.
        let key = [11u8; 32];
        let tag = mac28(&key, 0x1000, b"secret line");
        assert!(!verify28(&key, 0x3000, b"secret line", tag));
    }
}
