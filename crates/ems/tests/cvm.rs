//! Tests for the §IX VM-level TEE extension: CVM deployment, guest-memory
//! confidentiality, snapshot save/restore with Merkle integrity and
//! rollback protection, and attested cross-node migration.

use hypertee_crypto::aes::{ctr_iv, Aes128};
use hypertee_crypto::chacha::ChaChaRng;
use hypertee_ems::cvm::CvmState;
use hypertee_ems::error::EmsError;
use hypertee_ems::keys::EFuse;
use hypertee_ems::runtime::{Ems, EmsContext};
use hypertee_fabric::ihub::IHub;
use hypertee_mem::addr::{PhysAddr, Ppn};
use hypertee_mem::phys::FrameAllocator;
use hypertee_mem::system::MemorySystem;

struct Node {
    sys: MemorySystem,
    hub: IHub,
    os: FrameAllocator,
    ems: Ems,
}

impl Node {
    fn new(seed: u64) -> Node {
        let sys = MemorySystem::new(256 << 20, PhysAddr(0x10_000));
        let (hub, cap) = IHub::new();
        let os = FrameAllocator::new(Ppn(256), Ppn(60000));
        let mut rng = ChaChaRng::from_u64(seed);
        let efuse = EFuse::burn(&mut rng);
        let ems = Ems::new(cap, efuse, [0xCC; 32], seed);
        Node { sys, hub, os, ems }
    }

    fn with<R>(&mut self, f: impl FnOnce(&mut Ems, &mut EmsContext<'_>) -> R) -> R {
        let mut ctx = EmsContext {
            sys: &mut self.sys,
            hub: &mut self.hub,
            os_frames: &mut self.os,
        };
        f(&mut self.ems, &mut ctx)
    }
}

const IMAGE_KEY: [u8; 16] = *b"vm-owner-img-key";

fn encrypted_image(plain: &[u8]) -> Vec<u8> {
    let mut ct = plain.to_vec();
    Aes128::new(&IMAGE_KEY).ctr_apply(&ctr_iv(0x4356_4d49, 0), &mut ct);
    ct
}

#[test]
fn cvm_deploys_encrypted_image() {
    let mut node = Node::new(1);
    let plain = b"confidential VM image: kernel + initrd";
    let ct = encrypted_image(plain);
    let id = node
        .with(|e, c| e.cvm_create(c, &ct, &IMAGE_KEY, 8))
        .unwrap();
    assert_eq!(node.ems.cvm_state(id).unwrap(), CvmState::Active);
    // Guest memory reads back the decrypted image…
    let mut buf = vec![0u8; plain.len()];
    node.with(|e, c| e.cvm_read(c, id, 0, &mut buf)).unwrap();
    assert_eq!(&buf, plain);
    // …and the measurement covers the plaintext.
    let m = node.ems.cvm_measurement(id).unwrap();
    assert_eq!(m, hypertee_crypto::sha256::sha256(plain));
    // Raw DRAM never holds VM plaintext (MKTME below the guest).
    let total = node.sys.phys.total_frames();
    let mut page = vec![0u8; 4096];
    for f in 0..total {
        node.sys.phys.read(Ppn(f).base(), &mut page).unwrap();
        assert!(
            !page.windows(plain.len()).any(|w| w == plain),
            "plaintext VM image found in DRAM frame {f}"
        );
    }
}

#[test]
fn snapshot_save_restore_roundtrip() {
    let mut node = Node::new(2);
    let ct = encrypted_image(b"snapshot me");
    let id = node
        .with(|e, c| e.cvm_create(c, &ct, &IMAGE_KEY, 4))
        .unwrap();
    node.with(|e, c| e.cvm_write(c, id, 8192, b"dirty guest state"))
        .unwrap();

    let snapshot = node.with(|e, c| e.cvm_save(c, id)).unwrap();
    assert_eq!(node.ems.cvm_state(id).unwrap(), CvmState::Saved);
    assert_eq!(snapshot.pages.len(), 4);
    // The snapshot handed to the host is ciphertext only.
    for p in &snapshot.pages {
        assert!(!p.windows(17).any(|w| w == b"dirty guest state"));
    }

    node.with(|e, c| e.cvm_restore(c, &snapshot)).unwrap();
    assert_eq!(node.ems.cvm_state(id).unwrap(), CvmState::Active);
    let mut buf = [0u8; 17];
    node.with(|e, c| e.cvm_read(c, id, 8192, &mut buf)).unwrap();
    assert_eq!(&buf, b"dirty guest state");
}

#[test]
fn tampered_snapshot_rejected() {
    let mut node = Node::new(3);
    let ct = encrypted_image(b"tamper target");
    let id = node
        .with(|e, c| e.cvm_create(c, &ct, &IMAGE_KEY, 4))
        .unwrap();
    let mut snapshot = node.with(|e, c| e.cvm_save(c, id)).unwrap();
    snapshot.pages[2][100] ^= 0x40;
    let err = node.with(|e, c| e.cvm_restore(c, &snapshot)).unwrap_err();
    assert_eq!(err, EmsError::AccessDenied);
}

#[test]
fn rollback_to_older_snapshot_rejected() {
    let mut node = Node::new(4);
    let ct = encrypted_image(b"rollback target");
    let id = node
        .with(|e, c| e.cvm_create(c, &ct, &IMAGE_KEY, 4))
        .unwrap();
    // Snapshot v0, restore, mutate, snapshot v1.
    let snap0 = node.with(|e, c| e.cvm_save(c, id)).unwrap();
    node.with(|e, c| e.cvm_restore(c, &snap0)).unwrap();
    node.with(|e, c| e.cvm_write(c, id, 0, b"security patch applied"))
        .unwrap();
    let snap1 = node.with(|e, c| e.cvm_save(c, id)).unwrap();
    assert_eq!(snap1.sequence, snap0.sequence + 1);
    // Replaying the stale v0 snapshot is refused (sequence mismatch).
    let err = node.with(|e, c| e.cvm_restore(c, &snap0)).unwrap_err();
    assert_eq!(err, EmsError::AccessDenied);
    // The current snapshot restores fine.
    node.with(|e, c| e.cvm_restore(c, &snap1)).unwrap();
    let mut buf = [0u8; 22];
    node.with(|e, c| e.cvm_read(c, id, 0, &mut buf)).unwrap();
    assert_eq!(&buf, b"security patch applied");
}

#[test]
fn migration_between_attested_nodes() {
    let mut src = Node::new(10);
    let mut dst = Node::new(11);
    let ct = encrypted_image(b"migrating workload state");
    let id = src
        .with(|e, c| e.cvm_create(c, &ct, &IMAGE_KEY, 8))
        .unwrap();
    src.with(|e, c| e.cvm_write(c, id, 4096, b"live session data"))
        .unwrap();

    // ① Destination publishes an attested offer.
    let (offer, offer_priv) = dst.ems.migration_offer();
    // ② Source verifies the destination's platform quote and emits the
    //    encrypted bundle.
    let dst_ek = dst.ems.ek_public();
    let bundle = src
        .with(|e, c| e.migrate_out(c, id, &offer, &dst_ek))
        .unwrap();
    assert_eq!(src.ems.cvm_state(id).unwrap(), CvmState::MigratedOut);
    // ③ Destination verifies and installs.
    let new_id = dst
        .with(|e, c| e.migrate_in(c, &bundle, &offer_priv))
        .unwrap();
    assert_eq!(dst.ems.cvm_state(new_id).unwrap(), CvmState::Active);
    let mut buf = [0u8; 17];
    dst.with(|e, c| e.cvm_read(c, new_id, 4096, &mut buf))
        .unwrap();
    assert_eq!(&buf, b"live session data");
    // The measurement travelled intact.
    assert_eq!(
        dst.ems.cvm_measurement(new_id).unwrap(),
        hypertee_crypto::sha256::sha256(b"migrating workload state")
    );
}

#[test]
fn migration_to_unattested_node_refused() {
    let mut src = Node::new(12);
    let mut dst = Node::new(13);
    let ct = encrypted_image(b"precious");
    let id = src
        .with(|e, c| e.cvm_create(c, &ct, &IMAGE_KEY, 4))
        .unwrap();
    let (offer, _priv) = dst.ems.migration_offer();
    // The source pins a *different* manufacturer EK (the destination is not
    // a genuine HyperTEE platform) → refused, CVM stays put.
    let wrong_ek = hypertee_crypto::sig::Keypair::from_key_material(&[0x55; 32]).public;
    let err = src
        .with(|e, c| e.migrate_out(c, id, &offer, &wrong_ek))
        .unwrap_err();
    assert_eq!(err, EmsError::AccessDenied);
    assert_eq!(src.ems.cvm_state(id).unwrap(), CvmState::Active);
}

#[test]
fn tampered_migration_bundle_rejected() {
    let mut src = Node::new(14);
    let mut dst = Node::new(15);
    let ct = encrypted_image(b"bundle target");
    let id = src
        .with(|e, c| e.cvm_create(c, &ct, &IMAGE_KEY, 4))
        .unwrap();
    let (offer, offer_priv) = dst.ems.migration_offer();
    let dst_ek = dst.ems.ek_public();
    let bundle = src
        .with(|e, c| e.migrate_out(c, id, &offer, &dst_ek))
        .unwrap();
    // Network attacker flips a ciphertext page bit.
    let mut bad = bundle.clone();
    bad.snapshot.pages[1][7] ^= 1;
    assert_eq!(
        dst.with(|e, c| e.migrate_in(c, &bad, &offer_priv))
            .unwrap_err(),
        EmsError::AccessDenied
    );
    // Or tampers with the wrapped secrets.
    let mut bad2 = bundle.clone();
    bad2.wrapped_secrets[0] ^= 1;
    assert_eq!(
        dst.with(|e, c| e.migrate_in(c, &bad2, &offer_priv))
            .unwrap_err(),
        EmsError::AccessDenied
    );
    // The pristine bundle still installs.
    assert!(dst
        .with(|e, c| e.migrate_in(c, &bundle, &offer_priv))
        .is_ok());
}

#[test]
fn cvm_destroy_reclaims_memory() {
    let mut node = Node::new(16);
    let ct = encrypted_image(b"short lived");
    let used_before = node.ems.pool().used_frames();
    let id = node
        .with(|e, c| e.cvm_create(c, &ct, &IMAGE_KEY, 8))
        .unwrap();
    assert!(node.ems.pool().used_frames() > used_before);
    node.with(|e, c| e.cvm_destroy(c, id)).unwrap();
    assert_eq!(node.ems.pool().used_frames(), used_before);
    assert!(node.ems.cvm_state(id).is_err());
}

#[test]
fn cvm_bounds_checked() {
    let mut node = Node::new(17);
    let ct = encrypted_image(b"bounds");
    let id = node
        .with(|e, c| e.cvm_create(c, &ct, &IMAGE_KEY, 2))
        .unwrap();
    let mut buf = [0u8; 16];
    // Reading past the end of guest memory is an argument error.
    let err = node
        .with(|e, c| e.cvm_read(c, id, 2 * 4096 - 8, &mut buf))
        .unwrap_err();
    assert_eq!(err, EmsError::InvalidArgument);
    // Oversized image vs guest size is rejected at create.
    let big = encrypted_image(&vec![1u8; 3 * 4096]);
    let err = node
        .with(|e, c| e.cvm_create(c, &big, &IMAGE_KEY, 2))
        .unwrap_err();
    assert_eq!(err, EmsError::InvalidArgument);
}
