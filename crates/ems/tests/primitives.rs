//! End-to-end tests of the EMS primitive implementations: the full enclave
//! life cycle, memory management, shared memory, and attestation — driving
//! the runtime the way EMCall would, against real simulated memory.

use hypertee_crypto::chacha::ChaChaRng;
use hypertee_ems::attest::SigmaInitiator;
use hypertee_ems::control::{layout, EnclaveConfig};
use hypertee_ems::error::EmsError;
use hypertee_ems::keys::EFuse;
use hypertee_ems::runtime::{Ems, EmsContext};
use hypertee_fabric::dma::DeviceId;
use hypertee_fabric::ihub::IHub;
use hypertee_mem::addr::{PhysAddr, Ppn, VirtAddr, PAGE_SIZE};
use hypertee_mem::pagetable::Perms;
use hypertee_mem::phys::FrameAllocator;
use hypertee_mem::system::{CoreMmu, MemorySystem};

struct Machine {
    sys: MemorySystem,
    hub: IHub,
    os: FrameAllocator,
    ems: Ems,
}

impl Machine {
    fn new(seed: u64) -> Machine {
        let sys = MemorySystem::new(256 << 20, PhysAddr(0x10_000));
        let (hub, cap) = IHub::new();
        let os = FrameAllocator::new(Ppn(256), Ppn(60000));
        let mut rng = ChaChaRng::from_u64(seed);
        let efuse = EFuse::burn(&mut rng);
        let ems = Ems::new(cap, efuse, [0xAB; 32], seed);
        Machine { sys, hub, os, ems }
    }

    /// Runs `f` with the EMS and a context over the machine's split-borrowed
    /// fields (the pattern EMCall uses: EMS never owns CS state).
    fn with<R>(&mut self, f: impl FnOnce(&mut Ems, &mut EmsContext<'_>) -> R) -> R {
        let mut ctx = EmsContext {
            sys: &mut self.sys,
            hub: &mut self.hub,
            os_frames: &mut self.os,
        };
        f(&mut self.ems, &mut ctx)
    }

    /// Builds a small measured enclave with `image` loaded at CODE_BASE and
    /// returns its id. The host image is staged in host physical memory.
    fn build_enclave(&mut self, image: &[u8]) -> u64 {
        // Host window frames provided by the OS.
        let host_base = self.os.alloc().unwrap();
        for _ in 1..16 {
            self.os.alloc().unwrap(); // keep the window contiguous
        }
        let mut ctx = EmsContext {
            sys: &mut self.sys,
            hub: &mut self.hub,
            os_frames: &mut self.os,
        };
        let eid = self
            .ems
            .ecreate(
                &mut ctx,
                EnclaveConfig {
                    heap_max: 8 * 1024 * 1024,
                    stack_bytes: 64 * 1024,
                    host_shared_bytes: 64 * 1024,
                },
                host_base.base().0,
            )
            .unwrap()
            .0;
        // Stage the image in host memory.
        let src = self.os.alloc().unwrap();
        let mut staged = image.to_vec();
        staged.resize(staged.len().div_ceil(4096) * 4096, 0);
        for (i, chunk) in staged.chunks(4096).enumerate() {
            // Keep the image within one frame for this helper.
            assert_eq!(i, 0, "helper supports single-page images");
            self.sys.phys.write(src.base(), chunk).unwrap();
        }
        let mut ctx = EmsContext {
            sys: &mut self.sys,
            hub: &mut self.hub,
            os_frames: &mut self.os,
        };
        self.ems
            .eadd(
                &mut ctx,
                eid,
                layout::CODE_BASE.0,
                src.base().0,
                staged.len() as u64,
                0b101,
            )
            .unwrap();
        self.ems.emeas(eid).unwrap();
        eid
    }
}

#[test]
fn full_lifecycle() {
    let mut m = Machine::new(1);
    let eid = m.build_enclave(b"enclave image: lifecycle");
    assert_eq!(m.ems.enclave_count(), 1);

    let (root, entry, key) = m.with(|ems, ctx| ems.eenter(ctx, eid)).unwrap();
    assert!(root.0 > 0);
    assert_eq!(entry, layout::CODE_BASE);
    assert!(key.is_encrypted());
    m.ems.eexit(eid).unwrap();
    m.with(|ems, ctx| ems.eresume(ctx, eid)).unwrap();
    m.ems.eexit(eid).unwrap();
    m.with(|ems, ctx| ems.edestroy(ctx, eid)).unwrap();
    assert_eq!(m.ems.enclave_count(), 0);
}

#[test]
fn enclave_code_is_encrypted_and_runnable() {
    let mut m = Machine::new(2);
    let image = b"secret enclave code bytes";
    let eid = m.build_enclave(image);
    let (root, entry, _) = m.with(|ems, ctx| ems.eenter(ctx, eid)).unwrap();

    // A CS core entering the enclave can read the image back through the
    // enclave page table.
    let mut mmu = CoreMmu::new(32);
    mmu.switch_table(Some(hypertee_mem::pagetable::PageTable { root }), true);
    let mut buf = vec![0u8; image.len()];
    mmu.load(&mut m.sys, entry, &mut buf).unwrap();
    assert_eq!(&buf, image);

    // The raw physical frame holds ciphertext (cold-boot defence §II-B).
    let maps = hypertee_mem::pagetable::PageTable { root }
        .mappings(&mut m.sys.phys)
        .unwrap();
    let code_frame = maps
        .iter()
        .find(|(va, _)| *va == layout::CODE_BASE)
        .map(|(_, pte)| pte.ppn())
        .unwrap();
    let mut raw = vec![0u8; image.len()];
    m.sys.phys.read(code_frame.base(), &mut raw).unwrap();
    assert_ne!(&raw, image);
}

#[test]
fn eadd_after_emeas_rejected() {
    let mut m = Machine::new(3);
    let eid = m.build_enclave(b"img");
    let src = m.os.alloc().unwrap();
    let err = m
        .with(|ems, ctx| {
            ems.eadd(
                ctx,
                eid,
                layout::CODE_BASE.0 + 0x10000,
                src.base().0,
                4096,
                0b101,
            )
        })
        .unwrap_err();
    assert_eq!(err, EmsError::BadState);
}

#[test]
fn measurement_is_input_sensitive() {
    let mut m1 = Machine::new(4);
    let e1 = m1.build_enclave(b"image A");
    let mut m2 = Machine::new(4);
    let e2 = m2.build_enclave(b"image B");
    let q1 = m1.ems.eattest(e1, b"c").unwrap();
    let q2 = m2.ems.eattest(e2, b"c").unwrap();
    assert_ne!(q1.enclave_measurement, q2.enclave_measurement);
}

#[test]
fn ealloc_efree_roundtrip() {
    let mut m = Machine::new(5);
    let eid = m.build_enclave(b"alloc test");
    m.with(|ems, ctx| ems.eenter(ctx, eid)).unwrap();
    let (va, pages) = m.with(|ems, ctx| ems.ealloc(ctx, eid, 128 * 1024)).unwrap();
    assert_eq!(va, layout::HEAP_BASE);
    assert_eq!(pages, 32);
    // The memory is usable through the enclave address space.
    m.with(|ems, ctx| ems.eresume(ctx, eid)).unwrap_err(); // already running
    assert!(
        m.with(|ems, ctx| ems.eenter(ctx, eid)).is_err(),
        "cannot double-enter"
    );
    m.ems.eexit(eid).unwrap();
    let (root, _, _) = m.with(|ems, ctx| ems.eenter(ctx, eid)).unwrap();
    let mut mmu = CoreMmu::new(64);
    mmu.switch_table(Some(hypertee_mem::pagetable::PageTable { root }), true);
    mmu.store_u64(&mut m.sys, va, 0xfeed).unwrap();
    assert_eq!(mmu.load_u64(&mut m.sys, va).unwrap(), 0xfeed);
    // Free it back.
    m.with(|ems, ctx| ems.efree(ctx, eid, va.0, 128 * 1024))
        .unwrap();
    assert!(m.ems.pool().used_frames() > 0);
}

#[test]
fn heap_limit_enforced() {
    let mut m = Machine::new(6);
    let eid = m.build_enclave(b"limit");
    // heap_max is 8 MiB in the helper; 16 MiB must be rejected.
    let err = m
        .with(|ems, ctx| ems.ealloc(ctx, eid, 16 * 1024 * 1024))
        .unwrap_err();
    assert_eq!(err, EmsError::InvalidArgument);
}

#[test]
fn ewb_returns_randomized_clean_pages() {
    let mut m = Machine::new(7);
    let _eid = m.build_enclave(b"swap");
    let evicted = m.with(|ems, ctx| ems.ewb(ctx, 8)).unwrap();
    assert!(
        evicted.len() >= 8,
        "randomized count is at least the request"
    );
    for f in &evicted {
        // Bitmap bit cleared: page is OS-reclaimable.
        assert!(!m.sys.bitmap.is_enclave(*f, &mut m.sys.phys).unwrap());
        // Contents are keystream, not zeroes and not plaintext secrets.
        let mut buf = [0u8; 64];
        m.sys.phys.read(f.base(), &mut buf).unwrap();
        assert_ne!(
            buf, [0u8; 64],
            "swapped pages must be indistinguishable from used ones"
        );
    }
    // Two different runs evict different counts (randomized).
    let mut counts = std::collections::BTreeSet::new();
    for _ in 0..6 {
        counts.insert(m.with(|ems, ctx| ems.ewb(ctx, 8)).unwrap().len());
    }
    assert!(counts.len() > 1, "EWB count must vary: {counts:?}");
}

#[test]
fn shared_memory_full_flow() {
    let mut m = Machine::new(8);
    let sender = m.build_enclave(b"sender enclave");
    let receiver = m.build_enclave(b"receiver enclave");

    // Local attestation between the two enclaves (§V-A: ESHMAT follows
    // local attestation).
    let sender_meas = m.ems.eattest(sender, b"").unwrap().enclave_measurement;
    let report = m.ems.local_report(receiver, &sender_meas).unwrap();
    assert!(m.ems.local_verify(sender, &report).unwrap());

    // Sender creates the region and registers the receiver read-write.
    let shmid = m
        .with(|ems, ctx| ems.eshmget(ctx, sender, 64 * 1024, 0b11, false))
        .unwrap();
    m.with(|ems, ctx| ems.eshmshr(ctx, sender, shmid, receiver, 0b11))
        .unwrap();

    // Both attach.
    let (s_va, s_pages) = m
        .with(|ems, ctx| ems.eshmat(ctx, sender, shmid, sender))
        .unwrap();
    let (r_va, r_pages) = m
        .with(|ems, ctx| ems.eshmat(ctx, receiver, shmid, sender))
        .unwrap();
    assert_eq!(s_pages, 16);
    assert_eq!(r_pages, 16);

    // Plaintext-speed communication: sender writes, receiver reads, through
    // their own address spaces, no software crypto involved.
    let (s_root, _, _) = m.with(|ems, ctx| ems.eenter(ctx, sender)).unwrap();
    let mut s_mmu = CoreMmu::new(64);
    s_mmu.switch_table(
        Some(hypertee_mem::pagetable::PageTable { root: s_root }),
        true,
    );
    s_mmu.store(&mut m.sys, s_va, b"hello receiver!").unwrap();

    let (r_root, _, _) = m.with(|ems, ctx| ems.eenter(ctx, receiver)).unwrap();
    let mut r_mmu = CoreMmu::new(64);
    r_mmu.switch_table(
        Some(hypertee_mem::pagetable::PageTable { root: r_root }),
        true,
    );
    let mut buf = [0u8; 15];
    r_mmu.load(&mut m.sys, r_va, &mut buf).unwrap();
    assert_eq!(&buf, b"hello receiver!");

    // The region is ciphertext at rest.
    let shm_frame = m.ems.shm(shmid).unwrap().frames[0];
    let mut raw = [0u8; 15];
    m.sys.phys.read(shm_frame.base(), &mut raw).unwrap();
    assert_ne!(&raw, b"hello receiver!");

    // Destroy is blocked while attached, then succeeds after detach.
    assert_eq!(
        m.with(|ems, ctx| ems.eshmdes(ctx, sender, shmid))
            .unwrap_err(),
        EmsError::BadState
    );
    m.with(|ems, ctx| ems.eshmdt(ctx, sender, shmid)).unwrap();
    m.with(|ems, ctx| ems.eshmdt(ctx, receiver, shmid)).unwrap();
    m.with(|ems, ctx| ems.eshmdes(ctx, sender, shmid)).unwrap();
    assert!(m.ems.shm(shmid).is_none());
}

#[test]
fn unregistered_receiver_cannot_attach() {
    let mut m = Machine::new(9);
    let sender = m.build_enclave(b"s");
    let attacker = m.build_enclave(b"attacker");
    let shmid = m
        .with(|ems, ctx| ems.eshmget(ctx, sender, 4096, 0b11, false))
        .unwrap();
    // Brute-force ShmID guessing: attach without registration is denied.
    assert_eq!(
        m.with(|ems, ctx| ems.eshmat(ctx, attacker, shmid, sender))
            .unwrap_err(),
        EmsError::AccessDenied
    );
}

#[test]
fn readonly_receiver_cannot_write() {
    let mut m = Machine::new(10);
    let sender = m.build_enclave(b"s");
    let receiver = m.build_enclave(b"r");
    let shmid = m
        .with(|ems, ctx| ems.eshmget(ctx, sender, 4096, 0b11, false))
        .unwrap();
    m.with(|ems, ctx| ems.eshmshr(ctx, sender, shmid, receiver, 0b01))
        .unwrap(); // read-only
    let (va, _) = m
        .with(|ems, ctx| ems.eshmat(ctx, receiver, shmid, sender))
        .unwrap();
    let (root, _, _) = m.with(|ems, ctx| ems.eenter(ctx, receiver)).unwrap();
    let mut mmu = CoreMmu::new(64);
    mmu.switch_table(Some(hypertee_mem::pagetable::PageTable { root }), true);
    // Unprivileged tampering (§V-C threat 1) is stopped by the PTE perms.
    assert!(mmu.store(&mut m.sys, va, b"tamper").is_err());
    let mut probe = [0u8; 6];
    mmu.load(&mut m.sys, va, &mut probe).unwrap();
}

#[test]
fn receiver_cannot_destroy_or_overshare() {
    let mut m = Machine::new(11);
    let sender = m.build_enclave(b"s");
    let receiver = m.build_enclave(b"r");
    let third = m.build_enclave(b"t");
    let shmid = m
        .with(|ems, ctx| ems.eshmget(ctx, sender, 4096, 0b01, false))
        .unwrap();
    m.with(|ems, ctx| ems.eshmshr(ctx, sender, shmid, receiver, 0b01))
        .unwrap();
    // Malicious release (§V-C threat 2): receiver cannot destroy.
    assert_eq!(
        m.with(|ems, ctx| ems.eshmdes(ctx, receiver, shmid))
            .unwrap_err(),
        EmsError::AccessDenied
    );
    // Receiver cannot grant others access.
    assert_eq!(
        m.with(|ems, ctx| ems.eshmshr(ctx, receiver, shmid, third, 0b01))
            .unwrap_err(),
        EmsError::AccessDenied
    );
    // Max-permission cap: write grant on a read-only region is denied.
    assert_eq!(
        m.with(|ems, ctx| ems.eshmshr(ctx, sender, shmid, receiver, 0b11))
            .unwrap_err(),
        EmsError::AccessDenied
    );
}

#[test]
fn device_shared_region_and_dma_whitelist() {
    let mut m = Machine::new(12);
    let driver = m.build_enclave(b"driver enclave");
    let shmid = m
        .with(|ems, ctx| ems.eshmget(ctx, driver, 8192, 0b11, true))
        .unwrap();
    let dev = DeviceId(3);
    m.with(|ems, ctx| ems.eshm_grant_device(ctx, driver, shmid, dev, true))
        .unwrap();
    let frame = m.ems.shm(shmid).unwrap().frames[0];
    // The device can now DMA into the region…
    let ok = m.hub.dma_access(
        dev,
        &mut m.sys.phys,
        frame.base(),
        hypertee_fabric::ihub::DmaOp::Write(b"device data"),
    );
    assert!(ok);
    // …but not outside it (I/O compromise defence §V-C threat 3).
    let outside = PhysAddr(frame.base().0 + 64 * PAGE_SIZE);
    let ok = m.hub.dma_access(
        dev,
        &mut m.sys.phys,
        outside,
        hypertee_fabric::ihub::DmaOp::Write(b"evil"),
    );
    assert!(!ok);
    assert!(m.hub.dma_discarded() > 0);
}

#[test]
fn host_cannot_read_enclave_pages_via_bitmap() {
    let mut m = Machine::new(13);
    let eid = m.build_enclave(b"protected");
    let (root, _, _) = m.with(|ems, ctx| ems.eenter(ctx, eid)).unwrap();
    // Find a code frame and have the host OS map it into its own table.
    let maps = hypertee_mem::pagetable::PageTable { root }
        .mappings(&mut m.sys.phys)
        .unwrap();
    let code_frame = maps
        .iter()
        .find(|(va, _)| *va == layout::CODE_BASE)
        .map(|(_, pte)| pte.ppn())
        .unwrap();
    let host_pt = hypertee_mem::pagetable::PageTable::new(&mut m.os, &mut m.sys.phys);
    host_pt
        .map(
            VirtAddr(0x5000_0000),
            code_frame,
            Perms::RW,
            hypertee_mem::addr::KeyId::HOST,
            &mut m.os,
            &mut m.sys.phys,
        )
        .unwrap();
    let mut mmu = CoreMmu::new(32);
    mmu.switch_table(Some(host_pt), false);
    let mut buf = [0u8; 8];
    let err = mmu
        .load(&mut m.sys, VirtAddr(0x5000_0000), &mut buf)
        .unwrap_err();
    assert!(matches!(
        err,
        hypertee_mem::MemFault::BitmapViolation { .. }
    ));
}

#[test]
fn remote_attestation_sigma_flow() {
    let mut m = Machine::new(14);
    let eid = m.build_enclave(b"attested enclave");
    let expected = m.ems.eattest(eid, b"").unwrap().enclave_measurement;
    let ek = m.ems.ek_public();

    let mut user_rng = ChaChaRng::from_u64(777);
    let (initiator, msg1) = SigmaInitiator::start(&mut user_rng);
    let msg2 = m.ems.sigma_respond(eid, &msg1).unwrap();
    let session = initiator.finish(&msg2, &ek, &expected).unwrap();
    assert_ne!(session, [0u8; 32]);

    // Wrong expected measurement → rejected.
    assert_eq!(
        initiator.finish(&msg2, &ek, &[0u8; 32]).unwrap_err(),
        EmsError::AccessDenied
    );
    // Wrong EK (different platform) → rejected.
    let other_ek = hypertee_crypto::sig::Keypair::from_key_material(&[9u8; 32]).public;
    assert_eq!(
        initiator.finish(&msg2, &other_ek, &expected).unwrap_err(),
        EmsError::AccessDenied
    );
    // Tampered MAC → rejected.
    let mut bad = msg2.clone();
    bad.mac[0] ^= 1;
    assert!(initiator.finish(&bad, &ek, &expected).is_err());
}

#[test]
fn quote_serialization_roundtrip() {
    let mut m = Machine::new(15);
    let eid = m.build_enclave(b"quoted");
    let quote = m.ems.eattest(eid, b"challenge!").unwrap();
    let bytes = quote.to_bytes();
    assert_eq!(bytes.len(), 384);
    let restored = hypertee_ems::attest::Quote::from_bytes(&bytes).unwrap();
    assert_eq!(restored, quote);
    assert!(restored.verify(&m.ems.ek_public()));
}

#[test]
fn sealing_roundtrip_and_binding() {
    let mut m = Machine::new(16);
    let eid = m.build_enclave(b"sealer");
    let blob = m.ems.seal(eid, b"persistent secret").unwrap();
    assert_eq!(m.ems.unseal(eid, &blob).unwrap(), b"persistent secret");
    // Tampering is detected.
    let mut bad = blob.clone();
    let last = bad.len() - 1;
    bad[last] ^= 1;
    assert_eq!(m.ems.unseal(eid, &bad).unwrap_err(), EmsError::AccessDenied);
    // A different enclave identity cannot unseal.
    let other = m.build_enclave(b"other enclave");
    assert_eq!(
        m.ems.unseal(other, &blob).unwrap_err(),
        EmsError::AccessDenied
    );
}

#[test]
fn keyid_exhaustion_suspends_stopped_enclave() {
    let mut m = Machine::new(17);
    m.ems.set_keyid_limit(4); // KeyIDs 1..=3 available.
    let e1 = m.build_enclave(b"one");
    let e2 = m.build_enclave(b"two");
    // Park e1 so it is a suspension candidate.
    m.with(|ems, ctx| ems.eenter(ctx, e1)).unwrap();
    m.ems.eexit(e1).unwrap();
    let _ = e2;
    // Exhaust the remaining KeyID with a third enclave + one more demand.
    let e3 = m.build_enclave(b"three");
    let _ = e3;
    // All 3 KeyIDs used; creating a 4th forces a suspension of e1.
    let e4 = m.build_enclave(b"four");
    let _ = e4;
    assert!(m.ems.stats.keyid_suspensions >= 1);
    // Park e2 so resuming e1 has a suspension victim to reclaim from.
    m.with(|ems, ctx| ems.eenter(ctx, e2)).unwrap();
    m.ems.eexit(e2).unwrap();
    // e1 still resumable: its key is re-derived and re-programmed.
    let (root, _, key) = m.with(|ems, ctx| ems.eresume(ctx, e1)).unwrap();
    assert!(key.is_encrypted());
    // And its memory still decrypts (stack read through new KeyID).
    let mut mmu = CoreMmu::new(32);
    mmu.switch_table(Some(hypertee_mem::pagetable::PageTable { root }), true);
    let mut buf = [0u8; 8];
    mmu.load(&mut m.sys, layout::STACK_BASE, &mut buf).unwrap();
    assert_eq!(buf, [0u8; 8]);
}

#[test]
fn destroy_zeroes_and_reclaims() {
    let mut m = Machine::new(18);
    let eid = m.build_enclave(b"ephemeral");
    let (root, _, _) = m.with(|ems, ctx| ems.eenter(ctx, eid)).unwrap();
    let maps = hypertee_mem::pagetable::PageTable { root }
        .mappings(&mut m.sys.phys)
        .unwrap();
    let code_frame = maps
        .iter()
        .find(|(va, _)| *va == layout::CODE_BASE)
        .map(|(_, pte)| pte.ppn())
        .unwrap();
    m.ems.eexit(eid).unwrap();
    let used_before = m.ems.pool().used_frames();
    m.with(|ems, ctx| ems.edestroy(ctx, eid)).unwrap();
    assert!(m.ems.pool().used_frames() < used_before);
    // Freed frame content is zeroed (no ciphertext residue for later owners).
    let mut buf = [0xffu8; 64];
    m.sys.phys.read(code_frame.base(), &mut buf).unwrap();
    assert_eq!(buf, [0u8; 64]);
}

#[test]
fn scheduled_service_preserves_correctness() {
    use hypertee_ems::scheduler::EmsScheduler;
    use hypertee_fabric::message::{CallerIdentity, Primitive, Privilege, Request, Status};
    let mut m = Machine::new(23);
    let e1 = m.build_enclave(b"sched one");
    let e2 = m.build_enclave(b"sched two");
    // Queue a burst of interleaved EALLOCs from both enclaves.
    let mut tickets = Vec::new();
    for i in 0..6u64 {
        let eid = if i % 2 == 0 { e1 } else { e2 };
        let req = Request {
            req_id: 0,
            primitive: Primitive::Ealloc,
            caller: CallerIdentity {
                privilege: Privilege::User,
                enclave: Some(hypertee_mem::ownership::EnclaveId(eid)),
            },
            args: vec![eid, 4096 * (i + 1)],
            payload: vec![],
        };
        tickets.push(m.hub.mailbox.submit(req));
    }
    let mut sched = EmsScheduler::new(2, 5);
    let plan = m
        .with(|ems, ctx| ems.service_scheduled(ctx, &mut sched))
        .unwrap();
    assert_eq!(plan.len(), 6);
    // Every response arrived, bound to its own ticket, all successful —
    // and per-enclave heap addresses are monotone (program order held).
    let mut vas = (Vec::new(), Vec::new());
    for (i, t) in tickets.into_iter().enumerate() {
        let resp = m.hub.mailbox.poll(t).expect("response present");
        assert_eq!(resp.status, Status::Ok, "request {i}");
        if i % 2 == 0 {
            vas.0.push(resp.vals[0]);
        } else {
            vas.1.push(resp.vals[0]);
        }
    }
    assert!(
        vas.0.windows(2).all(|w| w[0] < w[1]),
        "e1 heap order {:?}",
        vas.0
    );
    assert!(
        vas.1.windows(2).all(|w| w[0] < w[1]),
        "e2 heap order {:?}",
        vas.1
    );
}

#[test]
fn pool_concealment_counters() {
    let mut m = Machine::new(19);
    let _e = m.build_enclave(b"pool test");
    let served_before = m.ems.pool().stats.pages_served;
    let events_before = m.ems.pool().stats.growth_events;
    // 64 small allocations = 64 pages served…
    for _ in 0..8 {
        let e = m.with(|ems, ctx| ems.ealloc(ctx, 1, 8 * 4096));
        e.unwrap();
    }
    let served = m.ems.pool().stats.pages_served - served_before;
    let events = m.ems.pool().stats.growth_events - events_before;
    assert!(served >= 64);
    // …but the CS OS observed at most a couple of batched growth events.
    assert!(
        events <= 2,
        "allocation events leak: {events} growths for {served} pages"
    );
}

#[test]
fn every_primitive_rejects_malformed_argument_vectors() {
    use hypertee_fabric::message::{CallerIdentity, Primitive, Request, Status};
    let mut m = Machine::new(31);
    // A caller that passes both the privilege check and the identity check
    // for its primitive, but with too many arguments: the sanity check must
    // fire for every single primitive.
    for prim in Primitive::all() {
        let caller = CallerIdentity {
            privilege: prim.required_privilege(),
            enclave: Some(hypertee_mem::ownership::EnclaveId(1)),
        };
        let req = Request {
            req_id: 0,
            primitive: prim,
            caller,
            args: vec![1; 9], // no primitive takes 9 arguments
            payload: vec![],
        };
        let resp = m.with(|ems, ctx| ems.handle(ctx, req));
        assert_eq!(
            resp.status,
            Status::InvalidArgument,
            "{prim:?} accepted garbage"
        );
    }
    assert_eq!(m.ems.stats.sanity_rejects, 16);
}

#[test]
fn quote_tampering_matrix() {
    // Flipping any field of a quote must break verification.
    let mut m = Machine::new(32);
    let eid = m.build_enclave(b"tamper matrix");
    let quote = m.ems.eattest(eid, b"challenge").unwrap();
    let ek = m.ems.ek_public();
    assert!(quote.verify(&ek));
    for field in 0..4 {
        let mut q = quote.clone();
        match field {
            0 => q.platform_measurement[0] ^= 1,
            1 => q.enclave_measurement[0] ^= 1,
            2 => q.report_data[0] ^= 1,
            _ => q.ak_salt[0] ^= 1,
        }
        assert!(!q.verify(&ek), "field {field} tamper survived verification");
    }
    // Swapping in a foreign AK public key also fails (chain is broken).
    let mut q = quote.clone();
    q.ak_pub = hypertee_crypto::sig::Keypair::from_key_material(&[3; 32]).public;
    assert!(!q.verify(&ek));
}
