//! Enclave communication management: shared enclave memory (§V).
//!
//! Covers the paper's three challenges: ① key assignment (keys derived from
//! the initial sender's EnclaveID and the EMS-assigned ShmID, with
//! registration through the *legal connection list* to stop brute-force
//! ShmID guessing), ② page sharing through the ownership table without
//! weakening isolation, and ③ access control (per-receiver permissions,
//! identity + active-connection checks on release, DMA whitelist windows
//! for peripherals).

use crate::control::EnclaveState;
use crate::error::{EmsError, EmsResult};
use crate::runtime::{Ems, EmsContext, StagedFrames};
use hypertee_fabric::dma::{DeviceId, DmaPerm, DmaWindow};
use hypertee_mem::addr::{KeyId, Ppn, VirtAddr, PAGE_SIZE};
use hypertee_mem::ownership::{EnclaveId, PageOwner, ShmId};
use hypertee_mem::pagetable::Perms;
use std::collections::BTreeMap;

/// The *shm control structure* (§V-C): everything EMS records about one
/// shared region.
#[derive(Debug)]
pub struct ShmControl {
    /// EMS-assigned identifier.
    pub id: ShmId,
    /// The initial sender (creator); the only identity allowed to destroy
    /// the region or change permissions.
    pub creator: EnclaveId,
    /// Physical frames of the region.
    pub frames: Vec<Ppn>,
    /// Region size in bytes as requested.
    pub bytes: u64,
    /// The dedicated encryption KeyID (KeyID 0 for device-shared plaintext
    /// regions protected by bitmap + whitelist instead).
    pub key: KeyId,
    /// Maximum permission any receiver may be granted.
    pub max_perm: Perms,
    /// The legal connection list: enclaveID → granted permission.
    pub legal: BTreeMap<u64, Perms>,
    /// Currently attached enclaves and their mapping base VA.
    pub attached: BTreeMap<u64, VirtAddr>,
    /// Active connection count (gates ESHMDES).
    pub active_connections: u64,
}

impl Ems {
    /// ESHMGET: creates a shared region of `bytes`, owned by `creator`.
    /// `max_perm_bits` bounds what receivers may ever be granted
    /// (bit 0 = R, bit 1 = W). `device_shared` selects a plaintext region
    /// for enclave↔peripheral communication (protected by the bitmap and
    /// the DMA whitelist; devices cannot decrypt MKTME traffic).
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for zero/oversized regions, `Exhausted` when
    /// frames or KeyIDs run out.
    pub fn eshmget(
        &mut self,
        ctx: &mut EmsContext<'_>,
        creator: u64,
        bytes: u64,
        max_perm_bits: u8,
        device_shared: bool,
    ) -> EmsResult<u64> {
        self.enclave(creator)?;
        if bytes == 0 || bytes > 64 * 1024 * 1024 {
            return Err(EmsError::InvalidArgument);
        }
        let pages = bytes.div_ceil(PAGE_SIZE);
        let shmid = ShmId(self.fresh_shmid());
        // Key assignment: derived from the initial sender's EnclaveID and
        // the ShmID (§V-A), programmed straight into the engine via iHub.
        let key = if device_shared {
            KeyId::HOST
        } else {
            let key = self.alloc_keyid(ctx)?;
            let (aes, mac) = self.vault.shm_keys(creator, shmid.0);
            ctx.hub
                .ems_program_key(&self.cap, &mut ctx.sys.engine, key, &aes, &mac);
            key
        };
        let mut frames = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            let frame = self.pool.take(ctx.os_frames, ctx.sys)?;
            self.ownership
                .claim(frame, PageOwner::Shared(shmid))
                .map_err(|_| EmsError::AccessDenied)?;
            // Initialise through the region key so integrity MACs exist.
            let sys = &mut *ctx.sys;
            sys.engine
                .write(&mut sys.phys, frame.base(), key, &[0u8; PAGE_SIZE as usize])?;
            frames.push(frame);
        }
        let max_perm = Ems::decode_perms(max_perm_bits & 0b011);
        let mut legal = BTreeMap::new();
        legal.insert(creator, max_perm);
        self.shms.insert(
            shmid.0,
            ShmControl {
                id: shmid,
                creator: EnclaveId(creator),
                frames,
                bytes,
                key,
                max_perm,
                legal,
                attached: BTreeMap::new(),
                active_connections: 0,
            },
        );
        Ok(shmid.0)
    }

    /// ESHMSHR: the creator registers (or updates) a receiver on the legal
    /// connection list with permission `perm_bits` ≤ the region maximum.
    /// Registration-before-attach is the §V-A defence against brute-force
    /// ShmID guessing. If the receiver is already attached, its page-table
    /// permissions are updated in place (§V-C permission management).
    ///
    /// # Errors
    ///
    /// `AccessDenied` unless called by the creator or when `perm` exceeds
    /// the maximum; `NotFound` for unknown regions/enclaves.
    pub fn eshmshr(
        &mut self,
        ctx: &mut EmsContext<'_>,
        sender: u64,
        shmid: u64,
        receiver: u64,
        perm_bits: u8,
    ) -> EmsResult<()> {
        self.enclave(receiver)?;
        let receiver_table = self.enclave(receiver)?.page_table;
        let shm = self.shms.get_mut(&shmid).ok_or(EmsError::NotFound)?;
        if shm.creator != EnclaveId(sender) {
            return Err(EmsError::AccessDenied);
        }
        let perm = Ems::decode_perms(perm_bits & 0b011);
        if (perm.w && !shm.max_perm.w) || (perm.r && !shm.max_perm.r) {
            return Err(EmsError::AccessDenied);
        }
        shm.legal.insert(receiver, perm);
        // Propagate to live mappings.
        if let Some(&base) = shm.attached.get(&receiver) {
            for i in 0..shm.frames.len() as u64 {
                receiver_table.protect(
                    VirtAddr(base.0 + i * PAGE_SIZE),
                    perm,
                    &mut ctx.sys.phys,
                )?;
            }
        }
        Ok(())
    }

    /// ESHMAT: attaches a registered enclave to a shared region. The caller
    /// supplies the initial sender's EnclaveID alongside the ShmID (the two
    /// identifiers exchanged during local attestation, §V-A); both must
    /// match EMS records.
    ///
    /// # Errors
    ///
    /// `AccessDenied` for unregistered receivers or a wrong sender ID;
    /// `BadState` when already attached.
    pub fn eshmat(
        &mut self,
        ctx: &mut EmsContext<'_>,
        eid: u64,
        shmid: u64,
        sender: u64,
    ) -> EmsResult<(VirtAddr, u64)> {
        let enclave = self.enclave(eid)?;
        if enclave.state == EnclaveState::Suspended {
            return Err(EmsError::BadState);
        }
        let table = enclave.page_table;
        let base = enclave.shm_cursor;
        let (frames, key, perm) = {
            let shm = self.shms.get(&shmid).ok_or(EmsError::NotFound)?;
            if shm.creator != EnclaveId(sender) {
                return Err(EmsError::AccessDenied);
            }
            let perm = *shm.legal.get(&eid).ok_or(EmsError::AccessDenied)?;
            if shm.attached.contains_key(&eid) {
                return Err(EmsError::BadState);
            }
            (shm.frames.clone(), shm.key, perm)
        };
        let pages = frames.len() as u64;
        let mut staged = StagedFrames::stage(2 + pages.div_ceil(512), &mut self.pool, ctx)?;
        for (i, frame) in frames.iter().enumerate() {
            table.map(
                VirtAddr(base.0 + i as u64 * PAGE_SIZE),
                *frame,
                perm,
                key,
                &mut staged,
                &mut ctx.sys.phys,
            )?;
        }
        let pt_frames = staged.unstage(&mut self.pool, ctx);
        for f in &pt_frames {
            self.ownership
                .claim(*f, PageOwner::EmsPrivate)
                .map_err(|_| EmsError::AccessDenied)?;
        }
        let enclave = self.enclave_mut(eid)?;
        enclave.pt_frames.extend(pt_frames);
        enclave.shm_cursor = VirtAddr(base.0 + pages * PAGE_SIZE);
        let shm = self.shms.get_mut(&shmid).expect("checked above");
        shm.attached.insert(eid, base);
        shm.active_connections += 1;
        Ok((base, pages))
    }

    /// ESHMDT: detaches an enclave from a region, unmapping its pages and
    /// decrementing the active-connection count.
    ///
    /// # Errors
    ///
    /// `NotFound` when the enclave is not attached.
    pub fn eshmdt(&mut self, ctx: &mut EmsContext<'_>, eid: u64, shmid: u64) -> EmsResult<()> {
        let table = self.enclave(eid)?.page_table;
        let shm = self.shms.get_mut(&shmid).ok_or(EmsError::NotFound)?;
        let base = shm.attached.remove(&eid).ok_or(EmsError::NotFound)?;
        shm.active_connections = shm.active_connections.saturating_sub(1);
        let pages = shm.frames.len() as u64;
        for i in 0..pages {
            table.unmap(VirtAddr(base.0 + i * PAGE_SIZE), &mut ctx.sys.phys)?;
        }
        Ok(())
    }

    /// ESHMDES: destroys a region. Only the *initial sender* may do so, and
    /// only when no active connections remain (§V-C, "Identity and active
    /// connection check to prevent malicious release").
    ///
    /// # Errors
    ///
    /// `AccessDenied` for non-creators, `BadState` while attached.
    pub fn eshmdes(&mut self, ctx: &mut EmsContext<'_>, eid: u64, shmid: u64) -> EmsResult<()> {
        {
            let shm = self.shms.get(&shmid).ok_or(EmsError::NotFound)?;
            if shm.creator != EnclaveId(eid) {
                return Err(EmsError::AccessDenied);
            }
            if shm.active_connections > 0 {
                return Err(EmsError::BadState);
            }
        }
        self.destroy_shm_internal(ctx, shmid)
    }

    pub(crate) fn destroy_shm_internal(
        &mut self,
        ctx: &mut EmsContext<'_>,
        shmid: u64,
    ) -> EmsResult<()> {
        let shm = self.shms.remove(&shmid).ok_or(EmsError::NotFound)?;
        for frame in shm.frames {
            self.ownership
                .release(frame, PageOwner::Shared(shm.id))
                .map_err(|_| EmsError::AccessDenied)?;
            self.pool.give_back(frame, ctx.sys)?;
        }
        if shm.key.is_encrypted() {
            ctx.hub
                .ems_revoke_key(&self.cap, &mut ctx.sys.engine, shm.key);
            self.free_keyid(shm.key);
        }
        Ok(())
    }

    /// Grants a peripheral DMA access to a *device-shared* region
    /// (enclave↔peripheral communication, §V-B). Only the driver enclave —
    /// which must be on the region's legal connection list — may configure
    /// this, and the whitelist windows cover exactly the region's frames.
    ///
    /// # Errors
    ///
    /// `AccessDenied` for non-participants or encrypted regions (a device
    /// cannot decrypt MKTME traffic — create the region with
    /// `device_shared`), `NotFound` for unknown regions.
    pub fn eshm_grant_device(
        &mut self,
        ctx: &mut EmsContext<'_>,
        driver: u64,
        shmid: u64,
        dev: DeviceId,
        writeable: bool,
    ) -> EmsResult<()> {
        let shm = self.shms.get(&shmid).ok_or(EmsError::NotFound)?;
        if !shm.legal.contains_key(&driver) {
            return Err(EmsError::AccessDenied);
        }
        if shm.key.is_encrypted() {
            return Err(EmsError::AccessDenied);
        }
        let perm = if writeable {
            DmaPerm::ReadWrite
        } else {
            DmaPerm::ReadOnly
        };
        for frame in &shm.frames {
            ctx.hub.ems_grant_dma(
                &self.cap,
                dev,
                DmaWindow {
                    base: frame.base(),
                    size: PAGE_SIZE,
                    perm,
                },
            );
        }
        Ok(())
    }

    /// Revokes all DMA windows of a device (driver teardown).
    pub fn eshm_revoke_device(&mut self, ctx: &mut EmsContext<'_>, dev: DeviceId) {
        ctx.hub.ems_revoke_dma(&self.cap, dev);
    }

    /// Attaches an *IOMMU-translated* device (e.g. a GPU, §IX) to a
    /// device-shared region: EMS installs one IOMMU mapping per frame at
    /// consecutive I/O virtual pages starting at `iova_base`, and returns
    /// the number of pages mapped. The device then addresses the region
    /// through I/O virtual addresses; everything outside faults in the
    /// IOMMU.
    ///
    /// # Errors
    ///
    /// Same access rules as [`Ems::eshm_grant_device`].
    pub fn eshm_attach_iommu_device(
        &mut self,
        ctx: &mut EmsContext<'_>,
        driver: u64,
        shmid: u64,
        dev: DeviceId,
        iova_base: hypertee_fabric::iommu::IoVpn,
        writeable: bool,
    ) -> EmsResult<u64> {
        let shm = self.shms.get(&shmid).ok_or(EmsError::NotFound)?;
        if !shm.legal.contains_key(&driver) {
            return Err(EmsError::AccessDenied);
        }
        if shm.key.is_encrypted() {
            return Err(EmsError::AccessDenied);
        }
        let perm = if writeable {
            DmaPerm::ReadWrite
        } else {
            DmaPerm::ReadOnly
        };
        for (i, frame) in shm.frames.iter().enumerate() {
            ctx.hub.ems_iommu_map(
                &self.cap,
                dev,
                hypertee_fabric::iommu::IoVpn(iova_base.0 + i as u64),
                hypertee_fabric::iommu::IommuEntry { ppn: *frame, perm },
            );
        }
        Ok(shm.frames.len() as u64)
    }

    /// Detaches an IOMMU device entirely (all its mappings + IOTLB state).
    pub fn eshm_detach_iommu_device(&mut self, ctx: &mut EmsContext<'_>, dev: DeviceId) {
        ctx.hub.ems_iommu_detach(&self.cap, dev);
    }

    /// Read access to a region's control data for tests and the SDK layer.
    pub fn shm(&self, shmid: u64) -> Option<&ShmControl> {
        self.shms.get(&shmid)
    }
}
