//! Multi-core EMS request scheduling (§III-C).
//!
//! "As multiple requests may be invoked concurrently, EMS creates multiple
//! threads to perform the management tasks… Different enclave primitives
//! sent to EMS are scheduled randomly… they are handled concurrently across
//! multiple cores, stripping attackers of any influence over the execution
//! order or timing."
//!
//! [`EmsScheduler`] realises that policy deterministically (the simulator
//! must replay): requests keep their per-enclave program order, the
//! interleaving *across* enclaves is randomized per batch, and work spreads
//! evenly over the EMS cores. The timing consequences are studied in
//! `hypertee-sim::queueing` (Fig. 6); this module provides the functional
//! ordering discipline and its security property (an attacker cannot steer
//! where or when a victim's primitive runs).

use crate::error::EmsResult;
use crate::runtime::{Ems, EmsContext};
use hypertee_crypto::chacha::ChaChaRng;
use hypertee_fabric::message::{Primitive, Request, Response};
use hypertee_faults::FaultKind;
use hypertee_mem::ownership::EnclaveId;

/// Where and in which order one request of a batch executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Index of the request in the submitted batch.
    pub request_index: usize,
    /// EMS core chosen.
    pub core: u32,
    /// Execution slot on that core (0 = first).
    pub slot: u64,
}

/// The batch scheduler.
#[derive(Debug)]
pub struct EmsScheduler {
    cores: u32,
    rng: ChaChaRng,
}

impl EmsScheduler {
    /// A scheduler for `cores` EMS cores, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics on zero cores.
    pub fn new(cores: u32, seed: u64) -> EmsScheduler {
        assert!(cores > 0, "EMS needs at least one core");
        EmsScheduler {
            cores,
            rng: ChaChaRng::from_u64(seed),
        }
    }

    /// Plans one batch. `callers[i]` is the enclave identity stamped on
    /// request `i` (`None` for OS requests). Guarantees:
    ///
    /// * requests of the same caller keep their relative order;
    /// * the interleaving across callers is randomized;
    /// * per-core load is balanced to within one request.
    pub fn plan(&mut self, callers: &[Option<EnclaveId>]) -> Vec<Assignment> {
        // Group request indices per caller, preserving order.
        let mut groups: Vec<(Option<EnclaveId>, Vec<usize>)> = Vec::new();
        for (i, caller) in callers.iter().enumerate() {
            match groups.iter_mut().find(|(c, _)| c == caller) {
                Some((_, v)) => v.push(i),
                None => groups.push((*caller, vec![i])),
            }
        }
        // Random merge: repeatedly pick a random nonempty group and take its
        // next request — order within a group survives, order across groups
        // is attacker-uncontrollable.
        let mut cursors = vec![0usize; groups.len()];
        let mut merged = Vec::with_capacity(callers.len());
        let mut remaining = callers.len();
        while remaining > 0 {
            let live: Vec<usize> = groups
                .iter()
                .enumerate()
                .filter(|(g, (_, v))| cursors[*g] < v.len())
                .map(|(g, _)| g)
                .collect();
            let pick = live[self.rng.gen_range(live.len() as u64) as usize];
            merged.push(groups[pick].1[cursors[pick]]);
            cursors[pick] += 1;
            remaining -= 1;
        }
        // Least-loaded core assignment.
        let mut load = vec![0u64; self.cores as usize];
        merged
            .into_iter()
            .map(|request_index| {
                let core = load
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| **l)
                    .map(|(c, _)| c)
                    .expect("at least one core");
                let slot = load[core];
                load[core] += 1;
                Assignment {
                    request_index,
                    core: core as u32,
                    slot,
                }
            })
            .collect()
    }
}

/// One request serviced in a scheduled round (observability for the
/// machine's pipeline: where the request ran and what it answered).
#[derive(Debug, Clone)]
pub struct ServiceRecord {
    /// Index of the request in this round's batch.
    pub request_index: usize,
    /// The serviced request's identification.
    pub req_id: u64,
    /// The primitive executed.
    pub primitive: Primitive,
    /// The caller's enclave identity (None for OS requests).
    pub caller: Option<EnclaveId>,
    /// EMS core the scheduler placed the request on.
    pub core: u32,
    /// Execution slot on that core.
    pub slot: u64,
    /// The response pushed back through the mailbox (a copy: the live one
    /// crosses the fabric and may be dropped/corrupted by injected faults).
    pub response: Response,
}

/// A planned-but-not-yet-executed scheduling round: the batch popped from
/// the Rx ring plus the randomized core/slot plan for it.
///
/// The plan/execute split is what lets a sharded machine run EMS rounds in
/// parallel: each shard's [`Ems::plan_round`] draws from that shard's own
/// scheduler stream (all the randomness of the round happens here), and the
/// resulting `RoundPlan`s can then be serviced by [`Ems::execute_plan`] on
/// worker threads without any further draws — so execution timing cannot
/// perturb any random stream. [`Ems::service_round`] composes the two
/// back-to-back and remains the single-threaded reference behavior.
#[derive(Debug, Clone, Default)]
pub struct RoundPlan {
    batch: Vec<Request>,
    plan: Vec<Assignment>,
}

impl RoundPlan {
    /// Whether the round has nothing to execute (crashed, stalled, or no
    /// pending requests).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Requests in the round's batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// The core/slot assignments, in execution (merged) order.
    #[must_use]
    pub fn assignments(&self) -> &[Assignment] {
        &self.plan
    }
}

impl Ems {
    /// The *plan* half of a scheduling round: rolls the round's fault
    /// injections (an injected firmware crash warm-restarts and loses the
    /// round; a core stall skips it; a ring stall wedges one pop), stages
    /// pending mailbox requests into the Rx task queue, pops up to
    /// `max_requests` as this round's batch, and plans the batch across the
    /// cores. Every random draw of the round happens here.
    pub fn plan_round(
        &mut self,
        ctx: &mut EmsContext<'_>,
        scheduler: &mut EmsScheduler,
        max_requests: usize,
    ) -> RoundPlan {
        if max_requests == 0 {
            return RoundPlan::default();
        }
        // An injected firmware crash loses the round and all volatile state.
        if self.injector.roll(FaultKind::EmsCrash) {
            self.crash_restart();
            return RoundPlan::default();
        }
        if self.injector.roll(FaultKind::EmsStall) {
            return RoundPlan::default();
        }
        loop {
            if self.rx.is_full() {
                break;
            }
            let Some(req) = ctx.hub.ems_fetch_request(&self.cap) else {
                break;
            };
            let _ = self.rx.push(req); // cannot fail: checked not-full above
        }
        if self.injector.roll(FaultKind::RingStall) {
            self.rx.stall(1);
        }
        let mut batch = Vec::new();
        while batch.len() < max_requests {
            let Some(req) = self.rx.pop() else { break };
            batch.push(req);
        }
        let callers: Vec<Option<EnclaveId>> = batch.iter().map(|r| r.caller.enclave).collect();
        let plan = scheduler.plan(&callers);
        RoundPlan { batch, plan }
    }

    /// The *service* half of a scheduling round: executes a [`RoundPlan`]
    /// in plan order (slot-major per the merged sequence) and pushes the
    /// responses back through the mailbox. Draws no randomness.
    pub fn execute_plan(
        &mut self,
        ctx: &mut EmsContext<'_>,
        round: RoundPlan,
    ) -> Vec<ServiceRecord> {
        let RoundPlan { batch, plan } = round;
        let mut records = Vec::with_capacity(plan.len());
        for a in &plan {
            let req = batch[a.request_index].clone();
            let (req_id, primitive, caller) = (req.req_id, req.primitive, req.caller.enclave);
            let response = self.handle(ctx, req);
            records.push(ServiceRecord {
                request_index: a.request_index,
                req_id,
                primitive,
                caller,
                core: a.core,
                slot: a.slot,
                response,
            });
        }
        for r in &records {
            ctx.hub.ems_push_response(&self.cap, r.response.clone());
        }
        records
    }

    /// One scheduling round of the multi-core EMS: stages pending mailbox
    /// requests into the Rx task queue, pops up to `max_requests` of them
    /// as this round's batch, plans the batch across the cores, executes in
    /// plan order, and pushes the responses. Injected EMS crashes and
    /// EMS/ring stalls apply exactly as in [`Ems::service`]: a crash
    /// warm-restarts the firmware and loses the round, a core stall skips
    /// the round, a ring stall wedges one pop. Anything not drained stays
    /// queued for the next round.
    ///
    /// Exactly [`Ems::plan_round`] followed by [`Ems::execute_plan`].
    pub fn service_round(
        &mut self,
        ctx: &mut EmsContext<'_>,
        scheduler: &mut EmsScheduler,
        max_requests: usize,
    ) -> Vec<ServiceRecord> {
        let round = self.plan_round(ctx, scheduler, max_requests);
        self.execute_plan(ctx, round)
    }

    /// Drains the mailbox in scheduler order: fetches every pending request
    /// (up to the Rx ring capacity), plans the batch, executes in the
    /// randomized plan order, and responds. Returns the plan (for
    /// observability/tests). Thin wrapper over [`Ems::service_round`] with
    /// an unbounded per-round batch.
    pub fn service_scheduled(
        &mut self,
        ctx: &mut EmsContext<'_>,
        scheduler: &mut EmsScheduler,
    ) -> EmsResult<Vec<Assignment>> {
        let records = self.service_round(ctx, scheduler, usize::MAX);
        Ok(records
            .iter()
            .map(|r| Assignment {
                request_index: r.request_index,
                core: r.core,
                slot: r.slot,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn callers(spec: &[u64]) -> Vec<Option<EnclaveId>> {
        spec.iter()
            .map(|&e| if e == 0 { None } else { Some(EnclaveId(e)) })
            .collect()
    }

    #[test]
    fn per_caller_order_is_preserved() {
        let mut sched = EmsScheduler::new(2, 7);
        let batch = callers(&[1, 2, 1, 2, 1, 3, 3, 2]);
        let plan = sched.plan(&batch);
        // Execution order is the order assignments were produced; verify by
        // position in `plan`.
        let position_of = |idx: usize| plan.iter().position(|a| a.request_index == idx).unwrap();
        // Enclave 1's requests are indices 0, 2, 4 — must appear in order.
        assert!(position_of(0) < position_of(2));
        assert!(position_of(2) < position_of(4));
        // Enclave 2's: 1, 3, 7.
        assert!(position_of(1) < position_of(3));
        assert!(position_of(3) < position_of(7));
    }

    #[test]
    fn cross_caller_interleaving_varies() {
        let batch = callers(&[1, 2, 1, 2, 1, 2, 1, 2]);
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..8u64 {
            let mut sched = EmsScheduler::new(2, seed);
            let plan = sched.plan(&batch);
            let sequence: Vec<usize> = plan.iter().map(|a| a.request_index).collect();
            seen.insert(sequence);
        }
        assert!(
            seen.len() > 2,
            "interleavings must vary across seeds: {}",
            seen.len()
        );
    }

    #[test]
    fn load_is_balanced() {
        let mut sched = EmsScheduler::new(3, 1);
        let batch = callers(&[1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6]);
        let plan = sched.plan(&batch);
        let mut load = [0u64; 3];
        for a in &plan {
            load[a.core as usize] += 1;
        }
        let max = *load.iter().max().unwrap();
        let min = *load.iter().min().unwrap();
        assert!(max - min <= 1, "load {load:?}");
    }

    #[test]
    fn slots_are_dense_per_core() {
        let mut sched = EmsScheduler::new(2, 9);
        let plan = sched.plan(&callers(&[1, 2, 3, 4, 5, 6]));
        for core in 0..2u32 {
            let mut slots: Vec<u64> = plan
                .iter()
                .filter(|a| a.core == core)
                .map(|a| a.slot)
                .collect();
            slots.sort_unstable();
            for (i, s) in slots.iter().enumerate() {
                assert_eq!(*s, i as u64);
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut sched = EmsScheduler::new(4, 3);
        assert!(sched.plan(&[]).is_empty());
    }
}
