//! Enclave control structures, kept in EMS private memory.

use hypertee_crypto::sha256::Sha256;
use hypertee_mem::addr::{KeyId, Ppn, VirtAddr};
use hypertee_mem::ownership::EnclaveId;
use hypertee_mem::pagetable::PageTable;

/// Life-cycle state of an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnclaveState {
    /// Created; pages may still be added (EADD).
    Building,
    /// Measurement finalised (EMEAS); ready to enter.
    Measured,
    /// Currently executing on a CS core.
    Running,
    /// Exited/interrupted but resumable.
    Stopped,
    /// KeyID released to relieve exhaustion; must be resumed by EMS.
    Suspended,
}

/// Virtual-address layout constants of the enclave address space.
pub mod layout {
    use hypertee_mem::addr::VirtAddr;

    /// Base of the code/data image region (EADD destination).
    pub const CODE_BASE: VirtAddr = VirtAddr(0x1000_0000);
    /// Base of the stack region (grows upward in the model).
    pub const STACK_BASE: VirtAddr = VirtAddr(0x1800_0000);
    /// Base of the heap region (EALLOC mappings).
    pub const HEAP_BASE: VirtAddr = VirtAddr(0x2000_0000);
    /// Base of the HostApp↔enclave shared window.
    pub const HOST_SHARED_BASE: VirtAddr = VirtAddr(0x3000_0000);
    /// Base of the enclave↔enclave shared-memory attach area.
    pub const SHM_BASE: VirtAddr = VirtAddr(0x4000_0000);
}

/// Resource declaration from the enclave configuration file (§III-B:
/// "a configuration file is needed to declare the resource requirements of
/// the enclave, including heap and stack memory sizes, etc.").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnclaveConfig {
    /// Maximum heap size in bytes.
    pub heap_max: u64,
    /// Stack size in bytes (statically allocated at creation).
    pub stack_bytes: u64,
    /// HostApp↔enclave shared window size in bytes.
    pub host_shared_bytes: u64,
}

impl Default for EnclaveConfig {
    fn default() -> Self {
        EnclaveConfig {
            heap_max: 32 * 1024 * 1024,
            stack_bytes: 64 * 1024,
            host_shared_bytes: 64 * 1024,
        }
    }
}

/// Incremental measurement state (SHA-256 chain over ECREATE config and
/// every EADD chunk, finalised by EMEAS).
#[derive(Debug, Clone)]
pub enum Measurement {
    /// Still accumulating.
    InProgress(Sha256),
    /// Finalised digest.
    Final([u8; 32]),
}

impl Measurement {
    /// Finalised digest, if available.
    pub fn digest(&self) -> Option<[u8; 32]> {
        match self {
            Measurement::Final(d) => Some(*d),
            Measurement::InProgress(_) => None,
        }
    }
}

/// The per-enclave control structure.
#[derive(Debug)]
pub struct EnclaveControl {
    /// Unique enclave identifier.
    pub id: EnclaveId,
    /// Life-cycle state.
    pub state: EnclaveState,
    /// The dedicated enclave page table (§IV-A).
    pub page_table: PageTable,
    /// Frames holding the page table itself (enclave memory, EMS-owned).
    pub pt_frames: Vec<Ppn>,
    /// Memory-encryption KeyID (`None` while suspended).
    pub key: Option<KeyId>,
    /// The KeyID held before suspension (identifies which PTEs to rewrite
    /// on resume; shared-memory PTEs keep their own KeyIDs).
    pub prev_key: Option<KeyId>,
    /// Key-derivation nonce (lets EMS re-program the key after suspension).
    pub key_nonce: [u8; 32],
    /// Measurement state.
    pub measurement: Measurement,
    /// Resource configuration.
    pub config: EnclaveConfig,
    /// Entry point recorded at first EADD.
    pub entry: VirtAddr,
    /// Next free heap VA (bump allocation for EALLOC).
    pub heap_cursor: VirtAddr,
    /// Next free shm-attach VA.
    pub shm_cursor: VirtAddr,
    /// Private data pages (code + stack + heap), for destroy-time reclaim.
    pub data_frames: Vec<Ppn>,
    /// Context-switch count (timing input: each costs a TLB flush).
    pub switches: u64,
}

impl EnclaveControl {
    /// Creates a fresh control structure in the `Building` state.
    pub fn new(
        id: EnclaveId,
        page_table: PageTable,
        pt_frames: Vec<Ppn>,
        key: KeyId,
        key_nonce: [u8; 32],
        config: EnclaveConfig,
    ) -> Self {
        let mut hasher = Sha256::new();
        hasher.update(b"hypertee-ecreate");
        hasher.update(&config.heap_max.to_le_bytes());
        hasher.update(&config.stack_bytes.to_le_bytes());
        hasher.update(&config.host_shared_bytes.to_le_bytes());
        EnclaveControl {
            id,
            state: EnclaveState::Building,
            page_table,
            pt_frames,
            key: Some(key),
            prev_key: None,
            key_nonce,
            measurement: Measurement::InProgress(hasher),
            config,
            entry: layout::CODE_BASE,
            heap_cursor: layout::HEAP_BASE,
            shm_cursor: layout::SHM_BASE,
            data_frames: Vec::new(),
            switches: 0,
        }
    }

    /// Extends the measurement with an EADD chunk (va, perms byte, data).
    ///
    /// # Panics
    ///
    /// Panics if the measurement was already finalised (callers must check
    /// state first; this is an internal invariant).
    pub fn extend_measurement(&mut self, va: VirtAddr, perm_bits: u8, data: &[u8]) {
        match &mut self.measurement {
            Measurement::InProgress(h) => {
                h.update(b"hypertee-eadd");
                h.update(&va.0.to_le_bytes());
                h.update(&[perm_bits]);
                h.update(&(data.len() as u64).to_le_bytes());
                h.update(data);
            }
            Measurement::Final(_) => panic!("measurement already finalised"),
        }
    }

    /// Finalises the measurement (EMEAS).
    pub fn finalize_measurement(&mut self) -> [u8; 32] {
        match &self.measurement {
            Measurement::InProgress(h) => {
                let digest = h.clone().finalize();
                self.measurement = Measurement::Final(digest);
                digest
            }
            Measurement::Final(d) => *d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn control() -> EnclaveControl {
        EnclaveControl::new(
            EnclaveId(1),
            PageTable { root: Ppn(100) },
            vec![Ppn(100)],
            KeyId(1),
            [7; 32],
            EnclaveConfig::default(),
        )
    }

    #[test]
    fn measurement_covers_config() {
        let mut a = control();
        let mut b = EnclaveControl::new(
            EnclaveId(2),
            PageTable { root: Ppn(200) },
            vec![Ppn(200)],
            KeyId(2),
            [7; 32],
            EnclaveConfig {
                heap_max: 1,
                ..EnclaveConfig::default()
            },
        );
        assert_ne!(a.finalize_measurement(), b.finalize_measurement());
    }

    #[test]
    fn measurement_covers_content_and_layout() {
        let mut a = control();
        let mut b = control();
        a.extend_measurement(VirtAddr(0x1000_0000), 0b101, b"code");
        b.extend_measurement(VirtAddr(0x1000_1000), 0b101, b"code");
        assert_ne!(
            a.finalize_measurement(),
            b.finalize_measurement(),
            "va is measured"
        );
        let mut c = control();
        let mut d = control();
        c.extend_measurement(VirtAddr(0x1000_0000), 0b101, b"code");
        d.extend_measurement(VirtAddr(0x1000_0000), 0b111, b"code");
        assert_ne!(
            c.finalize_measurement(),
            d.finalize_measurement(),
            "perms are measured"
        );
    }

    #[test]
    fn identical_builds_measure_identically() {
        let mut a = control();
        let mut b = control();
        for ctl in [&mut a, &mut b] {
            ctl.extend_measurement(VirtAddr(0x1000_0000), 0b101, b"the enclave image");
        }
        assert_eq!(a.finalize_measurement(), b.finalize_measurement());
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut c = control();
        let d1 = c.finalize_measurement();
        let d2 = c.finalize_measurement();
        assert_eq!(d1, d2);
        assert_eq!(c.measurement.digest(), Some(d1));
    }

    #[test]
    #[should_panic(expected = "already finalised")]
    fn extend_after_finalize_panics() {
        let mut c = control();
        c.finalize_measurement();
        c.extend_measurement(VirtAddr(0x1000_0000), 0, b"late");
    }

    #[test]
    fn layout_regions_are_disjoint_and_ordered() {
        assert!(layout::CODE_BASE < layout::STACK_BASE);
        assert!(layout::STACK_BASE < layout::HEAP_BASE);
        assert!(layout::HEAP_BASE < layout::HOST_SHARED_BASE);
        assert!(layout::HOST_SHARED_BASE < layout::SHM_BASE);
    }
}
