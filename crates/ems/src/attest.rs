//! Measurement, attestation, and sealing (§VI).
//!
//! * **EATTEST / quotes** — EMS signs the platform measurement with the EK
//!   and the enclave measurement with the AK, producing a [`Quote`] a remote
//!   verifier can check against the manufacturer's EK.
//! * **Remote attestation** — the SIGMA-style flow (§VI): ECDH key
//!   negotiation, certificates over the transcript, MAC binding.
//! * **Local attestation** — report-key MACs derived from the challenger's
//!   measurement and SK.
//! * **Data sealing** — encrypt-then-MAC under the measurement-bound
//!   sealing key.

use crate::error::{EmsError, EmsResult};
use crate::runtime::Ems;
use hypertee_crypto::aes::{ctr_iv, Aes128};
use hypertee_crypto::chacha::ChaChaRng;
use hypertee_crypto::ecdh::{EcdhPrivate, EcdhPublic};
use hypertee_crypto::hmac::hmac_sha256;
use hypertee_crypto::sha256::sha256;
use hypertee_crypto::sig::{PublicKey, Signature};
use hypertee_crypto::util::ct_eq;

/// An attestation quote: the evidence package EATTEST returns.
#[derive(Debug, Clone, PartialEq)]
pub struct Quote {
    /// Platform (software TCB) measurement from secure boot.
    pub platform_measurement: [u8; 32],
    /// Enclave measurement (EMEAS digest).
    pub enclave_measurement: [u8; 32],
    /// Hash of caller-supplied challenge data (freshness / binding).
    pub report_data: [u8; 32],
    /// Salt used to derive the AK from SK.
    pub ak_salt: [u8; 32],
    /// The attestation public key.
    pub ak_pub: PublicKey,
    /// EK signature over (ak_pub ‖ ak_salt ‖ platform_measurement):
    /// the platform certificate chaining the AK to the EK.
    pub platform_sig: Signature,
    /// AK signature over (enclave_measurement ‖ report_data ‖
    /// platform_measurement): the enclave certificate.
    pub enclave_sig: Signature,
}

impl Quote {
    fn platform_msg(ak_pub: &PublicKey, ak_salt: &[u8; 32], pm: &[u8; 32]) -> Vec<u8> {
        let mut m = Vec::with_capacity(128);
        m.extend_from_slice(&ak_pub.to_bytes());
        m.extend_from_slice(ak_salt);
        m.extend_from_slice(pm);
        m
    }

    fn enclave_msg(em: &[u8; 32], rd: &[u8; 32], pm: &[u8; 32]) -> Vec<u8> {
        let mut m = Vec::with_capacity(96);
        m.extend_from_slice(em);
        m.extend_from_slice(rd);
        m.extend_from_slice(pm);
        m
    }

    /// Verifies the full chain against a trusted EK public key, returning
    /// `true` only if both certificates check out.
    pub fn verify(&self, trusted_ek: &PublicKey) -> bool {
        let pm = Self::platform_msg(&self.ak_pub, &self.ak_salt, &self.platform_measurement);
        if !trusted_ek.verify(&pm, &self.platform_sig) {
            return false;
        }
        let em = Self::enclave_msg(
            &self.enclave_measurement,
            &self.report_data,
            &self.platform_measurement,
        );
        self.ak_pub.verify(&em, &self.enclave_sig)
    }

    /// Serializes to a fixed 384-byte wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(384);
        out.extend_from_slice(&self.platform_measurement);
        out.extend_from_slice(&self.enclave_measurement);
        out.extend_from_slice(&self.report_data);
        out.extend_from_slice(&self.ak_salt);
        out.extend_from_slice(&self.ak_pub.to_bytes());
        out.extend_from_slice(&self.platform_sig.to_bytes());
        out.extend_from_slice(&self.enclave_sig.to_bytes());
        out
    }

    /// Parses the wire format.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` on length or point-decoding failures.
    pub fn from_bytes(bytes: &[u8]) -> EmsResult<Quote> {
        if bytes.len() != 384 {
            return Err(EmsError::InvalidArgument);
        }
        let f32 = |o: usize| -> [u8; 32] { bytes[o..o + 32].try_into().expect("32") };
        let ak_pub = PublicKey::from_bytes(&bytes[128..192].try_into().expect("64"))
            .map_err(|_| EmsError::InvalidArgument)?;
        let platform_sig = Signature::from_bytes(&bytes[192..288].try_into().expect("96"))
            .map_err(|_| EmsError::InvalidArgument)?;
        let enclave_sig = Signature::from_bytes(&bytes[288..384].try_into().expect("96"))
            .map_err(|_| EmsError::InvalidArgument)?;
        Ok(Quote {
            platform_measurement: f32(0),
            enclave_measurement: f32(32),
            report_data: f32(64),
            ak_salt: f32(96),
            ak_pub,
            platform_sig,
            enclave_sig,
        })
    }
}

/// A local-attestation report: the verifier's measurement MAC'd under the
/// report key derived from the *challenger's* measurement and SK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalReport {
    /// The verifier enclave's measurement.
    pub verifier_measurement: [u8; 32],
    /// MAC under the challenger-bound report key.
    pub mac: [u8; 32],
}

/// Message 1 of the SIGMA remote-attestation flow: the remote user's
/// ephemeral public key and nonce.
#[derive(Debug, Clone)]
pub struct SigmaMsg1 {
    /// Remote user's ephemeral ECDH public key.
    pub user_pub: EcdhPublic,
    /// Freshness nonce.
    pub nonce: [u8; 32],
}

/// Message 2: the platform's reply — its ephemeral key, the quote binding
/// the transcript, and a MAC under the derived session key.
#[derive(Debug, Clone)]
pub struct SigmaMsg2 {
    /// Platform-side ephemeral ECDH public key.
    pub enclave_pub: EcdhPublic,
    /// Quote with `report_data` = H(transcript).
    pub quote: Quote,
    /// HMAC(session_key, transcript) — the "sign-and-mac" binding.
    pub mac: [u8; 32],
}

/// The remote user's half of the SIGMA exchange.
#[derive(Debug)]
pub struct SigmaInitiator {
    ecdh: EcdhPrivate,
    nonce: [u8; 32],
}

fn transcript_hash(user_pub: &EcdhPublic, nonce: &[u8; 32], enclave_pub: &EcdhPublic) -> [u8; 32] {
    let mut t = Vec::with_capacity(160);
    t.extend_from_slice(&user_pub.to_bytes());
    t.extend_from_slice(nonce);
    t.extend_from_slice(&enclave_pub.to_bytes());
    sha256(&t)
}

impl SigmaInitiator {
    /// Step ①: the remote user opens the exchange.
    pub fn start(rng: &mut ChaChaRng) -> (SigmaInitiator, SigmaMsg1) {
        let ecdh = EcdhPrivate::generate(rng);
        let nonce = rng.gen_bytes32();
        let msg = SigmaMsg1 {
            user_pub: ecdh.public,
            nonce,
        };
        (SigmaInitiator { ecdh, nonce }, msg)
    }

    /// Step ① with a caller-supplied nonce: used by challenge-response
    /// services that issue the freshness nonce server-side, so the quote in
    /// [`SigmaMsg2`] is bound to *that* challenge (the responder's replay
    /// guard and the service's challenge registry both key on it).
    pub fn start_with_nonce(rng: &mut ChaChaRng, nonce: [u8; 32]) -> (SigmaInitiator, SigmaMsg1) {
        let ecdh = EcdhPrivate::generate(rng);
        let msg = SigmaMsg1 {
            user_pub: ecdh.public,
            nonce,
        };
        (SigmaInitiator { ecdh, nonce }, msg)
    }

    /// Step ③: verifies the platform reply. On success returns the shared
    /// session key.
    ///
    /// # Errors
    ///
    /// `AccessDenied` when any certificate, binding, or measurement check
    /// fails — the platform is declared untrustworthy.
    pub fn finish(
        &self,
        msg2: &SigmaMsg2,
        trusted_ek: &PublicKey,
        expected_enclave_measurement: &[u8; 32],
    ) -> EmsResult<[u8; 32]> {
        if !msg2.quote.verify(trusted_ek) {
            return Err(EmsError::AccessDenied);
        }
        if !ct_eq(
            &msg2.quote.enclave_measurement,
            expected_enclave_measurement,
        ) {
            return Err(EmsError::AccessDenied);
        }
        let th = transcript_hash(&self.ecdh.public, &self.nonce, &msg2.enclave_pub);
        if !ct_eq(&msg2.quote.report_data, &th) {
            return Err(EmsError::AccessDenied);
        }
        let session = self
            .ecdh
            .shared_key(&msg2.enclave_pub)
            .map_err(|_| EmsError::AccessDenied)?;
        let mac = hmac_sha256(&session, &th);
        if !ct_eq(&mac, &msg2.mac) {
            return Err(EmsError::AccessDenied);
        }
        Ok(session)
    }
}

impl Ems {
    /// EATTEST: produces a [`Quote`] for a measured enclave over
    /// caller-supplied challenge data.
    ///
    /// # Errors
    ///
    /// `BadState` before EMEAS.
    pub fn eattest(&mut self, eid: u64, challenge: &[u8]) -> EmsResult<Quote> {
        let enclave_measurement = self
            .enclave(eid)?
            .measurement
            .digest()
            .ok_or(EmsError::BadState)?;
        let report_data = sha256(challenge);
        Ok(self.quote_for(enclave_measurement, report_data))
    }

    fn quote_for(&self, enclave_measurement: [u8; 32], report_data: [u8; 32]) -> Quote {
        let pm = self.platform_measurement;
        let platform_msg = Quote::platform_msg(&self.vault.ak.public, &self.vault.ak_salt, &pm);
        let platform_sig = self.vault.ek.sign(&platform_msg);
        let enclave_msg = Quote::enclave_msg(&enclave_measurement, &report_data, &pm);
        let enclave_sig = self.vault.ak.sign(&enclave_msg);
        Quote {
            platform_measurement: pm,
            enclave_measurement,
            report_data,
            ak_salt: self.vault.ak_salt,
            ak_pub: self.vault.ak.public,
            platform_sig,
            enclave_sig,
        }
    }

    /// A platform-only quote (zero enclave measurement) over arbitrary
    /// report data — used by CVM migration to attest the destination node.
    pub fn platform_quote(&self, report_data: [u8; 32]) -> Quote {
        self.quote_for([0u8; 32], report_data)
    }

    /// The platform EK public key (published by the manufacturer; remote
    /// users pin this).
    pub fn ek_public(&self) -> PublicKey {
        self.vault.ek.public
    }

    /// Step ② of SIGMA remote attestation: EMS answers a remote user's
    /// [`SigmaMsg1`] on behalf of enclave `eid`.
    ///
    /// # Errors
    ///
    /// `BadState` before EMEAS; `AccessDenied` for a degenerate user key or
    /// a replayed `msg1` nonce.
    pub fn sigma_respond(&mut self, eid: u64, msg1: &SigmaMsg1) -> EmsResult<SigmaMsg2> {
        self.sigma_respond_keyed(eid, msg1).map(|(msg2, _)| msg2)
    }

    /// Step ② of SIGMA, returning the derived session key alongside the
    /// reply. The key never leaves the platform in the message — a service
    /// facade running *inside* the trust boundary uses it to MAC-bind
    /// session tokens and responses to this exact handshake.
    ///
    /// A bounded journal of recently seen `msg1` nonces rejects replays
    /// fail-closed: answering the same opening message twice would let an
    /// eavesdropper correlate quotes across sessions. The journal lives in
    /// EMS private memory and survives crash-restart (it is persistent
    /// state, like the ownership table).
    ///
    /// # Errors
    ///
    /// `BadState` before EMEAS; `AccessDenied` for a degenerate user key or
    /// a replayed `msg1` nonce.
    pub fn sigma_respond_keyed(
        &mut self,
        eid: u64,
        msg1: &SigmaMsg1,
    ) -> EmsResult<(SigmaMsg2, [u8; 32])> {
        let enclave_measurement = self
            .enclave(eid)?
            .measurement
            .digest()
            .ok_or(EmsError::BadState)?;
        if self.sigma_seen.contains(&msg1.nonce) {
            return Err(EmsError::AccessDenied);
        }
        if self.sigma_seen.len() >= crate::runtime::SIGMA_SEEN_CAP {
            self.sigma_seen.pop_front();
        }
        self.sigma_seen.push_back(msg1.nonce);
        let eph = EcdhPrivate::generate(&mut self.rng);
        let th = transcript_hash(&msg1.user_pub, &msg1.nonce, &eph.public);
        let quote = self.quote_for(enclave_measurement, th);
        let session = eph
            .shared_key(&msg1.user_pub)
            .map_err(|_| EmsError::AccessDenied)?;
        let mac = hmac_sha256(&session, &th);
        Ok((
            SigmaMsg2 {
                enclave_pub: eph.public,
                quote,
                mac,
            },
            session,
        ))
    }

    /// Local attestation, verifier side: EMS MACs the verifier's
    /// measurement under the report key derived from the *challenger's*
    /// measurement (§VI step ②).
    ///
    /// # Errors
    ///
    /// `BadState` before EMEAS.
    pub fn local_report(
        &self,
        verifier_eid: u64,
        challenger_measurement: &[u8; 32],
    ) -> EmsResult<LocalReport> {
        let vm = self
            .enclave(verifier_eid)?
            .measurement
            .digest()
            .ok_or(EmsError::BadState)?;
        let rk = self.vault.report_key(challenger_measurement);
        let mac = hmac_sha256(&rk, &vm);
        Ok(LocalReport {
            verifier_measurement: vm,
            mac,
        })
    }

    /// Local attestation, challenger side: EMS re-derives the report key
    /// from the *challenger's own* measurement and checks the MAC (§VI
    /// step ③). Only reports generated on the same platform (same SK) for
    /// this exact challenger verify.
    ///
    /// # Errors
    ///
    /// `BadState` before EMEAS.
    pub fn local_verify(&self, challenger_eid: u64, report: &LocalReport) -> EmsResult<bool> {
        let cm = self
            .enclave(challenger_eid)?
            .measurement
            .digest()
            .ok_or(EmsError::BadState)?;
        let rk = self.vault.report_key(&cm);
        let expect = hmac_sha256(&rk, &report.verifier_measurement);
        Ok(ct_eq(&expect, &report.mac))
    }

    /// Data sealing (§VI): encrypt-then-MAC `data` under the enclave's
    /// measurement-bound sealing key. The blob layout is
    /// `nonce(16) ‖ ciphertext ‖ hmac(32)`.
    ///
    /// # Errors
    ///
    /// `BadState` before EMEAS.
    pub fn seal(&mut self, eid: u64, data: &[u8]) -> EmsResult<Vec<u8>> {
        let m = self
            .enclave(eid)?
            .measurement
            .digest()
            .ok_or(EmsError::BadState)?;
        let key = self.vault.sealing_key(&m);
        let mut nonce = [0u8; 16];
        self.rng.fill_bytes(&mut nonce);
        let cipher = Aes128::new(key[..16].try_into().expect("16"));
        let mut ct = data.to_vec();
        let iv = ctr_iv(
            u64::from_le_bytes(nonce[..8].try_into().expect("8")),
            u64::from_le_bytes(nonce[8..].try_into().expect("8")),
        );
        cipher.ctr_apply(&iv, &mut ct);
        let mut blob = Vec::with_capacity(16 + ct.len() + 32);
        blob.extend_from_slice(&nonce);
        blob.extend_from_slice(&ct);
        let mac = hmac_sha256(&key, &blob);
        blob.extend_from_slice(&mac);
        Ok(blob)
    }

    /// Unseals a blob sealed by the *same enclave identity on the same
    /// platform*.
    ///
    /// # Errors
    ///
    /// `AccessDenied` on MAC failure (wrong enclave, wrong platform, or
    /// tampering); `InvalidArgument` for malformed blobs; `BadState`
    /// before EMEAS.
    pub fn unseal(&self, eid: u64, blob: &[u8]) -> EmsResult<Vec<u8>> {
        if blob.len() < 48 {
            return Err(EmsError::InvalidArgument);
        }
        let m = self
            .enclave(eid)?
            .measurement
            .digest()
            .ok_or(EmsError::BadState)?;
        let key = self.vault.sealing_key(&m);
        let (body, mac) = blob.split_at(blob.len() - 32);
        let expect = hmac_sha256(&key, body);
        if !ct_eq(&expect, mac) {
            return Err(EmsError::AccessDenied);
        }
        let nonce: [u8; 16] = body[..16].try_into().expect("16");
        let mut pt = body[16..].to_vec();
        let cipher = Aes128::new(key[..16].try_into().expect("16"));
        let iv = ctr_iv(
            u64::from_le_bytes(nonce[..8].try_into().expect("8")),
            u64::from_le_bytes(nonce[8..].try_into().expect("8")),
        );
        cipher.ctr_apply(&iv, &mut pt);
        Ok(pt)
    }
}
