//! Enclave memory-management primitives: EALLOC, EFREE, EWB (§IV-A).

use crate::control::{layout, EnclaveState};
use crate::error::{EmsError, EmsResult};
use crate::runtime::{Ems, EmsContext, StagedFrames};
use hypertee_crypto::aes::{ctr_iv, Aes128};
use hypertee_mem::addr::{Ppn, VirtAddr, PAGE_SIZE};
use hypertee_mem::ownership::{EnclaveId, PageOwner};
use hypertee_mem::pagetable::Perms;

impl Ems {
    /// The enclave's heap cursor (next unmapped VA) and heap limit in
    /// bytes — what EMCall needs to service demand-paging faults (§IV-A).
    ///
    /// # Errors
    ///
    /// `NotFound` for unknown enclaves.
    pub fn enclave_heap_info(&self, eid: u64) -> EmsResult<(u64, u64)> {
        let e = self.enclave(eid)?;
        Ok((e.heap_cursor.0, e.config.heap_max))
    }

    /// EALLOC: maps `bytes` of fresh, zeroed enclave heap memory from the
    /// pool. Pages come out of the pool without notifying the CS OS — the
    /// §IV-A defence against allocation-based controlled channels.
    ///
    /// Returns the base virtual address and the number of pages mapped.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for zero size or heap-limit overflow, `Exhausted`
    /// when the pool and OS are drained, `BadState` while suspended.
    pub fn ealloc(
        &mut self,
        ctx: &mut EmsContext<'_>,
        eid: u64,
        bytes: u64,
    ) -> EmsResult<(VirtAddr, u64)> {
        let enclave = self.enclave(eid)?;
        if enclave.state == EnclaveState::Suspended {
            return Err(EmsError::BadState);
        }
        let pages = bytes.div_ceil(PAGE_SIZE);
        if bytes == 0 {
            return Err(EmsError::InvalidArgument);
        }
        let base = enclave.heap_cursor;
        let heap_end = layout::HEAP_BASE.0 + enclave.config.heap_max;
        if base.0 + pages * PAGE_SIZE > heap_end {
            return Err(EmsError::InvalidArgument);
        }
        let key = enclave.key.ok_or(EmsError::BadState)?;
        let table = enclave.page_table;

        let mut staged = StagedFrames::stage(2 + pages.div_ceil(512), &mut self.pool, ctx)?;
        let mut frames = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            let frame = self.pool.take(ctx.os_frames, ctx.sys)?;
            self.ownership
                .claim(frame, PageOwner::Enclave(EnclaveId(eid)))
                .map_err(|_| EmsError::AccessDenied)?;
            // Zero through the enclave key so integrity MACs exist (§IV-A:
            // "Before being mapped, corresponding pages will be zeroed").
            let sys = &mut *ctx.sys;
            sys.engine.write(&mut sys.phys, frame.base(), key, &[0u8; PAGE_SIZE as usize])?;
            table.map(
                VirtAddr(base.0 + i * PAGE_SIZE),
                frame,
                Perms::RW,
                key,
                &mut staged,
                &mut ctx.sys.phys,
            )?;
            frames.push(frame);
        }
        let pt_frames = staged.unstage(&mut self.pool, ctx);
        for f in &pt_frames {
            self.ownership
                .claim(*f, PageOwner::EmsPrivate)
                .map_err(|_| EmsError::AccessDenied)?;
        }
        let enclave = self.enclave_mut(eid)?;
        enclave.pt_frames.extend(pt_frames);
        enclave.data_frames.extend(frames);
        enclave.heap_cursor = VirtAddr(base.0 + pages * PAGE_SIZE);
        Ok((base, pages))
    }

    /// EFREE: unmaps `bytes` of heap starting at `va`, zeroes the pages, and
    /// returns them to the pool (they stay enclave-marked while pooled).
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for unaligned or out-of-heap ranges, `AccessDenied`
    /// when a page is not owned by the enclave.
    pub fn efree(
        &mut self,
        ctx: &mut EmsContext<'_>,
        eid: u64,
        va: u64,
        bytes: u64,
    ) -> EmsResult<()> {
        let enclave = self.enclave(eid)?;
        if va % PAGE_SIZE != 0 || bytes == 0 {
            return Err(EmsError::InvalidArgument);
        }
        let pages = bytes.div_ceil(PAGE_SIZE);
        if va < layout::HEAP_BASE.0 || va + pages * PAGE_SIZE > enclave.heap_cursor.0 {
            return Err(EmsError::InvalidArgument);
        }
        let table = enclave.page_table;
        let mut freed = Vec::new();
        for i in 0..pages {
            let pte = table.unmap(VirtAddr(va + i * PAGE_SIZE), &mut ctx.sys.phys)?;
            let frame = pte.ppn();
            self.ownership
                .release(frame, PageOwner::Enclave(EnclaveId(eid)))
                .map_err(|_| EmsError::AccessDenied)?;
            self.pool.give_back(frame, ctx.sys)?;
            freed.push(frame);
        }
        let enclave = self.enclave_mut(eid)?;
        enclave.data_frames.retain(|f| !freed.contains(f));
        Ok(())
    }

    /// EWB: the CS OS asks for enclave pages to swap out. EMS selects a
    /// *randomized* number of *unused pool pages* (never live enclave
    /// pages), fills them with ciphertext indistinguishable from used
    /// enclave memory, clears their bitmap bits, and returns their physical
    /// addresses for the OS to reclaim (§IV-A swapping defence).
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for a zero request, `Exhausted` when the pool
    /// cannot cover the randomized count.
    pub fn ewb(&mut self, ctx: &mut EmsContext<'_>, requested: u64) -> EmsResult<Vec<Ppn>> {
        if requested == 0 || requested > 4096 {
            return Err(EmsError::InvalidArgument);
        }
        let count = self.pool.swap_jitter(requested);
        let frames = self.pool.evict_random(count, ctx.os_frames, ctx.sys)?;
        // Fill each page with fresh keystream so the OS cannot tell swapped
        // "pages" from real encrypted enclave memory.
        let mut swap_key = [0u8; 16];
        self.rng.fill_bytes(&mut swap_key);
        let cipher = Aes128::new(&swap_key);
        for frame in &frames {
            let mut page = vec![0u8; PAGE_SIZE as usize];
            cipher.ctr_apply(&ctr_iv(frame.base().0, 0x5357_4150), &mut page);
            ctx.sys.phys.write(frame.base(), &page)?;
        }
        Ok(frames)
    }
}
