//! Enclave memory-management primitives: EALLOC, EFREE, EWB (§IV-A).
//!
//! All three walk several structures per page (pool, ownership table,
//! bitmap, page table), so each threads a [`Txn`]: an injected abort between
//! any two mutations rolls the completed pages back and leaves the enclave
//! exactly as before the call — the caller simply retries.

use crate::control::{layout, EnclaveState};
use crate::error::{EmsError, EmsResult};
use crate::runtime::{Ems, EmsContext, StagedFrames};
use crate::txn::{Txn, UndoOp};
use hypertee_crypto::aes::{ctr_iv, Aes128};
use hypertee_mem::addr::{KeyId, Ppn, VirtAddr, PAGE_SIZE};
use hypertee_mem::ownership::{EnclaveId, PageOwner};
use hypertee_mem::pagetable::{PageTable, Perms};

impl Ems {
    /// The enclave's heap cursor (next unmapped VA) and heap limit in
    /// bytes — what EMCall needs to service demand-paging faults (§IV-A).
    ///
    /// # Errors
    ///
    /// `NotFound` for unknown enclaves.
    pub fn enclave_heap_info(&self, eid: u64) -> EmsResult<(u64, u64)> {
        let e = self.enclave(eid)?;
        Ok((e.heap_cursor.0, e.config.heap_max))
    }

    /// EALLOC: maps `bytes` of fresh, zeroed enclave heap memory from the
    /// pool. Pages come out of the pool without notifying the CS OS — the
    /// §IV-A defence against allocation-based controlled channels.
    ///
    /// Returns the base virtual address and the number of pages mapped.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for zero size or heap-limit overflow, `Exhausted`
    /// when the pool and OS are drained, `BadState` while suspended,
    /// `Aborted` (after rollback) on an injected mid-primitive fault.
    pub fn ealloc(
        &mut self,
        ctx: &mut EmsContext<'_>,
        eid: u64,
        bytes: u64,
    ) -> EmsResult<(VirtAddr, u64)> {
        let enclave = self.enclave(eid)?;
        if enclave.state == EnclaveState::Suspended {
            return Err(EmsError::BadState);
        }
        let pages = bytes.div_ceil(PAGE_SIZE);
        if bytes == 0 {
            return Err(EmsError::InvalidArgument);
        }
        let base = enclave.heap_cursor;
        let heap_end = layout::HEAP_BASE.0 + enclave.config.heap_max;
        if base.0 + pages * PAGE_SIZE > heap_end {
            return Err(EmsError::InvalidArgument);
        }
        let key = enclave.key.ok_or(EmsError::BadState)?;
        let table = enclave.page_table;

        let mut staged = StagedFrames::stage(2 + pages.div_ceil(512), &mut self.pool, ctx)?;
        let mut txn = Txn::begin(self.injector.abort_step());
        let mut frames = Vec::with_capacity(pages as usize);
        let mut err: Option<EmsError> = None;
        for i in 0..pages {
            let va = VirtAddr(base.0 + i * PAGE_SIZE);
            match self.ealloc_one(ctx, &mut staged, &mut txn, eid, va, key, table) {
                Ok(frame) => frames.push(frame),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        // Page-table branch frames woven into the live table are kept on
        // BOTH paths — success and abort alike. Reclaiming one would leave
        // an interior PTE dangling at a pool frame, corrupting whatever that
        // frame is reused for. Only leaf mappings and data frames roll back.
        let pt_frames = staged.unstage(&mut self.pool, ctx);
        for f in &pt_frames {
            if self.ownership.claim(*f, PageOwner::EmsPrivate).is_err() {
                err.get_or_insert(EmsError::AccessDenied);
            }
        }
        let enclave = self.enclave_mut(eid)?;
        enclave.pt_frames.extend(pt_frames);
        match err {
            None => {
                let enclave = self.enclave_mut(eid)?;
                enclave.data_frames.extend(frames);
                enclave.heap_cursor = VirtAddr(base.0 + pages * PAGE_SIZE);
                Ok((base, pages))
            }
            Some(e) => {
                if self.rollback(ctx, txn).is_err() {
                    self.poison(eid);
                    return Err(EmsError::BadState);
                }
                Err(e)
            }
        }
    }

    /// One EALLOC page: take → claim → zero-through-key → map, each undo
    /// logged so the reverse replay runs unmap → release → return-to-pool.
    #[allow(clippy::too_many_arguments)]
    fn ealloc_one(
        &mut self,
        ctx: &mut EmsContext<'_>,
        staged: &mut StagedFrames,
        txn: &mut Txn,
        eid: u64,
        va: VirtAddr,
        key: KeyId,
        table: PageTable,
    ) -> EmsResult<Ppn> {
        txn.step()?;
        let frame = self.pool.take(ctx.os_frames, ctx.sys)?;
        txn.record(UndoOp::ReturnToPool(frame));
        let owner = PageOwner::Enclave(EnclaveId(eid));
        self.ownership
            .claim(frame, owner)
            .map_err(|_| EmsError::AccessDenied)?;
        txn.record(UndoOp::ReleaseOwnership(frame, owner));
        // Zero through the enclave key so integrity MACs exist (§IV-A:
        // "Before being mapped, corresponding pages will be zeroed").
        let sys = &mut *ctx.sys;
        sys.engine
            .write(&mut sys.phys, frame.base(), key, &[0u8; PAGE_SIZE as usize])?;
        table.map(va, frame, Perms::RW, key, staged, &mut ctx.sys.phys)?;
        txn.record(UndoOp::UnmapLeaf(table, va));
        Ok(frame)
    }

    /// EFREE: unmaps `bytes` of heap starting at `va`, zeroes the pages, and
    /// returns them to the pool (they stay enclave-marked while pooled).
    ///
    /// Runs in two phases: first every page is detached from the table and
    /// the ownership table *without touching its content*, so an abort in
    /// the middle rolls back losslessly; only then are the detached frames
    /// zeroed and pooled (the commit — past the last abort point).
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for unaligned or out-of-heap ranges, `AccessDenied`
    /// when a page is not owned by the enclave, `Aborted` (after rollback)
    /// on an injected mid-primitive fault.
    pub fn efree(
        &mut self,
        ctx: &mut EmsContext<'_>,
        eid: u64,
        va: u64,
        bytes: u64,
    ) -> EmsResult<()> {
        let enclave = self.enclave(eid)?;
        if !va.is_multiple_of(PAGE_SIZE) || bytes == 0 {
            return Err(EmsError::InvalidArgument);
        }
        let pages = bytes.div_ceil(PAGE_SIZE);
        if va < layout::HEAP_BASE.0 || va + pages * PAGE_SIZE > enclave.heap_cursor.0 {
            return Err(EmsError::InvalidArgument);
        }
        let table = enclave.page_table;
        let owner = PageOwner::Enclave(EnclaveId(eid));
        let mut txn = Txn::begin(self.injector.abort_step());

        // Phase ① (abortable): detach pages; content untouched.
        let mut detached = Vec::with_capacity(pages as usize);
        let mut err: Option<EmsError> = None;
        for i in 0..pages {
            let page_va = VirtAddr(va + i * PAGE_SIZE);
            if let Err(e) = txn.step() {
                err = Some(e);
                break;
            }
            let pte = match table.unmap(page_va, &mut ctx.sys.phys) {
                Ok(p) => p,
                Err(f) => {
                    err = Some(f.into());
                    break;
                }
            };
            txn.record(UndoOp::RemapLeaf(
                table,
                page_va,
                pte.ppn(),
                pte.perms(),
                pte.key(),
            ));
            if self.ownership.release(pte.ppn(), owner).is_err() {
                err = Some(EmsError::AccessDenied);
                break;
            }
            txn.record(UndoOp::RestoreOwnership(pte.ppn(), owner));
            detached.push(pte.ppn());
        }
        if let Some(e) = err {
            if self.rollback(ctx, txn).is_err() {
                self.poison(eid);
                return Err(EmsError::BadState);
            }
            return Err(e);
        }

        // Phase ② (commit): zero and pool the detached frames.
        for frame in &detached {
            self.pool.give_back(*frame, ctx.sys)?;
        }
        let enclave = self.enclave_mut(eid)?;
        enclave.data_frames.retain(|f| !detached.contains(f));
        Ok(())
    }

    /// EWB: the CS OS asks for enclave pages to swap out. EMS selects a
    /// *randomized* number of *unused pool pages* (never live enclave
    /// pages), fills them with ciphertext indistinguishable from used
    /// enclave memory, clears their bitmap bits, and returns their physical
    /// addresses for the OS to reclaim (§IV-A swapping defence).
    ///
    /// Eviction is per-frame and transactional: an injected abort between
    /// frames re-pools everything evicted so far (frames are zeroed, so
    /// unevicting is lossless).
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for a zero request, `Exhausted` when the pool
    /// cannot cover the randomized count, `Aborted` (after rollback) on an
    /// injected mid-primitive fault.
    pub fn ewb(&mut self, ctx: &mut EmsContext<'_>, requested: u64) -> EmsResult<Vec<Ppn>> {
        if requested == 0 || requested > 4096 {
            return Err(EmsError::InvalidArgument);
        }
        let count = self.pool.swap_jitter(requested);
        let mut txn = Txn::begin(self.injector.abort_step());
        let mut frames = Vec::with_capacity(count as usize);
        let mut err: Option<EmsError> = None;
        for _ in 0..count {
            if let Err(e) = txn.step() {
                err = Some(e);
                break;
            }
            match self.pool.evict_one(ctx.os_frames, ctx.sys) {
                Ok(frame) => {
                    txn.record(UndoOp::UnevictFrame(frame));
                    frames.push(frame);
                }
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = err {
            // EWB touches no enclave, so there is nothing to poison; a
            // failed unevict is a pool-global inconsistency.
            if self.rollback(ctx, txn).is_err() {
                return Err(EmsError::BadState);
            }
            return Err(e);
        }
        // Fill each page with fresh keystream so the OS cannot tell swapped
        // "pages" from real encrypted enclave memory.
        let mut swap_key = [0u8; 16];
        self.rng.fill_bytes(&mut swap_key);
        let cipher = Aes128::new(&swap_key);
        for frame in &frames {
            let mut page = vec![0u8; PAGE_SIZE as usize];
            cipher.ctr_apply(&ctr_iv(frame.base().0, 0x5357_4150), &mut page);
            ctx.sys.phys.write(frame.base(), &page)?;
        }
        Ok(frames)
    }
}
