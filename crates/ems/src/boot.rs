//! Secure boot (§VI).
//!
//! "Upon power on, EMS is booted up after the chip original initialization
//! logic, and then followed by CS. Specifically, EMS BootROM is first
//! executed to verify the EMS Runtime, which is encrypted and stored in EMS
//! private flash. The hash value of Runtime is verified against
//! pre-calculated hash value stored in an on-chip EEPROM to avoid physical
//! tampering. Then, the hash of CS firmware and EMCall are verified
//! similarly to prevent tampering. Finally, the CS OS starts its booting
//! process."

use hypertee_crypto::aes::{ctr_iv, Aes128};
use hypertee_crypto::sha256::sha256;
use hypertee_crypto::util::ct_eq;

/// An image as stored at manufacturing time.
#[derive(Debug, Clone)]
pub struct FlashImage {
    /// Encrypted bytes in EMS private flash.
    pub ciphertext: Vec<u8>,
}

/// The on-chip EEPROM holding pre-calculated hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eeprom {
    /// Expected hash of the decrypted EMS runtime.
    pub runtime_hash: [u8; 32],
    /// Expected hash of the CS firmware (EMCall).
    pub emcall_hash: [u8; 32],
}

/// Stages of the boot chain, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootStage {
    /// Chip initialisation configured EMS/CS address spaces (§III-D ③).
    ChipInit,
    /// BootROM verified and started the EMS runtime.
    EmsRuntime,
    /// CS firmware (EMCall) verified.
    CsFirmware,
    /// CS OS released to boot.
    CsOs,
}

/// Why a boot failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootError {
    /// EMS runtime hash mismatch (flash tampering).
    RuntimeTampered,
    /// EMCall/CS firmware hash mismatch.
    FirmwareTampered,
}

impl core::fmt::Display for BootError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BootError::RuntimeTampered => write!(f, "EMS runtime image failed verification"),
            BootError::FirmwareTampered => write!(f, "CS firmware (EMCall) failed verification"),
        }
    }
}

impl std::error::Error for BootError {}

/// Result of a successful boot: the decrypted runtime, the platform
/// measurement covering the software TCB, and the completed stage list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootReport {
    /// Decrypted EMS runtime image (would be jumped into on real hardware).
    pub runtime_image: Vec<u8>,
    /// Platform measurement = H(runtime_hash ‖ emcall_hash), used in remote
    /// attestation certificates.
    pub platform_measurement: [u8; 32],
    /// Stages completed, in execution order.
    pub stages: Vec<BootStage>,
}

/// The flash-encryption key (derived from manufacturing key material; fixed
/// per device family in this model).
fn flash_cipher(flash_key: &[u8; 16]) -> Aes128 {
    Aes128::new(flash_key)
}

/// Encrypts a runtime image for flash storage (manufacturing-side helper).
pub fn provision_flash(flash_key: &[u8; 16], runtime: &[u8]) -> (FlashImage, Eeprom, [u8; 32]) {
    let mut data = runtime.to_vec();
    flash_cipher(flash_key).ctr_apply(&ctr_iv(0x0046_4c41_5348, 0), &mut data);
    let runtime_hash = sha256(runtime);
    (
        FlashImage { ciphertext: data },
        Eeprom {
            runtime_hash,
            emcall_hash: [0; 32],
        },
        runtime_hash,
    )
}

/// Runs the full boot chain.
///
/// # Errors
///
/// [`BootError::RuntimeTampered`] / [`BootError::FirmwareTampered`] when a
/// hash check fails — the chain stops and the CS OS is never released.
pub fn secure_boot(
    flash_key: &[u8; 16],
    flash: &FlashImage,
    eeprom: &Eeprom,
    emcall_firmware: &[u8],
) -> Result<BootReport, BootError> {
    let mut stages = vec![BootStage::ChipInit];
    // BootROM: decrypt the runtime and verify against the EEPROM hash.
    let mut runtime = flash.ciphertext.clone();
    flash_cipher(flash_key).ctr_apply(&ctr_iv(0x0046_4c41_5348, 0), &mut runtime);
    let runtime_hash = sha256(&runtime);
    if !ct_eq(&runtime_hash, &eeprom.runtime_hash) {
        return Err(BootError::RuntimeTampered);
    }
    stages.push(BootStage::EmsRuntime);
    // EMS verifies the CS firmware (EMCall) before releasing the CS.
    let emcall_hash = sha256(emcall_firmware);
    if !ct_eq(&emcall_hash, &eeprom.emcall_hash) {
        return Err(BootError::FirmwareTampered);
    }
    stages.push(BootStage::CsFirmware);
    stages.push(BootStage::CsOs);
    let mut m = Vec::with_capacity(64);
    m.extend_from_slice(&runtime_hash);
    m.extend_from_slice(&emcall_hash);
    Ok(BootReport {
        runtime_image: runtime,
        platform_measurement: sha256(&m),
        stages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLASH_KEY: [u8; 16] = [0x42; 16];

    fn provision() -> (FlashImage, Eeprom) {
        let runtime = b"EMS runtime v1: 3843 lines of memory-safe Rust";
        let emcall = b"EMCall firmware v1";
        let (flash, mut eeprom, _) = provision_flash(&FLASH_KEY, runtime);
        eeprom.emcall_hash = sha256(emcall);
        (flash, eeprom)
    }

    #[test]
    fn clean_boot_reaches_cs_os() {
        let (flash, eeprom) = provision();
        let report = secure_boot(&FLASH_KEY, &flash, &eeprom, b"EMCall firmware v1").unwrap();
        assert_eq!(
            report.stages,
            vec![
                BootStage::ChipInit,
                BootStage::EmsRuntime,
                BootStage::CsFirmware,
                BootStage::CsOs
            ]
        );
        assert_eq!(
            report.runtime_image,
            b"EMS runtime v1: 3843 lines of memory-safe Rust"
        );
    }

    #[test]
    fn tampered_flash_detected() {
        let (mut flash, eeprom) = provision();
        flash.ciphertext[3] ^= 0x01;
        assert_eq!(
            secure_boot(&FLASH_KEY, &flash, &eeprom, b"EMCall firmware v1"),
            Err(BootError::RuntimeTampered)
        );
    }

    #[test]
    fn tampered_emcall_detected() {
        let (flash, eeprom) = provision();
        assert_eq!(
            secure_boot(&FLASH_KEY, &flash, &eeprom, b"EMCall firmware vX"),
            Err(BootError::FirmwareTampered)
        );
    }

    #[test]
    fn platform_measurement_binds_both_hashes() {
        let (flash, eeprom) = provision();
        let r1 = secure_boot(&FLASH_KEY, &flash, &eeprom, b"EMCall firmware v1").unwrap();
        // A different (legitimately provisioned) firmware yields a different
        // platform measurement.
        let mut eeprom2 = eeprom.clone();
        eeprom2.emcall_hash = sha256(b"EMCall firmware v2");
        let r2 = secure_boot(&FLASH_KEY, &flash, &eeprom2, b"EMCall firmware v2").unwrap();
        assert_ne!(r1.platform_measurement, r2.platform_measurement);
    }

    #[test]
    fn flash_is_actually_encrypted() {
        let (flash, _) = provision();
        let needle = b"memory-safe";
        let hay = &flash.ciphertext;
        let found = hay.windows(needle.len()).any(|w| w == needle);
        assert!(!found, "plaintext must not appear in flash");
    }
}
