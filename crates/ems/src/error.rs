//! EMS-internal error type and its mapping onto mailbox status codes.

use hypertee_fabric::message::Status;
use hypertee_mem::MemFault;

/// Errors the EMS runtime raises while executing primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmsError {
    /// Arguments failed the sanity check (§III-B: "EMS conducts a sanity
    /// check on its arguments to ensure legitimacy").
    InvalidArgument,
    /// The caller's privilege or identity does not authorise the action.
    AccessDenied,
    /// The referenced enclave or shared region does not exist.
    NotFound,
    /// The object is in the wrong life-cycle state for this primitive.
    BadState,
    /// Resources exhausted (frames, pool, KeyIDs).
    Exhausted,
    /// An underlying memory fault.
    Mem(MemFault),
    /// The primitive was aborted mid-flight; its partial effects were
    /// rolled back and the caller may retry the identical request.
    Aborted,
}

impl From<MemFault> for EmsError {
    fn from(f: MemFault) -> Self {
        EmsError::Mem(f)
    }
}

impl From<EmsError> for Status {
    fn from(e: EmsError) -> Status {
        match e {
            EmsError::InvalidArgument => Status::InvalidArgument,
            EmsError::AccessDenied => Status::AccessDenied,
            EmsError::NotFound => Status::NotFound,
            EmsError::BadState => Status::BadState,
            EmsError::Exhausted => Status::Exhausted,
            EmsError::Mem(_) => Status::MemFault,
            EmsError::Aborted => Status::Aborted,
        }
    }
}

impl core::fmt::Display for EmsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EmsError::InvalidArgument => write!(f, "invalid primitive arguments"),
            EmsError::AccessDenied => write!(f, "access denied"),
            EmsError::NotFound => write!(f, "object not found"),
            EmsError::BadState => write!(f, "object in wrong state"),
            EmsError::Exhausted => write!(f, "resources exhausted"),
            EmsError::Mem(m) => write!(f, "memory fault: {m}"),
            EmsError::Aborted => write!(f, "primitive aborted; partial effects rolled back"),
        }
    }
}

impl std::error::Error for EmsError {}

/// Shorthand result type for EMS operations.
pub type EmsResult<T> = Result<T, EmsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_mapping() {
        assert_eq!(
            Status::from(EmsError::InvalidArgument),
            Status::InvalidArgument
        );
        assert_eq!(Status::from(EmsError::AccessDenied), Status::AccessDenied);
        assert_eq!(Status::from(EmsError::Exhausted), Status::Exhausted);
        assert_eq!(Status::from(EmsError::NotFound), Status::NotFound);
        // Lossless: these must NOT collapse to InvalidArgument — the CS
        // side distinguishes "bad call" from "bad state" and "memory fault"
        // when deciding whether to retry.
        assert_eq!(Status::from(EmsError::BadState), Status::BadState);
        assert_eq!(
            Status::from(EmsError::Mem(MemFault::PageFault { va: 0x2000 })),
            Status::MemFault
        );
        assert_eq!(Status::from(EmsError::Aborted), Status::Aborted);
    }

    #[test]
    fn mem_fault_wraps() {
        let e: EmsError = MemFault::PageFault { va: 0x1000 }.into();
        assert!(matches!(
            e,
            EmsError::Mem(MemFault::PageFault { va: 0x1000 })
        ));
    }
}
