//! VM-level TEE support: confidential virtual machines (CVMs).
//!
//! §IX of the paper: "From the design perspective, HyperTEE can naturally
//! support the lifecycle management of CVMs and the deployment of encrypted
//! VM images by adding dedicated primitives in EMS… To support CVM
//! snapshot, save, and restore, EMS ensures the confidentiality and
//! integrity of CVM memory by encrypting it using AES algorithm and
//! creating a Merkle tree. The encryption key and the root hash value are
//! stored in the private memory of EMS. To support CVM migration, EMS can
//! perform remote attestation between the source and destination nodes to
//! establish an encrypted channel for transmitting the CVM encryption key
//! and root hash value, and then transfer the encrypted CVM."
//!
//! The paper leaves this as future work; this module builds it on the same
//! substrates the enclave path uses: pool-backed memory, per-CVM KeyIDs in
//! the MKTME engine, the Merkle tree from `hypertee-crypto`, and the
//! EK/quote machinery for cross-node attestation.

use crate::error::{EmsError, EmsResult};
use crate::runtime::{Ems, EmsContext};
use hypertee_crypto::aes::{ctr_iv, Aes128};
use hypertee_crypto::ecdh::{EcdhPrivate, EcdhPublic};
use hypertee_crypto::hmac::{hmac_sha256, kdf, kdf_aes128};
use hypertee_crypto::merkle::{MerkleProof, MerkleTree};
use hypertee_crypto::sha256::sha256;
use hypertee_crypto::sig::PublicKey;
use hypertee_crypto::util::ct_eq;
use hypertee_mem::addr::{KeyId, Ppn, PAGE_SIZE};
use hypertee_mem::ownership::PageOwner;

/// Identifier of a confidential VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CvmId(pub u64);

/// Life-cycle state of a CVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CvmState {
    /// Deployed and runnable.
    Active,
    /// Saved to a snapshot; memory released.
    Saved,
    /// Migrated away; this node no longer owns it.
    MigratedOut,
}

/// EMS-private control structure for one CVM.
#[derive(Debug)]
pub struct CvmControl {
    /// Identifier.
    pub id: CvmId,
    /// State.
    pub state: CvmState,
    /// Guest memory frames (released while `Saved`).
    pub frames: Vec<Ppn>,
    /// Guest memory size in pages (stable across save/restore).
    pub pages: u64,
    /// MKTME KeyID while active.
    pub key: Option<KeyId>,
    /// Key-derivation nonce.
    pub key_nonce: [u8; 32],
    /// Measurement of the deployed image.
    pub measurement: [u8; 32],
    /// Snapshot root hash + sequence (EMS-private, §IX).
    snapshot_root: Option<([u8; 32], u64)>,
    /// Snapshot encryption key (EMS-private; transported over the attested
    /// channel during migration per §IX).
    snap_key: [u8; 16],
}

/// A saved snapshot as handed to the untrusted host for disk storage: only
/// ciphertext pages and proofs. The key and root stay inside EMS.
#[derive(Debug, Clone)]
pub struct CvmSnapshot {
    /// The CVM this snapshot belongs to.
    pub cvm: CvmId,
    /// Monotonic sequence number (blocks rollback to older snapshots).
    pub sequence: u64,
    /// Encrypted pages.
    pub pages: Vec<Vec<u8>>,
    /// Merkle inclusion proof per page.
    pub proofs: Vec<MerkleProof>,
}

/// Message 1 of CVM migration: the destination node's offer — its ephemeral
/// channel key bound to a platform quote.
#[derive(Debug, Clone)]
pub struct MigrationOffer {
    /// Destination ephemeral ECDH public key.
    pub channel_pub: EcdhPublic,
    /// Destination platform quote with `report_data` = H(channel_pub).
    pub quote: crate::attest::Quote,
}

/// The destination's private half of an offer.
pub struct MigrationOfferPriv {
    channel: EcdhPrivate,
}

impl core::fmt::Debug for MigrationOfferPriv {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "MigrationOfferPriv {{ <redacted> }}")
    }
}

/// The encrypted bundle shipped from source to destination: snapshot pages
/// plus the wrapped CVM secrets (key material, root hash, measurement).
#[derive(Debug, Clone)]
pub struct MigrationBundle {
    /// The snapshot (ciphertext pages + proofs).
    pub snapshot: CvmSnapshot,
    /// Source ephemeral ECDH public key.
    pub source_pub: EcdhPublic,
    /// Channel-encrypted secret block.
    pub wrapped_secrets: Vec<u8>,
    /// HMAC over the whole bundle under the channel key.
    pub mac: [u8; 32],
}

/// Per-CVM secrets carried in a migration (serialized form).
#[allow(clippy::too_many_arguments)]
fn pack_secrets(
    nonce: &[u8; 32],
    root: &[u8; 32],
    seq: u64,
    meas: &[u8; 32],
    pages: u64,
    snap_key: &[u8; 16],
) -> Vec<u8> {
    let mut v = Vec::with_capacity(128);
    v.extend_from_slice(nonce);
    v.extend_from_slice(root);
    v.extend_from_slice(&seq.to_le_bytes());
    v.extend_from_slice(meas);
    v.extend_from_slice(&pages.to_le_bytes());
    v.extend_from_slice(snap_key);
    v
}

type Secrets = ([u8; 32], [u8; 32], u64, [u8; 32], u64, [u8; 16]);

fn unpack_secrets(v: &[u8]) -> Option<Secrets> {
    if v.len() != 128 {
        return None;
    }
    Some((
        v[0..32].try_into().ok()?,
        v[32..64].try_into().ok()?,
        u64::from_le_bytes(v[64..72].try_into().ok()?),
        v[72..104].try_into().ok()?,
        u64::from_le_bytes(v[104..112].try_into().ok()?),
        v[112..128].try_into().ok()?,
    ))
}

impl Ems {
    fn cvm(&self, id: CvmId) -> EmsResult<&CvmControl> {
        self.cvms.get(&id.0).ok_or(EmsError::NotFound)
    }

    fn cvm_mut(&mut self, id: CvmId) -> EmsResult<&mut CvmControl> {
        self.cvms.get_mut(&id.0).ok_or(EmsError::NotFound)
    }

    /// Derives the per-CVM MKTME keys from SK and the CVM nonce.
    fn cvm_memory_keys(&self, nonce: &[u8; 32]) -> ([u8; 16], [u8; 32]) {
        (
            kdf_aes128(&self.vault.sk(), b"cvm-memory", nonce),
            kdf(&self.vault.sk(), b"cvm-memory-mac", nonce),
        )
    }

    /// Derives the snapshot encryption key (EMS-private, §IX).
    fn cvm_snapshot_key(&self, nonce: &[u8; 32]) -> [u8; 16] {
        kdf_aes128(&self.vault.sk(), b"cvm-snapshot", nonce)
    }

    /// CVMCREATE: deploys an encrypted VM image. `image_ct` is the image
    /// encrypted under `image_key` (negotiated between the VM owner and EMS
    /// out of band, e.g. via remote attestation); EMS decrypts, measures,
    /// and loads it into pool-backed, MKTME-encrypted guest memory.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for empty/oversized images; `Exhausted` on frame
    /// or KeyID pressure.
    pub fn cvm_create(
        &mut self,
        ctx: &mut EmsContext<'_>,
        image_ct: &[u8],
        image_key: &[u8; 16],
        guest_pages: u64,
    ) -> EmsResult<CvmId> {
        if image_ct.is_empty() || image_ct.len() as u64 > guest_pages * PAGE_SIZE {
            return Err(EmsError::InvalidArgument);
        }
        if guest_pages == 0 || guest_pages > 65536 {
            return Err(EmsError::InvalidArgument);
        }
        // Decrypt the deployed image inside EMS.
        let mut image = image_ct.to_vec();
        Aes128::new(image_key).ctr_apply(&ctr_iv(0x4356_4d49, 0), &mut image);
        let measurement = sha256(&image);

        let id = CvmId(self.fresh_cvm_id());
        let key = self.alloc_keyid(ctx)?;
        let nonce = self.rng.gen_bytes32();
        let (aes, mac) = self.cvm_memory_keys(&nonce);
        let snap_key = self.cvm_snapshot_key(&nonce);
        ctx.hub
            .ems_program_key(&self.cap, &mut ctx.sys.engine, key, &aes, &mac);

        let mut frames = Vec::with_capacity(guest_pages as usize);
        for i in 0..guest_pages {
            let frame = self.pool.take(ctx.os_frames, ctx.sys)?;
            self.ownership
                .claim(frame, PageOwner::EmsPrivate)
                .map_err(|_| EmsError::AccessDenied)?;
            // Populate: image bytes for the head, zeros beyond.
            let mut page = vec![0u8; PAGE_SIZE as usize];
            let off = (i * PAGE_SIZE) as usize;
            if off < image.len() {
                let take = (image.len() - off).min(PAGE_SIZE as usize);
                page[..take].copy_from_slice(&image[off..off + take]);
            }
            let sys = &mut *ctx.sys;
            sys.engine.write(&mut sys.phys, frame.base(), key, &page)?;
            frames.push(frame);
        }
        self.cvms.insert(
            id.0,
            CvmControl {
                id,
                state: CvmState::Active,
                frames,
                pages: guest_pages,
                key: Some(key),
                key_nonce: nonce,
                measurement,
                snapshot_root: None,
                snap_key,
            },
        );
        Ok(id)
    }

    /// Reads guest memory through the CVM's key (the guest-visible view).
    ///
    /// # Errors
    ///
    /// `BadState` unless active; bounds and memory faults otherwise.
    pub fn cvm_read(
        &mut self,
        ctx: &mut EmsContext<'_>,
        id: CvmId,
        offset: u64,
        buf: &mut [u8],
    ) -> EmsResult<()> {
        let cvm = self.cvm(id)?;
        if cvm.state != CvmState::Active {
            return Err(EmsError::BadState);
        }
        let key = cvm.key.ok_or(EmsError::BadState)?;
        if offset + buf.len() as u64 > cvm.pages * PAGE_SIZE {
            return Err(EmsError::InvalidArgument);
        }
        let frames = cvm.frames.clone();
        let mut done = 0usize;
        let mut pos = offset;
        while done < buf.len() {
            let page = (pos / PAGE_SIZE) as usize;
            let off = pos % PAGE_SIZE;
            let take = ((PAGE_SIZE - off) as usize).min(buf.len() - done);
            let sys = &mut *ctx.sys;
            sys.engine.read(
                &mut sys.phys,
                hypertee_mem::addr::PhysAddr(frames[page].base().0 + off),
                key,
                &mut buf[done..done + take],
            )?;
            done += take;
            pos += take as u64;
        }
        Ok(())
    }

    /// Writes guest memory through the CVM's key.
    ///
    /// # Errors
    ///
    /// `BadState` unless active; bounds and memory faults otherwise.
    pub fn cvm_write(
        &mut self,
        ctx: &mut EmsContext<'_>,
        id: CvmId,
        offset: u64,
        data: &[u8],
    ) -> EmsResult<()> {
        let cvm = self.cvm(id)?;
        if cvm.state != CvmState::Active {
            return Err(EmsError::BadState);
        }
        let key = cvm.key.ok_or(EmsError::BadState)?;
        if offset + data.len() as u64 > cvm.pages * PAGE_SIZE {
            return Err(EmsError::InvalidArgument);
        }
        let frames = cvm.frames.clone();
        let mut done = 0usize;
        let mut pos = offset;
        while done < data.len() {
            let page = (pos / PAGE_SIZE) as usize;
            let off = pos % PAGE_SIZE;
            let take = ((PAGE_SIZE - off) as usize).min(data.len() - done);
            let sys = &mut *ctx.sys;
            sys.engine.write(
                &mut sys.phys,
                hypertee_mem::addr::PhysAddr(frames[page].base().0 + off),
                key,
                &data[done..done + take],
            )?;
            done += take;
            pos += take as u64;
        }
        Ok(())
    }

    /// CVM snapshot/save (§IX): encrypts every guest page under the
    /// EMS-private snapshot key, builds a Merkle tree over the ciphertext,
    /// stores (key, root, sequence) in EMS private memory, releases the
    /// guest frames, and returns the ciphertext pages for the host to park
    /// on disk.
    ///
    /// # Errors
    ///
    /// `BadState` unless active.
    pub fn cvm_save(&mut self, ctx: &mut EmsContext<'_>, id: CvmId) -> EmsResult<CvmSnapshot> {
        let (key, snap_key, frames, seq) = {
            let cvm = self.cvm(id)?;
            if cvm.state != CvmState::Active {
                return Err(EmsError::BadState);
            }
            let seq = cvm.snapshot_root.map(|(_, s)| s + 1).unwrap_or(0);
            (
                cvm.key.ok_or(EmsError::BadState)?,
                cvm.snap_key,
                cvm.frames.clone(),
                seq,
            )
        };
        let cipher = Aes128::new(&snap_key);
        let mut pages = Vec::with_capacity(frames.len());
        for (i, frame) in frames.iter().enumerate() {
            // Read plaintext through the CVM key, then snapshot-encrypt.
            let mut page = vec![0u8; PAGE_SIZE as usize];
            let sys = &mut *ctx.sys;
            sys.engine
                .read(&mut sys.phys, frame.base(), key, &mut page)?;
            cipher.ctr_apply(&ctr_iv(i as u64, seq), &mut page);
            pages.push(page);
        }
        let tree = MerkleTree::build(&pages);
        let proofs = (0..pages.len()).map(|i| tree.prove(i)).collect();
        // Release guest memory and the KeyID.
        for frame in frames {
            self.ownership
                .release(frame, PageOwner::EmsPrivate)
                .map_err(|_| EmsError::AccessDenied)?;
            self.pool.give_back(frame, ctx.sys)?;
        }
        ctx.hub.ems_revoke_key(&self.cap, &mut ctx.sys.engine, key);
        self.free_keyid(key);
        let cvm = self.cvm_mut(id)?;
        cvm.frames = Vec::new();
        cvm.key = None;
        cvm.state = CvmState::Saved;
        cvm.snapshot_root = Some((tree.root(), seq));
        Ok(CvmSnapshot {
            cvm: id,
            sequence: seq,
            pages,
            proofs,
        })
    }

    /// CVM restore (§IX): verifies every ciphertext page against the
    /// EMS-held root hash (catching tampering *and* rollback to an older
    /// sequence), decrypts, and repopulates fresh guest memory under a new
    /// KeyID.
    ///
    /// # Errors
    ///
    /// `AccessDenied` on any integrity or rollback violation; `BadState`
    /// unless saved.
    pub fn cvm_restore(
        &mut self,
        ctx: &mut EmsContext<'_>,
        snapshot: &CvmSnapshot,
    ) -> EmsResult<()> {
        let (root, seq, nonce, pages_expected, snap_key) = {
            let cvm = self.cvm(snapshot.cvm)?;
            if cvm.state != CvmState::Saved {
                return Err(EmsError::BadState);
            }
            let (root, seq) = cvm.snapshot_root.ok_or(EmsError::BadState)?;
            (root, seq, cvm.key_nonce, cvm.pages, cvm.snap_key)
        };
        if snapshot.sequence != seq
            || snapshot.pages.len() as u64 != pages_expected
            || snapshot.proofs.len() != snapshot.pages.len()
        {
            return Err(EmsError::AccessDenied);
        }
        // Verify every page against the EMS-private root before any decrypt.
        for (i, (page, proof)) in snapshot.pages.iter().zip(&snapshot.proofs).enumerate() {
            if proof.index != i || !MerkleTree::verify(&root, page, proof) {
                return Err(EmsError::AccessDenied);
            }
        }
        let cipher = Aes128::new(&snap_key);
        let key = self.alloc_keyid(ctx)?;
        let (aes, mac) = self.cvm_memory_keys(&nonce);
        ctx.hub
            .ems_program_key(&self.cap, &mut ctx.sys.engine, key, &aes, &mac);
        let mut frames = Vec::with_capacity(snapshot.pages.len());
        for (i, ct) in snapshot.pages.iter().enumerate() {
            let mut page = ct.clone();
            cipher.ctr_apply(&ctr_iv(i as u64, seq), &mut page);
            let frame = self.pool.take(ctx.os_frames, ctx.sys)?;
            self.ownership
                .claim(frame, PageOwner::EmsPrivate)
                .map_err(|_| EmsError::AccessDenied)?;
            let sys = &mut *ctx.sys;
            sys.engine.write(&mut sys.phys, frame.base(), key, &page)?;
            frames.push(frame);
        }
        let cvm = self.cvm_mut(snapshot.cvm)?;
        cvm.frames = frames;
        cvm.key = Some(key);
        cvm.state = CvmState::Active;
        Ok(())
    }

    /// Destroys a CVM, zeroing and reclaiming its memory.
    ///
    /// # Errors
    ///
    /// `NotFound` for unknown ids.
    pub fn cvm_destroy(&mut self, ctx: &mut EmsContext<'_>, id: CvmId) -> EmsResult<()> {
        let cvm = self.cvms.remove(&id.0).ok_or(EmsError::NotFound)?;
        for frame in cvm.frames {
            self.ownership
                .release(frame, PageOwner::EmsPrivate)
                .map_err(|_| EmsError::AccessDenied)?;
            self.pool.give_back(frame, ctx.sys)?;
        }
        if let Some(key) = cvm.key {
            ctx.hub.ems_revoke_key(&self.cap, &mut ctx.sys.engine, key);
            self.free_keyid(key);
        }
        Ok(())
    }

    /// Migration step ①, destination side: produce an offer — an ephemeral
    /// channel key bound to this platform's quote.
    pub fn migration_offer(&mut self) -> (MigrationOffer, MigrationOfferPriv) {
        let channel = EcdhPrivate::generate(&mut self.rng);
        let rd = sha256(&channel.public.to_bytes());
        let quote = self.platform_quote(rd);
        (
            MigrationOffer {
                channel_pub: channel.public,
                quote,
            },
            MigrationOfferPriv { channel },
        )
    }

    /// Migration step ②, source side: verify the destination's platform
    /// quote against the trusted manufacturer EK, snapshot the CVM, wrap its
    /// secrets under the ECDH channel key, and emit the bundle. The CVM is
    /// marked `MigratedOut` locally.
    ///
    /// # Errors
    ///
    /// `AccessDenied` when the destination quote fails verification.
    pub fn migrate_out(
        &mut self,
        ctx: &mut EmsContext<'_>,
        id: CvmId,
        offer: &MigrationOffer,
        trusted_ek: &PublicKey,
    ) -> EmsResult<MigrationBundle> {
        // Remote attestation of the destination node (§IX).
        if !offer.quote.verify(trusted_ek) {
            return Err(EmsError::AccessDenied);
        }
        let rd = sha256(&offer.channel_pub.to_bytes());
        if !ct_eq(&offer.quote.report_data, &rd) {
            return Err(EmsError::AccessDenied);
        }
        let snapshot = self.cvm_save(ctx, id)?;
        let (nonce, root_seq, measurement, pages, snap_key) = {
            let cvm = self.cvm(id)?;
            (
                cvm.key_nonce,
                cvm.snapshot_root.ok_or(EmsError::BadState)?,
                cvm.measurement,
                cvm.pages,
                cvm.snap_key,
            )
        };
        // Encrypted channel for the key material.
        let eph = EcdhPrivate::generate(&mut self.rng);
        let channel_key = eph
            .shared_key(&offer.channel_pub)
            .map_err(|_| EmsError::AccessDenied)?;
        let mut secrets = pack_secrets(
            &nonce,
            &root_seq.0,
            root_seq.1,
            &measurement,
            pages,
            &snap_key,
        );
        Aes128::new(channel_key[..16].try_into().expect("16"))
            .ctr_apply(&ctr_iv(0x4d49_4752, 0), &mut secrets);
        let mut mac_input = Vec::new();
        mac_input.extend_from_slice(&secrets);
        mac_input.extend_from_slice(&root_seq.0);
        for p in &snapshot.pages {
            mac_input.extend_from_slice(&sha256(p));
        }
        let mac = hmac_sha256(&channel_key, &mac_input);
        let cvm = self.cvm_mut(id)?;
        cvm.state = CvmState::MigratedOut;
        Ok(MigrationBundle {
            snapshot,
            source_pub: eph.public,
            wrapped_secrets: secrets,
            mac,
        })
    }

    /// Migration step ③, destination side: derive the channel key, verify
    /// the bundle MAC, unwrap the secrets, verify every page against the
    /// transported root, and install the CVM locally.
    ///
    /// # Errors
    ///
    /// `AccessDenied` on MAC, root, or proof failures.
    pub fn migrate_in(
        &mut self,
        ctx: &mut EmsContext<'_>,
        bundle: &MigrationBundle,
        offer_priv: &MigrationOfferPriv,
    ) -> EmsResult<CvmId> {
        let channel_key = offer_priv
            .channel
            .shared_key(&bundle.source_pub)
            .map_err(|_| EmsError::AccessDenied)?;
        let mut secrets = bundle.wrapped_secrets.clone();
        Aes128::new(channel_key[..16].try_into().expect("16"))
            .ctr_apply(&ctr_iv(0x4d49_4752, 0), &mut secrets);
        let (nonce, root, seq, measurement, pages, snap_key) =
            unpack_secrets(&secrets).ok_or(EmsError::AccessDenied)?;
        // Verify the bundle MAC (over the *wrapped* secrets + page digests).
        let mut mac_input = Vec::new();
        mac_input.extend_from_slice(&bundle.wrapped_secrets);
        mac_input.extend_from_slice(&root);
        for p in &bundle.snapshot.pages {
            mac_input.extend_from_slice(&sha256(p));
        }
        if !ct_eq(&hmac_sha256(&channel_key, &mac_input), &bundle.mac) {
            return Err(EmsError::AccessDenied);
        }
        if bundle.snapshot.pages.len() as u64 != pages || bundle.snapshot.sequence != seq {
            return Err(EmsError::AccessDenied);
        }
        // Install a control structure in Saved state, then restore.
        let id = CvmId(self.fresh_cvm_id());
        self.cvms.insert(
            id.0,
            CvmControl {
                id,
                state: CvmState::Saved,
                frames: Vec::new(),
                pages,
                key: None,
                key_nonce: nonce,
                measurement,
                snapshot_root: Some((root, seq)),
                snap_key,
            },
        );
        let relabelled = CvmSnapshot {
            cvm: id,
            sequence: seq,
            pages: bundle.snapshot.pages.clone(),
            proofs: bundle.snapshot.proofs.clone(),
        };
        self.cvm_restore(ctx, &relabelled)?;
        Ok(id)
    }

    /// The measurement of a CVM's deployed image.
    ///
    /// # Errors
    ///
    /// `NotFound` for unknown ids.
    pub fn cvm_measurement(&self, id: CvmId) -> EmsResult<[u8; 32]> {
        Ok(self.cvm(id)?.measurement)
    }

    /// The state of a CVM.
    ///
    /// # Errors
    ///
    /// `NotFound` for unknown ids.
    pub fn cvm_state(&self, id: CvmId) -> EmsResult<CvmState> {
        Ok(self.cvm(id)?.state)
    }
}
