//! The Enclave Management Subsystem (EMS) runtime.
//!
//! This crate is the reproduction of the paper's central artifact: the
//! software that runs on the HyperTEE IP's private cores and implements all
//! sixteen enclave primitives of Table II (the paper's original is "3843
//! lines of memory-safe Rust", §VIII-A). It is organised as:
//!
//! * [`boot`] — the secure-boot chain (§VI): eFuse root keys, BootROM
//!   verification of the encrypted EMS runtime image, verification of the CS
//!   firmware/EMCall before the CS OS starts.
//! * [`keys`] — the key vault: EK/SK roots, derivation of memory, sealing,
//!   attestation, report, and shared-memory keys; erasure with random values.
//! * [`control`] — enclave control structures and life-cycle states.
//! * [`mempool`] — the enclave memory pool with randomized-threshold growth
//!   that hides allocation events from the CS OS (§IV-A).
//! * [`lifecycle`] — ECREATE / EADD / EENTER / ERESUME / EEXIT / EDESTROY.
//! * [`memmgmt`] — EALLOC / EFREE / EWB with randomized swap selection.
//! * [`shm`] — shared-memory management: ShmIDs, legal connection lists,
//!   permission and active-connection checks, device grants (§V).
//! * [`attest`] — measurement, remote attestation (SIGMA), local
//!   attestation (ECDH + report key), and data sealing (§VI).
//! * [`runtime`] — the [`runtime::Ems`] dispatcher: fetches primitive
//!   requests from the iHub mailbox, sanity-checks arguments, executes, and
//!   responds.
//! * [`txn`] — primitive-scoped transactions: a step counter (the abort
//!   injection point) plus an undo log, so mid-primitive faults roll back
//!   instead of leaving the pool/ownership/bitmap/page-table disagreeing.
//!
//! All state the paper keeps in EMS private memory (ownership table, control
//! structures, pool bookkeeping, keys) is private to [`runtime::Ems`];
//! CS-side code interacts exclusively through mailbox packets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attest;
pub mod boot;
pub mod control;
pub mod cvm;
pub mod error;
pub mod keys;
pub mod lifecycle;
pub mod memmgmt;
pub mod mempool;
pub mod runtime;
pub mod scheduler;
pub mod shm;
pub mod txn;
