//! The enclave memory pool (§IV-A).
//!
//! "EMS proactively requests pages from CS OS and stores them in an enclave
//! memory pool. When new requests arrive, they can obtain pages directly
//! from this pool without notifying CS OS. This method conceals the
//! allocation events effectively… the pool is dynamically enlarged when the
//! number of used pages exceeds a threshold set by EMS. Furthermore, this
//! threshold is randomized once the pool enlarges."
//!
//! Pages entering the pool are zeroed and marked enclave in the bitmap, so
//! the CS OS observes only coarse, batched growth events — never individual
//! enclave allocations.

use crate::error::{EmsError, EmsResult};
use hypertee_crypto::chacha::ChaChaRng;
use hypertee_mem::addr::Ppn;
use hypertee_mem::phys::FrameAllocator;
use hypertee_mem::system::MemorySystem;

/// Pool observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Growth events visible to the CS OS.
    pub growth_events: u64,
    /// Frames requested from the CS OS in total.
    pub frames_from_os: u64,
    /// Pages handed to enclaves (invisible to CS OS).
    pub pages_served: u64,
    /// Pages returned by enclaves.
    pub pages_returned: u64,
}

/// The enclave memory pool.
#[derive(Debug)]
pub struct MemPool {
    free: Vec<Ppn>,
    used: u64,
    threshold: u64,
    grow_chunk: u64,
    rng: ChaChaRng,
    /// Counters.
    pub stats: PoolStats,
}

impl MemPool {
    /// Creates a pool that grows in `grow_chunk`-frame batches.
    pub fn new(grow_chunk: u64, rng: ChaChaRng) -> Self {
        MemPool {
            free: Vec::new(),
            used: 0,
            threshold: grow_chunk / 2,
            grow_chunk,
            rng,
            stats: PoolStats::default(),
        }
    }

    /// Frames currently free in the pool.
    pub fn free_frames(&self) -> u64 {
        self.free.len() as u64
    }

    /// Frames currently in use by enclaves.
    pub fn used_frames(&self) -> u64 {
        self.used
    }

    /// Current growth threshold (randomized; exposed for tests).
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Requests `n` frames from the CS OS: zeroes them and marks them as
    /// enclave memory in the bitmap — the only pool operation the OS can
    /// observe.
    ///
    /// # Errors
    ///
    /// [`EmsError::Exhausted`] when the OS has no frames left.
    fn grow(&mut self, n: u64, os: &mut FrameAllocator, sys: &mut MemorySystem) -> EmsResult<()> {
        for _ in 0..n {
            let frame = os.alloc().ok_or(EmsError::Exhausted)?;
            sys.phys.zero_frame(frame)?;
            sys.bitmap.set(frame, true, &mut sys.phys)?;
            self.free.push(frame);
            self.stats.frames_from_os += 1;
        }
        self.stats.growth_events += 1;
        Ok(())
    }

    /// Ensures at least `n` free frames, growing (and re-randomizing the
    /// threshold) if needed.
    ///
    /// # Errors
    ///
    /// [`EmsError::Exhausted`] when the OS cannot supply enough frames.
    pub fn ensure(
        &mut self,
        n: u64,
        os: &mut FrameAllocator,
        sys: &mut MemorySystem,
    ) -> EmsResult<()> {
        if (self.free.len() as u64) < n {
            let deficit = n - self.free.len() as u64;
            let batch = deficit.max(self.grow_chunk);
            self.grow(batch, os, sys)?;
            self.randomize_threshold();
        }
        Ok(())
    }

    fn randomize_threshold(&mut self) {
        // Threshold sits somewhere in [used + chunk/4, used + chunk), so an
        // attacker cannot reverse-engineer when the next growth will fire.
        let jitter = self.rng.gen_range((self.grow_chunk * 3 / 4).max(1));
        self.threshold = self.used + self.grow_chunk / 4 + jitter;
    }

    /// Takes one page for an enclave. Grows proactively when `used` crosses
    /// the randomized threshold, so individual takes stay invisible.
    ///
    /// # Errors
    ///
    /// [`EmsError::Exhausted`] when neither the pool nor the OS can supply.
    pub fn take(&mut self, os: &mut FrameAllocator, sys: &mut MemorySystem) -> EmsResult<Ppn> {
        if self.free.is_empty() {
            self.ensure(1, os, sys)?;
        }
        let frame = self.free.pop().ok_or(EmsError::Exhausted)?;
        self.used += 1;
        self.stats.pages_served += 1;
        if self.used > self.threshold {
            // Proactive growth ahead of demand; ignore exhaustion here —
            // the hard failure surfaces on the take that actually needs it.
            let _ = self.grow(self.grow_chunk, os, sys);
            self.randomize_threshold();
        }
        Ok(frame)
    }

    /// Returns a page from an enclave to the pool. The page is zeroed
    /// immediately (it stays enclave-marked while pooled).
    ///
    /// # Errors
    ///
    /// Propagates memory faults from zeroing.
    pub fn give_back(&mut self, frame: Ppn, sys: &mut MemorySystem) -> EmsResult<()> {
        sys.phys.zero_frame(frame)?;
        self.free.push(frame);
        self.used = self.used.saturating_sub(1);
        self.stats.pages_returned += 1;
        Ok(())
    }

    /// Removes `n` random free frames from the pool for swap-out (EWB's
    /// randomized selection, §IV-A): zeroes them, clears their bitmap bits,
    /// and returns them for the CS OS to reclaim.
    ///
    /// # Errors
    ///
    /// [`EmsError::Exhausted`] when fewer than `n` free frames exist even
    /// after attempting growth.
    pub fn evict_random(
        &mut self,
        n: u64,
        os: &mut FrameAllocator,
        sys: &mut MemorySystem,
    ) -> EmsResult<Vec<Ppn>> {
        self.ensure(n, os, sys)?;
        self.rng.shuffle(&mut self.free);
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let frame = self.free.pop().ok_or(EmsError::Exhausted)?;
            sys.phys.zero_frame(frame)?;
            sys.bitmap.set(frame, false, &mut sys.phys)?;
            out.push(frame);
        }
        Ok(out)
    }

    /// Random swap-count jitter for EWB (§IV-A ③: "randomly selects the
    /// number and specific pages involved").
    pub fn swap_jitter(&mut self, requested: u64) -> u64 {
        requested + self.rng.gen_range(requested.max(1))
    }

    /// The pool's free list (read-only; feeds the consistency audit).
    pub fn free_list(&self) -> &[Ppn] {
        &self.free
    }

    /// Pulls a *specific* frame back out of the free list (undo of a
    /// rolled-back `give_back`).
    ///
    /// # Errors
    ///
    /// [`EmsError::NotFound`] if the frame is not currently pooled.
    pub(crate) fn retake(&mut self, frame: Ppn) -> EmsResult<()> {
        let idx = self
            .free
            .iter()
            .position(|f| *f == frame)
            .ok_or(EmsError::NotFound)?;
        self.free.swap_remove(idx);
        self.used += 1;
        self.stats.pages_returned = self.stats.pages_returned.saturating_sub(1);
        Ok(())
    }

    /// Evicts one random free frame for swap-out: zeroes it and clears its
    /// bitmap bit. The per-frame sibling of [`MemPool::evict_random`], so a
    /// transactional EWB can abort between frames.
    ///
    /// # Errors
    ///
    /// [`EmsError::Exhausted`] when no free frame can be obtained; memory
    /// faults from zeroing/bitmap updates.
    pub(crate) fn evict_one(
        &mut self,
        os: &mut FrameAllocator,
        sys: &mut MemorySystem,
    ) -> EmsResult<Ppn> {
        self.ensure(1, os, sys)?;
        let idx = self.rng.gen_range(self.free.len().max(1) as u64) as usize;
        let frame = if idx < self.free.len() {
            self.free.swap_remove(idx)
        } else {
            return Err(EmsError::Exhausted);
        };
        sys.phys.zero_frame(frame)?;
        sys.bitmap.set(frame, false, &mut sys.phys)?;
        Ok(frame)
    }

    /// Undoes [`MemPool::evict_one`]: re-marks the frame as enclave memory
    /// and puts it back on the free list (it is already zeroed).
    ///
    /// # Errors
    ///
    /// Memory faults from the bitmap update.
    pub(crate) fn unevict(&mut self, frame: Ppn, sys: &mut MemorySystem) -> EmsResult<()> {
        sys.bitmap.set(frame, true, &mut sys.phys)?;
        self.free.push(frame);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertee_mem::addr::PhysAddr;

    fn setup() -> (MemorySystem, FrameAllocator, MemPool) {
        let sys = MemorySystem::new(64 << 20, PhysAddr(0x4000));
        let os = FrameAllocator::new(Ppn(64), Ppn(16000));
        let pool = MemPool::new(32, ChaChaRng::from_u64(7));
        (sys, os, pool)
    }

    #[test]
    fn take_serves_and_marks_enclave() {
        let (mut sys, mut os, mut pool) = setup();
        let frame = pool.take(&mut os, &mut sys).unwrap();
        assert!(sys.bitmap.is_enclave(frame, &mut sys.phys).unwrap());
        assert_eq!(pool.used_frames(), 1);
    }

    #[test]
    fn growth_is_batched_not_per_take() {
        let (mut sys, mut os, mut pool) = setup();
        for _ in 0..20 {
            pool.take(&mut os, &mut sys).unwrap();
        }
        // 20 takes but far fewer OS-visible growth events: the concealment
        // property the pool exists for.
        assert!(
            pool.stats.growth_events <= 3,
            "events = {}",
            pool.stats.growth_events
        );
        assert_eq!(pool.stats.pages_served, 20);
    }

    #[test]
    fn threshold_randomizes_on_growth() {
        let (mut sys, mut os, mut pool) = setup();
        let mut thresholds = std::collections::BTreeSet::new();
        for _ in 0..200 {
            pool.take(&mut os, &mut sys).unwrap();
            thresholds.insert(pool.threshold());
        }
        assert!(thresholds.len() > 3, "threshold must vary: {thresholds:?}");
    }

    #[test]
    fn give_back_zeroes() {
        let (mut sys, mut os, mut pool) = setup();
        let frame = pool.take(&mut os, &mut sys).unwrap();
        sys.phys.write(frame.base(), &[0x5a; 64]).unwrap();
        pool.give_back(frame, &mut sys).unwrap();
        let mut buf = [0xffu8; 64];
        sys.phys.read(frame.base(), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64], "returned pages must be zeroed");
    }

    #[test]
    fn evict_random_clears_bitmap() {
        let (mut sys, mut os, mut pool) = setup();
        pool.ensure(16, &mut os, &mut sys).unwrap();
        let evicted = pool.evict_random(4, &mut os, &mut sys).unwrap();
        assert_eq!(evicted.len(), 4);
        for f in &evicted {
            assert!(!sys.bitmap.is_enclave(*f, &mut sys.phys).unwrap());
        }
    }

    #[test]
    fn evict_random_varies_selection() {
        // Two pools with different RNG seeds evict different frame sets.
        let (mut sys, mut os, mut pool_a) = setup();
        pool_a.ensure(32, &mut os, &mut sys).unwrap();
        let a = pool_a.evict_random(8, &mut os, &mut sys).unwrap();
        let (mut sys2, mut os2, _) = setup();
        let mut pool_b = MemPool::new(32, ChaChaRng::from_u64(99));
        pool_b.ensure(32, &mut os2, &mut sys2).unwrap();
        let b = pool_b.evict_random(8, &mut os2, &mut sys2).unwrap();
        assert_ne!(a, b, "random selection must differ across seeds");
    }

    #[test]
    fn swap_jitter_at_least_requested() {
        let (_, _, mut pool) = setup();
        for req in [1u64, 4, 16] {
            let k = pool.swap_jitter(req);
            assert!(k >= req && k < req * 2 + 1);
        }
    }

    #[test]
    fn exhaustion_reported() {
        let mut sys = MemorySystem::new(4 << 20, PhysAddr(0x1000));
        let mut os = FrameAllocator::new(Ppn(16), Ppn(20)); // only 4 frames
        let mut pool = MemPool::new(2, ChaChaRng::from_u64(1));
        let mut taken = 0;
        loop {
            match pool.take(&mut os, &mut sys) {
                Ok(_) => taken += 1,
                Err(EmsError::Exhausted) => break,
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert_eq!(taken, 4);
    }
}
