//! The EMS key vault (§VI, "Key management").
//!
//! "HyperTEE derives all keys from the root keys, including Endorsement Key
//! (EK) issued by certificate authority and Sealed Key (SK) randomly
//! generated. Both EK and SK are burnt into the eFuse of EMS during
//! manufacturing… All key operations are carried out on EMS and are
//! invisible to CS. When keys are no longer useful, EMS erases them with
//! random values."

use hypertee_crypto::chacha::ChaChaRng;
use hypertee_crypto::hmac::{kdf, kdf_aes128};
use hypertee_crypto::sig::Keypair;

/// The one-time-programmable eFuse contents burnt at manufacturing.
#[derive(Clone)]
pub struct EFuse {
    /// Endorsement-key material (the CA-issued identity root).
    pub ek_material: [u8; 32],
    /// Sealed Key: the randomly generated symmetric root.
    pub sk: [u8; 32],
}

impl core::fmt::Debug for EFuse {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "EFuse {{ <one-time-programmable, redacted> }}")
    }
}

impl EFuse {
    /// "Burns" an eFuse at manufacturing time from a manufacturing RNG.
    pub fn burn(rng: &mut ChaChaRng) -> EFuse {
        EFuse {
            ek_material: rng.gen_bytes32(),
            sk: rng.gen_bytes32(),
        }
    }
}

/// The key vault living in EMS private memory.
pub struct KeyVault {
    efuse: EFuse,
    /// Endorsement keypair (platform identity).
    pub ek: Keypair,
    /// Attestation keypair, derived from SK and a random salt (§VI).
    pub ak: Keypair,
    /// The AK derivation salt (public, part of the platform certificate).
    pub ak_salt: [u8; 32],
}

impl core::fmt::Debug for KeyVault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "KeyVault {{ <EMS-private, redacted> }}")
    }
}

impl KeyVault {
    /// Opens the vault from the eFuse at EMS boot.
    pub fn open(efuse: EFuse, rng: &mut ChaChaRng) -> KeyVault {
        let ek = Keypair::from_key_material(&efuse.ek_material);
        let ak_salt = rng.gen_bytes32();
        let ak_material = kdf(&efuse.sk, b"attestation-key", &ak_salt);
        let ak = Keypair::from_key_material(&ak_material);
        KeyVault {
            efuse,
            ek,
            ak,
            ak_salt,
        }
    }

    /// The raw sealed key, crate-internal (CVM key derivations in `cvm.rs`).
    pub(crate) fn sk(&self) -> [u8; 32] {
        self.efuse.sk
    }

    /// Derives an enclave's private memory-encryption key (AES-128) and the
    /// matching integrity MAC key.
    pub fn enclave_memory_keys(&self, enclave_id: u64, nonce: &[u8; 32]) -> ([u8; 16], [u8; 32]) {
        let mut ctx = Vec::with_capacity(40);
        ctx.extend_from_slice(&enclave_id.to_le_bytes());
        ctx.extend_from_slice(nonce);
        let aes = kdf_aes128(&self.efuse.sk, b"enclave-memory", &ctx);
        let mac = kdf(&self.efuse.sk, b"enclave-memory-mac", &ctx);
        (aes, mac)
    }

    /// Derives a shared-memory key from the initial sender's enclave ID and
    /// the ShmID assigned by EMS (§V-A: "derive keys using the initial
    /// sender EnclaveID and the shared memory identification").
    pub fn shm_keys(&self, sender_id: u64, shm_id: u64) -> ([u8; 16], [u8; 32]) {
        let mut ctx = [0u8; 16];
        ctx[..8].copy_from_slice(&sender_id.to_le_bytes());
        ctx[8..].copy_from_slice(&shm_id.to_le_bytes());
        let aes = kdf_aes128(&self.efuse.sk, b"shm-key", &ctx);
        let mac = kdf(&self.efuse.sk, b"shm-mac", &ctx);
        (aes, mac)
    }

    /// Derives the sealing key for an enclave measurement (§VI, "Data
    /// sealing": "based on the enclave measurement and the device-unique SK").
    pub fn sealing_key(&self, measurement: &[u8; 32]) -> [u8; 32] {
        kdf(&self.efuse.sk, b"sealing", measurement)
    }

    /// Derives the local-attestation report key from the *challenger's*
    /// measurement and SK (§VI, "Local attestation").
    pub fn report_key(&self, challenger_measurement: &[u8; 32]) -> [u8; 32] {
        kdf(&self.efuse.sk, b"report", challenger_measurement)
    }

    /// Erases a key buffer with random values (§VI) — the vault's helper for
    /// transient key material handed to other modules.
    pub fn erase(key: &mut [u8], rng: &mut ChaChaRng) {
        rng.fill_bytes(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vault() -> KeyVault {
        let mut rng = ChaChaRng::from_u64(2024);
        let efuse = EFuse::burn(&mut rng);
        KeyVault::open(efuse, &mut rng)
    }

    #[test]
    fn ek_is_stable_per_efuse() {
        let mut rng = ChaChaRng::from_u64(1);
        let efuse = EFuse::burn(&mut rng);
        let v1 = KeyVault::open(efuse.clone(), &mut ChaChaRng::from_u64(2));
        let v2 = KeyVault::open(efuse, &mut ChaChaRng::from_u64(3));
        assert_eq!(v1.ek.public, v2.ek.public, "EK is an eFuse-rooted identity");
        // AK differs because its salt is random per boot.
        assert_ne!(v1.ak.public, v2.ak.public);
    }

    #[test]
    fn per_enclave_keys_differ() {
        let v = vault();
        let (a1, m1) = v.enclave_memory_keys(1, &[0; 32]);
        let (a2, m2) = v.enclave_memory_keys(2, &[0; 32]);
        assert_ne!(a1, a2);
        assert_ne!(m1, m2);
        // Same enclave, different nonce → different keys (fresh per create).
        let (a3, _) = v.enclave_memory_keys(1, &[1; 32]);
        assert_ne!(a1, a3);
    }

    #[test]
    fn shm_keys_bind_sender_and_shmid() {
        let v = vault();
        let (k1, _) = v.shm_keys(1, 10);
        let (k2, _) = v.shm_keys(2, 10);
        let (k3, _) = v.shm_keys(1, 11);
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
    }

    #[test]
    fn sealing_key_binds_measurement() {
        let v = vault();
        assert_ne!(v.sealing_key(&[1; 32]), v.sealing_key(&[2; 32]));
        // Deterministic for the same measurement (unsealing works later).
        assert_eq!(v.sealing_key(&[1; 32]), v.sealing_key(&[1; 32]));
    }

    #[test]
    fn report_key_binds_challenger() {
        let v = vault();
        assert_ne!(v.report_key(&[1; 32]), v.report_key(&[2; 32]));
    }

    #[test]
    fn erase_overwrites() {
        let mut rng = ChaChaRng::from_u64(5);
        let mut key = [0xaau8; 32];
        KeyVault::erase(&mut key, &mut rng);
        assert_ne!(key, [0xaau8; 32]);
    }
}
