//! Enclave life-cycle primitives: ECREATE, EADD, EMEAS, EENTER, ERESUME,
//! EEXIT, EDESTROY (Table II, §IV-A).

use crate::control::{layout, EnclaveConfig, EnclaveControl, EnclaveState};
use crate::error::{EmsError, EmsResult};
use crate::runtime::{Ems, EmsContext, StagedFrames};
use hypertee_mem::addr::{KeyId, PhysAddr, Ppn, VirtAddr, PAGE_SIZE};
use hypertee_mem::ownership::{EnclaveId, PageOwner};
use hypertee_mem::pagetable::{PageTable, Perms};

fn perms_from_bits(bits: u8) -> Perms {
    Perms { r: bits & 1 != 0, w: bits & 2 != 0, x: bits & 4 != 0, u: true }
}

fn perm_bits(p: Perms) -> u8 {
    (p.r as u8) | ((p.w as u8) << 1) | ((p.x as u8) << 2)
}

impl Ems {
    /// ECREATE: builds a new enclave — dedicated page table in enclave
    /// memory, fresh KeyID and derived keys, statically allocated stack, and
    /// the HostApp shared window (§IV-A "Data movement between HostApp and
    /// Enclave").
    ///
    /// `host_shared_pa` is the page-aligned base of the OS-provided frames
    /// backing the shared window (plaintext, *not* enclave memory).
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for unaligned/oversized configs, `Exhausted` when
    /// frames or KeyIDs run out, `AccessDenied` when the proposed host
    /// window overlaps enclave memory.
    pub fn ecreate(
        &mut self,
        ctx: &mut EmsContext<'_>,
        config: EnclaveConfig,
        host_shared_pa: u64,
    ) -> EmsResult<EnclaveId> {
        // Sanity checks (§III-B ③).
        if host_shared_pa % PAGE_SIZE != 0
            || config.heap_max > (layout::HOST_SHARED_BASE.0 - layout::HEAP_BASE.0)
            || config.stack_bytes > (layout::HEAP_BASE.0 - layout::STACK_BASE.0)
            || config.host_shared_bytes > (layout::SHM_BASE.0 - layout::HOST_SHARED_BASE.0)
        {
            return Err(EmsError::InvalidArgument);
        }
        let stack_pages = config.stack_bytes.div_ceil(PAGE_SIZE);
        let host_pages = config.host_shared_bytes.div_ceil(PAGE_SIZE);
        // The host window must not point at enclave memory.
        for i in 0..host_pages {
            let ppn = Ppn(host_shared_pa / PAGE_SIZE + i);
            if self.pool_bitmap_is_enclave(ctx, ppn)? {
                return Err(EmsError::AccessDenied);
            }
        }

        let eid = self.fresh_eid();
        let key = self.alloc_keyid(ctx)?;
        let nonce = self.rng.gen_bytes32();
        let (aes, mac) = self.vault.enclave_memory_keys(eid.0, &nonce);
        ctx.hub.ems_program_key(&self.cap, &mut ctx.sys.engine, key, &aes, &mac);

        // Stage frames for the page-table skeleton plus per-region leaves.
        let pt_budget = 6 + stack_pages.div_ceil(512) + host_pages.div_ceil(512);
        let mut staged = StagedFrames::stage(pt_budget, &mut self.pool, ctx)?;
        let table = PageTable::new(&mut staged, &mut ctx.sys.phys);

        // Statically allocate and map the stack (enclave-encrypted).
        let mut data_frames = Vec::new();
        for i in 0..stack_pages {
            let frame = self.pool.take(ctx.os_frames, ctx.sys)?;
            self.ownership
                .claim(frame, PageOwner::Enclave(eid))
                .map_err(|_| EmsError::AccessDenied)?;
            // Establish integrity MACs by writing zeros through the key.
            let sys = &mut *ctx.sys;
            sys.engine.write(&mut sys.phys, frame.base(), key, &[0u8; PAGE_SIZE as usize])?;
            table.map(
                VirtAddr(layout::STACK_BASE.0 + i * PAGE_SIZE),
                frame,
                Perms::RW,
                key,
                &mut staged,
                &mut ctx.sys.phys,
            )?;
            data_frames.push(frame);
        }

        // Map the HostApp shared window (plaintext KeyID 0).
        for i in 0..host_pages {
            let ppn = Ppn(host_shared_pa / PAGE_SIZE + i);
            table.map(
                VirtAddr(layout::HOST_SHARED_BASE.0 + i * PAGE_SIZE),
                ppn,
                Perms::RW,
                KeyId::HOST,
                &mut staged,
                &mut ctx.sys.phys,
            )?;
        }

        let pt_frames = staged.unstage(&mut self.pool, ctx);
        for f in &pt_frames {
            self.ownership
                .claim(*f, PageOwner::EmsPrivate)
                .map_err(|_| EmsError::AccessDenied)?;
        }

        let mut control = EnclaveControl::new(eid, table, pt_frames, key, nonce, config);
        control.key_nonce = nonce;
        control.data_frames = data_frames;
        self.enclaves.insert(eid.0, control);
        Ok(eid)
    }

    fn pool_bitmap_is_enclave(&mut self, ctx: &mut EmsContext<'_>, ppn: Ppn) -> EmsResult<bool> {
        Ok(ctx.sys.bitmap.is_enclave(ppn, &mut ctx.sys.phys)?)
    }

    /// EADD: copies `len` bytes from CS memory at `src_pa` into the enclave
    /// at `dest_va`, mapping fresh enclave pages with `perm_bits`
    /// (bit 0 = R, 1 = W, 2 = X), and extends the measurement.
    ///
    /// # Errors
    ///
    /// `BadState` after measurement, `InvalidArgument` for bad ranges.
    pub fn eadd(
        &mut self,
        ctx: &mut EmsContext<'_>,
        eid: u64,
        dest_va: u64,
        src_pa: u64,
        len: u64,
        perm_bits: u8,
    ) -> EmsResult<()> {
        let enclave = self.enclave(eid)?;
        if enclave.state != EnclaveState::Building {
            return Err(EmsError::BadState);
        }
        if dest_va % PAGE_SIZE != 0
            || len == 0
            || dest_va < layout::CODE_BASE.0
            || dest_va + len > layout::STACK_BASE.0
        {
            return Err(EmsError::InvalidArgument);
        }
        let key = enclave.key.ok_or(EmsError::BadState)?;
        let table = enclave.page_table;
        let pages = len.div_ceil(PAGE_SIZE);
        let perms = perms_from_bits(perm_bits);
        let mut staged =
            StagedFrames::stage(2 + pages.div_ceil(512), &mut self.pool, ctx)?;
        let mut added = Vec::new();
        for i in 0..pages {
            let frame = self.pool.take(ctx.os_frames, ctx.sys)?;
            self.ownership
                .claim(frame, PageOwner::Enclave(EnclaveId(eid)))
                .map_err(|_| EmsError::AccessDenied)?;
            // EMS reads the image chunk from CS memory (unidirectional
            // access) and writes it through the enclave's key.
            let chunk_len = (len - i * PAGE_SIZE).min(PAGE_SIZE) as usize;
            let mut page_buf = vec![0u8; PAGE_SIZE as usize];
            ctx.sys.phys.read(PhysAddr(src_pa + i * PAGE_SIZE), &mut page_buf[..chunk_len])?;
            let sys = &mut *ctx.sys;
            sys.engine.write(&mut sys.phys, frame.base(), key, &page_buf)?;
            table.map(
                VirtAddr(dest_va + i * PAGE_SIZE),
                frame,
                perms,
                key,
                &mut staged,
                &mut ctx.sys.phys,
            )?;
            added.push((VirtAddr(dest_va + i * PAGE_SIZE), frame, page_buf));
        }
        let pt_frames = staged.unstage(&mut self.pool, ctx);
        for f in &pt_frames {
            self.ownership
                .claim(*f, PageOwner::EmsPrivate)
                .map_err(|_| EmsError::AccessDenied)?;
        }
        let enclave = self.enclave_mut(eid)?;
        enclave.pt_frames.extend(pt_frames);
        for (va, frame, data) in added {
            enclave.extend_measurement(va, perm_bits, &data);
            enclave.data_frames.push(frame);
        }
        let _ = perm_bits;
        Ok(())
    }

    /// EMEAS: finalises the measurement and moves the enclave to `Measured`.
    ///
    /// # Errors
    ///
    /// `BadState` unless the enclave is still building.
    pub fn emeas(&mut self, eid: u64) -> EmsResult<[u8; 32]> {
        let enclave = self.enclave_mut(eid)?;
        if enclave.state != EnclaveState::Building {
            return Err(EmsError::BadState);
        }
        let digest = enclave.finalize_measurement();
        enclave.state = EnclaveState::Measured;
        Ok(digest)
    }

    /// EENTER: transitions to `Running` and returns what EMCall needs for
    /// the atomic context switch: page-table root, entry PC, KeyID.
    ///
    /// # Errors
    ///
    /// `BadState` unless the enclave is `Measured` or `Stopped`.
    pub fn eenter(
        &mut self,
        _ctx: &mut EmsContext<'_>,
        eid: u64,
    ) -> EmsResult<(Ppn, VirtAddr, KeyId)> {
        let enclave = self.enclave_mut(eid)?;
        match enclave.state {
            EnclaveState::Measured | EnclaveState::Stopped => {}
            _ => return Err(EmsError::BadState),
        }
        let key = enclave.key.ok_or(EmsError::BadState)?;
        enclave.state = EnclaveState::Running;
        enclave.switches += 1;
        Ok((enclave.page_table.root, enclave.entry, key))
    }

    /// ERESUME: like EENTER but also revives `Suspended` enclaves by
    /// re-deriving and re-programming their memory key under a fresh KeyID
    /// (§IV-C KeyID exhaustion recovery).
    ///
    /// # Errors
    ///
    /// `BadState` unless `Stopped` or `Suspended`.
    pub fn eresume(
        &mut self,
        ctx: &mut EmsContext<'_>,
        eid: u64,
    ) -> EmsResult<(Ppn, VirtAddr, KeyId)> {
        let state = self.enclave(eid)?.state;
        match state {
            EnclaveState::Stopped => self.eenter(ctx, eid),
            EnclaveState::Suspended => {
                let key = self.alloc_keyid(ctx)?;
                let (nonce, table_root, prev_key) = {
                    let e = self.enclave(eid)?;
                    (e.key_nonce, e.page_table, e.prev_key.ok_or(EmsError::BadState)?)
                };
                let (aes, mac) = self.vault.enclave_memory_keys(eid, &nonce);
                ctx.hub.ems_program_key(&self.cap, &mut ctx.sys.engine, key, &aes, &mac);
                // Rewrite the fresh KeyID into the enclave's own leaf PTEs.
                // Host-window (KeyID 0) and shared-memory PTEs keep theirs.
                let mappings = table_root.mappings(&mut ctx.sys.phys)?;
                for (va, pte) in mappings {
                    if pte.key() == prev_key {
                        table_root.unmap(va, &mut ctx.sys.phys)?;
                        table_root
                            .map_raw(va, pte.ppn(), pte.perms(), key, &mut ctx.sys.phys)?;
                    }
                }
                let enclave = self.enclave_mut(eid)?;
                enclave.key = Some(key);
                enclave.prev_key = None;
                enclave.state = EnclaveState::Running;
                enclave.switches += 1;
                Ok((enclave.page_table.root, enclave.entry, key))
            }
            _ => Err(EmsError::BadState),
        }
    }

    /// EEXIT: transitions `Running` → `Stopped`.
    ///
    /// # Errors
    ///
    /// `BadState` unless running.
    pub fn eexit(&mut self, eid: u64) -> EmsResult<()> {
        let enclave = self.enclave_mut(eid)?;
        if enclave.state != EnclaveState::Running {
            return Err(EmsError::BadState);
        }
        enclave.state = EnclaveState::Stopped;
        enclave.switches += 1;
        Ok(())
    }

    /// EDESTROY: reclaims every page (zeroed back into the pool), releases
    /// ownership, revokes the key, and removes the control structure. Shared
    /// regions the enclave was attached to are detached; regions it created
    /// are destroyed once no connections remain.
    ///
    /// # Errors
    ///
    /// `NotFound` for unknown enclaves.
    pub fn edestroy(&mut self, ctx: &mut EmsContext<'_>, eid: u64) -> EmsResult<()> {
        let enclave = self.enclaves.remove(&eid).ok_or(EmsError::NotFound)?;
        // Detach from any shared regions.
        let shm_ids: Vec<u64> = self.shms.keys().copied().collect();
        for sid in shm_ids {
            let (was_attached, creator, active) = {
                let shm = self.shms.get_mut(&sid).expect("sid from keys()");
                let was = shm.attached.remove(&eid).is_some();
                if was {
                    shm.active_connections = shm.active_connections.saturating_sub(1);
                }
                (was, shm.creator, shm.active_connections)
            };
            let _ = was_attached;
            if creator == EnclaveId(eid) && active == 0 {
                self.destroy_shm_internal(ctx, sid)?;
            }
        }
        // Reclaim data pages.
        for frame in enclave.data_frames {
            self.ownership
                .release(frame, PageOwner::Enclave(EnclaveId(eid)))
                .map_err(|_| EmsError::AccessDenied)?;
            self.pool.give_back(frame, ctx.sys)?;
        }
        // Reclaim page-table pages.
        for frame in enclave.pt_frames {
            self.ownership
                .release(frame, PageOwner::EmsPrivate)
                .map_err(|_| EmsError::AccessDenied)?;
            self.pool.give_back(frame, ctx.sys)?;
        }
        if let Some(key) = enclave.key {
            ctx.hub.ems_revoke_key(&self.cap, &mut ctx.sys.engine, key);
            self.free_keyid(key);
        }
        Ok(())
    }

    /// The perm-bits encoding used across primitives (exposed for the SDK).
    pub fn encode_perms(p: Perms) -> u8 {
        perm_bits(p)
    }

    /// Inverse of [`Ems::encode_perms`].
    pub fn decode_perms(bits: u8) -> Perms {
        perms_from_bits(bits)
    }
}
