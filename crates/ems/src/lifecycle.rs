//! Enclave life-cycle primitives: ECREATE, EADD, EMEAS, EENTER, ERESUME,
//! EEXIT, EDESTROY (Table II, §IV-A).

use crate::control::{layout, EnclaveConfig, EnclaveControl, EnclaveState};
use crate::error::{EmsError, EmsResult};
use crate::runtime::{Ems, EmsContext, StagedFrames};
use crate::txn::{Txn, UndoOp};
use hypertee_mem::addr::{KeyId, PhysAddr, Ppn, VirtAddr, PAGE_SIZE};
use hypertee_mem::ownership::{EnclaveId, PageOwner};
use hypertee_mem::pagetable::{PageTable, Perms};

fn perms_from_bits(bits: u8) -> Perms {
    Perms {
        r: bits & 1 != 0,
        w: bits & 2 != 0,
        x: bits & 4 != 0,
        u: true,
    }
}

fn perm_bits(p: Perms) -> u8 {
    (p.r as u8) | ((p.w as u8) << 1) | ((p.x as u8) << 2)
}

impl Ems {
    /// ECREATE: builds a new enclave — dedicated page table in enclave
    /// memory, fresh KeyID and derived keys, statically allocated stack, and
    /// the HostApp shared window (§IV-A "Data movement between HostApp and
    /// Enclave").
    ///
    /// `host_shared_pa` is the page-aligned base of the OS-provided frames
    /// backing the shared window (plaintext, *not* enclave memory).
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for unaligned/oversized configs, `Exhausted` when
    /// frames or KeyIDs run out, `AccessDenied` when the proposed host
    /// window overlaps enclave memory.
    pub fn ecreate(
        &mut self,
        ctx: &mut EmsContext<'_>,
        config: EnclaveConfig,
        host_shared_pa: u64,
    ) -> EmsResult<EnclaveId> {
        // Sanity checks (§III-B ③).
        if !host_shared_pa.is_multiple_of(PAGE_SIZE)
            || config.heap_max > (layout::HOST_SHARED_BASE.0 - layout::HEAP_BASE.0)
            || config.stack_bytes > (layout::HEAP_BASE.0 - layout::STACK_BASE.0)
            || config.host_shared_bytes > (layout::SHM_BASE.0 - layout::HOST_SHARED_BASE.0)
        {
            return Err(EmsError::InvalidArgument);
        }
        let stack_pages = config.stack_bytes.div_ceil(PAGE_SIZE);
        let host_pages = config.host_shared_bytes.div_ceil(PAGE_SIZE);
        // The host window must not point at enclave memory.
        for i in 0..host_pages {
            let ppn = Ppn(host_shared_pa / PAGE_SIZE + i);
            if self.pool_bitmap_is_enclave(ctx, ppn)? {
                return Err(EmsError::AccessDenied);
            }
        }

        let eid = self.fresh_eid();
        let mut txn = Txn::begin(self.injector.abort_step());
        let key = self.alloc_keyid(ctx)?;
        // The brand-new table is discarded wholesale on failure, so —
        // unlike EALLOC/EADD on a live table — *everything* here rolls
        // back, the KeyID included. (A victim suspended by `alloc_keyid`
        // stays suspended; ERESUME revives it.)
        txn.record(UndoOp::ReleaseKey(key));
        let nonce = self.rng.gen_bytes32();
        let (aes, mac) = self.vault.enclave_memory_keys(eid.0, &nonce);
        ctx.hub
            .ems_program_key(&self.cap, &mut ctx.sys.engine, key, &aes, &mac);

        // Stage frames for the page-table skeleton plus per-region leaves.
        let pt_budget = 6 + stack_pages.div_ceil(512) + host_pages.div_ceil(512);
        let mut staged = match StagedFrames::stage(pt_budget, &mut self.pool, ctx) {
            Ok(s) => s,
            Err(e) => {
                if self.rollback(ctx, txn).is_err() {
                    return Err(EmsError::BadState);
                }
                return Err(e);
            }
        };

        let mut data_frames = Vec::new();
        let built: Result<PageTable, EmsError> = 'build: {
            let table = match PageTable::try_new(&mut staged, &mut ctx.sys.phys) {
                Ok(t) => t,
                Err(f) => break 'build Err(f.into()),
            };
            // Statically allocate and map the stack (enclave-encrypted).
            // No UnmapLeaf undos here: the whole table is discarded on
            // failure, so leaves need not be unpicked one by one.
            for i in 0..stack_pages {
                if let Err(e) = txn.step() {
                    break 'build Err(e);
                }
                let frame = match self.pool.take(ctx.os_frames, ctx.sys) {
                    Ok(f) => f,
                    Err(e) => break 'build Err(e),
                };
                txn.record(UndoOp::ReturnToPool(frame));
                if self
                    .ownership
                    .claim(frame, PageOwner::Enclave(eid))
                    .is_err()
                {
                    break 'build Err(EmsError::AccessDenied);
                }
                txn.record(UndoOp::ReleaseOwnership(frame, PageOwner::Enclave(eid)));
                // Establish integrity MACs by writing zeros through the key.
                let sys = &mut *ctx.sys;
                if let Err(f) =
                    sys.engine
                        .write(&mut sys.phys, frame.base(), key, &[0u8; PAGE_SIZE as usize])
                {
                    break 'build Err(f.into());
                }
                if let Err(f) = table.map(
                    VirtAddr(layout::STACK_BASE.0 + i * PAGE_SIZE),
                    frame,
                    Perms::RW,
                    key,
                    &mut staged,
                    &mut ctx.sys.phys,
                ) {
                    break 'build Err(f.into());
                }
                data_frames.push(frame);
            }

            // Map the HostApp shared window (plaintext KeyID 0). The frames
            // are the OS's, so nothing to undo beyond discarding the table.
            for i in 0..host_pages {
                if let Err(e) = txn.step() {
                    break 'build Err(e);
                }
                let ppn = Ppn(host_shared_pa / PAGE_SIZE + i);
                if let Err(f) = table.map(
                    VirtAddr(layout::HOST_SHARED_BASE.0 + i * PAGE_SIZE),
                    ppn,
                    Perms::RW,
                    KeyId::HOST,
                    &mut staged,
                    &mut ctx.sys.phys,
                ) {
                    break 'build Err(f.into());
                }
            }
            Ok(table)
        };

        let pt_frames = staged.unstage(&mut self.pool, ctx);
        let fail = match built {
            Ok(table) => {
                let mut claimed = Vec::new();
                let mut claim_err = None;
                for f in &pt_frames {
                    match self.ownership.claim(*f, PageOwner::EmsPrivate) {
                        Ok(()) => claimed.push(*f),
                        Err(_) => {
                            claim_err = Some(EmsError::AccessDenied);
                            break;
                        }
                    }
                }
                match claim_err {
                    None => {
                        let mut control =
                            EnclaveControl::new(eid, table, pt_frames, key, nonce, config);
                        control.key_nonce = nonce;
                        control.data_frames = data_frames;
                        self.enclaves.insert(eid.0, control);
                        return Ok(eid);
                    }
                    Some(e) => {
                        for f in claimed {
                            let _ = self.ownership.release(f, PageOwner::EmsPrivate);
                        }
                        e
                    }
                }
            }
            Err(e) => e,
        };

        // Failure: roll back stack frames and the KeyID, then discard the
        // half-built table's frames — nothing references the abandoned root,
        // so pooling them (zeroed) is safe, unlike the live-table case.
        let rolled = self.rollback(ctx, txn);
        for f in pt_frames {
            let _ = self.pool.give_back(f, ctx.sys);
        }
        if rolled.is_err() {
            return Err(EmsError::BadState);
        }
        Err(fail)
    }

    fn pool_bitmap_is_enclave(&mut self, ctx: &mut EmsContext<'_>, ppn: Ppn) -> EmsResult<bool> {
        Ok(ctx.sys.bitmap.is_enclave(ppn, &mut ctx.sys.phys)?)
    }

    /// EADD: copies `len` bytes from CS memory at `src_pa` into the enclave
    /// at `dest_va`, mapping fresh enclave pages with `perm_bits`
    /// (bit 0 = R, 1 = W, 2 = X), and extends the measurement.
    ///
    /// # Errors
    ///
    /// `BadState` after measurement, `InvalidArgument` for bad ranges.
    pub fn eadd(
        &mut self,
        ctx: &mut EmsContext<'_>,
        eid: u64,
        dest_va: u64,
        src_pa: u64,
        len: u64,
        perm_bits: u8,
    ) -> EmsResult<()> {
        let enclave = self.enclave(eid)?;
        if enclave.state != EnclaveState::Building {
            return Err(EmsError::BadState);
        }
        if !dest_va.is_multiple_of(PAGE_SIZE)
            || len == 0
            || dest_va < layout::CODE_BASE.0
            || dest_va + len > layout::STACK_BASE.0
        {
            return Err(EmsError::InvalidArgument);
        }
        let key = enclave.key.ok_or(EmsError::BadState)?;
        let table = enclave.page_table;
        let pages = len.div_ceil(PAGE_SIZE);
        let perms = perms_from_bits(perm_bits);
        let mut staged = StagedFrames::stage(2 + pages.div_ceil(512), &mut self.pool, ctx)?;
        let mut txn = Txn::begin(self.injector.abort_step());
        let mut added = Vec::new();
        let mut err: Option<EmsError> = None;
        for i in 0..pages {
            let va = VirtAddr(dest_va + i * PAGE_SIZE);
            let chunk_len = (len - i * PAGE_SIZE).min(PAGE_SIZE) as usize;
            let src = PhysAddr(src_pa + i * PAGE_SIZE);
            match self.eadd_one(
                ctx,
                &mut staged,
                &mut txn,
                eid,
                va,
                src,
                chunk_len,
                key,
                table,
                perms,
            ) {
                Ok((frame, page_buf)) => added.push((va, frame, page_buf)),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        // Branch frames woven into the live table are kept on both paths
        // (same dangling-PTE argument as EALLOC); only leaves roll back.
        let pt_frames = staged.unstage(&mut self.pool, ctx);
        for f in &pt_frames {
            if self.ownership.claim(*f, PageOwner::EmsPrivate).is_err() {
                err.get_or_insert(EmsError::AccessDenied);
            }
        }
        let enclave = self.enclave_mut(eid)?;
        enclave.pt_frames.extend(pt_frames);
        match err {
            None => {
                // The measurement extends only after every page landed — a
                // rolled-back EADD must leave the measurement untouched so
                // the retried request reproduces the same digest.
                let enclave = self.enclave_mut(eid)?;
                for (va, frame, data) in added {
                    enclave.extend_measurement(va, perm_bits, &data);
                    enclave.data_frames.push(frame);
                }
                Ok(())
            }
            Some(e) => {
                if self.rollback(ctx, txn).is_err() {
                    self.poison(eid);
                    return Err(EmsError::BadState);
                }
                Err(e)
            }
        }
    }

    /// One EADD page: take → claim → copy-through-key → map, undo-logged.
    #[allow(clippy::too_many_arguments)]
    fn eadd_one(
        &mut self,
        ctx: &mut EmsContext<'_>,
        staged: &mut StagedFrames,
        txn: &mut Txn,
        eid: u64,
        va: VirtAddr,
        src: PhysAddr,
        chunk_len: usize,
        key: KeyId,
        table: PageTable,
        perms: Perms,
    ) -> EmsResult<(Ppn, Vec<u8>)> {
        txn.step()?;
        let frame = self.pool.take(ctx.os_frames, ctx.sys)?;
        txn.record(UndoOp::ReturnToPool(frame));
        let owner = PageOwner::Enclave(EnclaveId(eid));
        self.ownership
            .claim(frame, owner)
            .map_err(|_| EmsError::AccessDenied)?;
        txn.record(UndoOp::ReleaseOwnership(frame, owner));
        // EMS reads the image chunk from CS memory (unidirectional access)
        // and writes it through the enclave's key.
        let mut page_buf = vec![0u8; PAGE_SIZE as usize];
        ctx.sys.phys.read(src, &mut page_buf[..chunk_len])?;
        let sys = &mut *ctx.sys;
        sys.engine
            .write(&mut sys.phys, frame.base(), key, &page_buf)?;
        table.map(va, frame, perms, key, staged, &mut ctx.sys.phys)?;
        txn.record(UndoOp::UnmapLeaf(table, va));
        Ok((frame, page_buf))
    }

    /// EMEAS: finalises the measurement and moves the enclave to `Measured`.
    ///
    /// # Errors
    ///
    /// `BadState` unless the enclave is still building.
    pub fn emeas(&mut self, eid: u64) -> EmsResult<[u8; 32]> {
        let enclave = self.enclave_mut(eid)?;
        if enclave.state != EnclaveState::Building {
            return Err(EmsError::BadState);
        }
        let digest = enclave.finalize_measurement();
        enclave.state = EnclaveState::Measured;
        Ok(digest)
    }

    /// EENTER: transitions to `Running` and returns what EMCall needs for
    /// the atomic context switch: page-table root, entry PC, KeyID.
    ///
    /// # Errors
    ///
    /// `BadState` unless the enclave is `Measured` or `Stopped`.
    pub fn eenter(
        &mut self,
        _ctx: &mut EmsContext<'_>,
        eid: u64,
    ) -> EmsResult<(Ppn, VirtAddr, KeyId)> {
        let enclave = self.enclave_mut(eid)?;
        match enclave.state {
            EnclaveState::Measured | EnclaveState::Stopped => {}
            _ => return Err(EmsError::BadState),
        }
        let key = enclave.key.ok_or(EmsError::BadState)?;
        enclave.state = EnclaveState::Running;
        enclave.switches += 1;
        Ok((enclave.page_table.root, enclave.entry, key))
    }

    /// ERESUME: like EENTER but also revives `Suspended` enclaves by
    /// re-deriving and re-programming their memory key under a fresh KeyID
    /// (§IV-C KeyID exhaustion recovery).
    ///
    /// # Errors
    ///
    /// `BadState` unless `Stopped` or `Suspended`.
    pub fn eresume(
        &mut self,
        ctx: &mut EmsContext<'_>,
        eid: u64,
    ) -> EmsResult<(Ppn, VirtAddr, KeyId)> {
        let state = self.enclave(eid)?.state;
        match state {
            EnclaveState::Stopped => self.eenter(ctx, eid),
            EnclaveState::Suspended => {
                let key = self.alloc_keyid(ctx)?;
                let (nonce, table_root, prev_key) = {
                    let e = self.enclave(eid)?;
                    (
                        e.key_nonce,
                        e.page_table,
                        e.prev_key.ok_or(EmsError::BadState)?,
                    )
                };
                let (aes, mac) = self.vault.enclave_memory_keys(eid, &nonce);
                ctx.hub
                    .ems_program_key(&self.cap, &mut ctx.sys.engine, key, &aes, &mac);
                // Rewrite the fresh KeyID into the enclave's own leaf PTEs.
                // Host-window (KeyID 0) and shared-memory PTEs keep theirs.
                let mappings = table_root.mappings(&mut ctx.sys.phys)?;
                for (va, pte) in mappings {
                    if pte.key() == prev_key {
                        table_root.unmap(va, &mut ctx.sys.phys)?;
                        table_root.map_raw(va, pte.ppn(), pte.perms(), key, &mut ctx.sys.phys)?;
                    }
                }
                let enclave = self.enclave_mut(eid)?;
                enclave.key = Some(key);
                enclave.prev_key = None;
                enclave.state = EnclaveState::Running;
                enclave.switches += 1;
                Ok((enclave.page_table.root, enclave.entry, key))
            }
            _ => Err(EmsError::BadState),
        }
    }

    /// EEXIT: transitions `Running` → `Stopped`.
    ///
    /// # Errors
    ///
    /// `BadState` unless running.
    pub fn eexit(&mut self, eid: u64) -> EmsResult<()> {
        let enclave = self.enclave_mut(eid)?;
        if enclave.state != EnclaveState::Running {
            return Err(EmsError::BadState);
        }
        enclave.state = EnclaveState::Stopped;
        enclave.switches += 1;
        Ok(())
    }

    /// EDESTROY: reclaims every page (zeroed back into the pool), releases
    /// ownership, revokes the key, and removes the control structure. Shared
    /// regions the enclave was attached to are detached; regions it created
    /// are destroyed once no connections remain.
    ///
    /// Destruction is *resumable* rather than transactional: there is no
    /// useful state to roll back to (the enclave is going away either way),
    /// so a mid-destroy abort marks the enclave poisoned and a retried
    /// EDESTROY simply continues from the first unreclaimed frame. The
    /// control structure — and the poison mark — go away only at the end.
    ///
    /// # Errors
    ///
    /// `NotFound` for unknown enclaves; `Aborted` on an injected
    /// mid-destroy fault (retry to finish the teardown).
    pub fn edestroy(&mut self, ctx: &mut EmsContext<'_>, eid: u64) -> EmsResult<()> {
        // Deliberately NOT `self.enclave()`: EDESTROY is the one primitive a
        // poisoned enclave still accepts.
        if !self.enclaves.contains_key(&eid) {
            return Err(EmsError::NotFound);
        }
        // A poisoned enclave's structures may already disagree; reclaim what
        // can be reclaimed instead of erroring out of the teardown.
        let tolerant = self.is_poisoned(eid);
        let mut txn = Txn::begin(self.injector.abort_step());
        // Detach from any shared regions (idempotent: a resumed destroy
        // finds the attachments already gone).
        let shm_ids: Vec<u64> = self.shms.keys().copied().collect();
        for sid in shm_ids {
            let Some(shm) = self.shms.get_mut(&sid) else {
                continue;
            };
            if shm.attached.remove(&eid).is_some() {
                shm.active_connections = shm.active_connections.saturating_sub(1);
            }
            let (creator, active) = (shm.creator, shm.active_connections);
            if creator == EnclaveId(eid) && active == 0 {
                self.destroy_shm_internal(ctx, sid)?;
            }
        }
        // Reclaim data pages, popping each frame only once it is fully
        // reclaimed so a resumed destroy continues exactly where it stopped.
        self.reclaim_frames(ctx, &mut txn, eid, false, tolerant)?;
        // Reclaim page-table pages the same way.
        self.reclaim_frames(ctx, &mut txn, eid, true, tolerant)?;
        let Some(enclave) = self.enclaves.remove(&eid) else {
            return Err(EmsError::NotFound);
        };
        if let Some(key) = enclave.key {
            ctx.hub.ems_revoke_key(&self.cap, &mut ctx.sys.engine, key);
            self.free_keyid(key);
        }
        self.unpoison(eid);
        Ok(())
    }

    /// Incrementally reclaims one of an enclave's frame lists (`pt` selects
    /// page-table frames over data frames). On an injected abort the enclave
    /// is poisoned and the list keeps its unreclaimed tail for the retry.
    fn reclaim_frames(
        &mut self,
        ctx: &mut EmsContext<'_>,
        txn: &mut Txn,
        eid: u64,
        pt: bool,
        tolerant: bool,
    ) -> EmsResult<()> {
        let owner = if pt {
            PageOwner::EmsPrivate
        } else {
            PageOwner::Enclave(EnclaveId(eid))
        };
        loop {
            let frame = {
                let Some(e) = self.enclaves.get(&eid) else {
                    return Err(EmsError::NotFound);
                };
                let list = if pt { &e.pt_frames } else { &e.data_frames };
                match list.last() {
                    Some(f) => *f,
                    None => return Ok(()),
                }
            };
            if txn.step().is_err() {
                self.poison(eid);
                return Err(EmsError::Aborted);
            }
            match self.ownership.release(frame, owner) {
                Ok(()) => self.pool.give_back(frame, ctx.sys)?,
                Err(_) if tolerant => {} // structures disagree; skip the frame
                Err(_) => return Err(EmsError::AccessDenied),
            }
            if let Some(e) = self.enclaves.get_mut(&eid) {
                let list = if pt {
                    &mut e.pt_frames
                } else {
                    &mut e.data_frames
                };
                list.pop();
            }
        }
    }

    /// The perm-bits encoding used across primitives (exposed for the SDK).
    pub fn encode_perms(p: Perms) -> u8 {
        perm_bits(p)
    }

    /// Inverse of [`Ems::encode_perms`].
    pub fn decode_perms(bits: u8) -> Perms {
        perms_from_bits(bits)
    }
}
