//! The EMS runtime: state, request dispatch, and sanity checking.
//!
//! [`Ems`] owns everything the paper keeps in EMS private memory — the key
//! vault, the ownership table, the enclave memory pool, control structures,
//! and shared-memory bookkeeping. CS software cannot reach any of it; the
//! only interface is primitive packets flowing through the iHub mailbox.

use crate::control::{EnclaveControl, EnclaveState};
use crate::error::{EmsError, EmsResult};
use crate::keys::{EFuse, KeyVault};
use crate::mempool::MemPool;
use crate::shm::ShmControl;
use hypertee_crypto::chacha::ChaChaRng;
use hypertee_fabric::ihub::{EmsCapability, IHub};
use hypertee_fabric::message::{Primitive, Request, Response, Status};
use hypertee_fabric::ring::Ring;
use hypertee_faults::{FaultInjector, FaultKind, FaultPlan, FaultStats};
use hypertee_mem::addr::{KeyId, Ppn};
use hypertee_mem::ownership::{EnclaveId, OwnershipTable};
use hypertee_mem::pagetable::{FrameSource, PageTable};
use hypertee_mem::phys::FrameAllocator;
use hypertee_mem::system::MemorySystem;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Completed Ok responses kept for idempotent resubmission (bounded FIFO).
const RESPONSE_CACHE_CAP: usize = 256;

/// Capacity of the EMS Rx task queue (§III-C).
const RX_RING_CAPACITY: usize = 64;

/// Mutable slices of machine state EMS operates on while serving a request.
///
/// In hardware these are the physical paths iHub gives EMS unidirectional
/// access to: CS memory, the encryption-engine registers, the DMA whitelist,
/// and the CS OS's frame allocator (for pool growth requests).
pub struct EmsContext<'a> {
    /// The SoC memory system (physical memory, bitmap, encryption engine).
    pub sys: &'a mut MemorySystem,
    /// The fabric hub.
    pub hub: &'a mut IHub,
    /// The CS OS frame allocator EMS requests pool pages from.
    pub os_frames: &'a mut FrameAllocator,
}

/// EMS service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmsStats {
    /// Primitives served successfully.
    pub served: u64,
    /// Requests rejected by the privilege check.
    pub privilege_rejects: u64,
    /// Requests rejected by the argument sanity check.
    pub sanity_rejects: u64,
    /// Enclaves suspended to free KeyIDs.
    pub keyid_suspensions: u64,
    /// EMS firmware crash-restart cycles survived.
    pub crash_restarts: u64,
}

/// A read-only snapshot of one enclave's control state, exposed for external
/// checkers (the `hypertee-model` lockstep harness) without handing out the
/// control structure itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnclaveView {
    /// Enclave id.
    pub eid: u64,
    /// Lifecycle state.
    pub state: EnclaveState,
    /// Whether a memory-encryption KeyID is currently programmed.
    pub has_key: bool,
    /// Finalised measurement digest (`None` while still building).
    pub measurement: Option<[u8; 32]>,
    /// Heap bump-allocation cursor (virtual address).
    pub heap_cursor: u64,
    /// Private data frames currently owned (image + stack + live heap).
    pub data_frames: usize,
    /// Page-table frames currently owned.
    pub pt_frames: usize,
    /// Context-switch count.
    pub switches: u64,
    /// Whether the enclave is poisoned (only EDESTROY accepted).
    pub poisoned: bool,
}

/// A pre-staged batch of frames implementing [`FrameSource`], so page-table
/// construction can draw frames without re-entering the pool mid-walk.
pub(crate) struct StagedFrames {
    avail: Vec<Ppn>,
    /// Frames actually consumed by the mapping operation.
    pub taken: Vec<Ppn>,
}

impl StagedFrames {
    pub(crate) fn stage(
        n: u64,
        pool: &mut MemPool,
        ctx: &mut EmsContext<'_>,
    ) -> EmsResult<StagedFrames> {
        let mut avail = Vec::with_capacity(n as usize);
        for _ in 0..n {
            avail.push(pool.take(ctx.os_frames, ctx.sys)?);
        }
        Ok(StagedFrames {
            avail,
            taken: Vec::new(),
        })
    }

    /// Returns unused frames to the pool.
    pub(crate) fn unstage(mut self, pool: &mut MemPool, ctx: &mut EmsContext<'_>) -> Vec<Ppn> {
        while let Some(f) = self.avail.pop() {
            // Staged frames were never written; returning them is cheap.
            let _ = pool.give_back(f, ctx.sys);
        }
        self.taken
    }
}

impl FrameSource for StagedFrames {
    fn alloc_frame(&mut self) -> Option<Ppn> {
        let f = self.avail.pop()?;
        self.taken.push(f);
        Some(f)
    }
}

/// The Enclave Management Subsystem runtime.
pub struct Ems {
    pub(crate) cap: EmsCapability,
    pub(crate) vault: KeyVault,
    pub(crate) ownership: OwnershipTable,
    pub(crate) pool: MemPool,
    pub(crate) enclaves: BTreeMap<u64, EnclaveControl>,
    pub(crate) shms: BTreeMap<u64, ShmControl>,
    pub(crate) cvms: BTreeMap<u64, crate::cvm::CvmControl>,
    pub(crate) rng: ChaChaRng,
    next_eid: u64,
    next_shmid: u64,
    next_cvm_id: u64,
    next_keyid: u16,
    free_keyids: Vec<u16>,
    keyid_limit: u16,
    /// Platform measurement from secure boot (part of every quote).
    pub platform_measurement: [u8; 32],
    /// Counters.
    pub stats: EmsStats,
    /// EMS-site fault injector (disarmed in production).
    pub(crate) injector: FaultInjector,
    /// Enclaves whose structures can no longer be trusted (a rollback or a
    /// mid-destroy abort failed to restore consistency). Only EDESTROY is
    /// accepted for them.
    poisoned: BTreeSet<u64>,
    /// Completed Ok responses, keyed by req_id: a retry of a request whose
    /// response was lost on the fabric is answered from here instead of
    /// being re-executed.
    resp_cache: BTreeMap<u64, Response>,
    /// Insertion order of `resp_cache` (bounds it to a FIFO window).
    resp_order: VecDeque<u64>,
    /// Recently answered SIGMA `msg1` nonces: a bounded FIFO replay guard
    /// (persistent state — survives crash-restart like the ownership table).
    pub(crate) sigma_seen: VecDeque<[u8; 32]>,
    /// The Rx task queue requests are fetched into before dispatch.
    pub(crate) rx: Ring<Request>,
}

/// Capacity of the SIGMA `msg1` replay journal.
pub(crate) const SIGMA_SEEN_CAP: usize = 256;

impl core::fmt::Debug for Ems {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Ems {{ enclaves: {}, shms: {}, pool_free: {} }}",
            self.enclaves.len(),
            self.shms.len(),
            self.pool.free_frames()
        )
    }
}

impl Ems {
    /// Boots the EMS runtime. `cap` is the single iHub capability; `efuse`
    /// carries the manufacturing root keys; `platform_measurement` comes
    /// from the secure-boot report.
    pub fn new(cap: EmsCapability, efuse: EFuse, platform_measurement: [u8; 32], seed: u64) -> Ems {
        let mut rng = ChaChaRng::from_u64(seed);
        let vault = KeyVault::open(efuse, &mut rng);
        let pool_rng = ChaChaRng::from_u64(seed ^ 0x706f_6f6c);
        Ems {
            cap,
            vault,
            ownership: OwnershipTable::new(),
            pool: MemPool::new(64, pool_rng),
            enclaves: BTreeMap::new(),
            shms: BTreeMap::new(),
            cvms: BTreeMap::new(),
            rng,
            next_eid: 1,
            next_shmid: 1,
            next_cvm_id: 1,
            next_keyid: 1,
            free_keyids: Vec::new(),
            keyid_limit: u16::MAX,
            platform_measurement,
            stats: EmsStats::default(),
            injector: FaultInjector::disarmed(),
            poisoned: BTreeSet::new(),
            resp_cache: BTreeMap::new(),
            resp_order: VecDeque::new(),
            sigma_seen: VecDeque::new(),
            rx: Ring::new(RX_RING_CAPACITY),
        }
    }

    /// Arms the EMS-resident fault sites (primitive aborts, transient
    /// exhaustion, core/ring stalls) from one replayable plan.
    pub fn arm_faults(&mut self, plan: &FaultPlan) {
        self.injector = plan.injector("ems");
    }

    /// Faults injected at the EMS sites so far.
    pub fn fault_stats(&self) -> &FaultStats {
        self.injector.stats()
    }

    /// Requests staged in the Rx task queue but not yet serviced
    /// (observability for the machine's pipeline queue-depth tracking).
    pub fn rx_backlog(&self) -> usize {
        self.rx.len()
    }

    /// Marks an enclave's structures as untrustworthy. From here on every
    /// primitive except EDESTROY answers `BadState` for it.
    pub(crate) fn poison(&mut self, eid: u64) {
        self.poisoned.insert(eid);
    }

    /// Clears the poison mark (a completed EDESTROY retry).
    pub(crate) fn unpoison(&mut self, eid: u64) {
        self.poisoned.remove(&eid);
    }

    /// Whether an enclave is poisoned.
    pub fn is_poisoned(&self, eid: u64) -> bool {
        self.poisoned.contains(&eid)
    }

    /// The ownership table (read access for the consistency audit).
    pub fn ownership(&self) -> &OwnershipTable {
        &self.ownership
    }

    /// Page tables of all non-poisoned enclaves, for the consistency audit.
    /// Poisoned enclaves are mid-destruction wrecks whose tables are
    /// deliberately excluded — their only legal future is EDESTROY.
    pub fn audit_tables(&self) -> Vec<(EnclaveId, PageTable)> {
        self.enclaves
            .values()
            .filter(|e| !self.poisoned.contains(&e.id.0))
            .map(|e| (e.id, e.page_table))
            .collect()
    }

    /// Restricts the KeyID space (tests exercise exhaustion + suspension).
    pub fn set_keyid_limit(&mut self, limit: u16) {
        self.keyid_limit = limit;
    }

    /// Number of live enclaves.
    pub fn enclave_count(&self) -> usize {
        self.enclaves.len()
    }

    /// The memory pool (read access for benches/tests).
    pub fn pool(&self) -> &MemPool {
        &self.pool
    }

    /// Read-only snapshot of one enclave's control state, or `None` for
    /// unknown ids. This is the lifecycle-observability surface the lockstep
    /// reference model (`hypertee-model`) diffs against after every
    /// completion.
    pub fn enclave_view(&self, eid: u64) -> Option<EnclaveView> {
        self.enclaves.get(&eid).map(|e| EnclaveView {
            eid,
            state: e.state,
            has_key: e.key.is_some(),
            measurement: e.measurement.digest(),
            heap_cursor: e.heap_cursor.0,
            data_frames: e.data_frames.len(),
            pt_frames: e.pt_frames.len(),
            switches: e.switches,
            poisoned: self.poisoned.contains(&eid),
        })
    }

    /// Snapshots of every live enclave, in id order.
    pub fn enclave_views(&self) -> Vec<EnclaveView> {
        self.enclaves
            .keys()
            .filter_map(|&eid| self.enclave_view(eid))
            .collect()
    }

    pub(crate) fn fresh_eid(&mut self) -> EnclaveId {
        let id = EnclaveId(self.next_eid);
        self.next_eid += 1;
        id
    }

    pub(crate) fn fresh_shmid(&mut self) -> u64 {
        let id = self.next_shmid;
        self.next_shmid += 1;
        id
    }

    pub(crate) fn fresh_cvm_id(&mut self) -> u64 {
        let id = self.next_cvm_id;
        self.next_cvm_id += 1;
        id
    }

    /// Allocates a KeyID, suspending a stopped enclave if the space is
    /// exhausted (§IV-C: "In case of KeyID exhaustion, EMS can suspend an
    /// enclave to release a KeyID").
    pub(crate) fn alloc_keyid(&mut self, ctx: &mut EmsContext<'_>) -> EmsResult<KeyId> {
        if let Some(k) = self.free_keyids.pop() {
            return Ok(KeyId(k));
        }
        if self.next_keyid < self.keyid_limit {
            let k = self.next_keyid;
            self.next_keyid += 1;
            return Ok(KeyId(k));
        }
        // Exhausted: suspend a stopped enclave to reclaim its KeyID.
        let victim = self
            .enclaves
            .values()
            .find(|e| e.state == EnclaveState::Stopped && e.key.is_some())
            .map(|e| e.id.0);
        let Some(victim) = victim else {
            return Err(EmsError::Exhausted);
        };
        let key = self.suspend_enclave(ctx, victim)?;
        Ok(key)
    }

    /// Suspends an enclave: revokes its key from the engine and releases its
    /// KeyID. Its memory remains encrypted; ERESUME re-derives the key.
    /// Invoked internally on KeyID exhaustion, and available to platform
    /// management (e.g. tests or an administrative flow).
    pub fn suspend_enclave(&mut self, ctx: &mut EmsContext<'_>, eid: u64) -> EmsResult<KeyId> {
        let enclave = self.enclaves.get_mut(&eid).ok_or(EmsError::NotFound)?;
        let key = enclave.key.take().ok_or(EmsError::BadState)?;
        enclave.prev_key = Some(key);
        enclave.state = EnclaveState::Suspended;
        ctx.hub.ems_revoke_key(&self.cap, &mut ctx.sys.engine, key);
        self.stats.keyid_suspensions += 1;
        Ok(key)
    }

    pub(crate) fn free_keyid(&mut self, key: KeyId) {
        self.free_keyids.push(key.0);
    }

    pub(crate) fn enclave(&self, eid: u64) -> EmsResult<&EnclaveControl> {
        if self.poisoned.contains(&eid) {
            return Err(EmsError::BadState);
        }
        self.enclaves.get(&eid).ok_or(EmsError::NotFound)
    }

    pub(crate) fn enclave_mut(&mut self, eid: u64) -> EmsResult<&mut EnclaveControl> {
        if self.poisoned.contains(&eid) {
            return Err(EmsError::BadState);
        }
        self.enclaves.get_mut(&eid).ok_or(EmsError::NotFound)
    }

    /// Serves every pending request in the mailbox. Returns the number of
    /// primitives processed. (The multi-core EMS of Fig. 6 is modelled in
    /// `hypertee-sim::queueing`; functionally, service order is FIFO.)
    pub fn service(&mut self, ctx: &mut EmsContext<'_>) -> usize {
        // An injected firmware crash loses this round and all volatile
        // state; the warm restart reconstructs what it can.
        if self.injector.roll(FaultKind::EmsCrash) {
            self.crash_restart();
            return 0;
        }
        // An injected core stall skips this entire service round; requests
        // stay queued in the mailbox and are served next round.
        if self.injector.roll(FaultKind::EmsStall) {
            return 0;
        }
        // Stage ①: move pending requests from the mailbox into the Rx task
        // queue (§III-C). Fetch only while the ring has room, so nothing is
        // ever lost between mailbox and ring.
        loop {
            if self.rx.is_full() {
                break;
            }
            let Some(req) = ctx.hub.ems_fetch_request(&self.cap) else {
                break;
            };
            let _ = self.rx.push(req); // cannot fail: checked not-full above
        }
        // An injected ring stall wedges the read port for one pop; queued
        // requests are retained and drain next round.
        if self.injector.roll(FaultKind::RingStall) {
            self.rx.stall(1);
        }
        // Stage ②: dispatch everything the ring delivers.
        let mut served = 0;
        while let Some(req) = self.rx.pop() {
            let resp = self.handle(ctx, req);
            ctx.hub.ems_push_response(&self.cap, resp);
            served += 1;
        }
        served
    }

    /// Crashes and warm-restarts the EMS firmware, returning how many staged
    /// requests were lost.
    ///
    /// Volatile state — the Rx task queue — is dropped: staged requests were
    /// fetched from the mailbox but never executed, so the caller-side
    /// pipeline's loss detection resubmits them under the same req_id and
    /// nothing ever runs twice. Everything in EMS private memory survives a
    /// warm restart: the key vault, ownership table, memory pool, control
    /// structures, and the completion journal backing the response cache
    /// (which keeps post-crash resubmissions of *already completed* requests
    /// idempotent). The free-KeyID list is volatile bookkeeping, so it is
    /// reconstructed from the authoritative tables by scanning every keyed
    /// object — enclaves, encrypted shared regions, and CVMs.
    pub fn crash_restart(&mut self) -> usize {
        let dropped = self.rx.len();
        self.rx = Ring::new(RX_RING_CAPACITY);
        let mut in_use: BTreeSet<u16> = BTreeSet::new();
        for e in self.enclaves.values() {
            if let Some(k) = e.key {
                in_use.insert(k.0);
            }
        }
        for s in self.shms.values() {
            if s.key.is_encrypted() {
                in_use.insert(s.key.0);
            }
        }
        for c in self.cvms.values() {
            if let Some(k) = c.key {
                in_use.insert(k.0);
            }
        }
        self.free_keyids = (1..self.next_keyid)
            .filter(|k| !in_use.contains(k))
            .collect();
        self.stats.crash_restarts += 1;
        dropped
    }

    /// Executes one primitive request: privilege check, sanity check,
    /// dispatch.
    pub fn handle(&mut self, ctx: &mut EmsContext<'_>, req: Request) -> Response {
        // ⓪ Idempotent resubmission: a request that already completed but
        // whose response was lost on the fabric is answered from the cache,
        // never re-executed (re-running a completed EADD would double-map
        // and double-measure).
        if let Some(cached) = self.resp_cache.get(&req.req_id) {
            return cached.clone();
        }
        // ① Privilege check (defense in depth: EMCall already blocks
        // cross-privilege calls; EMS re-verifies).
        if req.caller.privilege != req.primitive.required_privilege() {
            self.stats.privilege_rejects += 1;
            return Response::err(req.req_id, Status::PrivilegeMismatch);
        }
        // Injected transient exhaustion: the pool claims to be empty before
        // dispatch. Surfaces as a clean `Exhausted` status — the caller
        // decides whether to try again later.
        if self.injector.roll(FaultKind::TransientExhausted) {
            return Response::err(req.req_id, Status::Exhausted);
        }
        let result = self.dispatch(ctx, &req);
        match result {
            Ok(resp) => {
                self.stats.served += 1;
                self.cache_response(resp.clone());
                resp
            }
            Err(e) => {
                if e == EmsError::InvalidArgument {
                    self.stats.sanity_rejects += 1;
                }
                Response::err(req.req_id, e.into())
            }
        }
    }

    /// Remembers a completed Ok response for replay on resubmission. Only
    /// successes are cached — failed primitives had no effects (rolled
    /// back), so re-executing them is safe and may well succeed.
    fn cache_response(&mut self, resp: Response) {
        if resp.req_id == 0 {
            return; // not a mailbox-assigned id (direct-call tests)
        }
        if self.resp_cache.insert(resp.req_id, resp.clone()).is_none() {
            self.resp_order.push_back(resp.req_id);
        }
        while self.resp_order.len() > RESPONSE_CACHE_CAP {
            if let Some(old) = self.resp_order.pop_front() {
                self.resp_cache.remove(&old);
            }
        }
    }

    fn dispatch(&mut self, ctx: &mut EmsContext<'_>, req: &Request) -> EmsResult<Response> {
        let id = req.req_id;
        match req.primitive {
            Primitive::Ecreate => {
                let [heap_max, stack_bytes, host_shared_bytes, host_shared_pa] =
                    fixed_args::<4>(&req.args)?;
                let eid = self.ecreate(
                    ctx,
                    crate::control::EnclaveConfig {
                        heap_max,
                        stack_bytes,
                        host_shared_bytes,
                    },
                    host_shared_pa,
                )?;
                Ok(Response::ok(id, vec![eid.0]))
            }
            Primitive::Eadd => {
                let [eid, dest_va, src_pa, len, perm_bits] = fixed_args::<5>(&req.args)?;
                self.eadd(ctx, eid, dest_va, src_pa, len, perm_bits as u8)?;
                Ok(Response::ok(id, vec![]))
            }
            Primitive::Emeas => {
                let [eid] = fixed_args::<1>(&req.args)?;
                let digest = self.emeas(eid)?;
                Ok(Response::ok_with_payload(id, vec![], digest.to_vec()))
            }
            Primitive::Eenter => {
                let [eid] = fixed_args::<1>(&req.args)?;
                let (root, entry, key) = self.eenter(ctx, eid)?;
                Ok(Response::ok(id, vec![root.0, entry.0, key.0 as u64]))
            }
            Primitive::Eresume => {
                let [eid] = fixed_args::<1>(&req.args)?;
                let (root, entry, key) = self.eresume(ctx, eid)?;
                Ok(Response::ok(id, vec![root.0, entry.0, key.0 as u64]))
            }
            Primitive::Eexit => {
                let [eid] = fixed_args::<1>(&req.args)?;
                // Only the enclave itself may exit itself.
                if req.caller.enclave != Some(EnclaveId(eid)) {
                    return Err(EmsError::AccessDenied);
                }
                self.eexit(eid)?;
                Ok(Response::ok(id, vec![]))
            }
            Primitive::Edestroy => {
                let [eid] = fixed_args::<1>(&req.args)?;
                self.edestroy(ctx, eid)?;
                Ok(Response::ok(id, vec![]))
            }
            Primitive::Ealloc => {
                let [eid, bytes] = fixed_args::<2>(&req.args)?;
                require_self(req, eid)?;
                let (va, pages) = self.ealloc(ctx, eid, bytes)?;
                Ok(Response::ok(id, vec![va.0, pages]))
            }
            Primitive::Efree => {
                let [eid, va, bytes] = fixed_args::<3>(&req.args)?;
                require_self(req, eid)?;
                self.efree(ctx, eid, va, bytes)?;
                Ok(Response::ok(id, vec![]))
            }
            Primitive::Ewb => {
                let [requested] = fixed_args::<1>(&req.args)?;
                let evicted = self.ewb(ctx, requested)?;
                let mut vals = vec![evicted.len() as u64];
                vals.extend(evicted.iter().map(|p| p.base().0));
                Ok(Response::ok(id, vals))
            }
            Primitive::Eshmget => {
                let [eid, bytes, max_perm, device_shared] = fixed_args::<4>(&req.args)?;
                require_self(req, eid)?;
                let shmid = self.eshmget(ctx, eid, bytes, max_perm as u8, device_shared != 0)?;
                Ok(Response::ok(id, vec![shmid]))
            }
            Primitive::Eshmshr => {
                let [sender, shmid, receiver, perm] = fixed_args::<4>(&req.args)?;
                require_self(req, sender)?;
                self.eshmshr(ctx, sender, shmid, receiver, perm as u8)?;
                Ok(Response::ok(id, vec![]))
            }
            Primitive::Eshmat => {
                let [eid, shmid, sender] = fixed_args::<3>(&req.args)?;
                require_self(req, eid)?;
                let (va, pages) = self.eshmat(ctx, eid, shmid, sender)?;
                Ok(Response::ok(id, vec![va.0, pages]))
            }
            Primitive::Eshmdt => {
                let [eid, shmid] = fixed_args::<2>(&req.args)?;
                require_self(req, eid)?;
                self.eshmdt(ctx, eid, shmid)?;
                Ok(Response::ok(id, vec![]))
            }
            Primitive::Eshmdes => {
                let [eid, shmid] = fixed_args::<2>(&req.args)?;
                require_self(req, eid)?;
                self.eshmdes(ctx, eid, shmid)?;
                Ok(Response::ok(id, vec![]))
            }
            Primitive::Eattest => {
                let [eid] = fixed_args::<1>(&req.args)?;
                require_self(req, eid)?;
                let quote = self.eattest(eid, &req.payload)?;
                Ok(Response::ok_with_payload(id, vec![], quote.to_bytes()))
            }
        }
    }
}

/// Decodes exactly `N` scalar arguments, rejecting short/long vectors — the
/// first line of the EMS sanity check.
fn fixed_args<const N: usize>(args: &[u64]) -> EmsResult<[u64; N]> {
    args.try_into().map_err(|_| EmsError::InvalidArgument)
}

/// Verifies the caller is the enclave it claims to operate on: the stamped
/// identity from EMCall must match the `eid` argument, preventing request
/// forgery (§III-B ②).
fn require_self(req: &Request, eid: u64) -> EmsResult<()> {
    if req.caller.enclave == Some(EnclaveId(eid)) {
        Ok(())
    } else {
        Err(EmsError::AccessDenied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertee_fabric::message::{CallerIdentity, Privilege};
    use hypertee_mem::addr::PhysAddr;

    fn machine() -> (MemorySystem, IHub, FrameAllocator, Ems) {
        let sys = MemorySystem::new(128 << 20, PhysAddr(0x8000));
        let (hub, cap) = IHub::new();
        let os = FrameAllocator::new(Ppn(64), Ppn(32000));
        let mut boot_rng = ChaChaRng::from_u64(11);
        let efuse = EFuse::burn(&mut boot_rng);
        let ems = Ems::new(cap, efuse, [0x50; 32], 42);
        (sys, hub, os, ems)
    }

    #[test]
    fn privilege_mismatch_rejected() {
        let (mut sys, mut hub, mut os, mut ems) = machine();
        let mut ctx = EmsContext {
            sys: &mut sys,
            hub: &mut hub,
            os_frames: &mut os,
        };
        // ECREATE requires OS privilege; a user-mode caller is rejected.
        let req = Request {
            req_id: 1,
            primitive: Primitive::Ecreate,
            caller: CallerIdentity {
                privilege: Privilege::User,
                enclave: None,
            },
            args: vec![0, 0, 0, 0],
            payload: vec![],
        };
        let resp = ems.handle(&mut ctx, req);
        assert_eq!(resp.status, Status::PrivilegeMismatch);
        assert_eq!(ems.stats.privilege_rejects, 1);
    }

    #[test]
    fn malformed_args_rejected() {
        let (mut sys, mut hub, mut os, mut ems) = machine();
        let mut ctx = EmsContext {
            sys: &mut sys,
            hub: &mut hub,
            os_frames: &mut os,
        };
        let req = Request {
            req_id: 2,
            primitive: Primitive::Ecreate,
            caller: CallerIdentity {
                privilege: Privilege::Os,
                enclave: None,
            },
            args: vec![1, 2], // ECREATE takes 4 args.
            payload: vec![],
        };
        let resp = ems.handle(&mut ctx, req);
        assert_eq!(resp.status, Status::InvalidArgument);
        assert_eq!(ems.stats.sanity_rejects, 1);
    }

    #[test]
    fn forged_identity_rejected() {
        let (mut sys, mut hub, mut os, mut ems) = machine();
        let mut ctx = EmsContext {
            sys: &mut sys,
            hub: &mut hub,
            os_frames: &mut os,
        };
        // A caller stamped as enclave 7 cannot EALLOC for enclave 9.
        let req = Request {
            req_id: 3,
            primitive: Primitive::Ealloc,
            caller: CallerIdentity {
                privilege: Privilege::User,
                enclave: Some(EnclaveId(7)),
            },
            args: vec![9, 4096],
            payload: vec![],
        };
        let resp = ems.handle(&mut ctx, req);
        assert_eq!(resp.status, Status::AccessDenied);
    }
}
