//! Transactional execution of multi-step primitives.
//!
//! Every mutating EMS primitive walks several cross-cutting structures —
//! the memory pool, the ownership table, the enclave bitmap, and a page
//! table. A fault injected between two of those mutations would leave them
//! disagreeing, so each primitive threads a [`Txn`]: a step counter (the
//! injection point for mid-primitive aborts) plus an undo log replayed in
//! reverse by `Ems::rollback` when the primitive cannot complete.
//!
//! The undo log records *semantic inverses*, not byte snapshots: a frame
//! taken from the pool is given back, a claimed page is released, a mapped
//! leaf is unmapped. One deliberate asymmetry: page-table *branch* frames
//! woven into a live table are never rolled back (see
//! `memmgmt::ealloc`) — a reclaimed branch frame would leave dangling
//! interior PTEs pointing at pool memory.

use crate::error::{EmsError, EmsResult};
use crate::runtime::{Ems, EmsContext};
use hypertee_mem::addr::{KeyId, Ppn, VirtAddr};
use hypertee_mem::ownership::PageOwner;
use hypertee_mem::pagetable::{PageTable, Perms};

/// One inverse operation in a transaction's undo log.
#[derive(Debug, Clone, Copy)]
pub enum UndoOp {
    /// Undo of a pool `take`: give the frame back (zeroed) to the pool.
    ReturnToPool(Ppn),
    /// Undo of an ownership `claim`: release the frame from this owner.
    ReleaseOwnership(Ppn, PageOwner),
    /// Undo of an ownership `release`: re-claim the frame for this owner.
    RestoreOwnership(Ppn, PageOwner),
    /// Undo of a leaf `map`: unmap the virtual address.
    UnmapLeaf(PageTable, VirtAddr),
    /// Undo of a leaf `unmap`: re-install the old leaf (intermediate
    /// levels still exist, so `map_raw` suffices).
    RemapLeaf(PageTable, VirtAddr, Ppn, Perms, KeyId),
    /// Undo of a pool `give_back`: pull the specific frame out again.
    RetakeFromPool(Ppn),
    /// Undo of an EWB `evict_one`: re-mark the frame enclave and re-pool it.
    UnevictFrame(Ppn),
    /// Undo of a KeyID allocation: revoke the (possibly unprogrammed) slot
    /// from the engine and return the ID to the free list.
    ReleaseKey(KeyId),
}

/// A primitive-scoped transaction: step counter plus undo log.
#[derive(Debug, Default)]
pub struct Txn {
    steps: u32,
    abort_at: Option<u32>,
    undo: Vec<UndoOp>,
}

impl Txn {
    /// Opens a transaction. `abort_at` is the injected abort point: the
    /// `abort_at`-th call to [`Txn::step`] fails with [`EmsError::Aborted`]
    /// (`None` disables injection — the production configuration).
    pub fn begin(abort_at: Option<u32>) -> Txn {
        Txn {
            steps: 0,
            abort_at,
            undo: Vec::new(),
        }
    }

    /// Marks a step boundary inside the primitive. Returns the injected
    /// abort when this is the chosen step.
    ///
    /// # Errors
    ///
    /// [`EmsError::Aborted`] at the injected abort step.
    pub fn step(&mut self) -> EmsResult<()> {
        self.steps += 1;
        if self.abort_at == Some(self.steps) {
            return Err(EmsError::Aborted);
        }
        Ok(())
    }

    /// Appends an inverse operation to the undo log. Call *after* the
    /// forward mutation succeeds.
    pub fn record(&mut self, op: UndoOp) {
        self.undo.push(op);
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Number of recorded undo operations.
    pub fn undo_len(&self) -> usize {
        self.undo.len()
    }
}

impl Ems {
    /// Rolls a failed transaction back: replays the undo log in reverse.
    ///
    /// # Errors
    ///
    /// If an undo operation itself fails, the remaining log is still
    /// replayed (best effort) and the first error is returned — the caller
    /// must then *poison* the affected enclave, because the structures can
    /// no longer be trusted to agree.
    pub(crate) fn rollback(&mut self, ctx: &mut EmsContext<'_>, txn: Txn) -> EmsResult<()> {
        let mut first_err = None;
        for op in txn.undo.into_iter().rev() {
            let r = match op {
                UndoOp::ReturnToPool(f) => self.pool.give_back(f, ctx.sys),
                UndoOp::ReleaseOwnership(f, o) => self
                    .ownership
                    .release(f, o)
                    .map_err(|_| EmsError::AccessDenied),
                UndoOp::RestoreOwnership(f, o) => self
                    .ownership
                    .claim(f, o)
                    .map_err(|_| EmsError::AccessDenied),
                UndoOp::UnmapLeaf(t, va) => t
                    .unmap(va, &mut ctx.sys.phys)
                    .map(|_| ())
                    .map_err(EmsError::from),
                UndoOp::RemapLeaf(t, va, ppn, perms, key) => t
                    .map_raw(va, ppn, perms, key, &mut ctx.sys.phys)
                    .map_err(EmsError::from),
                UndoOp::RetakeFromPool(f) => self.pool.retake(f),
                UndoOp::UnevictFrame(f) => self.pool.unevict(f, ctx.sys),
                UndoOp::ReleaseKey(k) => {
                    ctx.hub.ems_revoke_key(&self.cap, &mut ctx.sys.engine, k);
                    self.free_keyid(k);
                    Ok(())
                }
            };
            if let Err(e) = r {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_counter_aborts_at_chosen_step() {
        let mut txn = Txn::begin(Some(3));
        assert!(txn.step().is_ok());
        assert!(txn.step().is_ok());
        assert_eq!(txn.step(), Err(EmsError::Aborted));
        // Past the abort point the transaction keeps stepping (the caller
        // never gets here in practice, but the counter stays well-defined).
        assert!(txn.step().is_ok());
    }

    #[test]
    fn disabled_txn_never_aborts() {
        let mut txn = Txn::begin(None);
        for _ in 0..10_000 {
            assert!(txn.step().is_ok());
        }
        assert_eq!(txn.steps(), 10_000);
    }

    #[test]
    fn undo_log_accumulates() {
        let mut txn = Txn::begin(None);
        txn.record(UndoOp::ReturnToPool(Ppn(4)));
        txn.record(UndoOp::ReleaseKey(KeyId(9)));
        assert_eq!(txn.undo_len(), 2);
    }
}
