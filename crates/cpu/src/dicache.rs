//! The decoded-instruction cache: `decode()` results keyed by physical line.
//!
//! Fetching one instruction through the MMU costs a full 64-byte MKTME line
//! round trip (AES-CTR decrypt + per-line MAC verify — one Keccak
//! permutation per fetch). The cache amortizes that: a whole line is
//! fetched and decoded once, and straight-line execution then dispatches
//! over the decoded slots without touching memory at all
//! ([`crate::hart::Cpu::run_block`]).
//!
//! Coherence discipline mirrors the PTW [`hypertee_mem::walkcache::WalkCache`]:
//!
//! * **Epoch sync** — [`hypertee_mem::system::CoreMmu::flush_epoch`] advances
//!   on every translation flush (world switch, EALLOC/EFREE, shm
//!   attach/detach) and on mapping teardown (EDESTROY). The dispatch loop
//!   calls [`DecodeCache::sync_epoch`] before running, dropping every line
//!   on mismatch — the cache inherits the TLB/walk-cache flush sites
//!   without new plumbing.
//! * **Store-side invalidation** — every store through the interpreter (and
//!   the host-side `vm_store`/window paths at the machine layer) reports
//!   its physical address; [`DecodeCache::invalidate_range`] drops any
//!   cached line it overlaps, so self-modifying code refetches new bytes
//!   exactly like the uncached oracle.
//!
//! Correctness is differential, not architectural: cached dispatch must be
//! bit-identical — registers, PC, memory, counters, cycle charges — to the
//! seed fetch-decode-execute path kept verbatim as
//! [`crate::hart::Cpu::step_ref`] (see `tests/interp_diff.rs`).

use crate::hart::instr_cost;
use crate::isa::{decode, Instr};
use std::collections::HashMap;

/// Bytes per cached line — the MKTME integrity line size, so one cache fill
/// is exactly one engine line round trip.
pub const LINE_BYTES: u64 = 64;

/// Instruction slots per line.
pub const LINE_SLOTS: usize = (LINE_BYTES / 4) as usize;

/// Default capacity in lines (256 KiB of decoded code — far beyond any
/// enclave program in the suite, so steady state never evicts).
pub const DEFAULT_LINES: usize = 4096;

/// Hit/miss counters (observability only — not a timing-model input).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DicacheStats {
    /// Block entries that found their line decoded.
    pub hits: u64,
    /// Block entries that had to fetch and decode the line.
    pub misses: u64,
    /// Lines dropped by store-side invalidation.
    pub invalidations: u64,
    /// Whole-cache flushes (epoch bumps + capacity resets).
    pub flushes: u64,
}

/// One decoded 64-byte line: per-slot decode results (the raw word is kept
/// for illegal encodings so the trap can report it) and per-slot timing
/// cost, precomputed so block dispatch charges with one add per slot.
#[derive(Debug, Clone, Copy)]
pub struct DecodedLine {
    /// Decoded instructions, or the raw undecodable word.
    pub slots: [Result<Instr, u32>; LINE_SLOTS],
    /// [`instr_cost`] per slot (0 for illegal slots).
    pub cost: [u8; LINE_SLOTS],
}

impl DecodedLine {
    /// Decodes all slots of a raw 64-byte line.
    pub fn decode_line(bytes: &[u8; LINE_BYTES as usize]) -> DecodedLine {
        let mut slots = [Err(0u32); LINE_SLOTS];
        let mut cost = [0u8; LINE_SLOTS];
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            let word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            slots[i] = decode(word).map_err(|_| word);
            if let Ok(instr) = &slots[i] {
                cost[i] = instr_cost(instr) as u8;
            }
        }
        DecodedLine { slots, cost }
    }
}

/// The per-hart decoded-instruction cache, keyed by 64-byte-aligned
/// physical line address.
#[derive(Debug)]
pub struct DecodeCache {
    lines: HashMap<u64, DecodedLine>,
    capacity: usize,
    epoch: u64,
    /// Counters.
    pub stats: DicacheStats,
}

impl DecodeCache {
    /// A cache holding up to `capacity` decoded lines.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> DecodeCache {
        assert!(capacity > 0, "decode cache needs at least one line");
        DecodeCache {
            lines: HashMap::with_capacity(capacity.min(DEFAULT_LINES)),
            capacity,
            epoch: 0,
            stats: DicacheStats::default(),
        }
    }

    /// Adopts the MMU's flush epoch, dropping every line if it moved since
    /// the last sync (the EALLOC/EFREE/EDESTROY/world-switch discipline).
    pub fn sync_epoch(&mut self, mmu_epoch: u64) {
        if self.epoch != mmu_epoch {
            self.flush_all();
            self.epoch = mmu_epoch;
        }
    }

    /// Looks up the decoded line at 64-byte-aligned `line_pa`, counting the
    /// hit or miss. Returns a copy: lines are small and dispatch must keep
    /// executing its snapshot while stores invalidate the cache underneath.
    pub fn get(&mut self, line_pa: u64) -> Option<DecodedLine> {
        debug_assert_eq!(line_pa % LINE_BYTES, 0);
        match self.lines.get(&line_pa) {
            Some(line) => {
                self.stats.hits += 1;
                Some(*line)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Decodes and caches the raw line bytes fetched at `line_pa`,
    /// returning the decoded form. When the cache is full it resets
    /// wholesale (coarse but epoch-cheap; capacity is sized to never evict
    /// in practice).
    pub fn fill(&mut self, line_pa: u64, bytes: &[u8; LINE_BYTES as usize]) -> DecodedLine {
        debug_assert_eq!(line_pa % LINE_BYTES, 0);
        let line = DecodedLine::decode_line(bytes);
        if self.lines.len() >= self.capacity && !self.lines.contains_key(&line_pa) {
            self.flush_all();
        }
        self.lines.insert(line_pa, line);
        line
    }

    /// Drops every line overlapping `[pa, pa + len)` — the store-side
    /// invalidation hook. Counts only lines actually present.
    pub fn invalidate_range(&mut self, pa: u64, len: u64) {
        if len == 0 || self.lines.is_empty() {
            return;
        }
        let first = pa & !(LINE_BYTES - 1);
        let last = (pa + len - 1) & !(LINE_BYTES - 1);
        let mut line = first;
        loop {
            if self.lines.remove(&line).is_some() {
                self.stats.invalidations += 1;
            }
            if line == last {
                break;
            }
            line += LINE_BYTES;
        }
    }

    /// Drops every cached line.
    pub fn flush_all(&mut self) {
        self.lines.clear();
        self.stats.flushes += 1;
    }

    /// Number of cached lines (tests/observability).
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_with(words: &[u32]) -> [u8; LINE_BYTES as usize] {
        let mut bytes = [0u8; LINE_BYTES as usize];
        for (i, w) in words.iter().enumerate() {
            bytes[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        bytes
    }

    #[test]
    fn fill_then_hit() {
        let mut c = DecodeCache::new(8);
        assert!(c.get(0x1000).is_none());
        let line = c.fill(0x1000, &line_with(&[0x0050_0093])); // addi x1, x0, 5
        assert!(line.slots[0].is_ok());
        assert_eq!(line.cost[0], 1);
        assert!(c.get(0x1000).is_some());
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn illegal_slots_keep_the_raw_word() {
        let mut c = DecodeCache::new(8);
        let line = c.fill(0x0, &line_with(&[0xffff_ffff]));
        assert_eq!(line.slots[0], Err(0xffff_ffff));
        assert_eq!(line.cost[0], 0);
        // All-zero padding decodes illegal too (word 0).
        assert_eq!(line.slots[1], Err(0));
    }

    #[test]
    fn store_invalidation_drops_overlapping_lines_only() {
        let mut c = DecodeCache::new(8);
        c.fill(0x1000, &line_with(&[0x0050_0093]));
        c.fill(0x1040, &line_with(&[0x0050_0093]));
        c.fill(0x1080, &line_with(&[0x0050_0093]));
        // An 8-byte store straddling nothing: only its line goes.
        c.invalidate_range(0x1048, 8);
        assert!(c.get(0x1040).is_none());
        assert!(c.get(0x1000).is_some());
        assert!(c.get(0x1080).is_some());
        assert_eq!(c.stats.invalidations, 1);
        // A span crossing two lines drops both.
        c.invalidate_range(0x1030, 0x60);
        assert!(c.get(0x1000).is_none());
        assert!(c.get(0x1080).is_none());
        assert_eq!(c.stats.invalidations, 3);
    }

    #[test]
    fn epoch_mismatch_flushes() {
        let mut c = DecodeCache::new(8);
        c.fill(0x1000, &line_with(&[0x0050_0093]));
        c.sync_epoch(0); // matches the initial epoch: nothing happens
        assert_eq!(c.len(), 1);
        c.sync_epoch(3);
        assert!(c.is_empty());
        assert_eq!(c.stats.flushes, 1);
        c.sync_epoch(3); // idempotent
        assert_eq!(c.stats.flushes, 1);
    }

    #[test]
    fn capacity_overflow_resets_wholesale() {
        let mut c = DecodeCache::new(2);
        c.fill(0x0, &line_with(&[0x0050_0093]));
        c.fill(0x40, &line_with(&[0x0050_0093]));
        c.fill(0x80, &line_with(&[0x0050_0093]));
        assert_eq!(c.len(), 1, "reset then refilled with the new line");
        assert_eq!(c.stats.flushes, 1);
        assert!(c.get(0x80).is_some());
    }

    #[test]
    fn million_word_sweep_bit_equals_fresh_decode() {
        // The exhaustive satellite: a seeded 1M-word sweep asserting cached
        // lookups bit-equal fresh `decode()` results, including refetch
        // after invalidation.
        let mut c = DecodeCache::new(DEFAULT_LINES);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        const WORDS: usize = 1 << 20;
        const LINES: usize = WORDS / LINE_SLOTS;
        let mut images: Vec<[u8; LINE_BYTES as usize]> = Vec::with_capacity(LINES);
        for _ in 0..LINES {
            let mut bytes = [0u8; LINE_BYTES as usize];
            for chunk in bytes.chunks_exact_mut(8) {
                chunk.copy_from_slice(&rng().to_le_bytes());
            }
            images.push(bytes);
        }
        // Pass 1: fill + verify every slot against a fresh decode().
        for (i, bytes) in images.iter().enumerate() {
            let pa = i as u64 * LINE_BYTES;
            let line = match c.get(pa) {
                Some(line) => line,
                None => c.fill(pa, bytes),
            };
            for (slot, chunk) in bytes.chunks_exact(4).enumerate() {
                let word = u32::from_le_bytes(chunk.try_into().unwrap());
                assert_eq!(line.slots[slot], decode(word).map_err(|_| word));
                let expect_cost = decode(word).map(|i| instr_cost(&i)).unwrap_or(0);
                assert_eq!(line.cost[slot] as u64, expect_cost);
            }
        }
        // Pass 2: revisit a seeded sample through the cache; mutate some
        // lines in "memory", invalidate, and check the refetch decodes the
        // new bytes (not the stale cached ones).
        for _ in 0..50_000 {
            let idx = (rng() % LINES as u64) as usize;
            let pa = idx as u64 * LINE_BYTES;
            if rng() % 8 == 0 {
                // Store over the line: new word at a random slot.
                let slot = (rng() % LINE_SLOTS as u64) as usize;
                let new_word = rng() as u32;
                images[idx][slot * 4..slot * 4 + 4].copy_from_slice(&new_word.to_le_bytes());
                c.invalidate_range(pa + slot as u64 * 4, 4);
                assert!(c.get(pa).is_none(), "invalidated line must miss");
            }
            let line = match c.get(pa) {
                Some(line) => line,
                None => c.fill(pa, &images[idx]),
            };
            let slot = (rng() % LINE_SLOTS as u64) as usize;
            let word = u32::from_le_bytes(images[idx][slot * 4..slot * 4 + 4].try_into().unwrap());
            assert_eq!(line.slots[slot], decode(word).map_err(|_| word));
        }
        assert!(c.stats.hits > 0 && c.stats.invalidations > 0);
    }
}
