//! RV64IM instruction decoding.

/// A decoded instruction. Register fields are architectural indices (0–31).
// Field names follow the RISC-V specification (`rd`, `rs1`, `rs2`, `imm`,
// `offset`); per-field rustdoc would only restate them.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Load upper immediate.
    Lui { rd: u8, imm: i64 },
    /// Add upper immediate to PC.
    Auipc { rd: u8, imm: i64 },
    /// Jump and link.
    Jal { rd: u8, offset: i64 },
    /// Jump and link register.
    Jalr { rd: u8, rs1: u8, offset: i64 },
    /// Conditional branch.
    Branch {
        kind: BranchKind,
        rs1: u8,
        rs2: u8,
        offset: i64,
    },
    /// Memory load.
    Load {
        kind: LoadKind,
        rd: u8,
        rs1: u8,
        offset: i64,
    },
    /// Memory store.
    Store {
        kind: StoreKind,
        rs2: u8,
        rs1: u8,
        offset: i64,
    },
    /// Register–immediate ALU operation.
    OpImm {
        kind: AluKind,
        rd: u8,
        rs1: u8,
        imm: i64,
    },
    /// Register–immediate ALU operation on the low 32 bits.
    OpImm32 {
        kind: AluKind,
        rd: u8,
        rs1: u8,
        imm: i64,
    },
    /// Register–register ALU operation.
    Op {
        kind: AluKind,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    /// Register–register ALU operation on the low 32 bits.
    Op32 {
        kind: AluKind,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    /// Environment call.
    Ecall,
    /// Breakpoint.
    Ebreak,
    /// FENCE (a no-op in this single-hart interpreter).
    Fence,
}

/// Branch comparison kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// Load widths and extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadKind {
    /// Sign-extended byte.
    Lb,
    /// Sign-extended half.
    Lh,
    /// Sign-extended word.
    Lw,
    /// Doubleword.
    Ld,
    /// Zero-extended byte.
    Lbu,
    /// Zero-extended half.
    Lhu,
    /// Zero-extended word.
    Lwu,
}

/// Store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// Byte.
    Sb,
    /// Half.
    Sh,
    /// Word.
    Sw,
    /// Doubleword.
    Sd,
}

/// ALU operation kinds (shared between OP, OP-IMM, and the 32-bit forms;
/// the M-extension kinds only appear in register–register forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluKind {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Shift left logical.
    Sll,
    /// Set if less than (signed).
    Slt,
    /// Set if less than (unsigned).
    Sltu,
    /// Exclusive or.
    Xor,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Inclusive or.
    Or,
    /// And.
    And,
    /// Multiply (M).
    Mul,
    /// Divide, signed (M).
    Div,
    /// Divide, unsigned (M).
    Divu,
    /// Remainder, signed (M).
    Rem,
    /// Remainder, unsigned (M).
    Remu,
}

/// Decode failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalInstruction(pub u32);

fn sext(value: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((value as i64) << shift) >> shift
}

fn rd(word: u32) -> u8 {
    ((word >> 7) & 0x1f) as u8
}

fn rs1(word: u32) -> u8 {
    ((word >> 15) & 0x1f) as u8
}

fn rs2(word: u32) -> u8 {
    ((word >> 20) & 0x1f) as u8
}

fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

fn funct7(word: u32) -> u32 {
    word >> 25
}

/// Decodes one 32-bit instruction word.
///
/// # Errors
///
/// [`IllegalInstruction`] for encodings outside the supported RV64IM subset.
pub fn decode(word: u32) -> Result<Instr, IllegalInstruction> {
    let opcode = word & 0x7f;
    match opcode {
        0x37 => Ok(Instr::Lui {
            rd: rd(word),
            imm: sext(word & 0xffff_f000, 32),
        }),
        0x17 => Ok(Instr::Auipc {
            rd: rd(word),
            imm: sext(word & 0xffff_f000, 32),
        }),
        0x6f => {
            let imm = ((word >> 31) & 1) << 20
                | ((word >> 12) & 0xff) << 12
                | ((word >> 20) & 1) << 11
                | ((word >> 21) & 0x3ff) << 1;
            Ok(Instr::Jal {
                rd: rd(word),
                offset: sext(imm, 21),
            })
        }
        0x67 if funct3(word) == 0 => Ok(Instr::Jalr {
            rd: rd(word),
            rs1: rs1(word),
            offset: sext(word >> 20, 12),
        }),
        0x63 => {
            let kind = match funct3(word) {
                0b000 => BranchKind::Eq,
                0b001 => BranchKind::Ne,
                0b100 => BranchKind::Lt,
                0b101 => BranchKind::Ge,
                0b110 => BranchKind::Ltu,
                0b111 => BranchKind::Geu,
                _ => return Err(IllegalInstruction(word)),
            };
            let imm = ((word >> 31) & 1) << 12
                | ((word >> 7) & 1) << 11
                | ((word >> 25) & 0x3f) << 5
                | ((word >> 8) & 0xf) << 1;
            Ok(Instr::Branch {
                kind,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: sext(imm, 13),
            })
        }
        0x03 => {
            let kind = match funct3(word) {
                0b000 => LoadKind::Lb,
                0b001 => LoadKind::Lh,
                0b010 => LoadKind::Lw,
                0b011 => LoadKind::Ld,
                0b100 => LoadKind::Lbu,
                0b101 => LoadKind::Lhu,
                0b110 => LoadKind::Lwu,
                _ => return Err(IllegalInstruction(word)),
            };
            Ok(Instr::Load {
                kind,
                rd: rd(word),
                rs1: rs1(word),
                offset: sext(word >> 20, 12),
            })
        }
        0x23 => {
            let kind = match funct3(word) {
                0b000 => StoreKind::Sb,
                0b001 => StoreKind::Sh,
                0b010 => StoreKind::Sw,
                0b011 => StoreKind::Sd,
                _ => return Err(IllegalInstruction(word)),
            };
            let imm = ((word >> 25) & 0x7f) << 5 | ((word >> 7) & 0x1f);
            Ok(Instr::Store {
                kind,
                rs2: rs2(word),
                rs1: rs1(word),
                offset: sext(imm, 12),
            })
        }
        0x13 => {
            let imm = sext(word >> 20, 12);
            let kind = match funct3(word) {
                0b000 => AluKind::Add,
                0b010 => AluKind::Slt,
                0b011 => AluKind::Sltu,
                0b100 => AluKind::Xor,
                0b110 => AluKind::Or,
                0b111 => AluKind::And,
                0b001 if (word >> 26) == 0 => {
                    return Ok(Instr::OpImm {
                        kind: AluKind::Sll,
                        rd: rd(word),
                        rs1: rs1(word),
                        imm: ((word >> 20) & 0x3f) as i64,
                    })
                }
                0b101 => {
                    let shamt = ((word >> 20) & 0x3f) as i64;
                    let kind = if (word >> 26) == 0b010000 {
                        AluKind::Sra
                    } else {
                        AluKind::Srl
                    };
                    return Ok(Instr::OpImm {
                        kind,
                        rd: rd(word),
                        rs1: rs1(word),
                        imm: shamt,
                    });
                }
                _ => return Err(IllegalInstruction(word)),
            };
            Ok(Instr::OpImm {
                kind,
                rd: rd(word),
                rs1: rs1(word),
                imm,
            })
        }
        0x1b => {
            let kind = match funct3(word) {
                0b000 => {
                    return Ok(Instr::OpImm32 {
                        kind: AluKind::Add,
                        rd: rd(word),
                        rs1: rs1(word),
                        imm: sext(word >> 20, 12),
                    })
                }
                0b001 => AluKind::Sll,
                0b101 => {
                    if funct7(word) == 0b0100000 {
                        AluKind::Sra
                    } else {
                        AluKind::Srl
                    }
                }
                _ => return Err(IllegalInstruction(word)),
            };
            Ok(Instr::OpImm32 {
                kind,
                rd: rd(word),
                rs1: rs1(word),
                imm: ((word >> 20) & 0x1f) as i64,
            })
        }
        0x33 => {
            let kind = match (funct7(word), funct3(word)) {
                (0b0000000, 0b000) => AluKind::Add,
                (0b0100000, 0b000) => AluKind::Sub,
                (0b0000000, 0b001) => AluKind::Sll,
                (0b0000000, 0b010) => AluKind::Slt,
                (0b0000000, 0b011) => AluKind::Sltu,
                (0b0000000, 0b100) => AluKind::Xor,
                (0b0000000, 0b101) => AluKind::Srl,
                (0b0100000, 0b101) => AluKind::Sra,
                (0b0000000, 0b110) => AluKind::Or,
                (0b0000000, 0b111) => AluKind::And,
                (0b0000001, 0b000) => AluKind::Mul,
                (0b0000001, 0b100) => AluKind::Div,
                (0b0000001, 0b101) => AluKind::Divu,
                (0b0000001, 0b110) => AluKind::Rem,
                (0b0000001, 0b111) => AluKind::Remu,
                _ => return Err(IllegalInstruction(word)),
            };
            Ok(Instr::Op {
                kind,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
            })
        }
        0x3b => {
            let kind = match (funct7(word), funct3(word)) {
                (0b0000000, 0b000) => AluKind::Add,
                (0b0100000, 0b000) => AluKind::Sub,
                (0b0000000, 0b001) => AluKind::Sll,
                (0b0000000, 0b101) => AluKind::Srl,
                (0b0100000, 0b101) => AluKind::Sra,
                (0b0000001, 0b000) => AluKind::Mul,
                _ => return Err(IllegalInstruction(word)),
            };
            Ok(Instr::Op32 {
                kind,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
            })
        }
        0x73 => match word >> 20 {
            0 if funct3(word) == 0 && rd(word) == 0 && rs1(word) == 0 => Ok(Instr::Ecall),
            1 if funct3(word) == 0 && rd(word) == 0 && rs1(word) == 0 => Ok(Instr::Ebreak),
            _ => Err(IllegalInstruction(word)),
        },
        0x0f => Ok(Instr::Fence),
        _ => Err(IllegalInstruction(word)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_canonical_encodings() {
        // addi x1, x0, 5  => 0x00500093
        assert_eq!(
            decode(0x0050_0093).unwrap(),
            Instr::OpImm {
                kind: AluKind::Add,
                rd: 1,
                rs1: 0,
                imm: 5
            }
        );
        // add x3, x1, x2 => 0x002081b3
        assert_eq!(
            decode(0x0020_81b3).unwrap(),
            Instr::Op {
                kind: AluKind::Add,
                rd: 3,
                rs1: 1,
                rs2: 2
            }
        );
        // lui x5, 0x12345 => 0x123452b7
        assert_eq!(
            decode(0x1234_52b7).unwrap(),
            Instr::Lui {
                rd: 5,
                imm: 0x1234_5000
            }
        );
        // ecall / ebreak
        assert_eq!(decode(0x0000_0073).unwrap(), Instr::Ecall);
        assert_eq!(decode(0x0010_0073).unwrap(), Instr::Ebreak);
        // ld x6, 8(x2) => 0x00813303
        assert_eq!(
            decode(0x0081_3303).unwrap(),
            Instr::Load {
                kind: LoadKind::Ld,
                rd: 6,
                rs1: 2,
                offset: 8
            }
        );
        // sd x6, 16(x2) => 0x00613823
        assert_eq!(
            decode(0x0061_3823).unwrap(),
            Instr::Store {
                kind: StoreKind::Sd,
                rs2: 6,
                rs1: 2,
                offset: 16
            }
        );
        // mul x10, x10, x11 => 0x02b50533
        assert_eq!(
            decode(0x02b5_0533).unwrap(),
            Instr::Op {
                kind: AluKind::Mul,
                rd: 10,
                rs1: 10,
                rs2: 11
            }
        );
    }

    #[test]
    fn negative_immediates_sign_extend() {
        // addi x1, x0, -1 => 0xfff00093
        assert_eq!(
            decode(0xfff0_0093).unwrap(),
            Instr::OpImm {
                kind: AluKind::Add,
                rd: 1,
                rs1: 0,
                imm: -1
            }
        );
        // beq x0, x0, -4 => imm[12|10:5]=0xfe.., offset -4.
        // jal x0, -8:
        let Instr::Jal { offset, .. } = decode(0xff9f_f06f).unwrap() else {
            panic!("not a jal")
        };
        assert_eq!(offset, -8);
    }

    #[test]
    fn illegal_encodings_rejected() {
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xffff_ffff).is_err());
        // Unsupported opcode (floating point LOAD-FP 0x07).
        assert!(decode(0x0000_0007).is_err());
    }
}
