//! A tiny two-pass assembler for writing RV64IM programs in Rust.
//!
//! Instructions are emitted by mnemonic-named methods; control flow uses
//! [`Label`]s that may be referenced before they are bound. `assemble`
//! patches every pending reference and returns the image bytes.

/// A code label (forward references allowed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Debug, Clone, Copy)]
enum Pending {
    Branch { word_index: usize, label: Label },
    Jal { word_index: usize, label: Label },
}

/// The assembler.
#[derive(Debug, Default)]
pub struct Asm {
    words: Vec<u32>,
    labels: Vec<Option<usize>>, // label → word index
    pending: Vec<Pending>,
}

fn r_type(funct7: u32, rs2: u8, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    funct7 << 25
        | (rs2 as u32) << 20
        | (rs1 as u32) << 15
        | funct3 << 12
        | (rd as u32) << 7
        | opcode
}

fn i_type(imm: i64, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    assert!(
        (-2048..=2047).contains(&imm),
        "i-type immediate out of range: {imm}"
    );
    ((imm as u32) & 0xfff) << 20 | (rs1 as u32) << 15 | funct3 << 12 | (rd as u32) << 7 | opcode
}

fn s_type(imm: i64, rs2: u8, rs1: u8, funct3: u32, opcode: u32) -> u32 {
    assert!(
        (-2048..=2047).contains(&imm),
        "s-type immediate out of range: {imm}"
    );
    let imm = (imm as u32) & 0xfff;
    (imm >> 5) << 25
        | (rs2 as u32) << 20
        | (rs1 as u32) << 15
        | funct3 << 12
        | (imm & 0x1f) << 7
        | opcode
}

fn b_type(offset: i64, rs2: u8, rs1: u8, funct3: u32) -> u32 {
    assert!(
        offset % 2 == 0 && (-4096..=4094).contains(&offset),
        "branch offset {offset}"
    );
    let imm = (offset as u32) & 0x1fff;
    ((imm >> 12) & 1) << 31
        | ((imm >> 5) & 0x3f) << 25
        | (rs2 as u32) << 20
        | (rs1 as u32) << 15
        | funct3 << 12
        | ((imm >> 1) & 0xf) << 8
        | ((imm >> 11) & 1) << 7
        | 0x63
}

fn j_type(offset: i64, rd: u8) -> u32 {
    assert!(
        offset % 2 == 0 && (-(1 << 20)..(1 << 20)).contains(&offset),
        "jal offset {offset}"
    );
    let imm = (offset as u32) & 0x1f_ffff;
    ((imm >> 20) & 1) << 31
        | ((imm >> 1) & 0x3ff) << 21
        | ((imm >> 11) & 1) << 20
        | ((imm >> 12) & 0xff) << 12
        | (rd as u32) << 7
        | 0x6f
}

impl Asm {
    /// A fresh assembler.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Current position in bytes.
    pub fn here(&self) -> u64 {
        self.words.len() as u64 * 4
    }

    /// Creates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds a label to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.words.len());
    }

    fn emit(&mut self, word: u32) {
        self.words.push(word);
    }

    // ---- ALU ----------------------------------------------------------

    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.emit(i_type(imm, rs1, 0b000, rd, 0x13));
    }

    /// `andi rd, rs1, imm`
    pub fn andi(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.emit(i_type(imm, rs1, 0b111, rd, 0x13));
    }

    /// `ori rd, rs1, imm`
    pub fn ori(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.emit(i_type(imm, rs1, 0b110, rd, 0x13));
    }

    /// `xori rd, rs1, imm`
    pub fn xori(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.emit(i_type(imm, rs1, 0b100, rd, 0x13));
    }

    /// `slli rd, rs1, shamt`
    pub fn slli(&mut self, rd: u8, rs1: u8, shamt: u8) {
        self.emit(i_type(shamt as i64, rs1, 0b001, rd, 0x13));
    }

    /// `srli rd, rs1, shamt`
    pub fn srli(&mut self, rd: u8, rs1: u8, shamt: u8) {
        self.emit(i_type(shamt as i64, rs1, 0b101, rd, 0x13));
    }

    /// `srai rd, rs1, shamt`
    pub fn srai(&mut self, rd: u8, rs1: u8, shamt: u8) {
        self.emit(i_type(
            (shamt as i64) | (0b010000 << 6),
            rs1,
            0b101,
            rd,
            0x13,
        ));
    }

    /// `lui rd, imm` (`imm` is the full sign-extended 32-bit value whose low
    /// 12 bits are zero).
    pub fn lui(&mut self, rd: u8, imm: i64) {
        assert_eq!(imm & 0xfff, 0, "lui immediate must be page-ish aligned");
        self.emit(((imm as u32) & 0xffff_f000) | (rd as u32) << 7 | 0x37);
    }

    /// `auipc rd, imm`
    pub fn auipc(&mut self, rd: u8, imm: i64) {
        assert_eq!(imm & 0xfff, 0);
        self.emit(((imm as u32) & 0xffff_f000) | (rd as u32) << 7 | 0x17);
    }

    /// `add rd, rs1, rs2`
    pub fn add(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(r_type(0, rs2, rs1, 0b000, rd, 0x33));
    }

    /// `sub rd, rs1, rs2`
    pub fn sub(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(r_type(0b0100000, rs2, rs1, 0b000, rd, 0x33));
    }

    /// `and rd, rs1, rs2`
    pub fn and(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(r_type(0, rs2, rs1, 0b111, rd, 0x33));
    }

    /// `or rd, rs1, rs2`
    pub fn or(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(r_type(0, rs2, rs1, 0b110, rd, 0x33));
    }

    /// `xor rd, rs1, rs2`
    pub fn xor(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(r_type(0, rs2, rs1, 0b100, rd, 0x33));
    }

    /// `sltu rd, rs1, rs2`
    pub fn sltu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(r_type(0, rs2, rs1, 0b011, rd, 0x33));
    }

    /// `mul rd, rs1, rs2`
    pub fn mul(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(r_type(1, rs2, rs1, 0b000, rd, 0x33));
    }

    /// `divu rd, rs1, rs2`
    pub fn divu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(r_type(1, rs2, rs1, 0b101, rd, 0x33));
    }

    /// `remu rd, rs1, rs2`
    pub fn remu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(r_type(1, rs2, rs1, 0b111, rd, 0x33));
    }

    // ---- Memory ---------------------------------------------------------

    /// `ld rd, offset(rs1)`
    pub fn ld(&mut self, rd: u8, offset: i64, rs1: u8) {
        self.emit(i_type(offset, rs1, 0b011, rd, 0x03));
    }

    /// `lw rd, offset(rs1)`
    pub fn lw(&mut self, rd: u8, offset: i64, rs1: u8) {
        self.emit(i_type(offset, rs1, 0b010, rd, 0x03));
    }

    /// `lbu rd, offset(rs1)`
    pub fn lbu(&mut self, rd: u8, offset: i64, rs1: u8) {
        self.emit(i_type(offset, rs1, 0b100, rd, 0x03));
    }

    /// `sd rs2, offset(rs1)`
    pub fn sd(&mut self, rs2: u8, offset: i64, rs1: u8) {
        self.emit(s_type(offset, rs2, rs1, 0b011, 0x23));
    }

    /// `sw rs2, offset(rs1)`
    pub fn sw(&mut self, rs2: u8, offset: i64, rs1: u8) {
        self.emit(s_type(offset, rs2, rs1, 0b010, 0x23));
    }

    /// `sb rs2, offset(rs1)`
    pub fn sb(&mut self, rs2: u8, offset: i64, rs1: u8) {
        self.emit(s_type(offset, rs2, rs1, 0b000, 0x23));
    }

    // ---- Control flow --------------------------------------------------

    fn branch(&mut self, funct3: u32, rs1: u8, rs2: u8, target: Label) {
        self.pending.push(Pending::Branch {
            word_index: self.words.len(),
            label: target,
        });
        // Placeholder with the correct register/funct fields; offset patched.
        self.emit(b_type(0, rs2, rs1, funct3));
    }

    /// `beq rs1, rs2, target`
    pub fn beq(&mut self, rs1: u8, rs2: u8, target: Label) {
        self.branch(0b000, rs1, rs2, target);
    }

    /// `bne rs1, rs2, target`
    pub fn bne(&mut self, rs1: u8, rs2: u8, target: Label) {
        self.branch(0b001, rs1, rs2, target);
    }

    /// `blt rs1, rs2, target` (signed)
    pub fn blt(&mut self, rs1: u8, rs2: u8, target: Label) {
        self.branch(0b100, rs1, rs2, target);
    }

    /// `bge rs1, rs2, target` (signed)
    pub fn bge(&mut self, rs1: u8, rs2: u8, target: Label) {
        self.branch(0b101, rs1, rs2, target);
    }

    /// `bltu rs1, rs2, target`
    pub fn bltu(&mut self, rs1: u8, rs2: u8, target: Label) {
        self.branch(0b110, rs1, rs2, target);
    }

    /// `jal rd, target`
    pub fn jal(&mut self, rd: u8, target: Label) {
        self.pending.push(Pending::Jal {
            word_index: self.words.len(),
            label: target,
        });
        self.emit(j_type(0, rd));
    }

    /// `jalr rd, offset(rs1)`
    pub fn jalr(&mut self, rd: u8, rs1: u8, offset: i64) {
        self.emit(i_type(offset, rs1, 0b000, rd, 0x67));
    }

    /// `ecall`
    pub fn ecall(&mut self) {
        self.emit(0x0000_0073);
    }

    /// `ebreak`
    pub fn ebreak(&mut self) {
        self.emit(0x0010_0073);
    }

    /// Loads an arbitrary 64-bit constant into `rd` (expands to a
    /// shift/or chunk sequence; not size-optimal, always correct).
    pub fn li(&mut self, rd: u8, value: u64) {
        // 64 bits = one 9-bit head chunk + five 11-bit chunks; every chunk
        // fits the positive range of a 12-bit signed immediate.
        let head = (value >> 55) as i64;
        self.addi(rd, 0, head);
        for chunk_idx in (0..5).rev() {
            let chunk = ((value >> (chunk_idx * 11)) & 0x7ff) as i64;
            self.slli(rd, rd, 11);
            if chunk != 0 {
                self.ori(rd, rd, chunk);
            }
        }
    }

    /// Finalises: patches all label references and returns the image.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label is unbound.
    pub fn assemble(mut self) -> Vec<u8> {
        for p in std::mem::take(&mut self.pending) {
            match p {
                Pending::Branch { word_index, label } => {
                    let target = self.labels[label.0].expect("branch target label unbound") as i64;
                    let offset = (target - word_index as i64) * 4;
                    let old = self.words[word_index];
                    let rs2 = ((old >> 20) & 0x1f) as u8;
                    let rs1 = ((old >> 15) & 0x1f) as u8;
                    let funct3 = (old >> 12) & 0x7;
                    self.words[word_index] = b_type(offset, rs2, rs1, funct3);
                }
                Pending::Jal { word_index, label } => {
                    let target = self.labels[label.0].expect("jal target label unbound") as i64;
                    let offset = (target - word_index as i64) * 4;
                    let old = self.words[word_index];
                    let rd = ((old >> 7) & 0x1f) as u8;
                    self.words[word_index] = j_type(offset, rd);
                }
            }
        }
        let mut out = Vec::with_capacity(self.words.len() * 4);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::difftest::Rng;
    use crate::isa::{decode, AluKind, BranchKind, Instr, LoadKind, StoreKind};

    #[test]
    fn emitted_words_decode_back() {
        let mut a = Asm::new();
        a.addi(1, 0, 5);
        a.add(3, 1, 2);
        a.sd(3, 16, 2);
        a.ld(4, 16, 2);
        a.ecall();
        let image = a.assemble();
        let words: Vec<u32> = image
            .chunks(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(
            decode(words[0]).unwrap(),
            Instr::OpImm {
                kind: AluKind::Add,
                rd: 1,
                rs1: 0,
                imm: 5
            }
        );
        assert_eq!(decode(words[4]).unwrap(), Instr::Ecall);
    }

    #[test]
    fn labels_patch_forward_and_backward() {
        let mut a = Asm::new();
        let top = a.label();
        let done = a.label();
        a.bind(top);
        a.addi(1, 1, 1);
        a.beq(1, 2, done); // forward
        a.jal(0, top); // backward
        a.bind(done);
        a.ecall();
        let image = a.assemble();
        let words: Vec<u32> = image
            .chunks(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let Instr::Branch { offset, .. } = decode(words[1]).unwrap() else {
            panic!()
        };
        assert_eq!(offset, 8, "forward branch to ecall");
        let Instr::Jal { offset, .. } = decode(words[2]).unwrap() else {
            panic!()
        };
        assert_eq!(offset, -8, "backward jump to top");
    }

    /// A boxed emitter closure, paired with the instruction it must
    /// decode back to.
    type Emit = Box<dyn Fn(&mut Asm)>;

    /// Assembles a single-instruction closure and decodes the word back.
    fn emit1(f: impl FnOnce(&mut Asm)) -> Instr {
        let mut a = Asm::new();
        f(&mut a);
        let image = a.assemble();
        let word = u32::from_le_bytes(image[0..4].try_into().unwrap());
        decode(word).unwrap_or_else(|e| panic!("emitted word {word:#010x} illegal: {e:?}"))
    }

    /// The exhaustive round-trip property: every emitter, over boundary and
    /// seeded-random operands, decodes back to exactly the instruction it
    /// was asked to encode.
    #[test]
    fn every_emitter_round_trips_through_decode() {
        let mut rng = Rng::new(0xa5e);
        let mut regs: Vec<u8> = vec![0, 1, 15, 30, 31];
        regs.extend((0..8).map(|_| (rng.next_u64() % 32) as u8));
        let imms: Vec<i64> = vec![-2048, -1, 0, 1, 7, 2047];

        for &rd in &regs {
            for &rs1 in &regs {
                // I-type ALU + loads + jalr over every boundary immediate.
                for &imm in &imms {
                    let cases: Vec<(Instr, Emit)> = vec![
                        (
                            Instr::OpImm {
                                kind: AluKind::Add,
                                rd,
                                rs1,
                                imm,
                            },
                            Box::new(move |a: &mut Asm| a.addi(rd, rs1, imm)),
                        ),
                        (
                            Instr::OpImm {
                                kind: AluKind::And,
                                rd,
                                rs1,
                                imm,
                            },
                            Box::new(move |a: &mut Asm| a.andi(rd, rs1, imm)),
                        ),
                        (
                            Instr::OpImm {
                                kind: AluKind::Or,
                                rd,
                                rs1,
                                imm,
                            },
                            Box::new(move |a: &mut Asm| a.ori(rd, rs1, imm)),
                        ),
                        (
                            Instr::OpImm {
                                kind: AluKind::Xor,
                                rd,
                                rs1,
                                imm,
                            },
                            Box::new(move |a: &mut Asm| a.xori(rd, rs1, imm)),
                        ),
                        (
                            Instr::Load {
                                kind: LoadKind::Ld,
                                rd,
                                rs1,
                                offset: imm,
                            },
                            Box::new(move |a: &mut Asm| a.ld(rd, imm, rs1)),
                        ),
                        (
                            Instr::Load {
                                kind: LoadKind::Lw,
                                rd,
                                rs1,
                                offset: imm,
                            },
                            Box::new(move |a: &mut Asm| a.lw(rd, imm, rs1)),
                        ),
                        (
                            Instr::Load {
                                kind: LoadKind::Lbu,
                                rd,
                                rs1,
                                offset: imm,
                            },
                            Box::new(move |a: &mut Asm| a.lbu(rd, imm, rs1)),
                        ),
                        (
                            Instr::Jalr {
                                rd,
                                rs1,
                                offset: imm,
                            },
                            Box::new(move |a: &mut Asm| a.jalr(rd, rs1, imm)),
                        ),
                    ];
                    for (expect, emit) in cases {
                        assert_eq!(emit1(emit), expect);
                    }
                    // Stores: rs2 plays the data role.
                    let rs2 = rd;
                    assert_eq!(
                        emit1(move |a| a.sd(rs2, imm, rs1)),
                        Instr::Store {
                            kind: StoreKind::Sd,
                            rs2,
                            rs1,
                            offset: imm
                        }
                    );
                    assert_eq!(
                        emit1(move |a| a.sw(rs2, imm, rs1)),
                        Instr::Store {
                            kind: StoreKind::Sw,
                            rs2,
                            rs1,
                            offset: imm
                        }
                    );
                    assert_eq!(
                        emit1(move |a| a.sb(rs2, imm, rs1)),
                        Instr::Store {
                            kind: StoreKind::Sb,
                            rs2,
                            rs1,
                            offset: imm
                        }
                    );
                }
                // Shifts over the full 6-bit shamt range.
                for shamt in 0..64u8 {
                    assert_eq!(
                        emit1(move |a| a.slli(rd, rs1, shamt)),
                        Instr::OpImm {
                            kind: AluKind::Sll,
                            rd,
                            rs1,
                            imm: shamt as i64
                        }
                    );
                    assert_eq!(
                        emit1(move |a| a.srli(rd, rs1, shamt)),
                        Instr::OpImm {
                            kind: AluKind::Srl,
                            rd,
                            rs1,
                            imm: shamt as i64
                        }
                    );
                    assert_eq!(
                        emit1(move |a| a.srai(rd, rs1, shamt)),
                        Instr::OpImm {
                            kind: AluKind::Sra,
                            rd,
                            rs1,
                            imm: shamt as i64
                        }
                    );
                }
                // R-type over every register pair drawn.
                for &rs2 in &regs {
                    let rr: Vec<(AluKind, Emit)> = vec![
                        (
                            AluKind::Add,
                            Box::new(move |a: &mut Asm| a.add(rd, rs1, rs2)),
                        ),
                        (
                            AluKind::Sub,
                            Box::new(move |a: &mut Asm| a.sub(rd, rs1, rs2)),
                        ),
                        (
                            AluKind::And,
                            Box::new(move |a: &mut Asm| a.and(rd, rs1, rs2)),
                        ),
                        (AluKind::Or, Box::new(move |a: &mut Asm| a.or(rd, rs1, rs2))),
                        (
                            AluKind::Xor,
                            Box::new(move |a: &mut Asm| a.xor(rd, rs1, rs2)),
                        ),
                        (
                            AluKind::Sltu,
                            Box::new(move |a: &mut Asm| a.sltu(rd, rs1, rs2)),
                        ),
                        (
                            AluKind::Mul,
                            Box::new(move |a: &mut Asm| a.mul(rd, rs1, rs2)),
                        ),
                        (
                            AluKind::Divu,
                            Box::new(move |a: &mut Asm| a.divu(rd, rs1, rs2)),
                        ),
                        (
                            AluKind::Remu,
                            Box::new(move |a: &mut Asm| a.remu(rd, rs1, rs2)),
                        ),
                    ];
                    for (kind, emit) in rr {
                        assert_eq!(emit1(emit), Instr::Op { kind, rd, rs1, rs2 });
                    }
                }
            }
            // U-type: boundary upper immediates (low 12 bits zero).
            for imm in [0i64, 0x1000, 0x7fff_f000, -4096, i32::MIN as i64] {
                assert_eq!(emit1(move |a| a.lui(rd, imm)), Instr::Lui { rd, imm });
                assert_eq!(emit1(move |a| a.auipc(rd, imm)), Instr::Auipc { rd, imm });
            }
        }
        assert_eq!(emit1(|a| a.ecall()), Instr::Ecall);
        assert_eq!(emit1(|a| a.ebreak()), Instr::Ebreak);
    }

    #[test]
    fn branch_and_jump_offsets_round_trip_at_every_distance() {
        // Forward and backward control flow over a spread of distances; the
        // patched offset must decode back to exactly the label distance.
        for gap in [1usize, 2, 3, 8, 100, 1000] {
            let mut a = Asm::new();
            let fwd = a.label();
            a.beq(1, 2, fwd);
            a.jal(5, fwd);
            for _ in 0..gap {
                a.addi(0, 0, 0);
            }
            a.bind(fwd);
            let back = a.label();
            a.bind(back);
            a.bne(3, 4, back);
            a.jal(0, back);
            let image = a.assemble();
            let words: Vec<u32> = image
                .chunks(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let fwd_bytes = (gap as i64 + 2) * 4;
            assert_eq!(
                decode(words[0]).unwrap(),
                Instr::Branch {
                    kind: BranchKind::Eq,
                    rs1: 1,
                    rs2: 2,
                    offset: fwd_bytes
                }
            );
            assert_eq!(
                decode(words[1]).unwrap(),
                Instr::Jal {
                    rd: 5,
                    offset: fwd_bytes - 4
                }
            );
            let back_idx = 2 + gap;
            assert_eq!(
                decode(words[back_idx]).unwrap(),
                Instr::Branch {
                    kind: BranchKind::Ne,
                    rs1: 3,
                    rs2: 4,
                    offset: 0
                }
            );
            assert_eq!(
                decode(words[back_idx + 1]).unwrap(),
                Instr::Jal { rd: 0, offset: -4 }
            );
        }
    }

    #[test]
    fn li_expansion_always_decodes_legal() {
        let mut rng = Rng::new(0x11);
        let mut values: Vec<u64> = vec![0, 1, u64::MAX, i64::MIN as u64, 0xdead_beef];
        values.extend((0..64).map(|_| rng.next_u64()));
        for value in values {
            let mut a = Asm::new();
            a.li(7, value);
            let image = a.assemble();
            for chunk in image.chunks(4) {
                let word = u32::from_le_bytes(chunk.try_into().unwrap());
                decode(word).unwrap_or_else(|e| panic!("li({value:#x}) emitted {e:?}"));
            }
        }
    }

    #[test]
    #[should_panic(expected = "immediate out of range")]
    fn oversized_immediate_panics() {
        Asm::new().addi(1, 0, 4096);
    }

    #[test]
    #[should_panic(expected = "label unbound")]
    fn unbound_label_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.jal(0, l);
        a.assemble();
    }
}
