//! Differential testing rig for the two interpreter paths.
//!
//! [`run_diff`] boots two identical single-page machines from the same
//! image, drives one through the seed oracle [`Cpu::step_ref`] and the
//! other through the decoded-block fast path [`Cpu::step`], and compares
//! *everything* after every instruction: the step result (event or trap),
//! the register file, the PC, all [`crate::hart::CpuStats`] counters
//! (including the cycle charges), and — periodically and at the end — the
//! raw bytes of both physical memories.
//!
//! [`gen_program`] emits seeded RV64IM word streams biased toward the
//! paths that can diverge: self-modifying stores into the code page,
//! M-extension edge cases (division by zero, `i64::MIN / -1` overflow,
//! MULH-shaped encodings the ISA rejects), illegal raw words, bounded
//! branches, and wild indirect jumps that fault. [`shrink`] is a greedy
//! ddmin (the `hypertee-model::shrink` idiom) that minimizes a diverging
//! word stream; [`run_campaign`] ties the three together for
//! `tests/interp_diff.rs` and the `verify.sh` smoke.

use crate::dicache::{DecodeCache, DEFAULT_LINES};
use crate::hart::Cpu;
use hypertee_mem::addr::{KeyId, PhysAddr, Ppn, VirtAddr, PAGE_SIZE};
use hypertee_mem::pagetable::{PageTable, Perms};
use hypertee_mem::phys::FrameAllocator;
use hypertee_mem::system::{CoreMmu, MemorySystem};

/// Virtual base of the (writable — the fuzzer self-modifies) code page.
pub const CODE: u64 = 0x1_0000;
/// Virtual base of the data page.
pub const DATA: u64 = 0x2_0000;

/// Splitmix64 — the rig's seeded generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator at `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

// Local encoders (the `asm.rs` ones are private; these four are all the
// generator needs and are exercised against `decode` by the round-trip
// property test in `asm.rs`).
fn r_type(funct7: u32, rs2: u8, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    (funct7 << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn i_type(imm: i64, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    (((imm as u32) & 0xfff) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn s_type(imm: i64, rs2: u8, rs1: u8, funct3: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5) & 0x7f) << 25
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | (imm & 0x1f) << 7
        | 0x23
}

fn b_type(offset: i64, rs2: u8, rs1: u8, funct3: u32) -> u32 {
    let imm = offset as u32;
    ((imm >> 12) & 1) << 31
        | ((imm >> 5) & 0x3f) << 25
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((imm >> 1) & 0xf) << 8
        | ((imm >> 11) & 1) << 7
        | 0x63
}

fn j_type(offset: i64, rd: u8) -> u32 {
    let imm = offset as u32;
    ((imm >> 20) & 1) << 31
        | ((imm >> 1) & 0x3ff) << 21
        | ((imm >> 11) & 1) << 20
        | ((imm >> 12) & 0xff) << 12
        | ((rd as u32) << 7)
        | 0x6f
}

/// Destination register pick that never clobbers the dedicated base
/// registers (`x8` = DATA, `x9` = CODE) the generator relies on.
fn pick_rd(rng: &mut Rng) -> u8 {
    loop {
        let r = rng.below(32) as u8;
        if r != 8 && r != 9 {
            return r;
        }
    }
}

/// Generates a seeded RV64IM word stream of length `len`, biased toward
/// interpreter-divergence hazards (see module docs).
pub fn gen_program(rng: &mut Rng, len: usize) -> Vec<u32> {
    const ALU_RR: &[(u32, u32)] = &[
        (0b0000000, 0b000), // add
        (0b0100000, 0b000), // sub
        (0b0000000, 0b001), // sll
        (0b0000000, 0b010), // slt
        (0b0000000, 0b011), // sltu
        (0b0000000, 0b100), // xor
        (0b0000000, 0b101), // srl
        (0b0100000, 0b101), // sra
        (0b0000000, 0b110), // or
        (0b0000000, 0b111), // and
        (0b0000001, 0b000), // mul
        (0b0000001, 0b100), // div
        (0b0000001, 0b101), // divu
        (0b0000001, 0b110), // rem
        (0b0000001, 0b111), // remu
    ];
    const LOAD_F3: &[(u32, u64)] = &[
        (0b000, 1), // lb
        (0b001, 2), // lh
        (0b010, 4), // lw
        (0b011, 8), // ld
        (0b100, 1), // lbu
        (0b101, 2), // lhu
        (0b110, 4), // lwu
    ];
    const STORE_F3: &[(u32, u64)] = &[(0b000, 1), (0b001, 2), (0b010, 4), (0b011, 8)];

    let mut words = Vec::with_capacity(len);
    for _ in 0..len {
        let rd = pick_rd(rng);
        let rs1 = rng.below(32) as u8;
        let rs2 = rng.below(32) as u8;
        let word = match rng.below(20) {
            0..=4 => {
                // Register–register ALU, M included — with seeded register
                // constants (0, -1, i64::MIN) this covers division by
                // zero, remainder by zero, and the MIN/-1 overflow.
                let (f7, f3) = ALU_RR[rng.below(ALU_RR.len() as u64) as usize];
                r_type(f7, rs2, rs1, f3, rd, 0x33)
            }
            5..=6 => {
                let f3 = [0b000, 0b010, 0b011, 0b100, 0b110, 0b111][rng.below(6) as usize];
                i_type(rng.next_u64() as i64 & 0xfff, rs1, f3, rd, 0x13)
            }
            7 => {
                // 32-bit forms (addw/subw/sllw/srlw/sraw/mulw + addiw).
                if rng.below(2) == 0 {
                    let (f7, f3) = [
                        (0b0000000, 0b000),
                        (0b0100000, 0b000),
                        (0b0000000, 0b001),
                        (0b0000000, 0b101),
                        (0b0100000, 0b101),
                        (0b0000001, 0b000),
                    ][rng.below(6) as usize];
                    r_type(f7, rs2, rs1, f3, rd, 0x3b)
                } else {
                    i_type(rng.next_u64() as i64 & 0xfff, rs1, 0b000, rd, 0x1b)
                }
            }
            8 => {
                let opcode = if rng.below(2) == 0 { 0x37 } else { 0x17 };
                ((rng.next_u64() as u32) & 0xffff_f000) | ((rd as u32) << 7) | opcode
            }
            9..=11 => {
                // Load through the DATA base; mostly aligned, 1-in-8
                // deliberately misaligned (a BusError both paths must
                // report identically).
                let (f3, size) = LOAD_F3[rng.below(LOAD_F3.len() as u64) as usize];
                let mut offset = rng.below(2040) & !(size - 1);
                if size > 1 && rng.below(8) == 0 {
                    offset += 1;
                }
                i_type(offset as i64, 8, f3, rd, 0x03)
            }
            12..=13 => {
                let (f3, size) = STORE_F3[rng.below(STORE_F3.len() as u64) as usize];
                let mut offset = rng.below(2040) & !(size - 1);
                if size > 1 && rng.below(8) == 0 {
                    offset += 1;
                }
                s_type(offset as i64, rs2, 8, f3)
            }
            14 => {
                // Self-modifying store into the code page: the decoded
                // cache must drop the line and refetch like the oracle.
                s_type((rng.below(510) * 4) as i64, rs2, 9, 0b010)
            }
            15 => {
                let f3 = [0b000, 0b001, 0b100, 0b101, 0b110, 0b111][rng.below(6) as usize];
                let offset = (rng.below(16) as i64 - 8) * 4;
                b_type(if offset == 0 { 4 } else { offset }, rs2, rs1, f3)
            }
            16 => {
                if rng.below(2) == 0 {
                    j_type((rng.below(16) as i64 - 8) * 4, rd)
                } else {
                    // Indirect jump: through the CODE base (bounded) or a
                    // wild register (usually a fetch fault both paths
                    // must agree on).
                    let base = if rng.below(2) == 0 { 9 } else { rs1 };
                    i_type((rng.below(510) * 4) as i64, base, 0b000, rd, 0x67)
                }
            }
            17 => {
                // MULH/MULHSU/MULHU-shaped probes: funct7=1 with funct3
                // 001/010/011 is *outside* the supported subset and must
                // decode Illegal on both paths.
                let f3 = [0b001, 0b010, 0b011][rng.below(3) as usize];
                r_type(0b0000001, rs2, rs1, f3, rd, 0x33)
            }
            18 => rng.next_u64() as u32, // raw word, usually illegal
            _ => match rng.below(4) {
                0 => 0x0000_0073, // ecall
                1 => 0x0010_0073, // ebreak
                2 => 0x0000_000f, // fence
                _ => i_type(rng.next_u64() as i64 & 0xfff, rs1, 0b000, rd, 0x13),
            },
        };
        words.push(word);
    }
    words
}

struct Half {
    sys: MemorySystem,
    mmu: CoreMmu,
    cpu: Cpu,
    code_pa: PhysAddr,
    data_pa: PhysAddr,
}

fn boot_half(image: &[u8]) -> Half {
    assert!(image.len() as u64 <= PAGE_SIZE, "program exceeds one page");
    let mut sys = MemorySystem::new(32 << 20, PhysAddr(0x4000));
    let mut frames = FrameAllocator::new(Ppn(16), Ppn(4000));
    let pt = PageTable::new(&mut frames, &mut sys.phys);
    let code = frames.alloc().unwrap();
    sys.phys.write(code.base(), image).unwrap();
    pt.map(
        VirtAddr(CODE),
        code,
        Perms::RWX,
        KeyId::HOST,
        &mut frames,
        &mut sys.phys,
    )
    .unwrap();
    let data = frames.alloc().unwrap();
    pt.map(
        VirtAddr(DATA),
        data,
        Perms::RW,
        KeyId::HOST,
        &mut frames,
        &mut sys.phys,
    )
    .unwrap();
    let mut mmu = CoreMmu::new(16);
    mmu.switch_table(Some(pt), false);
    let mut cpu = Cpu::new(VirtAddr(CODE));
    // Interesting constants for the M-extension edge cases; x8/x9 are the
    // generator's dedicated data/code bases.
    let interesting = [
        0,
        1,
        u64::MAX,
        i64::MIN as u64,
        i64::MAX as u64,
        2,
        0x8000_0000,
        DATA,
        DATA + 8,
        DATA + 1024,
        0xdead_beef,
        64,
        7,
        u32::MAX as u64,
    ];
    for (i, v) in interesting.iter().enumerate() {
        cpu.regs[i + 10] = *v;
    }
    cpu.regs[8] = DATA;
    cpu.regs[9] = CODE;
    Half {
        sys,
        mmu,
        cpu,
        code_pa: code.base(),
        data_pa: data.base(),
    }
}

fn compare_memory(a: &mut Half, b: &mut Half) -> Result<(), String> {
    let mut pa = vec![0u8; PAGE_SIZE as usize];
    let mut pb = vec![0u8; PAGE_SIZE as usize];
    for (label, pa_a, pa_b) in [
        ("code", a.code_pa, b.code_pa),
        ("data", a.data_pa, b.data_pa),
    ] {
        a.sys
            .phys
            .read(pa_a, &mut pa)
            .map_err(|e| format!("{e:?}"))?;
        b.sys
            .phys
            .read(pa_b, &mut pb)
            .map_err(|e| format!("{e:?}"))?;
        if let Some(off) = (0..pa.len()).find(|&i| pa[i] != pb[i]) {
            return Err(format!(
                "{label} page diverged at +{off:#x}: ref {:#04x} vs fast {:#04x}",
                pa[off], pb[off]
            ));
        }
    }
    Ok(())
}

/// Runs `words` in lockstep on both interpreter paths for up to
/// `max_steps` instructions.
///
/// # Errors
///
/// The first divergence, as a human-readable message naming the step and
/// the state that differed.
pub fn run_diff(words: &[u32], max_steps: u64) -> Result<(), String> {
    let image: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    let mut a = boot_half(&image);
    let mut b = boot_half(&image);
    let mut cache = DecodeCache::new(DEFAULT_LINES);
    let mut consecutive_traps = 0u32;
    for step in 0..max_steps {
        // A 4-byte fetch at the last halfword of a page would violate the
        // MMU page-bound contract identically on both paths (a seed-era
        // panic, not a divergence); steer the walk back to the program.
        if a.cpu.pc.0 % PAGE_SIZE == PAGE_SIZE - 2 {
            a.cpu.pc = VirtAddr(CODE);
            b.cpu.pc = VirtAddr(CODE);
        }
        let ra = a.cpu.step_ref(&mut a.mmu, &mut a.sys);
        let rb = b.cpu.step(&mut b.mmu, &mut b.sys, &mut cache);
        if ra != rb {
            return Err(format!(
                "step {step}: result diverged: ref {ra:?} vs fast {rb:?}"
            ));
        }
        if a.cpu.regs != b.cpu.regs {
            let x = (0..32).find(|&i| a.cpu.regs[i] != b.cpu.regs[i]).unwrap();
            return Err(format!(
                "step {step}: x{x} diverged: ref {:#x} vs fast {:#x}",
                a.cpu.regs[x], b.cpu.regs[x]
            ));
        }
        if a.cpu.pc != b.cpu.pc {
            return Err(format!(
                "step {step}: pc diverged: ref {:#x} vs fast {:#x}",
                a.cpu.pc.0, b.cpu.pc.0
            ));
        }
        if a.cpu.stats != b.cpu.stats {
            return Err(format!(
                "step {step}: stats diverged: ref {:?} vs fast {:?}",
                a.cpu.stats, b.cpu.stats
            ));
        }
        if ra.is_ok() {
            consecutive_traps = 0;
        } else {
            // Both trapped identically. Skip the faulting instruction —
            // or, if the walk is stuck (e.g. a wild jalr landed outside
            // the map), restart from the program base.
            consecutive_traps += 1;
            if consecutive_traps >= 8 {
                a.cpu.pc = VirtAddr(CODE);
                b.cpu.pc = VirtAddr(CODE);
                consecutive_traps = 0;
            } else {
                a.cpu.pc = VirtAddr(a.cpu.pc.0.wrapping_add(4));
                b.cpu.pc = VirtAddr(b.cpu.pc.0.wrapping_add(4));
            }
        }
        if step % 64 == 63 {
            compare_memory(&mut a, &mut b).map_err(|e| format!("step {step}: {e}"))?;
        }
    }
    compare_memory(&mut a, &mut b)
}

/// Greedy ddmin over a word stream (the `hypertee-model::shrink` idiom):
/// repeatedly deletes chunks, halving the chunk size, as long as
/// `diverges` keeps reproducing. Returns the minimized stream.
pub fn shrink(words: &[u32], mut diverges: impl FnMut(&[u32]) -> bool) -> Vec<u32> {
    const MAX_RUNS: usize = 2000;
    let mut current = words.to_vec();
    if !diverges(&current) {
        return current;
    }
    let mut runs = 0usize;
    let mut chunk = current.len().div_ceil(2).max(1);
    loop {
        let mut shrunk_this_pass = false;
        let mut start = 0;
        while start < current.len() && runs < MAX_RUNS {
            let end = (start + chunk).min(current.len());
            let mut candidate = current.clone();
            candidate.drain(start..end);
            runs += 1;
            if !candidate.is_empty() && diverges(&candidate) {
                current = candidate; // retry in place: indices shifted
                shrunk_this_pass = true;
            } else {
                start = end;
            }
        }
        if runs >= MAX_RUNS || (chunk == 1 && !shrunk_this_pass) {
            break;
        }
        if chunk > 1 {
            chunk = chunk.div_ceil(2);
        }
    }
    current
}

/// A seeded differential campaign: `programs` generated word streams, each
/// run for `max_steps` lockstep instructions.
#[derive(Debug, Clone, Copy)]
pub struct Campaign {
    /// Base seed; program `i` derives its stream from `seed + i`.
    pub seed: u64,
    /// Number of generated programs.
    pub programs: usize,
    /// Words per program.
    pub prog_len: usize,
    /// Lockstep instructions per program.
    pub max_steps: u64,
}

/// Runs a campaign; on the first divergence, ddmin-shrinks the program and
/// reports everything needed to reproduce.
///
/// # Errors
///
/// A reproduction report: seed, program index, the divergence message, and
/// the shrunk word stream in hex.
pub fn run_campaign(cfg: &Campaign) -> Result<(), String> {
    for i in 0..cfg.programs {
        let mut rng = Rng::new(cfg.seed.wrapping_add(i as u64));
        let words = gen_program(&mut rng, cfg.prog_len);
        if let Err(msg) = run_diff(&words, cfg.max_steps) {
            let shrunk = shrink(&words, |w| run_diff(w, cfg.max_steps).is_err());
            let final_msg = run_diff(&shrunk, cfg.max_steps)
                .err()
                .unwrap_or_else(|| msg.clone());
            let hex: Vec<String> = shrunk.iter().map(|w| format!("{w:#010x}")).collect();
            return Err(format!(
                "divergence at seed {} program {i}: {final_msg}\nshrunk to {} words: [{}]",
                cfg.seed.wrapping_add(i as u64),
                shrunk.len(),
                hex.join(", ")
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_streams_are_seed_deterministic() {
        let a = gen_program(&mut Rng::new(7), 64);
        let b = gen_program(&mut Rng::new(7), 64);
        let c = gen_program(&mut Rng::new(8), 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn short_campaign_is_green() {
        let cfg = Campaign {
            seed: 0xd1ff,
            programs: 4,
            prog_len: 96,
            max_steps: 1_500,
        };
        run_campaign(&cfg).unwrap();
    }

    #[test]
    fn shrink_minimizes_to_the_culprit_words() {
        // Synthetic divergence predicate: the stream "diverges" while it
        // still contains both marker words. ddmin must reduce 256 words to
        // exactly those two.
        let mut rng = Rng::new(42);
        let mut words = gen_program(&mut rng, 256);
        words[37] = 0xaaaa_aaaa;
        words[201] = 0xbbbb_bbbb;
        let shrunk = shrink(&words, |w| {
            w.contains(&0xaaaa_aaaa) && w.contains(&0xbbbb_bbbb)
        });
        assert_eq!(shrunk, vec![0xaaaa_aaaa, 0xbbbb_bbbb]);
    }

    #[test]
    fn shrink_returns_input_when_nothing_diverges() {
        let words = vec![1, 2, 3];
        assert_eq!(shrink(&words, |_| false), words);
    }
}
