//! The RV64IM interpreter: architectural state + execution through a
//! [`CoreMmu`].
//!
//! Two execution paths share one architectural state:
//!
//! * [`Cpu::step_ref`] — the seed fetch-decode-execute loop, kept verbatim
//!   as the differential oracle: every instruction fetch is a 4-byte MMU
//!   load (a full MKTME line round trip), decoded fresh.
//! * [`Cpu::run_block`] / [`Cpu::step`] — the fast path: decoded lines are
//!   cached by physical address ([`crate::dicache::DecodeCache`]) and
//!   straight-line blocks dispatch without touching memory, charging the
//!   timing model in one batched add per block.
//!
//! The contract, enforced by `tests/interp_diff.rs`: registers, PC, memory,
//! [`CpuStats`] (including `cycles`), and every trap are bit-identical
//! between the two paths at every step.

use crate::dicache::{DecodeCache, LINE_BYTES, LINE_SLOTS};
use crate::isa::{decode, AluKind, BranchKind, Instr, LoadKind, StoreKind};
use hypertee_mem::addr::{VirtAddr, PAGE_SIZE};
use hypertee_mem::system::{CoreMmu, MemorySystem};
use hypertee_mem::MemFault;

/// What one executed instruction produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Normal forward progress.
    Continue,
    /// `ecall` executed (syscall registers are in `a0..a7`); PC already
    /// advanced past it.
    Ecall,
    /// `ebreak` executed; PC already advanced past it.
    Ebreak,
}

/// Why execution trapped. Memory faults carry the *faulting* address and
/// leave PC at the faulting instruction so it can be retried after the
/// fault is serviced (the demand-paging contract, §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// A memory fault during fetch or data access.
    Mem(MemFault),
    /// An undecodable instruction: the raw word and the physical address it
    /// was fetched from (so diff-shrink traces point at the actual image
    /// byte, not just the virtual PC).
    Illegal {
        /// The undecodable instruction word.
        word: u32,
        /// Physical address of the word.
        pa: u64,
    },
}

impl core::fmt::Display for Trap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Trap::Mem(m) => write!(f, "memory trap: {m}"),
            Trap::Illegal { word, pa } => {
                write!(
                    f,
                    "illegal instruction {word:#010x} fetched from pa {pa:#x}"
                )
            }
        }
    }
}

/// Executed-instruction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Instructions retired.
    pub retired: u64,
    /// Memory (data) accesses performed.
    pub mem_ops: u64,
    /// Traps taken.
    pub traps: u64,
    /// Timing-model cycles charged for retired instructions
    /// ([`instr_cost`] per instruction; bit-identical between `step_ref`
    /// and block dispatch by the differential contract).
    pub cycles: u64,
}

/// The interpreter timing model: cycles charged per *retired* instruction
/// (a trapped instruction charges nothing — it either retries or kills the
/// task). Deliberately coarse BOOM-class latencies; what matters for the
/// reproduction is that both interpreter paths charge identically, which
/// holds by construction because block dispatch precomputes this per slot
/// at decode time.
pub fn instr_cost(instr: &Instr) -> u64 {
    match instr {
        Instr::Load { .. } | Instr::Store { .. } => 3,
        Instr::Op { kind, .. } | Instr::Op32 { kind, .. } => match kind {
            AluKind::Mul => 3,
            AluKind::Div | AluKind::Divu | AluKind::Rem | AluKind::Remu => 20,
            _ => 1,
        },
        Instr::Branch { .. } | Instr::Jal { .. } | Instr::Jalr { .. } => 2,
        Instr::Ecall | Instr::Ebreak => 2,
        Instr::Lui { .. } | Instr::Auipc { .. } | Instr::OpImm { .. } | Instr::OpImm32 { .. } => 1,
        Instr::Fence => 1,
    }
}

/// One hart's architectural state.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Integer registers; `regs[0]` is hardwired to zero.
    pub regs: [u64; 32],
    /// Program counter.
    pub pc: VirtAddr,
    /// Counters.
    pub stats: CpuStats,
}

impl Cpu {
    /// A CPU starting at `entry` with all registers zero.
    pub fn new(entry: VirtAddr) -> Cpu {
        Cpu {
            regs: [0; 32],
            pc: entry,
            stats: CpuStats::default(),
        }
    }

    fn write_reg(&mut self, rd: u8, value: u64) {
        if rd != 0 {
            self.regs[rd as usize] = value;
        }
    }

    fn load(
        &mut self,
        mmu: &mut CoreMmu,
        sys: &mut MemorySystem,
        va: u64,
        len: usize,
    ) -> Result<u64, Trap> {
        self.stats.mem_ops += 1;
        if !va.is_multiple_of(len as u64) {
            // Misaligned accesses split at page granularity would complicate
            // the MMU contract; treat as a bus error at the address.
            return Err(Trap::Mem(MemFault::BusError { pa: va }));
        }
        let mut buf = [0u8; 8];
        // Aligned accesses never cross a page.
        debug_assert!(va % PAGE_SIZE + len as u64 <= PAGE_SIZE);
        mmu.load(sys, VirtAddr(va), &mut buf[..len])
            .map_err(Trap::Mem)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn store(
        &mut self,
        mmu: &mut CoreMmu,
        sys: &mut MemorySystem,
        va: u64,
        len: usize,
        value: u64,
    ) -> Result<(), Trap> {
        self.stats.mem_ops += 1;
        if !va.is_multiple_of(len as u64) {
            return Err(Trap::Mem(MemFault::BusError { pa: va }));
        }
        let bytes = value.to_le_bytes();
        mmu.store(sys, VirtAddr(va), &bytes[..len])
            .map_err(Trap::Mem)
    }

    fn alu(kind: AluKind, a: u64, b: u64) -> u64 {
        match kind {
            AluKind::Add => a.wrapping_add(b),
            AluKind::Sub => a.wrapping_sub(b),
            AluKind::Sll => a.wrapping_shl((b & 0x3f) as u32),
            AluKind::Slt => ((a as i64) < (b as i64)) as u64,
            AluKind::Sltu => (a < b) as u64,
            AluKind::Xor => a ^ b,
            AluKind::Srl => a.wrapping_shr((b & 0x3f) as u32),
            AluKind::Sra => ((a as i64).wrapping_shr((b & 0x3f) as u32)) as u64,
            AluKind::Or => a | b,
            AluKind::And => a & b,
            AluKind::Mul => a.wrapping_mul(b),
            AluKind::Div => {
                if b == 0 {
                    u64::MAX
                } else {
                    ((a as i64).wrapping_div(b as i64)) as u64
                }
            }
            AluKind::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            AluKind::Rem => {
                if b == 0 {
                    a
                } else {
                    ((a as i64).wrapping_rem(b as i64)) as u64
                }
            }
            AluKind::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }

    fn alu32(kind: AluKind, a: u64, b: u64) -> u64 {
        let a32 = a as u32;
        let b32 = b as u32;
        let r = match kind {
            AluKind::Add => a32.wrapping_add(b32),
            AluKind::Sub => a32.wrapping_sub(b32),
            AluKind::Sll => a32.wrapping_shl(b32 & 0x1f),
            AluKind::Srl => a32.wrapping_shr(b32 & 0x1f),
            AluKind::Sra => ((a32 as i32).wrapping_shr(b32 & 0x1f)) as u32,
            AluKind::Mul => a32.wrapping_mul(b32),
            _ => a32, // other kinds never reach the 32-bit path
        };
        r as i32 as i64 as u64
    }

    /// Fetches, decodes, and executes one instruction through `mmu` — the
    /// seed fetch-decode-execute path, kept verbatim as the differential
    /// oracle for the decoded-block fast path ([`Cpu::run_block`]).
    ///
    /// # Errors
    ///
    /// Returns [`Trap`] with PC unchanged on memory faults (so the
    /// instruction retries after fault handling) and PC unchanged on
    /// illegal instructions.
    pub fn step_ref(
        &mut self,
        mmu: &mut CoreMmu,
        sys: &mut MemorySystem,
    ) -> Result<StepEvent, Trap> {
        // Fetch.
        let mut word_bytes = [0u8; 4];
        if let Err(f) = mmu.load(sys, self.pc, &mut word_bytes) {
            self.stats.traps += 1;
            return Err(Trap::Mem(f));
        }
        let word = u32::from_le_bytes(word_bytes);
        let instr = match decode(word) {
            Ok(i) => i,
            Err(e) => {
                self.stats.traps += 1;
                // The fetch just succeeded, so this resolves from the TLB;
                // fall back to the VA if translation state moved underneath.
                let pa = mmu
                    .translate_fetch(sys, self.pc)
                    .map(|p| p.0)
                    .unwrap_or(self.pc.0);
                return Err(Trap::Illegal { word: e.0, pa });
            }
        };
        let next_pc = VirtAddr(self.pc.0 + 4);
        let mut event = StepEvent::Continue;
        match instr {
            Instr::Lui { rd, imm } => {
                self.write_reg(rd, imm as u64);
                self.pc = next_pc;
            }
            Instr::Auipc { rd, imm } => {
                self.write_reg(rd, self.pc.0.wrapping_add(imm as u64));
                self.pc = next_pc;
            }
            Instr::Jal { rd, offset } => {
                self.write_reg(rd, next_pc.0);
                self.pc = VirtAddr(self.pc.0.wrapping_add(offset as u64));
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.regs[rs1 as usize].wrapping_add(offset as u64) & !1;
                self.write_reg(rd, next_pc.0);
                self.pc = VirtAddr(target);
            }
            Instr::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.regs[rs1 as usize];
                let b = self.regs[rs2 as usize];
                let taken = match kind {
                    BranchKind::Eq => a == b,
                    BranchKind::Ne => a != b,
                    BranchKind::Lt => (a as i64) < (b as i64),
                    BranchKind::Ge => (a as i64) >= (b as i64),
                    BranchKind::Ltu => a < b,
                    BranchKind::Geu => a >= b,
                };
                self.pc = if taken {
                    VirtAddr(self.pc.0.wrapping_add(offset as u64))
                } else {
                    next_pc
                };
            }
            Instr::Load {
                kind,
                rd,
                rs1,
                offset,
            } => {
                let va = self.regs[rs1 as usize].wrapping_add(offset as u64);
                let value = match kind {
                    LoadKind::Lb => self.load(mmu, sys, va, 1)? as i8 as i64 as u64,
                    LoadKind::Lbu => self.load(mmu, sys, va, 1)?,
                    LoadKind::Lh => self.load(mmu, sys, va, 2)? as i16 as i64 as u64,
                    LoadKind::Lhu => self.load(mmu, sys, va, 2)?,
                    LoadKind::Lw => self.load(mmu, sys, va, 4)? as i32 as i64 as u64,
                    LoadKind::Lwu => self.load(mmu, sys, va, 4)?,
                    LoadKind::Ld => self.load(mmu, sys, va, 8)?,
                };
                self.write_reg(rd, value);
                self.pc = next_pc;
            }
            Instr::Store {
                kind,
                rs2,
                rs1,
                offset,
            } => {
                let va = self.regs[rs1 as usize].wrapping_add(offset as u64);
                let value = self.regs[rs2 as usize];
                match kind {
                    StoreKind::Sb => self.store(mmu, sys, va, 1, value)?,
                    StoreKind::Sh => self.store(mmu, sys, va, 2, value)?,
                    StoreKind::Sw => self.store(mmu, sys, va, 4, value)?,
                    StoreKind::Sd => self.store(mmu, sys, va, 8, value)?,
                }
                self.pc = next_pc;
            }
            Instr::OpImm { kind, rd, rs1, imm } => {
                let v = Self::alu(kind, self.regs[rs1 as usize], imm as u64);
                self.write_reg(rd, v);
                self.pc = next_pc;
            }
            Instr::OpImm32 { kind, rd, rs1, imm } => {
                let v = Self::alu32(kind, self.regs[rs1 as usize], imm as u64);
                self.write_reg(rd, v);
                self.pc = next_pc;
            }
            Instr::Op { kind, rd, rs1, rs2 } => {
                let v = Self::alu(kind, self.regs[rs1 as usize], self.regs[rs2 as usize]);
                self.write_reg(rd, v);
                self.pc = next_pc;
            }
            Instr::Op32 { kind, rd, rs1, rs2 } => {
                let v = Self::alu32(kind, self.regs[rs1 as usize], self.regs[rs2 as usize]);
                self.write_reg(rd, v);
                self.pc = next_pc;
            }
            Instr::Ecall => {
                self.pc = next_pc;
                event = StepEvent::Ecall;
            }
            Instr::Ebreak => {
                self.pc = next_pc;
                event = StepEvent::Ebreak;
            }
            Instr::Fence => {
                self.pc = next_pc;
            }
        }
        self.stats.cycles += instr_cost(&instr);
        self.stats.retired += 1;
        Ok(event)
    }

    /// Executes one instruction through the decoded-line cache — the cached
    /// counterpart of [`Cpu::step_ref`], with identical architectural
    /// semantics (the `tests/interp_diff.rs` lockstep contract).
    ///
    /// # Errors
    ///
    /// Same as [`Cpu::step_ref`].
    pub fn step(
        &mut self,
        mmu: &mut CoreMmu,
        sys: &mut MemorySystem,
        cache: &mut DecodeCache,
    ) -> Result<StepEvent, Trap> {
        self.run_block(mmu, sys, cache, 1).1
    }

    /// Runs up to `budget` instructions through the decoded-block dispatch
    /// loop. Returns how many budget units were consumed (each executed
    /// *or trapped* instruction consumes one, matching the per-`step_ref`
    /// accounting of the seed exec loop) and the final event:
    /// `Ok(StepEvent::Continue)` means the budget ran out mid-flight.
    ///
    /// Timing charges accumulate locally and land on
    /// [`CpuStats::cycles`] in a single batched add when the block exits.
    pub fn run_block(
        &mut self,
        mmu: &mut CoreMmu,
        sys: &mut MemorySystem,
        cache: &mut DecodeCache,
        budget: u64,
    ) -> (u64, Result<StepEvent, Trap>) {
        cache.sync_epoch(mmu.flush_epoch);
        let mut used = 0u64;
        let mut cycles = 0u64;
        let result = 'run: loop {
            if used >= budget {
                break Ok(StepEvent::Continue);
            }
            // Misaligned PCs bypass the cache entirely: the seed fetch
            // semantics (including its page-bound panics) apply verbatim.
            if !self.pc.0.is_multiple_of(4) {
                used += 1;
                match self.step_ref(mmu, sys) {
                    Ok(StepEvent::Continue) => continue 'run,
                    other => break other,
                }
            }
            let line_pa = match mmu.translate_fetch(sys, self.pc) {
                Ok(pa) => pa.0 & !(LINE_BYTES - 1),
                Err(f) => {
                    self.stats.traps += 1;
                    used += 1;
                    break Err(Trap::Mem(f));
                }
            };
            let line = match cache.get(line_pa) {
                Some(line) => line,
                None => {
                    let va_line = VirtAddr(self.pc.0 & !(LINE_BYTES - 1));
                    let mut bytes = [0u8; LINE_BYTES as usize];
                    match mmu.load(sys, va_line, &mut bytes) {
                        Ok(()) => cache.fill(line_pa, &bytes),
                        Err(_) => {
                            // The line read failed (e.g. an integrity
                            // violation): retry as the exact seed 4-byte
                            // fetch so the reported fault is bit-identical
                            // to the oracle's.
                            used += 1;
                            match self.step_ref(mmu, sys) {
                                Ok(StepEvent::Continue) => continue 'run,
                                other => break other,
                            }
                        }
                    }
                }
            };
            // Straight-line dispatch within the decoded line.
            let mut slot = ((self.pc.0 & (LINE_BYTES - 1)) / 4) as usize;
            loop {
                if used >= budget {
                    break 'run Ok(StepEvent::Continue);
                }
                used += 1;
                let expected_next = self.pc.0 + 4;
                match line.slots[slot] {
                    Err(word) => {
                        self.stats.traps += 1;
                        break 'run Err(Trap::Illegal {
                            word,
                            pa: line_pa + slot as u64 * 4,
                        });
                    }
                    Ok(instr) => match self.exec_decoded(mmu, sys, cache, instr, line_pa) {
                        Ok((event, smc_hit)) => {
                            cycles += line.cost[slot] as u64;
                            if event != StepEvent::Continue {
                                break 'run Ok(event);
                            }
                            if smc_hit {
                                // A store just rewrote the line we are
                                // executing from: refetch before the next
                                // instruction, like the uncached oracle.
                                break;
                            }
                        }
                        Err(t) => break 'run Err(t),
                    },
                }
                if self.pc.0 != expected_next || slot + 1 >= LINE_SLOTS {
                    break; // control transfer or line end: re-enter
                }
                slot += 1;
            }
        };
        self.stats.cycles += cycles;
        (used, result)
    }

    /// Data store for the cached path: seed [`Cpu::store`] semantics plus
    /// store-side cache invalidation. Returns the physical address so the
    /// dispatch loop can detect stores into its own line.
    fn store_inv(
        &mut self,
        mmu: &mut CoreMmu,
        sys: &mut MemorySystem,
        cache: &mut DecodeCache,
        va: u64,
        len: usize,
        value: u64,
    ) -> Result<u64, Trap> {
        self.stats.mem_ops += 1;
        if !va.is_multiple_of(len as u64) {
            return Err(Trap::Mem(MemFault::BusError { pa: va }));
        }
        let bytes = value.to_le_bytes();
        let pa = mmu
            .store_traced(sys, VirtAddr(va), &bytes[..len])
            .map_err(Trap::Mem)?;
        cache.invalidate_range(pa.0, len as u64);
        Ok(pa.0)
    }

    /// Executes one already-decoded instruction — the dispatch-loop twin of
    /// the `step_ref` execute match, with the same architectural effects.
    /// Returns the event and whether a store hit the currently executing
    /// line (`line_pa`), which forces a refetch.
    fn exec_decoded(
        &mut self,
        mmu: &mut CoreMmu,
        sys: &mut MemorySystem,
        cache: &mut DecodeCache,
        instr: Instr,
        line_pa: u64,
    ) -> Result<(StepEvent, bool), Trap> {
        let next_pc = VirtAddr(self.pc.0 + 4);
        let mut event = StepEvent::Continue;
        let mut smc_hit = false;
        match instr {
            Instr::Lui { rd, imm } => {
                self.write_reg(rd, imm as u64);
                self.pc = next_pc;
            }
            Instr::Auipc { rd, imm } => {
                self.write_reg(rd, self.pc.0.wrapping_add(imm as u64));
                self.pc = next_pc;
            }
            Instr::Jal { rd, offset } => {
                self.write_reg(rd, next_pc.0);
                self.pc = VirtAddr(self.pc.0.wrapping_add(offset as u64));
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.regs[rs1 as usize].wrapping_add(offset as u64) & !1;
                self.write_reg(rd, next_pc.0);
                self.pc = VirtAddr(target);
            }
            Instr::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.regs[rs1 as usize];
                let b = self.regs[rs2 as usize];
                let taken = match kind {
                    BranchKind::Eq => a == b,
                    BranchKind::Ne => a != b,
                    BranchKind::Lt => (a as i64) < (b as i64),
                    BranchKind::Ge => (a as i64) >= (b as i64),
                    BranchKind::Ltu => a < b,
                    BranchKind::Geu => a >= b,
                };
                self.pc = if taken {
                    VirtAddr(self.pc.0.wrapping_add(offset as u64))
                } else {
                    next_pc
                };
            }
            Instr::Load {
                kind,
                rd,
                rs1,
                offset,
            } => {
                let va = self.regs[rs1 as usize].wrapping_add(offset as u64);
                let value = match kind {
                    LoadKind::Lb => self.load(mmu, sys, va, 1)? as i8 as i64 as u64,
                    LoadKind::Lbu => self.load(mmu, sys, va, 1)?,
                    LoadKind::Lh => self.load(mmu, sys, va, 2)? as i16 as i64 as u64,
                    LoadKind::Lhu => self.load(mmu, sys, va, 2)?,
                    LoadKind::Lw => self.load(mmu, sys, va, 4)? as i32 as i64 as u64,
                    LoadKind::Lwu => self.load(mmu, sys, va, 4)?,
                    LoadKind::Ld => self.load(mmu, sys, va, 8)?,
                };
                self.write_reg(rd, value);
                self.pc = next_pc;
            }
            Instr::Store {
                kind,
                rs2,
                rs1,
                offset,
            } => {
                let va = self.regs[rs1 as usize].wrapping_add(offset as u64);
                let value = self.regs[rs2 as usize];
                let len = match kind {
                    StoreKind::Sb => 1,
                    StoreKind::Sh => 2,
                    StoreKind::Sw => 4,
                    StoreKind::Sd => 8,
                };
                let pa = self.store_inv(mmu, sys, cache, va, len, value)?;
                smc_hit = pa & !(LINE_BYTES - 1) == line_pa;
                self.pc = next_pc;
            }
            Instr::OpImm { kind, rd, rs1, imm } => {
                let v = Self::alu(kind, self.regs[rs1 as usize], imm as u64);
                self.write_reg(rd, v);
                self.pc = next_pc;
            }
            Instr::OpImm32 { kind, rd, rs1, imm } => {
                let v = Self::alu32(kind, self.regs[rs1 as usize], imm as u64);
                self.write_reg(rd, v);
                self.pc = next_pc;
            }
            Instr::Op { kind, rd, rs1, rs2 } => {
                let v = Self::alu(kind, self.regs[rs1 as usize], self.regs[rs2 as usize]);
                self.write_reg(rd, v);
                self.pc = next_pc;
            }
            Instr::Op32 { kind, rd, rs1, rs2 } => {
                let v = Self::alu32(kind, self.regs[rs1 as usize], self.regs[rs2 as usize]);
                self.write_reg(rd, v);
                self.pc = next_pc;
            }
            Instr::Ecall => {
                self.pc = next_pc;
                event = StepEvent::Ecall;
            }
            Instr::Ebreak => {
                self.pc = next_pc;
                event = StepEvent::Ebreak;
            }
            Instr::Fence => {
                self.pc = next_pc;
            }
        }
        self.stats.retired += 1;
        Ok((event, smc_hit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use hypertee_mem::addr::{KeyId, PhysAddr, Ppn};
    use hypertee_mem::pagetable::{PageTable, Perms};
    use hypertee_mem::phys::FrameAllocator;

    const CODE: u64 = 0x1_0000;
    const DATA: u64 = 0x2_0000;

    fn machine(image: &[u8]) -> (MemorySystem, CoreMmu, Cpu) {
        let mut sys = MemorySystem::new(32 << 20, PhysAddr(0x4000));
        let mut frames = FrameAllocator::new(Ppn(16), Ppn(4000));
        let pt = PageTable::new(&mut frames, &mut sys.phys);
        let code = frames.alloc().unwrap();
        sys.phys.write(code.base(), image).unwrap();
        pt.map(
            VirtAddr(CODE),
            code,
            Perms::RX,
            KeyId::HOST,
            &mut frames,
            &mut sys.phys,
        )
        .unwrap();
        let data = frames.alloc().unwrap();
        pt.map(
            VirtAddr(DATA),
            data,
            Perms::RW,
            KeyId::HOST,
            &mut frames,
            &mut sys.phys,
        )
        .unwrap();
        let mut mmu = CoreMmu::new(16);
        mmu.switch_table(Some(pt), false);
        (sys, mmu, Cpu::new(VirtAddr(CODE)))
    }

    fn run_ref(image: &[u8], max_steps: usize) -> Cpu {
        let (mut sys, mut mmu, mut cpu) = machine(image);
        for _ in 0..max_steps {
            match cpu.step_ref(&mut mmu, &mut sys).expect("no trap") {
                StepEvent::Continue => {}
                StepEvent::Ecall | StepEvent::Ebreak => return cpu,
            }
        }
        panic!("program did not finish in {max_steps} steps");
    }

    /// Runs the image on both interpreter paths and asserts they agree on
    /// registers, PC, and every `CpuStats` counter before returning the
    /// cached-path CPU — so every functional test below doubles as a
    /// differential check.
    fn run(image: &[u8], max_steps: usize) -> Cpu {
        let reference = run_ref(image, max_steps);
        let (mut sys, mut mmu, mut cpu) = machine(image);
        let mut cache = DecodeCache::new(64);
        for _ in 0..max_steps {
            match cpu.step(&mut mmu, &mut sys, &mut cache).expect("no trap") {
                StepEvent::Continue => {}
                StepEvent::Ecall | StepEvent::Ebreak => {
                    assert_eq!(cpu.regs, reference.regs, "register file diverged");
                    assert_eq!(cpu.pc, reference.pc, "pc diverged");
                    assert_eq!(cpu.stats, reference.stats, "stats diverged");
                    return cpu;
                }
            }
        }
        panic!("program did not finish in {max_steps} steps");
    }

    #[test]
    fn arithmetic_and_exit() {
        let mut a = Asm::new();
        a.addi(10, 0, 21);
        a.slli(10, 10, 1); // 42
        a.ecall();
        let cpu = run(&a.assemble(), 10);
        assert_eq!(cpu.regs[10], 42);
        assert_eq!(cpu.stats.retired, 3);
    }

    #[test]
    fn loop_sums_one_to_ten() {
        // a0 = sum(1..=10) = 55.
        let mut a = Asm::new();
        a.addi(10, 0, 0); // acc
        a.addi(11, 0, 1); // i
        a.addi(12, 0, 11); // bound
        let top = a.label();
        let done = a.label();
        a.bind(top);
        a.beq(11, 12, done);
        a.add(10, 10, 11);
        a.addi(11, 11, 1);
        a.jal(0, top);
        a.bind(done);
        a.ecall();
        let cpu = run(&a.assemble(), 100);
        assert_eq!(cpu.regs[10], 55);
    }

    #[test]
    fn memory_roundtrip_all_widths() {
        let mut a = Asm::new();
        a.li(5, DATA);
        a.li(6, 0x1122_3344_5566_7788);
        a.sd(6, 0, 5);
        a.ld(7, 0, 5);
        a.lw(8, 0, 5); // sign-extended 0x55667788
        a.lbu(9, 7, 5); // top byte 0x11
        a.sb(6, 16, 5);
        a.lbu(28, 16, 5); // low byte 0x88
        a.ecall();
        let cpu = run(&a.assemble(), 100);
        assert_eq!(cpu.regs[7], 0x1122_3344_5566_7788);
        assert_eq!(cpu.regs[8], 0x5566_7788);
        assert_eq!(cpu.regs[9], 0x11);
        assert_eq!(cpu.regs[28], 0x88);
    }

    #[test]
    fn division_and_remainder() {
        let mut a = Asm::new();
        a.addi(10, 0, 100);
        a.addi(11, 0, 7);
        a.divu(12, 10, 11);
        a.remu(13, 10, 11);
        a.divu(14, 10, 0); // div by zero → all ones
        a.ecall();
        let cpu = run(&a.assemble(), 10);
        assert_eq!(cpu.regs[12], 14);
        assert_eq!(cpu.regs[13], 2);
        assert_eq!(cpu.regs[14], u64::MAX);
    }

    #[test]
    fn half_and_word_widths_sign_extend_correctly() {
        let mut a = Asm::new();
        a.li(5, DATA);
        a.li(6, 0xffff_8001);
        a.sw(6, 0, 5); // store word 0xffff8001
        a.lw(7, 0, 5); // sign-extended: 0xffffffffffff8001
                       // lhu of the low half: 0x8001; lh would sign-extend.
        let lhu = (5u32 << 15) | (0b101 << 12) | (8 << 7) | 0x03;
        let lh = (5u32 << 15) | (0b001 << 12) | (9 << 7) | 0x03;
        let sh = (6u32 << 20) | (5 << 15) | (0b001 << 12) | (8 << 7) | 0x23; // sh x6, 8(x5)
        let lwu = (5u32 << 15) | (0b110 << 12) | (28 << 7) | 0x03;
        let mut image = a.assemble();
        for w in [lhu, lh, sh, lwu, 0x0000_0073] {
            image.extend_from_slice(&w.to_le_bytes());
        }
        let cpu = run(&image, 100);
        assert_eq!(cpu.regs[7], 0xffff_ffff_ffff_8001);
        assert_eq!(cpu.regs[8], 0x8001, "lhu zero-extends");
        assert_eq!(cpu.regs[9], 0xffff_ffff_ffff_8001, "lh sign-extends");
        assert_eq!(cpu.regs[28], 0xffff_8001, "lwu zero-extends");
    }

    #[test]
    fn shift_and_compare_semantics() {
        let mut a = Asm::new();
        a.li(5, 0x8000_0000_0000_0000);
        a.srli(6, 5, 1); // logical: 0x4000...
        a.srai(7, 5, 1); // arithmetic: 0xC000...
        a.addi(28, 0, -1);
        a.sltu(29, 0, 28); // 0 < u64::MAX unsigned → 1
        a.addi(17, 0, 93);
        a.ecall();
        let cpu = run(&a.assemble(), 100);
        assert_eq!(cpu.regs[6], 0x4000_0000_0000_0000);
        assert_eq!(cpu.regs[7], 0xc000_0000_0000_0000);
        assert_eq!(cpu.regs[29], 1);
    }

    #[test]
    fn auipc_is_pc_relative() {
        let mut a = Asm::new();
        a.auipc(5, 0x1000);
        a.addi(17, 0, 93);
        a.ecall();
        let cpu = run(&a.assemble(), 10);
        assert_eq!(cpu.regs[5], CODE + 0x1000);
    }

    #[test]
    fn x0_is_hardwired() {
        let mut a = Asm::new();
        a.addi(0, 0, 123);
        a.add(10, 0, 0);
        a.ecall();
        let cpu = run(&a.assemble(), 10);
        assert_eq!(cpu.regs[0], 0);
        assert_eq!(cpu.regs[10], 0);
    }

    #[test]
    fn function_call_via_jalr() {
        // call double(a0); a0 = 8.
        let mut a = Asm::new();
        let func = a.label();
        a.addi(10, 0, 4);
        a.jal(1, func); // ra = return addr
        a.ecall();
        a.bind(func);
        a.add(10, 10, 10);
        a.jalr(0, 1, 0);
        let cpu = run(&a.assemble(), 20);
        assert_eq!(cpu.regs[10], 8);
    }

    #[test]
    fn page_fault_leaves_pc_for_retry() {
        let mut a = Asm::new();
        a.li(5, 0x9999_0000); // unmapped
        a.ld(6, 0, 5);
        a.ecall();
        let (mut sys, mut mmu, mut cpu) = machine(&a.assemble());
        let mut cache = DecodeCache::new(64);
        // Run until the trap (through the cached path: data faults must
        // surface identically to the oracle's).
        let trap = loop {
            match cpu.step(&mut mmu, &mut sys, &mut cache) {
                Ok(_) => {}
                Err(t) => break t,
            }
        };
        assert!(matches!(
            trap,
            Trap::Mem(MemFault::PageFault { va: 0x9999_0000 })
        ));
        let faulting_pc = cpu.pc;
        // Service the fault (map the page) and retry the same instruction.
        let mut frames = FrameAllocator::new(Ppn(3000), Ppn(3100));
        let frame = frames.alloc().unwrap();
        sys.phys.write_u64(frame.base(), 0xfeed).unwrap();
        mmu.table
            .unwrap()
            .map(
                VirtAddr(0x9999_0000),
                frame,
                Perms::RW,
                KeyId::HOST,
                &mut frames,
                &mut sys.phys,
            )
            .unwrap();
        assert_eq!(
            cpu.pc, faulting_pc,
            "PC must stay at the faulting instruction"
        );
        loop {
            match cpu.step(&mut mmu, &mut sys, &mut cache).unwrap() {
                StepEvent::Continue => {}
                StepEvent::Ecall => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(cpu.regs[6], 0xfeed);
    }

    #[test]
    fn misaligned_access_traps() {
        let mut a = Asm::new();
        a.li(5, DATA + 1);
        a.ld(6, 0, 5);
        let (mut sys, mut mmu, mut cpu) = machine(&a.assemble());
        let mut cache = DecodeCache::new(64);
        let trap = loop {
            match cpu.step(&mut mmu, &mut sys, &mut cache) {
                Ok(_) => {}
                Err(t) => break t,
            }
        };
        assert!(matches!(trap, Trap::Mem(MemFault::BusError { .. })));
    }

    #[test]
    fn illegal_instruction_traps_with_physical_address() {
        let image = 0u32.to_le_bytes();
        let (mut sys, mut mmu, mut cpu) = machine(&image);
        let code_pa = mmu.translate_fetch(&mut sys, cpu.pc).unwrap().0;
        let trap = cpu.step_ref(&mut mmu, &mut sys).unwrap_err();
        assert_eq!(
            trap,
            Trap::Illegal {
                word: 0,
                pa: code_pa
            }
        );
        // The cached path reports the identical trap.
        let (mut sys, mut mmu, mut cpu) = machine(&image);
        let mut cache = DecodeCache::new(64);
        let cached_trap = cpu.step(&mut mmu, &mut sys, &mut cache).unwrap_err();
        assert_eq!(cached_trap, trap);
        assert_eq!(cpu.stats.traps, 1);
        assert_eq!(cpu.stats.cycles, 0, "trapped instruction charges nothing");
    }

    #[test]
    fn run_block_batches_cycles_and_honours_budget() {
        // Same straight-line program as `arithmetic_and_exit`: 2×1-cycle ALU
        // plus one 2-cycle ecall.
        let mut a = Asm::new();
        a.addi(10, 0, 21);
        a.slli(10, 10, 1);
        a.ecall();
        let image = a.assemble();

        let (mut sys, mut mmu, mut cpu) = machine(&image);
        let mut cache = DecodeCache::new(64);
        let (used, event) = cpu.run_block(&mut mmu, &mut sys, &mut cache, 100);
        assert_eq!(event, Ok(StepEvent::Ecall));
        assert_eq!(used, 3);
        assert_eq!(cpu.stats.retired, 3);
        assert_eq!(cpu.stats.cycles, 1 + 1 + 2);

        // A budget of 2 stops mid-block with the partial charge applied.
        let (mut sys, mut mmu, mut cpu) = machine(&image);
        let mut cache = DecodeCache::new(64);
        let (used, event) = cpu.run_block(&mut mmu, &mut sys, &mut cache, 2);
        assert_eq!(event, Ok(StepEvent::Continue));
        assert_eq!(used, 2);
        assert_eq!(cpu.stats.retired, 2);
        assert_eq!(cpu.stats.cycles, 2);
        assert_eq!(cpu.pc.0, CODE + 8);
    }

    #[test]
    fn self_modifying_store_invalidates_cached_line() {
        // The program overwrites its own loop body between two passes; the
        // store goes through the writable code mapping, so the decode cache
        // must drop the line and re-fetch the new bytes. a0 = 1 (old body,
        // pass 1) + 100 (new body, pass 2) = 101.
        let overwrite: u32 = (100u32 << 20) | (10 << 15) | (10 << 7) | 0x13; // addi x10,x10,100
        let mut a = Asm::new();
        a.li(5, CODE);
        a.li(6, overwrite as u64);
        a.addi(7, 0, 2); // pass counter
        let top = a.label();
        a.bind(top);
        let body_off = a.here();
        a.addi(10, 10, 1); // <- overwritten after pass 1
        a.sw(6, body_off as i64, 5);
        a.addi(7, 7, -1);
        a.bne(7, 0, top);
        a.ecall();
        let image = a.assemble();

        // `machine` maps code RX; remap it writable for this test.
        let mut sys = MemorySystem::new(32 << 20, PhysAddr(0x4000));
        let mut frames = FrameAllocator::new(Ppn(16), Ppn(4000));
        let pt = PageTable::new(&mut frames, &mut sys.phys);
        let code = frames.alloc().unwrap();
        sys.phys.write(code.base(), &image).unwrap();
        pt.map(
            VirtAddr(CODE),
            code,
            Perms::RWX,
            KeyId::HOST,
            &mut frames,
            &mut sys.phys,
        )
        .unwrap();
        let mut mmu = CoreMmu::new(16);
        mmu.switch_table(Some(pt), false);

        let mut reference = Cpu::new(VirtAddr(CODE));
        {
            let mut sys_ref = MemorySystem::new(32 << 20, PhysAddr(0x4000));
            sys_ref.phys.write(code.base(), &image).unwrap();
            let mut frames_ref = FrameAllocator::new(Ppn(2000), Ppn(4000));
            let pt_ref = PageTable::new(&mut frames_ref, &mut sys_ref.phys);
            pt_ref
                .map(
                    VirtAddr(CODE),
                    code,
                    Perms::RWX,
                    KeyId::HOST,
                    &mut frames_ref,
                    &mut sys_ref.phys,
                )
                .unwrap();
            let mut mmu_ref = CoreMmu::new(16);
            mmu_ref.switch_table(Some(pt_ref), false);
            while let StepEvent::Continue = reference.step_ref(&mut mmu_ref, &mut sys_ref).unwrap()
            {
            }
        }
        assert_eq!(reference.regs[10], 101, "oracle must see the new bytes");

        let mut cpu = Cpu::new(VirtAddr(CODE));
        let mut cache = DecodeCache::new(64);
        let (_, event) = cpu.run_block(&mut mmu, &mut sys, &mut cache, 10_000);
        assert_eq!(event, Ok(StepEvent::Ecall));
        assert_eq!(cpu.regs[10], 101, "cached path must execute the new bytes");
        assert_eq!(cpu.regs, reference.regs);
        assert_eq!(cpu.stats, reference.stats, "charges must match the oracle");
        assert!(
            cache.stats.invalidations > 0,
            "the SMC store must invalidate"
        );
    }

    #[test]
    fn epoch_bump_flushes_decode_cache_between_blocks() {
        let mut a = Asm::new();
        a.addi(10, 10, 1);
        a.ecall();
        let image = a.assemble();
        let (mut sys, mut mmu, mut cpu) = machine(&image);
        let mut cache = DecodeCache::new(64);
        cpu.step(&mut mmu, &mut sys, &mut cache).unwrap();
        assert_eq!(cache.len(), 1);
        let flushes_before = cache.stats.flushes;
        mmu.note_mapping_teardown();
        cpu.step(&mut mmu, &mut sys, &mut cache).unwrap();
        assert_eq!(
            cache.stats.flushes,
            flushes_before + 1,
            "epoch bump must flush the cache"
        );
    }

    #[test]
    fn op32_sign_extends() {
        let mut a = Asm::new();
        a.li(5, 0x7fff_ffff);
        a.addi(6, 0, 1);
        // addw → 0x80000000 sign-extended to 0xffffffff80000000.
        let word = {
            // addw rd=7 rs1=5 rs2=6: opcode 0x3b funct3 0.
            (6u32 << 20) | (5 << 15) | (7 << 7) | 0x3b
        };
        let mut image = a.assemble();
        image.extend_from_slice(&word.to_le_bytes());
        image.extend_from_slice(&0x0000_0073u32.to_le_bytes()); // ecall
        let cpu = run(&image, 50);
        assert_eq!(cpu.regs[7], 0xffff_ffff_8000_0000);
    }
}
