//! The RV64IM interpreter: architectural state + single-step execution
//! through a [`CoreMmu`].

use crate::isa::{decode, AluKind, BranchKind, Instr, LoadKind, StoreKind};
use hypertee_mem::addr::{VirtAddr, PAGE_SIZE};
use hypertee_mem::system::{CoreMmu, MemorySystem};
use hypertee_mem::MemFault;

/// What one executed instruction produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Normal forward progress.
    Continue,
    /// `ecall` executed (syscall registers are in `a0..a7`); PC already
    /// advanced past it.
    Ecall,
    /// `ebreak` executed; PC already advanced past it.
    Ebreak,
}

/// Why execution trapped. Memory faults carry the *faulting* address and
/// leave PC at the faulting instruction so it can be retried after the
/// fault is serviced (the demand-paging contract, §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// A memory fault during fetch or data access.
    Mem(MemFault),
    /// An undecodable instruction.
    Illegal(u32),
}

/// Executed-instruction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Instructions retired.
    pub retired: u64,
    /// Memory (data) accesses performed.
    pub mem_ops: u64,
    /// Traps taken.
    pub traps: u64,
}

/// One hart's architectural state.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Integer registers; `regs[0]` is hardwired to zero.
    pub regs: [u64; 32],
    /// Program counter.
    pub pc: VirtAddr,
    /// Counters.
    pub stats: CpuStats,
}

impl Cpu {
    /// A CPU starting at `entry` with all registers zero.
    pub fn new(entry: VirtAddr) -> Cpu {
        Cpu {
            regs: [0; 32],
            pc: entry,
            stats: CpuStats::default(),
        }
    }

    fn write_reg(&mut self, rd: u8, value: u64) {
        if rd != 0 {
            self.regs[rd as usize] = value;
        }
    }

    fn load(
        &mut self,
        mmu: &mut CoreMmu,
        sys: &mut MemorySystem,
        va: u64,
        len: usize,
    ) -> Result<u64, Trap> {
        self.stats.mem_ops += 1;
        if !va.is_multiple_of(len as u64) {
            // Misaligned accesses split at page granularity would complicate
            // the MMU contract; treat as a bus error at the address.
            return Err(Trap::Mem(MemFault::BusError { pa: va }));
        }
        let mut buf = [0u8; 8];
        // Aligned accesses never cross a page.
        debug_assert!(va % PAGE_SIZE + len as u64 <= PAGE_SIZE);
        mmu.load(sys, VirtAddr(va), &mut buf[..len])
            .map_err(Trap::Mem)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn store(
        &mut self,
        mmu: &mut CoreMmu,
        sys: &mut MemorySystem,
        va: u64,
        len: usize,
        value: u64,
    ) -> Result<(), Trap> {
        self.stats.mem_ops += 1;
        if !va.is_multiple_of(len as u64) {
            return Err(Trap::Mem(MemFault::BusError { pa: va }));
        }
        let bytes = value.to_le_bytes();
        mmu.store(sys, VirtAddr(va), &bytes[..len])
            .map_err(Trap::Mem)
    }

    fn alu(kind: AluKind, a: u64, b: u64) -> u64 {
        match kind {
            AluKind::Add => a.wrapping_add(b),
            AluKind::Sub => a.wrapping_sub(b),
            AluKind::Sll => a.wrapping_shl((b & 0x3f) as u32),
            AluKind::Slt => ((a as i64) < (b as i64)) as u64,
            AluKind::Sltu => (a < b) as u64,
            AluKind::Xor => a ^ b,
            AluKind::Srl => a.wrapping_shr((b & 0x3f) as u32),
            AluKind::Sra => ((a as i64).wrapping_shr((b & 0x3f) as u32)) as u64,
            AluKind::Or => a | b,
            AluKind::And => a & b,
            AluKind::Mul => a.wrapping_mul(b),
            AluKind::Div => {
                if b == 0 {
                    u64::MAX
                } else {
                    ((a as i64).wrapping_div(b as i64)) as u64
                }
            }
            AluKind::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            AluKind::Rem => {
                if b == 0 {
                    a
                } else {
                    ((a as i64).wrapping_rem(b as i64)) as u64
                }
            }
            AluKind::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }

    fn alu32(kind: AluKind, a: u64, b: u64) -> u64 {
        let a32 = a as u32;
        let b32 = b as u32;
        let r = match kind {
            AluKind::Add => a32.wrapping_add(b32),
            AluKind::Sub => a32.wrapping_sub(b32),
            AluKind::Sll => a32.wrapping_shl(b32 & 0x1f),
            AluKind::Srl => a32.wrapping_shr(b32 & 0x1f),
            AluKind::Sra => ((a32 as i32).wrapping_shr(b32 & 0x1f)) as u32,
            AluKind::Mul => a32.wrapping_mul(b32),
            _ => a32, // other kinds never reach the 32-bit path
        };
        r as i32 as i64 as u64
    }

    /// Fetches, decodes, and executes one instruction through `mmu`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap`] with PC unchanged on memory faults (so the
    /// instruction retries after fault handling) and PC unchanged on
    /// illegal instructions.
    pub fn step(&mut self, mmu: &mut CoreMmu, sys: &mut MemorySystem) -> Result<StepEvent, Trap> {
        // Fetch.
        let mut word_bytes = [0u8; 4];
        if let Err(f) = mmu.load(sys, self.pc, &mut word_bytes) {
            self.stats.traps += 1;
            return Err(Trap::Mem(f));
        }
        let word = u32::from_le_bytes(word_bytes);
        let instr = decode(word).map_err(|e| {
            self.stats.traps += 1;
            Trap::Illegal(e.0)
        })?;
        let next_pc = VirtAddr(self.pc.0 + 4);
        let mut event = StepEvent::Continue;
        match instr {
            Instr::Lui { rd, imm } => {
                self.write_reg(rd, imm as u64);
                self.pc = next_pc;
            }
            Instr::Auipc { rd, imm } => {
                self.write_reg(rd, self.pc.0.wrapping_add(imm as u64));
                self.pc = next_pc;
            }
            Instr::Jal { rd, offset } => {
                self.write_reg(rd, next_pc.0);
                self.pc = VirtAddr(self.pc.0.wrapping_add(offset as u64));
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.regs[rs1 as usize].wrapping_add(offset as u64) & !1;
                self.write_reg(rd, next_pc.0);
                self.pc = VirtAddr(target);
            }
            Instr::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.regs[rs1 as usize];
                let b = self.regs[rs2 as usize];
                let taken = match kind {
                    BranchKind::Eq => a == b,
                    BranchKind::Ne => a != b,
                    BranchKind::Lt => (a as i64) < (b as i64),
                    BranchKind::Ge => (a as i64) >= (b as i64),
                    BranchKind::Ltu => a < b,
                    BranchKind::Geu => a >= b,
                };
                self.pc = if taken {
                    VirtAddr(self.pc.0.wrapping_add(offset as u64))
                } else {
                    next_pc
                };
            }
            Instr::Load {
                kind,
                rd,
                rs1,
                offset,
            } => {
                let va = self.regs[rs1 as usize].wrapping_add(offset as u64);
                let value = match kind {
                    LoadKind::Lb => self.load(mmu, sys, va, 1)? as i8 as i64 as u64,
                    LoadKind::Lbu => self.load(mmu, sys, va, 1)?,
                    LoadKind::Lh => self.load(mmu, sys, va, 2)? as i16 as i64 as u64,
                    LoadKind::Lhu => self.load(mmu, sys, va, 2)?,
                    LoadKind::Lw => self.load(mmu, sys, va, 4)? as i32 as i64 as u64,
                    LoadKind::Lwu => self.load(mmu, sys, va, 4)?,
                    LoadKind::Ld => self.load(mmu, sys, va, 8)?,
                };
                self.write_reg(rd, value);
                self.pc = next_pc;
            }
            Instr::Store {
                kind,
                rs2,
                rs1,
                offset,
            } => {
                let va = self.regs[rs1 as usize].wrapping_add(offset as u64);
                let value = self.regs[rs2 as usize];
                match kind {
                    StoreKind::Sb => self.store(mmu, sys, va, 1, value)?,
                    StoreKind::Sh => self.store(mmu, sys, va, 2, value)?,
                    StoreKind::Sw => self.store(mmu, sys, va, 4, value)?,
                    StoreKind::Sd => self.store(mmu, sys, va, 8, value)?,
                }
                self.pc = next_pc;
            }
            Instr::OpImm { kind, rd, rs1, imm } => {
                let v = Self::alu(kind, self.regs[rs1 as usize], imm as u64);
                self.write_reg(rd, v);
                self.pc = next_pc;
            }
            Instr::OpImm32 { kind, rd, rs1, imm } => {
                let v = Self::alu32(kind, self.regs[rs1 as usize], imm as u64);
                self.write_reg(rd, v);
                self.pc = next_pc;
            }
            Instr::Op { kind, rd, rs1, rs2 } => {
                let v = Self::alu(kind, self.regs[rs1 as usize], self.regs[rs2 as usize]);
                self.write_reg(rd, v);
                self.pc = next_pc;
            }
            Instr::Op32 { kind, rd, rs1, rs2 } => {
                let v = Self::alu32(kind, self.regs[rs1 as usize], self.regs[rs2 as usize]);
                self.write_reg(rd, v);
                self.pc = next_pc;
            }
            Instr::Ecall => {
                self.pc = next_pc;
                event = StepEvent::Ecall;
            }
            Instr::Ebreak => {
                self.pc = next_pc;
                event = StepEvent::Ebreak;
            }
            Instr::Fence => {
                self.pc = next_pc;
            }
        }
        self.stats.retired += 1;
        Ok(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use hypertee_mem::addr::{KeyId, PhysAddr, Ppn};
    use hypertee_mem::pagetable::{PageTable, Perms};
    use hypertee_mem::phys::FrameAllocator;

    const CODE: u64 = 0x1_0000;
    const DATA: u64 = 0x2_0000;

    fn machine(image: &[u8]) -> (MemorySystem, CoreMmu, Cpu) {
        let mut sys = MemorySystem::new(32 << 20, PhysAddr(0x4000));
        let mut frames = FrameAllocator::new(Ppn(16), Ppn(4000));
        let pt = PageTable::new(&mut frames, &mut sys.phys);
        let code = frames.alloc().unwrap();
        sys.phys.write(code.base(), image).unwrap();
        pt.map(
            VirtAddr(CODE),
            code,
            Perms::RX,
            KeyId::HOST,
            &mut frames,
            &mut sys.phys,
        )
        .unwrap();
        let data = frames.alloc().unwrap();
        pt.map(
            VirtAddr(DATA),
            data,
            Perms::RW,
            KeyId::HOST,
            &mut frames,
            &mut sys.phys,
        )
        .unwrap();
        let mut mmu = CoreMmu::new(16);
        mmu.switch_table(Some(pt), false);
        (sys, mmu, Cpu::new(VirtAddr(CODE)))
    }

    fn run(image: &[u8], max_steps: usize) -> Cpu {
        let (mut sys, mut mmu, mut cpu) = machine(image);
        for _ in 0..max_steps {
            match cpu.step(&mut mmu, &mut sys).expect("no trap") {
                StepEvent::Continue => {}
                StepEvent::Ecall | StepEvent::Ebreak => return cpu,
            }
        }
        panic!("program did not finish in {max_steps} steps");
    }

    #[test]
    fn arithmetic_and_exit() {
        let mut a = Asm::new();
        a.addi(10, 0, 21);
        a.slli(10, 10, 1); // 42
        a.ecall();
        let cpu = run(&a.assemble(), 10);
        assert_eq!(cpu.regs[10], 42);
        assert_eq!(cpu.stats.retired, 3);
    }

    #[test]
    fn loop_sums_one_to_ten() {
        // a0 = sum(1..=10) = 55.
        let mut a = Asm::new();
        a.addi(10, 0, 0); // acc
        a.addi(11, 0, 1); // i
        a.addi(12, 0, 11); // bound
        let top = a.label();
        let done = a.label();
        a.bind(top);
        a.beq(11, 12, done);
        a.add(10, 10, 11);
        a.addi(11, 11, 1);
        a.jal(0, top);
        a.bind(done);
        a.ecall();
        let cpu = run(&a.assemble(), 100);
        assert_eq!(cpu.regs[10], 55);
    }

    #[test]
    fn memory_roundtrip_all_widths() {
        let mut a = Asm::new();
        a.li(5, DATA);
        a.li(6, 0x1122_3344_5566_7788);
        a.sd(6, 0, 5);
        a.ld(7, 0, 5);
        a.lw(8, 0, 5); // sign-extended 0x55667788
        a.lbu(9, 7, 5); // top byte 0x11
        a.sb(6, 16, 5);
        a.lbu(28, 16, 5); // low byte 0x88
        a.ecall();
        let cpu = run(&a.assemble(), 100);
        assert_eq!(cpu.regs[7], 0x1122_3344_5566_7788);
        assert_eq!(cpu.regs[8], 0x5566_7788);
        assert_eq!(cpu.regs[9], 0x11);
        assert_eq!(cpu.regs[28], 0x88);
    }

    #[test]
    fn division_and_remainder() {
        let mut a = Asm::new();
        a.addi(10, 0, 100);
        a.addi(11, 0, 7);
        a.divu(12, 10, 11);
        a.remu(13, 10, 11);
        a.divu(14, 10, 0); // div by zero → all ones
        a.ecall();
        let cpu = run(&a.assemble(), 10);
        assert_eq!(cpu.regs[12], 14);
        assert_eq!(cpu.regs[13], 2);
        assert_eq!(cpu.regs[14], u64::MAX);
    }

    #[test]
    fn half_and_word_widths_sign_extend_correctly() {
        let mut a = Asm::new();
        a.li(5, DATA);
        a.li(6, 0xffff_8001);
        a.sw(6, 0, 5); // store word 0xffff8001
        a.lw(7, 0, 5); // sign-extended: 0xffffffffffff8001
                       // lhu of the low half: 0x8001; lh would sign-extend.
        let lhu = (5u32 << 15) | (0b101 << 12) | (8 << 7) | 0x03;
        let lh = (5u32 << 15) | (0b001 << 12) | (9 << 7) | 0x03;
        let sh = (6u32 << 20) | (5 << 15) | (0b001 << 12) | (8 << 7) | 0x23; // sh x6, 8(x5)
        let lwu = (5u32 << 15) | (0b110 << 12) | (28 << 7) | 0x03;
        let mut image = a.assemble();
        for w in [lhu, lh, sh, lwu, 0x0000_0073] {
            image.extend_from_slice(&w.to_le_bytes());
        }
        let cpu = run(&image, 100);
        assert_eq!(cpu.regs[7], 0xffff_ffff_ffff_8001);
        assert_eq!(cpu.regs[8], 0x8001, "lhu zero-extends");
        assert_eq!(cpu.regs[9], 0xffff_ffff_ffff_8001, "lh sign-extends");
        assert_eq!(cpu.regs[28], 0xffff_8001, "lwu zero-extends");
    }

    #[test]
    fn shift_and_compare_semantics() {
        let mut a = Asm::new();
        a.li(5, 0x8000_0000_0000_0000);
        a.srli(6, 5, 1); // logical: 0x4000...
        a.srai(7, 5, 1); // arithmetic: 0xC000...
        a.addi(28, 0, -1);
        a.sltu(29, 0, 28); // 0 < u64::MAX unsigned → 1
        a.addi(17, 0, 93);
        a.ecall();
        let cpu = run(&a.assemble(), 100);
        assert_eq!(cpu.regs[6], 0x4000_0000_0000_0000);
        assert_eq!(cpu.regs[7], 0xc000_0000_0000_0000);
        assert_eq!(cpu.regs[29], 1);
    }

    #[test]
    fn auipc_is_pc_relative() {
        let mut a = Asm::new();
        a.auipc(5, 0x1000);
        a.addi(17, 0, 93);
        a.ecall();
        let cpu = run(&a.assemble(), 10);
        assert_eq!(cpu.regs[5], CODE + 0x1000);
    }

    #[test]
    fn x0_is_hardwired() {
        let mut a = Asm::new();
        a.addi(0, 0, 123);
        a.add(10, 0, 0);
        a.ecall();
        let cpu = run(&a.assemble(), 10);
        assert_eq!(cpu.regs[0], 0);
        assert_eq!(cpu.regs[10], 0);
    }

    #[test]
    fn function_call_via_jalr() {
        // call double(a0); a0 = 8.
        let mut a = Asm::new();
        let func = a.label();
        a.addi(10, 0, 4);
        a.jal(1, func); // ra = return addr
        a.ecall();
        a.bind(func);
        a.add(10, 10, 10);
        a.jalr(0, 1, 0);
        let cpu = run(&a.assemble(), 20);
        assert_eq!(cpu.regs[10], 8);
    }

    #[test]
    fn page_fault_leaves_pc_for_retry() {
        let mut a = Asm::new();
        a.li(5, 0x9999_0000); // unmapped
        a.ld(6, 0, 5);
        a.ecall();
        let (mut sys, mut mmu, mut cpu) = machine(&a.assemble());
        // Run until the trap.
        let trap = loop {
            match cpu.step(&mut mmu, &mut sys) {
                Ok(_) => {}
                Err(t) => break t,
            }
        };
        assert!(matches!(
            trap,
            Trap::Mem(MemFault::PageFault { va: 0x9999_0000 })
        ));
        let faulting_pc = cpu.pc;
        // Service the fault (map the page) and retry the same instruction.
        let mut frames = FrameAllocator::new(Ppn(3000), Ppn(3100));
        let frame = frames.alloc().unwrap();
        sys.phys.write_u64(frame.base(), 0xfeed).unwrap();
        mmu.table
            .unwrap()
            .map(
                VirtAddr(0x9999_0000),
                frame,
                Perms::RW,
                KeyId::HOST,
                &mut frames,
                &mut sys.phys,
            )
            .unwrap();
        assert_eq!(
            cpu.pc, faulting_pc,
            "PC must stay at the faulting instruction"
        );
        loop {
            match cpu.step(&mut mmu, &mut sys).unwrap() {
                StepEvent::Continue => {}
                StepEvent::Ecall => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(cpu.regs[6], 0xfeed);
    }

    #[test]
    fn misaligned_access_traps() {
        let mut a = Asm::new();
        a.li(5, DATA + 1);
        a.ld(6, 0, 5);
        let (mut sys, mut mmu, mut cpu) = machine(&a.assemble());
        let trap = loop {
            match cpu.step(&mut mmu, &mut sys) {
                Ok(_) => {}
                Err(t) => break t,
            }
        };
        assert!(matches!(trap, Trap::Mem(MemFault::BusError { .. })));
    }

    #[test]
    fn illegal_instruction_traps() {
        let image = 0u32.to_le_bytes();
        let (mut sys, mut mmu, mut cpu) = machine(&image);
        assert!(matches!(
            cpu.step(&mut mmu, &mut sys),
            Err(Trap::Illegal(0))
        ));
    }

    #[test]
    fn op32_sign_extends() {
        let mut a = Asm::new();
        a.li(5, 0x7fff_ffff);
        a.addi(6, 0, 1);
        // addw → 0x80000000 sign-extended to 0xffffffff80000000.
        let word = {
            // addw rd=7 rs1=5 rs2=6: opcode 0x3b funct3 0.
            (6u32 << 20) | (5 << 15) | (7 << 7) | 0x3b
        };
        let mut image = a.assemble();
        image.extend_from_slice(&word.to_le_bytes());
        image.extend_from_slice(&0x0000_0073u32.to_le_bytes()); // ecall
        let cpu = run(&image, 50);
        assert_eq!(cpu.regs[7], 0xffff_ffff_8000_0000);
    }
}
