//! A small RV64IM interpreter for the computing subsystem.
//!
//! The paper's CS cores are BOOM-class RISC-V processors. This crate gives
//! the reproduction a *functional* CS core: an RV64IM interpreter whose
//! instruction fetches and data accesses all go through
//! [`hypertee_mem::system::CoreMmu`] — i.e. through the enclave page table,
//! the TLB, the bitmap check, and the MKTME engine. That makes the paper's
//! demand-paging flow real: a program touching unmapped enclave heap takes a
//! genuine page fault, which EMCall routes to EMS for EALLOC (§IV-A), and
//! the instruction retries.
//!
//! * [`isa`] — instruction decoding (RV64I + M-extension multiply/divide).
//! * [`asm`] — a tiny two-pass assembler with labels, for writing test and
//!   example programs in Rust.
//! * [`hart`] — the interpreter: architectural registers plus two execution
//!   paths — the seed fetch-decode-execute oracle (`step_ref`) and the
//!   decoded-block fast path (`step`/`run_block`).
//! * [`dicache`] — the decoded-instruction cache behind the fast path,
//!   keyed by physical line and invalidated on the walk-cache flush
//!   discipline plus store-side hooks.
//! * [`difftest`] — the lockstep differential rig + seeded program
//!   generator + ddmin shrinker used by `tests/interp_diff.rs`.
//!
//! # Example
//!
//! ```
//! use hypertee_cpu::asm::Asm;
//! use hypertee_cpu::dicache::DecodeCache;
//! use hypertee_cpu::hart::{Cpu, StepEvent};
//! use hypertee_mem::addr::{KeyId, PhysAddr, Ppn, VirtAddr};
//! use hypertee_mem::pagetable::{PageTable, Perms};
//! use hypertee_mem::phys::FrameAllocator;
//! use hypertee_mem::system::{CoreMmu, MemorySystem};
//!
//! // a0 = 6 * 7; exit(a0).
//! let mut a = Asm::new();
//! a.addi(10, 0, 6);
//! a.addi(11, 0, 7);
//! a.mul(10, 10, 11);
//! a.addi(17, 0, 93); // exit syscall number
//! a.ecall();
//! let image = a.assemble();
//!
//! // Minimal address space: one code page at 0x1000.
//! let mut sys = MemorySystem::new(16 << 20, PhysAddr(0x4000));
//! let mut frames = FrameAllocator::new(Ppn(16), Ppn(2000));
//! let pt = PageTable::new(&mut frames, &mut sys.phys);
//! let code = frames.alloc().unwrap();
//! sys.phys.write(code.base(), &image).unwrap();
//! pt.map(VirtAddr(0x1000), code, Perms::RX, KeyId::HOST, &mut frames, &mut sys.phys)
//!     .unwrap();
//! let mut mmu = CoreMmu::new(16);
//! mmu.switch_table(Some(pt), false);
//!
//! let mut cpu = Cpu::new(VirtAddr(0x1000));
//! let mut icache = DecodeCache::new(64);
//! loop {
//!     match cpu.step(&mut mmu, &mut sys, &mut icache).unwrap() {
//!         StepEvent::Continue => {}
//!         StepEvent::Ecall => break,
//!         other => panic!("unexpected {other:?}"),
//!     }
//! }
//! assert_eq!(cpu.regs[10], 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod dicache;
pub mod difftest;
pub mod hart;
pub mod isa;
