//! SplitMix64: stateless mixing and per-shard deterministic streams.
//!
//! The parallel simulator (see `hypertee::shard`) needs randomness that is
//! *independent of thread count and interleaving*: every shard draws from
//! its own stream, keyed by `(campaign seed, shard id)`, so the schedule a
//! shard sees never depends on when the host OS ran its worker thread. The
//! splitmix64 finalizer used here is the same one the request pipeline has
//! charged its retry-back-off jitter with since the async-pipeline PR; this
//! module is its canonical home so every consumer provably shares one
//! definition.
//!
//! Two layers:
//!
//! * [`mix`] — the stateless splitmix64 finalizer. Feeding it distinct
//!   inputs yields decorrelated outputs; it can never perturb any other
//!   random stream because it carries no state.
//! * [`SplitMix64`] — a tiny sequential generator over the Weyl sequence,
//!   for shard-local draws that need a stream rather than a hash.
//!
//! [`derive_stream`] composes the two: a per-shard seed that is stable
//! under re-partitioning of *other* shards.

/// The splitmix64 increment (golden-ratio Weyl constant).
pub const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The stateless splitmix64 finalizer: a high-quality 64-bit mixer.
///
/// Exactly the arithmetic the pipeline's jitter has always used — changing
/// these constants would silently re-seed every replayable campaign, so
/// they are pinned here once.
#[must_use]
pub fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A uniform draw in `[0, 1)` from the top 53 bits of a mixed word.
#[must_use]
pub fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Derives the seed of stream `stream` from a master `seed`.
///
/// Used as `derive_stream(campaign_seed, shard_id)`: each shard of a
/// partitioned campaign gets its own decorrelated seed, and the derivation
/// depends only on `(seed, stream)` — never on how many shards exist or
/// which host thread runs them. That is the property that makes a sharded
/// run bit-identical at 1, 2, 4, or 8 worker threads.
#[must_use]
pub fn derive_stream(seed: u64, stream: u64) -> u64 {
    // Offset by one so stream 0 does not collapse to mix(seed), which some
    // single-machine paths already use directly.
    mix(seed ^ (stream.wrapping_add(1)).wrapping_mul(GOLDEN_GAMMA))
}

/// A sequential splitmix64 generator (Weyl sequence + [`mix`]).
///
/// Small, `Copy`-cheap, and `Send`: exactly what a shard domain carries for
/// its private draws. Not cryptographic — campaign scheduling only.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The per-shard stream generator for shard `shard_id` of a campaign.
    #[must_use]
    pub fn for_shard(campaign_seed: u64, shard_id: u64) -> SplitMix64 {
        SplitMix64::new(derive_stream(campaign_seed, shard_id))
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }

    /// A draw in `[0, n)`; `n = 0` yields 0.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Multiply-shift range reduction: deterministic and unbiased enough
        // for scheduling (not sampling-critical).
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        unit(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_matches_reference_vector() {
        // splitmix64 reference: seed 0 produces 0xe220a8397b1dcdaf as its
        // first output (state += GOLDEN_GAMMA, then finalize).
        assert_eq!(mix(GOLDEN_GAMMA), 0xe220_a839_7b1d_cdaf);
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(g.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn streams_are_deterministic_and_decorrelated() {
        let a1: Vec<u64> = {
            let mut g = SplitMix64::for_shard(42, 0);
            (0..16).map(|_| g.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut g = SplitMix64::for_shard(42, 0);
            (0..16).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a1, a2, "same (seed, shard) must replay");
        let b: Vec<u64> = {
            let mut g = SplitMix64::for_shard(42, 1);
            (0..16).map(|_| g.next_u64()).collect()
        };
        assert!(
            a1.iter().zip(&b).all(|(x, y)| x != y),
            "adjacent shards must not share draws"
        );
        let c: Vec<u64> = {
            let mut g = SplitMix64::for_shard(43, 0);
            (0..16).map(|_| g.next_u64()).collect()
        };
        assert_ne!(a1, c, "different campaign seeds must differ");
    }

    #[test]
    fn stream_derivation_is_independent_of_other_streams() {
        // Shard 2's seed is the same whether the campaign has 3 shards or 8.
        let lone = derive_stream(7, 2);
        let seeds_of_8: Vec<u64> = (0..8).map(|s| derive_stream(7, s)).collect();
        assert_eq!(seeds_of_8[2], lone);
        // And all 8 are distinct.
        let unique: std::collections::BTreeSet<u64> = seeds_of_8.iter().copied().collect();
        assert_eq!(unique.len(), 8);
    }

    #[test]
    fn unit_and_range_are_bounded() {
        let mut g = SplitMix64::new(9);
        for _ in 0..1000 {
            let u = g.next_unit();
            assert!((0.0..1.0).contains(&u));
            assert!(g.gen_range(10) < 10);
        }
        assert_eq!(g.gen_range(0), 0);
    }
}
